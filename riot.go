// Package riot is a Go reproduction of RIOT, the simple graphical chip
// assembly tool of Trimberger & Rowson (19th Design Automation
// Conference, 1982). Riot assembles pre-designed leaf cells into
// integrated systems: the designer places instances and chooses, at
// every connection, one of three guaranteed-correct connection
// primitives — abutment, river routing, or stretching — while the tool
// takes care of "the tedious and exacting implementation detail".
//
// This package is the public facade. A Session bundles a design (the
// cell menu), the textual command interpreter, an in-memory file
// system pre-loaded with the standard cell library, rendering to PPM
// screenshots and HP-GL plots, and the replay journal. The underlying
// subsystems live in internal/ packages:
//
//	internal/core     cells, instances, connectors, ABUT/ROUTE/STRETCH
//	internal/cif      Caltech Intermediate Form reader/writer
//	internal/sticks   symbolic layout (Sticks Standard)
//	internal/compact  the stick optimizer (REST stand-in) for stretching
//	internal/river    the multi-layer river router
//	internal/compo    composition format (session persistence)
//	internal/replay   command journal and replay
//	internal/shell    the textual command interface
//	internal/ui       the graphical command interface (figure 2)
//	internal/...      raster, plot, display, workstation, lib
//
// Quickstart:
//
//	s, _ := riot.NewSession(os.Stdout)
//	s.ExecAll(
//	    "READ nand.sticks",
//	    "EDIT CHIP",
//	    "CREATE NAND g1 AT 0 0",
//	    "CREATE NAND g2 AT 40 5",
//	    "CONNECT g2.PWRL g1.PWRR",
//	    "ABUT",
//	)
//	png, _ := s.RenderPPM("CHIP", 768, 512, false)
package riot

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"testing/fstest"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/display"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/lvs"
	"riot/internal/obs"
	"riot/internal/plot"
	"riot/internal/raster"
	"riot/internal/shell"
	"riot/internal/ui"
	"riot/internal/verify"
	"riot/internal/workstation"
)

// Re-exported core types, so downstream users rarely need the internal
// import paths.
type (
	// Design is the cell registry (the cell menu).
	Design = core.Design
	// Cell is a leaf or composition cell.
	Cell = core.Cell
	// Instance is a placed, oriented, optionally replicated cell.
	Instance = core.Instance
	// Editor is an editing session on one composition cell.
	Editor = core.Editor
	// Connector is a cell connection point.
	Connector = core.Connector
	// Violation is one design-rule failure reported by CheckDRC.
	Violation = drc.Violation
	// Circuit is the transistor-level netlist Extract recovers.
	Circuit = extract.Circuit
	// VerifyReport bundles one whole-design verification: the
	// extracted circuit and the design-rule report.
	VerifyReport = verify.Report
	// LVSResult is the outcome of a layout-versus-schematic
	// comparison (CheckLVS).
	LVSResult = lvs.Result
	// LVSMismatch is one structured LVS diagnostic.
	LVSMismatch = lvs.Mismatch
	// Trace records the verification pipeline's span tree (SetTrace);
	// export it with WriteChrome for chrome://tracing or Perfetto.
	Trace = obs.Trace
	// StatsSnapshot is one point-in-time pull of the session's unified
	// verification statistics (Snapshot).
	StatsSnapshot = obs.Snapshot
)

// NewTrace returns an enabled span recorder ready for SetTrace.
func NewTrace() *Trace { return obs.NewTrace() }

// Session is one Riot run: a design, a shell, files, and devices.
type Session struct {
	Shell *shell.Shell

	files map[string][]byte
	extra fs.FS
}

// NewSession starts a session with the standard cell library (the
// paper's figure-8 pads and gates plus pipe fittings) available as
// files: pads.cif, srcell.sticks, nand.sticks, or4.sticks,
// pipem.sticks, pipep.sticks. Output (command reports, warnings) goes
// to out; pass nil to discard.
func NewSession(out io.Writer) (*Session, error) {
	libFiles, err := lib.Files()
	if err != nil {
		return nil, err
	}
	s := &Session{files: libFiles}
	sh := shell.New(out)
	sh.FS = sessionFS{s}
	sh.WriteFile = func(name string, data []byte) error {
		s.files[name] = data
		return nil
	}
	sh.Plot = func(cell *core.Cell, file string) error {
		data, err := plotCell(cell, true)
		if err != nil {
			return err
		}
		s.files[file] = data
		return nil
	}
	s.Shell = sh
	return s, nil
}

// sessionFS resolves file names against the session's in-memory files
// first, then any mounted external file system.
type sessionFS struct{ s *Session }

func (m sessionFS) Open(name string) (fs.File, error) {
	if data, ok := m.s.files[name]; ok {
		return fstest.MapFS{name: &fstest.MapFile{Data: data}}.Open(name)
	}
	if m.s.extra != nil {
		return m.s.extra.Open(name)
	}
	return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
}

// Mount attaches an external file system (e.g. os.DirFS) behind the
// in-memory files.
func (s *Session) Mount(fsys fs.FS) { s.extra = fsys }

// AttachCache opens (creating if needed) a persistent verification
// cache rooted at dir and wires it under the session's verifier and
// LVS caches: flatten shards, leaf reference netlists and sub-cell
// match certificates then survive across processes, keyed by content
// signatures. Corrupt or version-skewed entries are quarantined and
// recomputed cold; verdicts are identical to cache-free runs.
func (s *Session) AttachCache(dir string) error { return s.Shell.AttachCache(dir) }

// Snapshot pulls the session's unified verification statistics: the
// same sections, keys and values the shell STATS command and riot
// -stats render (the three surfaces are pinned identical by test).
func (s *Session) Snapshot() *StatsSnapshot { return s.Shell.Snapshot() }

// SetTrace wires a span recorder through the session's whole
// verification pipeline (flatten, extract, DRC, the hierarchical
// engine, LVS, the persistent store). nil detaches tracing; a detached
// pipeline records nothing and costs nothing.
func (s *Session) SetTrace(t *Trace) { s.Shell.SetTrace(t) }

// AddFile places a file in the session's in-memory file system.
func (s *Session) AddFile(name string, data []byte) { s.files[name] = data }

// File retrieves a file written during the session (WRITE, PLOT,
// SAVEJOURNAL, screenshots).
func (s *Session) File(name string) ([]byte, bool) {
	data, ok := s.files[name]
	return data, ok
}

// Exec runs one textual command.
func (s *Session) Exec(line string) error { return s.Shell.Exec(line) }

// ExecAll runs a batch of commands, failing fast.
func (s *Session) ExecAll(lines ...string) error { return s.Shell.ExecAll(lines...) }

// Run interprets commands from r until EOF or QUIT, reporting errors
// to the session output without stopping (interactive semantics).
func (s *Session) Run(r io.Reader) error { return s.Shell.Run(r) }

// Design returns the session's cell registry.
func (s *Session) Design() *Design { return s.Shell.Design }

// Editor returns the current editing session, or nil.
func (s *Session) Editor() *Editor { return s.Shell.Editor }

// InstallLibrary registers the standard library cells directly in the
// design (the file-free path; READ the .sticks/.cif files for the
// interchange path).
func (s *Session) InstallLibrary() error { return lib.Install(s.Shell.Design) }

// RenderPPM draws a cell into a w x h frame buffer and returns it as a
// binary PPM image. With geometry=false the cell renders in Riot's
// editing view (bounding boxes and connector crosses); with true, full
// mask geometry.
func (s *Session) RenderPPM(cellName string, w, h int, geometry bool) ([]byte, error) {
	cell, ok := s.Shell.Design.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("riot: no cell %q", cellName)
	}
	im := raster.New(w, h)
	v := display.FitView(cell.BBox(), geom.R(0, 0, w-1, h-1), true)
	display.DrawCell(display.RasterCanvas{Im: im}, v, cell, display.Options{Geometry: geometry})
	var b bytes.Buffer
	if err := im.WritePPM(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// PlotHPGL renders a cell for the four-pen plotter and returns the
// HP-GL command stream.
func (s *Session) PlotHPGL(cellName string, geometry bool) ([]byte, error) {
	cell, ok := s.Shell.Design.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("riot: no cell %q", cellName)
	}
	return plotCell(cell, geometry)
}

func plotCell(cell *core.Cell, geometry bool) ([]byte, error) {
	var b bytes.Buffer
	p := plot.New(&b)
	v := display.FitView(cell.BBox(), geom.R(0, 0, 10000, 7200), false)
	display.DrawCell(display.PlotCanvas{P: p}, v, cell, display.Options{Geometry: geometry})
	if err := p.Finish(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// CheckDRC runs the design-rule checker over a cell's flattened mask
// geometry and returns the violations in deterministic order (empty
// means the design checks clean). Checks of the cell under edit go
// through the session's incremental verifier: after a small edit only
// the disturbed geometry is re-checked.
func (s *Session) CheckDRC(cellName string) ([]Violation, error) {
	rep, err := s.VerifyCell(cellName)
	if err != nil {
		return nil, err
	}
	return rep.Violations, nil
}

// Extract recovers a cell's transistor-level circuit, reusing the
// session's incremental verifier for the cell under edit.
func (s *Session) Extract(cellName string) (*Circuit, error) {
	rep, err := s.VerifyCell(cellName)
	if err != nil {
		return nil, err
	}
	if rep.CircuitErr != nil {
		return nil, rep.CircuitErr
	}
	return rep.Circuit, nil
}

// VerifyCell runs the full verification pipeline (extract + DRC) over
// a cell, incrementally for the cell under edit. The run consumes a
// frozen snapshot of the cell's current generation, so it shares the
// same determinism contract as the shell DRC/EXTRACT commands and the
// design server.
func (s *Session) VerifyCell(cellName string) (*VerifyReport, error) {
	rep, err := s.Shell.VerifyNamed(cellName)
	if err != nil {
		return nil, riotErr(cellName, err)
	}
	return rep, nil
}

// CheckLVS compares a cell's extracted netlist against the netlist its
// composition declares (leaf-cell netlists stitched by connector
// coincidence, sanctioned abutment seams and the editing session's
// retained connection records). The layout side reuses the session's
// incremental verifier, so LVS after DRC or EXTRACT re-extracts
// nothing; for the cell under edit the whole comparison is keyed on
// the editor generation.
func (s *Session) CheckLVS(cellName string) (*LVSResult, error) {
	res, err := s.Shell.LVSNamed(cellName)
	if err != nil {
		return nil, riotErr(cellName, err)
	}
	return res, nil
}

// riotErr keeps the facade's historical "riot: no cell" wording for
// missing-cell errors while passing verification errors through.
func riotErr(cellName string, err error) error {
	if strings.Contains(err.Error(), "no cell") {
		return fmt.Errorf("riot: no cell %q", cellName)
	}
	return err
}

// ExportCIF flattens a cell into CIF text for mask generation.
func (s *Session) ExportCIF(cellName string) ([]byte, error) {
	cell, ok := s.Shell.Design.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("riot: no cell %q", cellName)
	}
	f, err := core.ExportCIF(cell)
	if err != nil {
		return nil, err
	}
	return []byte(cif.String(f)), nil
}

// OpenWorkstation attaches a simulated graphic workstation and opens
// the graphical editor on the cell under edit. kind is "charles"
// (figure 1a) or "gigi" (figure 1b).
func (s *Session) OpenWorkstation(kind string) (*ui.UI, *workstation.Workstation, error) {
	var ws *workstation.Workstation
	switch strings.ToLower(kind) {
	case "charles", "":
		ws = workstation.Charles()
	case "gigi":
		ws = workstation.GIGI()
	default:
		return nil, nil, fmt.Errorf("riot: unknown workstation %q (want charles or gigi)", kind)
	}
	u, err := ui.New(ws, s.Shell)
	if err != nil {
		return nil, nil, err
	}
	return u, ws, nil
}

// JournalLines returns the commands recorded so far (the REPLAY
// journal).
func (s *Session) JournalLines() []string { return s.Shell.Journal.Lines() }
