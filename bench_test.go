// Benchmarks regenerating every figure of the paper's evaluation, plus
// the scaling and ablation studies DESIGN.md calls out. The paper has
// no numeric tables; what it shows are figures 1-10 and qualitative
// area/effort claims, so each benchmark both times the operation and
// reports the figure's headline numbers as benchmark metrics
// (lambda-heights, areas, channel counts). EXPERIMENTS.md records the
// paper-vs-measured comparison.
package riot

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/fstest"

	"riot/internal/compact"
	"riot/internal/core"
	"riot/internal/display"
	"riot/internal/filter"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/raster"
	"riot/internal/river"
	"riot/internal/rules"
	"riot/internal/shell"
	"riot/internal/sticks"
	"riot/internal/workstation"
)

const lam = rules.Lambda

// ---- Figure 1: the two workstation configurations ----

func BenchmarkFig1Workstations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ch := workstation.Charles()
		gg := workstation.GIGI()
		if !ch.HasPlotter() || gg.HasPlotter() {
			b.Fatal("configurations wrong")
		}
		_ = ch.Describe()
		_ = gg.Describe()
	}
}

// ---- Figure 2: the display organization (editing area + menus) ----

func BenchmarkFig2DisplayOrganization(b *testing.B) {
	s := newBenchSession(b)
	mustExec(b, s, "READ nand.sticks", "EDIT TOP", "CREATE NAND g1 AT 0 0",
		"CREATE NAND g2 AT 30 0", "CONNECT g2.PWRL g1.PWRR")
	u, ws, err := s.OpenWorkstation("charles")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Render()
	}
	b.StopTimer()
	if ws.Screen.CountColor(geom.ColorWhite) == 0 {
		b.Fatal("blank screen")
	}
}

// ---- Figure 3: the instance view (bounding box + connector crosses) ----

func BenchmarkFig3InstanceView(b *testing.B) {
	cells, err := lib.Cells()
	if err != nil {
		b.Fatal(err)
	}
	var sr *core.Cell
	for _, c := range cells {
		if c.Name == "SRCELL" {
			sr = c
		}
	}
	in := core.NewInstance("sr", sr, geom.Identity)
	im := raster.New(400, 300)
	v := display.FitView(in.BBox(), geom.R(0, 0, 399, 299), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Clear(geom.ColorBlack)
		display.DrawInstance(display.RasterCanvas{Im: im}, v, in, display.Options{ShowNames: true})
	}
}

// ---- Figure 4: connection by abutment ----

func BenchmarkFig4Abutment(b *testing.B) {
	s := newBenchSession(b)
	mustExec(b, s, "READ nand.sticks", "EDIT TOP",
		"CREATE NAND g1 AT 0 0", "CREATE NAND g2 AT 50 9")
	top, _ := s.Design().Cell("TOP")
	g2, _ := top.InstanceByName("g2")
	ed := s.Editor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ed.PlaceInstance(g2, geom.MakeTransform(geom.R0, geom.Pt(50*lam, 9*lam)))
		mustExec(b, s, "CONNECT g2.PWRL g1.PWRR", "CONNECT g2.GNDL g1.GNDR")
		b.StartTimer()
		if _, err := ed.Abut(false); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 5: connection by routing ----

func BenchmarkFig5RiverRoute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := core.NewDesign()
		if err := lib.Install(d); err != nil {
			b.Fatal(err)
		}
		topCell := core.NewComposition("TOP")
		if err := d.AddCell(topCell); err != nil {
			b.Fatal(err)
		}
		ed, _ := core.NewEditor(d, topCell)
		sr, _ := ed.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 60*lam)), 1, 1, 0, 0)
		g, _ := ed.CreateInstance("NAND", "g", geom.MakeTransform(geom.MXR180, geom.Pt(3*lam, 20*lam)), 1, 1, 0, 0)
		if err := ed.AddConnection(g, "A", sr, "TAP"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ed.RouteConnect(core.RouteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 6: connection by stretching ----

func BenchmarkFig6Stretch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := core.NewDesign()
		if err := lib.Install(d); err != nil {
			b.Fatal(err)
		}
		topCell := core.NewComposition("TOP")
		if err := d.AddCell(topCell); err != nil {
			b.Fatal(err)
		}
		ed, _ := core.NewEditor(d, topCell)
		sr, _ := ed.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 60*lam)), 1, 1, 0, 0)
		g, _ := ed.CreateInstance("NAND", "g", geom.MakeTransform(geom.MXR180, geom.Pt(0, 20*lam)), 1, 1, 0, 0)
		if err := ed.AddConnection(g, "A", sr, "TAP"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ed.StretchConnect(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 7: the floorplan (placement only) ----

func BenchmarkFig7Floorplan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := core.NewDesign()
		if err := lib.Install(d); err != nil {
			b.Fatal(err)
		}
		topCell := core.NewComposition("PLAN")
		if err := d.AddCell(topCell); err != nil {
			b.Fatal(err)
		}
		ed, _ := core.NewEditor(d, topCell)
		// the rough floorplan: register row over gate row over OR,
		// pads around
		if _, err := ed.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 100*lam)), 4, 1, 0, 0); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, err := ed.CreateInstance("NAND", fmt.Sprintf("n%d", j), geom.MakeTransform(geom.R0, geom.Pt(20*j*lam, 60*lam)), 1, 1, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := ed.CreateInstance("OR4", "or", geom.MakeTransform(geom.R0, geom.Pt(0, 20*lam)), 1, 1, 0, 0); err != nil {
			b.Fatal(err)
		}
		if topCell.BBox().Empty() {
			b.Fatal("empty floorplan")
		}
	}
}

// ---- Figure 8: the leaf cells (library generation + interchange) ----

func BenchmarkFig8LeafCells(b *testing.B) {
	for i := 0; i < b.N; i++ {
		files, err := lib.Files()
		if err != nil {
			b.Fatal(err)
		}
		// round-trip the symbolic cells through the interchange format
		for name, data := range files {
			if !strings.HasSuffix(name, ".sticks") {
				continue
			}
			if _, err := sticks.ParseAll(strings.NewReader(string(data))); err != nil {
				b.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// ---- Figure 9a/9b: the logic block, routed vs stretched ----

func BenchmarkFig9aRoutedLogic(b *testing.B) {
	var st *filter.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, _, st, err = filter.BuildLogic(filter.Routed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.LogicHeight), "λ-height")
	b.ReportMetric(float64(st.LogicArea), "λ²-area")
	b.ReportMetric(float64(st.ChannelHeight), "λ-channels")
}

func BenchmarkFig9bStretchedLogic(b *testing.B) {
	var st *filter.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, _, st, err = filter.BuildLogic(filter.Stretched)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.LogicHeight), "λ-height")
	b.ReportMetric(float64(st.LogicArea), "λ²-area")
	b.ReportMetric(float64(st.ChannelHeight), "λ-channels")
}

// ---- Figure 10: the completed chip ----

func BenchmarkFig10FullChip(b *testing.B) {
	var cst *filter.ChipStats
	var chip *core.Cell
	for i := 0; i < b.N; i++ {
		var err error
		_, chip, cst, err = filter.BuildChip(filter.Stretched)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := core.ExportCIF(chip); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cst.ChipArea), "λ²-area")
	b.ReportMetric(float64(cst.PadCount), "pads")
}

// ---- Ablation: one-to-many vs the wrapper-cell workaround ----

func BenchmarkOneToManyDirect(b *testing.B) {
	// connect one instance to two others directly (legal one-to-many)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, ed := benchEditor(b)
		a1, _ := ed.CreateInstance("SRCELL", "a1", geom.Identity, 1, 1, 0, 0)
		a2, _ := ed.CreateInstance("SRCELL", "a2", geom.MakeTransform(geom.R0, geom.Pt(20*lam, 0)), 1, 1, 0, 0)
		g, _ := ed.CreateInstance("OR4", "g", geom.MakeTransform(geom.MXR180, geom.Pt(0, -40*lam)), 1, 1, 0, 0)
		mustNil(b, ed.AddConnection(g, "IN0", a1, "TAP"))
		mustNil(b, ed.AddConnection(g, "IN1", a2, "TAP"))
		b.StartTimer()
		if _, err := ed.RouteConnect(core.RouteOptions{}); err != nil {
			b.Fatal(err)
		}
		_ = d
	}
}

func BenchmarkManyToManyViaWrapper(b *testing.B) {
	// the workaround: wrap one side in a composition cell first
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, ed := benchEditor(b)
		b.StartTimer()
		wrap := core.NewComposition(fmt.Sprintf("PAIR%d", i))
		if err := d.AddCell(wrap); err != nil {
			b.Fatal(err)
		}
		we, _ := core.NewEditor(d, wrap)
		if _, err := we.CreateInstance("SRCELL", "a1", geom.Identity, 1, 1, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := we.CreateInstance("SRCELL", "a2", geom.MakeTransform(geom.R0, geom.Pt(20*lam, 0)), 1, 1, 0, 0); err != nil {
			b.Fatal(err)
		}
		p, err := ed.CreateInstance(wrap.Name, "p", geom.Identity, 1, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		g, _ := ed.CreateInstance("OR4", "g", geom.MakeTransform(geom.MXR180, geom.Pt(0, -40*lam)), 1, 1, 0, 0)
		mustNil(b, ed.AddConnection(g, "IN0", p, "a1.TAP"))
		mustNil(b, ed.AddConnection(g, "IN1", p, "a2.TAP"))
		if _, err := ed.RouteConnect(core.RouteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: route-and-move vs route-in-place ----

func BenchmarkRouteAndMove(b *testing.B)   { benchRouteVariant(b, false) }
func BenchmarkRouteNoMove(b *testing.B)    { benchRouteVariant(b, true) }

func benchRouteVariant(b *testing.B, noMove bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, ed := benchEditor(b)
		sr, _ := ed.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 60*lam)), 1, 1, 0, 0)
		g, _ := ed.CreateInstance("NAND", "g", geom.MakeTransform(geom.MXR180, geom.Pt(3*lam, 20*lam)), 1, 1, 0, 0)
		mustNil(b, ed.AddConnection(g, "A", sr, "TAP"))
		b.StartTimer()
		if _, err := ed.RouteConnect(core.RouteOptions{NoMove: noMove}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: channel capacity (single vs multi-channel routing) ----

func BenchmarkChannelCapacity(b *testing.B) {
	bottom, top := shiftedRows(12)
	for _, cap := range []int{1, 2, 8, 1000} {
		b.Run(fmt.Sprintf("tracks=%d", cap), func(b *testing.B) {
			var res *river.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = river.Route(bottom, top, river.Options{TracksPerChannel: cap})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Channels), "channels")
			b.ReportMetric(float64(res.Height), "λ-height")
		})
	}
}

// ---- Scaling: router, compactor, assembly, replay ----

func BenchmarkRiverScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		bottom, top := shiftedRows(n)
		b.Run(fmt.Sprintf("nets=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := river.Route(bottom, top, river.Options{TracksPerChannel: 1000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompactScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		cell := combCell(n)
		b.Run(fmt.Sprintf("wires=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compactStretch(cell, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAssemblyScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("cells=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, ed := benchEditor(b)
				if _, err := ed.CreateInstance("SRCELL", "row", geom.Identity, n, 1, 0, 0); err != nil {
					b.Fatal(err)
				}
				top, _ := ed.Cell.InstanceByName("row")
				if len(top.Connectors()) == 0 {
					b.Fatal("no connectors")
				}
			}
		})
	}
}

func BenchmarkReplayAfterLeafEdit(b *testing.B) {
	// record once
	rec := shell.New(io.Discard)
	files, err := lib.Files()
	if err != nil {
		b.Fatal(err)
	}
	fsys := fstest.MapFS{}
	for name, data := range files {
		fsys[name] = &fstest.MapFile{Data: data}
	}
	rec.FS = fsys
	mustNil(b, rec.ExecAll(
		"READ srcell.sticks", "READ nand.sticks", "EDIT TOP",
		"CREATE SRCELL sr AT 0 40", "CREATE NAND g AT 0 20 ORIENT MXR180",
		"CONNECT g.A sr.TAP", "STRETCH",
	))
	// edited leaf: A input moved
	edited := strings.ReplaceAll(string(files["nand.sticks"]),
		"CONNECTOR A 16 0", "CONNECTOR A 14 0")
	edited = strings.ReplaceAll(edited, "WIRE NP 2 16 0 16 9 10 9", "WIRE NP 2 14 0 14 9 10 9")
	fsys2 := fstest.MapFS{}
	for name, data := range files {
		fsys2[name] = &fstest.MapFile{Data: data}
	}
	fsys2["nand.sticks"] = &fstest.MapFile{Data: []byte(edited)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := shell.New(io.Discard)
		sh.FS = fsys2
		if err := rec.Journal.Replay(sh.Exec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullScreenRedraw measures the interactive feel: a complete
// figure-2 screen repaint of the figure-10 chip.
func BenchmarkFullScreenRedraw(b *testing.B) {
	_, chip, _, err := filter.BuildChip(filter.Stretched)
	if err != nil {
		b.Fatal(err)
	}
	im := raster.New(768, 512)
	v := display.FitView(chip.BBox(), geom.R(0, 0, 767, 511), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Clear(geom.ColorBlack)
		display.DrawCell(display.RasterCanvas{Im: im}, v, chip, display.Options{Geometry: true})
	}
}

// BenchmarkUIGesture measures one full pointer gesture: menu click,
// editing-area click, re-render.
func BenchmarkUIGesture(b *testing.B) {
	s := newBenchSession(b)
	mustExec(b, s, "READ nand.sticks", "EDIT TOP")
	u, ws, err := s.OpenWorkstation("charles")
	if err != nil {
		b.Fatal(err)
	}
	_, cellMenu, _ := u.Layout()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Click(geom.Pt(cellMenu.Min.X+5, cellMenu.Min.Y+15))
		if err := u.RunPending(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers ----

func newBenchSession(b *testing.B) *Session {
	b.Helper()
	s, err := NewSession(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func mustExec(b *testing.B, s *Session, lines ...string) {
	b.Helper()
	if err := s.ExecAll(lines...); err != nil {
		b.Fatal(err)
	}
}

func mustNil(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func benchEditor(b *testing.B) (*core.Design, *core.Editor) {
	b.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		b.Fatal(err)
	}
	topCell := core.NewComposition("TOP")
	if err := d.AddCell(topCell); err != nil {
		b.Fatal(err)
	}
	ed, err := core.NewEditor(d, topCell)
	if err != nil {
		b.Fatal(err)
	}
	return d, ed
}

// shiftedRows builds n metal terminals shifted right by half a pitch,
// forcing a jog on every net.
func shiftedRows(n int) (bottom, top []river.Terminal) {
	pitch := rules.Pitch(geom.NM) + 2
	for i := 0; i < n; i++ {
		bottom = append(bottom, river.Terminal{X: i * pitch, Layer: geom.NM})
		top = append(top, river.Terminal{X: i*pitch + pitch/2, Layer: geom.NM})
	}
	return bottom, top
}

// combCell builds a comb of n vertical poly wires with top connectors,
// a stretchable structure of adjustable size.
func combCell(n int) *sticks.Cell {
	pitch := rules.Pitch(geom.NP)
	c := &sticks.Cell{Name: "COMB", Box: geom.R(0, 0, n*pitch, 20), HasBox: true}
	c.Wires = append(c.Wires, sticks.Wire{Layer: geom.NM, Width: 4,
		Points: []geom.Point{{X: 0, Y: 2}, {X: n * pitch, Y: 2}}})
	for i := 0; i < n; i++ {
		x := i * pitch
		c.Wires = append(c.Wires, sticks.Wire{Layer: geom.NP, Width: 2,
			Points: []geom.Point{{X: x, Y: 6}, {X: x, Y: 20}}})
		c.Connectors = append(c.Connectors, sticks.Connector{
			Name: fmt.Sprintf("T%d", i), At: geom.Pt(x, 20), Layer: geom.NP, Width: 2, Side: geom.SideTop,
		})
	}
	return c
}

// compactStretch stretches the comb so its last tooth doubles its
// distance from the first — a representative optimizer workload.
func compactStretch(c *sticks.Cell, n int) (*sticks.Cell, error) {
	pitch := rules.Pitch(geom.NP)
	return compact.Stretch(c, sticks.AxisX, []compact.Pin{
		{Connector: fmt.Sprintf("T%d", n-1), Coord: (n - 1) * pitch * 2},
	})
}
