module riot

go 1.21
