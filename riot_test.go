package riot

import (
	"strings"
	"testing"
)

func TestSessionLibraryFiles(t *testing.T) {
	s, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"pads.cif", "srcell.sticks", "nand.sticks", "or4.sticks"} {
		if _, ok := s.File(f); !ok {
			t.Errorf("library file %s missing", f)
		}
	}
}

func TestSessionQuickstartFlow(t *testing.T) {
	s, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	err = s.ExecAll(
		"READ nand.sticks",
		"EDIT CHIP",
		"CREATE NAND g1 AT 0 0",
		"CREATE NAND g2 AT 40 5",
		"CONNECT g2.PWRL g1.PWRR",
		"CONNECT g2.GNDL g1.GNDR",
		"ABUT",
	)
	if err != nil {
		t.Fatal(err)
	}
	chip, ok := s.Design().Cell("CHIP")
	if !ok {
		t.Fatal("CHIP missing")
	}
	g1, _ := chip.InstanceByName("g1")
	g2, _ := chip.InstanceByName("g2")
	if g2.BBox().Min.X != g1.BBox().Max.X {
		t.Error("abut failed through the facade")
	}
}

func TestSessionInstallLibrary(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.InstallLibrary(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Design().Cell("SRCELL"); !ok {
		t.Error("library not installed")
	}
}

func TestSessionRenderAndPlot(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.ExecAll("READ nand.sticks", "EDIT TOP", "CREATE NAND g AT 0 0", "ENDEDIT"); err != nil {
		t.Fatal(err)
	}
	ppm, err := s.RenderPPM("TOP", 320, 240, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ppm), "P6\n320 240\n") {
		t.Error("bad PPM header")
	}
	hpgl, err := s.PlotHPGL("TOP", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(hpgl), "IN;") || !strings.Contains(string(hpgl), "PD") {
		t.Error("bad HP-GL stream")
	}
	if _, err := s.RenderPPM("NOPE", 10, 10, false); err == nil {
		t.Error("render of unknown cell accepted")
	}
}

func TestSessionExportCIF(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.ExecAll("READ nand.sticks", "EDIT TOP", "CREATE NAND g AT 0 0", "ENDEDIT"); err != nil {
		t.Fatal(err)
	}
	text, err := s.ExportCIF("TOP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "9 TOP;") || !strings.Contains(string(text), "DS") {
		t.Errorf("CIF looks wrong:\n%s", text)
	}
}

func TestSessionPlotCommand(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.ExecAll("READ nand.sticks", "EDIT TOP", "CREATE NAND g AT 0 0", "PLOT top.hpgl"); err != nil {
		t.Fatal(err)
	}
	data, ok := s.File("top.hpgl")
	if !ok || !strings.Contains(string(data), "SP") {
		t.Error("PLOT command produced nothing")
	}
}

func TestSessionWorkstations(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.ExecAll("READ nand.sticks", "EDIT TOP"); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"charles", "gigi"} {
		u, ws, err := s.OpenWorkstation(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if u == nil || ws == nil {
			t.Fatalf("%s: nil workstation", kind)
		}
		u.Render()
	}
	if _, _, err := s.OpenWorkstation("vt100"); err == nil {
		t.Error("unknown workstation accepted")
	}
}

func TestSessionJournal(t *testing.T) {
	s, _ := NewSession(nil)
	if err := s.ExecAll("READ nand.sticks", "EDIT TOP", "CREATE NAND g AT 0 0"); err != nil {
		t.Fatal(err)
	}
	if len(s.JournalLines()) != 3 {
		t.Errorf("journal = %v", s.JournalLines())
	}
}

func TestSessionRun(t *testing.T) {
	var out strings.Builder
	s, _ := NewSession(&out)
	input := "READ nand.sticks\nCELLS\nBOGUS\nQUIT\n"
	if err := s.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NAND") {
		t.Error("CELLS output missing")
	}
	if !strings.Contains(out.String(), "?") {
		t.Error("error report missing")
	}
}

// TestSessionCheckLVSPadframe assembles the padframe example through
// the command interface and verifies the layout against its declared
// composition — the full verification triad's last leg over a design
// with arrays, orientations, CIF pads and routes.
func TestSessionCheckLVSPadframe(t *testing.T) {
	s, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecAll(
		"READ srcell.sticks",
		"READ pads.cif",
		"EDIT CORE",
		"CREATE SRCELL row0 AT 0 0 ARRAY 4 1",
		"CREATE SRCELL row1 AT 0 24 ARRAY 4 1",
		"ENDEDIT",
		"EDIT FRAME",
		"CREATE CORE core AT 120 120",
		"CREATE PADIN south AT 120 40 ORIENT MXR180 ARRAY 2 1 80 0",
		"CREATE PADIN north AT 120 340 ARRAY 2 1 80 0",
		"CREATE PADIN west AT 40 120 ORIENT R90 ARRAY 1 2 0 80",
		"CREATE PADOUT east AT 340 120 ORIENT R270 ARRAY 1 2 0 80",
		"CONNECT west.P[0] core.row0.IN[0]",
		"ROUTE",
		"CONNECT east.P[0] core.row0.OUT[3]",
		"ROUTE",
	); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"CORE", "FRAME"} {
		res, err := s.CheckLVS(cell)
		if err != nil {
			t.Fatalf("%s: %v", cell, err)
		}
		if !res.Clean {
			t.Fatalf("%s: LVS mismatches: %v", cell, res.Mismatches)
		}
	}

	// break a connection and re-verify: the FRAME editor session still
	// declares west.P[0] -> core.row0.IN[0], so the deleted route
	// surfaces as a structured open
	routeName := ""
	for _, in := range s.Editor().Cell.Instances {
		if strings.HasPrefix(in.Name, "ROUTE") {
			routeName = in.Name
			break
		}
	}
	if routeName == "" {
		t.Fatal("no route instance in FRAME")
	}
	if err := s.Exec("DELETE " + routeName); err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckLVS("FRAME")
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("deleted pad route verified clean")
	}
	found := false
	for _, mm := range res.Mismatches {
		if string(mm.Kind) == "open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deleted pad route reported as %v", res.Mismatches)
	}
}
