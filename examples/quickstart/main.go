// Command quickstart walks through Riot's three connection primitives
// on library gates: abutment, river routing and stretching. It prints
// what every step did and leaves a screenshot, a pen plot and a CIF
// file in ./riot-quickstart-out.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"riot"
)

func main() {
	s, err := riot.NewSession(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Riot quickstart: assemble gates three ways ==")
	fmt.Println()

	// 1. abutment: chain two NAND gates rail to rail
	must(s.ExecAll(
		"READ nand.sticks",
		"READ srcell.sticks",
		"EDIT DEMO",
		"CREATE NAND g1 AT 0 20 ORIENT MXR180",
		"CREATE NAND g2 AT 50 27 ORIENT MXR180",
		"CONNECT g2.PWRL g1.PWRR",
		"CONNECT g2.GNDL g1.GNDR",
		"ABUT",
	))
	fmt.Println("1. ABUT: g2 snapped onto g1, rails joined")

	// 2. routing: a register cell above, its tap river-routed down to
	// a gate input
	must(s.ExecAll(
		"CREATE SRCELL sr AT 0 60",
		"CONNECT g1.A sr.TAP",
		"ROUTE",
	))
	fmt.Println("2. ROUTE: a route cell was created and added to the cell menu;")
	fmt.Println("   g1 (the from instance) moved up to abut the channel.")
	fmt.Println("   Note the Riot caveat: moving g1 silently broke the g1-g2")
	fmt.Println("   rail abutment made in step 1 — connection is positional,")
	fmt.Println("   and \"once a connection is made, it can be easily")
	fmt.Println("   (perhaps accidentally) destroyed.\"")

	// 3. stretching: a third gate stretched so two connections close
	// by pure abutment
	must(s.ExecAll(
		"CREATE SRCELL sr2 AT 100 60",
		"CREATE NAND g3 AT 100 40 ORIENT MXR180",
		"CONNECT g3.A sr2.TAP",
		"STRETCH",
	))
	fmt.Println("3. STRETCH: g3 was re-solved through the stick optimizer and")
	fmt.Println("   now abuts sr2 with its input directly under the tap.")
	fmt.Println()

	must(s.Exec("CELLS"))

	// artifacts
	outDir := "riot-quickstart-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, data []byte) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	ppm, err := s.RenderPPM("DEMO", 768, 512, false)
	if err != nil {
		log.Fatal(err)
	}
	write("demo.ppm", ppm)
	hpgl, err := s.PlotHPGL("DEMO", true)
	if err != nil {
		log.Fatal(err)
	}
	write("demo.hpgl", hpgl)
	cif, err := s.ExportCIF("DEMO")
	if err != nil {
		log.Fatal(err)
	}
	write("demo.cif", cif)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
