// Command logicalfilter reproduces the paper's worked example end to
// end (figures 7-10): the four-bit sequential logical filter
//
//	f_n = OR_{i=1..4} c_i x_{n-i}
//
// assembled once with routed connections (figure 9a) and once with
// stretched connections (figure 9b), then finished into the complete
// chip with pads (figure 10). It prints the area comparison the paper
// makes and writes plots and mask CIF into ./riot-filter-out.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/display"
	"riot/internal/filter"
	"riot/internal/geom"
	"riot/internal/plot"
	"riot/internal/raster"
)

func main() {
	outDir := "riot-filter-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The logical filter of the Riot paper (figures 7-10) ==")
	fmt.Println()
	fmt.Println("floorplan (figure 7): pads / shift-register row / NAND row / OR")
	fmt.Println()

	var stats [2]*filter.Stats
	for i, variant := range []filter.Variant{filter.Routed, filter.Stretched} {
		_, logic, st, err := filter.BuildLogic(variant)
		if err != nil {
			log.Fatalf("%v: %v", variant, err)
		}
		stats[i] = st
		fmt.Printf("figure 9%c (%s):\n", 'a'+i, variant)
		fmt.Printf("  logic block: %d x %d lambda (area %d lambda^2)\n",
			st.LogicBox.W()/250, st.LogicHeight, st.LogicArea)
		fmt.Printf("  route cells: %d, jog tracks: %d, channel height: %d lambda\n",
			st.RouteCells, st.RouteTracks, st.ChannelHeight)
		writeCellImage(outDir, fmt.Sprintf("fig9%c-logic.ppm", 'a'+i), logic, false)
		writeCellImage(outDir, fmt.Sprintf("fig9%c-geometry.ppm", 'a'+i), logic, true)
	}
	saved := stats[0].LogicHeight - stats[1].LogicHeight
	fmt.Println()
	fmt.Printf("the paper's claim: stretching eliminates the routing channels.\n")
	fmt.Printf("measured: %d lambda of channel in 9a; 9b is %d lambda shorter.\n",
		stats[0].ChannelHeight, saved)
	fmt.Println()

	// figure 10: the completed chip
	d, chip, cst, err := filter.BuildChip(filter.Stretched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure 10 (completed chip, stretched core):\n")
	fmt.Printf("  chip: %d x %d lambda (area %d lambda^2), %d pads, %d pad routes\n",
		cst.ChipBox.W()/250, cst.ChipBox.H()/250, cst.ChipArea, cst.PadCount, cst.Routes)
	fmt.Printf("  cell menu now holds %d cells (library + Riot-made route cells)\n",
		len(d.CellNames()))

	writeCellImage(outDir, "fig10-chip.ppm", chip, true)
	writePlot(outDir, "fig10-chip.hpgl", chip)

	// mask CIF
	f, err := core.ExportCIF(chip)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(outDir, "chip.cif")
	if err := os.WriteFile(path, []byte(cif.String(f)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d symbols, for mask generation)\n", path, len(f.Symbols))
}

func writeCellImage(dir, name string, cell *core.Cell, geometry bool) {
	im := raster.New(768, 512)
	v := display.FitView(cell.BBox(), geom.R(0, 0, 767, 511), true)
	display.DrawCell(display.RasterCanvas{Im: im}, v, cell, display.Options{Geometry: geometry, ShowNames: !geometry})
	var b strings.Builder
	if err := im.WritePPM(&b); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

func writePlot(dir, name string, cell *core.Cell) {
	var b strings.Builder
	p := plot.New(&b)
	v := display.FitView(cell.BBox(), geom.R(0, 0, 10000, 7200), false)
	display.DrawCell(display.PlotCanvas{P: p}, v, cell, display.Options{Geometry: true})
	if err := p.Finish(); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s (%d plotter ops)\n", path, p.Ops())
}
