// Command padframe assembles a full pad ring around a core using
// Riot's arrays and orientations — the kind of "small project chip"
// assembly the paper says Riot was good at. Each side of the ring is
// one array instance of the pad cell, oriented so every pad's
// connector faces the core; the core's register inputs are then routed
// to the nearest pads.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"riot"
)

func main() {
	s, err := riot.NewSession(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== pad frame assembly ==")
	fmt.Println()

	// A core: an 8-stage register bank (two rows of four).
	must(s.ExecAll(
		"READ srcell.sticks",
		"READ pads.cif",
		"EDIT CORE",
		"CREATE SRCELL row0 AT 0 0 ARRAY 4 1",
		"CREATE SRCELL row1 AT 0 24 ARRAY 4 1",
		"ENDEDIT",
	))

	// The frame: four pad rows/columns. The pad cell's connector P is
	// on its bottom edge; orientations turn it inward.
	must(s.ExecAll(
		"EDIT FRAME",
		"CREATE CORE core AT 120 120",
		// south row: P faces up (R180 flips the pad over)
		"CREATE PADIN south AT 120 40 ORIENT MXR180 ARRAY 2 1 80 0",
		// north row: P faces down (natural orientation)
		"CREATE PADIN north AT 120 340 ARRAY 2 1 80 0",
		// west column: P faces right
		"CREATE PADIN west AT 40 120 ORIENT R90 ARRAY 1 2 0 80",
		// east column: P faces left
		"CREATE PADOUT east AT 340 120 ORIENT R270 ARRAY 1 2 0 80",
	))

	// route the core's register data inputs to the west pads
	must(s.ExecAll(
		"CONNECT west.P[0] core.row0.IN[0]",
		"ROUTE",
	))
	fmt.Println("routed west pad 0 to row0 input")

	// and the register outputs to the east pads
	must(s.ExecAll(
		"CONNECT east.P[0] core.row0.OUT[3]",
		"ROUTE",
	))
	fmt.Println("routed east pad 0 to row0 output")

	must(s.Exec("SHOW FRAME"))

	outDir := "riot-padframe-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	ppm, err := s.RenderPPM("FRAME", 768, 768, false)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(outDir, "frame.ppm")
	if err := os.WriteFile(path, ppm, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)

	geo, err := s.RenderPPM("FRAME", 768, 768, true)
	if err != nil {
		log.Fatal(err)
	}
	path = filepath.Join(outDir, "frame-geometry.ppm")
	if err := os.WriteFile(path, geo, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
