// Command replaydemo demonstrates Riot's REPLAY facility: an editing
// session is recorded, the NAND leaf cell is then "re-designed" with
// its input connector in a different place, and the journal is re-run
// against the changed cell. Because the journal identifies connections
// by instance and connector NAMES, the positions are re-calculated and
// the assembly comes out correctly connected — the paper's answer to
// "modification of leaf cells".
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"riot"
	"riot/internal/geom"
)

// the session: place a register, place a gate, stretch-connect it
var session = []string{
	"READ srcell.sticks",
	"READ nand.sticks",
	"EDIT TOP",
	"CREATE SRCELL sr AT 0 40",
	"CREATE NAND g AT 0 20 ORIENT MXR180",
	"CONNECT g.A sr.TAP",
	"STRETCH",
}

func main() {
	fmt.Println("== REPLAY after a leaf-cell edit ==")
	fmt.Println()

	// original session
	s1, err := riot.NewSession(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if err := s1.ExecAll(session...); err != nil {
		log.Fatal(err)
	}
	a1 := connectorPos(s1, "g", "A")
	fmt.Printf("original session: g.A lands at %v\n", a1)

	// save the journal, as Riot does continuously
	if err := s1.Exec("SAVEJOURNAL session.rpl"); err != nil {
		log.Fatal(err)
	}
	journal, _ := s1.File("session.rpl")
	fmt.Printf("journal: %d commands recorded\n\n", strings.Count(string(journal), "\n")-1)

	// "when an existing leaf cell is modified, the locations of
	// connectors are often changed" — move the NAND's A input
	s2, err := riot.NewSession(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	nand, _ := s2.File("nand.sticks")
	edited := strings.ReplaceAll(string(nand),
		"WIRE NP 2 16 0 16 9 10 9", "WIRE NP 2 14 0 14 9 10 9")
	edited = strings.ReplaceAll(edited,
		"CONNECTOR A 16 0 NP 2 bottom", "CONNECTOR A 14 0 NP 2 bottom")
	if edited == string(nand) {
		log.Fatal("leaf edit failed to apply — library format changed?")
	}
	s2.AddFile("nand.sticks", []byte(edited))
	s2.AddFile("session.rpl", journal)
	fmt.Println("NAND re-designed: input A moved from x=16 to x=14")

	// replay the same journal against the changed cell
	if err := s2.Exec("REPLAY session.rpl"); err != nil {
		log.Fatal(err)
	}
	a2 := connectorPos(s2, "g", "A")
	tap2 := connectorPos(s2, "sr", "TAP")
	fmt.Printf("replayed session: g.A lands at %v\n", a2)

	if a2 == tap2 {
		fmt.Println("\nthe connection HELD: positions were re-calculated from")
		fmt.Println("names, exactly as the paper describes.")
	} else {
		fmt.Printf("\nconnection broken (%v vs %v) — this should not happen\n", a2, tap2)
		os.Exit(1)
	}
	if a1 == a2 {
		fmt.Println("(and the landing position differs from the original run,")
		fmt.Println(" proving the re-calculation was real)")
	}
}

func connectorPos(s *riot.Session, inst, conn string) geom.Point {
	top, ok := s.Design().Cell("TOP")
	if !ok {
		log.Fatal("TOP missing")
	}
	in, ok := top.InstanceByName(inst)
	if !ok {
		log.Fatalf("instance %s missing", inst)
	}
	ic, err := in.Connector(conn)
	if err != nil {
		log.Fatal(err)
	}
	return ic.At
}
