package riot

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// array builds a session with an SRCELL grid under edit.
func array(t *testing.T, nx, ny int) *Session {
	t.Helper()
	s, err := NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecAll(
		"READ srcell.sticks",
		"EDIT CHIP",
		"CREATE SRCELL a ARRAY "+itoa(nx)+" "+itoa(ny),
	); err != nil {
		t.Fatal(err)
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestTraceShape pins the span tree of a traced LVS run over a 4x4
// array: the verifier's root span with the hierarchical engine's
// cert-build and compose work nested inside, then the flatten, and the
// LVS reference/match stages.
func TestTraceShape(t *testing.T) {
	s := array(t, 4, 4)
	tr := NewTrace()
	s.SetTrace(tr)
	if _, err := s.CheckLVS("CHIP"); err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1 (lvs)", len(roots))
	}
	root := roots[0]
	if root.Name() != "lvs" {
		t.Fatalf("root span = %q, want lvs", root.Name())
	}
	for _, path := range [][]string{
		{"verify"},
		{"verify", "hier"},
		{"verify", "hier", "certs", "cert build SRCELL"},
		{"verify", "hier", "certs", "cert build SRCELL", "extract"},
		{"verify", "hier", "certs", "cert build SRCELL", "drc"},
		{"verify", "hier", "compose"},
		{"verify", "hier", "compose", "width"},
		{"verify", "materialize"},
		{"flatten"},
		{"reference"},
		{"match"},
	} {
		sp := root
		for _, name := range path {
			if sp = sp.Find(name); sp == nil {
				t.Fatalf("span path %v missing (no %q)", path, name)
			}
		}
		if sp.Dur() < 0 {
			t.Errorf("span %v left open", path)
		}
	}
	// the flatten of a 4x4 single-instance array re-flattens one shard
	fl := root.Find("flatten")
	shards := 0
	for _, c := range fl.Children() {
		if strings.HasPrefix(c.Name(), "shard ") {
			shards++
		}
	}
	if shards != 1 {
		t.Errorf("flatten recorded %d shard spans, want 1", shards)
	}
}

// TestTraceCoverage64 pins the acceptance bar for span accounting: on a
// 64x64 hierarchical verify, the root span's direct children account
// for at least 90% of its wall time — the trace explains where the run
// went rather than leaving it in an untimed gap.
func TestTraceCoverage64(t *testing.T) {
	s := array(t, 64, 64)
	tr := NewTrace()
	s.SetTrace(tr)
	if _, err := s.VerifyCell("CHIP"); err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "verify" {
		t.Fatalf("want one verify root, got %v", roots)
	}
	root := roots[0]
	var sum time.Duration
	for _, c := range root.Children() {
		sum += c.Dur()
	}
	if total := root.Dur(); sum < total*9/10 {
		t.Errorf("children cover %v of %v (<90%%)", sum, total)
	}
}

// TestSnapshotSurfacesAgree pins that the shell STATS JSON command and
// Session.Snapshot render byte-identical content (the riot -stats=json
// flag is pinned against STATS JSON in cmd/riot's tests, closing the
// three-surface triangle).
func TestSnapshotSurfacesAgree(t *testing.T) {
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecAll(
		"READ srcell.sticks",
		"EDIT CHIP",
		"CREATE SRCELL a ARRAY 4 4",
		"DRC",
	); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := s.Exec("STATS JSON"); err != nil {
		t.Fatal(err)
	}
	fromShell := strings.TrimSpace(out.String())
	fromSession := string(s.Snapshot().JSON())
	if fromShell != fromSession {
		t.Errorf("STATS JSON and Session.Snapshot disagree:\nshell:   %s\nsession: %s", fromShell, fromSession)
	}
	var parsed map[string]map[string]any
	if err := json.Unmarshal([]byte(fromSession), &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if _, ok := parsed["verify"]; !ok {
		t.Errorf("snapshot missing the verify section: %s", fromSession)
	}
}
