// Command riotplot renders a cell from any Riot interchange file to a
// raster image (PPM) or a pen-plotter stream (HP-GL), standing in for
// the HP 7221A hardcopy path.
//
// Usage:
//
//	riotplot -in chip.cif -cell CHIP -o chip.ppm
//	riotplot -in gates.sticks -cell NAND -o nand.hpgl -geometry
//	riotplot -in session.comp -cell TOP -o top.ppm -w 1024 -h 768
//
// The output format follows the -o suffix: .ppm or .hpgl.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"riot"
)

func main() {
	in := flag.String("in", "", "input file (.cif, .sticks or .comp)")
	cell := flag.String("cell", "", "cell to render (default: last cell in the file)")
	out := flag.String("o", "", "output file (.ppm or .hpgl)")
	geometry := flag.Bool("geometry", false, "draw full mask geometry instead of the instance view")
	w := flag.Int("w", 768, "raster width")
	h := flag.Int("h", 512, "raster height")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *in == "" || *out == "" {
		fail(fmt.Errorf("riotplot: -in and -o are required"))
	}

	s, err := riot.NewSession(os.Stderr)
	fail(err)
	s.Mount(os.DirFS("."))
	fail(s.Exec("READ " + *in))

	name := *cell
	if name == "" {
		names := s.Design().CellNames()
		if len(names) == 0 {
			fail(fmt.Errorf("riotplot: no cells in %s", *in))
		}
		name = names[len(names)-1]
	}

	var data []byte
	switch strings.ToLower(filepath.Ext(*out)) {
	case ".ppm":
		data, err = s.RenderPPM(name, *w, *h, *geometry)
	case ".hpgl":
		data, err = s.PlotHPGL(name, *geometry)
	default:
		err = fmt.Errorf("riotplot: unknown output type %q (want .ppm or .hpgl)", *out)
	}
	fail(err)
	fail(os.WriteFile(*out, data, 0o644))
	fmt.Printf("rendered %s from %s to %s (%d bytes)\n", name, *in, *out, len(data))
}
