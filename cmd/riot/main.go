// Command riot is the interactive chip-assembly tool: a shell speaking
// the textual command language over the current directory, with the
// simulated graphic workstation available for screenshots.
//
// Usage:
//
//	riot                      interactive session on stdin
//	riot -f script.riot       run a command script, then exit
//	riot -c "CMD; CMD; ..."   run commands from the flag, then exit
//	riot -screenshot out.ppm  after the script, render the cell under
//	                          edit through the figure-2 screen layout
//	riot -workstation gigi    use the GIGI configuration (default
//	                          charles)
//	riot -drc CHIP            after the script, design-rule check the
//	                          named cell
//	riot -extract CHIP        after the script, extract the named
//	                          cell's circuit and print a summary
//	riot -lvs CHIP            after the script, compare the named
//	                          cell's extracted netlist against its
//	                          declared composition
//	riot -cache DIR           persist verification caches (flatten
//	                          shards, leaf netlists, LVS and per-cell
//	                          hierarchical certificates) under DIR
//	                          across invocations; defaults to
//	                          $RIOT_CACHE when set
//	riot -stats               after the run, print the unified
//	                          verification statistics (every mode:
//	                          -drc, -extract, -lvs, scripts)
//	riot -stats=json          same content as one machine-readable
//	                          JSON object
//	riot -trace FILE          record the verification pipeline's span
//	                          tree and write it as Chrome trace-event
//	                          JSON (load in chrome://tracing or
//	                          ui.perfetto.dev)
//	riot -hier=false          verify with the flat engines only,
//	                          bypassing the hierarchical per-cell
//	                          certificate path (verdicts are identical;
//	                          this is the slow reference mode)
//	riot -faults SPEC         arm deterministic fault-injection points
//	                          (e.g. "cert-pend=SRCELL,store-corrupt:1")
//	                          to exercise the pipeline's degradation
//	                          paths; defaults to $RIOT_FAULTS when set
//	riot -serve               run the multi-session design server: a
//	                          line protocol over stdin (OPEN <sid>
//	                          [<design>], ON <sid> <command...>,
//	                          CLOSE <sid>, SESSIONS, STATS [JSON],
//	                          QUIT) multiplexing editing sessions over
//	                          shared designs and one shared
//	                          verification store; combine with -cache
//	                          to persist it and -stats[=json] for the
//	                          aggregate counters after serving

//
// Exit status distinguishes why a run failed: 0 means every requested
// check passed; 1 means the design failed verification (design-rule
// violations, an LVS mismatch, or a failed extraction); 2 means the
// invocation itself was broken (bad flags, an unreadable script, a
// command error, an unknown cell, an unusable cache directory).
//
// Files are read from and written to the working directory. The
// standard cell library (pads.cif, srcell.sticks, nand.sticks,
// or4.sticks, pipe fittings) is available without any files on disk.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"riot"
	"riot/internal/faultinject"
	"riot/internal/serve"
)

const (
	exitOK     = 0 // requested checks all passed
	exitVerify = 1 // the design failed verification
	exitConfig = 2 // the invocation was broken (flags, files, cells)
)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

// statsFlag accepts -stats (human-readable text), -stats=json
// (machine-readable) and -stats=false. Declaring IsBoolFlag lets the
// bare form work without swallowing the next argument.
type statsFlag struct {
	on   bool
	json bool
}

func (f *statsFlag) String() string {
	switch {
	case f.on && f.json:
		return "json"
	case f.on:
		return "true"
	}
	return "false"
}

func (f *statsFlag) IsBoolFlag() bool { return true }

func (f *statsFlag) Set(v string) error {
	switch v {
	case "true", "text":
		f.on, f.json = true, false
	case "false":
		f.on, f.json = false, false
	case "json":
		f.on, f.json = true, true
	default:
		return fmt.Errorf("want -stats, -stats=json or -stats=false, got %q", v)
	}
	return nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("riot", flag.ContinueOnError)
	fl.SetOutput(stderr)
	fl.Usage = func() {
		fmt.Fprintln(stderr, `usage: riot [-f script | -c "CMD; ..."] [-drc CELL] [-extract CELL] [-lvs CELL] [-stats[=json]] [-trace FILE] [-cache DIR] [-screenshot FILE [-workstation charles|gigi]]`)
	}
	script := fl.String("f", "", "command script to run")
	cmds := fl.String("c", "", "semicolon-separated commands to run")
	screenshot := fl.String("screenshot", "", "write a screen image (PPM) after the script")
	station := fl.String("workstation", "charles", "workstation configuration: charles or gigi")
	drcCell := fl.String("drc", "", "design-rule check a cell after the script (exit 1 on violations)")
	extractCell := fl.String("extract", "", "extract a cell's circuit after the script (exit 1 on failure)")
	lvsCell := fl.String("lvs", "", "netlist-compare a cell after the script (exit 1 on mismatch)")
	cacheDir := fl.String("cache", os.Getenv("RIOT_CACHE"), "persistent verification cache directory (default $RIOT_CACHE)")
	var stats statsFlag
	fl.Var(&stats, "stats", "print unified verification statistics after the run (=json: machine-readable)")
	traceFile := fl.String("trace", "", "write the pipeline's span tree as Chrome trace-event JSON to FILE")
	hier := fl.Bool("hier", true, "verify through hierarchical per-cell certificates (=false: flat engines only)")
	faults := fl.String("faults", os.Getenv("RIOT_FAULTS"), "arm fault-injection points, e.g. \"cert-pend=SRCELL,store-corrupt:1\" (default $RIOT_FAULTS)")
	srv := fl.Bool("serve", false, "run the multi-session design server over stdin (OPEN/ON/CLOSE/SESSIONS/STATS/QUIT)")
	if err := fl.Parse(args); err != nil {
		return exitConfig
	}
	if fl.NArg() > 0 {
		fmt.Fprintf(stderr, "riot: unexpected argument %q (commands go through -f or -c)\n", fl.Arg(0))
		return exitConfig
	}
	if *script != "" && *cmds != "" {
		fmt.Fprintln(stderr, "riot: -f and -c are mutually exclusive")
		return exitConfig
	}
	if *srv {
		if *script != "" || *cmds != "" || *drcCell != "" || *extractCell != "" || *lvsCell != "" || *screenshot != "" {
			fmt.Fprintln(stderr, "riot: -serve takes its commands on stdin (no -f/-c/-drc/-extract/-lvs/-screenshot)")
			return exitConfig
		}
		sv, err := serve.New(serve.Options{
			CacheDir: *cacheDir,
			Log:      func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) },
		})
		if err != nil {
			fmt.Fprintf(stderr, "riot: -serve: %v\n", err)
			return exitConfig
		}
		if err := sv.Serve(stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "riot: -serve: %v\n", err)
			return exitConfig
		}
		if stats.on {
			snap := sv.Snapshot()
			if stats.json {
				fmt.Fprintf(stdout, "%s\n", snap.JSON())
			} else {
				fmt.Fprint(stdout, snap.Text())
			}
		}
		return exitOK
	}

	s, err := riot.NewSession(stdout)
	if err != nil {
		fmt.Fprintf(stderr, "riot: %v\n", err)
		return exitConfig
	}
	// real files behind the in-memory library
	s.Mount(os.DirFS("."))
	s.Shell.WriteFile = func(name string, data []byte) error {
		return os.WriteFile(name, data, 0o644)
	}
	s.Shell.CreateFile = func(name string) (io.WriteCloser, error) {
		return os.Create(name)
	}
	s.Shell.Verifier.Hier = *hier
	if *faults != "" {
		set, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "riot: -faults: %v\n", err)
			return exitConfig
		}
		s.Shell.InjectFaults(set)
	}
	if *cacheDir != "" {
		if err := s.AttachCache(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "riot: cache %s: %v\n", *cacheDir, err)
			return exitConfig
		}
	}
	var trace *riot.Trace
	if *traceFile != "" {
		trace = riot.NewTrace()
		s.SetTrace(trace)
	}

	switch {
	case *script != "":
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintf(stderr, "riot: %v\n", err)
			return exitConfig
		}
		err = s.Run(f) // command errors print and continue; err is the reader's
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "riot: %s: %v\n", *script, err)
			return exitConfig
		}
	case *cmds != "":
		for _, c := range strings.Split(*cmds, ";") {
			if err := s.Exec(strings.TrimSpace(c)); err != nil {
				fmt.Fprintf(stderr, "riot: %v\n", err)
				return exitConfig
			}
		}
	default:
		fmt.Fprintln(stdout, "riot — graphical chip assembly (DAC 1982 reproduction)")
		fmt.Fprintln(stdout, "type HELP for commands, QUIT to leave")
		in := bufio.NewScanner(stdin)
		for !s.Shell.Quit() {
			fmt.Fprint(stdout, "riot> ")
			if !in.Scan() {
				break
			}
			if err := s.Exec(in.Text()); err != nil {
				fmt.Fprintf(stdout, "?%v\n", err)
			}
		}
	}

	// asking to verify a cell that doesn't exist is a broken
	// invocation, not a failing verdict
	missing := func(flagName, name string) bool {
		if _, ok := s.Design().Cell(name); ok {
			return false
		}
		fmt.Fprintf(stderr, "riot: %s: no cell %q in the design\n", flagName, name)
		return true
	}

	code := exitOK
	if *extractCell != "" {
		if missing("-extract", *extractCell) {
			return exitConfig
		}
		ckt, err := s.Extract(*extractCell)
		if err != nil {
			fmt.Fprintf(stderr, "riot: extract %s: %v\n", *extractCell, err)
			code = exitVerify
		} else {
			fmt.Fprintf(stdout, "%s: %d net(s), %d transistor(s), %d label(s)\n",
				*extractCell, ckt.NetCount, len(ckt.Transistors), len(ckt.NetOf))
		}
	}
	if *lvsCell != "" {
		if missing("-lvs", *lvsCell) {
			return exitConfig
		}
		switch res, err := s.CheckLVS(*lvsCell); {
		case err != nil:
			fmt.Fprintf(stderr, "riot: lvs %s: %v\n", *lvsCell, err)
			code = exitVerify
		case !res.Clean:
			for _, mm := range res.Mismatches {
				fmt.Fprintln(stdout, mm)
			}
			fmt.Fprintf(stdout, "%s: %d LVS mismatch(es)\n", *lvsCell, len(res.Mismatches))
			code = exitVerify
		default:
			fmt.Fprintf(stdout, "%s: netlists match (%d nets, %d devices)\n", *lvsCell, res.RefNets, res.RefDevices)
		}
	}
	if *drcCell != "" {
		if missing("-drc", *drcCell) {
			return exitConfig
		}
		// failures exit 1, but only after a requested screenshot is
		// written — the render of the failing layout is what the user
		// wants
		switch vs, err := s.CheckDRC(*drcCell); {
		case err != nil:
			fmt.Fprintf(stderr, "riot: drc %s: %v\n", *drcCell, err)
			code = exitVerify
		case len(vs) > 0:
			for _, v := range vs {
				fmt.Fprintln(stdout, v)
			}
			fmt.Fprintf(stdout, "%s: %d design-rule violation(s)\n", *drcCell, len(vs))
			code = exitVerify
		default:
			fmt.Fprintf(stdout, "%s: no design-rule violations\n", *drcCell)
		}
	}

	if stats.on {
		// -stats with nothing verified is a broken invocation: nothing
		// ran, so every counter would read zero no matter the design
		if !s.Shell.VerifiedAny() {
			fmt.Fprintln(stderr, "riot: -stats: no verification ran (combine with -drc, -extract, -lvs, or a script that verifies)")
			return exitConfig
		}
		snap := s.Snapshot()
		if stats.json {
			fmt.Fprintf(stdout, "%s\n", snap.JSON())
		} else {
			fmt.Fprint(stdout, snap.Text())
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "riot: -trace: %v\n", err)
			return exitConfig
		}
		werr := trace.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "riot: -trace %s: %v\n", *traceFile, werr)
			return exitConfig
		}
	}

	if *screenshot != "" {
		if s.Editor() == nil {
			fmt.Fprintln(stderr, "riot: -screenshot needs a cell under edit at script end")
			return exitConfig
		}
		u, _, err := s.OpenWorkstation(*station)
		if err != nil {
			fmt.Fprintf(stderr, "riot: %v\n", err)
			return exitConfig
		}
		u.ShowNames = true
		if err := u.Screenshot(*screenshot); err != nil {
			fmt.Fprintf(stderr, "riot: screenshot %s: %v\n", *screenshot, err)
			return exitConfig
		}
		fmt.Fprintf(stdout, "screenshot written to %s\n", *screenshot)
	}

	return code
}

