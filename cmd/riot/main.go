// Command riot is the interactive chip-assembly tool: a shell speaking
// the textual command language over the current directory, with the
// simulated graphic workstation available for screenshots.
//
// Usage:
//
//	riot                      interactive session on stdin
//	riot -f script.riot       run a command script, then exit
//	riot -c "CMD; CMD; ..."   run commands from the flag, then exit
//	riot -screenshot out.ppm  after the script, render the cell under
//	                          edit through the figure-2 screen layout
//	riot -workstation gigi    use the GIGI configuration (default
//	                          charles)
//	riot -drc CHIP            after the script, design-rule check the
//	                          named cell; exit status 1 if it has
//	                          violations
//	riot -extract CHIP        after the script, extract the named
//	                          cell's circuit and print a summary; exit
//	                          status 1 if extraction fails
//	riot -lvs CHIP            after the script, compare the named
//	                          cell's extracted netlist against its
//	                          declared composition; exit status 1 on
//	                          any mismatch
//
// Files are read from and written to the working directory. The
// standard cell library (pads.cif, srcell.sticks, nand.sticks,
// or4.sticks, pipe fittings) is available without any files on disk.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"riot"
)

func main() {
	script := flag.String("f", "", "command script to run")
	cmds := flag.String("c", "", "semicolon-separated commands to run")
	screenshot := flag.String("screenshot", "", "write a screen image (PPM) after the script")
	station := flag.String("workstation", "charles", "workstation configuration: charles or gigi")
	drcCell := flag.String("drc", "", "design-rule check a cell after the script (exit 1 on violations)")
	extractCell := flag.String("extract", "", "extract a cell's circuit after the script (exit 1 on failure)")
	lvsCell := flag.String("lvs", "", "netlist-compare a cell after the script (exit 1 on mismatch)")
	flag.Parse()

	s, err := riot.NewSession(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// real files behind the in-memory library
	s.Mount(os.DirFS("."))
	s.Shell.WriteFile = func(name string, data []byte) error {
		return os.WriteFile(name, data, 0o644)
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *script != "":
		f, err := os.Open(*script)
		fail(err)
		defer f.Close()
		fail(s.Run(f))
	case *cmds != "":
		for _, c := range strings.Split(*cmds, ";") {
			if err := s.Exec(strings.TrimSpace(c)); err != nil {
				fail(err)
			}
		}
	default:
		fmt.Println("riot — graphical chip assembly (DAC 1982 reproduction)")
		fmt.Println("type HELP for commands, QUIT to leave")
		in := bufio.NewScanner(os.Stdin)
		for !s.Shell.Quit() {
			fmt.Print("riot> ")
			if !in.Scan() {
				break
			}
			if err := s.Exec(in.Text()); err != nil {
				fmt.Printf("?%v\n", err)
			}
		}
	}

	drcDirty := false
	if *extractCell != "" {
		ckt, err := s.Extract(*extractCell)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			drcDirty = true
		} else {
			fmt.Printf("%s: %d net(s), %d transistor(s), %d label(s)\n",
				*extractCell, ckt.NetCount, len(ckt.Transistors), len(ckt.NetOf))
		}
	}
	if *lvsCell != "" {
		switch res, err := s.CheckLVS(*lvsCell); {
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			drcDirty = true
		case !res.Clean:
			for _, mm := range res.Mismatches {
				fmt.Println(mm)
			}
			fmt.Printf("%s: %d LVS mismatch(es)\n", *lvsCell, len(res.Mismatches))
			drcDirty = true
		default:
			fmt.Printf("%s: netlists match (%d nets, %d devices)\n", *lvsCell, res.RefNets, res.RefDevices)
		}
	}
	if *drcCell != "" {
		// failures exit 1, but only after a requested screenshot is
		// written — the render of the failing layout is what the user
		// wants
		switch vs, err := s.CheckDRC(*drcCell); {
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			drcDirty = true
		case len(vs) > 0:
			for _, v := range vs {
				fmt.Println(v)
			}
			fmt.Printf("%s: %d design-rule violation(s)\n", *drcCell, len(vs))
			drcDirty = true
		default:
			fmt.Printf("%s: no design-rule violations\n", *drcCell)
		}
	}

	if *screenshot != "" {
		if s.Editor() == nil {
			fail(fmt.Errorf("riot: -screenshot needs a cell under edit at script end"))
		}
		u, _, err := s.OpenWorkstation(*station)
		fail(err)
		u.ShowNames = true
		fail(u.Screenshot(*screenshot))
		fmt.Printf("screenshot written to %s\n", *screenshot)
	}

	if drcDirty {
		os.Exit(1)
	}
}
