package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riot/internal/castore"
)

var update = flag.Bool("update", false, "rewrite the golden stats files")

// grid builds an abutting SRCELL array entirely from library files, so
// the CLI tests need nothing on disk.
const grid = "READ srcell.sticks; EDIT CHIP; CREATE SRCELL a ARRAY 4 4"

// execRun drives the CLI entry point with captured streams and an
// empty stdin (interactive mode exits immediately on EOF).
func execRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	t.Logf("riot %q -> %d\nstdout: %s\nstderr: %s", args, code, out.String(), errb.String())
	return code, out.String(), errb.String()
}

// TestExitCodeMatrix pins the exit-code contract over the broken-input
// space: 0 for a passing run, 1 when the design fails verification,
// 2 when the invocation itself is unusable — with a one-line
// diagnostic on stderr for every 2.
func TestExitCodeMatrix(t *testing.T) {
	t.Chdir(t.TempDir())
	cases := []struct {
		name      string
		args      []string
		code      int
		errNeedle string // wanted in stderr (exit 2 cases)
		outNeedle string // wanted in stdout
	}{
		{name: "clean lvs", args: []string{"-c", grid, "-lvs", "CHIP"},
			code: exitOK, outNeedle: "netlists match"},
		{name: "clean drc", args: []string{"-c", grid, "-drc", "CHIP"},
			code: exitOK, outNeedle: "no design-rule violations"},
		{name: "clean extract", args: []string{"-c", grid, "-extract", "CHIP"},
			code: exitOK, outNeedle: "transistor(s)"},
		// b parked one lambda above a: disconnected rails within
		// spacing range of each other
		{name: "drc violations", args: []string{"-c", "READ srcell.sticks; EDIT CHIP; CREATE SRCELL a AT 0 0; CREATE SRCELL b AT 0 25", "-drc", "CHIP"},
			code: exitVerify, outNeedle: "design-rule violation(s)"},
		{name: "unknown flag", args: []string{"-no-such-flag"},
			code: exitConfig, errNeedle: "flag provided but not defined"},
		{name: "positional argument", args: []string{"stray"},
			code: exitConfig, errNeedle: "unexpected argument"},
		{name: "f and c together", args: []string{"-f", "x.riot", "-c", "HELP"},
			code: exitConfig, errNeedle: "mutually exclusive"},
		{name: "missing script", args: []string{"-f", "no-such-script.riot"},
			code: exitConfig, errNeedle: "no-such-script.riot"},
		{name: "bad command", args: []string{"-c", "FROBNICATE CHIP"},
			code: exitConfig, errNeedle: "unknown command"},
		{name: "drc unknown cell", args: []string{"-c", grid, "-drc", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "lvs unknown cell", args: []string{"-c", grid, "-lvs", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "extract unknown cell", args: []string{"-c", grid, "-extract", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "screenshot without editor", args: []string{"-c", "READ srcell.sticks", "-screenshot", "out.ppm"},
			code: exitConfig, errNeedle: "needs a cell under edit"},
		{name: "bad workstation", args: []string{"-c", grid, "-screenshot", "out.ppm", "-workstation", "vt52"},
			code: exitConfig, errNeedle: "unknown workstation"},
		{name: "unusable cache dir", args: []string{"-cache", "/proc/1/no-such-cache", "-c", "HELP"},
			code: exitConfig, errNeedle: "cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := execRun(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d", code, tc.code)
			}
			if tc.errNeedle != "" && !strings.Contains(errOut, tc.errNeedle) {
				t.Errorf("stderr %q does not contain %q", errOut, tc.errNeedle)
			}
			if tc.outNeedle != "" && !strings.Contains(out, tc.outNeedle) {
				t.Errorf("stdout %q does not contain %q", out, tc.outNeedle)
			}
			if code == exitConfig {
				if lines := strings.Count(strings.TrimSpace(errOut), "\n"); lines > 2 {
					t.Errorf("config error produced %d stderr lines, want a short diagnostic:\n%s", lines+1, errOut)
				}
			}
		})
	}
}

// statsJSON extracts and parses the -stats=json object from a run's
// stdout (the last line).
func statsJSON(t *testing.T, out string) map[string]map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	var snap map[string]map[string]any
	if err := json.Unmarshal([]byte(last), &snap); err != nil {
		t.Fatalf("stats line %q is not a JSON object: %v", last, err)
	}
	return snap
}

// counter reads one numeric stat from a parsed snapshot.
func counter(t *testing.T, snap map[string]map[string]any, section, key string) float64 {
	t.Helper()
	sec, ok := snap[section]
	if !ok {
		t.Fatalf("stats missing section %q: %v", section, snap)
	}
	v, ok := sec[key].(float64)
	if !ok {
		t.Fatalf("stats section %q missing numeric %q: %v", section, key, sec)
	}
	return v
}

// TestCacheWarmStart runs the same -lvs check twice over one cache
// directory and asserts the second invocation answers from the
// persistent store — the CLI-level shape the CI warm-start job checks
// through -stats=json.
func TestCacheWarmStart(t *testing.T) {
	t.Chdir(t.TempDir())
	cache := filepath.Join(t.TempDir(), "cache")

	code, out, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats=json")
	if code != exitOK {
		t.Fatalf("cold run exit = %d", code)
	}
	snap := statsJSON(t, out)
	if got := counter(t, snap, "lvs", "matched"); got != 1 {
		t.Fatalf("cold run matched = %v, want 1:\n%s", got, out)
	}

	code, out, _ = execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats=json")
	if code != exitOK {
		t.Fatalf("warm run exit = %d", code)
	}
	snap = statsJSON(t, out)
	if got := counter(t, snap, "lvs", "matched"); got != 0 {
		t.Errorf("warm run still matched (%v):\n%s", got, out)
	}
	if got := counter(t, snap, "hier", "cert_disk_hits"); got != 1 {
		t.Errorf("warm run loaded %v certificate(s) from disk, want 1:\n%s", got, out)
	}
	if got := counter(t, snap, "flatten", "disk_loaded"); got != 1 {
		t.Errorf("warm run loaded %v shard(s) from disk, want 1:\n%s", got, out)
	}
	if got := counter(t, snap, "castore", "corrupt"); got != 0 {
		t.Errorf("warm run reported corruption (%v):\n%s", got, out)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("warm run verdict missing:\n%s", out)
	}
}

// TestStatsGolden pins the exact -stats text and -stats=json output of
// a deterministic DRC run against golden files: the field set, the
// section ordering and the counter values are the machine-readable
// contract (go test ./cmd/riot -run StatsGolden -update rewrites them).
func TestStatsGolden(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join(wd, "testdata")
	t.Chdir(t.TempDir())
	for _, tc := range []struct {
		name   string
		flag   string
		golden string
	}{
		{"text", "-stats", "stats_text.golden"},
		{"json", "-stats=json", "stats_json.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := execRun(t, "-c", grid, "-drc", "CHIP", tc.flag)
			if code != exitOK {
				t.Fatalf("exit = %d, stderr %s", code, errOut)
			}
			// the stats block follows the DRC verdict line
			i := strings.Index(out, "no design-rule violations\n")
			if i < 0 {
				t.Fatalf("verdict line missing:\n%s", out)
			}
			got := out[i+len("no design-rule violations\n"):]
			path := filepath.Join(goldenDir, tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("stats output drifted from %s:\ngot:\n%swant:\n%s", tc.golden, got, want)
			}
		})
	}
}

// TestStatsRequiresWork pins the satellite contract: -stats in any mode
// that verified something reports, and -stats with nothing verified is
// a broken invocation (exit 2), not a silent no-op.
func TestStatsRequiresWork(t *testing.T) {
	t.Chdir(t.TempDir())
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"drc", []string{"-c", grid, "-drc", "CHIP", "-stats"}},
		{"extract", []string{"-c", grid, "-extract", "CHIP", "-stats"}},
		{"lvs", []string{"-c", grid, "-lvs", "CHIP", "-stats"}},
		{"script", []string{"-c", grid + "; DRC", "-stats"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := execRun(t, tc.args...)
			if code != exitOK {
				t.Fatalf("exit = %d, stderr %s", code, errOut)
			}
			if !strings.Contains(out, "verify: cached=") {
				t.Errorf("-stats printed nothing for %s:\n%s", tc.name, out)
			}
		})
	}
	code, _, errOut := execRun(t, "-c", grid, "-stats")
	if code != exitConfig {
		t.Fatalf("-stats with no verification: exit = %d, want %d", code, exitConfig)
	}
	if !strings.Contains(errOut, "no verification ran") {
		t.Errorf("missing diagnostic: %q", errOut)
	}
}

// TestStatsSurfacesAgree runs the shell STATS JSON command and the
// -stats=json flag in one invocation with no verification between them
// and pins byte-identical output — the CLI side of the three-surface
// identity (Session.Snapshot is pinned in the riot package tests).
func TestStatsSurfacesAgree(t *testing.T) {
	t.Chdir(t.TempDir())
	code, out, errOut := execRun(t, "-c", grid+"; DRC; STATS JSON", "-stats=json")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("want STATS JSON and -stats=json lines:\n%s", out)
	}
	shellLine, flagLine := lines[len(lines)-2], lines[len(lines)-1]
	if !strings.HasPrefix(shellLine, "{") || shellLine != flagLine {
		t.Errorf("STATS JSON and -stats=json disagree:\nshell: %s\nflag:  %s", shellLine, flagLine)
	}
}

// TestTraceFlag pins -trace end to end: the file exists, parses as
// Chrome trace-event JSON, and contains the pipeline's top span.
func TestTraceFlag(t *testing.T) {
	t.Chdir(t.TempDir())
	code, _, errOut := execRun(t, "-c", grid, "-lvs", "CHIP", "-trace", "trace.json")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr %s", code, errOut)
	}
	data, err := os.ReadFile("trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"lvs", "verify", "hier", "match"} {
		if !names[want] {
			t.Errorf("trace missing span %q (events: %v)", want, names)
		}
	}
}

// TestInteractiveEOF pins that an interactive session exits 0 on EOF
// and on QUIT, without touching the verification paths.
func TestInteractiveEOF(t *testing.T) {
	t.Chdir(t.TempDir())
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("HELP\nQUIT\n"), &out, &errb); code != exitOK {
		t.Fatalf("interactive exit = %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "riot>") {
		t.Errorf("no prompt printed:\n%s", out.String())
	}
}

// TestTamperedCacheStats pins the tamper-then-stats contract: damaging
// every persistent-store entry between two runs must not change the
// verdict — the store rejects, quarantines and recomputes — and the
// corruption must be visible in the -stats counters.
func TestTamperedCacheStats(t *testing.T) {
	t.Chdir(t.TempDir())
	cache := filepath.Join(t.TempDir(), "cache")

	if code, _, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats"); code != exitOK {
		t.Fatalf("cold run exit = %d", code)
	}
	n, err := castore.TamperEntries(cache, castore.TamperBitFlip)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing to tamper: the cold run persisted no entries")
	}

	code, out, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats=json")
	if code != exitOK {
		t.Fatalf("tampered run exit = %d; corruption must degrade, not fail", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("tampered run verdict missing:\n%s", out)
	}
	snap := statsJSON(t, out)
	if got := counter(t, snap, "castore", "corrupt"); got == 0 {
		t.Errorf("tampered run reported zero corruption after %d tampered entries:\n%s", n, out)
	}
	if got := counter(t, snap, "castore", "quarantined"); got == 0 {
		t.Errorf("tampered run quarantined nothing after %d tampered entries:\n%s", n, out)
	}
}

// TestFaultsFlag pins the -faults plumbing end to end: a bad spec is a
// broken invocation; an armed partial-degradation fault keeps the
// verdict and surfaces in -stats; an armed whole-decline fault falls
// back flat with a structured decline line.
func TestFaultsFlag(t *testing.T) {
	t.Chdir(t.TempDir())

	code, _, errOut := execRun(t, "-faults", "no-such-point", "-c", grid, "-lvs", "CHIP")
	if code != exitConfig || !strings.Contains(errOut, "unknown fault point") {
		t.Fatalf("bad spec: exit %d, stderr %q", code, errOut)
	}

	// template-poison on the corner placement: the placement and its
	// abutting partners quarantine, the rest compose, verdict holds
	code, out, _ := execRun(t, "-faults", "template-poison=0", "-c", grid, "-lvs", "CHIP", "-stats=json")
	if code != exitOK {
		t.Fatalf("poison-injected run exit = %d", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("poison-injected verdict missing:\n%s", out)
	}
	snap := statsJSON(t, out)
	if got := counter(t, snap, "hier", "partial_runs"); got != 1 {
		t.Errorf("poison-injected run not served partially (partial_runs=%v):\n%s", got, out)
	}
	if got := counter(t, snap, "faults", "template-poison"); got == 0 {
		t.Errorf("fault fire count missing from -stats:\n%s", out)
	}

	// cert-pend on every SRCELL: the whole grid would quarantine, the
	// budget declines the run and the flat path serves
	code, out, _ = execRun(t, "-faults", "cert-pend=SRCELL", "-c", grid, "-lvs", "CHIP", "-stats=json")
	if code != exitOK {
		t.Fatalf("pend-injected run exit = %d", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("pend-injected verdict missing:\n%s", out)
	}
	snap = statsJSON(t, out)
	if d, ok := snap["hier"]["decline"].(string); !ok || d != "quarantine-budget" {
		t.Errorf("structured decline missing from -stats (got %v):\n%s", snap["hier"]["decline"], out)
	}
}
