package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"riot/internal/castore"
)

// grid builds an abutting SRCELL array entirely from library files, so
// the CLI tests need nothing on disk.
const grid = "READ srcell.sticks; EDIT CHIP; CREATE SRCELL a ARRAY 4 4"

// execRun drives the CLI entry point with captured streams and an
// empty stdin (interactive mode exits immediately on EOF).
func execRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	t.Logf("riot %q -> %d\nstdout: %s\nstderr: %s", args, code, out.String(), errb.String())
	return code, out.String(), errb.String()
}

// TestExitCodeMatrix pins the exit-code contract over the broken-input
// space: 0 for a passing run, 1 when the design fails verification,
// 2 when the invocation itself is unusable — with a one-line
// diagnostic on stderr for every 2.
func TestExitCodeMatrix(t *testing.T) {
	t.Chdir(t.TempDir())
	cases := []struct {
		name      string
		args      []string
		code      int
		errNeedle string // wanted in stderr (exit 2 cases)
		outNeedle string // wanted in stdout
	}{
		{name: "clean lvs", args: []string{"-c", grid, "-lvs", "CHIP"},
			code: exitOK, outNeedle: "netlists match"},
		{name: "clean drc", args: []string{"-c", grid, "-drc", "CHIP"},
			code: exitOK, outNeedle: "no design-rule violations"},
		{name: "clean extract", args: []string{"-c", grid, "-extract", "CHIP"},
			code: exitOK, outNeedle: "transistor(s)"},
		// b parked one lambda above a: disconnected rails within
		// spacing range of each other
		{name: "drc violations", args: []string{"-c", "READ srcell.sticks; EDIT CHIP; CREATE SRCELL a AT 0 0; CREATE SRCELL b AT 0 25", "-drc", "CHIP"},
			code: exitVerify, outNeedle: "design-rule violation(s)"},
		{name: "unknown flag", args: []string{"-no-such-flag"},
			code: exitConfig, errNeedle: "flag provided but not defined"},
		{name: "positional argument", args: []string{"stray"},
			code: exitConfig, errNeedle: "unexpected argument"},
		{name: "f and c together", args: []string{"-f", "x.riot", "-c", "HELP"},
			code: exitConfig, errNeedle: "mutually exclusive"},
		{name: "missing script", args: []string{"-f", "no-such-script.riot"},
			code: exitConfig, errNeedle: "no-such-script.riot"},
		{name: "bad command", args: []string{"-c", "FROBNICATE CHIP"},
			code: exitConfig, errNeedle: "unknown command"},
		{name: "drc unknown cell", args: []string{"-c", grid, "-drc", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "lvs unknown cell", args: []string{"-c", grid, "-lvs", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "extract unknown cell", args: []string{"-c", grid, "-extract", "NOPE"},
			code: exitConfig, errNeedle: `no cell "NOPE"`},
		{name: "screenshot without editor", args: []string{"-c", "READ srcell.sticks", "-screenshot", "out.ppm"},
			code: exitConfig, errNeedle: "needs a cell under edit"},
		{name: "bad workstation", args: []string{"-c", grid, "-screenshot", "out.ppm", "-workstation", "vt52"},
			code: exitConfig, errNeedle: "unknown workstation"},
		{name: "unusable cache dir", args: []string{"-cache", "/proc/1/no-such-cache", "-c", "HELP"},
			code: exitConfig, errNeedle: "cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := execRun(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d", code, tc.code)
			}
			if tc.errNeedle != "" && !strings.Contains(errOut, tc.errNeedle) {
				t.Errorf("stderr %q does not contain %q", errOut, tc.errNeedle)
			}
			if tc.outNeedle != "" && !strings.Contains(out, tc.outNeedle) {
				t.Errorf("stdout %q does not contain %q", out, tc.outNeedle)
			}
			if code == exitConfig {
				if lines := strings.Count(strings.TrimSpace(errOut), "\n"); lines > 2 {
					t.Errorf("config error produced %d stderr lines, want a short diagnostic:\n%s", lines+1, errOut)
				}
			}
		})
	}
}

// TestCacheWarmStart runs the same -lvs check twice over one cache
// directory and asserts the second invocation answers from the
// persistent store — the CLI-level shape the CI warm-start job greps.
func TestCacheWarmStart(t *testing.T) {
	t.Chdir(t.TempDir())
	cache := filepath.Join(t.TempDir(), "cache")

	code, out, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats")
	if code != exitOK {
		t.Fatalf("cold run exit = %d", code)
	}
	if !strings.Contains(out, "1 sub-cell match(es) performed") {
		t.Fatalf("cold run stats missing the match:\n%s", out)
	}

	code, out, _ = execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats")
	if code != exitOK {
		t.Fatalf("warm run exit = %d", code)
	}
	if !strings.Contains(out, "0 sub-cell match(es) performed") {
		t.Errorf("warm run still matched:\n%s", out)
	}
	if !strings.Contains(out, "1 certificate(s) and 1 shard(s) loaded from disk") {
		t.Errorf("warm run did not load from the persistent store:\n%s", out)
	}
	if !strings.Contains(out, "0 corrupt entr(ies) quarantined") {
		t.Errorf("warm run reported corruption:\n%s", out)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("warm run verdict missing:\n%s", out)
	}
}

// TestInteractiveEOF pins that an interactive session exits 0 on EOF
// and on QUIT, without touching the verification paths.
func TestInteractiveEOF(t *testing.T) {
	t.Chdir(t.TempDir())
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("HELP\nQUIT\n"), &out, &errb); code != exitOK {
		t.Fatalf("interactive exit = %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "riot>") {
		t.Errorf("no prompt printed:\n%s", out.String())
	}
}

// TestTamperedCacheStats pins the tamper-then-stats contract: damaging
// every persistent-store entry between two runs must not change the
// verdict — the store rejects, quarantines and recomputes — and the
// corruption must be visible in the -stats counters.
func TestTamperedCacheStats(t *testing.T) {
	t.Chdir(t.TempDir())
	cache := filepath.Join(t.TempDir(), "cache")

	if code, _, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats"); code != exitOK {
		t.Fatalf("cold run exit = %d", code)
	}
	n, err := castore.TamperEntries(cache, castore.TamperBitFlip)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing to tamper: the cold run persisted no entries")
	}

	code, out, _ := execRun(t, "-cache", cache, "-c", grid, "-lvs", "CHIP", "-stats")
	if code != exitOK {
		t.Fatalf("tampered run exit = %d; corruption must degrade, not fail", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("tampered run verdict missing:\n%s", out)
	}
	if strings.Contains(out, " 0 corrupt entr(ies) quarantined") {
		t.Errorf("tampered run reported zero corruption after %d tampered entries:\n%s", n, out)
	}
	if !strings.Contains(out, "corrupt entr(ies) quarantined (") ||
		!strings.Contains(out, "moved aside)") {
		t.Errorf("tampered run stats missing the quarantine counters:\n%s", out)
	}
}

// TestFaultsFlag pins the -faults plumbing end to end: a bad spec is a
// broken invocation; an armed partial-degradation fault keeps the
// verdict and surfaces in -stats; an armed whole-decline fault falls
// back flat with a structured decline line.
func TestFaultsFlag(t *testing.T) {
	t.Chdir(t.TempDir())

	code, _, errOut := execRun(t, "-faults", "no-such-point", "-c", grid, "-lvs", "CHIP")
	if code != exitConfig || !strings.Contains(errOut, "unknown fault point") {
		t.Fatalf("bad spec: exit %d, stderr %q", code, errOut)
	}

	// template-poison on the corner placement: the placement and its
	// abutting partners quarantine, the rest compose, verdict holds
	code, out, _ := execRun(t, "-faults", "template-poison=0", "-c", grid, "-lvs", "CHIP", "-stats")
	if code != exitOK {
		t.Fatalf("poison-injected run exit = %d", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("poison-injected verdict missing:\n%s", out)
	}
	if !strings.Contains(out, "partial 1 run(s)") {
		t.Errorf("poison-injected run not served partially:\n%s", out)
	}
	if !strings.Contains(out, "faults: template-poison=0 hit") {
		t.Errorf("fault fire count missing from -stats:\n%s", out)
	}

	// cert-pend on every SRCELL: the whole grid would quarantine, the
	// budget declines the run and the flat path serves
	code, out, _ = execRun(t, "-faults", "cert-pend=SRCELL", "-c", grid, "-lvs", "CHIP", "-stats")
	if code != exitOK {
		t.Fatalf("pend-injected run exit = %d", code)
	}
	if !strings.Contains(out, "netlists match") {
		t.Errorf("pend-injected verdict missing:\n%s", out)
	}
	if !strings.Contains(out, "hier declined: condition=quarantine-budget") {
		t.Errorf("structured decline line missing:\n%s", out)
	}
}
