package compact

import (
	"math/rand"
	"testing"

	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

func TestGraphSolveBasic(t *testing.T) {
	g := NewGraph(3)
	g.AddMin(0, 1, 5)
	g.AddMin(1, 2, 3)
	x, err := g.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 5 || x[2] != 8 {
		t.Errorf("x = %v", x)
	}
}

func TestGraphSolvePins(t *testing.T) {
	g := NewGraph(3)
	g.AddMin(0, 1, 5)
	g.AddMin(1, 2, 3)
	x, err := g.Solve(map[int]int{2: 20})
	if err != nil {
		t.Fatal(err)
	}
	if x[2] != 20 {
		t.Errorf("pinned x[2] = %d", x[2])
	}
	if x[1] != 5 || x[0] != 0 {
		t.Errorf("x = %v (pins should not push predecessors)", x)
	}
	// pin two variables
	x, err = g.Solve(map[int]int{1: 10, 2: 14})
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 10 || x[2] != 14 {
		t.Errorf("x = %v", x)
	}
}

func TestGraphSolveInfeasiblePin(t *testing.T) {
	g := NewGraph(2)
	g.AddMin(0, 1, 10)
	// pinning both so the separation is below the minimum must fail
	if _, err := g.Solve(map[int]int{0: 0, 1: 5}); err == nil {
		t.Error("accepted pin below minimum separation")
	}
	// a single pin below the forced minimum must fail
	g2 := NewGraph(2)
	g2.AddMin(0, 1, 10)
	g2.AddExact(0, 1, 10)
	if _, err := g2.Solve(map[int]int{1: 3}); err == nil {
		t.Error("accepted pin below forced position")
	}
}

func TestGraphSolvePositiveCycle(t *testing.T) {
	g := NewGraph(2)
	g.AddMin(0, 1, 5)
	g.AddMin(1, 0, -3) // x0 >= x1 - 3 combined with x1 >= x0+5: infeasible
	if _, err := g.Solve(nil); err == nil {
		t.Error("accepted positive cycle")
	}
}

func TestGraphSolveExact(t *testing.T) {
	g := NewGraph(2)
	g.AddExact(0, 1, 7)
	x, err := g.Solve(map[int]int{0: 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[1]-x[0] != 7 || x[0] != 3 {
		t.Errorf("x = %v", x)
	}
}

func TestGraphSolveBadPinIndex(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.Solve(map[int]int{5: 0}); err == nil {
		t.Error("accepted out-of-range pin")
	}
}

// gateCell builds a small stretchable cell: two vertical poly wires
// (inputs) crossing, with left/right metal rails, similar in spirit to
// the NAND gate of the paper's figure 8.
func gateCell() *sticks.Cell {
	return &sticks.Cell{
		Name: "GATE",
		Box:  geom.R(0, 0, 12, 10),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 2}, {X: 12, Y: 2}}},
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 4, Y: 0}, {X: 4, Y: 10}}},
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 8, Y: 0}, {X: 8, Y: 10}}},
		},
		Connectors: []sticks.Connector{
			{Name: "GL", At: geom.Pt(0, 2), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "GR", At: geom.Pt(12, 2), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "A", At: geom.Pt(4, 10), Layer: geom.NP, Width: 2, Side: geom.SideTop},
			{Name: "B", At: geom.Pt(8, 10), Layer: geom.NP, Width: 2, Side: geom.SideTop},
		},
	}
}

func TestCompactShrinks(t *testing.T) {
	c := gateCell()
	out, err := Compact(c, sticks.AxisX)
	if err != nil {
		t.Fatal(err)
	}
	// poly wires need 2 (width) + 2 (spacing): pitch 4, original pitch 4
	// is already minimal; the rails can close in though.
	if out.BBox().W() > c.BBox().W() {
		t.Errorf("compaction grew the cell: %v -> %v", c.BBox(), out.BBox())
	}
	a, _ := out.ConnectorByName("A")
	b, _ := out.ConnectorByName("B")
	if sep := b.At.X - a.At.X; sep < rules.Pitch(geom.NP) {
		t.Errorf("poly separation %d below pitch %d", sep, rules.Pitch(geom.NP))
	}
	if err := out.Validate(); err != nil {
		t.Errorf("compacted cell invalid: %v", err)
	}
}

func TestCompactDoesNotMutateInput(t *testing.T) {
	c := gateCell()
	before := sticks.String(c)
	if _, err := Compact(c, sticks.AxisX); err != nil {
		t.Fatal(err)
	}
	if sticks.String(c) != before {
		t.Error("Compact mutated its input")
	}
}

func TestStretchMovesConnectorsExactly(t *testing.T) {
	c := gateCell()
	out, err := Stretch(c, sticks.AxisX, []Pin{{"A", 10}, {"B", 30}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := out.ConnectorByName("A")
	b, _ := out.ConnectorByName("B")
	if a.At.X != 10 || b.At.X != 30 {
		t.Errorf("stretched connectors at %d, %d; want 10, 30", a.At.X, b.At.X)
	}
	// the poly wires moved with their connectors
	if out.Wires[1].Points[0].X != 10 || out.Wires[2].Points[0].X != 30 {
		t.Errorf("wires did not follow: %v %v", out.Wires[1].Points, out.Wires[2].Points)
	}
	// the right rail connector is still on the right edge
	if err := out.Validate(); err != nil {
		t.Errorf("stretched cell invalid: %v", err)
	}
	gr, _ := out.ConnectorByName("GR")
	if gr.At.X < 30 {
		t.Errorf("right edge did not stretch past B: %d", gr.At.X)
	}
}

func TestStretchInfeasibleBelowPitch(t *testing.T) {
	c := gateCell()
	// pinning the two poly inputs 1 lambda apart violates poly spacing
	if _, err := Stretch(c, sticks.AxisX, []Pin{{"A", 10}, {"B", 11}}); err == nil {
		t.Error("accepted stretch below poly pitch")
	}
}

func TestStretchUnknownConnector(t *testing.T) {
	c := gateCell()
	if _, err := Stretch(c, sticks.AxisX, []Pin{{"NOPE", 5}}); err == nil {
		t.Error("accepted pin of unknown connector")
	}
}

func TestStretchConflictingPins(t *testing.T) {
	c := gateCell()
	// GL and the rail share column x=0 with A? no; pin same connector twice
	if _, err := Stretch(c, sticks.AxisX, []Pin{{"A", 5}, {"A", 9}}); err == nil {
		t.Error("accepted conflicting pins")
	}
}

func TestStretchYAxis(t *testing.T) {
	c := gateCell()
	out, err := Stretch(c, sticks.AxisY, []Pin{{"GL", 4}})
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := out.ConnectorByName("GL")
	if gl.At.Y != 4 {
		t.Errorf("GL.Y = %d, want 4", gl.At.Y)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("Y-stretched cell invalid: %v", err)
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	c := gateCell()
	c.Devices = append(c.Devices, sticks.Device{Kind: sticks.Depletion, At: geom.Pt(6, 5), Vertical: true, W: 2, L: 2})
	c.Contacts = append(c.Contacts, sticks.Contact{From: geom.NM, To: geom.ND, At: geom.Pt(2, 2)})
	c.Constraints = append(c.Constraints, sticks.Constraint{Axis: sticks.AxisX, A: "A", B: "B", Min: 4})
	tt := transpose(transpose(c))
	if sticks.String(tt) != sticks.String(c) {
		t.Errorf("transpose not an involution:\n%s\nvs\n%s", sticks.String(c), sticks.String(tt))
	}
	// single transpose swaps sides
	tr := transpose(c)
	gl, _ := tr.ConnectorByName("GL")
	if gl.Side != geom.SideBottom {
		t.Errorf("left became %v, want bottom", gl.Side)
	}
}

func TestUserConstraintsRespected(t *testing.T) {
	c := gateCell()
	c.Constraints = append(c.Constraints, sticks.Constraint{Axis: sticks.AxisX, A: "A", B: "B", Min: 12})
	out, err := Compact(c, sticks.AxisX)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := out.ConnectorByName("A")
	b, _ := out.ConnectorByName("B")
	if b.At.X-a.At.X < 12 {
		t.Errorf("user constraint violated: separation %d", b.At.X-a.At.X)
	}
}

func TestConnectedMaterialNotForcedApart(t *testing.T) {
	// a contact sitting on a metal rail must be allowed to stay on it
	c := &sticks.Cell{
		Name: "RAIL",
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}}},
		},
		Contacts: []sticks.Contact{
			{From: geom.NM, To: geom.ND, At: geom.Pt(10, 0)},
		},
		Connectors: []sticks.Connector{
			{Name: "L", At: geom.Pt(0, 0), Layer: geom.NM, Width: 4, Side: geom.SideNone},
			{Name: "R", At: geom.Pt(20, 0), Layer: geom.NM, Width: 4, Side: geom.SideNone},
		},
	}
	out, err := Compact(c, sticks.AxisX)
	if err != nil {
		t.Fatal(err)
	}
	// contact stays between the endpoints
	ct := out.Contacts[0].At.X
	l, _ := out.ConnectorByName("L")
	r, _ := out.ConnectorByName("R")
	if ct < l.At.X || ct > r.At.X {
		t.Errorf("contact at %d escaped rail [%d,%d]", ct, l.At.X, r.At.X)
	}
}

// Property: stretching and then re-stretching back to the original
// connector coordinates restores legal geometry with the connectors at
// their original locations.
func TestStretchRoundTrip(t *testing.T) {
	c := gateCell()
	out, err := Stretch(c, sticks.AxisX, []Pin{{"A", 14}, {"B", 40}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Stretch(out, sticks.AxisX, []Pin{{"A", 4}, {"B", 8}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := back.ConnectorByName("A")
	b, _ := back.ConnectorByName("B")
	if a.At.X != 4 || b.At.X != 8 {
		t.Errorf("round trip connectors at %d, %d", a.At.X, b.At.X)
	}
}

// Property: random monotone pin sets either solve with every pin
// honored exactly, or report infeasibility — never silently misplace.
func TestStretchRandomPins(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := gateCell()
	for trial := 0; trial < 100; trial++ {
		pa := rng.Intn(30)
		pb := pa + rng.Intn(30)
		out, err := Stretch(c, sticks.AxisX, []Pin{{"A", pa}, {"B", pb}})
		if err != nil {
			if pb-pa >= rules.Pitch(geom.NP) && pa >= 4 {
				// wide-enough pins to the right of the left rail should
				// generally succeed; tight left pins may collide with
				// the rail connector column
				t.Logf("trial %d: pins %d,%d rejected: %v", trial, pa, pb, err)
			}
			continue
		}
		a, _ := out.ConnectorByName("A")
		b, _ := out.ConnectorByName("B")
		if a.At.X != pa || b.At.X != pb {
			t.Fatalf("trial %d: pins %d,%d landed at %d,%d", trial, pa, pb, a.At.X, b.At.X)
		}
	}
}

func TestCompactEmptyCell(t *testing.T) {
	c := &sticks.Cell{Name: "EMPTY"}
	out, err := Compact(c, sticks.AxisX)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "EMPTY" {
		t.Error("empty cell mangled")
	}
}
