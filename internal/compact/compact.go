package compact

import (
	"fmt"
	"sort"

	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// Pin requests that a named connector end up at an exact coordinate on
// the compaction axis (in the output cell's coordinate space, which
// starts at zero).
type Pin struct {
	Connector string
	Coord     int
}

// Compact re-solves the cell along one axis with no pins: every feature
// moves to its smallest legal coordinate under the design rules, user
// constraints and the original left-to-right (or bottom-to-top)
// ordering. The result is a new cell; the input is not modified.
func Compact(c *sticks.Cell, axis sticks.Axis) (*sticks.Cell, error) {
	return Stretch(c, axis, nil)
}

// Stretch re-solves the cell along one axis with the given connectors
// pinned to exact coordinates. This is Riot's stretched connection: the
// pins come from the connector positions of the instance being
// connected to, and the optimizer "moves the connectors to the
// constrained locations" while keeping the rest of the cell legal.
//
// Stretch returns a new cell (the paper: "making a new cell"); the
// input is not modified. It fails if the pins are below the cell's
// design-rule minimum separations or contradict its user constraints.
func Stretch(c *sticks.Cell, axis sticks.Axis, pins []Pin) (*sticks.Cell, error) {
	work := c
	if axis == sticks.AxisY {
		work = transpose(c)
	}
	out, err := stretchX(work, pins)
	if err != nil {
		return nil, err
	}
	if axis == sticks.AxisY {
		out = transpose(out)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compact: result invalid: %w", err)
	}
	return out, nil
}

// feature is one piece of mask material anchored to a column: it
// occupies [coord-halfLo, coord+halfHi] on the compaction axis and
// [lo, hi] on the other axis.
type feature struct {
	col            int
	layer          geom.Layer
	lo, hi         int
	halfLo, halfHi int
	origCoord      int
}

// origRect returns the feature's extent in the original layout,
// used to detect originally-connected (touching) material.
func (f feature) origRect() geom.Rect {
	return geom.R(f.origCoord-f.halfLo, f.lo, f.origCoord+f.halfHi, f.hi)
}

func stretchX(c *sticks.Cell, pins []Pin) (*sticks.Cell, error) {
	cols, index := collectColumns(c)
	if len(cols) == 0 {
		return c.Clone(), nil
	}
	feats := collectFeatures(c, index)

	g := NewGraph(len(cols))
	// ordering edges preserve the cell's topology
	for i := 1; i < len(cols); i++ {
		g.AddMin(i-1, i, 0)
	}
	// design-rule spacing between non-touching same-layer features
	for i, a := range feats {
		for _, b := range feats[i+1:] {
			if a.col == b.col || a.layer != b.layer {
				continue
			}
			if a.lo >= b.hi || b.lo >= a.hi {
				continue // no overlap on the other axis
			}
			if a.origRect().Touches(b.origRect()) {
				// same-layer material that touches in the original
				// layout is electrically connected and may stay joined
				continue
			}
			lo, hi := a, b
			if cols[lo.col] > cols[hi.col] {
				lo, hi = hi, lo
			}
			g.AddMin(lo.col, hi.col, lo.halfHi+hi.halfLo+rules.MinSpacing(a.layer))
		}
	}
	// user constraints on this axis
	for _, k := range c.Constraints {
		if k.Axis != sticks.AxisX {
			continue
		}
		ca, okA := c.ConnectorByName(k.A)
		cb, okB := c.ConnectorByName(k.B)
		if !okA || !okB {
			return nil, fmt.Errorf("compact: constraint references unknown connector")
		}
		g.AddMin(index[ca.At.X], index[cb.At.X], k.Min)
	}

	// pins
	pinMap := map[int]int{}
	for _, p := range pins {
		cn, ok := c.ConnectorByName(p.Connector)
		if !ok {
			return nil, fmt.Errorf("compact: pin of unknown connector %q", p.Connector)
		}
		col := index[cn.At.X]
		if prev, dup := pinMap[col]; dup && prev != p.Coord {
			return nil, fmt.Errorf("compact: conflicting pins for column of connector %q (%d vs %d)", p.Connector, prev, p.Coord)
		}
		pinMap[col] = p.Coord
	}

	solved, err := g.Solve(pinMap)
	if err != nil {
		return nil, err
	}

	// rewrite the cell with the new column coordinates
	out := c.Clone()
	remap := func(x int) int { return solved[index[x]] }
	for wi := range out.Wires {
		for pi := range out.Wires[wi].Points {
			out.Wires[wi].Points[pi].X = remap(out.Wires[wi].Points[pi].X)
		}
	}
	for di := range out.Devices {
		out.Devices[di].At.X = remap(out.Devices[di].At.X)
	}
	for ci := range out.Contacts {
		out.Contacts[ci].At.X = remap(out.Contacts[ci].At.X)
	}
	for ci := range out.Connectors {
		out.Connectors[ci].At.X = remap(out.Connectors[ci].At.X)
	}

	// re-derive the declared bounding box, preserving the original
	// margins beyond the extreme columns
	if c.HasBox {
		lmargin := cols[0] - c.Box.Min.X
		rmargin := c.Box.Max.X - cols[len(cols)-1]
		out.Box.Min.X = solved[0] - lmargin
		out.Box.Max.X = solved[len(cols)-1] + rmargin
	}
	return out, nil
}

// collectColumns gathers the distinct X coordinates of the cell into a
// sorted slice and an index map.
func collectColumns(c *sticks.Cell) ([]int, map[int]int) {
	set := map[int]bool{}
	for _, w := range c.Wires {
		for _, p := range w.Points {
			set[p.X] = true
		}
	}
	for _, d := range c.Devices {
		set[d.At.X] = true
	}
	for _, ct := range c.Contacts {
		set[ct.At.X] = true
	}
	for _, cn := range c.Connectors {
		set[cn.At.X] = true
	}
	cols := make([]int, 0, len(set))
	for x := range set {
		cols = append(cols, x)
	}
	sort.Ints(cols)
	index := make(map[int]int, len(cols))
	for i, x := range cols {
		index[x] = i
	}
	return cols, index
}

// collectFeatures converts the cell's contents into anchored features
// for constraint generation.
func collectFeatures(c *sticks.Cell, index map[int]int) []feature {
	var feats []feature
	add := func(x int, layer geom.Layer, lo, hi, halfLo, halfHi int) {
		feats = append(feats, feature{
			col: index[x], layer: layer, lo: lo, hi: hi,
			halfLo: halfLo, halfHi: halfHi, origCoord: x,
		})
	}
	for _, w := range c.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		h1, h2 := width/2, width-width/2
		for i := 1; i < len(w.Points); i++ {
			a, b := w.Points[i-1], w.Points[i]
			if a.X == b.X { // vertical segment: one feature at the column
				lo, hi := min(a.Y, b.Y)-h1, max(a.Y, b.Y)+h2
				add(a.X, w.Layer, lo, hi, h1, h2)
			} else { // horizontal segment: a feature at each endpoint
				add(a.X, w.Layer, a.Y-h1, a.Y+h2, h1, h2)
				add(b.X, w.Layer, b.Y-h1, b.Y+h2, h1, h2)
			}
		}
		if len(w.Points) == 1 {
			p := w.Points[0]
			add(p.X, w.Layer, p.Y-h1, p.Y+h2, h1, h2)
		}
	}
	for _, d := range c.Devices {
		// gate poly and diffusion channel, with the standard 2-lambda
		// extensions (see sticks.deviceBoxes)
		const ext = 2
		var gx, gy, cx, cy int // half extents of gate and channel
		if d.Vertical {
			gx, gy = d.W/2+ext, d.L/2
			cx, cy = d.W/2, d.L/2+ext
		} else {
			gx, gy = d.L/2, d.W/2+ext
			cx, cy = d.L/2+ext, d.W/2
		}
		add(d.At.X, geom.NP, d.At.Y-gy, d.At.Y+gy, gx, gx)
		add(d.At.X, geom.ND, d.At.Y-cy, d.At.Y+cy, cx, cx)
	}
	for _, ct := range c.Contacts {
		h := rules.ContactSize / 2
		add(ct.At.X, ct.From, ct.At.Y-h, ct.At.Y+h, h, h)
		add(ct.At.X, ct.To, ct.At.Y-h, ct.At.Y+h, h, h)
	}
	for _, cn := range c.Connectors {
		w := cn.EffWidth()
		h1, h2 := w/2, w-w/2
		add(cn.At.X, cn.Layer, cn.At.Y-h1, cn.At.Y+h2, h1, h2)
	}
	return feats
}

// transpose swaps the two axes of a cell: coordinates, box, connector
// sides, device orientations and constraint axes. transpose is its own
// inverse.
func transpose(c *sticks.Cell) *sticks.Cell {
	out := c.Clone()
	sw := func(p geom.Point) geom.Point { return geom.Pt(p.Y, p.X) }
	for wi := range out.Wires {
		for pi := range out.Wires[wi].Points {
			out.Wires[wi].Points[pi] = sw(out.Wires[wi].Points[pi])
		}
	}
	for di := range out.Devices {
		out.Devices[di].At = sw(out.Devices[di].At)
		out.Devices[di].Vertical = !out.Devices[di].Vertical
	}
	for ci := range out.Contacts {
		out.Contacts[ci].At = sw(out.Contacts[ci].At)
	}
	for ci := range out.Connectors {
		out.Connectors[ci].At = sw(out.Connectors[ci].At)
		switch out.Connectors[ci].Side {
		case geom.SideLeft:
			out.Connectors[ci].Side = geom.SideBottom
		case geom.SideBottom:
			out.Connectors[ci].Side = geom.SideLeft
		case geom.SideRight:
			out.Connectors[ci].Side = geom.SideTop
		case geom.SideTop:
			out.Connectors[ci].Side = geom.SideRight
		}
	}
	for ki := range out.Constraints {
		if out.Constraints[ki].Axis == sticks.AxisX {
			out.Constraints[ki].Axis = sticks.AxisY
		} else {
			out.Constraints[ki].Axis = sticks.AxisX
		}
	}
	if out.HasBox {
		out.Box = geom.RectFromPoints(sw(out.Box.Min), sw(out.Box.Max))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
