// Package compact is the stick optimizer Riot delegates stretching to —
// the stand-in for REST (Mosteller 1981). It performs one-dimensional
// virtual-grid compaction of Sticks cells under difference constraints:
// every distinct coordinate on the chosen axis becomes a variable, the
// Mead & Conway spacing rules between interacting features become
// lower-bound edges, and the system is solved by Bellman-Ford longest
// path with positive-cycle (infeasibility) detection.
//
// Riot's STRETCH command uses the Pin mechanism: connector coordinates
// are pinned to exact target positions ("the new constraints on the
// connector positions are put into the Stick file ... which moves the
// connectors to the constrained locations"), and the rest of the cell
// re-spaces itself legally around them.
package compact

import "fmt"

// edge is a lower-bound difference constraint: x[to] - x[from] >= min.
type edge struct {
	from, to int
	min      int
}

// Graph is a system of difference constraints over n variables.
// Variables are identified by index 0..n-1.
type Graph struct {
	n     int
	edges []edge
}

// NewGraph returns an empty constraint system over n variables.
func NewGraph(n int) *Graph { return &Graph{n: n} }

// N returns the number of variables.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of constraints added so far.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddMin adds the constraint x[to] - x[from] >= min.
func (g *Graph) AddMin(from, to, min int) {
	g.edges = append(g.edges, edge{from, to, min})
}

// AddExact adds the constraint x[to] - x[from] == d (two opposing
// lower bounds).
func (g *Graph) AddExact(from, to, d int) {
	g.AddMin(from, to, d)
	g.AddMin(to, from, -d)
}

// Solve computes the smallest non-negative assignment satisfying every
// constraint, with the given variables pinned to exact values. It
// returns an error when the system is infeasible: a positive cycle, or
// a pin below a variable's forced minimum.
//
// The solution is the longest path from a virtual source node that
// bounds every variable below by zero; pinned variables are tied to the
// source with a pair of exact edges.
func (g *Graph) Solve(pins map[int]int) ([]int, error) {
	src := g.n // virtual source node, position 0
	edges := make([]edge, 0, len(g.edges)+g.n+2*len(pins))
	edges = append(edges, g.edges...)
	for i := 0; i < g.n; i++ {
		edges = append(edges, edge{src, i, 0}) // x[i] >= 0
	}
	for v, p := range pins {
		if v < 0 || v >= g.n {
			return nil, fmt.Errorf("compact: pin of unknown variable %d", v)
		}
		edges = append(edges, edge{src, v, p})  // x[v] >= p
		edges = append(edges, edge{v, src, -p}) // x[v] <= p
	}

	// Bellman-Ford longest path from src. Every node is reachable from
	// src via the >=0 edges, so initializing everything to 0 (the
	// source's fixed position) is a valid lower bound to relax upward
	// from.
	x := make([]int, g.n+1)
	relaxed := true
	for round := 0; round <= g.n+1 && relaxed; round++ {
		relaxed = false
		for _, e := range edges {
			if want := x[e.from] + e.min; want > x[e.to] {
				x[e.to] = want
				relaxed = true
			}
		}
	}
	if relaxed {
		return nil, fmt.Errorf("compact: constraints are infeasible (positive cycle)")
	}
	if x[src] != 0 {
		return nil, fmt.Errorf("compact: pins are infeasible (a pinned variable is forced past its pin)")
	}
	return x[:g.n], nil
}
