package hier

import (
	"fmt"
	"testing"

	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/geom"
)

// BenchmarkHierVerifyScale measures the hierarchical verdict (extract
// + DRC through Engine.Verify) over growing SRCELL arrays. Certificate
// and template memos are warm — the steady editing-loop state — so the
// measured quantity is one whole-design re-verification. The fast path
// makes the cost size-independent: 256x256 should time within 2x of
// 64x64. Sizes below the fast threshold exercise the general
// O(placements) composition.
func BenchmarkHierVerifyScale(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			top := srArray(b, n, n, geom.R0)
			e := New()
			if _, ok := e.Verify(top); !ok {
				b.Fatalf("engine declined: %v", e.LastDecline())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := e.Verify(top); !ok {
					b.Fatal("engine declined")
				}
			}
		})
	}
}

// BenchmarkHierGeneralCompose measures the exact general composition
// (no sampling shortcut) by materializing the circuit, which runs the
// per-placement path even on uniform arrays — the cost bound for
// irregular designs with the same number of placements.
func BenchmarkHierGeneralCompose(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			top := srArray(b, n, n, geom.R0)
			e := New()
			if _, ok := e.Verify(top); !ok {
				b.Fatalf("engine declined: %v", e.LastDecline())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, ok := e.Verify(top)
				if !ok {
					b.Fatal("engine declined")
				}
				if _, err := res.Circuit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatVerifyScale is the flat reference for the same arrays,
// timeable only at the small end — the quadratic flattened-geometry
// cost is exactly what the hierarchical engine removes.
func BenchmarkFlatVerifyScale(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			top := srArray(b, n, n, geom.R0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := extract.FromCell(top); err != nil {
					b.Fatal(err)
				}
				if _, err := drc.CheckCell(top); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
