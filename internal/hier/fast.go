package hier

import (
	"riot/internal/core"
	"riot/internal/faultinject"
	"riot/internal/geom"
	"riot/internal/rules"
)

// The fast path answers uniform single-instance arrays in O(1) placed
// copies: it runs the exact general composition on a handful of small
// virtual lattices of the same cell, pitch and orientation, and
// extrapolates.
//
// Why the extrapolation is sound:
//
//   - The offsets pre-check proves pairs form only between immediate
//     lattice neighbors (ring-2 offsets clear the pair-discovery
//     reach) and that material reads — window clips reach 3*rho past
//     a copy — stay within the ±2-step neighborhood (ring-3 offsets
//     clear it). Separations grow per axis with the offset, so larger
//     offsets cannot interact either.
//   - Everything the DRC verdict derives at a copy is then determined
//     by the copy's ±2-step occupancy, a pure function of the copy's
//     edge class (min(i,3), min(nx-1-i,3)) per axis. The 13×13 sample
//     realizes every class combination, so all-samples-clean implies
//     the full array is clean... EXCEPT that spacing's component
//     exemption can, in principle, ride connectivity chains of
//     unbounded length. The samples therefore also require ZERO
//     spacing candidates — candidacy is a pure pair-template property
//     and the full array's pair templates all appear among the
//     samples' (all relative placements within the immediate ring),
//     so zero candidates transfers exactly and the chain question
//     never arises.
//   - NetCount on a radius-1 uniform lattice is fitted as the bilinear
//     form a + b·nx + c·ny + d·nx·ny from four corner samples and
//     verified on three independent sizes; any mismatch falls back to
//     the exact general path. DeviceCount is exactly per-copy times
//     copies (certificates carry complete device lists).
//
// Declines (any violation, any spacing candidate, a fit mismatch, an
// offsets-check failure) run the general path; sample pend/poison
// errors decline the engine entirely.
const fastMinDim = 14

func abs2(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type fastSize struct{ nx, ny int }

var (
	fastFitSizes    = []fastSize{{8, 8}, {9, 8}, {8, 9}, {9, 9}}
	fastVerifySizes = []fastSize{{10, 11}, {11, 10}, {13, 13}}
)

// fast attempts the sampling path. ok=false with nil error means "not
// eligible, run the general path"; a non-nil error declines the engine.
func (e *Engine) fast(top *core.Cell) (*Result, bool, error) {
	if len(top.Instances) != 1 {
		return nil, false, nil
	}
	in := top.Instances[0]
	if in.Cell == nil || in.Cell.Kind == core.Composition {
		return nil, false, nil
	}
	if in.Nx < fastMinDim || in.Ny < fastMinDim {
		return nil, false, nil
	}
	ct, err := e.cert(in.Cell, in.Tr.O)
	if err != nil {
		return nil, false, err
	}
	if ct.X.Pend || e.Faults.Hit(faultinject.CertPend, in.Cell.Name) {
		// Not eligible rather than a decline: the general path can
		// quarantine the pend placements and still serve the run.
		return nil, false, nil
	}

	o := in.Tr.O
	vx := o.Apply(geom.Pt(in.Sx, 0))
	vy := o.Apply(geom.Pt(0, in.Sy))

	// Locality proof, two radii. Ring 2 (offsets with max(|di|,|dj|)=2)
	// must clear the pair-discovery reach: then templates — and with
	// them unions, windows, spacing candidates — exist only between
	// immediate neighbors. Ring 3 must clear the largest MATERIAL READ
	// radius (a width window extends rho beyond the pair's boxes and
	// its clip another 2*rho): then everything the composition derives
	// at a copy reads only the ±2-step neighborhood, which the edge
	// classes determine. Separations grow per axis with the offset, so
	// clearing ring 3 clears every farther ring too.
	reach2 := pairReach(ct.D.Layers) + rules.Lambda
	reach3 := reach2
	for _, l := range ct.D.Layers {
		if r := 3*rhoOf(l) + rules.Lambda; r > reach3 {
			reach3 = r
		}
	}
	mat := ct.X.MatBox
	for di := -3; di <= 3; di++ {
		for dj := -3; dj <= 3; dj++ {
			ring := max2(abs2(di), abs2(dj))
			if ring < 2 {
				continue
			}
			reach := reach2
			if ring == 3 {
				reach = reach3
			}
			off := geom.Pt(di*vx.X+dj*vy.X, di*vx.Y+dj*vy.Y)
			if mat.Inset(-reach).Touches(mat.Translate(off)) {
				return nil, false, nil
			}
		}
	}

	fsp := e.Trace.Begin("fast")
	defer fsp.End()

	// Samples compose WITHOUT partial degradation: a pend or poison
	// sample means the full array would quarantine placements, so the
	// fast path is simply not eligible and the general path decides.
	run := func(s fastSize) (*genState, error) {
		occs := make([]placed, 0, s.nx*s.ny)
		for i := 0; i < s.nx; i++ {
			for j := 0; j < s.ny; j++ {
				d := o.Apply(geom.Pt(i*in.Sx, j*in.Sy)).Add(in.Tr.D)
				occs = append(occs, placedAt(ct, d))
			}
		}
		return e.compose(occs, false)
	}
	sampleErr := func(err error) (bool, error) {
		if d, ok := err.(*Decline); ok && (d.Cond == CondPend || d.Cond == CondPoison) {
			return false, nil
		}
		return false, err
	}

	var n [4]int
	for k, s := range fastFitSizes {
		st, err := run(s)
		if err != nil {
			ok, err := sampleErr(err)
			return nil, ok, err
		}
		if len(st.violations) > 0 || st.spacingCands > 0 {
			return nil, false, nil
		}
		n[k] = st.netCount
	}
	// N(nx,ny) = a + b·nx + c·ny + d·nx·ny through the four corners
	d := n[3] - n[1] - n[2] + n[0]
	b := (n[1] - n[0]) - 8*d
	c := (n[2] - n[0]) - 8*d
	a := n[0] - 8*b - 8*c - 64*d
	predict := func(s fastSize) int { return a + b*s.nx + c*s.ny + d*s.nx*s.ny }
	for _, s := range fastVerifySizes {
		st, err := run(s)
		if err != nil {
			ok, err := sampleErr(err)
			return nil, ok, err
		}
		if len(st.violations) > 0 || st.spacingCands > 0 {
			return nil, false, nil
		}
		if st.netCount != predict(s) {
			return nil, false, nil
		}
	}

	return &Result{
		NetCount:    predict(fastSize{in.Nx, in.Ny}),
		DeviceCount: in.Nx * in.Ny * len(ct.X.Devices),
		Violations:  nil,
		e:           e,
		top:         top,
	}, true, nil
}
