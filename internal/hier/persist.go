package hier

import (
	"crypto/sha256"
	"fmt"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/faultinject"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/seam"
	"riot/internal/sticks"
)

// Certificates persist in the content-addressed store under their own
// namespace, keyed by the cell's content signature (the same signature
// the LVS sub-cell certificates use) mixed with the orientation, and
// fingerprinted by the encoding version plus the rule parameters the
// certificate bakes in. A warm restart loads certificates instead of
// re-running per-cell extraction and DRC; a rules or format change
// rotates the fingerprint and silently invalidates every entry.
const certNamespace = "hiercert"

func certFingerprint() uint64 {
	return castore.Fingerprint("hier-cert", "enc-v1",
		fmt.Sprintf("lambda=%d seam=%d", rules.Lambda, seam.Reach))
}

// certKeyFor derives the store key for one (cell, orientation): the
// identity orientation uses the cell signature directly; others hash
// the signature with the orientation byte.
func (e *Engine) certKeyFor(c *core.Cell, o geom.Orient) (castore.Key, bool) {
	if e.disk == nil || e.signer == nil {
		return castore.Key{}, false
	}
	k, err := e.signer.Cell(c)
	if err != nil {
		return castore.Key{}, false
	}
	if o != geom.R0 {
		h := sha256.New()
		h.Write(k[:])
		h.Write([]byte{byte(o)})
		var kk castore.Key
		copy(kk[:], h.Sum(nil))
		k = kk
	}
	return k, true
}

func (e *Engine) diskLoad(c *core.Cell, o geom.Orient) *Cert {
	key, ok := e.certKeyFor(c, o)
	if !ok {
		return nil
	}
	payload, ok := e.disk.Get(certNamespace, key, certFingerprint())
	if !ok {
		return nil
	}
	if e.Faults.Hit(faultinject.CertDecode, c.Name) {
		// A trailing garbage byte survives the store's CRC (it already
		// validated) but makes the bounded decoder's Done() fail —
		// exactly the shape of a version-skew or truncated-write bug.
		payload = append(append([]byte(nil), payload...), 0xFF)
	}
	ct, err := decodeCert(payload)
	if err != nil {
		e.disk.Discard(certNamespace, key, err.Error())
		return nil
	}
	if ct.Orient != o {
		e.disk.Discard(certNamespace, key, "orientation mismatch")
		return nil
	}
	ct.Cell = c
	return ct
}

func (e *Engine) diskStore(ct *Cert) {
	key, ok := e.certKeyFor(ct.Cell, ct.Orient)
	if !ok {
		return
	}
	e.disk.Put(certNamespace, key, certFingerprint(), encodeCert(ct))
	e.stats.CertStored++
}

func encRect(enc *castore.Enc, r geom.Rect) {
	enc.Int(r.Min.X)
	enc.Int(r.Min.Y)
	enc.Int(r.Max.X)
	enc.Int(r.Max.Y)
}

func decRect(d *castore.Dec) geom.Rect {
	x0, y0 := d.Int(), d.Int()
	x1, y1 := d.Int(), d.Int()
	return geom.Rect{Min: geom.Pt(x0, y0), Max: geom.Pt(x1, y1)}
}

func encPoint(enc *castore.Enc, p geom.Point) {
	enc.Int(p.X)
	enc.Int(p.Y)
}

func decPoint(d *castore.Dec) geom.Point {
	x, y := d.Int(), d.Int()
	return geom.Pt(x, y)
}

func encodeCert(ct *Cert) []byte {
	enc := &castore.Enc{}
	enc.U8(uint8(ct.Orient))

	x := ct.X
	enc.Int(len(x.Frags))
	for _, s := range x.Frags {
		enc.Str(string(s.Layer))
		encRect(enc, s.R)
	}
	for _, n := range x.FragNet {
		enc.Int(int(n))
	}
	enc.Int(x.NetCount)
	enc.Int(len(x.Devices))
	for _, dv := range x.Devices {
		enc.U8(uint8(dv.Kind))
		encRect(enc, dv.Gate)
		enc.Int(int(dv.GateNet))
		enc.Int(int(dv.ANet))
		enc.Int(int(dv.BNet))
	}
	enc.Bool(x.Pend)
	enc.Int(len(x.Joins))
	for _, j := range x.Joins {
		encPoint(enc, j.At[0])
		encPoint(enc, j.At[1])
		enc.Str(string(j.Layers[0]))
		enc.Str(string(j.Layers[1]))
	}
	encRect(enc, x.Box)
	encRect(enc, x.MatBox)

	d := ct.D
	enc.Int(len(d.Layers))
	for _, l := range d.Layers {
		enc.Str(string(l))
		rects := d.Rects[l]
		enc.Int(len(rects))
		for _, r := range rects {
			encRect(enc, r)
		}
		for _, c := range d.Comp[l] {
			enc.Int(int(c))
		}
		resid := d.Resid[l]
		enc.Int(len(resid))
		for _, r := range resid {
			encRect(enc, r)
		}
	}
	enc.Int(len(d.DirtyCuts))
	for _, r := range d.DirtyCuts {
		encRect(enc, r)
	}
	return enc.Bytes()
}

func decodeCert(payload []byte) (*Cert, error) {
	d := castore.NewDec(payload)
	ct := &Cert{Orient: geom.Orient(d.U8())}

	x := &extract.CellCert{}
	nf := d.Len(5)
	for i := 0; i < nf && d.Err() == nil; i++ {
		l := geom.Layer(d.Str())
		x.Frags = append(x.Frags, flatten.Shape{Layer: l, R: decRect(d)})
	}
	for i := 0; i < nf && d.Err() == nil; i++ {
		x.FragNet = append(x.FragNet, int32(d.Int()))
	}
	x.NetCount = d.Int()
	ndv := d.Len(8)
	for i := 0; i < ndv && d.Err() == nil; i++ {
		x.Devices = append(x.Devices, extract.CertDevice{
			Kind:    sticks.DeviceKind(d.U8()),
			Gate:    decRect(d),
			GateNet: int32(d.Int()),
			ANet:    int32(d.Int()),
			BNet:    int32(d.Int()),
		})
	}
	x.Pend = d.Bool()
	nj := d.Len(10)
	for i := 0; i < nj && d.Err() == nil; i++ {
		var j extract.CertJoin
		j.At[0] = decPoint(d)
		j.At[1] = decPoint(d)
		j.Layers[0] = geom.Layer(d.Str())
		j.Layers[1] = geom.Layer(d.Str())
		x.Joins = append(x.Joins, j)
	}
	x.Box = decRect(d)
	x.MatBox = decRect(d)

	dc := &drc.CellDRC{
		Rects: map[geom.Layer][]geom.Rect{},
		Comp:  map[geom.Layer][]int32{},
		Resid: map[geom.Layer][]geom.Rect{},
	}
	nl := d.Len(3)
	for i := 0; i < nl && d.Err() == nil; i++ {
		l := geom.Layer(d.Str())
		dc.Layers = append(dc.Layers, l)
		nr := d.Len(4)
		var rects []geom.Rect
		var comp []int32
		for k := 0; k < nr && d.Err() == nil; k++ {
			rects = append(rects, decRect(d))
		}
		for k := 0; k < nr && d.Err() == nil; k++ {
			comp = append(comp, int32(d.Int()))
		}
		dc.Rects[l] = rects
		dc.Comp[l] = comp
		nres := d.Len(4)
		var resid []geom.Rect
		for k := 0; k < nres && d.Err() == nil; k++ {
			resid = append(resid, decRect(d))
		}
		dc.Resid[l] = resid
	}
	ncut := d.Len(4)
	for i := 0; i < ncut && d.Err() == nil; i++ {
		dc.DirtyCuts = append(dc.DirtyCuts, decRect(d))
	}

	if err := d.Done(); err != nil {
		return nil, err
	}
	ct.X, ct.D = x, dc
	if err := x.Seal(); err != nil {
		return nil, err
	}
	if err := dc.Seal(); err != nil {
		return nil, err
	}
	return ct, nil
}
