package hier

import (
	"sort"

	"riot/internal/extract"
	"riot/internal/flatten"
	"riot/internal/geom"
)

// Partial degradation: when composition hits a per-placement decline
// condition — a pend certificate (device terminals need flat context)
// or a fragmentation-poison pair (cross-placement gate/diffusion
// overlap) — the engine quarantines just the offending placements
// instead of declining the whole run. The quarantined set re-flattens
// (flatten.Leaves) and re-solves flat (extract.GroupSolve) into a
// group residue, which splices into the certificate-composed
// remainder:
//
//   - The group's fragmentation is self-contained BECAUSE poison is
//     symmetric and puts both pair members in the group: every gate
//     that cuts group diffusion (and every diffusion a group gate
//     cuts) belongs to the group, so restricting the flat fragment
//     pipeline to the group's occurrences changes nothing. Composed
//     certificates stay exact for the same reason — no quarantined
//     gate touches their diffusion, or they would be quarantined too.
//   - Cross-boundary connectivity (group fragments touching composed
//     fragments on the same layer) is spliced by explicit unions over
//     the boundary seam (boundaryUnions).
//   - Context resolution (contact joins, device probes, labels) runs
//     under the flat locator's lowest-global-fragment rule, which
//     distributes over occurrence order: nodeAt compares the group's
//     winner (mapped back to its global occurrence) against the
//     composed occurrences' candidates.
//
// DRC needs NO group path: the DRC certificates are raw-rectangle
// based and fragmentation-independent, so width, spacing and surround
// compose from certificates for quarantined placements too.
type quarState struct {
	// inQ flags each global occurrence as quarantined.
	inQ []bool
	// occOf maps group occurrence index -> global occurrence index;
	// qIdx is the inverse (-1 for composed occurrences).
	occOf []int32
	qIdx  []int32
	// g is the group's flat-solved residue.
	g *extract.GroupCert
	// base offsets the group's local nets in the composed node space.
	base int32
	// devNodes holds each group device's resolved (gate, a, b) nodes.
	devNodes [][3]int32
}

// buildQuarantine flattens and solves the quarantined occurrences as
// one flat group, in global occurrence order so the group's fragment
// and device sequences are the matching spans of a whole-design flat
// run.
func (e *Engine) buildQuarantine(occs []placed, inQ []bool) (*quarState, error) {
	q := &quarState{inQ: inQ, qIdx: make([]int32, len(occs))}
	var leaves []flatten.LeafAt
	for i := range occs {
		q.qIdx[i] = -1
		if !inQ[i] {
			continue
		}
		q.qIdx[i] = int32(len(q.occOf))
		q.occOf = append(q.occOf, int32(i))
		leaves = append(leaves, flatten.LeafAt{
			Cell: occs[i].cert.Cell,
			Tr:   geom.Transform{O: occs[i].cert.Orient, D: occs[i].d},
		})
	}
	fr, err := flatten.Leaves(leaves)
	if err != nil {
		return nil, err
	}
	g, err := extract.GroupSolve(fr)
	if err != nil {
		return nil, err
	}
	q.g = g
	return q, nil
}

// boundaryUnions splices the quarantine seam: every group fragment
// unions with every composed fragment it touches on its own layer.
// Within-group touching is already swept by GroupSolve and
// composed-composed touching by the pair templates, so this closes
// the flat sweep's partition exactly.
func (st *genState) boundaryUnions() {
	q := st.quar
	for fi := range q.g.Frags {
		f := &q.g.Frags[fi]
		gnode := int(q.base + q.g.FragNet[fi])
		st.matIx.QueryRect(f.R, func(id int) bool {
			if q.inQ[id] {
				return true
			}
			o := &st.occs[id]
			r := f.R.Translate(neg(o.d))
			o.cert.X.QueryLayer(f.Layer, r, func(fj int) bool {
				st.uf.Union(gnode, int(o.netBase+o.cert.X.FragNet[fj]))
				return true
			})
			return true
		})
	}
}

// nodeAt finds the composed net NODE at a point under a layer
// constraint, across composed and quarantined material. For a named
// layer any occupant's material works (all same-layer fragments
// containing one point touch, so they share a post-union net); for
// LayerNone the LOWEST global occurrence with eligible material
// decides — the flat fragment list is occurrence-major, so comparing
// the group winner's global occurrence against the composed
// candidates' ids reproduces the flat locator's
// lowest-global-fragment pick.
func (st *genState) nodeAt(p geom.Point, l geom.Layer) int32 {
	gOcc, gNet := int32(-1), int32(-1)
	if st.quar != nil {
		if l == geom.LayerNone {
			gOcc, gNet = st.quar.g.FindAtNone(p)
		} else {
			gOcc, gNet = st.quar.g.FindOnLayer(p, l)
		}
		if gOcc >= 0 {
			gOcc = st.quar.occOf[gOcc]
		}
	}
	var cand []int
	st.matIx.QueryPoint(p, func(id int) bool {
		cand = append(cand, id)
		return true
	})
	sort.Ints(cand)
	for _, id := range cand {
		if st.inQ(id) {
			continue
		}
		if gOcc >= 0 && gOcc < int32(id) {
			break // the group's fragment precedes every remaining candidate
		}
		o := &st.occs[id]
		lp := p.Sub(o.d)
		var n int32
		if l == geom.LayerNone {
			n = o.cert.X.FindAtNone(lp)
		} else {
			n = o.cert.X.FindOnLayer(lp, l)
		}
		if n >= 0 {
			return o.netBase + n
		}
	}
	if gNet >= 0 {
		return st.quar.base + gNet
	}
	return -1
}

// resolveGroupDevices resolves the quarantined devices' terminals with
// global context, exactly as the flat solver would (gate center on
// poly, channel probes on diffusion). A terminal that resolves nowhere
// means the flat run ERRORS rather than producing a verdict — the
// engine declines whole so the flat path reproduces that error.
func (st *genState) resolveGroupDevices() *Decline {
	q := st.quar
	q.devNodes = make([][3]int32, len(q.g.Devices))
	for i := range q.g.Devices {
		dv := &q.g.Devices[i]
		g := st.nodeAt(dv.Gate.Center(), geom.NP)
		a := st.nodeAt(dv.ProbeA, geom.ND)
		b := st.nodeAt(dv.ProbeB, geom.ND)
		if g < 0 || a < 0 || b < 0 {
			return &Decline{Cond: CondDeviceContext, Cell: st.occs[q.occOf[dv.Occ]].cert.Cell.Name, Placement: int(q.occOf[dv.Occ])}
		}
		q.devNodes[i] = [3]int32{g, a, b}
	}
	return nil
}
