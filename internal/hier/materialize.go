package hier

import (
	"riot/internal/extract"
	"riot/internal/flatten"
	"riot/internal/geom"
)

// Circuit materializes the full netlist for a verdict: every
// occurrence's devices renumbered into the composed dense net space,
// plus the label map resolved in flat order. Fast-path verdicts run
// the exact general composition on demand first — materialization is
// O(placed copies), which is exactly the cost the fast path exists to
// avoid, so it only happens when a caller actually needs the netlist.
func (r *Result) Circuit() (*extract.Circuit, error) {
	if r.ckt != nil {
		return r.ckt, nil
	}
	st := r.gen
	if st == nil {
		var err error
		st, err = r.e.generalTop(r.top)
		if err != nil {
			return nil, err
		}
		r.gen = st
		// The general path is exact; its verdict supersedes the fitted
		// one (they agree whenever the fit's verification held).
		r.NetCount = st.netCount
		r.DeviceCount = st.deviceCount()
		r.Violations = st.violations
		if st.quar != nil {
			r.Quarantined = len(st.quar.occOf)
		}
	}

	// Devices in flat walk order: composed occurrences read their
	// certificate's locally-resolved terminals; quarantined ones read
	// their group span's globally-resolved terminals. Both interleave
	// in global occurrence order, which is the flat device order.
	ckt := &extract.Circuit{NetCount: st.netCount, NetOf: map[string]int{}}
	for i := range st.occs {
		o := &st.occs[i]
		if st.inQ(i) {
			q := st.quar
			sp := q.g.OccDevSpan[q.qIdx[i]]
			for k := sp[0]; k < sp[1]; k++ {
				dn := q.devNodes[k]
				ckt.Transistors = append(ckt.Transistors, extract.Transistor{
					Kind: q.g.Devices[k].Kind,
					Gate: int(st.netOf[dn[0]]),
					A:    int(st.netOf[dn[1]]),
					B:    int(st.netOf[dn[2]]),
				})
			}
			continue
		}
		for _, dv := range o.cert.X.Devices {
			ckt.Transistors = append(ckt.Transistors, extract.Transistor{
				Kind: dv.Kind,
				Gate: int(st.netOf[o.netBase+dv.GateNet]),
				A:    int(st.netOf[o.netBase+dv.ANet]),
				B:    int(st.netOf[o.netBase+dv.BNet]),
			})
		}
	}

	// Labels in flat walk order: the top's own connectors, then each
	// top-level instance's connector labels (the flat walk does not
	// recurse labels either). Unresolved labels drop silently; later
	// resolutions of a repeated name win — both flat conventions.
	set := func(name string, at geom.Point, l geom.Layer) {
		if n := st.labelNet(at, l); n >= 0 {
			ckt.NetOf[name] = int(n)
		}
	}
	for _, cn := range r.top.Connectors() {
		set(cn.Name, cn.At, cn.Layer)
	}
	for _, in := range r.top.Instances {
		for _, nl := range flatten.InstanceLabels(in) {
			set(nl.Name, nl.At, nl.Layer)
		}
	}
	r.ckt = ckt
	return ckt, nil
}

// labelNet resolves a label point to its dense composed net via the
// shared lowest-global-fragment resolution (composed and quarantined
// material alike).
func (st *genState) labelNet(p geom.Point, l geom.Layer) int32 {
	if n := st.nodeAt(p, l); n >= 0 {
		return st.netOf[n]
	}
	return -1
}
