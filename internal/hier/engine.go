// Package hier is the hierarchical verification engine: it extracts
// and design-rule-checks each DISTINCT cell once — per orientation —
// into certificates (extract.CellCert, drc.CellDRC), then composes
// placements of those certificates into the whole-design verdict.
// Work scales with the number of distinct cells plus the number of
// placements, not with flattened geometry; for uniform arrays a
// sampling fast path drops even the per-placement term.
//
// The engine's contract is verdict identity: the composed circuit
// (after the same canonical dense net renumbering) and the composed
// violation set equal the flat extractor's and flat checker's output
// exactly, or the engine declines and the caller falls back to the
// flat path. The composition rules and the arguments for their
// exactness:
//
//   - Translation preserves the flat solver's orders (fragment
//     emission, gate-subtraction piece order, locator tie-breaks), so
//     a placement contributes its certificate's fragments verbatim.
//     Orientation does not — certificates are per (cell, orientation).
//   - Cross-placement connectivity is same-layer fragment touching,
//     a pure function of the pair's relative placement: computed once
//     per (certU, certV, delta) template and replayed per pair.
//   - Contact joins whose resolution depends on context (LayerNone
//     sides, locally-unresolved sides) re-resolve against the placed
//     design: the flat "lowest global fragment" pick distributes over
//     occurrence order because the flat fragment list is
//     occurrence-major.
//   - Width residues have bounded locality: outside every
//     cross-placement interaction window the flat residues equal the
//     translated local ones; inside a window they recompute from all
//     occupants' material. Spacing measures only cross-placement
//     untrusted candidate pairs against a composed touch partition.
//     Contact surround is monotone in added metal, so only locally
//     dirty cuts re-derive.
//   - A placement whose transistor gates overlap another placement's
//     diffusion (or vice versa) would change fragmentation itself;
//     the engine declines ("poison") and the flat path decides.
//
// Certificates persist in the content-addressed store under the
// "hiercert" namespace, so a warm restart re-extracts zero certified
// cells.
package hier

import (
	"fmt"
	"sort"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/faultinject"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/obs"
	"riot/internal/rules"
)

// Engine holds the certificate and template memos. Not safe for
// concurrent use (one engine per verifier, like the other caches).
type Engine struct {
	memo   map[certKey]*Cert
	tmpl   map[tmplKey]*template
	disk   castore.Blob
	signer *castore.Signer
	stats  Stats
	// certSeq numbers certificates as they enter the memo; window memo
	// keys use the small ids instead of pointers.
	certSeq int
	// winMemo caches width-window residue pieces by the window's
	// translation-invariant signature (layer, window rectangle and
	// occupant pattern relative to the pair's first occurrence) — a
	// lattice repeats a handful of patterns across thousands of pairs.
	winMemo map[string][]geom.Rect
	// lastDecline records why the most recent Verify declined (nil when
	// it succeeded): fallback diagnostics for -stats and tests.
	lastDecline *Decline

	// Faults is the optional fault-injection set; nil never fires.
	Faults *faultinject.Set
	// Trace, when enabled, records the engine's span tree per Verify
	// (certs, compose, fast, quarantine) plus typed decline and
	// quarantine events; nil records nothing and costs nothing.
	Trace *obs.Trace
	// Log receives one line per noteworthy degradation (declines other
	// than the routine not-a-composition, partial quarantines); nil
	// means the default obs.Stderr. Set obs.Discard to silence.
	Log obs.Logger
	// QuarantineBudget caps how many placements a run may quarantine
	// before declining whole: 0 picks the default (max(4, n/4) of n
	// placements), a negative value disables partial degradation, a
	// positive value is the absolute cap.
	QuarantineBudget int
	// ComposeBudget caps the pair-template work units (template builds
	// plus replays) of one composition; 0 is unlimited. Exhaustion
	// declines the run whole — a sanity valve for pathological designs.
	ComposeBudget int
}

// logf routes a noteworthy-event line through the injectable logger
// (default stderr).
func (e *Engine) logf(format string, args ...any) {
	if e.Log != nil {
		e.Log(format, args...)
		return
	}
	obs.Stderr(format, args...)
}

// declined records a decline: the structured record, the fallback
// counter, a typed trace event, and — except for the routine
// not-a-composition case, which fires on every leaf-cell verify — one
// logger line.
func (e *Engine) declined(d *Decline) {
	e.stats.Fallbacks++
	e.lastDecline = d
	if e.Trace.Enabled() {
		e.Trace.Event(obs.EventDecline, d.Error())
	}
	if d.Cond != CondNotComposition {
		e.logf("hier: declined to flat path: %v", d)
	}
}

// LastDecline reports why the most recent Verify declined, or nil.
func (e *Engine) LastDecline() error {
	if e.lastDecline == nil {
		return nil // avoid the typed-nil-in-interface trap
	}
	return e.lastDecline
}

// LastDeclineInfo reports the most recent Verify's structured decline
// record, or nil when it succeeded.
func (e *Engine) LastDeclineInfo() *Decline { return e.lastDecline }

// quarantineBudget resolves the effective quarantine cap for a run of
// n placements.
func (e *Engine) quarantineBudget(n int) int {
	switch {
	case e.QuarantineBudget > 0:
		return e.QuarantineBudget
	case e.QuarantineBudget < 0:
		return 0
	}
	b := n / 4
	if b < 4 {
		b = 4
	}
	return b
}

// Stats counts engine work for the -stats reports and the
// warm-restart tests.
type Stats struct {
	// Runs counts Verify calls; FastRuns those answered by the array
	// sampling path; Fallbacks those declined to the flat engines.
	Runs, FastRuns, Fallbacks int
	// CertBuilt counts cold per-cell extract+DRC certificate builds;
	// CertMemoHits and CertDiskHits count reuse; CertStored counts
	// persisted certificates.
	CertBuilt, CertMemoHits, CertDiskHits, CertStored int
	// TemplateBuilt / TemplateHits count pair-interaction templates.
	TemplateBuilt, TemplateHits int
	// PartialRuns counts runs served by partial degradation (some
	// placements quarantined and flattened, the rest composed);
	// Quarantined totals the quarantined placements across them.
	PartialRuns, Quarantined int
}

// Cert pairs one distinct (cell, orientation)'s extraction and DRC
// certificates.
type Cert struct {
	Cell   *core.Cell
	Orient geom.Orient
	X      *extract.CellCert
	D      *drc.CellDRC

	id int // engine-local sequence number for memo keys
}

type certKey struct {
	cell *core.Cell
	o    geom.Orient
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{}
	e.ensureMemos()
	return e
}

// ensureMemos makes a zero-value Engine usable: the exported
// configuration fields (QuarantineBudget, ComposeBudget, Faults)
// invite struct-literal construction, which would otherwise leave the
// memo maps nil.
func (e *Engine) ensureMemos() {
	if e.memo == nil {
		e.memo = map[certKey]*Cert{}
	}
	if e.tmpl == nil {
		e.tmpl = map[tmplKey]*template{}
	}
	if e.winMemo == nil {
		e.winMemo = map[string][]geom.Rect{}
	}
}

// AttachDisk connects the engine to a content-addressed store:
// certificates load from and persist to the "hiercert" namespace.
func (e *Engine) AttachDisk(st castore.Blob, sg *castore.Signer) {
	e.disk, e.signer = st, sg
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetMemo drops the in-memory certificate and template memos (tests
// use it to simulate a cold process against a warm disk store).
func (e *Engine) ResetMemo() {
	e.memo = map[certKey]*Cert{}
	e.tmpl = map[tmplKey]*template{}
	e.winMemo = map[string][]geom.Rect{}
}

// Verify runs the hierarchical verdict for a composition top. ok is
// false when the engine declines whole (non-composition top,
// certificate build failure, quarantine over budget, ...) — the caller
// must fall back to the flat engines, which reproduce whatever verdict
// or error the design deserves. Decline conditions that touch only
// some placements (pend certificates, fragmentation poison) degrade
// partially instead: the engine quarantines the offending placements,
// re-derives their flat residue, and splices it into the composed
// remainder — still verdict-identical to flat.
func (e *Engine) Verify(top *core.Cell) (*Result, bool) {
	e.ensureMemos()
	e.stats.Runs++
	e.lastDecline = nil
	sp := e.Trace.Begin("hier")
	defer sp.End()
	if top == nil || top.Kind != core.Composition {
		e.declined(&Decline{Cond: CondNotComposition, Placement: -1})
		return nil, false
	}
	if sp != nil {
		sp.Note("cell", top.Name)
	}
	if r, ok, err := e.fast(top); err != nil {
		e.declined(declineOf(err))
		return nil, false
	} else if ok {
		e.stats.FastRuns++
		return r, true
	}
	st, err := e.generalTop(top)
	if err != nil {
		e.declined(declineOf(err))
		return nil, false
	}
	quarantined := 0
	if st.quar != nil {
		quarantined = len(st.quar.occOf)
		e.stats.PartialRuns++
		e.stats.Quarantined += quarantined
	}
	return &Result{
		NetCount:    st.netCount,
		DeviceCount: st.deviceCount(),
		Violations:  st.violations,
		Quarantined: quarantined,
		e:           e,
		top:         top,
		gen:         st,
	}, true
}

// Result is one hierarchical verdict. NetCount, DeviceCount and
// Violations are exact (fast-path results verify their extrapolation
// before claiming exactness); Circuit materializes the full netlist
// on demand. Quarantined counts the placements served by the partial
// flat residue rather than certificate composition (0 on clean runs).
type Result struct {
	NetCount    int
	DeviceCount int
	Violations  []drc.Violation
	Quarantined int

	e   *Engine
	top *core.Cell
	gen *genState // nil on the fast path until Circuit materializes
	ckt *extract.Circuit
}

// cert returns the certificate for one distinct (cell, orientation),
// building it at most once per engine (and at most once per disk
// store across processes).
func (e *Engine) cert(c *core.Cell, o geom.Orient) (*Cert, error) {
	k := certKey{c, o}
	if ct, ok := e.memo[k]; ok {
		e.stats.CertMemoHits++
		return ct, nil
	}
	if ct := e.diskLoad(c, o); ct != nil {
		e.stats.CertDiskHits++
		e.certSeq++
		ct.id = e.certSeq
		e.memo[k] = ct
		if e.Trace.Enabled() {
			e.Trace.Begin("cert disk " + c.Name).End()
		}
		return ct, nil
	}
	var csp *obs.Span
	if e.Trace.Enabled() {
		csp = e.Trace.Begin("cert build " + c.Name)
	}
	fr, err := flatten.CellAt(c, geom.Transform{O: o}, flatten.Options{Sequential: true})
	if err != nil {
		csp.End()
		return nil, err
	}
	xsp := csp.Child("extract")
	x, err := extract.CellSolve(fr)
	xsp.End()
	if err != nil {
		csp.End()
		return nil, err
	}
	dsp := csp.Child("drc")
	ct := &Cert{Cell: c, Orient: o, X: x, D: drc.CellCheck(fr)}
	dsp.End()
	csp.End()
	e.stats.CertBuilt++
	e.certSeq++
	ct.id = e.certSeq
	e.memo[k] = ct
	e.diskStore(ct)
	return ct, nil
}

// placed is one leaf occurrence: a certificate at a translation. The
// walk visits leaves in flatten order, so occurrence ids, and with
// them the composed net numbering, match the flat walk's.
type placed struct {
	cert    *Cert
	d       geom.Point // local -> global translation
	box     geom.Rect  // placed declared bounding box (trust frame)
	mat     geom.Rect  // placed material bounding box
	netBase int32
}

// walk collects the design's leaf occurrences in flatten order.
func (e *Engine) walk(c *core.Cell, tr geom.Transform, occs []placed) ([]placed, error) {
	if c.Kind != core.Composition {
		ct, err := e.cert(c, tr.O)
		if err != nil {
			return nil, err
		}
		return append(occs, placedAt(ct, tr.D)), nil
	}
	var err error
	for _, in := range c.Instances {
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				occs, err = e.walk(in.Cell, in.CopyTransform(i, j).Then(tr), occs)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return occs, nil
}

func placedAt(ct *Cert, d geom.Point) placed {
	return placed{
		cert: ct,
		d:    d,
		box:  ct.X.Box.Translate(d),
		mat:  ct.X.MatBox.Translate(d),
	}
}

// generalTop runs the exact O(placements) composition for a top cell.
func (e *Engine) generalTop(top *core.Cell) (*genState, error) {
	wsp := e.Trace.Begin("certs")
	occs, err := e.walk(top, geom.Identity, nil)
	wsp.End()
	if err != nil {
		return nil, &Decline{Cond: CondCertBuild, Placement: -1, Err: err}
	}
	return e.compose(occs, true)
}

// layersOf returns the union of the occurrences' checked layers in
// deterministic (sorted) order.
func layersOf(occs []placed) []geom.Layer {
	seen := map[geom.Layer]bool{}
	var out []geom.Layer
	for i := range occs {
		for _, l := range occs[i].cert.D.Layers {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rhoOf is the width-interaction radius of a layer: residues depend on
// material within the opening square's reach, bounded by twice the
// minimum width.
func rhoOf(l geom.Layer) int { return 2 * rules.Of(l).MinWidth * rules.Lambda }

// pairReach bounds the distance at which two placements can interact
// at all: width windows (rho), spacing halos, and touching material.
func pairReach(layers []geom.Layer) int {
	reach := rules.Lambda
	for _, l := range layers {
		if r := rhoOf(l); r > reach {
			reach = r
		}
		if s := rules.Of(l).MinSpacing * rules.Lambda; s > reach {
			reach = s
		}
	}
	return reach
}

// String renders engine statistics for -stats reports.
func (s Stats) String() string {
	return fmt.Sprintf("hier: %d run(s), %d fast, %d fallback(s); certs %d built, %d memo, %d disk, %d stored; templates %d built, %d hits; partial %d run(s), %d placement(s) quarantined",
		s.Runs, s.FastRuns, s.Fallbacks,
		s.CertBuilt, s.CertMemoHits, s.CertDiskHits, s.CertStored,
		s.TemplateBuilt, s.TemplateHits,
		s.PartialRuns, s.Quarantined)
}
