package hier

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// newDesign installs the library and returns an empty composition top
// under its design.
func newDesign(t testing.TB, name string) (*core.Design, *core.Cell) {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition(name)
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	return d, top
}

// srArray builds one SRCELL instance replicated nx x ny at abutting
// pitch — the paper's shift-register plane and the fast path's shape.
func srArray(t testing.TB, nx, ny int, o geom.Orient) *core.Cell {
	t.Helper()
	d, top := newDesign(t, fmt.Sprintf("TOP%dX%d", nx, ny))
	sr, _ := d.Cell("SRCELL")
	in := core.NewInstance("a", sr, geom.MakeTransform(o, geom.Pt(0, 0)))
	in.Nx, in.Ny = nx, ny
	in.Sx, in.Sy = 20*rules.Lambda, 24*rules.Lambda
	top.Instances = append(top.Instances, in)
	return top
}

// flatVerdict runs the flat reference engines.
func flatVerdict(t testing.TB, c *core.Cell) (*extract.Circuit, error, []drc.Violation) {
	t.Helper()
	ckt, cktErr := extract.FromCell(c)
	vs, err := drc.CheckCell(c)
	if err != nil {
		t.Fatal(err)
	}
	return ckt, cktErr, vs
}

// mustMatch runs the engine on c and requires verdict identity with
// the flat engines: equal violation sets, and (when the flat extract
// succeeds) an identical materialized circuit. Returns whether the
// engine accepted.
func mustMatch(t *testing.T, e *Engine, c *core.Cell, label string) bool {
	t.Helper()
	res, ok := e.Verify(c)
	wantCkt, wantCktErr, wantVs := flatVerdict(t, c)
	if !ok {
		return false
	}
	if wantCktErr != nil {
		t.Fatalf("%s: engine accepted but flat extraction errors: %v", label, wantCktErr)
	}
	if !reflect.DeepEqual(res.Violations, wantVs) {
		t.Fatalf("%s: hier violations differ from flat\nhier: %v\nflat: %v", label, res.Violations, wantVs)
	}
	if res.NetCount != wantCkt.NetCount {
		t.Fatalf("%s: hier NetCount %d, flat %d", label, res.NetCount, wantCkt.NetCount)
	}
	if res.DeviceCount != len(wantCkt.Transistors) {
		t.Fatalf("%s: hier DeviceCount %d, flat %d", label, res.DeviceCount, len(wantCkt.Transistors))
	}
	ckt, err := res.Circuit()
	if err != nil {
		t.Fatalf("%s: materialize: %v", label, err)
	}
	if !reflect.DeepEqual(ckt, wantCkt) {
		t.Fatalf("%s: hier circuit differs from flat\nhier: %+v\nflat: %+v", label, ckt, wantCkt)
	}
	return true
}

// TestHierArrayMatchesFlat pins verdict identity on uniform arrays
// across the general path (below the fast threshold), the fast path
// (above it), and a rotated array.
func TestHierArrayMatchesFlat(t *testing.T) {
	e := New()
	for _, s := range []struct {
		nx, ny int
		o      geom.Orient
	}{
		{1, 1, geom.R0}, {2, 2, geom.R0}, {3, 5, geom.R0}, {8, 8, geom.R0},
		{4, 4, geom.R90}, {3, 3, geom.MX},
		{16, 16, geom.R0}, {16, 14, geom.R90},
	} {
		c := srArray(t, s.nx, s.ny, s.o)
		if !mustMatch(t, e, c, c.Name) {
			t.Fatalf("%dx%d o=%d: engine declined a plain array", s.nx, s.ny, s.o)
		}
	}
	st := e.Stats()
	if st.FastRuns != 2 {
		t.Errorf("fast runs = %d, want 2 (the 16x16 and 16x14 arrays)", st.FastRuns)
	}
	if st.CertBuilt == 0 || st.CertMemoHits == 0 {
		t.Errorf("certificate reuse missing: %+v", st)
	}
}

// TestHierFastPathSkipsPlacements pins the fast path's whole point: a
// large array's verdict must not walk the placements. The engine
// templates and samples bounded lattices, so template builds must not
// scale with the array.
func TestHierFastPathSkipsPlacements(t *testing.T) {
	e := New()
	res, ok := e.Verify(srArray(t, 64, 64, geom.R0))
	if !ok {
		t.Fatal("engine declined the 64x64 array")
	}
	if e.Stats().FastRuns != 1 {
		t.Fatalf("64x64 array did not take the fast path: %+v", e.Stats())
	}
	if res.Violations != nil {
		t.Fatalf("64x64 array reported violations: %v", res.Violations)
	}
	small, ok := e.Verify(srArray(t, 16, 16, geom.R0))
	if !ok || e.Stats().FastRuns != 2 {
		t.Fatalf("16x16 follow-up: ok=%v stats=%+v", ok, e.Stats())
	}
	// both fast verdicts come from the same bilinear form; check the
	// 64x64 prediction against the flat count of the smaller array by
	// ratio of the form, indirectly: the fit is verified inside fast()
	if res.NetCount <= small.NetCount {
		t.Fatalf("64x64 NetCount %d not above 16x16's %d", res.NetCount, small.NetCount)
	}
}

// TestHierDeepOverlapMatchesFlat squeezes the array pitch so copies
// overlap well past the abutment seam depth — cross-copy width merges,
// shared rails, and (at the tightest pitches) real fragmentation
// poison. The engine must either decline or agree with flat exactly.
func TestHierDeepOverlapMatchesFlat(t *testing.T) {
	e := New()
	accepted := 0
	for _, squeeze := range []int{2, 4, 6, 8, 12} {
		d, top := newDesign(t, fmt.Sprintf("DEEP%d", squeeze))
		sr, _ := d.Cell("SRCELL")
		in := core.NewInstance("a", sr, geom.Identity)
		in.Nx, in.Ny = 3, 3
		in.Sx = (20 - squeeze) * rules.Lambda
		in.Sy = (24 - squeeze) * rules.Lambda
		top.Instances = append(top.Instances, in)
		if mustMatch(t, e, top, top.Name) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Error("engine declined every overlapped array; the general path should handle shallow overlaps")
	}
}

// editTrace replays one trial of the editing-trace protocol: a 3x3
// grid of individually placed SRCELLs followed by six random editor
// operations (moves by lambda-grid offsets, NAND creates, deletes,
// rotations). Both the randomized differential below and the
// partial-degradation regression (partial_test.go) pin their behavior
// to this exact op stream — changing it moves both baselines together,
// so the recorded pr7DeclinedWhole constant must be re-measured.
func editTrace(t testing.TB, rng *rand.Rand, trial int) *core.Cell {
	t.Helper()
	d, top := newDesign(t, fmt.Sprintf("RAND%d", trial))
	ed, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		x, y := i%3, i/3
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := ed.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	created := 0
	for step := 0; step < 6; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0:
			in := top.Instances[rng.Intn(len(top.Instances))]
			ed.MoveInstance(in, geom.Pt((rng.Intn(9)-4)*rules.Lambda, (rng.Intn(9)-4)*rules.Lambda))
		case op < 7:
			created++
			at := geom.Pt((3+rng.Intn(3))*20*rules.Lambda+rng.Intn(2*rules.Lambda), rng.Intn(3)*24*rules.Lambda)
			if _, err := ed.CreateInstance("NAND", fmt.Sprintf("x%d", created),
				geom.MakeTransform(geom.R0, at), 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1:
			if err := ed.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		default:
			if len(top.Instances) == 0 {
				continue
			}
			ed.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R90)
		}
	}
	return top
}

// TestHierRandomPlacementsMatchFlat is the randomized differential:
// independent trials of editor-style operation bursts (moves by
// lambda-grid offsets, creates, deletes, rotations) on individually
// placed grids, verdict-compared against flat after every burst. An
// engine decline is legal — a move can bury a gate under a neighbor's
// diffusion, the documented poison condition — but accepted trials
// must dominate, and on every accepted trial the verdict (circuit,
// violations, labels) must be identical to flat.
func TestHierRandomPlacementsMatchFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1982))
	const trials = 12
	e := New()
	accepted, declined := 0, 0
	for trial := 0; trial < trials; trial++ {
		top := editTrace(t, rng, trial)
		if mustMatch(t, e, top, fmt.Sprintf("trial %d", trial)) {
			accepted++
		} else {
			declined++
		}
	}
	if accepted < 2*trials/3 {
		t.Errorf("engine declined %d of %d random placements; the general path should carry most", declined, trials)
	}
}

// TestHierLeafStraddlingSeam places a 1x1 leaf instance straddling the
// seam between two halves of an abutting array — top-level geometry
// cutting across composition seams is exactly what per-cell
// certificates cannot precompute, and the composition must still match
// flat.
func TestHierLeafStraddlingSeam(t *testing.T) {
	d, top := newDesign(t, "STRADDLE")
	sr, _ := d.Cell("SRCELL")
	left := core.NewInstance("l", sr, geom.Identity)
	left.Nx, left.Ny = 2, 2
	left.Sx, left.Sy = 20*rules.Lambda, 24*rules.Lambda
	right := core.NewInstance("r", sr, geom.MakeTransform(geom.R0, geom.Pt(40*rules.Lambda, 0)))
	right.Nx, right.Ny = 2, 2
	right.Sx, right.Sy = 20*rules.Lambda, 24*rules.Lambda
	nand, _ := d.Cell("NAND")
	// straddles the x=40 lambda seam between the two arrays, half over
	// each, at an un-gridded offset
	mid := core.NewInstance("m", nand, geom.MakeTransform(geom.R0, geom.Pt(33*rules.Lambda, 7*rules.Lambda)))
	top.Instances = append(top.Instances, left, right, mid)
	if !mustMatch(t, New(), top, "straddle") {
		t.Skip("engine declined (poison); flat path serves")
	}
}

// TestHierNestedComposition runs a composition of compositions: the
// walk must recurse and the verdict must match flat.
func TestHierNestedComposition(t *testing.T) {
	d, row := newDesign(t, "ROW")
	sr, _ := d.Cell("SRCELL")
	in := core.NewInstance("a", sr, geom.Identity)
	in.Nx, in.Ny = 3, 1
	in.Sx, in.Sy = 20*rules.Lambda, 24*rules.Lambda
	row.Instances = append(row.Instances, in)

	top := core.NewComposition("NEST")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	r0 := core.NewInstance("r0", row, geom.Identity)
	r1 := core.NewInstance("r1", row, geom.MakeTransform(geom.R0, geom.Pt(0, 24*rules.Lambda)))
	top.Instances = append(top.Instances, r0, r1)
	if !mustMatch(t, New(), top, "nested") {
		t.Fatal("engine declined a nested composition")
	}
}

// TestHierWarmRestart pins the persistence contract: a second engine
// (fresh memo, same disk store) must answer from disk certificates and
// re-extract zero cells.
func TestHierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*castore.Store, *castore.Signer) {
		st, err := castore.Open(filepath.Join(dir, "cas"))
		if err != nil {
			t.Fatal(err)
		}
		return st, &castore.Signer{}
	}

	st1, sg1 := open()
	e1 := New()
	e1.AttachDisk(st1, sg1)
	c := srArray(t, 16, 16, geom.R0)
	if _, ok := e1.Verify(c); !ok {
		t.Fatal("cold engine declined")
	}
	if e1.Stats().CertBuilt == 0 || e1.Stats().CertStored == 0 {
		t.Fatalf("cold run built/stored nothing: %+v", e1.Stats())
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, sg2 := open()
	defer st2.Close()
	e2 := New()
	e2.AttachDisk(st2, sg2)
	res, ok := e2.Verify(srArray(t, 16, 16, geom.R0))
	if !ok {
		t.Fatal("warm engine declined")
	}
	if got := e2.Stats().CertBuilt; got != 0 {
		t.Fatalf("warm restart re-extracted %d certified cell(s), want 0", got)
	}
	if e2.Stats().CertDiskHits == 0 {
		t.Fatalf("warm restart loaded nothing from disk: %+v", e2.Stats())
	}
	wantCkt, wantErr, wantVs := flatVerdict(t, c)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	if !reflect.DeepEqual(res.Violations, wantVs) || res.NetCount != wantCkt.NetCount {
		t.Fatal("warm verdict differs from flat")
	}
}

// TestHierCorruptCertFallsBack pins decode hardening: a truncated
// payload must be discarded (and quarantined), never crash, and the
// engine must rebuild.
func TestHierCorruptCertFallsBack(t *testing.T) {
	if _, err := decodeCert([]byte{0x01, 0x02}); err == nil {
		t.Fatal("truncated certificate decoded without error")
	}
	// round-trip: encode a real certificate, decode, re-verify equality
	e := New()
	c := srArray(t, 2, 2, geom.R0)
	if _, ok := e.Verify(c); !ok {
		t.Fatal("engine declined")
	}
	for k, ct := range e.memo {
		back, err := decodeCert(encodeCert(ct))
		if err != nil {
			t.Fatalf("round-trip %v: %v", k, err)
		}
		back.Cell = ct.Cell
		if !reflect.DeepEqual(back.X.FragNet, ct.X.FragNet) ||
			back.X.NetCount != ct.X.NetCount ||
			!reflect.DeepEqual(back.X.Devices, ct.X.Devices) ||
			!reflect.DeepEqual(back.D.Resid, ct.D.Resid) ||
			!reflect.DeepEqual(back.D.Comp, ct.D.Comp) {
			t.Fatalf("round-trip %v: certificate drifted", k)
		}
	}
}
