package hier

import (
	"riot/internal/geom"
	"riot/internal/rules"
)

// A template captures everything about how two certificates interact
// that is a pure function of the pair and its relative placement
// (certV translated by delta into certU's frame). Lattices repeat a
// handful of relative placements across thousands of occurrence
// pairs, so templates are memoized by (certU, certV, delta) and
// replayed per pair with one translation.
type tmplKey struct {
	cu, cv *Cert
	dx, dy int
}

type template struct {
	// poison: a gate of one cell overlaps the other's diffusion with
	// positive area, so the pair's fragmentation differs from the
	// certificates' — the engine declines. (Zero-area contact is a
	// subtract no-op and harmless.)
	poison bool
	// boxesTouch: the placed declared boxes touch or coincide — the
	// flat checker's spacing trust exemption for deliberate abutment.
	boxesTouch bool
	// unions: cross-placement net unions from same-layer fragment
	// touching, as (U local net, V local net) pairs, deduplicated.
	unions [][2]int32
	// compTouch: cross-placement touching raw-rectangle pairs per
	// layer, as (U rect id, V rect id) — edges of the composed
	// spacing component partition.
	compTouch map[geom.Layer][][2]int32
	// spacingCands: candidate spacing pairs per layer (gap below the
	// rule), only recorded for untrusted (non-touching-box) pairs.
	spacingCands map[geom.Layer][][2]int32
	// widthNear: layers on which the pair's material comes within the
	// width-interaction radius, i.e. needs a recomputation window.
	widthNear map[geom.Layer]bool
}

// template returns the memoized interaction of cu against cv placed
// at delta (in cu's local frame).
func (e *Engine) template(cu, cv *Cert, delta geom.Point) *template {
	k := tmplKey{cu, cv, delta.X, delta.Y}
	if t, ok := e.tmpl[k]; ok {
		e.stats.TemplateHits++
		return t
	}
	t := buildTemplate(cu, cv, delta)
	e.tmpl[k] = t
	e.stats.TemplateBuilt++
	return t
}

func buildTemplate(cu, cv *Cert, delta geom.Point) *template {
	t := &template{
		compTouch:    map[geom.Layer][][2]int32{},
		spacingCands: map[geom.Layer][][2]int32{},
		widthNear:    map[geom.Layer]bool{},
	}
	back := geom.Pt(-delta.X, -delta.Y)
	bv := cv.X.Box.Translate(delta)
	t.boxesTouch = cu.X.Box == bv || cu.X.Box.Touches(bv)
	vMat := cv.X.MatBox.Translate(delta)

	// extraction unions: same-layer fragment touching across the pair
	seen := map[[2]int32]bool{}
	for _, l := range cu.X.FragLayers() {
		cu.X.QueryLayer(l, vMat, func(fi int) bool {
			ru := cu.X.Frags[fi].R.Translate(back)
			cv.X.QueryLayer(l, ru, func(fj int) bool {
				p := [2]int32{cu.X.FragNet[fi], cv.X.FragNet[fj]}
				if !seen[p] {
					seen[p] = true
					t.unions = append(t.unions, p)
				}
				return true
			})
			return true
		})
	}

	// fragmentation poison: a gate overlapping foreign diffusion with
	// positive area would cut fragments the certificates never saw
	gateOverND := func(gates []geom.Rect, nd *Cert, toND geom.Point) bool {
		rects := nd.D.Rects[geom.ND]
		if len(rects) == 0 {
			return false
		}
		ix := nd.D.Index(geom.ND)
		for _, g := range gates {
			g := g.Canon().Translate(toND)
			bad := false
			ix.QueryRect(g, func(id int) bool {
				if !g.Intersect(rects[id].Canon()).Empty() {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return true
			}
		}
		return false
	}
	var ug, vg []geom.Rect
	for _, d := range cu.X.Devices {
		ug = append(ug, d.Gate)
	}
	for _, d := range cv.X.Devices {
		vg = append(vg, d.Gate)
	}
	// A poisoned template still carries its DRC relations: the partial
	// path quarantines the pair's placements for EXTRACTION (their flat
	// residue re-derives fragmentation) but the DRC certificates are
	// raw-rectangle-based and fragmentation-independent, so the spacing,
	// width and touch relations below stay exact and are still replayed.
	if gateOverND(ug, cv, back) || gateOverND(vg, cu, delta) {
		t.poison = true
	}

	// per-layer raw-rectangle relations
	for _, l := range cu.D.Layers {
		vRects := cv.D.Rects[l]
		if len(vRects) == 0 {
			continue
		}
		uRects := cu.D.Rects[l]
		uIx, vIx := cu.D.Index(l), cv.D.Index(l)
		rule := rules.Of(l)
		minS := rule.MinSpacing * rules.Lambda
		rho := rhoOf(l)

		// touch edges (component composition)
		uIx.QueryRect(vMat, func(ui int) bool {
			ru := uRects[ui].Translate(back)
			vIx.QueryRect(ru, func(vj int) bool {
				t.compTouch[l] = append(t.compTouch[l], [2]int32{int32(ui), int32(vj)})
				return true
			})
			return true
		})

		// spacing candidates, only where the trust contract is silent
		if !t.boxesTouch && minS > 0 {
			uIx.QueryRect(vMat.Inset(-minS), func(ui int) bool {
				ru := uRects[ui].Canon().Translate(back).Inset(-(minS - 1))
				vIx.QueryRect(ru, func(vj int) bool {
					t.spacingCands[l] = append(t.spacingCands[l], [2]int32{int32(ui), int32(vj)})
					return true
				})
				return true
			})
		}

		// width proximity: does any material come within rho?
		near := false
		uIx.QueryRect(vMat.Inset(-rho), func(ui int) bool {
			ru := uRects[ui].Canon().Translate(back).Inset(-rho)
			vIx.QueryRect(ru, func(vj int) bool {
				near = true
				return false
			})
			return !near
		})
		if near {
			t.widthNear[l] = true
		}
	}
	return t
}
