package hier

import "fmt"

// Cond names a decline condition — the reason a hierarchical run (or
// part of one) could not be served from certificates.
type Cond string

// The decline conditions.
const (
	// CondNotComposition: the top cell is not a composition; the flat
	// path is the only path.
	CondNotComposition Cond = "not-composition"
	// CondCertBuild: a distinct cell failed to flatten or extract into
	// a certificate.
	CondCertBuild Cond = "cert-build"
	// CondPend: a certificate has device terminals that need flat
	// context, in a mode that cannot quarantine (the fast path's
	// sample composition).
	CondPend Cond = "pend"
	// CondPoison: a pair template found cross-placement gate/diffusion
	// overlap, in a mode that cannot quarantine.
	CondPoison Cond = "poison"
	// CondQuarantineBudget: partial degradation was possible but the
	// quarantine set exceeded the engine's budget — flattening that
	// many placements costs what the flat path costs anyway.
	CondQuarantineBudget Cond = "quarantine-budget"
	// CondComposeBudget: the composition's pair-work budget ran out
	// (configured via Engine.ComposeBudget or forced by fault
	// injection).
	CondComposeBudget Cond = "compose-budget"
	// CondDeviceContext: a quarantined placement's device terminal
	// found no material even with global context — the flat path
	// reproduces the extraction error the design deserves.
	CondDeviceContext Cond = "device-context"
	// CondQuarantine: the quarantine group itself failed to flatten or
	// solve.
	CondQuarantine Cond = "quarantine"
	// CondError wraps a decline that carries only an underlying error.
	CondError Cond = "error"
)

// Decline is a structured decline record: which condition fired, and
// where. It implements error so existing call sites keep printing it,
// but -stats and tests can read the fields instead of parsing text.
type Decline struct {
	// Cond is the decline condition.
	Cond Cond
	// Cell names the distinct cell involved, when one is ("" otherwise).
	Cell string
	// Placement is the leaf occurrence index in flatten walk order, or
	// -1 when the decline is not tied to one placement.
	Placement int
	// Quarantined is the quarantine set size for budget declines.
	Quarantined int
	// Err is the underlying error, when any.
	Err error
}

func (d *Decline) Error() string {
	s := "hier: declined (" + string(d.Cond) + ")"
	if d.Cell != "" {
		s += " cell " + d.Cell
	}
	if d.Placement >= 0 {
		s += fmt.Sprintf(" placement %d", d.Placement)
	}
	if d.Quarantined > 0 {
		s += fmt.Sprintf(": %d placement(s) would quarantine", d.Quarantined)
	}
	if d.Err != nil {
		s += ": " + d.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying error to errors.Is/As.
func (d *Decline) Unwrap() error { return d.Err }

// declineOf normalizes any error into a structured decline record.
func declineOf(err error) *Decline {
	if d, ok := err.(*Decline); ok {
		return d
	}
	return &Decline{Cond: CondError, Placement: -1, Err: err}
}
