package hier

import (
	"fmt"
	"math/rand"
	"testing"

	"riot/internal/core"
	"riot/internal/faultinject"
	"riot/internal/geom"
	"riot/internal/rules"
)

// placedGrid builds a composition of nx x ny individually placed
// SRCELLs at abutting pitch (no array instance, so the sampling fast
// path never applies). shove, when non-nil, overrides the transform of
// one placement by index.
func placedGrid(t testing.TB, name string, nx, ny int, shove map[int]geom.Transform) (*core.Design, *core.Cell) {
	t.Helper()
	d, top := newDesign(t, name)
	sr, _ := d.Cell("SRCELL")
	for i := 0; i < nx*ny; i++ {
		x, y := i%nx, i/nx
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if s, ok := shove[i]; ok {
			tr = s
		}
		top.Instances = append(top.Instances, core.NewInstance(fmt.Sprintf("c%d", i), sr, tr))
	}
	return d, top
}

// TestHierPartialPendInjection forces a pend certificate through fault
// injection: the NAND placement must be quarantined and served from
// the flat group residue while the SRCELL grid stays composed, and the
// spliced verdict must equal flat exactly.
func TestHierPartialPendInjection(t *testing.T) {
	d, top := placedGrid(t, "PENDQ", 3, 3, nil)
	nand, _ := d.Cell("NAND")
	top.Instances = append(top.Instances, core.NewInstance("n", nand,
		geom.MakeTransform(geom.R0, geom.Pt(64*rules.Lambda, 0))))

	e := New()
	e.Faults = faultinject.New()
	e.Faults.Enable(faultinject.CertPend, "NAND")
	if !mustMatch(t, e, top, "pend-injected") {
		t.Fatalf("engine declined whole instead of quarantining: %v", e.LastDecline())
	}
	if e.Faults.Hits(faultinject.CertPend) == 0 {
		t.Fatal("cert-pend fault armed but never fired")
	}
	st := e.Stats()
	if st.PartialRuns == 0 || st.Quarantined == 0 {
		t.Fatalf("no partial degradation recorded: %+v", st)
	}
	if e.LastDeclineInfo() != nil {
		t.Fatalf("partial run must not record a decline: %+v", e.LastDeclineInfo())
	}
}

// TestHierPartialPoisonInjection forces fragmentation poison on the
// center placement's pair templates: the placement and every partner
// it interacts with land in the quarantine group, and the spliced
// verdict must equal flat exactly.
func TestHierPartialPoisonInjection(t *testing.T) {
	_, top := placedGrid(t, "POISONQ", 3, 3, nil)

	e := New()
	// the center's abutting partners all pull into the group; give the
	// run headroom so the test exercises splicing, not the budget
	e.QuarantineBudget = len(top.Instances)
	e.Faults = faultinject.New()
	e.Faults.Enable(faultinject.TemplatePoison, "4") // center occurrence
	if !mustMatch(t, e, top, "poison-injected") {
		t.Fatalf("engine declined whole instead of quarantining: %v", e.LastDecline())
	}
	if e.Faults.Hits(faultinject.TemplatePoison) == 0 {
		t.Fatal("template-poison fault armed but never fired")
	}
	st := e.Stats()
	if st.PartialRuns == 0 || st.Quarantined < 2 {
		t.Fatalf("a poisoned pair must quarantine both members: %+v", st)
	}
}

// TestHierPartialRealPoison shoves the center cell of a 3x3 grid into
// its neighbors — the documented organic poison condition (a gate
// buried under a neighbor's diffusion changes fragmentation itself).
// Across the sweep at least one shove must be served by partial
// quarantine rather than a whole decline, and every accepted verdict
// must equal flat, including the rotated quarantined placements.
func TestHierPartialRealPoison(t *testing.T) {
	e := New()
	accepted, partials := 0, 0
	for _, tc := range []struct {
		dx, dy int
		o      geom.Orient
	}{
		{-4, 0, geom.R0}, {4, 0, geom.R0}, {0, -4, geom.R0}, {0, 4, geom.R0},
		{-4, -4, geom.R0}, {4, 4, geom.R0}, {-6, 0, geom.R0}, {0, -6, geom.R0},
		{-4, 0, geom.R90}, {0, -4, geom.R90}, {0, 0, geom.R90}, {-4, -4, geom.MX},
	} {
		name := fmt.Sprintf("SHOVE%d_%d_O%d", tc.dx+8, tc.dy+8, tc.o)
		shoved := geom.MakeTransform(tc.o,
			geom.Pt((20+tc.dx)*rules.Lambda, (24+tc.dy)*rules.Lambda))
		_, top := placedGrid(t, name, 3, 3, map[int]geom.Transform{4: shoved})
		before := e.Stats().PartialRuns
		if mustMatch(t, e, top, name) {
			accepted++
			if e.Stats().PartialRuns > before {
				partials++
			}
		}
	}
	if accepted == 0 {
		t.Fatal("engine declined every shoved grid; partial degradation should carry most")
	}
	if partials == 0 {
		t.Error("no shove produced a quarantined partial run; deep overlap should poison at least one pair")
	}
}

// TestHierQuarantineBudgetDecline pins the whole-run decline edges:
// partial degradation disabled (negative budget) must decline with a
// structured quarantine-budget record, and compose-budget exhaustion
// (explicit cap or injected fault) must decline with a compose-budget
// record. The flat engines serve every declined design.
func TestHierQuarantineBudgetDecline(t *testing.T) {
	_, top := placedGrid(t, "NOBUDGET", 3, 3, nil)

	e := New()
	e.QuarantineBudget = -1 // disable partial degradation
	e.Faults = faultinject.New()
	e.Faults.Enable(faultinject.CertPend, "SRCELL")
	if _, ok := e.Verify(top); ok {
		t.Fatal("engine accepted with partial degradation disabled and every placement pend")
	}
	d := e.LastDeclineInfo()
	if d == nil || d.Cond != CondQuarantineBudget {
		t.Fatalf("decline = %+v, want condition %s", d, CondQuarantineBudget)
	}
	if d.Quarantined != len(top.Instances) {
		t.Errorf("decline quarantine count = %d, want %d", d.Quarantined, len(top.Instances))
	}
	if e.LastDecline() == nil {
		t.Fatal("LastDecline lost the structured record")
	}

	e2 := New()
	e2.ComposeBudget = 1 // the abutting grid needs many pair templates
	if _, ok := e2.Verify(top); ok {
		t.Fatal("engine accepted past an exhausted compose budget")
	}
	if d := e2.LastDeclineInfo(); d == nil || d.Cond != CondComposeBudget {
		t.Fatalf("decline = %+v, want condition %s", d, CondComposeBudget)
	}

	e3 := New()
	e3.Faults = faultinject.New()
	e3.Faults.Enable(faultinject.ComposeBudget, "")
	if _, ok := e3.Verify(top); ok {
		t.Fatal("engine accepted with the compose-budget fault armed")
	}
	if d := e3.LastDeclineInfo(); d == nil || d.Cond != CondComposeBudget {
		t.Fatalf("decline = %+v, want condition %s", d, CondComposeBudget)
	}
	if e3.Faults.Hits(faultinject.ComposeBudget) == 0 {
		t.Fatal("compose-budget fault armed but never fired")
	}

	// every declined design is still decidable by the flat reference
	if ckt, cktErr, _ := flatVerdict(t, top); cktErr != nil || ckt == nil {
		t.Fatalf("flat reference failed on the declined design: %v", cktErr)
	}
}

// pr7DeclinedWhole is the measured whole-run decline count of the
// seed-1982 editing trace before partial degradation existed (PR 7):
// 4 of the 12 trials declined whole, all fragmentation poison.
const pr7DeclinedWhole = 4

// TestHierPartialRegressionBaseline replays the exact editing-trace
// protocol of TestHierRandomPlacementsMatchFlat and requires partial
// degradation to strictly beat the recorded PR 7 whole-decline count:
// the trials that used to fall back to the flat pipeline must now be
// served by quarantine splicing (and still match flat exactly —
// mustMatch enforces that per trial).
func TestHierPartialRegressionBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1982))
	const trials = 12
	e := New()
	declined := 0
	for trial := 0; trial < trials; trial++ {
		top := editTrace(t, rng, trial)
		if !mustMatch(t, e, top, fmt.Sprintf("trial %d", trial)) {
			declined++
		}
	}
	if declined >= pr7DeclinedWhole {
		t.Errorf("declined %d of %d trials whole; the PR 7 baseline was %d and partial degradation must strictly improve on it",
			declined, trials, pr7DeclinedWhole)
	}
	if st := e.Stats(); st.PartialRuns == 0 {
		t.Errorf("the trace's poison trials should now be served partially: %+v", st)
	}
}
