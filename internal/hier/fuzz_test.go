package hier

import (
	"testing"

	"riot/internal/geom"
)

// FuzzDecodeCert hardens the certificate decoder against arbitrary
// store payloads: a corrupt certificate must decode to a clean error —
// never a panic, never a hang — because the persistence path trusts
// decodeCert to reject anything the content signature let through
// (truncation inside a valid CRC window, version skew, store bugs).
// Valid encodings seed the corpus so mutations explore the format's
// neighborhood rather than random noise.
func FuzzDecodeCert(f *testing.F) {
	e := New()
	if _, ok := e.Verify(srArray(f, 2, 2, geom.R0)); !ok {
		f.Fatal("engine declined the seed array")
	}
	for _, ct := range e.memo {
		f.Add(encodeCert(ct))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := decodeCert(data)
		if err != nil {
			return
		}
		// a payload that decodes must be structurally usable: the
		// engine reads these fields unguarded after a disk load
		if ct.X == nil || ct.D == nil {
			t.Fatalf("decode accepted a certificate with nil halves: %+v", ct)
		}
		if len(ct.X.FragNet) > 0 && ct.X.NetCount <= 0 {
			t.Fatalf("decode accepted fragments with no nets: %d frags, %d nets",
				len(ct.X.FragNet), ct.X.NetCount)
		}
	})
}
