package hier

import (
	"fmt"
	"sort"
	"strconv"

	"riot/internal/drc"
	"riot/internal/faultinject"
	"riot/internal/geom"
	"riot/internal/obs"
	"riot/internal/rules"
)

// genState is one exact composition: the placed occurrence list, the
// composed net partition and numbering, and the composed violation
// set. Everything downstream (materialization, labels) reads it.
type genState struct {
	occs   []placed
	layers []geom.Layer
	matIx  *geom.Index
	pairs  []pairRef

	uf       *geom.UnionFind
	netOf    []int32 // dense net of each (occ netBase + local net) node
	netCount int

	// quar is the partial-degradation state when some placements were
	// quarantined and served from a flat group residue; nil on clean
	// runs.
	quar *quarState

	violations []drc.Violation
	// spacingCands counts candidate spacing pairs before the component
	// exemption — the fast path requires zero across its samples.
	spacingCands int
}

// inQ reports whether occurrence i is quarantined.
func (st *genState) inQ(i int) bool { return st.quar != nil && st.quar.inQ[i] }

type pairRef struct {
	u, v int32
	t    *template
}

func (st *genState) deviceCount() int {
	n := 0
	for i := range st.occs {
		n += len(st.occs[i].cert.X.Devices)
	}
	return n
}

func neg(p geom.Point) geom.Point { return geom.Pt(-p.X, -p.Y) }

// compose runs the exact composition over a placed occurrence list:
// interacting pairs via one spatial query per occurrence, memoized
// pair templates, a global union-find over local nets, context
// resolution for the certificates' deferred joins, and the composed
// DRC verdict.
//
// When allowPartial is set, per-placement decline conditions — a pend
// certificate, a fragmentation-poison pair — quarantine the offending
// placements instead of declining the run: the quarantined set's flat
// residue (flatten.Leaves + extract.GroupSolve) splices into the
// composed remainder, still verdict-identical to flat. Only
// whole-run conditions (quarantine set over budget, compose-budget
// exhaustion, an unresolvable quarantined device terminal) return an
// error, always a *Decline.
func (e *Engine) compose(occs []placed, allowPartial bool) (*genState, error) {
	csp := e.Trace.Begin("compose")
	defer csp.End()
	if csp != nil {
		csp.Note("placements", strconv.Itoa(len(occs)))
	}
	if e.Faults.Hit(faultinject.ComposeBudget, "") {
		return nil, &Decline{Cond: CondComposeBudget, Placement: -1}
	}
	st := &genState{occs: occs}
	total := 0
	inQ := make([]bool, len(occs))
	nq := 0
	for i := range occs {
		if occs[i].cert.X.Pend || e.Faults.Hit(faultinject.CertPend, occs[i].cert.Cell.Name) {
			if !allowPartial {
				return nil, &Decline{Cond: CondPend, Cell: occs[i].cert.Cell.Name, Placement: i}
			}
			inQ[i] = true
			nq++
		}
		occs[i].netBase = int32(total)
		total += occs[i].cert.X.NetCount
	}
	if nq > e.quarantineBudget(len(occs)) {
		return nil, &Decline{Cond: CondQuarantineBudget, Placement: -1, Quarantined: nq}
	}
	st.layers = layersOf(occs)
	reach := pairReach(st.layers)

	ix := geom.NewIndex()
	for i := range occs {
		ix.Insert(occs[i].mat)
	}
	ix.Build()
	st.matIx = ix

	// Pair pass: build every interacting pair's template BEFORE
	// applying any union. A poison pair quarantines BOTH members —
	// poison is symmetric, and putting both sides in the group is what
	// keeps the group's fragmentation self-contained (every gate that
	// cuts group diffusion belongs to the group) — and a pair
	// discovered late can pull in an occurrence whose earlier pairs'
	// unions would then be stale.
	work := 0
	var cand []int
	for u := range occs {
		cand = cand[:0]
		ix.QueryRect(occs[u].mat.Inset(-reach), func(v int) bool {
			if v > u {
				cand = append(cand, v)
			}
			return true
		})
		sort.Ints(cand)
		for _, v := range cand {
			work++
			if e.ComposeBudget > 0 && work > e.ComposeBudget {
				return nil, &Decline{Cond: CondComposeBudget, Placement: u}
			}
			t := e.template(occs[u].cert, occs[v].cert, occs[v].d.Sub(occs[u].d))
			poison := t.poison
			if !poison && e.Faults != nil {
				poison = e.Faults.Hit(faultinject.TemplatePoison, strconv.Itoa(u)) ||
					e.Faults.Hit(faultinject.TemplatePoison, strconv.Itoa(v))
			}
			if poison {
				if !allowPartial {
					return nil, &Decline{Cond: CondPoison, Cell: occs[u].cert.Cell.Name, Placement: u}
				}
				if !inQ[u] {
					inQ[u] = true
					nq++
				}
				if !inQ[v] {
					inQ[v] = true
					nq++
				}
			}
			// The pair is kept even when poisoned: poison breaks the pair's
			// FRAGMENTATION (extraction), which the quarantine re-derives
			// flat, but the DRC certificates are raw-rectangle-based and
			// fragmentation-independent, so the template's spacing, width
			// and touch relations replay unchanged.
			st.pairs = append(st.pairs, pairRef{int32(u), int32(v), t})
		}
	}
	if nq > e.quarantineBudget(len(occs)) {
		return nil, &Decline{Cond: CondQuarantineBudget, Placement: -1, Quarantined: nq}
	}

	groupNets := 0
	if nq > 0 {
		qsp := e.Trace.Begin("quarantine")
		if qsp != nil {
			qsp.Note("placements", strconv.Itoa(nq))
		}
		if e.Trace.Enabled() {
			e.Trace.Event(obs.EventQuarantine,
				fmt.Sprintf("%d of %d placement(s) quarantined to the flat residue", nq, len(occs)))
		}
		e.logf("hier: quarantined %d of %d placement(s); composing the remainder", nq, len(occs))
		q, err := e.buildQuarantine(occs, inQ)
		qsp.End()
		if err != nil {
			return nil, &Decline{Cond: CondQuarantine, Placement: -1, Err: err}
		}
		q.base = int32(total)
		st.quar = q
		groupNets = q.g.NetCount
	}

	// Net node space: every occurrence's local certificate nets, then
	// the quarantine group's nets. Quarantined occurrences' certificate
	// nodes exist but stay untouched (their material lives in the
	// group); the renumbering skips them.
	uf := geom.NewUnionFind(total + groupNets)
	st.uf = uf
	for _, pr := range st.pairs {
		if st.inQ(int(pr.u)) || st.inQ(int(pr.v)) {
			continue
		}
		ub, vb := occs[pr.u].netBase, occs[pr.v].netBase
		for _, p := range pr.t.unions {
			uf.Union(int(ub+p[0]), int(vb+p[1]))
		}
	}
	if st.quar != nil {
		st.boundaryUnions()
	}

	// deferred joins, resolved in placement context. Both-sides-found
	// joins union; others drop, matching the flat solver. A quarantined
	// occurrence's joins are ALL carried by the group (including the
	// ones its certificate would have baked — re-resolving a both-named
	// both-local join globally lands on the same nets).
	for ui := range occs {
		if st.inQ(ui) {
			continue
		}
		u := &occs[ui]
		for _, j := range u.cert.X.Joins {
			a := st.nodeAt(j.At[0].Add(u.d), j.Layers[0])
			b := st.nodeAt(j.At[1].Add(u.d), j.Layers[1])
			if a >= 0 && b >= 0 {
				uf.Union(int(a), int(b))
			}
		}
	}
	if st.quar != nil {
		for _, j := range st.quar.g.Joins {
			a := st.nodeAt(j.At[0], j.Layers[0])
			b := st.nodeAt(j.At[1], j.Layers[1])
			if a >= 0 && b >= 0 {
				uf.Union(int(a), int(b))
			}
		}
		if d := st.resolveGroupDevices(); d != nil {
			return nil, d
		}
	}

	// Dense renumbering: first appearance in global fragment order. The
	// flat solver numbers by first fragment over its occurrence-major
	// fragment list; iterating occurrences in global order — a composed
	// occurrence's local net ids (themselves first-fragment-ordered), a
	// quarantined occurrence's group fragment span (the flat fragments
	// verbatim) — visits every class exactly at its first flat
	// fragment, so the two orders agree.
	netOf := make([]int32, total+groupNets)
	for i := range netOf {
		netOf[i] = -1
	}
	rootID := make([]int32, total+groupNets)
	for i := range rootID {
		rootID[i] = -1
	}
	n := 0
	assign := func(node int32) {
		r := uf.Find(int(node))
		if rootID[r] < 0 {
			rootID[r] = int32(n)
			n++
		}
		netOf[node] = rootID[r]
	}
	for i := range occs {
		if st.inQ(i) {
			q := st.quar
			sp := q.g.OccFragSpan[q.qIdx[i]]
			for f := sp[0]; f < sp[1]; f++ {
				assign(q.base + q.g.FragNet[f])
			}
			continue
		}
		for ln := int32(0); ln < int32(occs[i].cert.X.NetCount); ln++ {
			assign(occs[i].netBase + ln)
		}
	}
	st.netOf, st.netCount = netOf, n

	wsp := csp.Child("width")
	e.composeWidth(st)
	wsp.End()
	ssp := csp.Child("spacing")
	e.composeSpacing(st)
	ssp.End()
	usp := csp.Child("surround")
	e.composeSurround(st)
	usp.End()
	st.violations = drc.FinishViolations(st.violations)
	return st, nil
}

// composeWidth assembles the global width residues per layer: each
// certificate's residues hold verbatim outside the pair interaction
// windows; inside a window the residues recompute from every
// occupant's material (clipped with the same margins the incremental
// checker's splice uses). regionMerge canonicalizes, so the slabs —
// and with them the violations — equal a flat run's.
func (e *Engine) composeWidth(st *genState) {
	for _, l := range st.layers {
		minW := rules.Of(l).MinWidth * rules.Lambda
		if minW <= 0 {
			continue
		}
		rho := rhoOf(l)
		hasResid := false
		for i := range st.occs {
			if len(st.occs[i].cert.D.Resid[l]) > 0 {
				hasResid = true
				break
			}
		}
		var winOf map[int32][]geom.Rect
		if hasResid {
			winOf = map[int32][]geom.Rect{}
		}
		var pieces []geom.Rect
		var wocc []int
		for _, pr := range st.pairs {
			if !pr.t.widthNear[l] {
				continue
			}
			u, v := &st.occs[pr.u], &st.occs[pr.v]
			win := u.mat.Inset(-rho).Intersect(v.mat.Inset(-rho))
			if win.Empty() {
				continue
			}
			dwin := geom.R(2*win.Min.X, 2*win.Min.Y, 2*win.Max.X, 2*win.Max.Y)
			if winOf != nil {
				winOf[pr.u] = append(winOf[pr.u], dwin)
				winOf[pr.v] = append(winOf[pr.v], dwin)
			}
			clip := win.Inset(-2 * rho)

			// Everything inside the window is translation-invariant given
			// the occupant pattern relative to u — memoize in u's frame.
			wocc = wocc[:0]
			st.matIx.QueryRect(clip, func(w int) bool {
				if len(st.occs[w].cert.D.Rects[l]) > 0 {
					wocc = append(wocc, w)
				}
				return true
			})
			sort.Ints(wocc)
			du2 := geom.Pt(2*u.d.X, 2*u.d.Y)
			for _, r := range e.windowPieces(st, l, minW, win, clip, u.d, wocc) {
				pieces = append(pieces, r.Translate(du2))
			}
		}
		for i := range st.occs {
			o := &st.occs[i]
			resid := o.cert.D.Resid[l]
			if len(resid) == 0 {
				continue
			}
			dd := geom.Pt(2*o.d.X, 2*o.d.Y)
			translated := make([]geom.Rect, len(resid))
			for k, r := range resid {
				translated[k] = r.Translate(dd)
			}
			// Any residue point whose verdict could change under
			// composition has foreign material within the interaction
			// radius, which puts it inside one of THIS occurrence's
			// windows — subtracting them (and re-adding the windows'
			// globally-computed pieces) is exact.
			if ws := winOf[int32(i)]; len(ws) > 0 {
				translated = drc.SubtractRegion(translated, drc.MergeRegion(ws))
			}
			pieces = append(pieces, translated...)
		}
		for _, r := range drc.MergeRegion(pieces) {
			st.violations = append(st.violations, drc.WidthViolationFrom(l, r, minW))
		}
	}
}

// windowPieces returns one width window's residue pieces in doubled
// coordinates RELATIVE to du (the pair's first occurrence), clipped to
// the window. The result is a pure function of the layer, the window's
// relative rectangle and the occupant pattern relative to du, so it
// memoizes on that signature — a lattice repeats a handful of
// signatures across thousands of windows.
func (e *Engine) windowPieces(st *genState, l geom.Layer, minW int, win, clip geom.Rect, du geom.Point, wocc []int) []geom.Rect {
	winRel := win.Translate(neg(du))
	key := make([]byte, 0, 64)
	key = appendInts(key, len(l))
	key = append(key, l...)
	key = appendInts(key, winRel.Min.X, winRel.Min.Y, winRel.Max.X, winRel.Max.Y)
	for _, w := range wocc {
		o := &st.occs[w]
		key = appendInts(key, o.cert.id, o.d.X-du.X, o.d.Y-du.Y)
	}
	ks := string(key)
	if rel, ok := e.winMemo[ks]; ok {
		return rel
	}
	var local []geom.Rect
	for _, w := range wocc {
		o := &st.occs[w]
		rects := o.cert.D.Rects[l]
		lclip := clip.Translate(neg(o.d))
		toRel := o.d.Sub(du)
		o.cert.D.Index(l).QueryRect(lclip, func(id int) bool {
			if c := rects[id].Canon().Intersect(lclip); !c.Empty() {
				local = append(local, c.Translate(toRel))
			}
			return true
		})
	}
	dwinRel := geom.R(2*winRel.Min.X, 2*winRel.Min.Y, 2*winRel.Max.X, 2*winRel.Max.Y)
	var rel []geom.Rect
	for _, r := range drc.WidthResidues(local, minW) {
		if c := r.Intersect(dwinRel); !c.Empty() {
			rel = append(rel, c)
		}
	}
	e.winMemo[ks] = rel
	return rel
}

func appendInts(b []byte, vs ...int) []byte {
	for _, v := range vs {
		u := uint64(int64(v))
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return b
}

// composeSpacing measures the templates' candidate pairs — only
// cross-occurrence pairs outside the abutment trust contract — against
// the composed touch partition (local components plus cross-occurrence
// touch edges, closed globally).
func (e *Engine) composeSpacing(st *genState) {
	needed := map[geom.Layer]bool{}
	for _, pr := range st.pairs {
		for l, cs := range pr.t.spacingCands {
			if len(cs) > 0 {
				needed[l] = true
				st.spacingCands += len(cs)
			}
		}
	}
	if len(needed) == 0 {
		return
	}
	for _, l := range st.layers {
		if !needed[l] {
			continue
		}
		minS := rules.Of(l).MinSpacing * rules.Lambda
		base := make([]int32, len(st.occs)+1)
		for i := range st.occs {
			base[i+1] = base[i] + int32(len(st.occs[i].cert.D.Rects[l]))
		}
		uf := geom.NewUnionFind(int(base[len(st.occs)]))
		for i := range st.occs {
			b := int(base[i])
			for ri, root := range st.occs[i].cert.D.Comp[l] {
				uf.Union(b+ri, b+int(root))
			}
		}
		for _, pr := range st.pairs {
			for _, pc := range pr.t.compTouch[l] {
				uf.Union(int(base[pr.u]+pc[0]), int(base[pr.v]+pc[1]))
			}
		}
		for _, pr := range st.pairs {
			cs := pr.t.spacingCands[l]
			if len(cs) == 0 {
				continue
			}
			u, v := &st.occs[pr.u], &st.occs[pr.v]
			uRects, vRects := u.cert.D.Rects[l], v.cert.D.Rects[l]
			for _, c := range cs {
				if uf.Find(int(base[pr.u]+c[0])) == uf.Find(int(base[pr.v]+c[1])) {
					continue // one composed component: spacing exempt
				}
				if vio, bad := drc.SpacingPair(l, uRects[c[0]].Translate(u.d), vRects[c[1]].Translate(v.d), minS); bad {
					st.violations = append(st.violations, vio)
				}
			}
		}
	}
}

// composeSurround re-derives the metal surround of the certificates'
// locally-dirty cuts against all occupants' metal. Locally-clean cuts
// stay clean: foreign metal only adds cover.
func (e *Engine) composeSurround(st *genState) {
	surround := drc.ContactSurround * rules.Lambda
	for i := range st.occs {
		o := &st.occs[i]
		for _, cut := range o.cert.D.DirtyCuts {
			cutG := cut.Translate(o.d)
			need := cutG.Inset(-surround)
			var metal []geom.Rect
			st.matIx.QueryRect(need, func(w int) bool {
				wo := &st.occs[w]
				rects := wo.cert.D.Rects[geom.NM]
				if len(rects) == 0 {
					return true
				}
				ln := need.Translate(neg(wo.d))
				wo.cert.D.Index(geom.NM).QueryRect(ln, func(id int) bool {
					metal = append(metal, rects[id].Translate(wo.d))
					return true
				})
				return true
			})
			st.violations = append(st.violations, drc.CutSurround(cutG, metal)...)
		}
	}
}
