// Package filter reproduces the paper's worked example (figures 7-10):
// "a four-bit sequential logical filter: a function defined on a series
// of inputs x as f_n = OR_{i=1..4} c_i x_{n-i} where the c_i constants
// are supplied from off-chip and all sums and products are Boolean."
//
// The floorplan (figure 7) stacks a shift-register row over a NAND row
// over an OR gate, with pads around the outside. The logic block is
// assembled twice, exactly as the paper does:
//
//   - Routed (figure 9a): the rows are connected with river-routing
//     channels;
//   - Stretched (figure 9b): the gates are stretched so the rows
//     connect by abutment, "eliminating the routing area ... the
//     important space savings is in the vertical direction since no
//     routing channels are needed to connect the NAND and OR gates."
//
// BuildChip completes figure 10 by placing the pad ring and routing the
// pads to the core "in pieces with Riot's routing command".
package filter

import (
	"fmt"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const l = rules.Lambda

// Variant selects the figure-9 assembly style.
type Variant uint8

// The two assembly styles of figure 9.
const (
	Routed Variant = iota
	Stretched
)

func (v Variant) String() string {
	if v == Stretched {
		return "stretched"
	}
	return "routed"
}

// Stats reports the measurable properties the paper discusses.
type Stats struct {
	Variant       Variant
	LogicBox      geom.Rect // bounding box of the logic block (centimicrons)
	LogicArea     int       // lambda^2
	LogicHeight   int       // lambda
	RouteCells    int       // river-route cells created
	RouteTracks   int       // total jog tracks across all channels
	ChannelHeight int       // total routing-channel height, lambda
}

// srPitch is the shift-register cell pitch in lambda.
const srPitch = 20

// taps returns the global x positions (lambda) of the shift-register
// taps for an array starting at x=0.
func taps() [4]int {
	var t [4]int
	for i := range t {
		t[i] = srPitch*i + 18
	}
	return t
}

// BuildLogic assembles the logic block of figure 9 in the given
// variant and returns the design, the logic cell and the stats. The
// design also contains every intermediate cell Riot created (route
// cells, stretched cells), as the cell menu would show.
func BuildLogic(variant Variant) (*core.Design, *core.Cell, *Stats, error) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		return nil, nil, nil, err
	}

	// The NAND row is a wrapper composition cell so the row can be
	// route-connected to the register array as a single from-instance
	// (Riot's one-to-many rule; "a many-to-many connection can still
	// be made by defining a cell which contains one of the sets").
	nrow := core.NewComposition("NROW")
	if err := d.AddCell(nrow); err != nil {
		return nil, nil, nil, err
	}
	ne, err := core.NewEditor(d, nrow)
	if err != nil {
		return nil, nil, nil, err
	}
	// The gates are placed flipped (MXR180) so their inputs face the
	// register taps above and their outputs face the OR gate below.
	var prev *core.Instance
	for i := 0; i < 4; i++ {
		ni, err := ne.CreateInstance("NAND", fmt.Sprintf("n%d", i),
			geom.MakeTransform(geom.MXR180, geom.Pt(srPitch*i*l, 20*l)), 1, 1, 0, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		if prev != nil {
			// chain the rails by abutment
			if err := ne.AddConnection(ni, "PWRL", prev, "PWRR"); err != nil {
				return nil, nil, nil, err
			}
			if err := ne.AddConnection(ni, "GNDL", prev, "GNDR"); err != nil {
				return nil, nil, nil, err
			}
			if warns, err := ne.Abut(false); err != nil {
				return nil, nil, nil, err
			} else if len(warns) > 0 {
				return nil, nil, nil, fmt.Errorf("filter: NAND row abut: %v", warns)
			}
		}
		prev = ni
	}

	logic := core.NewComposition("LOGIC")
	if err := d.AddCell(logic); err != nil {
		return nil, nil, nil, err
	}
	e, err := core.NewEditor(d, logic)
	if err != nil {
		return nil, nil, nil, err
	}

	// "The first step is to generate the shift register array. The
	// array elements abut, making the shift register chain connections
	// as well as power and ground connections."
	sr, err := e.CreateInstance("SRCELL", "sr",
		geom.MakeTransform(geom.R0, geom.Pt(0, 100*l)), 4, 1, 0, 0)
	if err != nil {
		return nil, nil, nil, err
	}

	st := &Stats{Variant: variant}
	tp := taps()

	switch variant {
	case Routed:
		// figure 9a: the NAND row routes up to the register taps
		nr, err := e.CreateInstance("NROW", "nr",
			geom.MakeTransform(geom.R0, geom.Pt(0, 50*l)), 1, 1, 0, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < 4; i++ {
			if err := e.AddConnection(nr, fmt.Sprintf("n%d.A", i), sr, fmt.Sprintf("TAP[%d]", i)); err != nil {
				return nil, nil, nil, err
			}
		}
		res, err := e.RouteConnect(core.RouteOptions{})
		if err != nil {
			return nil, nil, nil, err
		}
		if len(res.Warnings) > 0 {
			return nil, nil, nil, fmt.Errorf("filter: SR-NAND route: %v", res.Warnings)
		}
		st.RouteCells++
		st.RouteTracks += res.River.Tracks
		st.ChannelHeight += res.River.Height

		// "then routing is done to the OR gate"
		orr, err := e.CreateInstance("OR4", "orr",
			geom.MakeTransform(geom.MXR180, geom.Pt(0, 20*l)), 1, 1, 0, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < 4; i++ {
			if err := e.AddConnection(orr, fmt.Sprintf("IN%d", i), nr, fmt.Sprintf("n%d.OUT", i)); err != nil {
				return nil, nil, nil, err
			}
		}
		res, err = e.RouteConnect(core.RouteOptions{})
		if err != nil {
			return nil, nil, nil, err
		}
		if len(res.Warnings) > 0 {
			return nil, nil, nil, fmt.Errorf("filter: NAND-OR route: %v", res.Warnings)
		}
		st.RouteCells++
		st.RouteTracks += res.River.Tracks
		st.ChannelHeight += res.River.Height

		// bring the filter output out to the cell edge so the chip
		// level can route a pad to it
		if _, err := e.BringOut(orr, []string{"OUT"}, geom.SideRight); err != nil {
			return nil, nil, nil, err
		}

	case Stretched:
		// figure 9b: "the designer may save area by stretching the
		// gates, eliminating the routing area". Each NAND is placed
		// under its tap and stretched so its A input lands exactly on
		// the tap, then abuts the register row.
		var nands [4]*core.Instance
		for i := 0; i < 4; i++ {
			ni, err := e.CreateInstance("NAND", fmt.Sprintf("n%d", i),
				geom.MakeTransform(geom.MXR180, geom.Pt(srPitch*i*l, 60*l)), 1, 1, 0, 0)
			if err != nil {
				return nil, nil, nil, err
			}
			if err := e.AddConnection(ni, "A", sr, fmt.Sprintf("TAP[%d]", i)); err != nil {
				return nil, nil, nil, err
			}
			sres, err := e.StretchConnect()
			if err != nil {
				return nil, nil, nil, err
			}
			if len(sres.Warnings) > 0 {
				return nil, nil, nil, fmt.Errorf("filter: NAND %d stretch: %v", i, sres.Warnings)
			}
			nands[i] = ni
		}
		// the OR gate stretches so its inputs meet the NAND outputs,
		// then abuts the NAND row — no channel at all
		orr, err := e.CreateInstance("OR4", "orr",
			geom.MakeTransform(geom.MXR180, geom.Pt(0, 20*l)), 1, 1, 0, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < 4; i++ {
			if err := e.AddConnection(orr, fmt.Sprintf("IN%d", i), nands[i], "OUT"); err != nil {
				return nil, nil, nil, err
			}
		}
		sres, err := e.StretchConnect()
		if err != nil {
			return nil, nil, nil, err
		}
		if len(sres.Warnings) > 0 {
			return nil, nil, nil, fmt.Errorf("filter: OR stretch: %v", sres.Warnings)
		}
		if _, err := e.BringOut(orr, []string{"OUT"}, geom.SideRight); err != nil {
			return nil, nil, nil, err
		}
		_ = tp
	}

	box := logic.BBox()
	st.LogicBox = box
	st.LogicHeight = box.H() / l
	st.LogicArea = (box.W() / l) * (box.H() / l)
	return d, logic, st, nil
}

// ChipStats extends Stats with the figure-10 chip-level numbers.
type ChipStats struct {
	Logic    *Stats
	ChipBox  geom.Rect
	ChipArea int // lambda^2
	PadCount int
	Routes   int // pad routes made
}

// BuildChip completes the figure-10 chip: the logic core with input,
// output, constant and clock pads routed in. Pads are CIF cells, so
// every pad connection is made by routing ("the pads cannot be
// stretched by Riot and all connections to them will have to be made
// by routing").
func BuildChip(variant Variant) (*core.Design, *core.Cell, *ChipStats, error) {
	d, logicCell, lst, err := BuildLogic(variant)
	if err != nil {
		return nil, nil, nil, err
	}
	chip := core.NewComposition("CHIP")
	if err := d.AddCell(chip); err != nil {
		return nil, nil, nil, err
	}
	e, err := core.NewEditor(d, chip)
	if err != nil {
		return nil, nil, nil, err
	}

	logicInst, err := e.CreateInstance("LOGIC", "core",
		geom.MakeTransform(geom.R0, geom.Pt(0, 0)), 1, 1, 0, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	lb := logicInst.BBox()
	cst := &ChipStats{Logic: lst}

	// x-input pad on the left, data flows into sr.IN[0]; the pad's P
	// connector is on its bottom edge, so R90 turns it to face right.
	inName, err := findConn(logicInst, geom.SideLeft, geom.NP)
	if err != nil {
		return nil, nil, nil, err
	}
	xpad, err := e.CreateInstance("PADIN", "xpad",
		geom.MakeTransform(geom.R90, geom.Pt(lb.Min.X-90*l, lb.Min.Y)), 1, 1, 0, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := routePad(e, cst, xpad, logicInst, inName); err != nil {
		return nil, nil, nil, err
	}
	cst.PadCount++

	// clock pads on top feeding the register clocks
	for i, clk := range []string{"PHI1[0]", "PHI2[3]"} {
		pad, err := e.CreateInstance("PADIN", fmt.Sprintf("phipad%d", i+1),
			geom.MakeTransform(geom.R0, geom.Pt(lb.Min.X+(30+70*i)*l, lb.Max.Y+90*l)), 1, 1, 0, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := routePad(e, cst, pad, logicInst, "sr."+clk); err != nil {
			return nil, nil, nil, err
		}
		cst.PadCount++
	}

	// output pad on the right carrying f
	outName, err := findConn(logicInst, geom.SideRight, geom.NP)
	if err != nil {
		return nil, nil, nil, err
	}
	fpad, err := e.CreateInstance("PADOUT", "fpad",
		geom.MakeTransform(geom.R270, geom.Pt(lb.Max.X+90*l, lb.Min.Y+60*l)), 1, 1, 0, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := routePad(e, cst, fpad, logicInst, outName); err != nil {
		return nil, nil, nil, err
	}
	cst.PadCount++

	box := chip.BBox()
	cst.ChipBox = box
	cst.ChipArea = (box.W() / l) * (box.H() / l)
	_ = logicCell
	return d, chip, cst, nil
}

// routePad connects one pad connector to one core connector by
// routing.
func routePad(e *core.Editor, cst *ChipStats, pad *core.Instance, logic *core.Instance, conn string) error {
	if err := e.AddConnection(pad, "P", logic, conn); err != nil {
		return err
	}
	res, err := e.RouteConnect(core.RouteOptions{})
	if err != nil {
		return err
	}
	if len(res.Warnings) > 0 {
		return fmt.Errorf("filter: pad route to %s: %v", conn, res.Warnings)
	}
	cst.Routes++
	return nil
}

// findConn locates an exported logic connector on the given side and
// layer (the data input and output whose generated names depend on the
// variant's route/stretch history). Among candidates it picks the one
// lowest along the edge, which selects the OR output (bottom of the
// core) rather than the register-chain tail (top).
func findConn(in *core.Instance, side geom.Side, layer geom.Layer) (string, error) {
	best := ""
	bestCoord := 0
	for _, ic := range in.Connectors() {
		if ic.Side != side || ic.Layer != layer {
			continue
		}
		coord := ic.At.Y
		if side.Vertical() {
			coord = ic.At.X
		}
		if best == "" || coord < bestCoord {
			best, bestCoord = ic.Name, coord
		}
	}
	if best == "" {
		return "", fmt.Errorf("filter: no %v connector on %v side of %s", layer, side, in.Name)
	}
	return best, nil
}

// SticksOf is a small helper for tests: the symbolic cell behind a
// leaf instance.
func SticksOf(in *core.Instance) *sticks.Cell { return in.Cell.Sticks }
