package filter

import (
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
)

func TestBuildLogicRouted(t *testing.T) {
	d, logic, st, err := BuildLogic(Routed)
	if err != nil {
		t.Fatal(err)
	}
	if st.RouteCells != 2 {
		t.Errorf("route cells = %d, want 2 (one channel per row gap)", st.RouteCells)
	}
	if st.ChannelHeight == 0 {
		t.Error("no channel height recorded")
	}
	// connectivity: every NAND A touches its register tap through the
	// route cell; verify the route floor connectors meet the taps
	sr, _ := logic.InstanceByName("sr")
	nr, _ := logic.InstanceByName("nr")
	for i := 0; i < 4; i++ {
		tap, err := sr.Connector(tapName(i))
		if err != nil {
			t.Fatal(err)
		}
		_ = tap
	}
	if sr == nil || nr == nil {
		t.Fatal("instances missing")
	}
	// the route cells are in the cell menu
	names := d.CellNames()
	routes := 0
	for _, n := range names {
		c, _ := d.Cell(n)
		if c.Kind == core.LeafSticks && len(n) >= 5 && n[:5] == "ROUTE" {
			routes++
		}
	}
	if routes != 2 {
		t.Errorf("route cells in menu = %d", routes)
	}
}

func tapName(i int) string { return "TAP[" + string(rune('0'+i)) + "]" }

func TestBuildLogicStretched(t *testing.T) {
	_, logic, st, err := BuildLogic(Stretched)
	if err != nil {
		t.Fatal(err)
	}
	if st.RouteCells != 0 {
		t.Errorf("stretched variant made %d route cells", st.RouteCells)
	}
	// the stretched NANDs tile under the register array: each abuts
	// its neighbors and the register row
	sr, _ := logic.InstanceByName("sr")
	srBox := sr.BBox()
	for i := 0; i < 4; i++ {
		ni, ok := logic.InstanceByName("n" + string(rune('0'+i)))
		if !ok {
			t.Fatalf("n%d missing", i)
		}
		nb := ni.BBox()
		if nb.Max.Y != srBox.Min.Y {
			t.Errorf("n%d does not abut the register row: %v vs %v", i, nb, srBox)
		}
		if i > 0 {
			prev, _ := logic.InstanceByName("n" + string(rune('0'+i-1)))
			if prev.BBox().Max.X != nb.Min.X {
				t.Errorf("n%d does not tile against n%d: %v vs %v", i, i-1, nb, prev.BBox())
			}
		}
		// the A input coincides with the tap
		a, err := ni.Connector("A")
		if err != nil {
			t.Fatal(err)
		}
		tap, err := sr.Connector(tapName(i))
		if err != nil {
			t.Fatal(err)
		}
		if a.At != tap.At {
			t.Errorf("n%d.A %v does not meet %s %v", i, a.At, tapName(i), tap.At)
		}
	}
	// the OR gate abuts the NAND row with its inputs on the NAND
	// outputs
	orr, _ := logic.InstanceByName("orr")
	n0, _ := logic.InstanceByName("n0")
	if orr.BBox().Max.Y != n0.BBox().Min.Y {
		t.Errorf("OR does not abut the NAND row: %v vs %v", orr.BBox(), n0.BBox())
	}
	for i := 0; i < 4; i++ {
		ni, _ := logic.InstanceByName("n" + string(rune('0'+i)))
		out, _ := ni.Connector("OUT")
		in, err := orr.Connector("IN" + string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if out.At != in.At {
			t.Errorf("OR.IN%d %v does not meet n%d.OUT %v", i, in.At, i, out.At)
		}
	}
}

// TestFig9AreaClaim is the paper's headline observation: "the designer
// may save area by stretching the gates, eliminating the routing area
// ... The important space savings is in the vertical direction since
// no routing channels are needed to connect the NAND and OR gates."
func TestFig9AreaClaim(t *testing.T) {
	_, _, routed, err := BuildLogic(Routed)
	if err != nil {
		t.Fatal(err)
	}
	_, _, stretched, err := BuildLogic(Stretched)
	if err != nil {
		t.Fatal(err)
	}
	if stretched.LogicHeight >= routed.LogicHeight {
		t.Errorf("stretched height %d >= routed height %d", stretched.LogicHeight, routed.LogicHeight)
	}
	// the height difference is exactly the channel height the routed
	// version spends (up to the internal stretching slack the paper
	// itself notes is "wasted inside the cells")
	saved := routed.LogicHeight - stretched.LogicHeight
	if saved <= 0 || saved > routed.ChannelHeight {
		t.Errorf("vertical saving %d outside (0, %d]", saved, routed.ChannelHeight)
	}
	t.Logf("routed: %dλ tall (channels %dλ); stretched: %dλ tall; saved %dλ",
		routed.LogicHeight, routed.ChannelHeight, stretched.LogicHeight, saved)
}

func TestBuildChipBothVariants(t *testing.T) {
	for _, variant := range []Variant{Routed, Stretched} {
		d, chip, cst, err := BuildChip(variant)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if cst.PadCount != 4 {
			t.Errorf("%v: pads = %d", variant, cst.PadCount)
		}
		if cst.Routes != 4 {
			t.Errorf("%v: pad routes = %d", variant, cst.Routes)
		}
		if cst.ChipArea <= cst.Logic.LogicArea {
			t.Errorf("%v: chip area %d not larger than logic area %d", variant, cst.ChipArea, cst.Logic.LogicArea)
		}
		// the chip exports as CIF for mask generation
		f, err := core.ExportCIF(chip)
		if err != nil {
			t.Fatalf("%v: export: %v", variant, err)
		}
		if len(f.Symbols) < 8 {
			t.Errorf("%v: only %d symbols exported", variant, len(f.Symbols))
		}
		_ = d
	}
}

func TestChipLeafCount(t *testing.T) {
	_, chip, _, err := BuildChip(Routed)
	if err != nil {
		t.Fatal(err)
	}
	// 4 SR + 4 NAND + 1 OR + 4 pads + route cells
	if n := chip.CountLeaves(); n < 13 {
		t.Errorf("leaf placements = %d", n)
	}
}

func TestVariantString(t *testing.T) {
	if Routed.String() != "routed" || Stretched.String() != "stretched" {
		t.Error("variant names wrong")
	}
}

func TestStatsGeometrySane(t *testing.T) {
	_, logic, st, err := BuildLogic(Routed)
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicBox != logic.BBox() {
		t.Error("stats box mismatch")
	}
	if st.LogicArea != (st.LogicBox.W()/l)*(st.LogicBox.H()/l) {
		t.Error("area arithmetic wrong")
	}
	if st.LogicBox.W() < 64*l {
		t.Errorf("logic narrower than the register array: %v", st.LogicBox)
	}
	_ = geom.Rect{}
}
