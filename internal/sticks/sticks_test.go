package sticks

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"riot/internal/cif"
	"riot/internal/geom"
	"riot/internal/rules"
)

const nandSrc = `
# two-input NAND gate, lambda units
STICKS NAND
BBOX 0 0 14 20
WIRE NM 4 0 18 14 18    # VDD rail
WIRE NM 4 0 2 14 2      # GND rail
WIRE ND 2 7 2 7 18
WIRE NP 2 0 8 14 8
WIRE NP 2 0 12 14 12
DEVICE ENH 7 8 V 2 2
DEVICE ENH 7 12 V 2 2
DEVICE DEP 7 16 V 2 2
CONTACT NM ND 7 2
CONTACT NM ND 7 18
CONNECTOR PWRL 0 18 NM 4 left
CONNECTOR PWRR 14 18 NM 4 right
CONNECTOR GNDL 0 2 NM 4 left
CONNECTOR GNDR 14 2 NM 4 right
CONNECTOR A 0 8 NP 2 left
CONNECTOR B 0 12 NP 2 left
CONNECTOR OUT 14 8 NP 2 right
END
`

func mustParse(t *testing.T, src string) *Cell {
	t.Helper()
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestParseNAND(t *testing.T) {
	c := mustParse(t, nandSrc)
	if c.Name != "NAND" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.Wires) != 5 || len(c.Devices) != 3 || len(c.Contacts) != 2 || len(c.Connectors) != 7 {
		t.Errorf("counts: %d wires %d devices %d contacts %d connectors",
			len(c.Wires), len(c.Devices), len(c.Contacts), len(c.Connectors))
	}
	if c.BBox() != geom.R(0, 0, 14, 20) {
		t.Errorf("bbox = %v", c.BBox())
	}
	out, ok := c.ConnectorByName("OUT")
	if !ok || out.At != geom.Pt(14, 8) || out.Layer != geom.NP || out.Side != geom.SideRight {
		t.Errorf("OUT = %+v ok=%v", out, ok)
	}
	if _, ok := c.ConnectorByName("MISSING"); ok {
		t.Error("found ghost connector")
	}
	if c.Devices[2].Kind != Depletion || !c.Devices[2].Vertical {
		t.Errorf("pull-up = %+v", c.Devices[2])
	}
}

func TestComputedBBox(t *testing.T) {
	c := mustParse(t, "STICKS W\nWIRE NM 4 0 0 10 0\nEND\n")
	// metal width 4 centered on the path
	if got := c.BBox(); got != geom.R(-2, -2, 12, 2) {
		t.Errorf("bbox = %v", got)
	}
}

func TestEffWidthDefaults(t *testing.T) {
	cn := Connector{Layer: geom.NM}
	if cn.EffWidth() != rules.MinWidth(geom.NM) {
		t.Errorf("EffWidth = %d", cn.EffWidth())
	}
	cn.Width = 6
	if cn.EffWidth() != 6 {
		t.Errorf("EffWidth = %d", cn.EffWidth())
	}
}

func TestEffUnits(t *testing.T) {
	c := &Cell{Name: "U"}
	if c.EffUnits() != rules.Lambda {
		t.Errorf("default units = %d", c.EffUnits())
	}
	c.Units = 100
	if c.EffUnits() != 100 {
		t.Errorf("units = %d", c.EffUnits())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dup connector", "STICKS A\nBBOX 0 0 4 4\nCONNECTOR P 0 0 NM 0 none\nCONNECTOR P 4 4 NM 0 none\nEND\n"},
		{"bad layer", "STICKS A\nBBOX 0 0 4 4\nCONNECTOR P 0 0 NC 0 none\nEND\n"},
		{"off-edge", "STICKS A\nBBOX 0 0 4 4\nCONNECTOR P 2 2 NM 0 left\nEND\n"},
		{"unknown constraint ref", "STICKS A\nBBOX 0 0 4 4\nCONNECTOR P 0 2 NM 0 left\nCONSTRAINT X P Q 3\nEND\n"},
		{"diagonal wire", "STICKS A\nWIRE NM 4 0 0 5 5\nEND\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := []string{
		"WIRE NM 4 0 0 1 1\n",                          // outside block
		"STICKS A\nSTICKS B\nEND\n",                    // nested
		"STICKS A\nWIRE NM x 0 0 1 0\nEND\n",           // bad width
		"STICKS A\nWIRE NM 4 0 0 1\nEND\n",             // odd coords
		"STICKS A\nDEVICE FOO 0 0 H 2 2\nEND\n",        // bad kind
		"STICKS A\nDEVICE ENH 0 0 D 2 2\nEND\n",        // bad orient
		"STICKS A\nDEVICE ENH 0 0 H 0 2\nEND\n",        // zero width
		"STICKS A\nCONNECTOR P 0 0 NM 0 diag\nEND\n",   // bad side
		"STICKS A\nCONSTRAINT Z A B 1\nEND\n",          // bad axis
		"STICKS A\nUNITS -5\nEND\n",                    // bad units
		"STICKS A\nFROB 1 2\nEND\n",                    // unknown keyword
		"STICKS A\nWIRE NM 4 0 0 4 0\n",                // missing END
		"STICKS\nEND\n",                                // missing name
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	c1 := mustParse(t, nandSrc)
	c1.Constraints = append(c1.Constraints, Constraint{AxisX, "A", "B", 4}, Constraint{AxisY, "GNDL", "PWRL", 16})
	text := String(c1)
	c2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("round trip mismatch\n%s", text)
	}
}

func TestParseAllMultipleCells(t *testing.T) {
	src := "STICKS A\nWIRE NM 4 0 0 4 0\nEND\nSTICKS B\nWIRE NP 2 0 0 0 4\nEND\n"
	cells, err := ParseAll(strings.NewReader(src))
	if err != nil || len(cells) != 2 {
		t.Fatalf("ParseAll = %d cells, %v", len(cells), err)
	}
	if cells[0].Name != "A" || cells[1].Name != "B" {
		t.Errorf("names = %q, %q", cells[0].Name, cells[1].Name)
	}
	var b strings.Builder
	if err := WriteAll(&b, cells); err != nil {
		t.Fatal(err)
	}
	again, err := ParseAll(strings.NewReader(b.String()))
	if err != nil || len(again) != 2 {
		t.Fatalf("WriteAll round trip: %v", err)
	}
}

func TestClone(t *testing.T) {
	c := mustParse(t, nandSrc)
	d := c.Clone()
	d.Wires[0].Points[0] = geom.Pt(999, 999)
	d.Connectors[0].Name = "CHANGED"
	if c.Wires[0].Points[0] == geom.Pt(999, 999) {
		t.Error("Clone shares wire points")
	}
	if c.Connectors[0].Name == "CHANGED" {
		t.Error("Clone shares connectors")
	}
}

func TestToCIF(t *testing.T) {
	c := mustParse(t, nandSrc)
	sym, err := ToCIF(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sym.ID != 7 || sym.Name != "NAND" {
		t.Errorf("symbol header = %d %q", sym.ID, sym.Name)
	}
	// 5 wires + 3 devices (2 boxes each + 1 implant) + 2 contacts (3 each) + 7 connectors
	wantMin := 5 + 3*2 + 1 + 2*3 + 7
	if len(sym.Elements) != wantMin {
		t.Errorf("elements = %d, want %d", len(sym.Elements), wantMin)
	}
	// wire coordinates scaled to centimicrons
	w := sym.Elements[0].(cif.Wire)
	if w.Width != 4*rules.Lambda || w.Points[1] != geom.Pt(14*rules.Lambda, 18*rules.Lambda) {
		t.Errorf("scaled wire = %+v", w)
	}
	// connectors present with scaled widths
	f := &cif.File{Symbols: []*cif.Symbol{sym}}
	found := 0
	for _, cn := range sym.Connectors() {
		if cn.Name == "OUT" {
			found++
			if cn.At != geom.Pt(14*rules.Lambda, 8*rules.Lambda) {
				t.Errorf("OUT at %v", cn.At)
			}
		}
	}
	if found != 1 {
		t.Errorf("OUT connectors = %d", found)
	}
	// the CIF is structurally valid: bbox computes and file writes/parses
	if _, err := f.SymbolBBox(7); err != nil {
		t.Errorf("bbox: %v", err)
	}
	if _, err := cif.ParseString(cif.String(f)); err != nil {
		t.Errorf("emitted CIF does not parse: %v", err)
	}
}

func TestToCIFDepletionImplant(t *testing.T) {
	c := mustParse(t, "STICKS D\nDEVICE DEP 10 10 H 2 2\nEND\n")
	sym, err := ToCIF(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	hasImplant := false
	for _, e := range sym.Elements {
		if b, ok := e.(cif.Box); ok && b.Layer == geom.NI {
			hasImplant = true
		}
	}
	if !hasImplant {
		t.Error("depletion device missing implant box")
	}
}

func TestToCIFRejectsBadDevice(t *testing.T) {
	c := &Cell{Name: "BAD", Devices: []Device{{Kind: Enhancement, W: 2, L: 1}}}
	if _, err := ToCIF(c, 1); err == nil {
		t.Error("accepted sub-minimum channel length")
	}
}

func TestDeviceBoxesGeometry(t *testing.T) {
	gate, chanr, implant, err := DeviceBoxes(Device{Kind: Enhancement, At: geom.Pt(10, 10), Vertical: true, W: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	// vertical device: gate is horizontal poly crossing vertical diffusion
	if gate.W() <= gate.H() {
		t.Errorf("vertical device gate should be wide: %v", gate)
	}
	if chanr.H() <= chanr.W() {
		t.Errorf("vertical device channel should be tall: %v", chanr)
	}
	if !implant.ContainsRect(gate) {
		t.Errorf("implant %v does not cover gate %v", implant, gate)
	}
	// channel and gate must overlap (that is the transistor)
	if gate.Intersect(chanr).Empty() {
		t.Error("gate does not cross channel")
	}
}

// Property-style test: random valid cells round-trip through text.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layers := []geom.Layer{geom.NM, geom.NP, geom.ND}
	sides := []geom.Side{geom.SideLeft, geom.SideRight, geom.SideBottom, geom.SideTop, geom.SideNone}
	for trial := 0; trial < 40; trial++ {
		c := &Cell{Name: "T", Units: 250, Box: geom.R(0, 0, 100, 100), HasBox: true}
		for i := 0; i < 1+rng.Intn(5); i++ {
			n := 2 + rng.Intn(3)
			pts := make([]geom.Point, n)
			x, y := rng.Intn(90), rng.Intn(90)
			pts[0] = geom.Pt(x, y)
			for j := 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					x = rng.Intn(90)
				} else {
					y = rng.Intn(90)
				}
				pts[j] = geom.Pt(x, y)
			}
			c.Wires = append(c.Wires, Wire{Layer: layers[rng.Intn(3)], Width: rng.Intn(5), Points: pts})
		}
		for i := 0; i < rng.Intn(3); i++ {
			c.Devices = append(c.Devices, Device{
				Kind: DeviceKind(rng.Intn(2)), At: geom.Pt(10+rng.Intn(80), 10+rng.Intn(80)),
				Vertical: rng.Intn(2) == 0, W: 2 + rng.Intn(4), L: 2 + rng.Intn(2),
			})
		}
		side := sides[rng.Intn(len(sides))]
		at := geom.Pt(50, 50)
		switch side {
		case geom.SideLeft:
			at = geom.Pt(0, 50)
		case geom.SideRight:
			at = geom.Pt(100, 50)
		case geom.SideBottom:
			at = geom.Pt(50, 0)
		case geom.SideTop:
			at = geom.Pt(50, 100)
		}
		c.Connectors = append(c.Connectors, Connector{Name: "P", At: at, Layer: geom.NM, Width: rng.Intn(5), Side: side})
		text := String(c)
		c2, err := ParseString(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("trial %d: mismatch\n%s", trial, text)
		}
	}
}
