package sticks

import (
	"fmt"

	"riot/internal/cif"
	"riot/internal/geom"
	"riot/internal/rules"
)

// ToCIF renders the symbolic cell into mask geometry as a CIF symbol
// with the given definition number. This is the conversion Riot applies
// when a composition containing Sticks cells is written out "to CIF for
// mask generation":
//
//   - wires become CIF wires at their declared (or layer-minimum) width,
//   - transistors become a poly gate crossing a diffusion channel, with
//     an implant box for depletion devices,
//   - contacts become a contact cut with pads on both joined layers,
//   - connectors become the 94 connector extension.
//
// All coordinates are multiplied by the cell's unit size so the symbol
// is in centimicrons.
func ToCIF(c *Cell, id int) (*cif.Symbol, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	u := c.EffUnits()
	sp := func(p geom.Point) geom.Point { return geom.Pt(p.X*u, p.Y*u) }
	sym := &cif.Symbol{ID: id, A: 1, B: 1, Name: c.Name}

	for _, w := range c.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		pts := make([]geom.Point, len(w.Points))
		for i, p := range w.Points {
			pts[i] = sp(p)
		}
		sym.Elements = append(sym.Elements, cif.Wire{Layer: w.Layer, Width: width * u, Points: pts})
	}

	for _, d := range c.Devices {
		gate, chan_, implant, err := DeviceBoxes(d)
		if err != nil {
			return nil, fmt.Errorf("sticks: %s: %w", c.Name, err)
		}
		sym.Elements = append(sym.Elements,
			boxFromRect(geom.ND, scaleRect(chan_, u)),
			boxFromRect(geom.NP, scaleRect(gate, u)),
		)
		if d.Kind == Depletion {
			sym.Elements = append(sym.Elements, boxFromRect(geom.NI, scaleRect(implant, u)))
		}
	}

	for _, ct := range c.Contacts {
		h := rules.ContactSize / 2
		pad := geom.R(ct.At.X-h, ct.At.Y-h, ct.At.X+h, ct.At.Y+h)
		cut := pad.Inset(1)
		sym.Elements = append(sym.Elements,
			boxFromRect(ct.From, scaleRect(pad, u)),
			boxFromRect(ct.To, scaleRect(pad, u)),
			boxFromRect(geom.NC, scaleRect(cut, u)),
		)
	}

	for _, cn := range c.Connectors {
		sym.Elements = append(sym.Elements, cif.Connector{
			Name:  cn.Name,
			At:    sp(cn.At),
			Layer: cn.Layer,
			Width: cn.EffWidth() * u,
		})
	}
	return sym, nil
}

// DeviceBoxes computes the gate (poly), channel (diffusion) and implant
// rectangles of a transistor in cell units.
func DeviceBoxes(d Device) (gate, channel, implant geom.Rect, err error) {
	if d.W <= 0 || d.L < rules.TransistorChannelLength {
		return gate, channel, implant, fmt.Errorf("bad device dimensions W=%d L=%d", d.W, d.L)
	}
	// The gate extends 2 lambda past the channel on both ends; the
	// diffusion extends 2 lambda past the gate on both ends.
	const ext = 2
	if d.Vertical {
		// diffusion runs vertically, poly gate horizontal
		channel = geom.R(d.At.X-d.W/2, d.At.Y-d.L/2-ext, d.At.X+d.W-d.W/2, d.At.Y+d.L-d.L/2+ext)
		gate = geom.R(d.At.X-d.W/2-ext, d.At.Y-d.L/2, d.At.X+d.W-d.W/2+ext, d.At.Y+d.L-d.L/2)
	} else {
		channel = geom.R(d.At.X-d.L/2-ext, d.At.Y-d.W/2, d.At.X+d.L-d.L/2+ext, d.At.Y+d.W-d.W/2)
		gate = geom.R(d.At.X-d.L/2, d.At.Y-d.W/2-ext, d.At.X+d.L-d.L/2, d.At.Y+d.W-d.W/2+ext)
	}
	implant = gate.Inset(-1)
	return gate, channel, implant, nil
}

func scaleRect(r geom.Rect, u int) geom.Rect {
	return geom.R(r.Min.X*u, r.Min.Y*u, r.Max.X*u, r.Max.Y*u)
}

func boxFromRect(l geom.Layer, r geom.Rect) cif.Box {
	return cif.Box{
		Layer:     l,
		Length:    r.W(),
		Width:     r.H(),
		Center:    geom.Pt(r.Min.X+r.W()/2, r.Min.Y+r.H()/2),
		Direction: geom.Pt(1, 0),
	}
}
