// Package sticks implements the Sticks symbolic-layout interchange
// format (the "Sticks Standard", Trimberger 1980). A Sticks cell
// describes a leaf cell topologically: wires with a layer and width,
// transistors, inter-layer contacts, and named connectors on the cell
// boundary, all on a lambda grid. Sticks cells are what REST produces,
// what Riot stretches, and what the river router emits for its route
// cells.
//
// The original Sticks Standard technical report is long out of print;
// this package defines a documented line-oriented text rendering of the
// same content (see DESIGN.md, Substitutions). The grammar is:
//
//	STICKS <name>
//	UNITS <centimicrons-per-unit>          (optional, default 250)
//	BBOX <x0> <y0> <x1> <y1>               (optional, else computed)
//	WIRE <layer> <width> <x1> <y1> <x2> <y2> ...
//	DEVICE <ENH|DEP> <x> <y> <H|V> <w> <l>
//	CONTACT <layerA> <layerB> <x> <y>
//	CONNECTOR <name> <x> <y> <layer> <width> <side>
//	CONSTRAINT <X|Y> <nameA> <nameB> <min>
//	END
//
// Comments run from '#' to end of line. All coordinates are in cell
// units (lambda by default).
package sticks

import (
	"fmt"
	"sort"

	"riot/internal/geom"
	"riot/internal/rules"
)

// Wire is a symbolic wire: an orthogonal path on one layer. Width zero
// means "minimum width for the layer".
type Wire struct {
	Layer  geom.Layer
	Width  int
	Points []geom.Point
}

// DeviceKind distinguishes enhancement- and depletion-mode nMOS
// transistors.
type DeviceKind uint8

// The two nMOS device kinds.
const (
	Enhancement DeviceKind = iota
	Depletion
)

// String returns the keyword used in the text format.
func (k DeviceKind) String() string {
	if k == Depletion {
		return "DEP"
	}
	return "ENH"
}

// Device is a transistor: a poly gate crossing a diffusion channel at
// At. Vertical devices run their diffusion vertically (gate poly
// horizontal); horizontal devices the reverse. W and L are channel
// width and length in cell units.
type Device struct {
	Kind     DeviceKind
	At       geom.Point
	Vertical bool
	W, L     int
}

// Contact connects two layers at a point with the standard contact
// structure.
type Contact struct {
	From, To geom.Layer
	At       geom.Point
}

// Connector is a named connection point, normally on the cell
// boundary. Width zero means minimum width for the layer. Side records
// which bounding-box edge the connector lies on; SideNone marks an
// interior connector.
type Connector struct {
	Name  string
	At    geom.Point
	Layer geom.Layer
	Width int
	Side  geom.Side
}

// EffWidth returns the connector's wire width, substituting the layer
// minimum when the width is unspecified.
func (c Connector) EffWidth() int {
	if c.Width > 0 {
		return c.Width
	}
	return rules.MinWidth(c.Layer)
}

// Axis selects the coordinate a constraint applies to.
type Axis uint8

// The two constraint axes.
const (
	AxisX Axis = iota
	AxisY
)

// String returns "X" or "Y".
func (a Axis) String() string {
	if a == AxisY {
		return "Y"
	}
	return "X"
}

// Constraint is a user (or Riot-generated) separation constraint
// between two named connectors: coordinate(B) - coordinate(A) >= Min on
// the given axis. Riot's STRETCH operation works by adding constraints
// of this form and re-solving the cell.
type Constraint struct {
	Axis Axis
	A, B string
	Min  int
}

// Cell is a complete Sticks cell.
type Cell struct {
	Name        string
	Units       int // centimicrons per cell unit; 0 means rules.Lambda
	Wires       []Wire
	Devices     []Device
	Contacts    []Contact
	Connectors  []Connector
	Constraints []Constraint
	Box         geom.Rect // declared bounding box
	HasBox      bool
}

// EffUnits returns the cell's unit size in centimicrons.
func (c *Cell) EffUnits() int {
	if c.Units > 0 {
		return c.Units
	}
	return rules.Lambda
}

// ConnectorByName returns the named connector and whether it exists.
func (c *Cell) ConnectorByName(name string) (Connector, bool) {
	for _, cn := range c.Connectors {
		if cn.Name == name {
			return cn, true
		}
	}
	return Connector{}, false
}

// BBox returns the declared bounding box if present, otherwise the
// union of all content extents (wire widths included).
func (c *Cell) BBox() geom.Rect {
	if c.HasBox {
		return c.Box
	}
	var r geom.Rect
	first := true
	add := func(s geom.Rect) {
		if first {
			r = s
			first = false
		} else {
			r = r.Union(s)
		}
	}
	for _, w := range c.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		h := width / 2
		for _, p := range w.Points {
			add(geom.R(p.X-h, p.Y-h, p.X+width-h, p.Y+width-h))
		}
	}
	for _, d := range c.Devices {
		half := (max(d.W, d.L) + 2) / 2
		add(geom.R(d.At.X-half, d.At.Y-half, d.At.X+half, d.At.Y+half))
	}
	for _, ct := range c.Contacts {
		h := rules.ContactSize / 2
		add(geom.R(ct.At.X-h, ct.At.Y-h, ct.At.X+h, ct.At.Y+h))
	}
	for _, cn := range c.Connectors {
		add(geom.Rect{Min: cn.At, Max: cn.At})
	}
	return r
}

// Clone returns a deep copy of the cell.
func (c *Cell) Clone() *Cell {
	d := *c
	d.Wires = make([]Wire, len(c.Wires))
	for i, w := range c.Wires {
		w.Points = append([]geom.Point(nil), w.Points...)
		d.Wires[i] = w
	}
	d.Devices = append([]Device(nil), c.Devices...)
	d.Contacts = append([]Contact(nil), c.Contacts...)
	d.Connectors = append([]Connector(nil), c.Connectors...)
	d.Constraints = append([]Constraint(nil), c.Constraints...)
	return &d
}

// Validate checks structural invariants: a non-empty name, unique
// connector names, routable connector layers, connectors with a
// declared side actually lying on that edge of the bounding box, and
// constraints that reference existing connectors.
func (c *Cell) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("sticks: cell has no name")
	}
	names := map[string]bool{}
	bb := c.BBox()
	for _, cn := range c.Connectors {
		if cn.Name == "" {
			return fmt.Errorf("sticks: %s: connector with empty name", c.Name)
		}
		if names[cn.Name] {
			return fmt.Errorf("sticks: %s: duplicate connector %q", c.Name, cn.Name)
		}
		names[cn.Name] = true
		if !cn.Layer.Routable() {
			return fmt.Errorf("sticks: %s: connector %q on non-routable layer %v", c.Name, cn.Name, cn.Layer)
		}
		if cn.Side != geom.SideNone {
			onEdge := false
			switch cn.Side {
			case geom.SideLeft:
				onEdge = cn.At.X == bb.Min.X
			case geom.SideRight:
				onEdge = cn.At.X == bb.Max.X
			case geom.SideBottom:
				onEdge = cn.At.Y == bb.Min.Y
			case geom.SideTop:
				onEdge = cn.At.Y == bb.Max.Y
			}
			if !onEdge {
				return fmt.Errorf("sticks: %s: connector %q declared on %v edge but at %v (bbox %v)",
					c.Name, cn.Name, cn.Side, cn.At, bb)
			}
		}
	}
	for _, k := range c.Constraints {
		if !names[k.A] {
			return fmt.Errorf("sticks: %s: constraint references unknown connector %q", c.Name, k.A)
		}
		if !names[k.B] {
			return fmt.Errorf("sticks: %s: constraint references unknown connector %q", c.Name, k.B)
		}
	}
	for _, w := range c.Wires {
		if len(w.Points) < 2 {
			return fmt.Errorf("sticks: %s: wire with fewer than 2 points", c.Name)
		}
		for i := 1; i < len(w.Points); i++ {
			a, b := w.Points[i-1], w.Points[i]
			if a.X != b.X && a.Y != b.Y {
				return fmt.Errorf("sticks: %s: non-Manhattan wire segment %v-%v", c.Name, a, b)
			}
		}
	}
	return nil
}

// SortedConnectorNames returns connector names in lexical order, for
// deterministic iteration.
func (c *Cell) SortedConnectorNames() []string {
	names := make([]string, len(c.Connectors))
	for i, cn := range c.Connectors {
		names[i] = cn.Name
	}
	sort.Strings(names)
	return names
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
