package sticks

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write emits the cell in the Sticks text format. The output
// round-trips through Parse.
func Write(w io.Writer, c *Cell) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "STICKS %s\n", c.Name); err != nil {
		return err
	}
	if c.Units > 0 {
		fmt.Fprintf(bw, "UNITS %d\n", c.Units)
	}
	if c.HasBox {
		fmt.Fprintf(bw, "BBOX %d %d %d %d\n", c.Box.Min.X, c.Box.Min.Y, c.Box.Max.X, c.Box.Max.Y)
	}
	for _, wr := range c.Wires {
		fmt.Fprintf(bw, "WIRE %s %d", wr.Layer, wr.Width)
		for _, p := range wr.Points {
			fmt.Fprintf(bw, " %d %d", p.X, p.Y)
		}
		fmt.Fprintln(bw)
	}
	for _, d := range c.Devices {
		orient := "H"
		if d.Vertical {
			orient = "V"
		}
		fmt.Fprintf(bw, "DEVICE %s %d %d %s %d %d\n", d.Kind, d.At.X, d.At.Y, orient, d.W, d.L)
	}
	for _, ct := range c.Contacts {
		fmt.Fprintf(bw, "CONTACT %s %s %d %d\n", ct.From, ct.To, ct.At.X, ct.At.Y)
	}
	for _, cn := range c.Connectors {
		fmt.Fprintf(bw, "CONNECTOR %s %d %d %s %d %s\n", cn.Name, cn.At.X, cn.At.Y, cn.Layer, cn.Width, cn.Side)
	}
	for _, k := range c.Constraints {
		fmt.Fprintf(bw, "CONSTRAINT %s %s %s %d\n", k.Axis, k.A, k.B, k.Min)
	}
	if _, err := fmt.Fprintln(bw, "END"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteAll emits several cells back to back.
func WriteAll(w io.Writer, cells []*Cell) error {
	for _, c := range cells {
		if err := Write(w, c); err != nil {
			return err
		}
	}
	return nil
}

// String renders the cell as Sticks text.
func String(c *Cell) string {
	var b strings.Builder
	_ = Write(&b, c)
	return b.String()
}
