package sticks

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"riot/internal/geom"
)

// Parse reads one Sticks cell from r. The format is described in the
// package comment.
func Parse(r io.Reader) (*Cell, error) {
	cells, err := ParseAll(r)
	if err != nil {
		return nil, err
	}
	if len(cells) != 1 {
		return nil, fmt.Errorf("sticks: expected one cell, found %d", len(cells))
	}
	return cells[0], nil
}

// ParseString parses Sticks text held in a string.
func ParseString(s string) (*Cell, error) { return Parse(strings.NewReader(s)) }

// ParseAll reads every cell in a Sticks file (a file may carry several
// STICKS...END blocks back to back).
func ParseAll(r io.Reader) ([]*Cell, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var cells []*Cell
	var cur *Cell
	lineno := 0
	errf := func(format string, args ...any) error {
		return fmt.Errorf("sticks: line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fs := strings.Fields(line)
		if len(fs) == 0 {
			continue
		}
		kw := strings.ToUpper(fs[0])
		if kw == "STICKS" {
			if cur != nil {
				return nil, errf("STICKS inside cell %q (missing END)", cur.Name)
			}
			if len(fs) != 2 {
				return nil, errf("STICKS needs a cell name")
			}
			cur = &Cell{Name: fs[1]}
			continue
		}
		if cur == nil {
			return nil, errf("%s outside a STICKS block", kw)
		}
		args := fs[1:]
		switch kw {
		case "UNITS":
			v, err := intArgs(args, 1)
			if err != nil {
				return nil, errf("UNITS: %v", err)
			}
			if v[0] <= 0 {
				return nil, errf("UNITS must be positive")
			}
			cur.Units = v[0]
		case "BBOX":
			v, err := intArgs(args, 4)
			if err != nil {
				return nil, errf("BBOX: %v", err)
			}
			cur.Box = geom.R(v[0], v[1], v[2], v[3])
			cur.HasBox = true
		case "WIRE":
			if len(args) < 6 {
				return nil, errf("WIRE needs layer, width and at least two points")
			}
			layer := geom.Layer(strings.ToUpper(args[0]))
			width, err := strconv.Atoi(args[1])
			if err != nil || width < 0 {
				return nil, errf("WIRE: bad width %q", args[1])
			}
			coords, err := intArgs(args[2:], -1)
			if err != nil {
				return nil, errf("WIRE: %v", err)
			}
			if len(coords)%2 != 0 || len(coords) < 4 {
				return nil, errf("WIRE: odd or short coordinate list")
			}
			pts := make([]geom.Point, len(coords)/2)
			for i := range pts {
				pts[i] = geom.Pt(coords[2*i], coords[2*i+1])
			}
			cur.Wires = append(cur.Wires, Wire{Layer: layer, Width: width, Points: pts})
		case "DEVICE":
			if len(args) != 6 {
				return nil, errf("DEVICE needs kind x y orient w l")
			}
			var kind DeviceKind
			switch strings.ToUpper(args[0]) {
			case "ENH":
				kind = Enhancement
			case "DEP":
				kind = Depletion
			default:
				return nil, errf("DEVICE: unknown kind %q", args[0])
			}
			v, err := intArgs(args[1:3], 2)
			if err != nil {
				return nil, errf("DEVICE: %v", err)
			}
			var vertical bool
			switch strings.ToUpper(args[3]) {
			case "H":
				vertical = false
			case "V":
				vertical = true
			default:
				return nil, errf("DEVICE: orientation must be H or V, got %q", args[3])
			}
			wl, err := intArgs(args[4:6], 2)
			if err != nil {
				return nil, errf("DEVICE: %v", err)
			}
			if wl[0] <= 0 || wl[1] <= 0 {
				return nil, errf("DEVICE: non-positive channel dimensions")
			}
			cur.Devices = append(cur.Devices, Device{Kind: kind, At: geom.Pt(v[0], v[1]), Vertical: vertical, W: wl[0], L: wl[1]})
		case "CONTACT":
			if len(args) != 4 {
				return nil, errf("CONTACT needs layerA layerB x y")
			}
			v, err := intArgs(args[2:4], 2)
			if err != nil {
				return nil, errf("CONTACT: %v", err)
			}
			cur.Contacts = append(cur.Contacts, Contact{
				From: geom.Layer(strings.ToUpper(args[0])),
				To:   geom.Layer(strings.ToUpper(args[1])),
				At:   geom.Pt(v[0], v[1]),
			})
		case "CONNECTOR":
			if len(args) != 6 {
				return nil, errf("CONNECTOR needs name x y layer width side")
			}
			v, err := intArgs(args[1:3], 2)
			if err != nil {
				return nil, errf("CONNECTOR: %v", err)
			}
			width, err := strconv.Atoi(args[4])
			if err != nil || width < 0 {
				return nil, errf("CONNECTOR: bad width %q", args[4])
			}
			side, err := geom.ParseSide(strings.ToLower(args[5]))
			if err != nil {
				return nil, errf("CONNECTOR: %v", err)
			}
			cur.Connectors = append(cur.Connectors, Connector{
				Name:  args[0],
				At:    geom.Pt(v[0], v[1]),
				Layer: geom.Layer(strings.ToUpper(args[3])),
				Width: width,
				Side:  side,
			})
		case "CONSTRAINT":
			if len(args) != 4 {
				return nil, errf("CONSTRAINT needs axis nameA nameB min")
			}
			var axis Axis
			switch strings.ToUpper(args[0]) {
			case "X":
				axis = AxisX
			case "Y":
				axis = AxisY
			default:
				return nil, errf("CONSTRAINT: axis must be X or Y")
			}
			minv, err := strconv.Atoi(args[3])
			if err != nil {
				return nil, errf("CONSTRAINT: bad min %q", args[3])
			}
			cur.Constraints = append(cur.Constraints, Constraint{Axis: axis, A: args[1], B: args[2], Min: minv})
		case "END":
			if err := cur.Validate(); err != nil {
				return nil, err
			}
			cells = append(cells, cur)
			cur = nil
		default:
			return nil, errf("unknown keyword %q", kw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sticks: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("sticks: cell %q not terminated by END", cur.Name)
	}
	return cells, nil
}

func intArgs(args []string, n int) ([]int, error) {
	if n >= 0 && len(args) != n {
		return nil, fmt.Errorf("expected %d integers, got %d", n, len(args))
	}
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", a)
		}
		out[i] = v
	}
	return out, nil
}
