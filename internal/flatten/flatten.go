// Package flatten turns an assembled Riot cell hierarchy into flat
// per-layer mask geometry in top-level coordinates. It is the shared
// geometry-producing layer under every whole-design analysis in this
// reproduction: the circuit extractor (internal/extract) solves
// connectivity over its output, and the design-rule checker
// (internal/drc) measures widths and spacings on it. Keeping the walk
// in one package means "flatten the hierarchy" is implemented — and
// parallelized — exactly once, and every new verification workload
// starts from the same deterministic shape lists.
//
// # What flattening produces
//
// Cell walks the hierarchy and emits, in top-level (centimicron)
// coordinates:
//
//   - Shapes: every mask rectangle, in deterministic walk order
//     (instances in declaration order, array copies in x-major grid
//     order, leaf elements in source order);
//   - Devices: every transistor's gate strip, channel extent and probe
//     points;
//   - Joins: every contact's layer-joining points;
//   - Labels: connector names resolved to a point and layer (the
//     cell's own connectors plus, for compositions, every instance
//     connector as "inst.CONN").
//
// Replicated arrays — the paper's Nx x Ny composition primitive — fan
// out across goroutines: the copy list is chunked, each chunk flattens
// into a private shard, and shards merge back in grid order, so the
// parallel result is byte-identical to the sequential walk. Options
// {Sequential: true} forces the plain loop (differential tests and
// benchmarks use it as the reference).
//
// # Per-layer views
//
// Consumers are query-shaped: the extractor asks "what is at this
// point on this layer", the DRC asks "what is near this rectangle on
// this layer". Result therefore offers per-layer slices (LayerRects)
// and a lazily built geom.Index per layer (LayerIndex), so every
// downstream pass shares one spatial-index build over the same
// geometry.
package flatten

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// Shape is one rectangle of mask material in top-level coordinates.
// Src identifies the leaf-cell occurrence that produced the rectangle
// (dense ids in walk order): every sticks or CIF leaf the walk enters
// gets the next id, so consumers can tell material that came from one
// pre-designed cell apart from material that two different placements
// contributed. The design-rule checker trusts geometry inside one
// occurrence (leaf cells are "pre-designed" in the paper's workflow)
// and checks spacing only across occurrences — the separations Riot's
// own placement and routing decisions created.
type Shape struct {
	Layer geom.Layer
	R     geom.Rect
	Src   int
}

// Device is a transistor's geometry in flattened (centimicron) space:
// the gate poly strip, the diffusion channel extent, and probe points
// just beyond the gate on either channel end plus one on the gate.
// Src is the leaf occurrence that drew the device, in the same id
// space as Shape.Src — devices of one occurrence are contiguous and in
// the leaf's source order, which is what lets consumers (the LVS
// certificate check) align an occurrence's devices with the same
// cell's standalone flatten one-to-one.
type Device struct {
	Kind    sticks.DeviceKind
	Gate    geom.Rect
	Channel geom.Rect
	ProbeA  geom.Point
	ProbeB  geom.Point
	ProbeG  geom.Point
	Src     int
}

// Join is a contact: two points (usually coincident) whose material is
// electrically joined across two layers. LayerNone as the second layer
// means "any layer below the cut" — the rule CIF NC boxes use.
type Join struct {
	At     [2]geom.Point
	Layers [2]geom.Layer
}

// Label resolves a connector name to a probe point and layer.
type Label struct {
	At    geom.Point
	Layer geom.Layer
}

// NamedLabel is one entry of a Result's label list.
type NamedLabel struct {
	Name string
	Label
}

// Result is the flattened design: shape, device and join lists in
// deterministic walk order, plus the label map. The per-layer views
// (Layers, LayerRects, LayerIndex) are derived lazily and cached; a
// Result is not safe for concurrent use once those accessors are
// involved.
type Result struct {
	Shapes  []Shape
	Devices []Device
	Joins   []Join
	// Labels lists connector labels in walk order (the cell's own
	// connectors, then every instance's, instance by instance). On
	// duplicate names the last resolution wins, deterministically.
	Labels []NamedLabel

	// SrcBoxes holds, indexed by Shape.Src, each leaf occurrence's
	// declared bounding box placed into top-level coordinates — the
	// placement contract of that occurrence. Consumers use it to tell
	// deliberate abutment (boxes touching) from accidental proximity.
	SrcBoxes []geom.Rect

	// SrcCells holds, indexed by Shape.Src, the leaf cell each
	// occurrence instantiates — the occurrence's identity. Repeated
	// placements of one cell share the pointer, which is what lets
	// consumers recognize "the same pre-designed cell again" (the LVS
	// hierarchical certificates key on it).
	SrcCells []*core.Cell

	byLayer map[geom.Layer][]geom.Rect
	bySrc   map[geom.Layer][]int
	indexes map[geom.Layer]*geom.Index
	layers  []geom.Layer
}

// Options tunes the walk.
type Options struct {
	// Sequential disables the parallel array fan-out; the walk becomes
	// the plain nested loop. The output is identical either way.
	Sequential bool
}

// Cell flattens a cell hierarchy. Labels cover the cell's own
// connectors and, for composition cells, every instance connector
// ("inst.CONN").
func Cell(c *core.Cell, opt Options) (*Result, error) {
	return CellAt(c, geom.Identity, opt)
}

// CellAt flattens a cell hierarchy under an explicit placement
// transform: every shape, device, join and label lands in the
// transformed frame. The hierarchical certificate engine flattens each
// distinct cell once per orientation with CellAt (orientation changes
// fragment emission order, so a rotated placement cannot reuse an
// identity-orientation flatten by transforming its output).
func CellAt(c *core.Cell, tr geom.Transform, opt Options) (*Result, error) {
	b := &builder{sequential: opt.Sequential}
	if err := b.cell(c, tr); err != nil {
		return nil, err
	}
	res := &Result{
		Shapes:   b.shapes,
		Devices:  b.devices,
		Joins:    b.joins,
		SrcBoxes: b.srcBoxes,
		SrcCells: b.srcCells,
	}
	for _, cn := range c.Connectors() {
		res.Labels = append(res.Labels, NamedLabel{cn.Name, Label{tr.Apply(cn.At), cn.Layer}})
	}
	if c.Kind == core.Composition {
		for _, in := range c.Instances {
			for _, nl := range instanceLabels(in) {
				nl.At = tr.Apply(nl.At)
				res.Labels = append(res.Labels, nl)
			}
		}
	}
	return res, nil
}

// instanceLabels resolves one instance's connectors to labels.
func instanceLabels(in *core.Instance) []NamedLabel {
	ics := in.Connectors()
	out := make([]NamedLabel, 0, len(ics))
	for _, ic := range ics {
		out = append(out, NamedLabel{in.Name + "." + ic.Name, Label{ic.At, ic.Layer}})
	}
	return out
}

// Layers returns the layers present in the flattened design, sorted by
// CIF name for deterministic iteration.
func (r *Result) Layers() []geom.Layer {
	r.buildLayers()
	return r.layers
}

// LayerRects returns the layer's rectangles in walk order. The slice
// is shared with the Result; callers must not mutate it.
func (r *Result) LayerRects(l geom.Layer) []geom.Rect {
	r.buildLayers()
	return r.byLayer[l]
}

// LayerSrcs returns, aligned with LayerRects, the leaf occurrence id
// of each of the layer's rectangles. The slice is shared with the
// Result; callers must not mutate it.
func (r *Result) LayerSrcs(l geom.Layer) []int {
	r.buildLayers()
	return r.bySrc[l]
}

// LayerIndex returns a geom.Index over the layer's rectangles (ids are
// LayerRects positions), built on first use and cached.
func (r *Result) LayerIndex(l geom.Layer) *geom.Index {
	r.buildLayers()
	if ix, ok := r.indexes[l]; ok {
		return ix
	}
	ix := geom.NewIndexFrom(r.byLayer[l])
	ix.Build()
	if r.indexes == nil {
		r.indexes = map[geom.Layer]*geom.Index{}
	}
	r.indexes[l] = ix
	return ix
}

func (r *Result) buildLayers() {
	if r.byLayer != nil {
		return
	}
	// count first so every per-layer slice allocates exactly once
	counts := map[geom.Layer]int{}
	for _, s := range r.Shapes {
		counts[s.Layer]++
	}
	r.byLayer = make(map[geom.Layer][]geom.Rect, len(counts))
	r.bySrc = make(map[geom.Layer][]int, len(counts))
	for l, n := range counts {
		r.byLayer[l] = make([]geom.Rect, 0, n)
		r.bySrc[l] = make([]int, 0, n)
	}
	for _, s := range r.Shapes {
		r.byLayer[s.Layer] = append(r.byLayer[s.Layer], s.R)
		r.bySrc[s.Layer] = append(r.bySrc[s.Layer], s.Src)
	}
	r.layers = make([]geom.Layer, 0, len(r.byLayer))
	for l := range r.byLayer {
		r.layers = append(r.layers, l)
	}
	sort.Slice(r.layers, func(i, j int) bool { return r.layers[i] < r.layers[j] })
}

// builder accumulates flattened geometry during the walk.
type builder struct {
	shapes   []Shape
	devices  []Device
	joins    []Join
	srcBoxes []geom.Rect
	srcCells []*core.Cell
	// srcN counts leaf-cell occurrences entered so far; the current
	// leaf's shapes carry srcN-1 as their Src id.
	srcN int
	// sequential disables the parallel array flatten (set on shard
	// builders and by Options.Sequential).
	sequential bool
}

func (b *builder) cell(c *core.Cell, tr geom.Transform) error {
	switch c.Kind {
	case core.Composition:
		for _, in := range c.Instances {
			if err := b.instance(in, tr); err != nil {
				return err
			}
		}
		return nil
	case core.LeafSticks:
		b.enterLeaf(c, tr)
		return b.sticksLeaf(c.Sticks, tr)
	default:
		b.enterLeaf(c, tr)
		return b.cifLeaf(c.CIFFile, c.Symbol, tr)
	}
}

// enterLeaf opens the next leaf occurrence: allocates its id and
// records its placed bounding box.
func (b *builder) enterLeaf(c *core.Cell, tr geom.Transform) {
	b.srcN++
	b.srcBoxes = append(b.srcBoxes, tr.ApplyRect(c.BBox()))
	b.srcCells = append(b.srcCells, c)
}

// src is the occurrence id of the leaf currently being flattened.
func (b *builder) src() int { return b.srcN - 1 }

// parallelMin is the replication count below which an array is
// flattened inline; tiny arrays are not worth the goroutine handoff.
const parallelMin = 8

// instance flattens every array copy of an instance. Large replication
// grids — the paper's Nx x Ny composition primitive — fan out across
// goroutines: the copy list is chunked, each chunk flattens into a
// private shard builder, and shards merge back in chunk order so the
// result is byte-identical to the sequential loop.
func (b *builder) instance(in *core.Instance, tr geom.Transform) error {
	n := in.Nx * in.Ny
	workers := runtime.GOMAXPROCS(0)
	if b.sequential || n < parallelMin || workers < 2 {
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				if err := b.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	shards := make([]*builder, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		sb := &builder{sequential: true}
		shards[w] = sb
		wg.Add(1)
		go func(sb *builder, lo, hi int, err *error) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				// copy k in the sequential loop's (i outer, j inner)
				// order
				i, j := k/in.Ny, k%in.Ny
				if e := sb.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); e != nil {
					*err = e
					return
				}
			}
		}(sb, lo, hi, &errs[w])
	}
	wg.Wait()
	for w, sb := range shards {
		if errs[w] != nil {
			return errs[w]
		}
		// renumber shard-local occurrence ids into the walk-global
		// sequence; chunk order matches the sequential loop, so the
		// numbering is identical to a sequential flatten
		for i := range sb.shapes {
			sb.shapes[i].Src += b.srcN
		}
		for i := range sb.devices {
			sb.devices[i].Src += b.srcN
		}
		b.srcN += sb.srcN
		b.srcBoxes = append(b.srcBoxes, sb.srcBoxes...)
		b.srcCells = append(b.srcCells, sb.srcCells...)
		b.shapes = append(b.shapes, sb.shapes...)
		b.devices = append(b.devices, sb.devices...)
		b.joins = append(b.joins, sb.joins...)
	}
	return nil
}

// sticksLeaf flattens a symbolic cell's material.
func (b *builder) sticksLeaf(sc *sticks.Cell, tr geom.Transform) error {
	u := sc.EffUnits()
	sr := func(r geom.Rect) geom.Rect {
		return tr.ApplyRect(geom.R(r.Min.X*u, r.Min.Y*u, r.Max.X*u, r.Max.Y*u))
	}
	sp := func(p geom.Point) geom.Point { return tr.Apply(geom.Pt(p.X*u, p.Y*u)) }

	for _, w := range sc.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		h1, h2 := width/2, width-width/2
		for i := 1; i < len(w.Points); i++ {
			seg := geom.RectFromPoints(w.Points[i-1], w.Points[i])
			seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
			b.shapes = append(b.shapes, Shape{w.Layer, sr(seg), b.src()})
		}
	}
	for _, ct := range sc.Contacts {
		h := rules.ContactSize / 2
		pad := geom.R(ct.At.X-h, ct.At.Y-h, ct.At.X+h, ct.At.Y+h)
		b.shapes = append(b.shapes,
			Shape{ct.From, sr(pad), b.src()}, Shape{ct.To, sr(pad), b.src()})
		b.joins = append(b.joins, Join{
			At:     [2]geom.Point{sp(ct.At), sp(ct.At)},
			Layers: [2]geom.Layer{ct.From, ct.To},
		})
	}
	for _, d := range sc.Devices {
		gate, channel, _, err := sticks.DeviceBoxes(d)
		if err != nil {
			return err
		}
		// probes just beyond the gate along the channel axis
		var pa, pb geom.Point
		if d.Vertical {
			pa = geom.Pt(d.At.X, gate.Min.Y-1)
			pb = geom.Pt(d.At.X, gate.Max.Y+1)
		} else {
			pa = geom.Pt(gate.Min.X-1, d.At.Y)
			pb = geom.Pt(gate.Max.X+1, d.At.Y)
		}
		dev := Device{
			Kind:    d.Kind,
			Gate:    sr(gate),
			Channel: sr(channel),
			ProbeA:  sp(pa),
			ProbeB:  sp(pb),
			ProbeG:  sp(d.At),
			Src:     b.src(),
		}
		b.devices = append(b.devices, dev)
		// the gate strip is poly material connected to whatever poly
		// feeds it; the channel is diffusion (split at the gate by the
		// extractor)
		b.shapes = append(b.shapes, Shape{geom.NP, dev.Gate, b.src()})
		b.shapes = append(b.shapes, Shape{geom.ND, dev.Channel, b.src()})
	}
	return nil
}

// cifLeaf flattens CIF geometry (pads); CIF leaves carry no extracted
// devices, only material.
func (b *builder) cifLeaf(f *cif.File, sym *cif.Symbol, tr geom.Transform) error {
	for _, e := range sym.ResolveScale() {
		switch el := e.(type) {
		case cif.Box:
			b.shapes = append(b.shapes, Shape{el.Layer, tr.ApplyRect(el.Rect()), b.src()})
		case cif.Wire:
			h1, h2 := el.Width/2, el.Width-el.Width/2
			for i := 1; i < len(el.Points); i++ {
				seg := geom.RectFromPoints(el.Points[i-1], el.Points[i])
				seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
				b.shapes = append(b.shapes, Shape{el.Layer, tr.ApplyRect(seg), b.src()})
			}
		case cif.Call:
			child := f.SymbolByID(el.SymbolID)
			if child == nil {
				return fmt.Errorf("flatten: call of undefined symbol %d", el.SymbolID)
			}
			if err := b.cifLeaf(f, child, el.Transform.Then(tr)); err != nil {
				return err
			}
		case cif.Polygon, cif.RoundFlash, cif.Connector, cif.UserExt:
			// polygons/flashes are rare decorations in this library;
			// connectivity and rule checking ignore them
		}
	}
	// contacts inside CIF cells: an NC cut joins NM with NP/ND below;
	// model each NC box as a join between NM and whichever other layer
	// is present at its center
	for _, e := range sym.ResolveScale() {
		if el, ok := e.(cif.Box); ok && el.Layer == geom.NC {
			at := tr.Apply(el.Center)
			b.joins = append(b.joins, Join{
				At:     [2]geom.Point{at, at},
				Layers: [2]geom.Layer{geom.NM, geom.LayerNone},
			})
		}
	}
	return nil
}
