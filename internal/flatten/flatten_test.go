package flatten

import (
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

func libDesign(t *testing.T) *core.Design {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	return d
}

func srArray(t *testing.T, d *core.Design, nx, ny int) *core.Cell {
	t.Helper()
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	sr, ok := d.Cell("SRCELL")
	if !ok {
		t.Fatal("no SRCELL")
	}
	in := core.NewInstance("a", sr, geom.Identity)
	in.Nx, in.Ny = nx, ny
	in.Sx, in.Sy = 20*rules.Lambda, 24*rules.Lambda
	top.Instances = append(top.Instances, in)
	return top
}

// TestParallelMatchesSequential: the goroutine fan-out must reproduce
// the sequential walk byte for byte — shapes, devices, joins, labels,
// occurrence ids and occurrence boxes.
func TestParallelMatchesSequential(t *testing.T) {
	d := libDesign(t)
	top := srArray(t, d, 5, 4)
	par, err := Cell(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Cell(top, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Shapes, seq.Shapes) {
		t.Error("shapes differ between parallel and sequential flatten")
	}
	if !reflect.DeepEqual(par.Devices, seq.Devices) {
		t.Error("devices differ")
	}
	if !reflect.DeepEqual(par.Joins, seq.Joins) {
		t.Error("joins differ")
	}
	if !reflect.DeepEqual(par.Labels, seq.Labels) {
		t.Error("labels differ")
	}
	if !reflect.DeepEqual(par.SrcBoxes, seq.SrcBoxes) {
		t.Error("occurrence boxes differ")
	}
}

// TestOccurrenceProvenance: Src ids are dense, count the leaf
// occurrences, and every occurrence's shapes lie near its recorded
// box.
func TestOccurrenceProvenance(t *testing.T) {
	d := libDesign(t)
	top := srArray(t, d, 3, 2)
	fr, err := Cell(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.SrcBoxes) != 6 {
		t.Fatalf("occurrences = %d, want 6", len(fr.SrcBoxes))
	}
	seen := map[int]bool{}
	for _, s := range fr.Shapes {
		if s.Src < 0 || s.Src >= len(fr.SrcBoxes) {
			t.Fatalf("shape src %d out of range", s.Src)
		}
		seen[s.Src] = true
		// sticks geometry may overhang its declared box by up to a wire
		// width; a contact-size margin covers the library cells
		margin := rules.ContactSize * rules.Lambda
		if !fr.SrcBoxes[s.Src].Inset(-margin).ContainsRect(s.R) {
			t.Fatalf("shape %v strays from its occurrence box %v", s.R, fr.SrcBoxes[s.Src])
		}
	}
	if len(seen) != 6 {
		t.Errorf("shapes reference %d occurrences, want 6", len(seen))
	}
}

// TestPerLayerViews: LayerRects/LayerSrcs partition the shape list in
// order, and LayerIndex answers point queries consistently with the
// slices.
func TestPerLayerViews(t *testing.T) {
	d := libDesign(t)
	nand, _ := d.Cell("NAND")
	fr, err := Cell(nand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range fr.Layers() {
		rects := fr.LayerRects(l)
		srcs := fr.LayerSrcs(l)
		if len(rects) != len(srcs) {
			t.Fatalf("%v: %d rects vs %d srcs", l, len(rects), len(srcs))
		}
		total += len(rects)
		ix := fr.LayerIndex(l)
		if ix.Len() != len(rects) {
			t.Fatalf("%v: index holds %d of %d rects", l, ix.Len(), len(rects))
		}
		for id, r := range rects {
			found := false
			ix.QueryPoint(r.Center(), func(got int) bool {
				if got == id {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%v: rect %d not found at its own center", l, id)
			}
		}
	}
	if total != len(fr.Shapes) {
		t.Errorf("per-layer views cover %d of %d shapes", total, len(fr.Shapes))
	}
	// layer order is sorted and stable
	layers := fr.Layers()
	for i := 1; i < len(layers); i++ {
		if layers[i-1] >= layers[i] {
			t.Errorf("layers not sorted: %v", layers)
		}
	}
}

// TestLabels: composition labels include the cell's own connectors
// and instance connectors.
func TestLabels(t *testing.T) {
	d := libDesign(t)
	top := srArray(t, d, 2, 1)
	fr, err := Cell(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, lb := range fr.Labels {
		have[lb.Name] = true
	}
	for _, want := range []string{"a.IN[0]", "a.OUT[1]", "a.PWRL[0]", "a.TAP[0]"} {
		if !have[want] {
			t.Errorf("label %s missing", want)
		}
	}
}
