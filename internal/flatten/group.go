package flatten

import (
	"fmt"

	"riot/internal/core"
	"riot/internal/geom"
)

// LeafAt names one leaf occurrence for a group flatten: a
// non-composition cell under a full placement transform.
type LeafAt struct {
	Cell *core.Cell
	Tr   geom.Transform
}

// Leaves flattens an explicit list of leaf occurrences into one Result
// whose occurrence ids follow the list order — occurrence k's shapes,
// devices and joins land exactly where a full hierarchy flatten would
// put them if these were its k-th..-th leaves. The hierarchical
// engine's quarantine path uses this to re-derive flat geometry for
// just the placements it cannot compose from certificates: because the
// walk order within each occurrence is the flat walk's, the group's
// fragment and device sequences are byte-identical to the matching
// spans of a whole-design flatten.
//
// The result carries no labels (label resolution stays with the
// caller, which has the full design context).
func Leaves(occs []LeafAt) (*Result, error) {
	b := &builder{sequential: true}
	for _, oc := range occs {
		if oc.Cell == nil {
			return nil, fmt.Errorf("flatten: group occurrence with nil cell")
		}
		if oc.Cell.Kind == core.Composition {
			return nil, fmt.Errorf("flatten: group occurrence %q is a composition, not a leaf", oc.Cell.Name)
		}
		if err := b.cell(oc.Cell, oc.Tr); err != nil {
			return nil, err
		}
	}
	return &Result{
		Shapes:   b.shapes,
		Devices:  b.devices,
		Joins:    b.joins,
		SrcBoxes: b.srcBoxes,
		SrcCells: b.srcCells,
	}, nil
}
