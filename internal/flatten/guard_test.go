package flatten

import (
	"strings"
	"testing"

	"riot/internal/geom"
)

// TestCacheSingleSessionGuard pins the ownership contract: a Cache
// serves one session, and a second concurrent entry is refused loudly
// instead of corrupting the memo. (Cross-session sharing goes through
// the content-addressed store, not through a shared Cache.)
func TestCacheSingleSessionGuard(t *testing.T) {
	_, e := buildTop(t, 4)
	var ca Cache
	if _, _, err := ca.Flatten(e.Cell); err != nil {
		t.Fatal(err)
	}
	// simulate a second session mid-flight
	ca.busy = 1
	_, _, err := ca.Flatten(e.Cell)
	if err == nil || !strings.Contains(err.Error(), "concurrently") {
		t.Fatalf("concurrent entry not refused: %v", err)
	}
	ca.busy = 0
	if _, _, err := ca.Flatten(e.Cell); err != nil {
		t.Fatalf("cache did not recover after the guard cleared: %v", err)
	}
}

// TestCacheOriginStability pins that snapshot clones of one design cell
// splice instead of resetting the cache: the reset test compares cell
// lineage (Origin), not pointers.
func TestCacheOriginStability(t *testing.T) {
	_, e := buildTop(t, 6)
	var ca Cache
	if _, _, err := ca.Flatten(e.Snapshot().Cell); err != nil {
		t.Fatal(err)
	}
	// a fresh generation's clone is a new pointer with the same origin
	e.MoveInstance(e.Cell.Instances[0], geom.Pt(1000, 0))
	snap := e.Snapshot()
	if snap.Cell == e.Cell {
		t.Fatal("composition snapshot should be a clone")
	}
	if _, _, err := ca.Flatten(snap.Cell); err != nil {
		t.Fatal(err)
	}
	reused, _ := ca.Stats()
	if reused == 0 {
		t.Fatal("clone of the same design cell reset the cache (origin lineage lost)")
	}
}
