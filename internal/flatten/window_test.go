package flatten

import (
	"testing"

	"riot/internal/geom"
	"riot/internal/rules"
)

// TestWindowMatchesBruteCull: Window's lattice-range culling must keep
// exactly the occurrences a brute per-copy box test keeps, and the
// surviving occurrences' geometry must match the full flatten's shapes
// for those occurrences rectangle for rectangle.
func TestWindowMatchesBruteCull(t *testing.T) {
	d := libDesign(t)
	top := srArray(t, d, 7, 5)
	full, err := Cell(top, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	pads := []int{0, rules.Lambda, 4 * rules.Lambda}
	clips := []geom.Rect{
		// a seam column between copies 2 and 3
		geom.R(3*20*rules.Lambda-1, 0, 3*20*rules.Lambda+1, 5*24*rules.Lambda),
		// a single interior cell
		geom.R(2*20*rules.Lambda, 1*24*rules.Lambda, 3*20*rules.Lambda, 2*24*rules.Lambda),
		// corner touching exactly one copy's corner point
		geom.R(20*rules.Lambda, 24*rules.Lambda, 20*rules.Lambda, 24*rules.Lambda),
		// fully off the array
		geom.R(-500*rules.Lambda, -500*rules.Lambda, -400*rules.Lambda, -400*rules.Lambda),
	}
	for _, pad := range pads {
		for ci, clip := range clips {
			win, err := Window(top, clip, pad)
			if err != nil {
				t.Fatal(err)
			}
			// brute reference: which full-flatten occurrences survive?
			grown := clip.Canon().Inset(-pad)
			var want []int
			for src, box := range full.SrcBoxes {
				if box.Touches(grown) {
					want = append(want, src)
				}
			}
			if len(win.SrcBoxes) != len(want) {
				t.Fatalf("clip %d pad %d: window kept %d occurrences, brute keeps %d",
					ci, pad, len(win.SrcBoxes), len(want))
			}
			for k, src := range want {
				if win.SrcBoxes[k] != full.SrcBoxes[src] {
					t.Fatalf("clip %d pad %d: occurrence %d box %v, want %v",
						ci, pad, k, win.SrcBoxes[k], full.SrcBoxes[src])
				}
				if win.SrcCells[k] != full.SrcCells[src] {
					t.Fatalf("clip %d pad %d: occurrence %d cell mismatch", ci, pad, k)
				}
			}
			// shape lists match per occurrence, with renumbered Src
			renum := map[int]int{}
			for k, src := range want {
				renum[src] = k
			}
			var wantShapes []Shape
			for _, s := range full.Shapes {
				if k, ok := renum[s.Src]; ok {
					wantShapes = append(wantShapes, Shape{s.Layer, s.R, k})
				}
			}
			if len(win.Shapes) != len(wantShapes) {
				t.Fatalf("clip %d pad %d: %d shapes, want %d", ci, pad, len(win.Shapes), len(wantShapes))
			}
			for i := range wantShapes {
				if win.Shapes[i] != wantShapes[i] {
					t.Fatalf("clip %d pad %d: shape %d = %+v, want %+v",
						ci, pad, i, win.Shapes[i], wantShapes[i])
				}
			}
		}
	}
}

// TestWindowOrientedArray: culling must stay correct when the array's
// instance transform rotates the lattice so i steps along Y.
func TestWindowOrientedArray(t *testing.T) {
	d := libDesign(t)
	top := srArray(t, d, 6, 3)
	top.Instances[0].Tr = geom.Transform{O: geom.R90, D: geom.Pt(0, 0)}
	full, err := Cell(top, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	bbox := full.SrcBoxes[0]
	for _, b := range full.SrcBoxes {
		bbox = bbox.Union(b)
	}
	third := (bbox.Max.Y - bbox.Min.Y) / 3
	clip := geom.R(bbox.Min.X, bbox.Min.Y+third, bbox.Max.X, bbox.Min.Y+third+rules.Lambda)
	win, err := Window(top, clip, 2*rules.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	grown := clip.Inset(-2 * rules.Lambda)
	nwant := 0
	for _, b := range full.SrcBoxes {
		if b.Touches(grown) {
			nwant++
		}
	}
	if nwant == 0 || nwant == len(full.SrcBoxes) {
		t.Fatalf("bad test window: %d of %d survive", nwant, len(full.SrcBoxes))
	}
	if len(win.SrcBoxes) != nwant {
		t.Fatalf("window kept %d occurrences, brute keeps %d", len(win.SrcBoxes), nwant)
	}
}
