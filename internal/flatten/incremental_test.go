package flatten

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// buildTop assembles a composition of n SRCELL instances on a grid.
func buildTop(t testing.TB, n int) (*core.Design, *core.Editor) {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x, y := i%8, i/8
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return d, e
}

// sameResult compares the walk-order lists a Result carries (the
// lazily derived views are rebuilt from them).
func sameResult(t *testing.T, step string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Shapes, want.Shapes) {
		t.Fatalf("%s: spliced shapes differ from full flatten", step)
	}
	if !reflect.DeepEqual(got.Devices, want.Devices) {
		t.Fatalf("%s: spliced devices differ", step)
	}
	if !reflect.DeepEqual(got.Joins, want.Joins) {
		t.Fatalf("%s: spliced joins differ", step)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("%s: spliced labels differ", step)
	}
	if !reflect.DeepEqual(got.SrcBoxes, want.SrcBoxes) {
		t.Fatalf("%s: spliced src boxes differ", step)
	}
	if !reflect.DeepEqual(got.SrcCells, want.SrcCells) {
		t.Fatalf("%s: spliced src cells differ", step)
	}
}

// TestCacheSpliceMatchesFullFlatten drives a composition through
// random edits (move, create, delete, replicate, orient) and checks
// after every edit that the cache's spliced Result is byte-identical
// to a from-scratch walk, and that the Delta's maps are consistent
// (mapped shapes identical, gone/mapped partitions exact).
func TestCacheSpliceMatchesFullFlatten(t *testing.T) {
	_, e := buildTop(t, 12)
	top := e.Cell
	ca := &Cache{}
	rng := rand.New(rand.NewSource(17))

	fr0, delta, err := ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	if delta != nil {
		t.Fatal("first run must have no delta")
	}
	full, err := Cell(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "initial", fr0, full)

	prev := fr0
	created := 0
	for step := 0; step < 30; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0: // move
			in := top.Instances[rng.Intn(len(top.Instances))]
			e.MoveInstance(in, geom.Pt(rng.Intn(200)-100, rng.Intn(200)-100))
		case op < 7: // create
			created++
			tr := geom.MakeTransform(geom.R0, geom.Pt(rng.Intn(4000), rng.Intn(4000)))
			if _, err := e.CreateInstance("NAND", fmt.Sprintf("n%d", created), tr, 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1: // delete
			if err := e.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		case op < 9 && len(top.Instances) > 0: // replicate
			in := top.Instances[rng.Intn(len(top.Instances))]
			if err := e.Replicate(in, 1+rng.Intn(3), 1+rng.Intn(2), 0, 0); err != nil {
				t.Fatal(err)
			}
		default: // orient
			if len(top.Instances) == 0 {
				continue
			}
			e.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R90)
		}

		fr, delta, err := ca.Flatten(top)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Cell(top, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("step %d", step), fr, full)

		if delta == nil {
			t.Fatalf("step %d: no delta", step)
		}
		if delta.Old != prev {
			t.Fatalf("step %d: delta.Old is not the previous result", step)
		}
		// mapped shapes must be identical (modulo occurrence renumber);
		// the gone flags must complement the map exactly
		seen := make([]bool, len(prev.Shapes))
		for i, oi := range delta.ShapeMap {
			if oi < 0 {
				continue
			}
			if prev.Shapes[oi].Layer != fr.Shapes[i].Layer || prev.Shapes[oi].R != fr.Shapes[i].R {
				t.Fatalf("step %d: mapped shape %d changed", step, i)
			}
			if delta.OldShapeGone[oi] {
				t.Fatalf("step %d: mapped old shape %d flagged gone", step, oi)
			}
			if seen[oi] {
				t.Fatalf("step %d: old shape %d mapped twice", step, oi)
			}
			seen[oi] = true
		}
		for j, gone := range delta.OldShapeGone {
			if !gone && !seen[j] {
				t.Fatalf("step %d: old shape %d neither mapped nor gone", step, j)
			}
		}
		for i, oi := range delta.DeviceMap {
			if oi < 0 {
				continue
			}
			// mapped devices keep their geometry; the occurrence id may
			// renumber, like a shape's
			od, nd := prev.Devices[oi], fr.Devices[i]
			od.Src, nd.Src = 0, 0
			if !reflect.DeepEqual(od, nd) {
				t.Fatalf("step %d: mapped device %d changed", step, i)
			}
		}
		prev = fr
	}
}

// TestCacheReuseSkipsUnchangedInstances checks the cache actually
// reuses shards: after one move, only the moved instance's shapes may
// be unmapped.
func TestCacheReuseSkipsUnchangedInstances(t *testing.T) {
	_, e := buildTop(t, 9)
	top := e.Cell
	ca := &Cache{}
	if _, _, err := ca.Flatten(top); err != nil {
		t.Fatal(err)
	}
	moved := top.Instances[4]
	e.MoveInstance(moved, geom.Pt(7, 13))
	fr, delta, err := ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	if delta == nil {
		t.Fatal("no delta after a single move")
	}
	unmapped := 0
	for _, oi := range delta.ShapeMap {
		if oi < 0 {
			unmapped++
		}
	}
	// the moved SRCELL contributes a small fraction of 9 cells' shapes
	if unmapped == 0 || unmapped > len(fr.Shapes)/4 {
		t.Fatalf("unmapped shapes = %d of %d; want only the moved instance's", unmapped, len(fr.Shapes))
	}
}

// TestCacheCellSwitchResets checks switching cells yields a fresh
// (delta-less) run.
func TestCacheCellSwitchResets(t *testing.T) {
	_, e1 := buildTop(t, 4)
	_, e2 := buildTop(t, 4)
	ca := &Cache{}
	if _, _, err := ca.Flatten(e1.Cell); err != nil {
		t.Fatal(err)
	}
	_, delta, err := ca.Flatten(e2.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if delta != nil {
		t.Fatal("cell switch must reset the delta baseline")
	}
}
