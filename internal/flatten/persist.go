package flatten

import (
	"fmt"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// On-disk shard persistence. A Cache optionally carries a castore
// handle; per-instance shards are then keyed by the instance's content
// signature (cell geometry + placement + replication, see
// castore.Signer) so a fresh process recognizes yesterday's instances
// and splices their shards without re-walking the hierarchy. Shapes,
// devices, joins, boxes and labels round-trip through the payload;
// srcCells — occurrence identity, pointers by design — are
// reconstructed by replaying the builder's walk order over the live
// cell graph, which is cheap (no geometry) and exact (the walk order
// is the contract flatten already guarantees).

const nsShard = "flatshard"

// shardFingerprint is the payload schema identity: the encoding
// version plus every process constant flattened geometry depends on
// (wire widths and contact pads come from the rule table).
func shardFingerprint() uint64 {
	return castore.Fingerprint(
		"flatten-shard", "enc-v1",
		fmt.Sprintf("lambda=%d contact=%d", rules.Lambda, rules.ContactSize),
		fmt.Sprintf("w=%d,%d,%d", rules.MinWidth(geom.ND), rules.MinWidth(geom.NP), rules.MinWidth(geom.NM)),
	)
}

// AttachDisk connects the cache to a content-addressed store — the
// on-disk castore.Store, a server's shared in-memory tier, or both
// (castore.Tiered). A nil store detaches. The in-memory cache keeps
// working exactly as before; the store only adds a second-level lookup
// on shard misses and a write-behind on shard builds.
func (ca *Cache) AttachDisk(st castore.Blob, sg *castore.Signer) {
	ca.disk, ca.signer = st, sg
}

// DiskStats reports, for the most recent Flatten call, how many shards
// loaded from the persistent store (they count as reflattened in
// Stats, since they were not in-memory reuses).
func (ca *Cache) DiskStats() (loaded int) { return ca.lastDiskLoaded }

// diskLoad fetches and validates the instance's shard from the store.
// Any failure — no entry, undecodable payload, a payload whose
// occurrence structure does not match the live instance — reports a
// miss (with the bad entry discarded), never a wrong shard.
func (ca *Cache) diskLoad(in *core.Instance) *shard {
	if ca.disk == nil || ca.signer == nil {
		return nil
	}
	key, err := ca.signer.Instance(in)
	if err != nil {
		return nil
	}
	payload, ok := ca.disk.Get(nsShard, key, shardFingerprint())
	if !ok {
		return nil
	}
	sh, err := decodeShard(payload)
	if err != nil {
		ca.disk.Discard(nsShard, key, err.Error())
		return nil
	}
	// occurrence identity: replay the builder's walk order (instances
	// in declaration order, copies x-major, recursion) over the live
	// cells
	cells := occCells(in.Cell, nil)
	n := in.Nx * in.Ny
	if len(cells)*n != sh.srcN {
		ca.disk.Discard(nsShard, key, fmt.Sprintf("occurrence count %d, walk yields %d", sh.srcN, len(cells)*n))
		return nil
	}
	sh.srcCells = make([]*core.Cell, 0, sh.srcN)
	for k := 0; k < n; k++ {
		sh.srcCells = append(sh.srcCells, cells...)
	}
	return sh
}

// diskStore persists a freshly built shard (best-effort: the store
// logs and counts failures).
func (ca *Cache) diskStore(in *core.Instance, sh *shard) {
	if ca.disk == nil || ca.signer == nil {
		return
	}
	key, err := ca.signer.Instance(in)
	if err != nil {
		return
	}
	ca.disk.Put(nsShard, key, shardFingerprint(), encodeShard(sh))
}

// occCells lists the leaf cells one walk of c enters, in the builder's
// order.
func occCells(c *core.Cell, out []*core.Cell) []*core.Cell {
	if c.Kind == core.Composition {
		for _, in := range c.Instances {
			for k := 0; k < in.Nx*in.Ny; k++ {
				out = occCells(in.Cell, out)
			}
		}
		return out
	}
	return append(out, c)
}

func encodeShard(sh *shard) []byte {
	var e castore.Enc
	e.Int(sh.srcN)
	e.Int(len(sh.shapes))
	for _, s := range sh.shapes {
		e.Str(string(s.Layer))
		encRect(&e, s.R)
		e.Int(s.Src)
	}
	e.Int(len(sh.devices))
	for _, d := range sh.devices {
		e.U8(uint8(d.Kind))
		encRect(&e, d.Gate)
		encRect(&e, d.Channel)
		encPoint(&e, d.ProbeA)
		encPoint(&e, d.ProbeB)
		encPoint(&e, d.ProbeG)
		e.Int(d.Src)
	}
	e.Int(len(sh.joins))
	for _, j := range sh.joins {
		encPoint(&e, j.At[0])
		encPoint(&e, j.At[1])
		e.Str(string(j.Layers[0]))
		e.Str(string(j.Layers[1]))
	}
	e.Int(len(sh.srcBoxes))
	for _, r := range sh.srcBoxes {
		encRect(&e, r)
	}
	e.Int(len(sh.labels))
	for _, l := range sh.labels {
		e.Str(l.Name)
		encPoint(&e, l.At)
		e.Str(string(l.Layer))
	}
	return e.Bytes()
}

func decodeShard(payload []byte) (*shard, error) {
	d := castore.NewDec(payload)
	sh := &shard{srcN: d.Int()}
	if n := d.Len(8); n > 0 {
		sh.shapes = make([]Shape, n)
		for i := range sh.shapes {
			sh.shapes[i] = Shape{Layer: geom.Layer(d.Str()), R: decRect(d), Src: d.Int()}
		}
	}
	if n := d.Len(8); n > 0 {
		sh.devices = make([]Device, n)
		for i := range sh.devices {
			sh.devices[i] = Device{
				Kind:    decodeDeviceKind(d),
				Gate:    decRect(d),
				Channel: decRect(d),
				ProbeA:  decPoint(d),
				ProbeB:  decPoint(d),
				ProbeG:  decPoint(d),
				Src:     d.Int(),
			}
		}
	}
	if n := d.Len(8); n > 0 {
		sh.joins = make([]Join, n)
		for i := range sh.joins {
			sh.joins[i] = Join{
				At:     [2]geom.Point{decPoint(d), decPoint(d)},
				Layers: [2]geom.Layer{geom.Layer(d.Str()), geom.Layer(d.Str())},
			}
		}
	}
	if n := d.Len(8); n > 0 {
		sh.srcBoxes = make([]geom.Rect, n)
		for i := range sh.srcBoxes {
			sh.srcBoxes[i] = decRect(d)
		}
	}
	if n := d.Len(8); n > 0 {
		sh.labels = make([]NamedLabel, n)
		for i := range sh.labels {
			sh.labels[i] = NamedLabel{Name: d.Str(), Label: Label{At: decPoint(d), Layer: geom.Layer(d.Str())}}
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if sh.srcN < 0 || len(sh.srcBoxes) != sh.srcN {
		return nil, fmt.Errorf("castore: decode: shard has %d boxes for %d occurrences", len(sh.srcBoxes), sh.srcN)
	}
	for _, s := range sh.shapes {
		if s.Src < 0 || s.Src >= sh.srcN {
			return nil, fmt.Errorf("castore: decode: shape occurrence %d out of %d", s.Src, sh.srcN)
		}
	}
	for _, dev := range sh.devices {
		if dev.Src < 0 || dev.Src >= sh.srcN {
			return nil, fmt.Errorf("castore: decode: device occurrence %d out of %d", dev.Src, sh.srcN)
		}
	}
	return sh, nil
}

func decodeDeviceKind(d *castore.Dec) sticks.DeviceKind { return sticks.DeviceKind(d.U8()) }

func encPoint(e *castore.Enc, p geom.Point) { e.Int(p.X); e.Int(p.Y) }

func decPoint(d *castore.Dec) geom.Point { return geom.Pt(d.Int(), d.Int()) }

func encRect(e *castore.Enc, r geom.Rect) {
	e.Int(r.Min.X)
	e.Int(r.Min.Y)
	e.Int(r.Max.X)
	e.Int(r.Max.Y)
}

func decRect(d *castore.Dec) geom.Rect {
	return geom.Rect{Min: decPoint(d), Max: decPoint(d)}
}
