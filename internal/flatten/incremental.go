package flatten

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/obs"
)

// This file is the incremental half of the package: a Cache memoizes
// the flattened shard of every top-level instance of a composition,
// keyed on the instance's placement parameters, so re-flattening after
// an edit only walks the instances that changed and splices the rest.
// The spliced Result is byte-identical to a from-scratch Cell walk —
// the shards are exactly the per-instance segments that walk would
// emit, concatenated in instance order with the occurrence ids
// renumbered — so every consumer (extractor, DRC) sees the same input
// either way. Alongside the Result the cache reports a Delta mapping
// the new shape and device lists onto the previous run's, which is
// what lets those consumers splice their own caches instead of
// recomputing.

// instKey is the placement snapshot a cached shard is valid for: the
// defining cell (by identity — STRETCH swaps the pointer) and the
// full placement/replication state. Mutations inside the defining
// cell's object are outside the editor contract and must be announced
// with Editor.Invalidate.
type instKey struct {
	cell           *core.Cell
	tr             geom.Transform
	nx, ny, sx, sy int
}

func keyOf(in *core.Instance) instKey {
	return instKey{cell: in.Cell, tr: in.Tr, nx: in.Nx, ny: in.Ny, sx: in.Sx, sy: in.Sy}
}

// shard is one instance's flattened geometry with shard-local
// occurrence ids (Shape.Src counts from 0), plus its resolved
// connector labels.
type shard struct {
	shapes   []Shape
	devices  []Device
	joins    []Join
	srcBoxes []geom.Rect
	srcCells []*core.Cell
	srcN     int
	labels   []NamedLabel
}

// span locates one instance's segments inside a spliced Result.
type span struct {
	shapeLo, shapeHi   int
	deviceLo, deviceHi int
}

// Delta maps a freshly spliced Result onto the previous one, so
// downstream incremental passes know exactly which shapes and devices
// survived an edit. Indices are positions in the respective Shapes and
// Devices slices.
type Delta struct {
	// Old is the previous spliced Result.
	Old *Result
	// ShapeMap[i] is the old index of new shape i, or -1 if the shape
	// is new. A mapped shape has an identical Layer and rectangle (its
	// occurrence id may be renumbered; the occurrence's placed box is
	// unchanged).
	ShapeMap []int32
	// OldShapeGone[j] reports that old shape j has no counterpart.
	OldShapeGone []bool
	// DeviceMap / OldDeviceGone mirror the shape maps for devices (a
	// mapped device's geometry is identical; its occurrence id may be
	// renumbered, like a shape's).
	DeviceMap     []int32
	OldDeviceGone []bool
}

// Cache memoizes per-instance flatten shards for one composition cell
// across edits. The zero Cache is ready to use; a Cache serves one
// cell at a time (Flatten resets it when the cell changes lineage —
// snapshot clones of the same design cell share their shards, which is
// what keeps the splice warm across frozen generations). A Cache
// belongs to one session: Flatten rejects concurrent entry rather than
// corrupt its pointer-keyed maps — cross-session sharing goes through
// the content-addressed store (AttachDisk), never through a Cache.
type Cache struct {
	// Trace, when enabled, records a "flatten" span per Flatten call
	// with one "shard <inst>" child per re-flattened instance and a
	// "splice" child for the assembly; nil (the default) records
	// nothing and costs nothing. Survives Reset — it is wiring, not
	// cached state.
	Trace *obs.Trace

	cell   *core.Cell
	shards map[*core.Instance]cachedShard
	last   *Result
	spans  map[*core.Instance]span
	conns  map[*core.Instance]cachedConns

	// optional persistent second level (AttachDisk): shards missing
	// in memory are looked up by content signature before re-walking
	disk   castore.Blob
	signer *castore.Signer

	// busy guards against concurrent Flatten calls; a plain int32 with
	// atomic access (not atomic.Int32) keeps the struct copyable for
	// embedders like verify.Verifier.
	busy int32

	// last run's shard accounting, for Stats
	lastReused, lastReflattened, lastDiskLoaded int
}

// Stats reports, for the most recent Flatten call, how many instance
// shards were reused from the cache and how many re-flattened. A burst
// of edits between two Flatten calls coalesces into one delta: only
// the instances an edit actually touched re-flatten, however many
// edits accumulated (the batched-edit test asserts exactly this).
func (ca *Cache) Stats() (reused, reflattened int) {
	return ca.lastReused, ca.lastReflattened
}

type cachedShard struct {
	key instKey
	sh  *shard
}

type cachedConns struct {
	key  instKey
	list []core.InstConn
}

// instConns is the memoized per-instance connector provider the
// composition-connector assembly uses: an instance's transformed
// connector list only changes when its placement does.
func (ca *Cache) instConns(in *core.Instance) []core.InstConn {
	key := keyOf(in)
	if ent, ok := ca.conns[in]; ok && ent.key == key {
		return ent.list
	}
	list := in.Connectors()
	ca.conns[in] = cachedConns{key: key, list: list}
	return list
}

// Flatten flattens the cell like Cell, reusing every unchanged
// instance's cached shard. It returns the Result and, when a previous
// Result exists to diff against, the Delta from it (nil on the first
// run, on a cell switch, or after an error reset).
func (ca *Cache) Flatten(c *core.Cell) (*Result, *Delta, error) {
	if !atomic.CompareAndSwapInt32(&ca.busy, 0, 1) {
		return nil, nil, fmt.Errorf("flatten: Cache entered concurrently (a Cache serves one session; share work across sessions through the content-addressed store)")
	}
	defer atomic.StoreInt32(&ca.busy, 0)
	fsp := ca.Trace.Begin("flatten")
	defer fsp.End()
	if c.Kind != core.Composition {
		// leaves have no instance list to splice; full walk
		fr, err := Cell(c, Options{})
		ca.reset()
		return fr, nil, err
	}
	if ca.cell == nil || ca.cell.Origin() != c.Origin() {
		ca.reset()
	}
	ca.cell = c
	if ca.shards == nil {
		ca.shards = map[*core.Instance]cachedShard{}
	}
	if ca.conns == nil {
		ca.conns = map[*core.Instance]cachedConns{}
	}

	shards := make([]*shard, len(c.Instances))
	reused := make([]bool, len(c.Instances))
	ca.lastReused, ca.lastReflattened, ca.lastDiskLoaded = 0, 0, 0
	for i, in := range c.Instances {
		key := keyOf(in)
		if ent, ok := ca.shards[in]; ok && ent.key == key {
			shards[i] = ent.sh
			reused[i] = true
			ca.lastReused++
			continue
		}
		if sh := ca.diskLoad(in); sh != nil {
			shards[i] = sh
			ca.shards[in] = cachedShard{key: key, sh: sh}
			ca.lastDiskLoaded++
			continue
		}
		var ssp *obs.Span
		if fsp != nil {
			ssp = fsp.Child("shard " + in.Name)
		}
		sh, err := flattenInstance(in)
		ssp.End()
		if err != nil {
			ca.last, ca.spans = nil, nil
			return nil, nil, err
		}
		shards[i] = sh
		ca.shards[in] = cachedShard{key: key, sh: sh}
		ca.lastReflattened++
		ca.diskStore(in, sh)
	}
	ssp := fsp.Child("splice")

	// splice the shards in instance order, renumbering occurrence ids
	// into the walk-global sequence — exactly the from-scratch walk's
	// output. Totals are known up front, so every slice allocates once.
	var nShapes, nDev, nJoins, nSrc, nLab int
	for _, sh := range shards {
		nShapes += len(sh.shapes)
		nDev += len(sh.devices)
		nJoins += len(sh.joins)
		nSrc += len(sh.srcBoxes)
		nLab += len(sh.labels)
	}
	res := &Result{
		Shapes:   make([]Shape, 0, nShapes),
		Devices:  make([]Device, 0, nDev),
		Joins:    make([]Join, 0, nJoins),
		SrcBoxes: make([]geom.Rect, 0, nSrc),
		SrcCells: make([]*core.Cell, 0, nSrc),
		Labels:   make([]NamedLabel, 0, nLab+16),
	}
	spans := make(map[*core.Instance]span, len(c.Instances))
	srcBase := 0
	for i, sh := range shards {
		sp := span{shapeLo: len(res.Shapes), deviceLo: len(res.Devices)}
		for _, s := range sh.shapes {
			s.Src += srcBase
			res.Shapes = append(res.Shapes, s)
		}
		for _, d := range sh.devices {
			d.Src += srcBase
			res.Devices = append(res.Devices, d)
		}
		res.Joins = append(res.Joins, sh.joins...)
		res.SrcBoxes = append(res.SrcBoxes, sh.srcBoxes...)
		res.SrcCells = append(res.SrcCells, sh.srcCells...)
		srcBase += sh.srcN
		sp.shapeHi = len(res.Shapes)
		sp.deviceHi = len(res.Devices)
		spans[c.Instances[i]] = sp
	}
	for _, cn := range core.CompositionConnectors(c, ca.instConns) {
		res.Labels = append(res.Labels, NamedLabel{cn.Name, Label{cn.At, cn.Layer}})
	}
	for i := range c.Instances {
		res.Labels = append(res.Labels, shards[i].labels...)
	}

	// delta against the previous run
	var delta *Delta
	if ca.last != nil {
		delta = &Delta{
			Old:           ca.last,
			ShapeMap:      make([]int32, len(res.Shapes)),
			OldShapeGone:  make([]bool, len(ca.last.Shapes)),
			DeviceMap:     make([]int32, len(res.Devices)),
			OldDeviceGone: make([]bool, len(ca.last.Devices)),
		}
		for i := range delta.ShapeMap {
			delta.ShapeMap[i] = -1
		}
		for i := range delta.DeviceMap {
			delta.DeviceMap[i] = -1
		}
		for i := range delta.OldShapeGone {
			delta.OldShapeGone[i] = true
		}
		for i := range delta.OldDeviceGone {
			delta.OldDeviceGone[i] = true
		}
		for i, in := range c.Instances {
			if !reused[i] {
				continue
			}
			old, ok := ca.spans[in]
			if !ok {
				continue
			}
			nw := spans[in]
			for k := 0; k < nw.shapeHi-nw.shapeLo; k++ {
				delta.ShapeMap[nw.shapeLo+k] = int32(old.shapeLo + k)
				delta.OldShapeGone[old.shapeLo+k] = false
			}
			for k := 0; k < nw.deviceHi-nw.deviceLo; k++ {
				delta.DeviceMap[nw.deviceLo+k] = int32(old.deviceLo + k)
				delta.OldDeviceGone[old.deviceLo+k] = false
			}
		}
	}

	// prune cache entries for instances no longer present
	for in := range ca.shards {
		if _, ok := spans[in]; !ok {
			delete(ca.shards, in)
		}
	}
	for in := range ca.conns {
		if _, ok := spans[in]; !ok {
			delete(ca.conns, in)
		}
	}
	ca.last, ca.spans = res, spans
	ssp.End()
	if fsp != nil {
		fsp.Note("reused", strconv.Itoa(ca.lastReused))
		fsp.Note("reflattened", strconv.Itoa(ca.lastReflattened))
		fsp.Note("disk", strconv.Itoa(ca.lastDiskLoaded))
	}
	return res, delta, nil
}

// Reset drops all cached state. Callers must Reset when cells inside
// the composition were mutated outside the editor's knowledge
// (Editor.Invalidate reports that condition): the per-instance
// placement keys cannot see such changes.
func (ca *Cache) Reset() { ca.reset() }

// reset drops all cached state. The signer keeps its leaf memo: its
// entries are revision-checked, so an Invalidate (which stamps fresh
// revisions on every reachable cell) makes them recompute on their
// own — important now that a server shares one Signer across sessions.
// Store entries stay too; their content keys re-derive from the fresh
// signatures.
func (ca *Cache) reset() {
	ca.cell, ca.shards, ca.last, ca.spans, ca.conns = nil, nil, nil, nil, nil
}

// flattenInstance walks one instance into a fresh shard with
// shard-local occurrence ids (the parallel array fan-out applies, as
// in the full walk), resolving its connector labels alongside.
func flattenInstance(in *core.Instance) (*shard, error) {
	b := &builder{}
	if err := b.instance(in, geom.Identity); err != nil {
		return nil, err
	}
	return &shard{
		shapes:   b.shapes,
		devices:  b.devices,
		joins:    b.joins,
		srcBoxes: b.srcBoxes,
		srcCells: b.srcCells,
		srcN:     b.srcN,
		labels:   instanceLabels(in),
	}, nil
}
