package flatten

import "riot/internal/core"
import "riot/internal/geom"

// Window flattens only the part of a cell hierarchy whose leaf
// occurrences can place material within pad centimicrons of the clip
// rectangle (touching counts — abutment happens at shared edges).
// Culling works on placed bounding boxes: a leaf occurrence whose
// inflated box touches the clip is emitted whole, so the Result's
// occurrence structure (SrcBoxes/SrcCells, contiguous per-occurrence
// shapes and devices) matches what a full flatten would produce for
// those occurrences — only the occurrence ids are renumbered densely
// in walk order over the survivors.
//
// Replicated arrays are culled without visiting every copy: the copy
// lattice moves the placed box along the two axes independently (riot
// transforms are orthogonal), so the surviving copy ranges are solved
// per axis in O(1) and only copies inside the window are walked. A
// window over a seam of a 256x256 array therefore flattens a handful
// of copies, not 65k.
//
// Window results carry no labels: the callers (seam-window re-checks
// in the hierarchical verifier) care about material, devices and
// joins, and a culled label list would be misleading.
func Window(c *core.Cell, clip geom.Rect, pad int) (*Result, error) {
	clip = clip.Canon()
	b := &builder{sequential: true}
	w := &windowWalker{b: b, clip: clip.Inset(-pad)}
	if err := w.cell(c, geom.Identity); err != nil {
		return nil, err
	}
	return &Result{
		Shapes:   b.shapes,
		Devices:  b.devices,
		Joins:    b.joins,
		SrcBoxes: b.srcBoxes,
		SrcCells: b.srcCells,
	}, nil
}

// InstanceLabels resolves one instance's connectors to "inst.CONN"
// labels, exactly as a full flatten of the enclosing composition would
// list them.
func InstanceLabels(in *core.Instance) []NamedLabel { return instanceLabels(in) }

type windowWalker struct {
	b *builder
	// clip is the window already inflated by the caller's pad: a leaf
	// survives when its placed box touches it.
	clip geom.Rect
}

func (w *windowWalker) cell(c *core.Cell, tr geom.Transform) error {
	if !tr.ApplyRect(c.BBox()).Touches(w.clip) {
		return nil
	}
	if c.Kind != core.Composition {
		return w.b.cell(c, tr)
	}
	for _, in := range c.Instances {
		if err := w.instance(in, tr); err != nil {
			return err
		}
	}
	return nil
}

func (w *windowWalker) instance(in *core.Instance, tr geom.Transform) error {
	if in.Nx == 1 && in.Ny == 1 {
		return w.cell(in.Cell, in.CopyTransform(0, 0).Then(tr))
	}
	// The combined placement is orthogonal, so copy (i, j)'s box is
	// box(0,0) displaced by i*Sx along one axis and j*Sy along the
	// other: solve the surviving index range per axis.
	tc := in.Tr.Then(tr)
	o := tc.Apply(geom.Pt(0, 0))
	ex := tc.Apply(geom.Pt(1, 0)).Sub(o)
	ey := tc.Apply(geom.Pt(0, 1)).Sub(o)
	b0 := in.CopyTransform(0, 0).Then(tr).ApplyRect(in.Cell.BBox())
	vx := geom.Pt(ex.X*in.Sx, ex.Y*in.Sx)
	vy := geom.Pt(ey.X*in.Sy, ey.Y*in.Sy)
	if (vx.X != 0 && vx.Y != 0) || (vy.X != 0 && vy.Y != 0) {
		// not axis-aligned (cannot happen with riot's orthogonal
		// transforms) — visit every copy rather than mis-cull
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				if err := w.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var ilo, ihi, jlo, jhi int
	if vx.X != 0 || vx.Y == 0 {
		// i moves the box along X (or not at all), j along Y
		ilo, ihi = axisRange(b0.Min.X, b0.Max.X, vx.X, w.clip.Min.X, w.clip.Max.X, in.Nx)
		jlo, jhi = axisRange(b0.Min.Y, b0.Max.Y, vy.Y, w.clip.Min.Y, w.clip.Max.Y, in.Ny)
	} else {
		ilo, ihi = axisRange(b0.Min.Y, b0.Max.Y, vx.Y, w.clip.Min.Y, w.clip.Max.Y, in.Nx)
		jlo, jhi = axisRange(b0.Min.X, b0.Max.X, vy.X, w.clip.Min.X, w.clip.Max.X, in.Ny)
	}
	for i := ilo; i <= ihi; i++ {
		for j := jlo; j <= jhi; j++ {
			if err := w.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); err != nil {
				return err
			}
		}
	}
	return nil
}

// axisRange solves for the copy indices k in [0, n) whose interval
// [lo+k*v, hi+k*v] touches [clo, chi]. Returns an inclusive range;
// empty ranges come back as (0, -1).
func axisRange(lo, hi, v, clo, chi int, n int) (int, int) {
	if v == 0 {
		if hi >= clo && lo <= chi {
			return 0, n - 1
		}
		return 0, -1
	}
	// touch condition: lo + k*v <= chi  AND  hi + k*v >= clo
	var kmin, kmax int
	if v > 0 {
		kmin, kmax = ceilDiv(clo-hi, v), floorDiv(chi-lo, v)
	} else {
		kmin, kmax = ceilDiv(chi-lo, v), floorDiv(clo-hi, v)
	}
	if kmin < 0 {
		kmin = 0
	}
	if kmax > n-1 {
		kmax = n - 1
	}
	if kmin > kmax {
		return 0, -1
	}
	return kmin, kmax
}

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return -floorDiv(-a, b) }
