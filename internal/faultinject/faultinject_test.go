package faultinject

import (
	"sync"
	"testing"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if s.Hit(CertPend, "SRCELL") {
		t.Fatal("nil set fired")
	}
	if s.Hits(CertPend) != 0 {
		t.Fatal("nil set counted hits")
	}
	if s.String() != "none" {
		t.Fatalf("nil set renders %q", s.String())
	}
	s.Reset() // must not panic
}

func TestMatchKeys(t *testing.T) {
	s := New()
	s.Enable(CertPend, "SRCELL")
	if s.Hit(CertPend, "NAND") {
		t.Fatal("mismatched key fired")
	}
	if !s.Hit(CertPend, "SRCELL") {
		t.Fatal("matching key did not fire")
	}
	if s.Hit(TemplatePoison, "SRCELL") {
		t.Fatal("unarmed point fired")
	}
	s.Enable(StoreCorrupt, "")
	if !s.Hit(StoreCorrupt, "anything") {
		t.Fatal("empty match must fire for every key")
	}
	if got := s.Hits(CertPend); got != 1 {
		t.Fatalf("CertPend hits = %d, want 1", got)
	}
}

func TestFireLimit(t *testing.T) {
	s := New()
	s.EnableN(StoreCorrupt, "", 2)
	fired := 0
	for i := 0; i < 5; i++ {
		if s.Hit(StoreCorrupt, "ns") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("limited arm fired %d times, want 2", fired)
	}
	if s.Hits(StoreCorrupt) != 2 {
		t.Fatalf("hits = %d, want 2", s.Hits(StoreCorrupt))
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("cert-pend=SRCELL, store-corrupt:1, template-poison=3:2, compose-budget")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Hit(CertPend, "SRCELL") || s.Hit(CertPend, "NAND") {
		t.Fatal("cert-pend=SRCELL parsed wrong")
	}
	if !s.Hit(StoreCorrupt, "x") || s.Hit(StoreCorrupt, "x") {
		t.Fatal("store-corrupt:1 limit parsed wrong")
	}
	if !s.Hit(TemplatePoison, "3") || s.Hit(TemplatePoison, "4") {
		t.Fatal("template-poison=3 match parsed wrong")
	}
	if !s.Hit(ComposeBudget, "") {
		t.Fatal("compose-budget parsed wrong")
	}
	if _, err := Parse("no-such-point"); err == nil {
		t.Fatal("unknown point must be an error")
	}
	if _, err := Parse("cert-pend=X:notanumber"); err == nil {
		t.Fatal("bad limit must be an error")
	}
	if got, err := Parse(""); err != nil || got.String() != "none" {
		t.Fatalf("empty spec: %v %v", got, err)
	}
}

func TestConcurrentHits(t *testing.T) {
	s := New()
	s.Enable(StoreCorrupt, "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Hit(StoreCorrupt, "ns")
			}
		}()
	}
	wg.Wait()
	if got := s.Hits(StoreCorrupt); got != 800 {
		t.Fatalf("concurrent hits = %d, want 800", got)
	}
}

func TestStringDeterministic(t *testing.T) {
	s := New()
	s.Enable(CertPend, "SRCELL")
	s.EnableN(StoreCorrupt, "", 1)
	s.Hit(CertPend, "SRCELL")
	a, b := s.String(), s.String()
	if a != b {
		t.Fatalf("String not deterministic: %q vs %q", a, b)
	}
	if a == "none" {
		t.Fatal("armed set renders as none")
	}
}
