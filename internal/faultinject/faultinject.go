// Package faultinject is the deterministic fault-injection harness for
// the verification pipeline's degradation paths. The pipeline already
// degrades gracefully in several places — the hierarchical engine
// quarantines poisoned placements or declines to the flat path, the
// content-addressed store quarantines corrupt entries and recomputes
// cold — but those edges fire only when real designs happen to hit
// them. A Set arms named fault points so tests (and `riot -faults`)
// can force every edge on demand and differential-test that each one
// degrades to a correct verdict instead of a wrong answer or a panic.
//
// A fault point fires when armed and its match key applies:
//
//	set := faultinject.New()
//	set.Enable(faultinject.CertPend, "SRCELL")  // every SRCELL placement
//	set.EnableN(faultinject.StoreCorrupt, "", 1) // first store read only
//	...
//	if set.Hit(faultinject.CertPend, cell.Name) { ... degrade ... }
//
// Hit is nil-safe (a nil *Set never fires), mutex-protected (the
// castore hook is read from concurrent sessions), and counts fires so
// tests can assert the fault actually triggered rather than silently
// not reaching the code path under test.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Point names one fault site in the pipeline.
type Point string

// The fault points the pipeline exposes. Each one forces a distinct
// degradation edge; the match key's meaning is per-point.
const (
	// CertPend forces a cell's certificate to read as Pend (device
	// terminals need flat context), quarantining every placement of the
	// cell. Match key: the cell name ("" = every cell).
	CertPend Point = "cert-pend"
	// TemplatePoison forces pair templates involving a placement to
	// read as fragmentation poison, quarantining the placement and its
	// interacting partners. Match key: the occurrence index in flatten
	// walk order, as a decimal string ("" = every pair).
	TemplatePoison Point = "template-poison"
	// CertDecode corrupts a hierarchical certificate payload after it
	// leaves the store but before decoding — the decode must fail
	// cleanly, discard the entry and rebuild cold. Match key: the cell
	// name ("" = every certificate).
	CertDecode Point = "cert-decode"
	// StoreCorrupt flips a payload byte on castore reads mid-run,
	// driving the validate→quarantine→recompute path. Match key: the
	// store namespace ("" = every namespace).
	StoreCorrupt Point = "store-corrupt"
	// ComposeBudget forces the hierarchical composition's work budget
	// to read as exhausted, declining the run whole to the flat path.
	// Match key: unused ("" recommended).
	ComposeBudget Point = "compose-budget"
)

// Points lists every defined fault point (the CLI validates specs
// against it).
var Points = []Point{CertPend, TemplatePoison, CertDecode, StoreCorrupt, ComposeBudget}

type arm struct {
	match string
	limit int // 0 = unlimited
	hits  int
}

// Set is a collection of armed fault points. The zero value and the
// nil pointer are valid, permanently-disarmed sets, so call sites can
// hold an optional *Set without guards.
type Set struct {
	mu   sync.Mutex
	arms map[Point][]arm
}

// New returns an empty (disarmed) set.
func New() *Set { return &Set{} }

// Enable arms a fault point with a match key ("" matches every key),
// firing without limit.
func (s *Set) Enable(p Point, match string) { s.EnableN(p, match, 0) }

// EnableN arms a fault point with a match key and a fire limit: after
// limit hits the arm disarms itself (limit 0 = unlimited). Arming the
// same (point, match) again replaces the previous arm.
func (s *Set) EnableN(p Point, match string, limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arms == nil {
		s.arms = map[Point][]arm{}
	}
	for i := range s.arms[p] {
		if s.arms[p][i].match == match {
			s.arms[p][i] = arm{match: match, limit: limit}
			return
		}
	}
	s.arms[p] = append(s.arms[p], arm{match: match, limit: limit})
}

// Hit reports whether the fault point fires for the given key, and
// counts the fire. Nil-safe and safe for concurrent use.
func (s *Set) Hit(p Point, key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.arms[p] {
		a := &s.arms[p][i]
		if a.match != "" && a.match != key {
			continue
		}
		if a.limit > 0 && a.hits >= a.limit {
			continue
		}
		a.hits++
		return true
	}
	return false
}

// Hits returns the total fire count of a fault point across its arms.
func (s *Set) Hits(p Point) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.arms[p] {
		n += s.arms[p][i].hits
	}
	return n
}

// Reset disarms every fault point and zeroes the counters.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arms = nil
}

// String renders the set's arms and fire counts for -stats reports,
// deterministically ordered; an empty set renders as "none".
func (s *Set) String() string {
	if s == nil {
		return "none"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var parts []string
	for p, arms := range s.arms {
		for _, a := range arms {
			d := string(p)
			if a.match != "" {
				d += "=" + a.match
			}
			if a.limit > 0 {
				d += ":" + strconv.Itoa(a.limit)
			}
			parts = append(parts, fmt.Sprintf("%s hit %d time(s)", d, a.hits))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Parse builds a set from a comma-separated spec, one arm per item:
//
//	point              arm for every key, unlimited
//	point=match        arm for one key
//	point:n            fire at most n times
//	point=match:n      both
//
// Unknown points are errors — a typo must not silently disarm a fault
// the caller meant to test.
func Parse(spec string) (*Set, error) {
	s := New()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, match, limit := item, "", 0
		if i := strings.IndexByte(name, '='); i >= 0 {
			name, match = name[:i], name[i+1:]
			if j := strings.IndexByte(match, ':'); j >= 0 {
				n, err := strconv.Atoi(match[j+1:])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: bad limit in %q", item)
				}
				match, limit = match[:j], n
			}
		} else if j := strings.IndexByte(name, ':'); j >= 0 {
			n, err := strconv.Atoi(name[j+1:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: bad limit in %q", item)
			}
			name, limit = name[:j], n
		}
		known := false
		for _, p := range Points {
			if string(p) == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("faultinject: unknown fault point %q", name)
		}
		s.EnableN(Point(name), match, limit)
	}
	return s, nil
}
