// Package plot drives the hardcopy plotter of the Caltech graphic
// workstation. The original was a Hewlett-Packard 7221A four-color pen
// plotter; this package emits the HP-GL pen-plotter language (the
// 7221A's own binary protocol is long dead — see DESIGN.md,
// Substitutions), preserving the pen-up/pen-down, four-pen structure
// of the hardcopy path.
package plot

import (
	"bufio"
	"fmt"
	"io"

	"riot/internal/geom"
)

// Plotter writes HP-GL commands. Coordinates are plotter units; the
// display package scales design coordinates down before calling.
type Plotter struct {
	w       *bufio.Writer
	err     error
	pen     int
	penDown bool
	ops     int
}

// New starts a plot: the plotter is initialized and pen 1 selected.
func New(w io.Writer) *Plotter {
	p := &Plotter{w: bufio.NewWriter(w), pen: 0}
	p.cmd("IN;")
	return p
}

func (p *Plotter) cmd(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
	p.ops++
}

// SelectPen loads one of the four pens (1-4). Out-of-range values are
// clamped, like the hardware's carousel.
func (p *Plotter) SelectPen(n int) {
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	if n == p.pen {
		return
	}
	if p.penDown {
		p.cmd("PU;")
		p.penDown = false
	}
	p.pen = n
	p.cmd("SP%d;", n)
}

// MoveTo lifts the pen and moves to (x,y).
func (p *Plotter) MoveTo(at geom.Point) {
	p.cmd("PU%d,%d;", at.X, at.Y)
	p.penDown = false
}

// LineTo lowers the pen and draws to (x,y).
func (p *Plotter) LineTo(at geom.Point) {
	p.cmd("PD%d,%d;", at.X, at.Y)
	p.penDown = true
}

// Line draws a single segment.
func (p *Plotter) Line(a, b geom.Point) {
	p.MoveTo(a)
	p.LineTo(b)
}

// Rect traces a rectangle outline.
func (p *Plotter) Rect(r geom.Rect) {
	p.MoveTo(r.Min)
	p.LineTo(geom.Pt(r.Max.X, r.Min.Y))
	p.LineTo(r.Max)
	p.LineTo(geom.Pt(r.Min.X, r.Max.Y))
	p.LineTo(r.Min)
}

// Cross draws a connector cross.
func (p *Plotter) Cross(at geom.Point, size int) {
	p.Line(geom.Pt(at.X-size, at.Y-size), geom.Pt(at.X+size, at.Y+size))
	p.Line(geom.Pt(at.X-size, at.Y+size), geom.Pt(at.X+size, at.Y-size))
}

// Label writes a text label at the current position using HP-GL's LB
// instruction (ETX-terminated).
func (p *Plotter) Label(s string) {
	p.cmd("LB%s\x03", s)
}

// Ops returns the number of plotter instructions emitted so far.
func (p *Plotter) Ops() int { return p.ops }

// Finish parks the pen and flushes the stream.
func (p *Plotter) Finish() error {
	p.cmd("PU;SP0;")
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
