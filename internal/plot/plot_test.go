package plot

import (
	"strings"
	"testing"

	"riot/internal/geom"
)

func TestPlotterBasics(t *testing.T) {
	var b strings.Builder
	p := New(&b)
	p.SelectPen(1)
	p.MoveTo(geom.Pt(100, 100))
	p.LineTo(geom.Pt(200, 100))
	p.SelectPen(3)
	p.Rect(geom.R(0, 0, 50, 40))
	p.Cross(geom.Pt(10, 10), 5)
	p.Label("VDD")
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{"IN;", "SP1;", "PU100,100;", "PD200,100;", "SP3;", "LBVDD\x03", "SP0;"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

func TestPenClampAndDedup(t *testing.T) {
	var b strings.Builder
	p := New(&b)
	p.SelectPen(0)  // clamps to 1
	p.SelectPen(99) // clamps to 4
	p.SelectPen(4)  // no-op: already 4
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if strings.Count(s, "SP4;") != 1 {
		t.Errorf("redundant pen selects: %q", s)
	}
	if !strings.Contains(s, "SP1;") {
		t.Errorf("pen clamp low missing: %q", s)
	}
}

func TestPenSelectLiftsPen(t *testing.T) {
	var b strings.Builder
	p := New(&b)
	p.SelectPen(1)
	p.LineTo(geom.Pt(5, 5)) // pen now down
	p.SelectPen(2)
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	i := strings.Index(s, "PD5,5;")
	j := strings.Index(s, "SP2;")
	k := strings.Index(s[i:], "PU;")
	if i < 0 || j < 0 || k < 0 || i+k > j {
		t.Errorf("pen not lifted before change: %q", s)
	}
}

func TestOpsCount(t *testing.T) {
	var b strings.Builder
	p := New(&b)
	n0 := p.Ops()
	p.Line(geom.Pt(0, 0), geom.Pt(1, 1))
	if p.Ops() != n0+2 {
		t.Errorf("ops = %d, want %d", p.Ops(), n0+2)
	}
}
