package display

import (
	"bytes"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/raster"
	"riot/internal/sticks"
)

// bigArray builds a composition with one 10x10 array of the test leaf
// cell — enough copies to trip the cull index.
func bigArray(t *testing.T) *core.Cell {
	t.Helper()
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity,
			Nx: 10, Ny: 10, Sx: 25 * L, Sy: 15 * L})
	return top
}

// TestCullFullViewUnchanged: a view that shows the whole array must
// render exactly the same pixels whether or not the cull index runs —
// nothing is outside the window, so nothing may be skipped.
func TestCullFullViewUnchanged(t *testing.T) {
	top := bigArray(t)
	v := FitView(top.BBox(), geom.R(0, 0, 399, 299), true)
	culled := raster.New(400, 300)
	DrawCell(RasterCanvas{Im: culled}, v, top, Options{})
	if culled.CountColor(geom.ColorWhite) == 0 {
		t.Fatal("array invisible")
	}
	// the uncull reference: each instance drawn directly, then the
	// top-cell outline DrawCell adds
	plain := raster.New(400, 300)
	for _, in := range top.Instances {
		DrawInstance(RasterCanvas{Im: plain}, v, in, Options{})
	}
	RasterCanvas{Im: plain}.Rect(v.ToScreenRect(top.BBox()), geom.ColorWhite)
	var want, got bytes.Buffer
	if err := plain.WritePPM(&want); err != nil {
		t.Fatal(err)
	}
	if err := culled.WritePPM(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("culled full view differs from the uncull reference render")
	}
}

// TestCullZoomedView: zoomed into one corner cell, the visible copy
// still draws, and the crosses of the ~99 off-window copies are
// skipped (far fewer marks than the full array would paint onto a
// clipping canvas).
func TestCullZoomedView(t *testing.T) {
	top := bigArray(t)
	// window over the bottom-left copy only
	v := View{
		Window: geom.R(0, 0, 25*L, 15*L),
		Screen: geom.R(0, 0, 399, 299),
		FlipY:  true,
	}
	im := raster.New(400, 300)
	DrawCell(RasterCanvas{Im: im}, v, top, Options{})
	if im.CountColor(geom.ColorWhite) == 0 {
		t.Fatal("visible copy culled away")
	}
	if im.CountColor(geom.ColorBlue) == 0 {
		t.Fatal("visible copy's connector crosses culled away")
	}
}

// TestCullOverhangingGeometry: a sticks cell whose wide rail overhangs
// its declared bounding box must not be culled while only the overhang
// is in view. The window sits in the gap between two array rows where
// nothing but overhang renders; the culled draw must match the uncull
// reference exactly.
func TestCullOverhangingGeometry(t *testing.T) {
	sc := &sticks.Cell{
		Name: "WIDE", Box: geom.R(0, 0, 20, 10), HasBox: true,
		Wires: []sticks.Wire{
			// width 20 centered on the bottom edge: overhangs 10 lambda below
			{Layer: geom.NM, Width: 20, Points: []geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}}},
		},
		Connectors: []sticks.Connector{
			{Name: "IN", At: geom.Pt(0, 0), Layer: geom.NM, Width: 20, Side: geom.SideLeft},
		},
	}
	cell, err := core.NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity,
			Nx: 6, Ny: 3, Sx: 20 * L, Sy: 40 * L})
	// a thin window strip below row 1's declared boxes (y in 34..38
	// lambda): only row 1's rail overhang (down to 30 lambda... 40-10)
	// is nearby; the declared boxes start at y=40 lambda
	v := View{
		Window: geom.R(0, 32*L, 120*L, 38*L),
		Screen: geom.R(0, 0, 599, 29),
		FlipY:  true,
	}
	culled := raster.New(600, 30)
	DrawCell(RasterCanvas{Im: culled}, v, top, Options{Geometry: true})
	plain := raster.New(600, 30)
	for _, in := range top.Instances {
		DrawInstance(RasterCanvas{Im: plain}, v, in, Options{Geometry: true})
	}
	RasterCanvas{Im: plain}.Rect(v.ToScreenRect(top.BBox()), geom.ColorWhite)
	var want, got bytes.Buffer
	if err := plain.WritePPM(&want); err != nil {
		t.Fatal(err)
	}
	if err := culled.WritePPM(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("culled render of overhanging rail differs from uncull reference")
	}
	if culled.CountColor(geom.ColorBlue) == 0 {
		t.Error("overhanging rail not drawn at all (window strip should see it)")
	}
}

// BenchmarkDrawCulledArray measures redrawing a 10x10 array zoomed
// into one copy — the pan/zoom hot path the cull index accelerates.
func BenchmarkDrawCulledArray(b *testing.B) {
	cell := testCell(b)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity,
			Nx: 10, Ny: 10, Sx: 25 * L, Sy: 15 * L})
	v := View{Window: geom.R(0, 0, 25*L, 15*L), Screen: geom.R(0, 0, 399, 299), FlipY: true}
	im := raster.New(400, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DrawCell(RasterCanvas{Im: im}, v, top, Options{})
	}
}

// TestCullDrawInstance: the figure-3 DrawInstance entry point culls
// off-window array copies itself — zoomed into one copy of a 10x10
// array, it paints the same pixels as the uncull per-copy reference
// but far fewer connector crosses than the whole array carries.
func TestCullDrawInstance(t *testing.T) {
	top := bigArray(t)
	in := top.Instances[0]
	v := View{
		Window: geom.R(0, 0, 25*L, 15*L),
		Screen: geom.R(0, 0, 399, 299),
		FlipY:  true,
	}
	culled := raster.New(400, 300)
	DrawInstance(RasterCanvas{Im: culled}, v, in, Options{})
	if culled.CountColor(geom.ColorWhite) == 0 {
		t.Fatal("visible copy culled away")
	}
	if culled.CountColor(geom.ColorBlue) == 0 {
		t.Fatal("visible copy's connector crosses culled away")
	}
	// uncull reference: every copy drawn directly
	plain := raster.New(400, 300)
	sb := NewCache()
	for i := 0; i < in.Nx; i++ {
		for j := 0; j < in.Ny; j++ {
			drawInstanceCopy(RasterCanvas{Im: plain}, v, in, i, j, geom.Identity, Options{}, sb)
		}
	}
	var want, got bytes.Buffer
	if err := plain.WritePPM(&want); err != nil {
		t.Fatal(err)
	}
	if err := culled.WritePPM(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("culled DrawInstance differs from the uncull reference render")
	}
}
