// Package display is the device-independent half of Riot's graphics
// package: viewport mathematics (zoom and pan over the design plane)
// and cell rendering onto an abstract canvas. Two canvases exist: the
// raster frame buffer of the simulated color terminal, and the HP-GL
// pen plotter for hardcopy.
//
// Riot draws an instance as "the bounding box and connectors of the
// defining cell positioned, oriented, and replicated by the instance
// information. The size and color of the connector crosses indicates
// width and layer of the wire making the connection inside the cell.
// Optionally, instances can be displayed with their cell names and
// connector names to facilitate identification." DrawCell implements
// exactly that view, plus a full-geometry mode for finished-chip plots.
package display

import (
	"fmt"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
)

// Canvas is the drawing surface abstraction shared by the frame buffer
// and the pen plotter. Coordinates are device coordinates.
type Canvas interface {
	Line(a, b geom.Point, c geom.Color)
	Rect(r geom.Rect, c geom.Color)
	FillRect(r geom.Rect, c geom.Color)
	Cross(at geom.Point, size int, c geom.Color)
	Text(at geom.Point, s string, c geom.Color)
}

// View maps a window in the design plane onto a device rectangle.
type View struct {
	Window geom.Rect // visible design-plane region (centimicrons)
	Screen geom.Rect // device region
	FlipY  bool      // raster devices grow y downward
}

// FitView builds a view showing all of window inside screen, preserving
// aspect ratio and adding a small margin.
func FitView(window, screen geom.Rect, flipY bool) View {
	if window.Empty() {
		window = geom.R(window.Min.X, window.Min.Y, window.Min.X+1, window.Min.Y+1)
	}
	// 5% margin
	mx, my := window.W()/20+1, window.H()/20+1
	window = geom.R(window.Min.X-mx, window.Min.Y-my, window.Max.X+mx, window.Max.Y+my)
	// expand the window to the screen's aspect ratio so nothing
	// distorts
	sw, sh := screen.W(), screen.H()
	if sw < 1 {
		sw = 1
	}
	if sh < 1 {
		sh = 1
	}
	if window.W()*sh < window.H()*sw { // window too narrow
		want := window.H() * sw / sh
		grow := (want - window.W()) / 2
		window = geom.R(window.Min.X-grow, window.Min.Y, window.Min.X-grow+want, window.Max.Y)
	} else {
		want := window.W() * sh / sw
		grow := (want - window.H()) / 2
		window = geom.R(window.Min.X, window.Min.Y-grow, window.Max.X, window.Min.Y-grow+want)
	}
	return View{Window: window, Screen: screen, FlipY: flipY}
}

// ToScreen maps a design point to device coordinates.
func (v View) ToScreen(p geom.Point) geom.Point {
	x := v.Screen.Min.X + int(int64(p.X-v.Window.Min.X)*int64(v.Screen.W())/int64(max(1, v.Window.W())))
	var y int
	if v.FlipY {
		y = v.Screen.Max.Y - int(int64(p.Y-v.Window.Min.Y)*int64(v.Screen.H())/int64(max(1, v.Window.H())))
	} else {
		y = v.Screen.Min.Y + int(int64(p.Y-v.Window.Min.Y)*int64(v.Screen.H())/int64(max(1, v.Window.H())))
	}
	return geom.Pt(x, y)
}

// ToDesign maps a device point back into the design plane (the inverse
// of ToScreen up to rounding) — used for pointing.
func (v View) ToDesign(p geom.Point) geom.Point {
	x := v.Window.Min.X + int(int64(p.X-v.Screen.Min.X)*int64(max(1, v.Window.W()))/int64(max(1, v.Screen.W())))
	var y int
	if v.FlipY {
		y = v.Window.Min.Y + int(int64(v.Screen.Max.Y-p.Y)*int64(max(1, v.Window.H()))/int64(max(1, v.Screen.H())))
	} else {
		y = v.Window.Min.Y + int(int64(p.Y-v.Screen.Min.Y)*int64(max(1, v.Window.H()))/int64(max(1, v.Screen.H())))
	}
	return geom.Pt(x, y)
}

// ToScreenRect maps a design rectangle to a normalized device
// rectangle.
func (v View) ToScreenRect(r geom.Rect) geom.Rect {
	return geom.RectFromPoints(v.ToScreen(r.Min), v.ToScreen(r.Max))
}

// Zoom scales the window about its center: num/den > 1 zooms out,
// < 1 zooms in.
func (v *View) Zoom(num, den int) {
	c := v.Window.Center()
	w := v.Window.W() * num / den
	h := v.Window.H() * num / den
	if w < 4 {
		w = 4
	}
	if h < 4 {
		h = 4
	}
	v.Window = geom.R(c.X-w/2, c.Y-h/2, c.X-w/2+w, c.Y-h/2+h)
}

// Pan shifts the window by a fraction (num/den) of its extent in each
// axis.
func (v *View) Pan(dxNum, dyNum, den int) {
	v.Window = v.Window.Translate(geom.Pt(v.Window.W()*dxNum/den, v.Window.H()*dyNum/den))
}

// Options selects what DrawCell renders.
type Options struct {
	// ShowNames labels instances with cell names and connectors with
	// connector names.
	ShowNames bool
	// Geometry recurses all the way down and draws leaf mask geometry
	// (for finished-chip plots) instead of stopping at instance
	// bounding boxes.
	Geometry bool
}

// DrawCell renders a cell onto the canvas through the view with a
// transient cache (derived geometry is recomputed next call).
func DrawCell(cv Canvas, v View, cell *core.Cell, opt Options) {
	drawCell(cv, v, cell, geom.Identity, opt, true, NewCache())
}

// DrawCellCached renders like DrawCell but keeps derived geometry —
// most importantly the per-instance copy cull indexes — in a cache the
// caller holds across frames, keyed on the editor's edit generation.
// Pan and zoom only change the viewport query, so redrawing a static
// design never re-bins an array; any editing operation bumps the
// generation and drops the cache.
func DrawCellCached(cv Canvas, v View, cell *core.Cell, opt Options, c *Cache, gen uint64) {
	c.ensure(gen)
	drawCell(cv, v, cell, geom.Identity, opt, true, c)
}

// DrawInstance renders one instance (the figure-3 view).
func DrawInstance(cv Canvas, v View, in *core.Instance, opt Options) {
	drawInstance(cv, v, in, geom.Identity, opt, NewCache())
}

// Cache memoizes derived drawing geometry: called CIF symbols'
// bounding boxes (keyed per file, since symbol ids are only unique
// within a file), cells' worst-case mask overhang, and the viewport
// cull indexes over instance and array-copy bounding boxes. The
// symbol and overhang entries are transform-independent, so one
// computation serves every instance copy in a frame; the cull indexes
// live in design space, so across frames they are valid until the
// design changes — holders pass the edit generation to DrawCellCached
// and the cache clears itself when it moves.
type Cache struct {
	symBox   map[symKey]geom.Rect
	overhang map[*core.Cell]int
	instCull map[instCullKey]*geom.Index
	compCull map[compCullKey]*geom.Index

	gen   uint64
	keyed bool

	// CullHits counts cull-index reuses across draws (observability
	// and tests).
	CullHits int
}

type symKey struct {
	f  *cif.File
	id int
}

// instCullKey identifies one instance's copy-cull index: the instance
// and the outer transform it was drawn under (the same array drawn
// through two different parents culls separately).
type instCullKey struct {
	in    *core.Instance
	outer geom.Transform
}

// compCullKey identifies a composition's instance-cull index.
type compCullKey struct {
	cell *core.Cell
	tr   geom.Transform
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		symBox:   map[symKey]geom.Rect{},
		overhang: map[*core.Cell]int{},
		instCull: map[instCullKey]*geom.Index{},
		compCull: map[compCullKey]*geom.Index{},
	}
}

// ensure keys the cache to an edit generation, dropping every entry
// (and the hit counter) when the generation moved.
func (sb *Cache) ensure(gen uint64) {
	if sb.keyed && sb.gen == gen {
		return
	}
	sb.CullHits = 0
	sb.symBox = map[symKey]geom.Rect{}
	sb.overhang = map[*core.Cell]int{}
	sb.instCull = map[instCullKey]*geom.Index{}
	sb.compCull = map[compCullKey]*geom.Index{}
	sb.gen, sb.keyed = gen, true
}

func drawCell(cv Canvas, v View, cell *core.Cell, tr geom.Transform, opt Options, top bool, sb *Cache) {
	switch cell.Kind {
	case core.Composition:
		drawComposition(cv, v, cell, tr, opt, sb)
		if top {
			// outline the cell under edit
			cv.Rect(v.ToScreenRect(tr.ApplyRect(cell.BBox())), geom.ColorWhite)
		}
	default:
		if opt.Geometry {
			drawLeafGeometry(cv, v, cell, tr, sb)
		} else {
			drawBoxAndConnectors(cv, v, cell, tr, opt)
		}
	}
}

// cullMinCopies is the replication count below which an instance is
// drawn without building a cull index; tiny arrays are cheaper to draw
// outright.
const cullMinCopies = 16

// cullMargin returns the design-space slop added around the window when
// deciding visibility: marks that render a few device pixels past a
// copy's bounding box (connector crosses, cell overhangs) must not be
// culled while their overhang is on screen.
func cullMargin(v View) int {
	dpp := v.Window.W() / max(1, v.Screen.W()) // design units per device pixel
	return 16*dpp + 4*rules.Lambda
}

// drawComposition renders a composition's instances in declaration
// order. Culling happens at two levels: compositions with many
// instances cull whole instances against the viewport through a
// geom.Index over their bounding boxes (so a padframe of dozens of
// one-copy cells skips the off-window ones), and drawInstance culls
// the array copies inside each instance that survives. Name labels can
// extend arbitrarily far past a box, so ShowNames (box view) disables
// culling.
func drawComposition(cv Canvas, v View, cell *core.Cell, tr geom.Transform, opt Options, sb *Cache) {
	total := 0
	for _, in := range cell.Instances {
		total += in.Nx * in.Ny
	}
	if (opt.ShowNames && !opt.Geometry) || total < cullMinCopies {
		for _, in := range cell.Instances {
			drawInstance(cv, v, in, tr, opt, sb)
		}
		return
	}
	key := compCullKey{cell, tr}
	ix, ok := sb.compCull[key]
	if ok && ix.Len() == len(cell.Instances) {
		sb.CullHits++
	} else {
		ix = geom.NewIndex()
		for _, in := range cell.Instances {
			box := tr.ApplyRect(in.BBox()).Inset(-sb.cellOverhang(in.Cell))
			ix.Insert(box)
		}
		ix.Build()
		sb.compCull[key] = ix
	}
	visible := make([]bool, ix.Len())
	ix.QueryRect(v.Window.Inset(-cullMargin(v)), func(id int) bool {
		visible[id] = true
		return true
	})
	for k, in := range cell.Instances {
		if visible[k] {
			drawInstance(cv, v, in, tr, opt, sb)
		}
	}
}

// cellOverhang memoizes geomOverhang per draw: shared sub-composition
// DAGs would otherwise be re-walked once per instance entry per frame.
func (sb *Cache) cellOverhang(c *core.Cell) int {
	if o, ok := sb.overhang[c]; ok {
		return o
	}
	o := sb.geomOverhang(c)
	sb.overhang[c] = o
	return o
}

// geomOverhang returns how far a cell's mask geometry can extend past
// its declared bounding box, in centimicrons. Sticks wires and devices
// are centered on their paths, so material up to half the widest
// element can stick out when the path runs along the box edge; the
// full width is used as a safely generous bound. CIF boxes are
// computed from real geometry and never overhang.
func (sb *Cache) geomOverhang(c *core.Cell) int {
	switch c.Kind {
	case core.LeafSticks:
		w := rules.ContactSize
		for _, wire := range c.Sticks.Wires {
			width := wire.Width
			if width <= 0 {
				width = rules.MinWidth(wire.Layer)
			}
			if width > w {
				w = width
			}
		}
		for _, d := range c.Sticks.Devices {
			// DeviceBoxes extends at most ceil(max(W,L)/2) plus a
			// 3-unit diffusion/implant extension from the device
			// center; W+L+3 safely dominates that
			if e := d.W + d.L + 3; e > w {
				w = e
			}
		}
		return w * c.Sticks.EffUnits()
	case core.Composition:
		over := 0
		for _, in := range c.Instances {
			if o := sb.cellOverhang(in.Cell); o > over {
				over = o
			}
		}
		return over
	default:
		return 0
	}
}

// drawInstance renders every array copy of an instance. Replicated
// instances — the Nx x Ny arrays the paper's composition primitives
// produce — are culled against the viewport through a geom.Index over
// the copies' bounding boxes, so panning around a large array redraws
// only the visible copies instead of walking every one. Copies draw in
// grid order, matching the plain loop, so output is deterministic.
// Name labels can extend arbitrarily far past a box, so ShowNames (in
// the box view, the only mode that renders text) disables culling.
func drawInstance(cv Canvas, v View, in *core.Instance, outer geom.Transform, opt Options, sb *Cache) {
	n := in.Nx * in.Ny
	if (opt.ShowNames && !opt.Geometry) || n < cullMinCopies {
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				drawInstanceCopy(cv, v, in, i, j, outer, opt, sb)
			}
		}
		return
	}
	// a sticks cell's mask geometry can overhang its declared bounding
	// box (wires are centered on their path), so the cull rect grows by
	// the cell's worst-case overhang
	key := instCullKey{in, outer}
	ix, ok := sb.instCull[key]
	if ok && ix.Len() == n {
		sb.CullHits++
	} else {
		cb := in.Cell.BBox().Inset(-sb.cellOverhang(in.Cell))
		ix = geom.NewIndex()
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				ix.Insert(in.CopyTransform(i, j).Then(outer).ApplyRect(cb))
			}
		}
		ix.Build()
		sb.instCull[key] = ix
	}
	visible := make([]bool, ix.Len())
	ix.QueryRect(v.Window.Inset(-cullMargin(v)), func(id int) bool {
		visible[id] = true
		return true
	})
	k := 0
	for i := 0; i < in.Nx; i++ {
		for j := 0; j < in.Ny; j++ {
			if visible[k] {
				drawInstanceCopy(cv, v, in, i, j, outer, opt, sb)
			}
			k++
		}
	}
}

func drawInstanceCopy(cv Canvas, v View, in *core.Instance, i, j int, outer geom.Transform, opt Options, sb *Cache) {
	ct := in.CopyTransform(i, j).Then(outer)
	if opt.Geometry && in.Cell.Kind == core.Composition {
		drawCell(cv, v, in.Cell, ct, opt, false, sb)
		return
	}
	if opt.Geometry {
		drawLeafGeometry(cv, v, in.Cell, ct, sb)
		return
	}
	// the Riot instance view: bounding box plus connector
	// crosses; array copies show "the gridding due to the
	// replication"
	drawBoxAndConnectors(cv, v, in.Cell, ct, opt)
	if opt.ShowNames && i == 0 && j == 0 {
		r := v.ToScreenRect(ct.ApplyRect(in.Cell.BBox()))
		cv.Text(geom.Pt(r.Min.X+2, (r.Min.Y+r.Max.Y)/2), in.Name+":"+in.Cell.Name, geom.ColorWhite)
	}
}

func drawBoxAndConnectors(cv Canvas, v View, cell *core.Cell, tr geom.Transform, opt Options) {
	box := cell.BBox()
	cv.Rect(v.ToScreenRect(tr.ApplyRect(box)), geom.ColorWhite)
	for _, cn := range cell.Connectors() {
		at := v.ToScreen(tr.Apply(cn.At))
		size := crossSize(v, cn.Width)
		cv.Cross(at, size, geom.LayerColor(cn.Layer))
		if opt.ShowNames {
			cv.Text(geom.Pt(at.X+size+1, at.Y-3), cn.Name, geom.LayerColor(cn.Layer))
		}
	}
}

// crossSize maps a connector's wire width to a cross radius in device
// units, with a readable minimum.
func crossSize(v View, width int) int {
	if width <= 0 {
		width = rules.MinWidth(geom.NM) * rules.Lambda
	}
	s := v.ToScreen(geom.Pt(v.Window.Min.X+width, v.Window.Min.Y)).X - v.Screen.Min.X
	if s < 2 {
		s = 2
	}
	if s > 12 {
		s = 12
	}
	return s
}

// drawLeafGeometry renders the actual mask geometry of a leaf cell.
func drawLeafGeometry(cv Canvas, v View, cell *core.Cell, tr geom.Transform, sb *Cache) {
	switch cell.Kind {
	case core.LeafCIF:
		drawCIFCulled(cv, v, cell.CIFFile, cell.Symbol, tr, sb)
	case core.LeafSticks:
		sym, err := cell.SticksCIF()
		if err != nil {
			// fall back to the abstract view rather than lose the cell
			drawBoxAndConnectors(cv, v, cell, tr, Options{})
			return
		}
		drawCIFCulled(cv, v, &cif.File{Symbols: []*cif.Symbol{sym}}, sym, tr, sb)
	default:
		drawCell(cv, v, cell, tr, Options{Geometry: true}, false, sb)
	}
}

// drawCIFCulled renders a CIF symbol with viewport culling. The
// symbol-bbox cache lets an offscreen called subtree be skipped with a
// single rectangle test instead of being traversed element by element.
func drawCIFCulled(cv Canvas, v View, f *cif.File, sym *cif.Symbol, tr geom.Transform, sb *Cache) {
	// viewport culling: skip mask shapes wholly outside the (slightly
	// inflated) window; zoomed-in views of big chips draw only what
	// shows
	win := v.Window.Inset(-cullMargin(v))
	vis := func(r geom.Rect) bool { return tr.ApplyRect(r).Touches(win) }
	for _, e := range sym.ResolveScale() {
		switch el := e.(type) {
		case cif.Box:
			if r := el.Rect(); vis(r) {
				cv.FillRect(v.ToScreenRect(tr.ApplyRect(r)), geom.LayerColor(el.Layer))
			}
		case cif.Polygon:
			if !vis(pointsBBox(el.Points)) {
				continue
			}
			for i := 1; i < len(el.Points); i++ {
				cv.Line(v.ToScreen(tr.Apply(el.Points[i-1])), v.ToScreen(tr.Apply(el.Points[i])), geom.LayerColor(el.Layer))
			}
			if n := len(el.Points); n > 2 {
				cv.Line(v.ToScreen(tr.Apply(el.Points[n-1])), v.ToScreen(tr.Apply(el.Points[0])), geom.LayerColor(el.Layer))
			}
		case cif.Wire:
			h := el.Width / 2
			for i := 1; i < len(el.Points); i++ {
				a, b := el.Points[i-1], el.Points[i]
				seg := geom.RectFromPoints(a, b)
				seg = geom.R(seg.Min.X-h, seg.Min.Y-h, seg.Max.X+h, seg.Max.Y+h)
				if vis(seg) {
					cv.FillRect(v.ToScreenRect(tr.ApplyRect(seg)), geom.LayerColor(el.Layer))
				}
			}
		case cif.RoundFlash:
			h := el.Diameter / 2
			r := geom.R(el.Center.X-h, el.Center.Y-h, el.Center.X+h, el.Center.Y+h)
			if vis(r) {
				cv.FillRect(v.ToScreenRect(tr.ApplyRect(r)), geom.LayerColor(el.Layer))
			}
		case cif.Call:
			child := f.SymbolByID(el.SymbolID)
			if child == nil {
				continue
			}
			key := symKey{f, el.SymbolID}
			cb, cached := sb.symBox[key]
			if !cached {
				var err error
				if cb, err = f.SymbolBBox(el.SymbolID); err != nil {
					cb = geom.Rect{} // unknown extent: draw unconditionally
				}
				sb.symBox[key] = cb
			}
			if cb != (geom.Rect{}) && !el.Transform.Then(tr).ApplyRect(cb).Touches(win) {
				continue
			}
			drawCIFCulled(cv, v, f, child, el.Transform.Then(tr), sb)
		case cif.Connector:
			if vis(geom.Rect{Min: el.At, Max: el.At}) {
				cv.Cross(v.ToScreen(tr.Apply(el.At)), crossSize(v, el.Width), geom.LayerColor(el.Layer))
			}
		}
	}
}

// pointsBBox returns the bounding box of a point path.
func pointsBBox(pts []geom.Point) geom.Rect {
	if len(pts) == 0 {
		return geom.Rect{}
	}
	r := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.UnionPoint(p)
	}
	return r
}

// Describe returns a short textual summary of a view, used in status
// lines.
func Describe(v View) string {
	return fmt.Sprintf("window %v on screen %v", v.Window, v.Screen)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
