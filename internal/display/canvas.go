package display

import (
	"riot/internal/geom"
	"riot/internal/plot"
	"riot/internal/raster"
)

// RasterCanvas adapts the frame buffer to the Canvas interface.
type RasterCanvas struct {
	Im *raster.Image
}

// Line draws a line segment.
func (rc RasterCanvas) Line(a, b geom.Point, c geom.Color) { rc.Im.Line(a, b, c) }

// Rect outlines a rectangle.
func (rc RasterCanvas) Rect(r geom.Rect, c geom.Color) { rc.Im.Rect(r, c) }

// FillRect paints a filled rectangle.
func (rc RasterCanvas) FillRect(r geom.Rect, c geom.Color) { rc.Im.FillRect(r, c) }

// Cross draws a connector cross.
func (rc RasterCanvas) Cross(at geom.Point, size int, c geom.Color) { rc.Im.Cross(at, size, c) }

// Text renders a label.
func (rc RasterCanvas) Text(at geom.Point, s string, c geom.Color) { rc.Im.Text(at.X, at.Y, s, c) }

// PlotCanvas adapts the pen plotter to the Canvas interface. Colors
// map to the four pens; fills become outlines (a pen plotter does not
// fill areas).
type PlotCanvas struct {
	P *plot.Plotter
}

func (pc PlotCanvas) pen(c geom.Color) {
	switch c {
	case geom.ColorRed, geom.ColorMagenta:
		pc.P.SelectPen(1)
	case geom.ColorGreen, geom.ColorCyan:
		pc.P.SelectPen(2)
	case geom.ColorBlue:
		pc.P.SelectPen(3)
	default:
		pc.P.SelectPen(4)
	}
}

// Line draws a line segment.
func (pc PlotCanvas) Line(a, b geom.Point, c geom.Color) {
	pc.pen(c)
	pc.P.Line(a, b)
}

// Rect outlines a rectangle.
func (pc PlotCanvas) Rect(r geom.Rect, c geom.Color) {
	pc.pen(c)
	pc.P.Rect(r)
}

// FillRect traces the rectangle outline (plotters do not fill).
func (pc PlotCanvas) FillRect(r geom.Rect, c geom.Color) {
	pc.pen(c)
	pc.P.Rect(r)
}

// Cross draws a connector cross.
func (pc PlotCanvas) Cross(at geom.Point, size int, c geom.Color) {
	pc.pen(c)
	pc.P.Cross(at, size)
}

// Text writes a label at the position.
func (pc PlotCanvas) Text(at geom.Point, s string, c geom.Color) {
	pc.pen(c)
	pc.P.MoveTo(at)
	pc.P.Label(s)
}
