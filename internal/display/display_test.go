package display

import (
	"strings"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/plot"
	"riot/internal/raster"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const L = rules.Lambda

func testCell(t testing.TB) *core.Cell {
	t.Helper()
	sc := &sticks.Cell{
		Name: "G", Box: geom.R(0, 0, 20, 10), HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 0, Y: 5}, {X: 20, Y: 5}}},
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 10, Y: 0}, {X: 10, Y: 10}}},
		},
		Connectors: []sticks.Connector{
			{Name: "IN", At: geom.Pt(0, 5), Layer: geom.NM, Width: 2, Side: geom.SideLeft},
			{Name: "OUT", At: geom.Pt(20, 5), Layer: geom.NM, Width: 2, Side: geom.SideRight},
		},
	}
	c, err := core.NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestViewRoundTrip(t *testing.T) {
	v := FitView(geom.R(0, 0, 1000, 1000), geom.R(0, 0, 200, 200), true)
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 500}, {X: 1000, Y: 1000}} {
		sp := v.ToScreen(p)
		back := v.ToDesign(sp)
		if back.ManhattanDist(p) > v.Window.W()/50 {
			t.Errorf("round trip %v -> %v -> %v", p, sp, back)
		}
	}
	// flipped y: larger design y is smaller screen y
	lo := v.ToScreen(geom.Pt(0, 0))
	hi := v.ToScreen(geom.Pt(0, 1000))
	if hi.Y >= lo.Y {
		t.Errorf("y not flipped: %v vs %v", hi, lo)
	}
}

func TestFitViewAspect(t *testing.T) {
	// a wide window on a square screen must not distort
	v := FitView(geom.R(0, 0, 2000, 100), geom.R(0, 0, 100, 100), true)
	// one design unit maps to the same extent in x and y
	dx := v.ToScreen(geom.Pt(1000, 0)).X - v.ToScreen(geom.Pt(0, 0)).X
	dy := v.ToScreen(geom.Pt(0, 0)).Y - v.ToScreen(geom.Pt(0, 1000)).Y
	if dx != dy {
		t.Errorf("anisotropic view: dx=%d dy=%d", dx, dy)
	}
}

func TestZoomPan(t *testing.T) {
	v := FitView(geom.R(0, 0, 1000, 1000), geom.R(0, 0, 100, 100), true)
	w0 := v.Window.W()
	c0 := v.Window.Center()
	v.Zoom(1, 2) // zoom in 2x
	if v.Window.W() >= w0 {
		t.Error("zoom in grew the window")
	}
	if d := v.Window.Center().ManhattanDist(c0); d > 2 {
		t.Errorf("zoom moved the center by %d", d)
	}
	v.Pan(1, 0, 4)
	if v.Window.Center().X <= c0.X {
		t.Error("pan right did not move the window")
	}
}

func TestDrawCellBoxView(t *testing.T) {
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity, Nx: 1, Ny: 1},
		&core.Instance{Name: "b", Cell: cell, Tr: geom.MakeTransform(geom.R0, geom.Pt(30*L, 0)), Nx: 1, Ny: 1},
	)
	im := raster.New(200, 100)
	v := FitView(top.BBox(), geom.R(0, 0, 199, 99), true)
	DrawCell(RasterCanvas{Im: im}, v, top, Options{})
	// bounding boxes in white, connector crosses in metal blue
	if im.CountColor(geom.ColorWhite) == 0 {
		t.Error("no bounding boxes drawn")
	}
	if im.CountColor(geom.ColorBlue) == 0 {
		t.Error("no metal connector crosses drawn")
	}
}

func TestDrawCellNames(t *testing.T) {
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity, Nx: 1, Ny: 1})
	im := raster.New(300, 150)
	v := FitView(top.BBox(), geom.R(0, 0, 299, 149), true)
	plain := raster.New(300, 150)
	DrawCell(RasterCanvas{Im: plain}, v, top, Options{})
	DrawCell(RasterCanvas{Im: im}, v, top, Options{ShowNames: true})
	if im.CountColor(geom.ColorWhite) <= plain.CountColor(geom.ColorWhite) {
		t.Error("ShowNames drew nothing extra")
	}
}

func TestDrawCellGeometry(t *testing.T) {
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity, Nx: 2, Ny: 1, Sx: 20 * L})
	im := raster.New(200, 100)
	v := FitView(top.BBox(), geom.R(0, 0, 199, 99), true)
	DrawCell(RasterCanvas{Im: im}, v, top, Options{Geometry: true})
	// geometry mode paints the metal and poly masks
	if im.CountColor(geom.ColorBlue) == 0 || im.CountColor(geom.ColorRed) == 0 {
		t.Error("mask geometry not painted")
	}
}

func TestDrawToPlotter(t *testing.T) {
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "a", Cell: cell, Tr: geom.Identity, Nx: 1, Ny: 1})
	var b strings.Builder
	p := plot.New(&b)
	v := FitView(top.BBox(), geom.R(0, 0, 10000, 7000), false)
	DrawCell(PlotCanvas{P: p}, v, top, Options{Geometry: true})
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.Contains(s, "SP3;") { // metal pen
		t.Errorf("no metal pen selected:\n%s", s)
	}
	if strings.Count(s, "PD") < 8 {
		t.Error("too few pen-down strokes for two wires")
	}
}

func TestDrawRotatedInstance(t *testing.T) {
	cell := testCell(t)
	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "r", Cell: cell, Tr: geom.MakeTransform(geom.R90, geom.Pt(20*L, 0)), Nx: 1, Ny: 1})
	im := raster.New(100, 150)
	v := FitView(top.BBox(), geom.R(0, 0, 99, 149), true)
	DrawCell(RasterCanvas{Im: im}, v, top, Options{})
	if im.CountColor(geom.ColorWhite) == 0 {
		t.Error("rotated instance invisible")
	}
}

func TestDescribe(t *testing.T) {
	v := FitView(geom.R(0, 0, 10, 10), geom.R(0, 0, 5, 5), true)
	if Describe(v) == "" {
		t.Error("empty description")
	}
}
