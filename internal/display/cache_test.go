package display

import (
	"testing"

	"riot/internal/geom"
	"riot/internal/raster"
)

// TestDrawCellCachedReusesCullIndex: two successive DrawCellCached
// calls at the same edit generation must reuse the copy-cull index
// (no re-binning), render identical pixels across a pan, and drop the
// cache when the generation moves.
func TestDrawCellCachedReusesCullIndex(t *testing.T) {
	top := bigArray(t)
	v := FitView(top.BBox(), geom.R(0, 0, 399, 299), true)
	c := NewCache()

	im1 := raster.New(400, 300)
	DrawCellCached(RasterCanvas{Im: im1}, v, top, Options{}, c, 1)
	if c.CullHits != 0 {
		t.Fatalf("first frame reported %d cull hits", c.CullHits)
	}

	im2 := raster.New(400, 300)
	DrawCellCached(RasterCanvas{Im: im2}, v, top, Options{}, c, 1)
	if c.CullHits == 0 {
		t.Fatal("second frame did not reuse the cull index")
	}
	if !samePix(im1.Pix, im2.Pix) {
		t.Fatal("cached redraw rendered different pixels")
	}

	// pan: still the same generation, still a cache hit, and the
	// culled render must match a cache-free draw of the same view
	hits := c.CullHits
	pv := v
	pv.Pan(1, 0, 3)
	im3 := raster.New(400, 300)
	DrawCellCached(RasterCanvas{Im: im3}, pv, top, Options{}, c, 1)
	if c.CullHits <= hits {
		t.Fatal("panned frame did not reuse the cull index")
	}
	plain := raster.New(400, 300)
	DrawCell(RasterCanvas{Im: plain}, pv, top, Options{})
	if !samePix(im3.Pix, plain.Pix) {
		t.Fatal("cached panned render differs from cache-free render")
	}

	// a new generation must rebuild (no hit on the next draw)
	hits = c.CullHits
	im4 := raster.New(400, 300)
	DrawCellCached(RasterCanvas{Im: im4}, v, top, Options{}, c, 2)
	if c.CullHits != 0 {
		t.Fatalf("generation change kept %d stale cull hits", c.CullHits)
	}
}

// samePix compares two frame buffers.
func samePix(a, b []geom.Color) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
