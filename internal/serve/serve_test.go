package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func mustDo(t testing.TB, sv *Server, sid, line string) string {
	t.Helper()
	out, err := sv.Do(sid, line)
	if err != nil {
		t.Fatalf("[%s] %s: %v", sid, line, err)
	}
	return out
}

// TestTwoSessionsShareStore is the tentpole's warm-start pin: two
// sessions assembling the same library content — in two different
// designs, so nothing is shared but the content-addressed store — and
// the second session's verification rebuilds no certificates: every
// artifact loads from the store the first session warmed.
func TestTwoSessionsShareStore(t *testing.T) {
	sv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	script := []string{
		"EDIT CHIP",
		"CREATE SRCELL a ARRAY 4 4",
		"LVS CHIP",
	}
	if err := sv.Open("a", "d1"); err != nil {
		t.Fatal(err)
	}
	for _, c := range script {
		mustDo(t, sv, "a", c)
	}
	shA, _ := sv.Shell("a")
	if built := shA.Verifier.HierStats().CertBuilt; built == 0 {
		t.Fatal("cold session built no certificates — the warm assertion below would be vacuous")
	}

	if err := sv.Open("b", "d2"); err != nil {
		t.Fatal(err)
	}
	hitsBefore := sv.mem.Stats().Hits
	var verdict string
	for _, c := range script {
		verdict = mustDo(t, sv, "b", c)
	}
	if !strings.Contains(verdict, "netlists match") {
		t.Fatalf("session b verdict: %q", verdict)
	}
	shB, _ := sv.Shell("b")
	if built := shB.Verifier.HierStats().CertBuilt; built != 0 {
		t.Fatalf("warm session rebuilt %d certificate(s); want 0 (shared store miss)", built)
	}
	if hits := sv.mem.Stats().Hits; hits <= hitsBefore {
		t.Fatalf("warm session hit the shared store %d times; want > 0", hits-hitsBefore)
	}
	// the per-session stats surface sees the same warming
	snap, ok := sv.SessionSnapshot("b")
	if !ok {
		t.Fatal("no snapshot for session b")
	}
	if v, ok := snap.Get("store", "hits"); !ok || v == 0 {
		t.Fatalf("session stats store.hits = %d, %v", v, ok)
	}
	if v, _ := snap.Get("hier", "cert_built"); v != 0 {
		t.Fatalf("session stats hier.cert_built = %d, want 0", v)
	}
}

// sessionScript is the per-session workload for the differential test:
// session i edits its own cell in the shared design, with its own
// placements, and verifies twice with an edit between.
func sessionScript(i int) []string {
	cell := fmt.Sprintf("CELL%d", i)
	return []string{
		"EDIT " + cell,
		fmt.Sprintf("CREATE SRCELL a ARRAY %d 2", 2+i%3),
		"LVS " + cell,
		fmt.Sprintf("CREATE SRCELL b AT %d 60", 120*(1+i%4)),
		"DRC " + cell,
		"LVS " + cell,
		"ENDEDIT",
	}
}

// TestConcurrentDifferential runs N sessions concurrently over ONE
// shared design — interleaved edits, snapshot verifications, shared
// store — and then replays every session's script single-threaded on a
// fresh server. Each session's transcript must be byte-identical:
// verdicts are a function of the frozen generation, never of what the
// other sessions were doing. CI runs this under -race.
func TestConcurrentDifferential(t *testing.T) {
	const n = 6
	run := func(concurrent bool) []string {
		sv, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		transcripts := make([]string, n)
		do := func(i int) {
			sid := fmt.Sprintf("s%d", i)
			if err := sv.Open(sid, "shared"); err != nil {
				t.Error(err)
				return
			}
			var b strings.Builder
			for _, c := range sessionScript(i) {
				out, err := sv.Do(sid, c)
				if err != nil {
					t.Errorf("[%s] %s: %v", sid, c, err)
					return
				}
				b.WriteString(out)
			}
			transcripts[i] = b.String()
		}
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) { defer wg.Done(); do(i) }(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < n; i++ {
				do(i)
			}
		}
		return transcripts
	}

	concurrent := run(true)
	sequential := run(false)
	for i := range concurrent {
		if concurrent[i] != sequential[i] {
			t.Errorf("session %d transcript diverged under concurrency:\n--- concurrent ---\n%s--- sequential ---\n%s",
				i, concurrent[i], sequential[i])
		}
	}
}

// TestEditLease pins cell-level write arbitration: EDIT claims the
// cell, a second session's EDIT is refused while the lease is held and
// admitted after ENDEDIT (or after the holder closes).
func TestEditLease(t *testing.T) {
	sv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []string{"a", "b"} {
		if err := sv.Open(sid, ""); err != nil {
			t.Fatal(err)
		}
	}
	mustDo(t, sv, "a", "EDIT CHIP")
	if _, err := sv.Do("b", "EDIT CHIP"); err == nil || !strings.Contains(err.Error(), "under edit") {
		t.Fatalf("conflicting EDIT not refused: %v", err)
	}
	// the holder's failed re-EDIT of its own cell (the shell refuses a
	// redundant EDIT) must not drop the lease
	if _, err := sv.Do("a", "EDIT CHIP"); err == nil || !strings.Contains(err.Error(), "already editing") {
		t.Fatalf("redundant EDIT: %v", err)
	}
	if _, err := sv.Do("b", "EDIT CHIP"); err == nil || !strings.Contains(err.Error(), "under edit") {
		t.Fatalf("lease dropped by the holder's failed re-EDIT: %v", err)
	}
	// a different cell is free
	mustDo(t, sv, "b", "EDIT OTHER")
	mustDo(t, sv, "a", "ENDEDIT")
	mustDo(t, sv, "b", "ENDEDIT")
	mustDo(t, sv, "b", "EDIT CHIP")
	// closing the holder releases its lease
	if err := sv.Close("b"); err != nil {
		t.Fatal(err)
	}
	mustDo(t, sv, "a", "EDIT CHIP")
}

// TestServeProtocol drives the line protocol end to end: session
// lifecycle, command routing, error reporting, stats.
func TestServeProtocol(t *testing.T) {
	sv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join([]string{
		"OPEN a",
		"ON a EDIT CHIP",
		"ON a CREATE SRCELL s ARRAY 2 2",
		"ON a LVS CHIP",
		"OPEN b",
		"ON b EDIT CHIP", // lease conflict -> ?-line
		"SESSIONS",
		"ON nosuch LVS CHIP", // unknown session -> ?-line
		"BOGUS",              // unknown directive -> ?-line
		"CLOSE b",
		"STATS",
		"QUIT",
		"ON a LVS CHIP", // after QUIT: never reached
	}, "\n"))
	var out strings.Builder
	if err := sv.Serve(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"opened a",
		"editing CHIP",
		"CHIP: netlists match",
		`?serve: cell "CHIP" is under edit by session "a"`,
		"a main editing CHIP",
		`?serve: no session "nosuch"`,
		"?serve: unknown directive",
		"closed b",
		"serve: sessions=1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("protocol output missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "netlists match") != 1 {
		t.Error("command after QUIT was executed")
	}
}

// TestServeSnapshotAggregates checks the server snapshot sums the
// per-session pipeline counters and reports the store once.
func TestServeSnapshotAggregates(t *testing.T) {
	sv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sid := fmt.Sprintf("s%d", i)
		if err := sv.Open(sid, "d"); err != nil {
			t.Fatal(err)
		}
		mustDo(t, sv, sid, fmt.Sprintf("EDIT C%d", i))
		mustDo(t, sv, sid, "CREATE SRCELL a ARRAY 2 2")
		mustDo(t, sv, sid, fmt.Sprintf("DRC C%d", i))
	}
	snap := sv.Snapshot()
	if v, _ := snap.Get("serve", "sessions"); v != 2 {
		t.Fatalf("serve.sessions = %d", v)
	}
	var runs int64
	for i := 0; i < 2; i++ {
		ss, _ := sv.SessionSnapshot(fmt.Sprintf("s%d", i))
		v, _ := ss.Get("verify", "hier")
		runs += v
	}
	if v, _ := snap.Get("verify", "hier"); v != runs {
		t.Fatalf("aggregate verify.hier = %d, want sum of sessions %d", v, runs)
	}
	storeCount := 0
	for _, sec := range snap.Sections {
		if sec.Name == "store" {
			storeCount++
		}
	}
	if storeCount != 1 {
		t.Fatalf("store section appears %d times in the aggregate", storeCount)
	}
}

// TestServeDiskTier checks a CacheDir-backed server starts warm across
// restarts: a second server over the same directory serves the first
// server's certificates from disk through the shared tier.
func TestServeDiskTier(t *testing.T) {
	dir := t.TempDir()
	script := []string{"EDIT CHIP", "CREATE SRCELL a ARRAY 3 3", "LVS CHIP"}

	sv1, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv1.Open("a", ""); err != nil {
		t.Fatal(err)
	}
	for _, c := range script {
		mustDo(t, sv1, "a", c)
	}

	sv2, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv2.Open("a", ""); err != nil {
		t.Fatal(err)
	}
	for _, c := range script {
		mustDo(t, sv2, "a", c)
	}
	sh, _ := sv2.Shell("a")
	if built := sh.Verifier.HierStats().CertBuilt; built != 0 {
		t.Fatalf("restarted server rebuilt %d certificate(s); want 0 (disk tier)", built)
	}
	if sv2.disk.Stats().Hits == 0 {
		t.Fatal("restarted server never read the disk tier")
	}
}

// BenchmarkServeSessions measures sessions per second: each iteration
// opens a session, assembles an array, verifies it with LVS and
// closes. "cold" uses a fresh server per iteration (no shared state);
// "warm" runs every iteration against one server whose shared store the
// first iteration primed — the multi-tenant steady state.
func BenchmarkServeSessions(b *testing.B) {
	runSession := func(sv *Server, sid string) {
		// each session assembles its own cell; the array content is
		// identical, so the shared store warms across cells and sessions
		cell := "CHIP_" + sid
		script := []string{"EDIT " + cell, "CREATE SRCELL a ARRAY 16 16", "LVS " + cell}
		if err := sv.Open(sid, "d"); err != nil {
			b.Fatal(err)
		}
		for _, c := range script {
			if _, err := sv.Do(sid, c); err != nil {
				b.Fatalf("%s: %v", c, err)
			}
		}
		if err := sv.Close(sid); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sv, err := New(Options{})
			if err != nil {
				b.Fatal(err)
			}
			runSession(sv, "s")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
	})
	b.Run("shared-warm", func(b *testing.B) {
		sv, err := New(Options{})
		if err != nil {
			b.Fatal(err)
		}
		runSession(sv, "prime")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSession(sv, fmt.Sprintf("s%d", i))
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
	})
}
