// Package serve is the multi-tenant design service: many editing
// sessions multiplexed over shared designs and one shared
// content-addressed verification store.
//
// The paper's tool is single-designer — one keyboard, one design. A
// chip is assembled by a team, though, and the expensive artifacts of
// verification (flattened shards, leaf reference netlists, sub-cell
// match certificates) depend only on cell content, not on who verifies
// first. The server exploits both facts:
//
//   - Each session is a full shell (its own editor, verifier caches,
//     journal, in-memory file system) over a design shared by name.
//     Mutating commands hold the design's guard exclusively; verifying
//     commands freeze a snapshot under a brief read lock and verify
//     against the immutable frozen generation, so one session's long
//     DRC never blocks another's edits — and the verdict each session
//     sees is deterministic per generation.
//   - Every session's caches attach the same castore.Mem (optionally
//     tiered over one on-disk castore.Store) through one shared
//     revision-checked Signer: the first session to verify a cell
//     warms every other, and a new session joining mid-flight starts
//     warm.
//
// Cell-level write conflicts resolve by lease: EDIT claims the cell
// for the session and a second session's EDIT of the same cell is
// refused until the first ends its edit.
//
// Serve speaks a line protocol over any reader/writer (cmd/riot wires
// stdin for riot -serve); the Open/Do/Close methods are the same
// surface programmatically, safe for concurrent use.
package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing/fstest"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/lib"
	"riot/internal/obs"
	"riot/internal/shell"
)

// Options configures a server.
type Options struct {
	// CacheDir, when set, tiers the shared in-memory store over a
	// persistent on-disk store rooted there, so the server also starts
	// warm across restarts.
	CacheDir string
	// MaxConcurrent bounds how many commands execute at once across all
	// sessions; 0 means 2×GOMAXPROCS.
	MaxConcurrent int
	// Log receives the on-disk store's quarantine lines; nil discards.
	Log func(format string, args ...any)
}

// Server multiplexes sessions over shared designs and the shared
// verification store. Safe for concurrent use.
type Server struct {
	mu       sync.Mutex
	designs  map[string]*sharedDesign
	sessions map[string]*session

	mem    *castore.Mem
	disk   *castore.Store
	blob   castore.Blob
	signer *castore.Signer
	sem    chan struct{}

	opened, closed, commands int
}

// sharedDesign is one design many sessions edit and verify. The guard
// is the sessions' shell.Guard; the lease map (under Server.mu) keeps
// two sessions from editing one cell at once.
type sharedDesign struct {
	name    string
	d       *core.Design
	guard   sync.RWMutex
	editing map[string]string // cell name -> session id
}

// session is one tenant: a shell over the shared design, with private
// files, caches and output buffer.
type session struct {
	id     string
	mu     sync.Mutex
	sh     *shell.Shell
	design *sharedDesign
	out    bytes.Buffer
	files  map[string][]byte
}

// New starts a server. The standard cell library is pre-installed in
// every design, and each session's file system is pre-loaded with the
// library files, so sessions can READ or CREATE from either surface.
func New(opts Options) (*Server, error) {
	sv := &Server{
		designs:  map[string]*sharedDesign{},
		sessions: map[string]*session{},
		mem:      castore.NewMem(),
		signer:   &castore.Signer{},
	}
	sv.blob = sv.mem
	if opts.CacheDir != "" {
		st, err := castore.Open(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		if opts.Log != nil {
			st.Log = opts.Log
		} else {
			st.Log = func(string, ...any) {}
		}
		sv.disk = st
		sv.blob = &castore.Tiered{Mem: sv.mem, Disk: st}
	}
	n := opts.MaxConcurrent
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
	}
	sv.sem = make(chan struct{}, n)
	return sv, nil
}

// design returns (creating if needed) the named shared design.
func (sv *Server) design(name string) (*sharedDesign, error) {
	if sd, ok := sv.designs[name]; ok {
		return sd, nil
	}
	sd := &sharedDesign{
		name:    name,
		d:       core.NewDesign(),
		editing: map[string]string{},
	}
	if err := lib.Install(sd.d); err != nil {
		return nil, err
	}
	sv.designs[name] = sd
	return sd, nil
}

// Open starts a session on the named shared design ("main" when empty).
func (sv *Server) Open(sid, designName string) error {
	if sid == "" {
		return fmt.Errorf("serve: empty session id")
	}
	if designName == "" {
		designName = "main"
	}
	libFiles, err := lib.Files()
	if err != nil {
		return err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if _, ok := sv.sessions[sid]; ok {
		return fmt.Errorf("serve: session %q already open", sid)
	}
	sd, err := sv.design(designName)
	if err != nil {
		return err
	}
	s := &session{id: sid, design: sd, files: libFiles}
	sh := shell.New(&s.out)
	sh.Design = sd.d
	sh.Guard = &sd.guard
	sh.FS = sessionFS{s}
	sh.WriteFile = func(name string, data []byte) error {
		s.files[name] = data
		return nil
	}
	sh.AttachStore(sv.blob, sv.signer)
	sv.registerStoreSection(sh)
	s.sh = sh
	sv.sessions[sid] = s
	sv.opened++
	return nil
}

// registerStoreSection adds the shared store's counters to a session
// registry, so STATS inside any session (and the smoke tests outside)
// can see the cross-session warming.
func (sv *Server) registerStoreSection(sh *shell.Shell) {
	sh.Registry().Register("store", func() []obs.Item {
		ms := sv.mem.Stats()
		items := []obs.Item{
			obs.N("hits", ms.Hits),
			obs.N("misses", ms.Misses),
			obs.N("puts", ms.Puts),
			obs.N("entries", ms.Entries),
			obs.N("bytes", ms.Bytes),
		}
		if sv.disk != nil {
			ds := sv.disk.Stats()
			items = append(items,
				obs.N("disk_hits", ds.Hits),
				obs.N("disk_misses", ds.Misses),
				obs.N("disk_puts", ds.Puts),
			)
		}
		return items
	})
}

// sessionFS resolves a session's READ/REPLAY names against its private
// files (library files plus anything the session wrote).
type sessionFS struct{ s *session }

func (m sessionFS) Open(name string) (fs.File, error) {
	if data, ok := m.s.files[name]; ok {
		return fstest.MapFS{name: &fstest.MapFile{Data: data}}.Open(name)
	}
	return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
}

// Close ends a session, releasing its cell leases. The warm state it
// contributed to the shared store stays.
func (sv *Server) Close(sid string) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[sid]
	if !ok {
		return fmt.Errorf("serve: no session %q", sid)
	}
	for cell, owner := range s.design.editing {
		if owner == sid {
			delete(s.design.editing, cell)
		}
	}
	delete(sv.sessions, sid)
	sv.closed++
	return nil
}

// Shell exposes a session's shell for programmatic drivers (tests, the
// benchmark). The caller must not run commands on it concurrently with
// Do for the same session.
func (sv *Server) Shell(sid string) (*shell.Shell, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[sid]
	if !ok {
		return nil, false
	}
	return s.sh, true
}

// Do executes one shell command in a session and returns its printed
// output. Commands for one session serialize; commands across sessions
// run concurrently up to the server's bound. EDIT claims the target
// cell's lease and is refused while another session holds it.
func (sv *Server) Do(sid, line string) (string, error) {
	sv.mu.Lock()
	s, ok := sv.sessions[sid]
	if ok {
		sv.commands++
	}
	sv.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("serve: no session %q", sid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	fields := strings.Fields(line)
	if len(fields) >= 2 && strings.EqualFold(fields[0], "EDIT") {
		if err := sv.claim(s, fields[1]); err != nil {
			return "", err
		}
	}

	sv.sem <- struct{}{}
	err := s.sh.Exec(line)
	<-sv.sem

	sv.reconcileLeases(s)
	out := s.out.String()
	s.out.Reset()
	return out, err
}

// claim reserves a cell for a session's editor, refusing when another
// session holds it.
func (sv *Server) claim(s *session, cell string) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if owner, held := s.design.editing[cell]; held && owner != s.id {
		return fmt.Errorf("serve: cell %q is under edit by session %q", cell, owner)
	}
	s.design.editing[cell] = s.id
	return nil
}

// reconcileLeases aligns the design's lease map with what the session's
// editor actually holds: a failed EDIT, an ENDEDIT, a DELCELL or a
// RENAME of the cell under edit all settle here.
func (sv *Server) reconcileLeases(s *session) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	var current string
	if ed := s.sh.Editor; ed != nil {
		current = ed.Cell.Name
	}
	for cell, owner := range s.design.editing {
		if owner == s.id && cell != current {
			delete(s.design.editing, cell)
		}
	}
	if current != "" {
		s.design.editing[current] = s.id
	}
}

// SessionSnapshot pulls one session's unified stats (the shell's usual
// sections plus the shared "store" section).
func (sv *Server) SessionSnapshot(sid string) (*obs.Snapshot, bool) {
	sh, ok := sv.Shell(sid)
	if !ok {
		return nil, false
	}
	return sh.Snapshot(), true
}

// Snapshot aggregates the server's stats: a "serve" section (session
// and command counts), the shared "store" section, and every numeric
// per-session pipeline counter summed across open sessions.
func (sv *Server) Snapshot() *obs.Snapshot {
	sv.mu.Lock()
	serveSec := obs.Section{Name: "serve", Items: []obs.Item{
		obs.N("sessions", len(sv.sessions)),
		obs.N("opened", sv.opened),
		obs.N("closed", sv.closed),
		obs.N("commands", sv.commands),
		obs.N("designs", len(sv.designs)),
	}}
	open := make([]*session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		open = append(open, s)
	}
	sv.mu.Unlock()
	sort.Slice(open, func(i, j int) bool { return open[i].id < open[j].id })

	snap := &obs.Snapshot{Sections: []obs.Section{serveSec}}
	ms := sv.mem.Stats()
	storeItems := []obs.Item{
		obs.N("hits", ms.Hits),
		obs.N("misses", ms.Misses),
		obs.N("puts", ms.Puts),
		obs.N("entries", ms.Entries),
		obs.N("bytes", ms.Bytes),
	}
	if sv.disk != nil {
		ds := sv.disk.Stats()
		storeItems = append(storeItems,
			obs.N("disk_hits", ds.Hits),
			obs.N("disk_misses", ds.Misses),
			obs.N("disk_puts", ds.Puts),
		)
	}
	snap.Sections = append(snap.Sections, obs.Section{Name: "store", Items: storeItems})

	// Sum the numeric pipeline counters across sessions, keeping first
	// appearance order of sections and keys so the aggregate's shape is
	// deterministic. The per-session "store" section is the shared store
	// seen from inside — skip it, it is already reported once above.
	var order []string
	keys := map[string][]string{}
	sums := map[string]map[string]int64{}
	for _, s := range open {
		s.mu.Lock()
		ss := s.sh.Snapshot()
		s.mu.Unlock()
		for _, sec := range ss.Sections {
			if sec.Name == "store" {
				continue
			}
			if _, ok := sums[sec.Name]; !ok {
				order = append(order, sec.Name)
				sums[sec.Name] = map[string]int64{}
			}
			for _, it := range sec.Items {
				if it.IsStr {
					continue
				}
				if _, ok := sums[sec.Name][it.Key]; !ok {
					keys[sec.Name] = append(keys[sec.Name], it.Key)
				}
				sums[sec.Name][it.Key] += it.Val
			}
		}
	}
	for _, name := range order {
		sec := obs.Section{Name: name}
		for _, k := range keys[name] {
			sec.Items = append(sec.Items, obs.Item{Key: k, Val: sums[name][k]})
		}
		snap.Sections = append(snap.Sections, sec)
	}
	return snap
}

// Sessions lists open sessions deterministically: "id design" plus the
// cell under edit when one is.
func (sv *Server) Sessions() []string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]string, 0, len(sv.sessions))
	for id, s := range sv.sessions {
		line := id + " " + s.design.name
		for cell, owner := range s.design.editing {
			if owner == id {
				line += " editing " + cell
			}
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

// Serve interprets the server line protocol from r until EOF or QUIT:
//
//	OPEN <sid> [<design>]   start a session on a shared design
//	ON <sid> <command...>   run one shell command in a session
//	CLOSE <sid>             end a session
//	SESSIONS                list open sessions
//	STATS [JSON]            aggregate server statistics
//	QUIT                    stop serving
//
// Errors print as ?-prefixed lines and do not stop the server
// (interactive semantics, like the shell's own Run loop).
func (sv *Server) Serve(r io.Reader, w io.Writer) error {
	sc := newLineScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := strings.ToUpper(fields[0])
		args := fields[1:]
		switch cmd {
		case "QUIT":
			return nil
		case "OPEN":
			if len(args) < 1 || len(args) > 2 {
				fmt.Fprintf(w, "?serve: OPEN <sid> [<design>]\n")
				continue
			}
			design := ""
			if len(args) == 2 {
				design = args[1]
			}
			if err := sv.Open(args[0], design); err != nil {
				fmt.Fprintf(w, "?%v\n", err)
				continue
			}
			fmt.Fprintf(w, "opened %s\n", args[0])
		case "CLOSE":
			if len(args) != 1 {
				fmt.Fprintf(w, "?serve: CLOSE <sid>\n")
				continue
			}
			if err := sv.Close(args[0]); err != nil {
				fmt.Fprintf(w, "?%v\n", err)
				continue
			}
			fmt.Fprintf(w, "closed %s\n", args[0])
		case "ON":
			if len(args) < 2 {
				fmt.Fprintf(w, "?serve: ON <sid> <command...>\n")
				continue
			}
			out, err := sv.Do(args[0], strings.Join(args[1:], " "))
			io.WriteString(w, out)
			if err != nil {
				fmt.Fprintf(w, "?%v\n", err)
			}
		case "SESSIONS":
			for _, s := range sv.Sessions() {
				fmt.Fprintln(w, s)
			}
		case "STATS":
			if len(args) > 0 && strings.EqualFold(args[0], "JSON") {
				fmt.Fprintf(w, "%s\n", sv.Snapshot().JSON())
			} else {
				io.WriteString(w, sv.Snapshot().Text())
			}
		default:
			fmt.Fprintf(w, "?serve: unknown directive %q (OPEN/ON/CLOSE/SESSIONS/STATS/QUIT)\n", cmd)
		}
	}
	return sc.Err()
}

// newLineScanner wraps bufio.Scanner with a bigger buffer, matching the
// shell's own line limits.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return sc
}
