package core

import (
	"testing"

	"riot/internal/geom"
)

// TestEditorGenerationAndChangeLog checks that every mutating editing
// operation advances the generation and that ChangesSince reports
// bounded dirty rectangles covering the affected instances.
func TestEditorGenerationAndChangeLog(t *testing.T) {
	d := NewDesign()
	leaf := mustLeaf(t, "L")
	if err := d.AddCell(leaf); err != nil {
		t.Fatal(err)
	}
	top := NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	g0 := e.Generation()
	if dirty, ok := e.ChangesSince(g0); !ok || len(dirty) != 0 {
		t.Fatalf("no-change ChangesSince = %v, %v", dirty, ok)
	}

	in, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1 := e.Generation()
	if g1 <= g0 {
		t.Fatalf("CreateInstance did not advance the generation (%d -> %d)", g0, g1)
	}
	dirty, ok := e.ChangesSince(g0)
	if !ok {
		t.Fatal("bounded create reported unbounded")
	}
	if !coveredBy(in.BBox(), dirty) {
		t.Fatalf("create dirty %v does not cover %v", dirty, in.BBox())
	}

	before := in.BBox()
	e.MoveInstance(in, geom.Pt(500, 700))
	dirty, ok = e.ChangesSince(g1)
	if !ok {
		t.Fatal("bounded move reported unbounded")
	}
	if !coveredBy(before, dirty) || !coveredBy(in.BBox(), dirty) {
		t.Fatalf("move dirty %v does not cover old %v and new %v", dirty, before, in.BBox())
	}

	// cumulative query across both edits
	dirty, ok = e.ChangesSince(g0)
	if !ok || !coveredBy(in.BBox(), dirty) {
		t.Fatalf("cumulative ChangesSince = %v, %v", dirty, ok)
	}

	// Invalidate is unbounded
	gI := e.Generation()
	e.Invalidate()
	if _, ok := e.ChangesSince(gI); ok {
		t.Fatal("Invalidate must report unbounded")
	}
	// a future generation is unanswerable
	if _, ok := e.ChangesSince(e.Generation() + 5); ok {
		t.Fatal("future generation must report not-ok")
	}
}

// TestEditorChangeLogTrim drives the log past its bound and checks old
// generations fall off while recent ones stay covered.
func TestEditorChangeLogTrim(t *testing.T) {
	d := NewDesign()
	leaf := mustLeaf(t, "L")
	if err := d.AddCell(leaf); err != nil {
		t.Fatal(err)
	}
	top := NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEditor(d, top)
	in, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gOld := e.Generation()
	for i := 0; i < changeLogMax+50; i++ {
		e.MoveInstance(in, geom.Pt(1, 0))
	}
	if _, ok := e.ChangesSince(gOld); ok {
		t.Fatal("trimmed generation must report not-ok")
	}
	gRecent := e.Generation()
	e.MoveInstance(in, geom.Pt(1, 0))
	if _, ok := e.ChangesSince(gRecent); !ok {
		t.Fatal("recent generation must stay covered")
	}
}

// coveredBy reports whether r is inside the union of the dirty rects
// (approximately: r must be contained in one of them, which is how the
// editor logs instance-level changes).
func coveredBy(r geom.Rect, dirty []geom.Rect) bool {
	for _, dr := range dirty {
		if dr.ContainsRect(r) {
			return true
		}
	}
	return false
}

// TestChangesSinceCoalesces pins the coalesced-delta shape: a burst of
// overlapping edits returns one merged dirty rectangle, while a
// distant edit stays a separate region.
func TestChangesSinceCoalesces(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "L")
	a, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CreateInstance("L", "b", MakeTransformAt(100000, 100000), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	since := e.Generation()

	// three overlapping moves of instance a, one move of the distant b
	e.MoveInstance(a, geom.Pt(10, 0))
	e.MoveInstance(a, geom.Pt(-10, 0))
	e.MoveInstance(a, geom.Pt(0, 10))
	e.MoveInstance(b, geom.Pt(10, 10))

	dirty, ok := e.ChangesSince(since)
	if !ok {
		t.Fatal("change log lost the span")
	}
	if len(dirty) != 2 {
		t.Fatalf("dirty rects = %v, want 2 coalesced regions", dirty)
	}
	// instance a's whole churn is covered by one region
	want := a.BBox().Union(a.BBox().Translate(geom.Pt(0, -10)))
	covered := false
	for _, r := range dirty {
		if r.ContainsRect(want) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("coalesced dirty set %v does not cover instance a's churn %v", dirty, want)
	}
}

// MakeTransformAt is a tiny test shorthand for a translation.
func MakeTransformAt(x, y int) geom.Transform {
	return geom.MakeTransform(geom.R0, geom.Pt(x, y))
}
