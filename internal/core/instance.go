package core

import (
	"fmt"

	"riot/internal/geom"
)

// Instance represents "the contents of a cell placed at a given
// location with a specified orientation and array replication count".
// The replication grid is laid out in cell coordinates (copy (i,j) is
// translated by (i*Sx, j*Sy)) and the whole grid is then placed by Tr,
// so orienting an array orients the grid as a unit.
type Instance struct {
	Name   string
	Cell   *Cell
	Tr     geom.Transform
	Nx, Ny int // replication counts, >= 1
	Sx, Sy int // replication spacing, centimicrons (center to center)
}

// NewInstance places a cell with replication 1x1.
func NewInstance(name string, cell *Cell, tr geom.Transform) *Instance {
	return &Instance{Name: name, Cell: cell, Tr: tr, Nx: 1, Ny: 1}
}

// CopyTransform returns the parent-space transform of array copy
// (i,j): the copy is laid out on the replication grid in cell space
// and the whole grid is placed by the instance transform.
func (in *Instance) CopyTransform(i, j int) geom.Transform {
	return geom.Translate(geom.Pt(i*in.Sx, j*in.Sy)).Then(in.Tr)
}

// copyTransform is the internal alias used throughout the package.
func (in *Instance) copyTransform(i, j int) geom.Transform {
	return in.CopyTransform(i, j)
}

// BBox returns the instance's bounding box in parent coordinates,
// covering every array copy.
func (in *Instance) BBox() geom.Rect {
	cb := in.Cell.BBox()
	r := in.copyTransform(0, 0).ApplyRect(cb)
	if in.Nx > 1 || in.Ny > 1 {
		r = r.Union(in.copyTransform(in.Nx-1, in.Ny-1).ApplyRect(cb))
	}
	return r
}

// IsArray reports whether the instance is replicated.
func (in *Instance) IsArray() bool { return in.Nx > 1 || in.Ny > 1 }

// Validate checks the replication parameters.
func (in *Instance) Validate() error {
	if in.Nx < 1 || in.Ny < 1 {
		return fmt.Errorf("core: instance %s: replication counts must be >= 1 (got %dx%d)", in.Name, in.Nx, in.Ny)
	}
	if in.Nx > 1 && in.Sx == 0 {
		return fmt.Errorf("core: instance %s: x-replicated with zero spacing", in.Name)
	}
	if in.Ny > 1 && in.Sy == 0 {
		return fmt.Errorf("core: instance %s: y-replicated with zero spacing", in.Name)
	}
	return nil
}

// InstConn is one connector of an instance, resolved into parent
// coordinates. For arrays, only connectors "on the outside edge of the
// array" exist: Riot allows no access to interior connectors on arrays.
type InstConn struct {
	Inst  *Instance
	Name  string // base name plus [i] / [i,j] array suffix
	At    geom.Point
	Layer geom.Layer
	Width int
	Side  geom.Side // side in parent space
}

// Connectors returns the instance's visible connectors in parent
// coordinates. A connector of an array copy is visible only if the
// copy sits on the edge of the array that the connector faces, so
// array interiors (which connect copy-to-copy by abutment) stay
// hidden.
func (in *Instance) Connectors() []InstConn {
	cellConns := in.Cell.Connectors()
	var out []InstConn
	for i := 0; i < in.Nx; i++ {
		for j := 0; j < in.Ny; j++ {
			ct := in.copyTransform(i, j)
			for _, cn := range cellConns {
				side := cn.Side.Transform(in.Tr.O)
				if in.IsArray() && !onArrayEdge(cn.Side, i, j, in.Nx, in.Ny) {
					continue
				}
				out = append(out, InstConn{
					Inst:  in,
					Name:  arrayName(cn.Name, i, j, in.Nx, in.Ny),
					At:    ct.Apply(cn.At),
					Layer: cn.Layer,
					Width: cn.Width,
					Side:  side,
				})
			}
		}
	}
	return out
}

// onArrayEdge reports whether the connector on (untransformed) side s
// of copy (i,j) faces the outside of an Nx x Ny array. Interior-facing
// copies are suppressed. Interior connectors (SideNone) are only
// visible on 1x1 instances.
func onArrayEdge(s geom.Side, i, j, nx, ny int) bool {
	switch s {
	case geom.SideLeft:
		return i == 0
	case geom.SideRight:
		return i == nx-1
	case geom.SideBottom:
		return j == 0
	case geom.SideTop:
		return j == ny-1
	}
	return false
}

// arrayName decorates a connector name with its array index:
// "OUT" for 1x1, "OUT[k]" for a one-axis array, "OUT[i,j]" for a grid.
func arrayName(base string, i, j, nx, ny int) string {
	switch {
	case nx == 1 && ny == 1:
		return base
	case ny == 1:
		return fmt.Sprintf("%s[%d]", base, i)
	case nx == 1:
		return fmt.Sprintf("%s[%d]", base, j)
	default:
		return fmt.Sprintf("%s[%d,%d]", base, i, j)
	}
}

// Connector resolves a (possibly array-indexed) connector name on the
// instance.
func (in *Instance) Connector(name string) (InstConn, error) {
	for _, ic := range in.Connectors() {
		if ic.Name == name {
			return ic, nil
		}
	}
	return InstConn{}, fmt.Errorf("core: instance %s has no connector %q", in.Name, name)
}
