// Package core implements Riot's composition model — the paper's
// primary contribution. It provides the separated hierarchy (leaf cells
// on the leaves, composition cells in the interior), instances with
// orientation and array replication, connectors, the pending-connection
// list, and the three guaranteed-correct connection operations: ABUT,
// ROUTE and STRETCH.
//
// All coordinates at this level are in centimicrons (CIF units). Leaf
// cells authored symbolically (Sticks, lambda units) are scaled on the
// way in; their symbolic form is retained so the STRETCH operation can
// re-solve them through the stick optimizer.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"riot/internal/cif"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// Connector is a connection point of a cell: "a location on or inside
// the bounding box of the cell, and the layer and width of the wire
// that makes that connection". Side records the bounding-box edge the
// connector lies on (SideNone for interior connectors).
type Connector struct {
	Name  string
	At    geom.Point // cell-local, centimicrons
	Layer geom.Layer
	Width int // centimicrons
	Side  geom.Side
}

// CellKind distinguishes the two kinds of cells in Riot's separated
// hierarchy.
type CellKind uint8

// The cell kinds. Leaf cells consist of primitive geometry (CIF) or
// symbolic layout (Sticks); composition cells "consist only of
// instances of other cells".
const (
	LeafCIF CellKind = iota
	LeafSticks
	Composition
)

// String names the kind.
func (k CellKind) String() string {
	switch k {
	case LeafCIF:
		return "leaf-cif"
	case LeafSticks:
		return "leaf-sticks"
	default:
		return "composition"
	}
}

// Cell is a node of the separated hierarchy. Exactly one of the payload
// fields is set, according to Kind:
//
//   - LeafCIF: Symbol holds CIF geometry (centimicrons) whose connector
//     extensions define the cell's connectors;
//   - LeafSticks: Sticks holds the symbolic cell (lambda units);
//   - Composition: Instances holds the placed instances.
//
// SourceFile records where a leaf cell was read from, for the
// composition format's file references.
type Cell struct {
	Name       string
	Kind       CellKind
	Symbol     *cif.Symbol
	CIFFile    *cif.File // the file Symbol came from (for nested calls)
	CIFBox     geom.Rect // bounding box of Symbol, resolved at load time
	Sticks     *sticks.Cell
	Instances  []*Instance
	SourceFile string
	// ExtraConnectors are composition-cell connectors created by
	// bring-out routes or declared in a composition file, in addition
	// to the instance connectors that lie on the bounding box.
	ExtraConnectors []Connector

	sticksMu  sync.Mutex  // guards sticksCIF (leaves are shared across sessions)
	sticksCIF *cif.Symbol // cached symbolic-to-CIF conversion

	// rev is the cell's mutation revision, stamped from the global edit
	// generation counter by the editor's touch paths (or MarkMutated for
	// out-of-band changes). Snapshot builders and content signers read
	// it to decide whether state memoized against this pointer is still
	// current. Accessed atomically; a plain uint64 keeps the struct free
	// of noCopy fields.
	rev uint64

	// src, on a frozen snapshot clone, is the live cell the clone was
	// taken from; nil on live cells and on leaf cells (which snapshots
	// share rather than clone). Origin collapses a clone to its lineage
	// so caches keyed on "which design cell is this" survive re-cloning.
	src *Cell
}

// Revision reports the cell's mutation revision. Two reads returning
// the same value bracket a span with no (announced) mutation; 0 means
// the cell was never touched through an editor.
func (c *Cell) Revision() uint64 { return atomic.LoadUint64(&c.rev) }

// MarkMutated stamps a fresh revision on the cell. Editors call it
// implicitly on every mutation; callers that change a cell's payload
// directly (tests, loaders rewriting geometry in place) must call it so
// long-lived signers and snapshot builders notice.
func (c *Cell) MarkMutated() { c.markRev(editorGen.Add(1)) }

func (c *Cell) markRev(g uint64) { atomic.StoreUint64(&c.rev, g) }

// Origin returns the live cell a snapshot clone was taken from, or the
// cell itself when it is live. Caches that must decide "same design
// cell as last run?" compare origins, since every generation gets a
// fresh clone pointer.
func (c *Cell) Origin() *Cell {
	if c.src != nil {
		return c.src
	}
	return c
}

// NewComposition returns an empty composition cell.
func NewComposition(name string) *Cell {
	return &Cell{Name: name, Kind: Composition}
}

// NewLeafFromSticks wraps a symbolic cell as a Riot leaf cell. The
// sticks cell must validate.
func NewLeafFromSticks(s *sticks.Cell) (*Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Cell{Name: s.Name, Kind: LeafSticks, Sticks: s}, nil
}

// NewLeafFromCIF wraps one symbol of a parsed CIF file as a Riot leaf
// cell. Calls inside the symbol are flattened into the bounding box
// only (Riot never looks inside leaf geometry); connectors come from
// the 94 extensions.
func NewLeafFromCIF(f *cif.File, sym *cif.Symbol) (*Cell, error) {
	if sym == nil {
		return nil, fmt.Errorf("core: nil CIF symbol")
	}
	box, err := f.SymbolBBox(sym.ID)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", sym.Name, err)
	}
	name := sym.Name
	if name == "" {
		name = fmt.Sprintf("SYM%d", sym.ID)
	}
	c := &Cell{Name: name, Kind: LeafCIF, Symbol: sym, CIFFile: f, CIFBox: box}
	// validate connector uniqueness up front
	seen := map[string]bool{}
	for _, cn := range sym.Connectors() {
		if seen[cn.Name] {
			return nil, fmt.Errorf("core: %s: duplicate connector %q", name, cn.Name)
		}
		seen[cn.Name] = true
	}
	return c, nil
}

// BBox returns the cell's bounding box in centimicrons. For a
// composition cell it is the union of the instance bounding boxes.
func (c *Cell) BBox() geom.Rect {
	switch c.Kind {
	case LeafCIF:
		return c.CIFBox
	case LeafSticks:
		u := c.Sticks.EffUnits()
		b := c.Sticks.BBox()
		return geom.R(b.Min.X*u, b.Min.Y*u, b.Max.X*u, b.Max.Y*u)
	default:
		var r geom.Rect
		first := true
		for _, in := range c.Instances {
			ib := in.BBox()
			if first {
				r = ib
				first = false
			} else {
				r = r.Union(ib)
			}
		}
		return r
	}
}

// Connectors returns the cell's connectors in cell-local centimicron
// coordinates. For a composition cell this implements cell finishing:
// "a composition cell created by Riot includes those connectors from
// its instances which lie on its bounding box", plus any connectors
// added by bring-out routes.
func (c *Cell) Connectors() []Connector {
	switch c.Kind {
	case LeafCIF:
		var out []Connector
		for _, cn := range c.Symbol.Connectors() {
			out = append(out, Connector{
				Name:  cn.Name,
				At:    cn.At,
				Layer: cn.Layer,
				Width: cn.Width,
				Side:  geom.SideOf(c.CIFBox, cn.At),
			})
		}
		return out
	case LeafSticks:
		u := c.Sticks.EffUnits()
		var out []Connector
		for _, cn := range c.Sticks.Connectors {
			out = append(out, Connector{
				Name:  cn.Name,
				At:    geom.Pt(cn.At.X*u, cn.At.Y*u),
				Layer: cn.Layer,
				Width: cn.EffWidth() * u,
				Side:  cn.Side,
			})
		}
		return out
	default:
		return CompositionConnectors(c, (*Instance).Connectors)
	}
}

// CompositionConnectors assembles a composition's exported connectors:
// every instance connector on the cell's bounding-box edge, deduped by
// name, plus the explicit extras. instConns supplies each instance's
// connector list — Cell.Connectors passes the plain method; callers
// that verify repeatedly (the incremental flatten cache) pass a
// memoized provider, since the per-instance lists only change when the
// instance does.
func CompositionConnectors(c *Cell, instConns func(*Instance) []InstConn) []Connector {
	box := c.BBox()
	var out []Connector
	seen := map[string]bool{}
	for _, in := range c.Instances {
		for _, ic := range instConns(in) {
			side := geom.SideOf(box, ic.At)
			if side == geom.SideNone {
				continue
			}
			name := in.Name + "." + ic.Name
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, Connector{
				Name:  name,
				At:    ic.At,
				Layer: ic.Layer,
				Width: ic.Width,
				Side:  side,
			})
		}
	}
	for _, cn := range c.ExtraConnectors {
		if !seen[cn.Name] {
			seen[cn.Name] = true
			cn.Side = geom.SideOf(box, cn.At)
			out = append(out, cn)
		}
	}
	return out
}

// ConnectorByName finds a cell connector.
func (c *Cell) ConnectorByName(name string) (Connector, bool) {
	for _, cn := range c.Connectors() {
		if cn.Name == name {
			return cn, true
		}
	}
	return Connector{}, false
}

// SticksCIF renders a symbolic leaf cell's mask geometry as a CIF
// symbol, caching the conversion. Only valid for LeafSticks cells.
// Safe for concurrent callers: leaf cells are shared (never cloned) by
// design snapshots, so several sessions can flatten the same leaf at
// once.
func (c *Cell) SticksCIF() (*cif.Symbol, error) {
	if c.Kind != LeafSticks {
		return nil, fmt.Errorf("core: %s is not a symbolic cell", c.Name)
	}
	c.sticksMu.Lock()
	defer c.sticksMu.Unlock()
	if c.sticksCIF == nil {
		sym, err := sticks.ToCIF(c.Sticks, 1)
		if err != nil {
			return nil, err
		}
		c.sticksCIF = sym
	}
	return c.sticksCIF, nil
}

// Uses reports whether cell c (transitively) instantiates target; used
// to reject hierarchy cycles.
func (c *Cell) Uses(target *Cell) bool {
	if c == target {
		return true
	}
	for _, in := range c.Instances {
		if in.Cell.Uses(target) {
			return true
		}
	}
	return false
}

// InstanceByName finds an instance of a composition cell.
func (c *Cell) InstanceByName(name string) (*Instance, bool) {
	for _, in := range c.Instances {
		if in.Name == name {
			return in, true
		}
	}
	return nil, false
}

// CountLeaves returns the number of leaf-cell placements under the
// cell, counting array replication; a measure of assembly size.
func (c *Cell) CountLeaves() int {
	if c.Kind != Composition {
		return 1
	}
	n := 0
	for _, in := range c.Instances {
		n += in.Cell.CountLeaves() * in.Nx * in.Ny
	}
	return n
}
