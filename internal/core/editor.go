package core

import (
	"fmt"
	"sync/atomic"

	"riot/internal/geom"
)

// Connection is one entry of the pending-connection list: "a link from
// a connector on one instance to a connector on another instance".
// The From instance is the one that moves (or stretches) when a
// connection specification command runs. A connection with empty
// connector names is a pure abutment link ("the user may specify
// merely that the instances are to be abutted, which is used if a cell
// has no connectors").
type Connection struct {
	From     *Instance
	FromConn string
	To       *Instance
	ToConn   string
}

// String renders the connection for the on-screen pending list.
func (c Connection) String() string {
	if c.FromConn == "" && c.ToConn == "" {
		return fmt.Sprintf("%s >< %s", c.From.Name, c.To.Name)
	}
	return fmt.Sprintf("%s.%s -> %s.%s", c.From.Name, c.FromConn, c.To.Name, c.ToConn)
}

// Editor is a graphical editing session on one composition cell: the
// cell under edit, the pending-connection list that is "shown on the
// screen constantly", and the routing defaults.
type Editor struct {
	Design  *Design
	Cell    *Cell // the composition cell under edit
	Pending []Connection

	// Declared retains every connector link a connection specification
	// command (ABUT, ROUTE, STRETCH) successfully executed. The paper
	// throws the logical connection information out once the command
	// runs — which is why a later MOVE can "silently destroy" a made
	// connection. This reproduction keeps the records as declared
	// design intent: the LVS netlist comparison (internal/lvs) stitches
	// its reference netlist from them, so a destroyed connection shows
	// up as a structured open instead of passing silently. Records
	// referencing a deleted instance are pruned with it.
	Declared []Connection

	// TracksPerChannel is the routing default set by the textual
	// command interface (0 = router default).
	TracksPerChannel int

	nextInst int

	// Pointing support: a geom.Index over the instances' bounding
	// boxes, keyed by an edit generation so pan/zoom pointing over an
	// unchanged cell never rebuilds or rescans. Every editing
	// operation bumps gen.
	gen    uint64
	hitIx  *geom.Index
	hitGen uint64

	// Change log: the design-plane rectangles each generation dirtied,
	// kept for consumers (incremental verification, display caches)
	// that splice rather than recompute. Entries with Unbounded set
	// mean "anything may have changed" — coarse operations and
	// Invalidate record those.
	log []changeEntry
	// logFloor is the newest generation the log no longer covers: every
	// generation in (logFloor, gen] still has its entries. It starts at
	// the editor's creation generation and advances only when trimming
	// drops entries, so "does the log cover (since, gen]?" is answered
	// exactly by since >= logFloor — no arithmetic on the global
	// generation counter, whose values interleave across editors.
	logFloor uint64

	// snap caches the frozen view of the current generation; see
	// Editor.Snapshot.
	snap *Snapshot
}

// changeEntry is one generation's dirty record.
type changeEntry struct {
	gen       uint64
	rect      geom.Rect
	unbounded bool
}

// changeLogMax bounds the change log; consumers further behind than
// this must rebuild from scratch.
const changeLogMax = 256

// editorGen issues edit generations to every editor in the process.
// Generations are globally unique and monotonic — never recycled
// across editors — so a cache keyed on a generation can never collide
// with a different editing session's (closing and reopening an editor
// on the same cell restarts nothing).
var editorGen atomic.Uint64

// Generation returns the edit generation: it increases on every
// mutating editing operation, so an unchanged generation guarantees an
// unchanged cell, and it is unique across all editors ever created in
// the process. Consumers key caches on it (pointing index, display
// cull indexes, the incremental verifier).
func (e *Editor) Generation() uint64 { return e.gen }

// ChangesSince returns the design-plane rectangles dirtied by every
// generation after since, and whether the log still covers that span.
// Consecutive edits are coalesced into one delta: overlapping and
// touching dirty rectangles merge into their union, so a burst of N
// edits between two verifies hands the consumer one compact dirty set
// rather than N near-duplicates. ok == false — the log was trimmed
// past since, since is not a generation this editor ever reached, or
// some change could not be bounded (Invalidate, external mutation) —
// means the caller must treat the whole cell as dirty. ok can never be
// true over a silently partial set: coverage is tracked explicitly
// (logFloor advances exactly when trimming drops entries), not
// inferred from the global generation counter, whose values interleave
// across editors and would make gap arithmetic ambiguous.
func (e *Editor) ChangesSince(since uint64) (dirty []geom.Rect, ok bool) {
	return changesSince(e.log, e.logFloor, e.gen, since)
}

// changesSince answers ChangesSince over an explicit log; shared by
// the editor and the frozen Snapshots it hands out.
func changesSince(log []changeEntry, logFloor, gen, since uint64) (dirty []geom.Rect, ok bool) {
	if since > gen {
		return nil, false
	}
	if since == gen {
		return nil, true
	}
	// the log must hold every generation in (since, gen]: anything at or
	// past the floor is fully covered, anything before it was trimmed
	if since < logFloor {
		return nil, false
	}
	for _, c := range log {
		if c.gen <= since {
			continue
		}
		if c.unbounded {
			return nil, false
		}
		dirty = append(dirty, c.rect)
	}
	return coalesceRects(dirty), true
}

// coalesceRects merges overlapping and touching rectangles into their
// unions, to a fixpoint. The result covers at least the input area
// (unions may cover more — dirty rects are an over-approximation by
// contract), with no two output rectangles touching.
func coalesceRects(rects []geom.Rect) []geom.Rect {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(rects); i++ {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].Touches(rects[j]) {
					rects[i] = rects[i].Union(rects[j])
					rects[j] = rects[len(rects)-1]
					rects = rects[:len(rects)-1]
					changed = true
					j--
				}
			}
		}
	}
	return rects
}

// logChange appends the current generation's dirty rectangle, trimming
// the log to its bound. Trimming drops whole generations (the cut
// never splits a multi-entry generation, so a generation the log still
// mentions is always completely covered) and advances logFloor to the
// last dropped generation — the record that consumers further behind
// must rebuild from scratch.
func (e *Editor) logChange(r geom.Rect, unbounded bool) {
	e.log = append(e.log, changeEntry{gen: e.gen, rect: r, unbounded: unbounded})
	if len(e.log) > changeLogMax {
		cut := len(e.log) - changeLogMax
		for cut < len(e.log)-1 && e.log[cut].gen == e.log[cut-1].gen {
			cut++
		}
		e.logFloor = e.log[cut-1].gen
		e.log = append(e.log[:0], e.log[cut:]...)
	}
}

// NewEditor opens a composition cell for editing.
func NewEditor(d *Design, cell *Cell) (*Editor, error) {
	if cell.Kind != Composition {
		return nil, fmt.Errorf("core: cannot edit leaf cell %q (Riot edits composition cells only)", cell.Name)
	}
	// seed with a fresh global generation so caches keyed on a prior
	// editing session can never collide with this one; the (empty) log
	// covers exactly (creation, creation] so far
	gen := editorGen.Add(1)
	return &Editor{Design: d, Cell: cell, gen: gen, logFloor: gen}, nil
}

// bump advances the edit generation, logs the dirty record, and stamps
// the new generation as the edited cell's revision and its design's
// generation — the hooks snapshot builders and content signers watch.
func (e *Editor) bump(r geom.Rect, unbounded bool) {
	e.gen = editorGen.Add(1)
	e.logChange(r, unbounded)
	e.Cell.markRev(e.gen)
	if e.Design != nil {
		e.Design.noteGen(e.gen)
	}
}

// touch records that the cell under edit changed, invalidating the
// pointing index. The logged dirty rectangle is empty; operations
// whose geometric extent is known log it with touchRect or logChange.
func (e *Editor) touch() { e.bump(geom.Rect{}, false) }

// touchRect records a change confined to the given design-plane
// rectangle.
func (e *Editor) touchRect(r geom.Rect) { e.bump(r, false) }

// Invalidate marks the cell under edit as externally modified: callers
// that mutate cells or instances directly (rather than through Editor
// methods) must call it. The change is recorded as unbounded, so
// generation-keyed caches rebuild from scratch. Because an external
// mutation may have reached any cell below the one under edit, every
// reachable cell gets a fresh revision — long-lived content signers
// recompute instead of serving a stale signature.
func (e *Editor) Invalidate() {
	e.bump(geom.Rect{}, true)
	marked := map[*Cell]bool{e.Cell: true}
	for _, in := range e.Cell.Instances {
		markSubtree(in.Cell, e.gen, marked)
	}
}

// markSubtree stamps rev g on every cell reachable from c.
func markSubtree(c *Cell, g uint64, marked map[*Cell]bool) {
	if c == nil || marked[c] {
		return
	}
	marked[c] = true
	c.markRev(g)
	for _, in := range c.Instances {
		markSubtree(in.Cell, g, marked)
	}
}

// HitInstance returns the topmost (last-created, so last-drawn)
// instance whose bounding box contains the design-plane point, or nil.
// Lookups go through a spatial index over the instance boxes instead
// of a linear scan; the index is rebuilt only after an editing
// operation, so repeated pointing at a static cell is O(1) per query.
func (e *Editor) HitInstance(p geom.Point) *Instance {
	insts := e.Cell.Instances
	if e.hitIx == nil || e.hitGen != e.gen || e.hitIx.Len() != len(insts) {
		ix := geom.NewIndex()
		for _, in := range insts {
			ix.Insert(in.BBox())
		}
		ix.Build()
		e.hitIx = ix
		e.hitGen = e.gen
	}
	best := -1
	e.hitIx.QueryPoint(p, func(id int) bool {
		if id > best {
			best = id
		}
		return true
	})
	if best < 0 {
		return nil
	}
	return insts[best]
}

// CreateInstance adds an instance of a named cell to the cell under
// edit. Empty instName generates a name. Replication counts below 1
// are raised to 1; zero spacing on a replicated axis defaults to the
// cell pitch (bounding-box extent), which makes array copies abut —
// "array elements must connect properly by abutment".
func (e *Editor) CreateInstance(cellName, instName string, tr geom.Transform, nx, ny, sx, sy int) (*Instance, error) {
	cell, ok := e.Design.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("core: no cell %q in the cell menu", cellName)
	}
	if cell.Uses(e.Cell) {
		return nil, fmt.Errorf("core: instantiating %q inside %q would create a hierarchy cycle", cellName, e.Cell.Name)
	}
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	cb := cell.BBox()
	if nx > 1 && sx == 0 {
		sx = cb.W()
	}
	if ny > 1 && sy == 0 {
		sy = cb.H()
	}
	if instName == "" {
		e.nextInst++
		instName = fmt.Sprintf("%s_%d", cellName, e.nextInst)
	}
	if _, dup := e.Cell.InstanceByName(instName); dup {
		return nil, fmt.Errorf("core: instance name %q already used in %q", instName, e.Cell.Name)
	}
	in := &Instance{Name: instName, Cell: cell, Tr: tr, Nx: nx, Ny: ny, Sx: sx, Sy: sy}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	e.touchRect(in.BBox())
	e.Cell.Instances = append(e.Cell.Instances, in)
	return in, nil
}

// DeleteInstance removes an instance and every pending connection that
// references it.
func (e *Editor) DeleteInstance(in *Instance) error {
	e.touchRect(in.BBox())
	found := false
	for i, x := range e.Cell.Instances {
		if x == in {
			e.Cell.Instances = append(e.Cell.Instances[:i], e.Cell.Instances[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: instance %q is not in %q", in.Name, e.Cell.Name)
	}
	kept := e.Pending[:0]
	for _, c := range e.Pending {
		if c.From != in && c.To != in {
			kept = append(kept, c)
		}
	}
	e.Pending = kept
	keptDecl := e.Declared[:0]
	for _, c := range e.Declared {
		if c.From != in && c.To != in {
			keptDecl = append(keptDecl, c)
		}
	}
	e.Declared = keptDecl
	return nil
}

// Declare records a connector link as declared design intent without
// running a connection command: the LVS reference netlist treats it
// exactly like a link an ABUT or ROUTE recorded. Connection commands
// call it implicitly; tests (and tools that import designs whose
// assembly history is lost) use it to assert intent directly.
func (e *Editor) Declare(from *Instance, fromConn string, to *Instance, toConn string) error {
	if _, err := from.Connector(fromConn); err != nil {
		return err
	}
	if _, err := to.Connector(toConn); err != nil {
		return err
	}
	// a declaration changes no geometry but does change what verifies:
	// advance the generation so generation-keyed verdicts (LVS) recompute
	e.touch()
	e.Declared = append(e.Declared, Connection{From: from, FromConn: fromConn, To: to, ToConn: toConn})
	return nil
}

// declareLinks retains the connector links of an executed connection
// command (pure abut links carry no connector intent and are skipped).
func (e *Editor) declareLinks(conns []Connection) {
	for _, c := range conns {
		if c.FromConn != "" {
			e.Declared = append(e.Declared, c)
		}
	}
}

// MoveInstance translates an instance by d. Note that moving an
// instance can silently destroy a previously made (positional)
// connection — the fundamental Riot limitation the paper discusses.
func (e *Editor) MoveInstance(in *Instance, d geom.Point) {
	before := in.BBox()
	in.Tr = in.Tr.Translated(d)
	e.touchRect(before.Union(in.BBox()))
}

// PlaceInstance sets an instance's transform outright.
func (e *Editor) PlaceInstance(in *Instance, tr geom.Transform) {
	before := in.BBox()
	in.Tr = tr
	e.touchRect(before.Union(in.BBox()))
}

// OrientInstance applies an additional orientation about the
// instance's bounding-box minimum corner, so the instance stays in
// place while turning.
func (e *Editor) OrientInstance(in *Instance, o geom.Orient) {
	before := in.BBox()
	in.Tr = in.Tr.Then(geom.MakeTransform(o, geom.Point{}))
	after := in.BBox()
	in.Tr = in.Tr.Translated(before.Min.Sub(after.Min))
	e.touchRect(before.Union(in.BBox()))
}

// Replicate sets an instance's array replication.
func (e *Editor) Replicate(in *Instance, nx, ny, sx, sy int) error {
	before := in.BBox()
	defer func() { e.touchRect(before.Union(in.BBox())) }()
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	cb := in.Cell.BBox()
	if nx > 1 && sx == 0 {
		sx = cb.W()
	}
	if ny > 1 && sy == 0 {
		sy = cb.H()
	}
	in.Nx, in.Ny, in.Sx, in.Sy = nx, ny, sx, sy
	return in.Validate()
}

// AddConnection appends a connector-to-connector link to the pending
// list. Riot checks "that the connectors to be joined are on the same
// layer and that they are opposed. That is, that they connect top to
// bottom or left to right."
func (e *Editor) AddConnection(from *Instance, fromConn string, to *Instance, toConn string) error {
	if from == to {
		return fmt.Errorf("core: cannot connect instance %q to itself", from.Name)
	}
	fc, err := from.Connector(fromConn)
	if err != nil {
		return err
	}
	tc, err := to.Connector(toConn)
	if err != nil {
		return err
	}
	if fc.Layer != tc.Layer {
		return fmt.Errorf("core: %s.%s is on %v but %s.%s is on %v (connectors must be on the same layer)",
			from.Name, fromConn, fc.Layer, to.Name, toConn, tc.Layer)
	}
	if !geom.Opposed(fc.Side, tc.Side) {
		return fmt.Errorf("core: %s.%s (%v) and %s.%s (%v) are not opposed (they must connect top to bottom or left to right)",
			from.Name, fromConn, fc.Side, to.Name, toConn, tc.Side)
	}
	if err := e.checkOneToMany(from); err != nil {
		return err
	}
	e.Pending = append(e.Pending, Connection{From: from, FromConn: fromConn, To: to, ToConn: toConn})
	return nil
}

// AddAbutLink appends a pure abutment link (no connectors).
func (e *Editor) AddAbutLink(from, to *Instance) error {
	if from == to {
		return fmt.Errorf("core: cannot abut instance %q to itself", from.Name)
	}
	if err := e.checkOneToMany(from); err != nil {
		return err
	}
	e.Pending = append(e.Pending, Connection{From: from, To: to})
	return nil
}

// checkOneToMany enforces Riot's one-to-many restriction: the pending
// list may only hold connections from a single from-instance at a
// time. ("This one-to-many restriction simplified the routing
// algorithm immensely.") A many-to-many connection is made by wrapping
// one of the sets in its own composition cell.
func (e *Editor) checkOneToMany(from *Instance) error {
	for _, c := range e.Pending {
		if c.From != from {
			return fmt.Errorf("core: pending connections already run from %q; connections are one-to-many (finish or clear them first)",
				c.From.Name)
		}
	}
	return nil
}

// AddBus makes "a bus-type connection in which all connections are
// made from one instance to another": every exposed connector pair
// with matching layers on facing edges is linked, paired in order
// along the edge. It returns the number of links made.
func (e *Editor) AddBus(from, to *Instance) (int, error) {
	if from == to {
		return 0, fmt.Errorf("core: cannot bus-connect instance %q to itself", from.Name)
	}
	if err := e.checkOneToMany(from); err != nil {
		return 0, err
	}
	fromSide := facingSide(from.BBox(), to.BBox())
	if fromSide == geom.SideNone {
		return 0, fmt.Errorf("core: %q and %q do not face each other", from.Name, to.Name)
	}
	toSide := fromSide.Opposite()
	fcs := connsOnSide(from, fromSide)
	tcs := connsOnSide(to, toSide)
	if len(fcs) == 0 || len(tcs) == 0 {
		return 0, fmt.Errorf("core: no facing connectors between %q (%v edge) and %q (%v edge)",
			from.Name, fromSide, to.Name, toSide)
	}
	n := min(len(fcs), len(tcs))
	made := 0
	for i := 0; i < n; i++ {
		if fcs[i].Layer != tcs[i].Layer {
			continue
		}
		e.Pending = append(e.Pending, Connection{From: from, FromConn: fcs[i].Name, To: to, ToConn: tcs[i].Name})
		made++
	}
	if made == 0 {
		return 0, fmt.Errorf("core: bus connection found no layer-compatible pairs between %q and %q", from.Name, to.Name)
	}
	return made, nil
}

// DeleteConnection removes entry i of the pending list.
func (e *Editor) DeleteConnection(i int) error {
	if i < 0 || i >= len(e.Pending) {
		return fmt.Errorf("core: no pending connection %d", i)
	}
	e.Pending = append(e.Pending[:i], e.Pending[i+1:]...)
	return nil
}

// ClearConnections empties the pending list.
func (e *Editor) ClearConnections() { e.Pending = nil }

// pendingFrom gathers the pending connections (all from one instance,
// by the one-to-many rule) and clears the list: "after the connection
// specification command, the logical connection information is thrown
// out."
func (e *Editor) pendingFrom() (*Instance, []Connection, error) {
	if len(e.Pending) == 0 {
		return nil, nil, fmt.Errorf("core: the pending connection list is empty")
	}
	from := e.Pending[0].From
	conns := e.Pending
	e.Pending = nil
	return from, conns, nil
}

// facingSide returns the side of box a that faces box b (by center
// displacement), or SideNone when the centers coincide.
func facingSide(a, b geom.Rect) geom.Side {
	ca, cb := a.Center(), b.Center()
	dx, dy := cb.X-ca.X, cb.Y-ca.Y
	if dx == 0 && dy == 0 {
		return geom.SideNone
	}
	if abs(dx) >= abs(dy) {
		if dx > 0 {
			return geom.SideRight
		}
		return geom.SideLeft
	}
	if dy > 0 {
		return geom.SideTop
	}
	return geom.SideBottom
}

// connsOnSide returns an instance's connectors on one (parent-space)
// side, ordered along the edge.
func connsOnSide(in *Instance, side geom.Side) []InstConn {
	var out []InstConn
	for _, ic := range in.Connectors() {
		if ic.Side == side {
			out = append(out, ic)
		}
	}
	// order along the edge: by y for vertical edges, x for horizontal
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			var less bool
			if side.Horizontal() {
				less = out[j].At.Y < out[j-1].At.Y
			} else {
				less = out[j].At.X < out[j-1].At.X
			}
			if !less {
				break
			}
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
