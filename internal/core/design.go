package core

import (
	"fmt"
	"sort"
)

// Design is Riot's list of cells: everything that has been read in or
// assembled this session, shown to the user in the cell menu and
// available for instantiation.
type Design struct {
	cells map[string]*Cell
	order []string
	next  int
}

// NewDesign returns an empty design.
func NewDesign() *Design {
	return &Design{cells: map[string]*Cell{}}
}

// AddCell registers a cell under its name. Adding a second cell with
// the same name is an error (rename or delete first).
func (d *Design) AddCell(c *Cell) error {
	if c.Name == "" {
		return fmt.Errorf("core: cell has no name")
	}
	if _, dup := d.cells[c.Name]; dup {
		return fmt.Errorf("core: cell %q already defined", c.Name)
	}
	d.cells[c.Name] = c
	d.order = append(d.order, c.Name)
	return nil
}

// Cell looks a cell up by name.
func (d *Design) Cell(name string) (*Cell, bool) {
	c, ok := d.cells[name]
	return c, ok
}

// CellNames returns the menu of defined cells, in definition order.
func (d *Design) CellNames() []string {
	return append([]string(nil), d.order...)
}

// SortedCellNames returns cell names sorted lexically (for
// deterministic output).
func (d *Design) SortedCellNames() []string {
	names := d.CellNames()
	sort.Strings(names)
	return names
}

// DeleteCell removes a cell from the design. It refuses when another
// cell still instantiates it.
func (d *Design) DeleteCell(name string) error {
	victim, ok := d.cells[name]
	if !ok {
		return fmt.Errorf("core: no cell %q", name)
	}
	for _, other := range d.cells {
		if other == victim {
			continue
		}
		for _, in := range other.Instances {
			if in.Cell == victim {
				return fmt.Errorf("core: cell %q is still used by %q", name, other.Name)
			}
		}
	}
	delete(d.cells, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return nil
}

// RenameCell changes a cell's menu name.
func (d *Design) RenameCell(oldName, newName string) error {
	c, ok := d.cells[oldName]
	if !ok {
		return fmt.Errorf("core: no cell %q", oldName)
	}
	if newName == "" {
		return fmt.Errorf("core: empty cell name")
	}
	if _, dup := d.cells[newName]; dup {
		return fmt.Errorf("core: cell %q already defined", newName)
	}
	delete(d.cells, oldName)
	c.Name = newName
	d.cells[newName] = c
	for i, n := range d.order {
		if n == oldName {
			d.order[i] = newName
			break
		}
	}
	return nil
}

// GenName produces a fresh cell name with the given prefix; Riot uses
// it to name the route and stretch cells it creates.
func (d *Design) GenName(prefix string) string {
	for {
		d.next++
		name := fmt.Sprintf("%s%d", prefix, d.next)
		if _, dup := d.cells[name]; !dup {
			return name
		}
	}
}
