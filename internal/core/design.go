package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Design is Riot's list of cells: everything that has been read in or
// assembled this session, shown to the user in the cell menu and
// available for instantiation.
//
// The cell menu itself (cells/order/next) is not synchronized — a
// server serializes mutating commands with an external lock. The
// snapshot machinery below has its own mutex so any number of readers
// can freeze generations concurrently.
type Design struct {
	cells map[string]*Cell
	order []string
	next  int

	// gen is the design's generation: the highest edit generation any
	// of its editors (or menu operations) have produced. Bumped from the
	// same global counter as editor generations, so generations are
	// unique across a whole process. Accessed atomically.
	gen uint64

	// snapMu guards the copy-on-write snapshot builder. snapGen is the
	// design generation snapB's clones describe.
	snapMu  sync.Mutex
	snapB   *snapBuilder
	snapGen uint64
}

// Generation reports the design's current generation: it changes
// whenever any editor mutates a cell of this design or the menu
// itself changes.
func (d *Design) Generation() uint64 { return atomic.LoadUint64(&d.gen) }

// noteGen records that an edit at generation g touched this design.
func (d *Design) noteGen(g uint64) {
	for {
		cur := atomic.LoadUint64(&d.gen)
		if g <= cur || atomic.CompareAndSwapUint64(&d.gen, cur, g) {
			return
		}
	}
}

// touchMenu bumps the design generation for a menu mutation (cell
// added, deleted or renamed).
func (d *Design) touchMenu() { d.noteGen(editorGen.Add(1)) }

// NewDesign returns an empty design.
func NewDesign() *Design {
	return &Design{cells: map[string]*Cell{}}
}

// AddCell registers a cell under its name. Adding a second cell with
// the same name is an error (rename or delete first).
func (d *Design) AddCell(c *Cell) error {
	if c.Name == "" {
		return fmt.Errorf("core: cell has no name")
	}
	if _, dup := d.cells[c.Name]; dup {
		return fmt.Errorf("core: cell %q already defined", c.Name)
	}
	d.cells[c.Name] = c
	d.order = append(d.order, c.Name)
	d.touchMenu()
	return nil
}

// Cell looks a cell up by name.
func (d *Design) Cell(name string) (*Cell, bool) {
	c, ok := d.cells[name]
	return c, ok
}

// CellNames returns the menu of defined cells, in definition order.
func (d *Design) CellNames() []string {
	return append([]string(nil), d.order...)
}

// SortedCellNames returns cell names sorted lexically (for
// deterministic output).
func (d *Design) SortedCellNames() []string {
	names := d.CellNames()
	sort.Strings(names)
	return names
}

// DeleteCell removes a cell from the design. It refuses when another
// cell still instantiates it.
func (d *Design) DeleteCell(name string) error {
	victim, ok := d.cells[name]
	if !ok {
		return fmt.Errorf("core: no cell %q", name)
	}
	for _, other := range d.cells {
		if other == victim {
			continue
		}
		for _, in := range other.Instances {
			if in.Cell == victim {
				return fmt.Errorf("core: cell %q is still used by %q", name, other.Name)
			}
		}
	}
	delete(d.cells, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.touchMenu()
	return nil
}

// RenameCell changes a cell's menu name.
func (d *Design) RenameCell(oldName, newName string) error {
	c, ok := d.cells[oldName]
	if !ok {
		return fmt.Errorf("core: no cell %q", oldName)
	}
	if newName == "" {
		return fmt.Errorf("core: empty cell name")
	}
	if _, dup := d.cells[newName]; dup {
		return fmt.Errorf("core: cell %q already defined", newName)
	}
	delete(d.cells, oldName)
	c.Name = newName
	c.MarkMutated() // snapshot clones copy the name; force a re-clone
	d.cells[newName] = c
	for i, n := range d.order {
		if n == oldName {
			d.order[i] = newName
			break
		}
	}
	d.touchMenu()
	return nil
}

// GenName produces a fresh cell name with the given prefix; Riot uses
// it to name the route and stretch cells it creates.
func (d *Design) GenName(prefix string) string {
	for {
		d.next++
		name := fmt.Sprintf("%s%d", prefix, d.next)
		if _, dup := d.cells[name]; !dup {
			return name
		}
	}
}
