package core

import (
	"fmt"
	"sort"

	"riot/internal/geom"
	"riot/internal/river"
	"riot/internal/rules"
)

// RouteOptions tunes the ROUTE connection specification command.
type RouteOptions struct {
	// NoMove routes "without moving the from instance... used to make
	// connections between two instances which are already positioned
	// and should not move". The route must fit the existing gap.
	NoMove bool
	// CellName names the generated route cell; empty generates one.
	CellName string
}

// RouteResult reports what the ROUTE command built.
type RouteResult struct {
	RouteInst *Instance     // the placed route-cell instance
	River     *river.Result // the raw routing result
	Moved     geom.Point    // translation applied to the from instance
	Warnings  []string
}

// RouteConnect executes the ROUTE connection specification command:
// "the connectors on the from and to instances are used to specify
// starting and ending locations of the route... Riot then makes a new
// Sticks cell containing the river route wires and places an instance
// of that route cell next to the to instance. The from instance is
// moved to abut the other side of the river route instance, thereby
// using the least amount of space possible for the route."
//
// The pending connection list is consumed.
func (e *Editor) RouteConnect(opt RouteOptions) (*RouteResult, error) {
	e.touch()
	from, conns, err := e.pendingFrom()
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		if c.FromConn == "" {
			return nil, fmt.Errorf("core: ROUTE needs connector links, but the pending list has a pure abut link")
		}
	}

	// resolve both ends of every link and establish the channel side
	pairs := make([]connPair, len(conns))
	var toSide geom.Side
	for i, c := range conns {
		fc, err := from.Connector(c.FromConn)
		if err != nil {
			return nil, err
		}
		tc, err := c.To.Connector(c.ToConn)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			toSide = tc.Side
		} else if tc.Side != toSide {
			return nil, fmt.Errorf("core: ROUTE connections leave the to instances on mixed sides (%v and %v)", toSide, tc.Side)
		}
		if fc.Side != toSide.Opposite() {
			return nil, fmt.Errorf("core: %s.%s is on side %v; it must oppose the to connectors on %v",
				from.Name, c.FromConn, fc.Side, toSide)
		}
		pairs[i] = connPair{fc, tc}
	}

	// channel geometry: u runs along the to edge, the channel grows
	// along the edge's outward normal
	horizEdge := toSide.Vertical() // top/bottom edge: u is X
	uOf := func(p geom.Point) int {
		if horizEdge {
			return p.X
		}
		return p.Y
	}
	// the channel floor sits on the to edge; every to instance
	// involved must present that edge at the same coordinate
	edgeCoord, err := channelFloor(pairs, toSide)
	if err != nil {
		return nil, err
	}

	// sort pairs along the edge by to-connector position
	sort.Slice(pairs, func(i, j int) bool { return uOf(pairs[i].tc.At) < uOf(pairs[j].tc.At) })

	// build terminal vectors in lambda, relative to a base coordinate
	base := uOf(pairs[0].tc.At)
	for _, p := range pairs {
		if u := uOf(p.tc.At); u < base {
			base = u
		}
		if u := uOf(p.fc.At); u < base {
			base = u
		}
	}
	bottom := make([]river.Terminal, len(pairs))
	top := make([]river.Terminal, len(pairs))
	for i, p := range pairs {
		bu, err := toLambda(uOf(p.tc.At) - base)
		if err != nil {
			return nil, fmt.Errorf("core: to connector %s.%s: %w", p.tc.Inst.Name, p.tc.Name, err)
		}
		tu, err := toLambda(uOf(p.fc.At) - base)
		if err != nil {
			return nil, fmt.Errorf("core: from connector %s.%s: %w", from.Name, p.fc.Name, err)
		}
		bottom[i] = river.Terminal{Name: fmt.Sprintf("C%d", i), X: bu, Layer: p.tc.Layer, Width: p.tc.Width / rules.Lambda}
		top[i] = river.Terminal{Name: fmt.Sprintf("C%d", i), X: tu, Layer: p.fc.Layer, Width: p.fc.Width / rules.Lambda}
	}

	ropt := river.Options{TracksPerChannel: e.TracksPerChannel}
	ropt.CellName = opt.CellName
	if ropt.CellName == "" {
		ropt.CellName = e.Design.GenName("ROUTE")
	}
	if opt.NoMove {
		gap, err := fixedGap(from, toSide, edgeCoord)
		if err != nil {
			return nil, err
		}
		ropt.ExactHeight, err = toLambda(gap)
		if err != nil {
			return nil, fmt.Errorf("core: gap between instances: %w", err)
		}
	}
	res, err := river.Route(bottom, top, ropt)
	if err != nil {
		return nil, err
	}

	// register the route cell: "the routing cells made in Riot are
	// treated just like other cells"
	routeCell, err := NewLeafFromSticks(res.Cell)
	if err != nil {
		return nil, err
	}
	if err := e.Design.AddCell(routeCell); err != nil {
		return nil, err
	}
	tr := channelTransform(toSide, base, edgeCoord)
	routeInst := &Instance{Name: routeCell.Name, Cell: routeCell, Tr: tr, Nx: 1, Ny: 1}
	e.Cell.Instances = append(e.Cell.Instances, routeInst)
	e.logChange(routeInst.BBox(), false)

	out := &RouteResult{RouteInst: routeInst, River: res}
	if !opt.NoMove {
		// move the from instance to abut the far side of the route:
		// its first connector lands on the route's matching top
		// connector
		rc, err := routeInst.Connector("C0.t")
		if err != nil {
			return nil, err
		}
		// pairs[0] corresponds to terminal C0 after sorting
		fc, err := from.Connector(pairs[0].fc.Name)
		if err != nil {
			return nil, err
		}
		d := rc.At.Sub(fc.At)
		e.MoveInstance(from, d)
		out.Moved = d
	}

	// verify: every pair must now coincide with the route cell's
	// connectors on both sides
	for i, p := range pairs {
		bc, err := routeInst.Connector(fmt.Sprintf("C%d.b", i))
		if err != nil {
			return nil, err
		}
		if bc.At != p.tc.At {
			out.Warnings = append(out.Warnings, fmt.Sprintf(
				"route floor connector C%d does not meet %s.%s (off by %v)",
				i, p.tc.Inst.Name, p.tc.Name, p.tc.At.Sub(bc.At)))
		}
		tcTop, err := routeInst.Connector(fmt.Sprintf("C%d.t", i))
		if err != nil {
			return nil, err
		}
		fc, err := from.Connector(p.fc.Name)
		if err != nil {
			return nil, err
		}
		if tcTop.At != fc.At {
			out.Warnings = append(out.Warnings, fmt.Sprintf(
				"route ceiling connector C%d does not meet %s.%s (off by %v)",
				i, from.Name, p.fc.Name, fc.At.Sub(tcTop.At)))
		}
	}
	e.declareLinks(conns)
	return out, nil
}

// connPair is one resolved pending connection: the from- and
// to-instance connectors being joined.
type connPair struct {
	fc, tc InstConn
}

// channelFloor returns the coordinate of the to edge the channel sits
// on, checking that every to instance presents that edge at the same
// place.
func channelFloor(pairs []connPair, toSide geom.Side) (int, error) {
	coord := func(in *Instance) int {
		b := in.BBox()
		switch toSide {
		case geom.SideTop:
			return b.Max.Y
		case geom.SideBottom:
			return b.Min.Y
		case geom.SideRight:
			return b.Max.X
		default:
			return b.Min.X
		}
	}
	c0 := coord(pairs[0].tc.Inst)
	for _, p := range pairs[1:] {
		if c := coord(p.tc.Inst); c != c0 {
			return 0, fmt.Errorf("core: to instances %q and %q present their %v edges at different positions (%d vs %d); route them separately",
				pairs[0].tc.Inst.Name, p.tc.Inst.Name, toSide, c0, c)
		}
	}
	return c0, nil
}

// fixedGap measures the space available for a no-move route between
// the to edge (at edgeCoord) and the near edge of the from instance.
func fixedGap(from *Instance, toSide geom.Side, edgeCoord int) (int, error) {
	fb := from.BBox()
	var gap int
	switch toSide {
	case geom.SideTop:
		gap = fb.Min.Y - edgeCoord
	case geom.SideBottom:
		gap = edgeCoord - fb.Max.Y
	case geom.SideRight:
		gap = fb.Min.X - edgeCoord
	default:
		gap = edgeCoord - fb.Max.X
	}
	if gap <= 0 {
		return 0, fmt.Errorf("core: no room to route without moving: the instances overlap along the channel")
	}
	return gap, nil
}

// channelTransform places the route cell so that its bottom edge
// (local y=0, u along x) lies on the to edge with local +y pointing
// away from the to instance.
func channelTransform(toSide geom.Side, base, edgeCoord int) geom.Transform {
	switch toSide {
	case geom.SideTop: // channel above: +y outward
		return geom.MakeTransform(geom.R0, geom.Pt(base, edgeCoord))
	case geom.SideBottom: // channel below: mirror y
		return geom.MakeTransform(geom.MXR180, geom.Pt(base, edgeCoord))
	case geom.SideRight: // channel to the right: u along +y, outward +x
		return geom.MakeTransform(geom.MXR270, geom.Pt(edgeCoord, base))
	default: // SideLeft: outward -x
		return geom.MakeTransform(geom.R90, geom.Pt(edgeCoord, base))
	}
}

// toLambda converts centimicrons to lambda, failing on misaligned
// coordinates: Riot's connection operations require everything on the
// lambda grid.
func toLambda(cm int) (int, error) {
	if cm%rules.Lambda != 0 {
		return 0, fmt.Errorf("coordinate %d centimicrons is not on the %d-centimicron lambda grid", cm, rules.Lambda)
	}
	return cm / rules.Lambda, nil
}
