package core
