package core

import (
	"strings"

	"riot/internal/cif"
)

// parseCIFString is a test helper aliasing the cif parser.
func parseCIFString(s string) (*cif.File, error) {
	return cif.Parse(strings.NewReader(s))
}
