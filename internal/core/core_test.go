package core

import (
	"testing"

	"riot/internal/cif"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const L = rules.Lambda

// stickCell builds a 20x10-lambda symbolic leaf cell with connectors on
// all four sides:
//
//	        T1        T2
//	   +----+---------+----+ 10
//	 IN|                   |OUT   (metal, mid height)
//	   +----+---------+----+ 0
//	        B1        B2
//	   0    5         15   20
func stickCell(name string) *sticks.Cell {
	return &sticks.Cell{
		Name:   name,
		Box:    geom.R(0, 0, 20, 10),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 0, Y: 5}, {X: 20, Y: 5}}},
			{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 5, Y: 0}, {X: 5, Y: 10}}},
			{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 15, Y: 0}, {X: 15, Y: 10}}},
		},
		Connectors: []sticks.Connector{
			{Name: "IN", At: geom.Pt(0, 5), Layer: geom.NM, Width: 2, Side: geom.SideLeft},
			{Name: "OUT", At: geom.Pt(20, 5), Layer: geom.NM, Width: 2, Side: geom.SideRight},
			{Name: "B1", At: geom.Pt(5, 0), Layer: geom.NM, Width: 2, Side: geom.SideBottom},
			{Name: "B2", At: geom.Pt(15, 0), Layer: geom.NM, Width: 2, Side: geom.SideBottom},
			{Name: "T1", At: geom.Pt(5, 10), Layer: geom.NM, Width: 2, Side: geom.SideTop},
			{Name: "T2", At: geom.Pt(15, 10), Layer: geom.NM, Width: 2, Side: geom.SideTop},
		},
	}
}

func mustLeaf(t *testing.T, name string) *Cell {
	t.Helper()
	c, err := NewLeafFromSticks(stickCell(name))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newEditor(t *testing.T) (*Design, *Editor) {
	t.Helper()
	d := NewDesign()
	top := NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func addLeaf(t *testing.T, d *Design, name string) *Cell {
	t.Helper()
	c := mustLeaf(t, name)
	if err := d.AddCell(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLeafCellBasics(t *testing.T) {
	c := mustLeaf(t, "A")
	if c.Kind != LeafSticks {
		t.Errorf("kind = %v", c.Kind)
	}
	if c.BBox() != geom.R(0, 0, 20*L, 10*L) {
		t.Errorf("bbox = %v", c.BBox())
	}
	conns := c.Connectors()
	if len(conns) != 6 {
		t.Fatalf("connectors = %d", len(conns))
	}
	out, ok := c.ConnectorByName("OUT")
	if !ok || out.At != geom.Pt(20*L, 5*L) || out.Side != geom.SideRight || out.Width != 2*L {
		t.Errorf("OUT = %+v", out)
	}
	if c.CountLeaves() != 1 {
		t.Errorf("CountLeaves = %d", c.CountLeaves())
	}
}

func TestLeafCellFromCIF(t *testing.T) {
	f, err := cif.ParseString("DS 1; 9 PAD; L NM; B 5000 5000 2500 2500; 94 P 2500 0 NM 1000; DF; E")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewLeafFromCIF(f, f.SymbolByID(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "PAD" || c.Kind != LeafCIF {
		t.Errorf("cell = %q %v", c.Name, c.Kind)
	}
	if c.BBox() != geom.R(0, 0, 5000, 5000) {
		t.Errorf("bbox = %v", c.BBox())
	}
	p, ok := c.ConnectorByName("P")
	if !ok || p.Side != geom.SideBottom || p.Width != 1000 {
		t.Errorf("P = %+v", p)
	}
}

func TestLeafCellFromCIFDuplicateConnector(t *testing.T) {
	f, _ := cif.ParseString("DS 1; L NM; B 4 4 2 2; 94 P 0 0 NM 2; 94 P 4 4 NM 2; DF; E")
	if _, err := NewLeafFromCIF(f, f.SymbolByID(1)); err == nil {
		t.Error("accepted duplicate connectors")
	}
}

func TestInstanceTransformedConnectors(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	in, err := e.CreateInstance("A", "a1", geom.MakeTransform(geom.R90, geom.Pt(100*L, 0)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// R90 rotates the right-side OUT connector to the top
	out, err := in.Connector("OUT")
	if err != nil {
		t.Fatal(err)
	}
	if out.Side != geom.SideTop {
		t.Errorf("rotated OUT side = %v", out.Side)
	}
	// position: R90(20L,5L) = (-5L,20L) + (100L,0) = (95L,20L)
	if out.At != geom.Pt(95*L, 20*L) {
		t.Errorf("rotated OUT at %v", out.At)
	}
}

func TestArrayConnectorExposure(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	// 3-wide row, abutting (default spacing = cell width)
	in, err := e.CreateInstance("A", "row", geom.Identity, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sx != 20*L {
		t.Errorf("default spacing = %d, want %d", in.Sx, 20*L)
	}
	conns := in.Connectors()
	// visible: IN from copy 0, OUT from copy 2, B1/B2/T1/T2 from all 3
	names := map[string]bool{}
	for _, c := range conns {
		names[c.Name] = true
	}
	for _, want := range []string{"IN[0]", "OUT[2]", "B1[0]", "B2[2]", "T1[1]"} {
		if !names[want] {
			t.Errorf("missing connector %s (have %v)", want, names)
		}
	}
	for _, banned := range []string{"IN[1]", "IN[2]", "OUT[0]", "OUT[1]"} {
		if names[banned] {
			t.Errorf("interior connector %s exposed", banned)
		}
	}
	if len(conns) != 2+3*4 {
		t.Errorf("connector count = %d, want %d", len(conns), 2+3*4)
	}
	// array abuts: copy 1's IN position equals copy 0's OUT position
	if in.BBox() != geom.R(0, 0, 60*L, 10*L) {
		t.Errorf("array bbox = %v", in.BBox())
	}
}

func TestArray2DNaming(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	in, err := e.CreateInstance("A", "grid", geom.Identity, 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Connector("IN[0,1]"); err != nil {
		t.Errorf("2D naming: %v", err)
	}
	if _, err := in.Connector("IN[1,0]"); err == nil {
		t.Error("interior-facing 2D connector exposed")
	}
}

func TestHierarchyCycleRejected(t *testing.T) {
	d, e := newEditor(t)
	sub := NewComposition("SUB")
	if err := d.AddCell(sub); err != nil {
		t.Fatal(err)
	}
	// SUB contains TOP
	se, _ := NewEditor(d, sub)
	addLeaf(t, d, "A")
	if _, err := se.CreateInstance("TOP", "", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	// TOP may not now contain SUB
	if _, err := e.CreateInstance("SUB", "", geom.Identity, 1, 1, 0, 0); err == nil {
		t.Error("hierarchy cycle accepted")
	}
	if _, err := e.CreateInstance("TOP", "", geom.Identity, 1, 1, 0, 0); err == nil {
		t.Error("self-instantiation accepted")
	}
}

func TestDesignRegistry(t *testing.T) {
	d := NewDesign()
	a := mustLeaf(t, "A")
	if err := d.AddCell(a); err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(mustLeaf(t, "A")); err == nil {
		t.Error("duplicate cell name accepted")
	}
	if err := d.RenameCell("A", "B"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Cell("A"); ok {
		t.Error("old name still resolves")
	}
	if c, ok := d.Cell("B"); !ok || c != a {
		t.Error("new name does not resolve")
	}
	top := NewComposition("TOP")
	top.Instances = append(top.Instances, NewInstance("i", a, geom.Identity))
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteCell("B"); err == nil {
		t.Error("deleted a cell still in use")
	}
	if err := d.DeleteCell("TOP"); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteCell("B"); err != nil {
		t.Fatal(err)
	}
	if n := d.GenName("ROUTE"); n == "" {
		t.Error("GenName empty")
	}
}

func TestConnectionValidation(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(40*L, 0)), 1, 1, 0, 0)

	// OUT (right) to IN (left): opposed, same layer: OK
	if err := e.AddConnection(b, "IN", a, "OUT"); err != nil {
		t.Fatalf("valid connection rejected: %v", err)
	}
	if len(e.Pending) != 1 {
		t.Fatalf("pending = %d", len(e.Pending))
	}
	// not opposed: OUT to OUT
	if err := e.AddConnection(b, "OUT", a, "OUT"); err == nil {
		t.Error("non-opposed connection accepted")
	}
	// self connection
	if err := e.AddConnection(a, "IN", a, "OUT"); err == nil {
		t.Error("self connection accepted")
	}
	// unknown connector
	if err := e.AddConnection(b, "NOPE", a, "OUT"); err == nil {
		t.Error("unknown connector accepted")
	}
	// one-to-many: connections from a different from-instance rejected
	if err := e.AddConnection(a, "IN", b, "OUT"); err == nil {
		t.Error("second from-instance accepted (one-to-many violated)")
	}
	// same from is fine
	if err := e.AddConnection(b, "B1", a, "T1"); err == nil {
		// B1 bottom vs T1 top: opposed; but b is to the right, still legal
	} else {
		t.Errorf("second connection from same instance rejected: %v", err)
	}
	e.ClearConnections()
	if len(e.Pending) != 0 {
		t.Error("ClearConnections failed")
	}
}

func TestConnectionLayerMismatch(t *testing.T) {
	d, e := newEditor(t)
	// build a cell with a poly connector opposite A's metal one
	sc := stickCell("P")
	sc.Connectors[0].Layer = geom.NP // IN is poly now
	sc.Wires = append(sc.Wires, sticks.Wire{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 0, Y: 5}, {X: 3, Y: 5}}})
	pc, err := NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(pc); err != nil {
		t.Fatal(err)
	}
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	p, _ := e.CreateInstance("P", "p", geom.MakeTransform(geom.R0, geom.Pt(40*L, 0)), 1, 1, 0, 0)
	if err := e.AddConnection(p, "IN", a, "OUT"); err == nil {
		t.Error("cross-layer connection accepted")
	}
}

func TestAbutPlain(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(100*L, 33*L)), 1, 1, 0, 0)
	if err := e.AddAbutLink(b, a); err != nil {
		t.Fatal(err)
	}
	warns, err := e.Abut(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	// b was right of a: b's left edge touches a's right edge, bottoms align
	if b.BBox().Min.X != a.BBox().Max.X {
		t.Errorf("edges do not touch: %v vs %v", b.BBox(), a.BBox())
	}
	if b.BBox().Min.Y != a.BBox().Min.Y {
		t.Errorf("bottoms do not align: %v vs %v", b.BBox(), a.BBox())
	}
	if len(e.Pending) != 0 {
		t.Error("pending list not consumed")
	}
}

func TestAbutVertical(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(3*L, 90*L)), 1, 1, 0, 0)
	if err := e.AddAbutLink(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Abut(false); err != nil {
		t.Fatal(err)
	}
	if b.BBox().Min.Y != a.BBox().Max.Y {
		t.Errorf("vertical edges do not touch")
	}
	if b.BBox().Min.X != a.BBox().Min.X {
		t.Errorf("left edges do not align")
	}
}

func TestAbutWithConnectors(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// b placed right of a, vertically offset; connecting b.IN to a.OUT
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(77*L, 13*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "IN", a, "OUT"); err != nil {
		t.Fatal(err)
	}
	warns, err := e.Abut(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	bin, _ := b.Connector("IN")
	aout, _ := a.Connector("OUT")
	if bin.At != aout.At {
		t.Errorf("connectors do not coincide: %v vs %v", bin.At, aout.At)
	}
	// the connection is positional only: moving b destroys it silently
	e.MoveInstance(b, geom.Pt(5*L, 0))
	bin, _ = b.Connector("IN")
	if bin.At == aout.At {
		t.Error("connector still coincides after move")
	}
}

func TestAbutWarningOnMismatch(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(70*L, 0)), 1, 1, 0, 0)
	// B1/B2 on b's bottom vs T1/T2 on a's top, but request crossed
	// pairs that a single translation cannot satisfy
	if err := e.AddConnection(b, "B1", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a, "T1"); err != nil {
		t.Fatal(err)
	}
	warns, err := e.Abut(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 {
		t.Errorf("want 1 warning, got %v", warns)
	}
}

func TestAbutOverlapSharesRail(t *testing.T) {
	d, e := newEditor(t)
	// cell with an inset power connector: overlap abutment should
	// overlap the bounding boxes to make the connectors coincide
	sc := stickCell("R")
	sc.Connectors = append(sc.Connectors, sticks.Connector{
		Name: "VDD", At: geom.Pt(19, 5), Layer: geom.NM, Width: 2, Side: geom.SideNone,
	})
	sc2 := stickCell("S")
	sc2.Connectors = append(sc2.Connectors, sticks.Connector{
		Name: "VDD", At: geom.Pt(1, 5), Layer: geom.NM, Width: 2, Side: geom.SideNone,
	})
	rc, _ := NewLeafFromSticks(sc)
	scell, _ := NewLeafFromSticks(sc2)
	if err := d.AddCell(rc); err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(scell); err != nil {
		t.Fatal(err)
	}
	r, _ := e.CreateInstance("R", "r", geom.Identity, 1, 1, 0, 0)
	s, _ := e.CreateInstance("S", "s", geom.MakeTransform(geom.R0, geom.Pt(60*L, 0)), 1, 1, 0, 0)
	// interior connectors are not "opposed", so use the low-level list
	// the way the overlap option does: force the link in directly
	e.Pending = append(e.Pending, Connection{From: s, FromConn: "VDD", To: r, ToConn: "VDD"})
	warns, err := e.Abut(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	sv, _ := s.Connector("VDD")
	rv, _ := r.Connector("VDD")
	if sv.At != rv.At {
		t.Errorf("shared connectors do not coincide: %v vs %v", sv.At, rv.At)
	}
	if !s.BBox().Overlaps(r.BBox()) {
		t.Error("overlap abutment did not overlap the instances")
	}
}

func TestAbutEmptyPending(t *testing.T) {
	_, e := newEditor(t)
	if _, err := e.Abut(false); err == nil {
		t.Error("abut with empty pending list accepted")
	}
}

func TestDeleteInstanceCleansPending(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(50*L, 0)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "IN", a, "OUT"); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteInstance(a); err != nil {
		t.Fatal(err)
	}
	if len(e.Pending) != 0 {
		t.Error("pending connection to deleted instance survives")
	}
	if len(e.Cell.Instances) != 1 {
		t.Error("instance not removed")
	}
	if err := e.DeleteInstance(a); err == nil {
		t.Error("double delete accepted")
	}
}

func TestOrientInstanceKeepsCorner(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.MakeTransform(geom.R0, geom.Pt(10*L, 20*L)), 1, 1, 0, 0)
	before := a.BBox()
	e.OrientInstance(a, geom.R90)
	after := a.BBox()
	if before.Min != after.Min {
		t.Errorf("orientation moved the corner: %v -> %v", before.Min, after.Min)
	}
	if after.W() != before.H() || after.H() != before.W() {
		t.Errorf("rotation did not swap extents: %v -> %v", before, after)
	}
}

func TestCompositionConnectorsOnBBox(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(20*L, 0)), 1, 1, 0, 0)
	_ = a
	_ = b
	conns := e.Cell.Connectors()
	names := map[string]geom.Side{}
	for _, c := range conns {
		names[c.Name] = c.Side
	}
	// a.IN on the left edge, b.OUT on the right edge are exported;
	// a.OUT and b.IN coincide in the interior and are not
	if names["a.IN"] != geom.SideLeft {
		t.Errorf("a.IN side = %v", names["a.IN"])
	}
	if names["b.OUT"] != geom.SideRight {
		t.Errorf("b.OUT side = %v", names["b.OUT"])
	}
	if _, exported := names["a.OUT"]; exported {
		t.Error("interior connector a.OUT exported")
	}
	// bottom/top connectors of both instances are on the bbox
	if names["a.B1"] != geom.SideBottom || names["b.T2"] != geom.SideTop {
		t.Error("bottom/top connectors not exported")
	}
}

func TestManyToManyViaWrapperCell(t *testing.T) {
	// The paper: "A many-to-many connection can still be made by
	// defining a cell which contains one of the sets of cells, and
	// connecting that one to the other many."
	d, e := newEditor(t)
	addLeaf(t, d, "A")

	// wrapper composition holding two cells side by side
	wrap := NewComposition("PAIR")
	if err := d.AddCell(wrap); err != nil {
		t.Fatal(err)
	}
	we, _ := NewEditor(d, wrap)
	w1, _ := we.CreateInstance("A", "w1", geom.Identity, 1, 1, 0, 0)
	w2, _ := we.CreateInstance("A", "w2", geom.MakeTransform(geom.R0, geom.Pt(20*L, 0)), 1, 1, 0, 0)
	_, _ = w1, w2

	// now TOP: one instance of PAIR connects to two separate A's
	p, _ := e.CreateInstance("PAIR", "p", geom.MakeTransform(geom.R0, geom.Pt(0, 50*L)), 1, 1, 0, 0)
	a1, _ := e.CreateInstance("A", "a1", geom.Identity, 1, 1, 0, 0)
	a2, _ := e.CreateInstance("A", "a2", geom.MakeTransform(geom.R0, geom.Pt(20*L, 0)), 1, 1, 0, 0)

	// p's bottom connectors expose w1.B1... over both wrapped cells
	if err := e.AddConnection(p, "w1.B1", a1, "T1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(p, "w2.B2", a2, "T2"); err != nil {
		t.Fatal(err)
	}
	warns, err := e.Abut(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	pc, _ := p.Connector("w1.B1")
	ac, _ := a1.Connector("T1")
	if pc.At != ac.At {
		t.Errorf("many-to-many abutment failed: %v vs %v", pc.At, ac.At)
	}
}
