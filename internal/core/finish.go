package core

import (
	"fmt"
	"sort"

	"riot/internal/geom"
	"riot/internal/river"
	"riot/internal/rules"
)

// BringOut finishes a cell by exporting interior connectors: "the
// route command can be used to 'bring out' connectors from the inside
// of the cell to the edge of the composition cell. When an attempt is
// made to route the connectors on an instance past the bounding box of
// the cell, a simple straight-line route cell is made for those
// connectors to the edge of the cell, and an instance of that cell is
// placed to make the connection."
//
// The named connectors of the instance must sit on the instance edge
// facing the requested cell side. The generated straight-line route
// cell reaches exactly to the current bounding-box edge, so the
// brought-out connectors appear as connectors of the composition cell.
func (e *Editor) BringOut(in *Instance, connNames []string, side geom.Side) (*Instance, error) {
	e.touch()
	if len(connNames) == 0 {
		return nil, fmt.Errorf("core: BringOut needs at least one connector")
	}
	if side == geom.SideNone {
		return nil, fmt.Errorf("core: BringOut needs a cell side")
	}
	cellBox := e.Cell.BBox()
	var ics []InstConn
	for _, name := range connNames {
		ic, err := in.Connector(name)
		if err != nil {
			return nil, err
		}
		if ic.Side != side {
			return nil, fmt.Errorf("core: connector %s.%s is on side %v, not %v", in.Name, name, ic.Side, side)
		}
		ics = append(ics, ic)
	}

	// distance from the instance edge to the cell edge
	ib := in.BBox()
	var gap int
	switch side {
	case geom.SideTop:
		gap = cellBox.Max.Y - ib.Max.Y
	case geom.SideBottom:
		gap = ib.Min.Y - cellBox.Min.Y
	case geom.SideRight:
		gap = cellBox.Max.X - ib.Max.X
	case geom.SideLeft:
		gap = ib.Min.X - cellBox.Min.X
	}
	if gap < 0 {
		return nil, fmt.Errorf("core: %s pokes %d past the cell's %v edge; no room for a bring-out route", in.Name, -gap, side)
	}
	if gap == 0 {
		return nil, nil // already on the edge; nothing to do
	}
	gapL, err := toLambda(gap)
	if err != nil {
		return nil, fmt.Errorf("core: cell edge: %w", err)
	}

	// straight route: same u at both ends
	uOf := func(p geom.Point) int {
		if side.Vertical() {
			return p.X
		}
		return p.Y
	}
	sort.Slice(ics, func(i, j int) bool { return uOf(ics[i].At) < uOf(ics[j].At) })
	base := uOf(ics[0].At)
	terms := make([]river.Terminal, len(ics))
	for i, ic := range ics {
		u, err := toLambda(uOf(ic.At) - base)
		if err != nil {
			return nil, fmt.Errorf("core: connector %s.%s: %w", in.Name, ic.Name, err)
		}
		terms[i] = river.Terminal{Name: fmt.Sprintf("C%d", i), X: u, Layer: ic.Layer, Width: ic.Width / rules.Lambda}
	}
	res, err := river.Route(terms, terms, river.Options{
		CellName:    e.Design.GenName("EDGE"),
		ExactHeight: gapL,
	})
	if err != nil {
		return nil, err
	}
	routeCell, err := NewLeafFromSticks(res.Cell)
	if err != nil {
		return nil, err
	}
	if err := e.Design.AddCell(routeCell); err != nil {
		return nil, err
	}

	// place the route with its floor on the instance edge, growing
	// toward the cell edge — the floor side here is the instance's own
	// side, so the channel transform uses it directly
	var edgeCoord int
	switch side {
	case geom.SideTop:
		edgeCoord = ib.Max.Y
	case geom.SideBottom:
		edgeCoord = ib.Min.Y
	case geom.SideRight:
		edgeCoord = ib.Max.X
	default:
		edgeCoord = ib.Min.X
	}
	tr := channelTransform(side, base, edgeCoord)
	routeInst := &Instance{Name: routeCell.Name, Cell: routeCell, Tr: tr, Nx: 1, Ny: 1}
	e.Cell.Instances = append(e.Cell.Instances, routeInst)
	e.logChange(routeInst.BBox(), false)

	// sanity: the route floor must meet the instance connectors
	for i, ic := range ics {
		bc, err := routeInst.Connector(fmt.Sprintf("C%d.b", i))
		if err != nil {
			return nil, err
		}
		if bc.At != ic.At {
			return nil, fmt.Errorf("core: internal: bring-out floor %d at %v does not meet %s.%s at %v",
				i, bc.At, in.Name, ic.Name, ic.At)
		}
	}
	return routeInst, nil
}
