package core

import (
	"testing"

	"riot/internal/geom"
)

// TestSnapshotIsolation pins the tentpole contract: a snapshot is a
// frozen view of one generation, unaffected by edits made after it.
func TestSnapshotIsolation(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "L")
	in, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	snap := e.Snapshot()
	if snap.Gen != e.Generation() {
		t.Fatalf("snapshot gen %d != editor gen %d", snap.Gen, e.Generation())
	}
	if snap.Cell == e.Cell {
		t.Fatal("composition snapshot must be a clone, not the live cell")
	}
	if snap.Cell.Origin() != e.Cell {
		t.Fatalf("clone origin = %p, want live cell %p", snap.Cell.Origin(), e.Cell)
	}
	frozen := snap.Cell.Instances[0]
	if frozen.Cell != in.Cell {
		t.Fatal("leaf cells must be shared, not cloned")
	}
	before := frozen.Tr

	e.MoveInstance(in, geom.Pt(500, 700))
	if frozen.Tr != before {
		t.Fatalf("edit after snapshot moved the frozen instance: %v -> %v", before, frozen.Tr)
	}
	if snap.Cell.Instances[0] != frozen {
		t.Fatal("frozen instance list changed under the snapshot")
	}

	snap2 := e.Snapshot()
	if snap2.Gen <= snap.Gen {
		t.Fatalf("generation did not advance: %d -> %d", snap.Gen, snap2.Gen)
	}
	if snap2.Cell.Instances[0].Tr == before {
		t.Fatal("new snapshot must see the move")
	}
}

// TestSnapshotPointerReuse pins the cache-warming rules: an unchanged
// generation returns the identical snapshot, and across generations
// untouched instances keep their clone pointers so pointer-keyed
// verification caches splice.
func TestSnapshotPointerReuse(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "L")
	a, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CreateInstance("L", "b", geom.Translate(geom.Pt(40*L, 0)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = b

	s1 := e.Snapshot()
	if s2 := e.Snapshot(); s2 != s1 {
		t.Fatal("unchanged generation must return the cached snapshot")
	}

	e.MoveInstance(a, geom.Pt(0, 30*L))
	s2 := e.Snapshot()
	if s2.Cell == s1.Cell {
		t.Fatal("an edit must produce a fresh clone of the edited cell")
	}
	if s2.Cell.Instances[0] == s1.Cell.Instances[0] {
		t.Fatal("the moved instance must get a fresh clone")
	}
	if s2.Cell.Instances[1] != s1.Cell.Instances[1] {
		t.Fatal("the untouched instance must keep its clone pointer across generations")
	}
}

// TestSnapshotSubtreeReuse builds a two-level hierarchy through two
// editors of one design and checks an edit to the top cell leaves the
// untouched sub-composition's clone (and its instances) shared with the
// previous generation.
func TestSnapshotSubtreeReuse(t *testing.T) {
	d := NewDesign()
	addLeaf(t, d, "L")
	sub := NewComposition("SUB")
	if err := d.AddCell(sub); err != nil {
		t.Fatal(err)
	}
	es, err := NewEditor(d, sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.CreateInstance("L", "x", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	top := NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	et, err := NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	in, err := et.CreateInstance("SUB", "s", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	s1 := et.Snapshot()
	subClone := s1.Cell.Instances[0].Cell
	if subClone == sub {
		t.Fatal("sub-composition must be cloned")
	}

	et.MoveInstance(in, geom.Pt(10*L, 0))
	s2 := et.Snapshot()
	if s2.Cell.Instances[0].Cell != subClone {
		t.Fatal("untouched sub-composition must keep its clone across top-cell edits")
	}

	// an edit inside SUB re-clones SUB (and TOP above it)
	es.MoveInstance(es.Cell.Instances[0], geom.Pt(0, 5*L))
	s3 := et.Snapshot()
	if s3.Cell.Instances[0].Cell == subClone {
		t.Fatal("edited sub-composition must re-clone")
	}
	if s3.Cell.Instances[0].Cell.Origin() != sub {
		t.Fatal("re-clone must keep the live origin")
	}
}

// TestSnapshotDeclaredRemap checks declared connections travel into the
// snapshot with From/To remapped onto the frozen clone's instances.
func TestSnapshotDeclaredRemap(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "L")
	a, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CreateInstance("L", "b", geom.Translate(geom.Pt(40*L, 0)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Declare(b, "IN", a, "OUT"); err != nil {
		t.Fatal(err)
	}

	snap := e.Snapshot()
	if len(snap.Declared) != 1 {
		t.Fatalf("declared = %d, want 1", len(snap.Declared))
	}
	cn := snap.Declared[0]
	if cn.From == b || cn.To == a {
		t.Fatal("snapshot declared records must not reference live instances")
	}
	if cn.From != snap.Cell.Instances[1] || cn.To != snap.Cell.Instances[0] {
		t.Fatal("snapshot declared records must reference the frozen clone's instances")
	}
	if cn.FromConn != "IN" || cn.ToConn != "OUT" {
		t.Fatalf("connector names lost in remap: %q %q", cn.FromConn, cn.ToConn)
	}
}

// TestSnapshotChangesSince checks the snapshot's change log answers
// exactly as the editor's did at freeze time, even after further edits.
func TestSnapshotChangesSince(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "L")
	g0 := e.Generation()
	in, err := e.CreateInstance("L", "a", geom.Identity, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	wantDirty, wantOK := e.ChangesSince(g0)
	gotDirty, gotOK := snap.ChangesSince(g0)
	if wantOK != gotOK || len(wantDirty) != len(gotDirty) {
		t.Fatalf("snapshot ChangesSince = %v,%v; editor said %v,%v", gotDirty, gotOK, wantDirty, wantOK)
	}

	// later edits must not leak into the frozen log
	e.MoveInstance(in, geom.Pt(900, 900))
	after, ok := snap.ChangesSince(g0)
	if !ok || len(after) != len(wantDirty) {
		t.Fatalf("frozen log changed after an edit: %v,%v", after, ok)
	}
	// and a generation past the snapshot is unanswerable from it
	if _, ok := snap.ChangesSince(e.Generation()); ok {
		t.Fatal("snapshot must not answer for generations after its own")
	}
}

// TestGenerationsGloballyUnique pins that two editors over two designs
// never mint the same generation — the property that lets a shared
// store key verdicts by generation across sessions.
func TestGenerationsGloballyUnique(t *testing.T) {
	d1, e1 := newEditor(t)
	d2, e2 := newEditor(t)
	addLeaf(t, d1, "L")
	addLeaf(t, d2, "L")
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		var err error
		if i%2 == 0 {
			_, err = e1.CreateInstance("L", instName("a", i), geom.Identity, 1, 1, 0, 0)
		} else {
			_, err = e2.CreateInstance("L", instName("b", i), geom.Identity, 1, 1, 0, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []uint64{e1.Generation(), e2.Generation()} {
			if g == 0 {
				continue
			}
			seen[g] = true
		}
	}
	if e1.Generation() == e2.Generation() {
		t.Fatalf("two editors share generation %d", e1.Generation())
	}
}

func instName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
