package core

import (
	"testing"

	"riot/internal/cif"
	"riot/internal/geom"
)

func TestExportCIFHierarchy(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	if _, err := e.CreateInstance("A", "one", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("A", "row", geom.MakeTransform(geom.R90, geom.Pt(60*L, 0)), 3, 2, 20*L, 10*L); err != nil {
		t.Fatal(err)
	}
	f, err := ExportCIF(e.Cell)
	if err != nil {
		t.Fatal(err)
	}
	// the leaf is shared: one symbol for A, one for TOP
	if len(f.Symbols) != 2 {
		t.Fatalf("symbols = %d", len(f.Symbols))
	}
	topSym := f.SymbolByName("TOP")
	if topSym == nil {
		t.Fatal("TOP symbol missing")
	}
	// arrays expand copy by copy: 1 + 3*2 calls
	calls := 0
	for _, el := range topSym.Elements {
		if _, ok := el.(cif.Call); ok {
			calls++
		}
	}
	if calls != 7 {
		t.Errorf("calls = %d, want 7", calls)
	}
	// geometry bbox preserved through export
	box, err := f.SymbolBBox(topSym.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Cell.BBox()
	if !box.ContainsRect(want.Inset(2*L)) {
		t.Errorf("export bbox %v does not cover cell bbox %v", box, want)
	}
	// the output round-trips through the parser
	if _, err := cif.ParseString(cif.String(f)); err != nil {
		t.Errorf("exported CIF does not parse: %v", err)
	}
}

func TestExportCIFLeafWithNestedCalls(t *testing.T) {
	// a CIF leaf whose symbol calls a sub-symbol must drag the
	// sub-symbol along, renumbered
	src := `
DS 1; L NM; B 1000 1000 500 500; DF;
DS 2; 9 PAD; C 1 T 0 0; C 1 T 2000 0; 94 P 500 0 NM 500; DF;
E`
	f, err := parseCIFString(src)
	if err != nil {
		t.Fatal(err)
	}
	pad, err := NewLeafFromCIF(f, f.SymbolByName("PAD"))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDesign()
	if err := d.AddCell(pad); err != nil {
		t.Fatal(err)
	}
	top := NewComposition("TOP")
	top.Instances = append(top.Instances, NewInstance("p", pad, geom.Identity))
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	out, err := ExportCIF(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Symbols) != 3 { // sub + PAD + TOP
		t.Fatalf("symbols = %d", len(out.Symbols))
	}
	// every call resolves inside the output
	for _, s := range out.Symbols {
		for _, el := range s.Elements {
			if call, ok := el.(cif.Call); ok {
				if out.SymbolByID(call.SymbolID) == nil {
					t.Errorf("dangling call of %d", call.SymbolID)
				}
			}
		}
	}
	if _, err := out.SymbolBBox(out.SymbolByName("TOP").ID); err != nil {
		t.Errorf("bbox: %v", err)
	}
}

func TestExportCIFConnectorsCarried(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	if _, err := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	f, err := ExportCIF(e.Cell)
	if err != nil {
		t.Fatal(err)
	}
	topSym := f.SymbolByName("TOP")
	if len(topSym.Connectors()) == 0 {
		t.Error("finished connectors not exported")
	}
}

func TestExportCIFSharedLeafOnce(t *testing.T) {
	// two compositions sharing a leaf: the leaf exports once
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	sub := NewComposition("SUB")
	if err := d.AddCell(sub); err != nil {
		t.Fatal(err)
	}
	se, _ := NewEditor(d, sub)
	if _, err := se.CreateInstance("A", "x", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("A", "direct", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("SUB", "nested", geom.MakeTransform(geom.R0, geom.Pt(40*L, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	f, err := ExportCIF(e.Cell)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, s := range f.Symbols {
		if s.Name == "A" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("leaf exported %d times", count)
	}
}
