package core

import "riot/internal/geom"

// Snapshot isolation.
//
// A server wants many readers (verifiers, plotters, other sessions)
// working against a frozen view of a design while its editors keep
// mutating. Copying the whole hierarchy per generation would throw
// away the incremental pipeline: every cache downstream is keyed on
// *Cell / *Instance pointers, and fresh pointers every generation mean
// a cold cache every run.
//
// The builder below therefore clones copy-on-write, with two rules:
//
//   - Leaf cells are never cloned. Their payloads only change under an
//     editor's Invalidate (which stamps a new revision), so a frozen
//     generation can share the live leaf pointer, and every cache keyed
//     on leaf identity (hier certificates, LVS leaf references, signer
//     memos) keeps hitting across generations and across sessions.
//
//   - Composition cells and their instances are cloned, but a clone is
//     reused from the previous generation whenever the live cell's
//     revision and children are unchanged. An edit to one cell re-clones
//     only that cell and its ancestors; every untouched *Instance keeps
//     its pointer, so flatten shards and connectivity memos splice
//     across generations exactly as they did against a live editor.
//
// Clones carry src = the live cell they froze, surfaced as
// Cell.Origin(), so caches can answer "is this the same design cell as
// last run?" even though the pointer is new.

// snapBuilder holds the clone state for one design generation, plus
// the previous generation's clones for reuse.
type snapBuilder struct {
	prevClones map[*Cell]cloneRec
	prevInsts  map[*Instance]*Instance
	curClones  map[*Cell]cloneRec
	curInsts   map[*Instance]*Instance // live instance -> current clone
	byLive     map[*Cell]*Cell         // live cell -> current clone (memo for this gen)
}

type cloneRec struct {
	clone *Cell
	rev   uint64
}

func newSnapBuilder(prev *snapBuilder) *snapBuilder {
	b := &snapBuilder{
		curClones: map[*Cell]cloneRec{},
		curInsts:  map[*Instance]*Instance{},
		byLive:    map[*Cell]*Cell{},
	}
	if prev != nil {
		b.prevClones = prev.curClones
		b.prevInsts = prev.curInsts
	}
	return b
}

// cell returns the frozen clone of live cell c for this generation.
// Leaves return themselves.
func (b *snapBuilder) cell(c *Cell) *Cell {
	if c == nil || c.Kind != Composition {
		return c
	}
	if cl, ok := b.byLive[c]; ok {
		return cl
	}
	rev := c.Revision()
	if rec, ok := b.prevClones[c]; ok && rec.rev == rev && len(rec.clone.Instances) == len(c.Instances) {
		stable := true
		for i, in := range c.Instances {
			if b.cell(in.Cell) != rec.clone.Instances[i].Cell {
				stable = false
				break
			}
		}
		if stable {
			b.byLive[c] = rec.clone
			b.curClones[c] = rec
			for i, in := range c.Instances {
				b.curInsts[in] = rec.clone.Instances[i]
			}
			return rec.clone
		}
	}
	cl := &Cell{
		Name:            c.Name,
		Kind:            Composition,
		SourceFile:      c.SourceFile,
		ExtraConnectors: append([]Connector(nil), c.ExtraConnectors...),
		rev:             rev,
		src:             c.Origin(),
	}
	for _, in := range c.Instances {
		child := b.cell(in.Cell)
		ni := b.prevInsts[in]
		if ni == nil || ni.Cell != child || ni.Name != in.Name || ni.Tr != in.Tr ||
			ni.Nx != in.Nx || ni.Ny != in.Ny || ni.Sx != in.Sx || ni.Sy != in.Sy {
			ni = &Instance{Name: in.Name, Cell: child, Tr: in.Tr,
				Nx: in.Nx, Ny: in.Ny, Sx: in.Sx, Sy: in.Sy}
		}
		b.curInsts[in] = ni
		cl.Instances = append(cl.Instances, ni)
	}
	b.byLive[c] = cl
	b.curClones[c] = cloneRec{clone: cl, rev: rev}
	return cl
}

// builder returns the copy-on-write builder for the design's current
// generation, rotating (and thereby releasing the oldest generation's
// clone maps) when the design has moved on. Caller holds d.snapMu.
func (d *Design) builder() *snapBuilder {
	g := d.Generation()
	if d.snapB == nil || d.snapGen != g {
		d.snapB = newSnapBuilder(d.snapB)
		d.snapGen = g
	}
	return d.snapB
}

// SnapshotCell returns a frozen, read-only view of c at the design's
// current generation: a copy-on-write clone for compositions, c itself
// for leaves. Safe to call from any number of goroutines; the returned
// cell (and everything under it) is never mutated, so readers need no
// further locking. Repeated calls at an unchanged generation return
// the same pointer, and unchanged subtrees keep their pointers across
// generations — pointer-keyed verification caches splice as if they
// were watching a live editor.
func (d *Design) SnapshotCell(c *Cell) *Cell {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return d.builder().cell(c)
}

// snapshotEditor freezes an editor's cell plus its declared
// connections, remapped onto the clone's instances.
func (d *Design) snapshotEditor(c *Cell, declared []Connection) (*Cell, []Connection) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	b := d.builder()
	cl := b.cell(c)
	var decl []Connection
	if len(declared) > 0 {
		decl = make([]Connection, 0, len(declared))
		for _, cn := range declared {
			if from, ok := b.curInsts[cn.From]; ok {
				cn.From = from
			}
			if to, ok := b.curInsts[cn.To]; ok {
				cn.To = to
			}
			decl = append(decl, cn)
		}
	}
	return cl, decl
}

// Snapshot is a frozen view of one editor generation: the cell's
// copy-on-write clone, the declared connections remapped onto it, and
// a copy of the editor's change log so verifiers can still splice.
// Snapshots are immutable and safe to share across goroutines.
type Snapshot struct {
	// Gen is the editor generation the snapshot freezes. Generations
	// are globally unique (one process-wide counter), so a Gen equality
	// is a design-state equality even across editors.
	Gen uint64
	// Cell is the frozen cell: a copy-on-write clone for compositions
	// (Cell.Origin() recovers the live cell), the live cell itself for
	// leaves.
	Cell *Cell
	// Declared are the editor's declared connections with From/To
	// remapped onto Cell's instances.
	Declared []Connection

	log      []changeEntry
	logFloor uint64
	// designGen is the design's generation at freeze time. The editor's
	// own generation misses edits other editors make to sub-cells of the
	// same design; the cached-snapshot check compares both.
	designGen uint64
}

// ChangesSince reports the change rectangles between generation since
// and the snapshot's generation, exactly as Editor.ChangesSince would
// have at the moment the snapshot was taken.
func (s *Snapshot) ChangesSince(since uint64) ([]geom.Rect, bool) {
	return changesSince(s.log, s.logFloor, s.Gen, since)
}

// Snapshot freezes the editor's current generation. The result is
// cached: repeated calls between edits return the same Snapshot, so a
// verifier and an LVS checker of the same generation see identical
// clone pointers (occurrence identity lines up for free). A sub-cell
// edit made through another editor of the same design rebuilds the
// frozen clone even though this editor's generation is unchanged. The
// editor may keep mutating afterwards; the snapshot never changes.
func (e *Editor) Snapshot() *Snapshot {
	var dg uint64
	if e.Design != nil {
		dg = e.Design.Generation()
	}
	if e.snap != nil && e.snap.Gen == e.gen && e.snap.designGen == dg {
		return e.snap
	}
	var (
		cl   *Cell
		decl []Connection
	)
	if e.Design != nil {
		cl, decl = e.Design.snapshotEditor(e.Cell, e.Declared)
	} else {
		cl = e.Cell
		decl = append([]Connection(nil), e.Declared...)
	}
	e.snap = &Snapshot{
		Gen:       e.gen,
		Cell:      cl,
		Declared:  decl,
		log:       append([]changeEntry(nil), e.log...),
		logFloor:  e.logFloor,
		designGen: dg,
	}
	return e.snap
}
