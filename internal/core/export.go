package core

import (
	"fmt"

	"riot/internal/cif"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// ExportCIF converts a cell and everything below it into a CIF file
// for mask generation — the path the paper describes: "Riot writes
// composition format files which are converted to CIF".
//
//   - CIF leaf cells are copied in, together with any sub-symbols their
//     geometry calls, renumbered into the output's symbol space;
//   - Sticks leaf cells (including Riot-made route cells) are rendered
//     into mask geometry via the symbolic-to-CIF conversion;
//   - composition cells become symbols containing only calls, with
//     arrays expanded copy by copy (CIF has no array construct).
//
// The root cell is instantiated once at the top level of the file.
func ExportCIF(root *Cell) (*cif.File, error) {
	ex := &exporter{
		out:   &cif.File{},
		ids:   map[*Cell]int{},
		cifID: map[symKey]int{},
	}
	id, err := ex.cell(root)
	if err != nil {
		return nil, err
	}
	ex.out.TopLevel = []cif.Element{cif.Call{SymbolID: id, Transform: geom.Identity}}
	return ex.out, nil
}

type symKey struct {
	file *cif.File
	id   int
}

type exporter struct {
	out   *cif.File
	next  int
	ids   map[*Cell]int   // cell -> output symbol id
	cifID map[symKey]int  // foreign CIF symbol -> output symbol id
}

func (ex *exporter) newID() int {
	ex.next++
	return ex.next
}

func (ex *exporter) cell(c *Cell) (int, error) {
	if id, done := ex.ids[c]; done {
		return id, nil
	}
	switch c.Kind {
	case LeafCIF:
		id, err := ex.cifSymbol(c.CIFFile, c.Symbol, c.Name)
		if err != nil {
			return 0, err
		}
		ex.ids[c] = id
		return id, nil

	case LeafSticks:
		id := ex.newID()
		ex.ids[c] = id
		sym, err := sticks.ToCIF(c.Sticks, id)
		if err != nil {
			return 0, err
		}
		ex.out.Symbols = append(ex.out.Symbols, sym)
		return id, nil

	default: // Composition
		id := ex.newID()
		ex.ids[c] = id
		sym := &cif.Symbol{ID: id, A: 1, B: 1, Name: c.Name}
		for _, in := range c.Instances {
			childID, err := ex.cell(in.Cell)
			if err != nil {
				return 0, err
			}
			for i := 0; i < in.Nx; i++ {
				for j := 0; j < in.Ny; j++ {
					sym.Elements = append(sym.Elements, cif.Call{
						SymbolID:  childID,
						Transform: in.copyTransform(i, j),
					})
				}
			}
		}
		// export the finished connectors so downstream tools keep the
		// logical interface
		for _, cn := range c.Connectors() {
			sym.Elements = append(sym.Elements, cif.Connector{
				Name: cn.Name, At: cn.At, Layer: cn.Layer, Width: cn.Width,
			})
		}
		ex.out.Symbols = append(ex.out.Symbols, sym)
		return id, nil
	}
}

// cifSymbol copies a symbol from a foreign CIF file into the output,
// recursing through its calls and renumbering everything.
func (ex *exporter) cifSymbol(f *cif.File, sym *cif.Symbol, name string) (int, error) {
	key := symKey{f, sym.ID}
	if id, done := ex.cifID[key]; done {
		return id, nil
	}
	id := ex.newID()
	ex.cifID[key] = id
	out := &cif.Symbol{ID: id, A: 1, B: 1, Name: name}
	for _, e := range sym.ResolveScale() {
		if call, isCall := e.(cif.Call); isCall {
			child := f.SymbolByID(call.SymbolID)
			if child == nil {
				return 0, fmt.Errorf("core: export: symbol %d calls undefined symbol %d", sym.ID, call.SymbolID)
			}
			childID, err := ex.cifSymbol(f, child, child.Name)
			if err != nil {
				return 0, err
			}
			call.SymbolID = childID
			out.Elements = append(out.Elements, call)
			continue
		}
		out.Elements = append(out.Elements, e)
	}
	ex.out.Symbols = append(ex.out.Symbols, out)
	return id, nil
}
