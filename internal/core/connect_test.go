package core

import (
	"strings"
	"testing"

	"riot/internal/geom"
	"riot/internal/sticks"
)

// routeSetup places a as the to-instance at the origin and b above it,
// horizontally offset so the route needs jogs.
func routeSetup(t *testing.T) (*Design, *Editor, *Instance, *Instance) {
	t.Helper()
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(7*L, 60*L)), 1, 1, 0, 0)
	return d, e, a, b
}

func TestRouteConnectBasic(t *testing.T) {
	d, e, a, b := routeSetup(t)
	if err := e.AddConnection(b, "B1", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a, "T2"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	// the route cell entered the cell menu
	if _, ok := d.Cell(res.RouteInst.Cell.Name); !ok {
		t.Error("route cell not in the design")
	}
	// route instance sits on a's top edge
	if res.RouteInst.BBox().Min.Y != a.BBox().Max.Y {
		t.Errorf("route floor at %v, a top at %d", res.RouteInst.BBox(), a.BBox().Max.Y)
	}
	// b moved to abut the route's far side: its connectors touch the
	// route's ceiling connectors (checked by RouteConnect itself via
	// warnings; verify one pair here)
	rb, _ := res.RouteInst.Connector("C0.t")
	bb1, _ := b.Connector("B1")
	if rb.At != bb1.At {
		t.Errorf("b.B1 at %v, route ceiling at %v", bb1.At, rb.At)
	}
	// the from instance moved down from its prepared position
	if res.Moved == (geom.Point{}) {
		t.Error("from instance did not move")
	}
	if len(e.Pending) != 0 {
		t.Error("pending list not consumed")
	}
}

func TestRouteConnectNoMove(t *testing.T) {
	_, e, a, b := routeSetup(t)
	bBefore := b.Tr
	if err := e.AddConnection(b, "B1", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a, "T2"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{NoMove: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Tr != bBefore {
		t.Error("NoMove route moved the from instance")
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	// the route fills the whole gap: floor on a, ceiling on b
	if res.RouteInst.BBox().Min.Y != a.BBox().Max.Y {
		t.Error("route floor not on a")
	}
	if res.RouteInst.BBox().Max.Y != b.BBox().Min.Y {
		t.Error("route ceiling not on b")
	}
}

func TestRouteConnectNoRoom(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// b overlaps a vertically: no room for a no-move route
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(0, 5*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "B1", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteConnect(RouteOptions{NoMove: true}); err == nil {
		t.Error("no-move route with no room accepted")
	}
}

func TestRouteConnectHorizontalChannel(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// b to the right of a, vertically offset: route a.OUT -> b.IN
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(80*L, 3*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "IN", a, "OUT"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	// channel grows rightward from a's right edge
	if res.RouteInst.BBox().Min.X != a.BBox().Max.X {
		t.Errorf("route at %v, a right edge at %d", res.RouteInst.BBox(), a.BBox().Max.X)
	}
	bin, _ := b.Connector("IN")
	rc, _ := res.RouteInst.Connector("C0.t")
	if bin.At != rc.At {
		t.Errorf("b.IN %v vs route ceiling %v", bin.At, rc.At)
	}
}

func TestRouteConnectLeftChannel(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// b to the LEFT of a: route b.OUT -> a.IN
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(-80*L, -2*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "OUT", a, "IN"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	if res.RouteInst.BBox().Max.X != a.BBox().Min.X {
		t.Errorf("route at %v, a left edge at %d", res.RouteInst.BBox(), a.BBox().Min.X)
	}
}

func TestRouteConnectDownChannel(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// b BELOW a: route b.T1 -> a.B1
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(4*L, -70*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "T1", a, "B1"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	if res.RouteInst.BBox().Max.Y != a.BBox().Min.Y {
		t.Errorf("route at %v, a bottom edge at %d", res.RouteInst.BBox(), a.BBox().Min.Y)
	}
	bt, _ := b.Connector("T1")
	rc, _ := res.RouteInst.Connector("C0.t")
	if bt.At != rc.At {
		t.Errorf("b.T1 %v vs route ceiling %v", bt.At, rc.At)
	}
}

func TestRouteConnectRejectsPureAbutLink(t *testing.T) {
	_, e, a, b := routeSetup(t)
	if err := e.AddAbutLink(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteConnect(RouteOptions{}); err == nil {
		t.Error("route with pure abut link accepted")
	}
}

func TestRouteConnectOffGrid(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	// off-lambda placement
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(7*L+13, 60*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "B1", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteConnect(RouteOptions{}); err == nil {
		t.Error("off-grid route accepted")
	}
}

func TestRouteToManyInstances(t *testing.T) {
	// one-to-many: b routes down to two separate instances whose top
	// edges align
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a1, _ := e.CreateInstance("A", "a1", geom.Identity, 1, 1, 0, 0)
	a2, _ := e.CreateInstance("A", "a2", geom.MakeTransform(geom.R0, geom.Pt(20*L, 0)), 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(10*L, 44*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "B1", a1, "T2"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a2, "T1"); err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	// floor connectors meet both to-instances
	f0, _ := res.RouteInst.Connector("C0.b")
	t2, _ := a1.Connector("T2")
	if f0.At != t2.At {
		t.Errorf("route floor does not meet a1.T2: %v vs %v", f0.At, t2.At)
	}
}

func TestRouteToMisalignedInstancesRejected(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a1, _ := e.CreateInstance("A", "a1", geom.Identity, 1, 1, 0, 0)
	a2, _ := e.CreateInstance("A", "a2", geom.MakeTransform(geom.R0, geom.Pt(30*L, 5*L)), 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(10*L, 44*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "B1", a1, "T2"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a2, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteConnect(RouteOptions{}); err == nil {
		t.Error("route to misaligned to-edges accepted")
	}
}

func TestStretchConnectBasic(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a1, _ := e.CreateInstance("A", "a1", geom.Identity, 1, 1, 0, 0)
	a2, _ := e.CreateInstance("A", "a2", geom.MakeTransform(geom.R0, geom.Pt(30*L, 0)), 1, 1, 0, 0)
	// b above, to be stretched so B1 lands on a1.T1 and B2 on a2.T2
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(0, 50*L)), 1, 1, 0, 0)
	oldCellName := b.Cell.Name
	if err := e.AddConnection(b, "B1", a1, "T1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a2, "T2"); err != nil {
		t.Fatal(err)
	}
	res, err := e.StretchConnect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
	// a new cell was made and substituted
	if b.Cell.Name == oldCellName {
		t.Error("instance still uses the old cell")
	}
	if _, ok := d.Cell(res.NewCell.Name); !ok {
		t.Error("stretched cell not in the design")
	}
	// connections are made by abutment: connectors coincide
	b1, _ := b.Connector("B1")
	t1, _ := a1.Connector("T1")
	if b1.At != t1.At {
		t.Errorf("B1 %v does not meet a1.T1 %v", b1.At, t1.At)
	}
	b2, _ := b.Connector("B2")
	t2, _ := a2.Connector("T2")
	if b2.At != t2.At {
		t.Errorf("B2 %v does not meet a2.T2 %v", b2.At, t2.At)
	}
	// separation grew: a1.T1 at x=5L, a2.T2 at x=45L => 40 lambda apart
	if sep := b2.At.X - b1.At.X; sep != 40*L {
		t.Errorf("stretched separation = %d, want %d", sep, 40*L)
	}
	// the stretched cell abuts a1 without routing (touching edges)
	if b.BBox().Min.Y != a1.BBox().Max.Y {
		t.Errorf("stretched instance does not abut: %v vs %v", b.BBox(), a1.BBox())
	}
}

func TestStretchRejectsCIFLeaf(t *testing.T) {
	d, e := newEditor(t)
	// "the pads cannot be stretched by Riot"
	addLeaf(t, d, "A")
	padSrc := "DS 1; 9 PAD; L NM; B 5000 5000 2500 2500; 94 P 1250 0 NM 500; DF; E"
	f, err := parseCIFString(padSrc)
	if err != nil {
		t.Fatal(err)
	}
	pad, err := NewLeafFromCIF(f, f.SymbolByID(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(pad); err != nil {
		t.Fatal(err)
	}
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	p, _ := e.CreateInstance("PAD", "p", geom.MakeTransform(geom.R0, geom.Pt(0, 50*L)), 1, 1, 0, 0)
	if err := e.AddConnection(p, "P", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StretchConnect(); err == nil {
		t.Error("stretched a CIF leaf cell")
	} else if !strings.Contains(err.Error(), "Sticks") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestStretchRejectsArray(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	arr, _ := e.CreateInstance("A", "arr", geom.MakeTransform(geom.R0, geom.Pt(0, 50*L)), 2, 1, 0, 0)
	if err := e.AddConnection(arr, "B1[0]", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StretchConnect(); err == nil {
		t.Error("stretched an array instance")
	}
}

func TestStretchInfeasible(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(0, 50*L)), 1, 1, 0, 0)
	// ask B1 and B2 (10 lambda apart) to squeeze to the same target
	// column ordering violation: B1 -> T2 (x=15L), B2 -> T1 (x=5L)
	if err := e.AddConnection(b, "B1", a, "T2"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "B2", a, "T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StretchConnect(); err == nil {
		t.Error("order-reversing stretch accepted")
	}
}

func TestBringOut(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	// two instances stacked vertically; the lower instance's bottom
	// connectors are on the cell bbox; the UPPER instance's top
	// connectors are too. Make a wide cell so 'a' is interior.
	a, _ := e.CreateInstance("A", "a", geom.MakeTransform(geom.R0, geom.Pt(10*L, 0)), 1, 1, 0, 0)
	_, _ = e.CreateInstance("A", "wide", geom.MakeTransform(geom.R0, geom.Pt(0, 30*L)), 3, 1, 0, 0)
	// a's T1/T2 are interior (cell bbox extends to y=40L)
	before := e.Cell.Connectors()
	for _, c := range before {
		if c.Name == "a.T1" {
			t.Fatal("a.T1 already on the bbox")
		}
	}
	ri, err := e.BringOut(a, []string{"T1", "T2"}, geom.SideTop)
	if err != nil {
		t.Fatal(err)
	}
	if ri == nil {
		t.Fatal("no route instance created")
	}
	// hmm: the bring-out goes up from a's top edge (y=10L) to the cell
	// bbox top (y=40L); but the 'wide' row occupies x 0..60L at
	// y=30..40L, overlapping the route: Riot's router "ignores objects
	// in the path of the route" — so the route is still made.
	conns := e.Cell.Connectors()
	found := 0
	for _, c := range conns {
		if c.Side == geom.SideTop && (c.Name == ri.Name+".C0.t" || c.Name == ri.Name+".C1.t") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("brought-out connectors on bbox = %d, want 2", found)
	}
}

func TestBringOutAlreadyOnEdge(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	ri, err := e.BringOut(a, []string{"T1"}, geom.SideTop)
	if err != nil {
		t.Fatal(err)
	}
	if ri != nil {
		t.Error("bring-out created a route for an on-edge connector")
	}
}

func TestBringOutWrongSide(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	if _, err := e.BringOut(a, []string{"T1"}, geom.SideLeft); err == nil {
		t.Error("bring-out with mismatched side accepted")
	}
	if _, err := e.BringOut(a, nil, geom.SideTop); err == nil {
		t.Error("bring-out with no connectors accepted")
	}
}

func TestAddBus(t *testing.T) {
	d, e := newEditor(t)
	addLeaf(t, d, "A")
	a, _ := e.CreateInstance("A", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("A", "b", geom.MakeTransform(geom.R0, geom.Pt(0, 60*L)), 1, 1, 0, 0)
	n, err := e.AddBus(b, a)
	if err != nil {
		t.Fatal(err)
	}
	// b is above a: b's bottom (B1,B2) pairs with a's top (T1,T2)
	if n != 2 {
		t.Errorf("bus made %d links, want 2", n)
	}
	res, err := e.RouteConnect(RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
}

func TestAddBusNoFacingConnectors(t *testing.T) {
	d, e := newEditor(t)
	// a cell with connectors only on the right cannot bus to the left
	sc := &sticks.Cell{
		Name: "RO", Box: geom.R(0, 0, 10, 10), HasBox: true,
		Wires:      []sticks.Wire{{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 0, Y: 5}, {X: 10, Y: 5}}}},
		Connectors: []sticks.Connector{{Name: "R", At: geom.Pt(10, 5), Layer: geom.NM, Width: 2, Side: geom.SideRight}},
	}
	c, err := NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(c); err != nil {
		t.Fatal(err)
	}
	x, _ := e.CreateInstance("RO", "x", geom.Identity, 1, 1, 0, 0)
	y, _ := e.CreateInstance("RO", "y", geom.MakeTransform(geom.R0, geom.Pt(0, 40*L)), 1, 1, 0, 0)
	if _, err := e.AddBus(y, x); err == nil {
		t.Error("bus with no facing connectors accepted")
	}
}
