package core

import (
	"fmt"

	"riot/internal/geom"
)

// Abut executes the ABUT connection specification command on the
// pending connection list. The from instance is moved so that:
//
//   - with no connector links, its facing edge touches the to instance
//     and their bottom (or left) edges match, "depending on the relative
//     positions of the instances before the ABUT command";
//   - with connector links, the specified connections are matched
//     during the abutment; connections that cannot be made produce
//     warnings, not errors;
//   - with overlap=true, the first linked connector pair is made to
//     coincide exactly, letting the instances overlap "to share a
//     common pair of connectors" (the shared power-rail trick).
//
// The pending list is consumed. Warnings report connections the final
// position does not satisfy.
func (e *Editor) Abut(overlap bool) ([]string, error) {
	e.touch()
	from, conns, err := e.pendingFrom()
	if err != nil {
		return nil, err
	}
	warns, err := e.abut(from, conns, overlap)
	if err == nil {
		e.declareLinks(conns)
	}
	return warns, err
}

func (e *Editor) abut(from *Instance, conns []Connection, overlap bool) ([]string, error) {
	var warnings []string

	// split connector links from pure abut links
	var linked []Connection
	for _, c := range conns {
		if c.FromConn != "" {
			linked = append(linked, c)
		}
	}

	var t geom.Point
	switch {
	case len(linked) > 0 && overlap:
		fc, err := from.Connector(linked[0].FromConn)
		if err != nil {
			return nil, err
		}
		tc, err := linked[0].To.Connector(linked[0].ToConn)
		if err != nil {
			return nil, err
		}
		t = tc.At.Sub(fc.At)

	case len(linked) > 0:
		fc, err := from.Connector(linked[0].FromConn)
		if err != nil {
			return nil, err
		}
		tc, err := linked[0].To.Connector(linked[0].ToConn)
		if err != nil {
			return nil, err
		}
		// primary axis: the from connector's edge touches the to
		// instance's opposing edge; perpendicular axis: the first
		// connector pair aligns.
		t, err = edgeTouch(from, linked[0].To, fc.Side)
		if err != nil {
			return nil, err
		}
		if fc.Side.Horizontal() {
			t.Y = tc.At.Y - fc.At.Y
		} else {
			t.X = tc.At.X - fc.At.X
		}

	default:
		// pure abutment: edges touch, bottom or left edges match
		to := conns[0].To
		side := facingSide(from.BBox(), to.BBox())
		if side == geom.SideNone {
			return nil, fmt.Errorf("core: %q and %q coincide; move one before abutting", from.Name, to.Name)
		}
		var err error
		t, err = edgeTouch(from, to, side)
		if err != nil {
			return nil, err
		}
		fb, tb := from.BBox(), to.BBox()
		if side.Horizontal() {
			t.Y = tb.Min.Y - fb.Min.Y // bottom edges match
		} else {
			t.X = tb.Min.X - fb.Min.X // left edges match
		}
	}

	e.MoveInstance(from, t)

	// verify every requested connection; "if the connections cannot be
	// made by the abutment, a warning message is produced."
	for _, c := range linked {
		fc, err := from.Connector(c.FromConn)
		if err != nil {
			return nil, err
		}
		tc, err := c.To.Connector(c.ToConn)
		if err != nil {
			return nil, err
		}
		if fc.At != tc.At {
			warnings = append(warnings, fmt.Sprintf(
				"connection %s.%s -> %s.%s not made by the abutment (off by %v)",
				from.Name, c.FromConn, c.To.Name, c.ToConn, tc.At.Sub(fc.At)))
		}
	}
	return warnings, nil
}

// edgeTouch computes the translation that brings the given edge of
// from into contact with the opposing edge of to, moving only along
// the edge's normal axis.
func edgeTouch(from, to *Instance, side geom.Side) (geom.Point, error) {
	fb, tb := from.BBox(), to.BBox()
	switch side {
	case geom.SideRight:
		return geom.Pt(tb.Min.X-fb.Max.X, 0), nil
	case geom.SideLeft:
		return geom.Pt(tb.Max.X-fb.Min.X, 0), nil
	case geom.SideTop:
		return geom.Pt(0, tb.Min.Y-fb.Max.Y), nil
	case geom.SideBottom:
		return geom.Pt(0, tb.Max.Y-fb.Min.Y), nil
	}
	return geom.Point{}, fmt.Errorf("core: cannot abut along side %v", side)
}
