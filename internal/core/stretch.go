package core

import (
	"fmt"

	"riot/internal/compact"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// StretchResult reports what the STRETCH command did.
type StretchResult struct {
	NewCell  *Cell      // the re-solved cell that replaced the old one
	Moved    geom.Point // translation applied by the final abutment
	Warnings []string
}

// StretchConnect executes the STRETCH connection specification
// command: "the locations of the connectors on the to instance are
// used to determine the needed separations of the connectors on the
// from instance to make the connection by abutment. If the from
// instance is defined in Sticks form, the new constraints on the
// connector positions are put into the Stick file, making a new cell.
// The new cell is passed through the Stick optimizer ... which moves
// the connectors to the constrained locations. Riot then removes the
// old instance and inserts an instance of the new cell into the cell
// under edit."
//
// The from instance's defining cell must be symbolic: cells from CIF
// libraries "cannot be stretched by Riot and all connections to them
// will have to be made by routing". After the stretch the instances
// are abutted, completing the connection without routing. The pending
// connection list is consumed.
func (e *Editor) StretchConnect() (*StretchResult, error) {
	e.touch()
	from, conns, err := e.pendingFrom()
	if err != nil {
		return nil, err
	}
	if from.Cell.Kind != LeafSticks {
		return nil, fmt.Errorf("core: instance %q is not defined in Sticks form and cannot be stretched; connect it by routing",
			from.Name)
	}
	if from.IsArray() {
		return nil, fmt.Errorf("core: array instance %q cannot be stretched", from.Name)
	}
	for _, c := range conns {
		if c.FromConn == "" {
			return nil, fmt.Errorf("core: STRETCH needs connector links, but the pending list has a pure abut link")
		}
	}

	// all from connectors must leave one side
	var side geom.Side
	pairs := make([]connPair, len(conns))
	for i, c := range conns {
		fc, err := from.Connector(c.FromConn)
		if err != nil {
			return nil, err
		}
		tc, err := c.To.Connector(c.ToConn)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			side = fc.Side
		} else if fc.Side != side {
			return nil, fmt.Errorf("core: STRETCH connections leave %q on mixed sides (%v and %v)", from.Name, side, fc.Side)
		}
		pairs[i] = connPair{fc, tc}
	}

	// the stretch axis in the cell's local frame: connectors on a
	// horizontal edge (top/bottom) spread along local X, and vice
	// versa, after undoing the instance orientation
	localSide := side.Transform(from.Tr.O.Inverse())
	axis := sticks.AxisX
	if localSide.Horizontal() {
		axis = sticks.AxisY
	}
	localCoord := func(p geom.Point) int {
		if axis == sticks.AxisX {
			return p.X
		}
		return p.Y
	}

	// required local positions: pull the to-connector targets back
	// through the instance transform
	inv := from.Tr.Inverse()
	units := from.Cell.Sticks.EffUnits()
	type pinReq struct {
		name   string
		target int // lambda
		orig   int // lambda, current position
	}
	reqs := make([]pinReq, len(pairs))
	seen := map[string]bool{}
	for i, p := range pairs {
		baseName := baseConnName(p.fc.Name)
		if seen[baseName] {
			return nil, fmt.Errorf("core: connector %q appears in two pending connections", baseName)
		}
		seen[baseName] = true
		local := inv.Apply(p.tc.At)
		lc := localCoord(local)
		if lc%units != 0 {
			return nil, fmt.Errorf("core: stretch target for %s.%s is off the lambda grid (%d centimicrons)", from.Name, p.fc.Name, lc)
		}
		scn, ok := from.Cell.Sticks.ConnectorByName(baseName)
		if !ok {
			return nil, fmt.Errorf("core: sticks cell %q has no connector %q", from.Cell.Name, baseName)
		}
		reqs[i] = pinReq{name: baseName, target: lc / units, orig: localCoord(scn.At)}
	}

	// Normalize pin positions for feasibility: the optimizer's output
	// space starts at zero, so shift all targets together until the
	// smallest pinned connector can reach its pin. The absolute offset
	// is immaterial — the abutment that follows cancels it; only the
	// separations matter.
	minimal, err := compact.Compact(from.Cell.Sticks, axis)
	if err != nil {
		return nil, err
	}
	shift := 0
	for _, r := range reqs {
		mc, _ := minimal.ConnectorByName(r.name)
		if need := localCoord(mc.At) - r.target; need > shift {
			shift = need
		}
	}
	pins := make([]compact.Pin, len(reqs))
	for i, r := range reqs {
		pins[i] = compact.Pin{Connector: r.name, Coord: r.target + shift}
	}

	// re-solve through the optimizer, producing a new named cell
	src := from.Cell.Sticks.Clone()
	src.Name = e.Design.GenName(from.Cell.Name + "S")
	stretched, err := compact.Stretch(src, axis, pins)
	if err != nil {
		return nil, err
	}
	newCell, err := NewLeafFromSticks(stretched)
	if err != nil {
		return nil, err
	}
	if err := e.Design.AddCell(newCell); err != nil {
		return nil, err
	}

	// replace the instance's defining cell, keeping its placement
	oldBox := from.BBox()
	from.Cell = newCell
	e.logChange(oldBox.Union(from.BBox()), false)

	// finish with an abutment so "the instances [are] abutted without
	// routing"
	res := &StretchResult{NewCell: newCell}
	before := from.Tr.D
	abutConns := make([]Connection, len(conns))
	copy(abutConns, conns)
	warnings, err := e.abut(from, abutConns, false)
	if err != nil {
		return nil, err
	}
	res.Moved = from.Tr.D.Sub(before)
	res.Warnings = warnings
	e.declareLinks(conns)
	return res, nil
}

// baseConnName strips an array suffix from a connector name; stretch
// targets always refer to the defining cell's connector.
func baseConnName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '[' {
			return name[:i]
		}
	}
	return name
}
