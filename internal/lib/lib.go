// Package lib generates the leaf cells of the paper's figure 8: "The
// input and output pads were taken from a library of CIF cells. The
// shift register cell, NAND and OR gates were laid out in REST, and are
// defined as symbolic layout in Sticks."
//
// The pads are CIF (geometry only — "the pads cannot be stretched by
// Riot and all connections to them will have to be made by routing");
// the gates are Sticks and therefore stretchable. The package also
// provides the "pre-defined pipe fittings [that] aid complex routes for
// power, ground and clock lines".
//
// Everything is generated on the lambda grid with Mead & Conway nMOS
// rules, so every connector is reachable by the river router and every
// symbolic cell survives the compactor.
package lib

import (
	"fmt"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const l = rules.Lambda

// SRCell builds the shift-register stage of figure 8. The cell chains
// left to right (IN/OUT), carries power and ground rails across for
// abutment ("the array elements abut, making the shift register chain
// connections as well as power and ground connections"), passes the
// two clock phases through vertically, and exposes the stage's tap on
// the bottom edge so a NAND row below can read the delayed bit.
//
//	     PHI1  PHI2                 (top, poly)
//	PWRL +--+----+--------+ PWRR    (metal rail, y=22)
//	IN   |  sr stage      | OUT     (poly, y=12)
//	GNDL +--+----+--------+ GNDR    (metal rail, y=2)
//	     PHI1B PHI2B TAP            (bottom, poly)
func SRCell() *sticks.Cell {
	return &sticks.Cell{
		Name:   "SRCELL",
		Box:    geom.R(0, 0, 20, 24),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 22}, {X: 20, Y: 22}}}, // VDD
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 2}, {X: 20, Y: 2}}},   // GND
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 0, Y: 12}, {X: 20, Y: 12}}}, // data
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 6, Y: 0}, {X: 6, Y: 24}}},   // phi1
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 10, Y: 0}, {X: 10, Y: 24}}}, // phi2
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 14, Y: 2}, {X: 14, Y: 22}}}, // pullup chain
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 18, Y: 0}, {X: 18, Y: 12}}}, // tap leg
		},
		Devices: []sticks.Device{
			{Kind: sticks.Enhancement, At: geom.Pt(6, 12), Vertical: true, W: 2, L: 2},  // phi1 pass
			{Kind: sticks.Enhancement, At: geom.Pt(10, 12), Vertical: true, W: 2, L: 2}, // phi2 pass
			{Kind: sticks.Enhancement, At: geom.Pt(14, 8), Vertical: true, W: 4, L: 2},  // inverter pulldown
			{Kind: sticks.Depletion, At: geom.Pt(14, 17), Vertical: true, W: 2, L: 4},   // inverter pullup
		},
		Contacts: []sticks.Contact{
			{From: geom.NM, To: geom.ND, At: geom.Pt(14, 22)},
			{From: geom.NM, To: geom.ND, At: geom.Pt(14, 2)},
		},
		Connectors: []sticks.Connector{
			{Name: "PWRL", At: geom.Pt(0, 22), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "PWRR", At: geom.Pt(20, 22), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "GNDL", At: geom.Pt(0, 2), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "GNDR", At: geom.Pt(20, 2), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "IN", At: geom.Pt(0, 12), Layer: geom.NP, Width: 2, Side: geom.SideLeft},
			{Name: "OUT", At: geom.Pt(20, 12), Layer: geom.NP, Width: 2, Side: geom.SideRight},
			{Name: "PHI1", At: geom.Pt(6, 24), Layer: geom.NP, Width: 2, Side: geom.SideTop},
			{Name: "PHI2", At: geom.Pt(10, 24), Layer: geom.NP, Width: 2, Side: geom.SideTop},
			{Name: "PHI1B", At: geom.Pt(6, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom},
			{Name: "PHI2B", At: geom.Pt(10, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom},
			{Name: "TAP", At: geom.Pt(18, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom},
		},
	}
}

// NAND builds the two-input NAND gate of figure 8, electrically
// complete: a series pulldown chain (B below A) between ground and the
// output node, a gate-to-source-tied depletion pullup, and the output
// leaving on poly through the pullup's gate tie. The inputs enter on
// the BOTTOM edge and the output leaves on the TOP edge; the filter
// places the gate flipped (MXR180) so inputs face the register taps
// above and the output faces the OR gate below — exercising Riot's
// orientation handling exactly as a real library cell would.
//
//	            OUT (top, poly through the VDD rail)
//	PWRL ═══════╪═══════ PWRR   y=18  (metal)
//	        [dep, gate→OUT]     y=15
//	         ── output node ──  y=12  (ND-NP contact)
//	        [enh A]             y=9
//	        [enh B]             y=5
//	GNDL ═══════╪═══════ GNDR   y=2   (metal)
//	     B(x4)      A(x16)      bottom (poly)
func NAND() *sticks.Cell {
	return &sticks.Cell{
		Name:   "NAND",
		Box:    geom.R(0, 0, 20, 20),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 18}, {X: 20, Y: 18}}},                // VDD rail
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 2}, {X: 20, Y: 2}}},                  // GND rail
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 10, Y: 2}, {X: 10, Y: 18}}},                // pulldown chain
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 10, Y: 2}, {X: 6, Y: 2}}},                  // jog to the GND contact
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 10, Y: 18}, {X: 6, Y: 18}}},                // jog to the VDD contact
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 4, Y: 0}, {X: 4, Y: 5}, {X: 10, Y: 5}}},    // input B to its gate
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 16, Y: 0}, {X: 16, Y: 9}, {X: 10, Y: 9}}},  // input A to its gate
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 10, Y: 13}, {X: 10, Y: 20}}},               // output: node contact up through the dep gate tie
		},
		Devices: []sticks.Device{
			{Kind: sticks.Enhancement, At: geom.Pt(10, 5), Vertical: true, W: 2, L: 2}, // B (lower)
			{Kind: sticks.Enhancement, At: geom.Pt(10, 9), Vertical: true, W: 2, L: 2}, // A (upper)
			{Kind: sticks.Depletion, At: geom.Pt(10, 16), Vertical: true, W: 2, L: 2},  // pullup, gate tied to OUT
		},
		Contacts: []sticks.Contact{
			{From: geom.NM, To: geom.ND, At: geom.Pt(6, 2)},   // GND
			{From: geom.NM, To: geom.ND, At: geom.Pt(6, 18)},  // VDD
			{From: geom.ND, To: geom.NP, At: geom.Pt(10, 13)}, // output node tap
		},
		Connectors: []sticks.Connector{
			{Name: "PWRL", At: geom.Pt(0, 18), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "PWRR", At: geom.Pt(20, 18), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "GNDL", At: geom.Pt(0, 2), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "GNDR", At: geom.Pt(20, 2), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "B", At: geom.Pt(4, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom},
			{Name: "A", At: geom.Pt(16, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom},
			{Name: "OUT", At: geom.Pt(10, 20), Layer: geom.NP, Width: 2, Side: geom.SideTop},
		},
		// keep the cell exactly one register pitch (20 lambda) wide
		// under stretching, so stretched gates tile rail-to-rail under
		// the shift-register array (the figure-9b assembly)
		Constraints: []sticks.Constraint{
			{Axis: sticks.AxisX, A: "PWRL", B: "PWRR", Min: 20},
			{Axis: sticks.AxisX, A: "GNDL", B: "GNDR", Min: 20},
		},
	}
}

// OR4 builds the four-input OR gate of figure 8, electrically
// complete in the nMOS idiom: a four-way NOR (parallel pulldown legs
// into a shared drain rail with a gate-tied depletion pullup) followed
// by an inverter. Like the NAND, the inputs enter on the BOTTOM edge
// (the filter flips the cell so they face the NAND outputs above) and
// the output leaves on the right edge.
func OR4() *sticks.Cell {
	const w = 56
	c := &sticks.Cell{
		Name:   "OR4",
		Box:    geom.R(0, 0, w, 20),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 18}, {X: w, Y: 18}}}, // VDD rail
			{Layer: geom.NM, Width: 4, Points: []geom.Point{{X: 0, Y: 2}, {X: w, Y: 2}}},   // GND rail
			// shared NOR drain rail (the NOR node)
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 6, Y: 12}, {X: 37, Y: 12}}},
			// NOR depletion pullup leg
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 37, Y: 12}, {X: 37, Y: 18}}},
			// NOR node to poly, over to the inverter gate
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 35, Y: 11}, {X: 41, Y: 11}, {X: 41, Y: 8}, {X: 45, Y: 8}}},
			// inverter pulldown and pullup legs
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 45, Y: 4}, {X: 45, Y: 18}}},
			// output node to poly, out to the right edge
			{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: 45, Y: 12}, {X: 49, Y: 12}}},
			{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: 49, Y: 12}, {X: w, Y: 12}}},
		},
		Devices: []sticks.Device{
			{Kind: sticks.Depletion, At: geom.Pt(37, 15), Vertical: true, W: 2, L: 2},   // NOR pullup, gate tied to NOR node
			{Kind: sticks.Enhancement, At: geom.Pt(45, 8), Vertical: true, W: 2, L: 2},  // inverter pulldown
			{Kind: sticks.Depletion, At: geom.Pt(45, 15), Vertical: true, W: 2, L: 2},   // inverter pullup, gate tied to OUT
		},
		Contacts: []sticks.Contact{
			{From: geom.ND, To: geom.NP, At: geom.Pt(33, 12)}, // NOR node tap (ties the NOR pullup gate)
			{From: geom.NM, To: geom.ND, At: geom.Pt(37, 18)}, // NOR pullup VDD
			{From: geom.NM, To: geom.ND, At: geom.Pt(45, 4)},  // inverter GND
			{From: geom.NM, To: geom.ND, At: geom.Pt(45, 18)}, // inverter VDD
			{From: geom.ND, To: geom.NP, At: geom.Pt(49, 12)}, // output tap (ties the inverter pullup gate)
		},
		Connectors: []sticks.Connector{
			{Name: "PWRL", At: geom.Pt(0, 18), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "PWRR", At: geom.Pt(w, 18), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "GNDL", At: geom.Pt(0, 2), Layer: geom.NM, Width: 4, Side: geom.SideLeft},
			{Name: "GNDR", At: geom.Pt(w, 2), Layer: geom.NM, Width: 4, Side: geom.SideRight},
			{Name: "OUT", At: geom.Pt(w, 12), Layer: geom.NP, Width: 2, Side: geom.SideRight},
		},
	}
	// four NOR pulldown legs: diffusion from a grounded contact up
	// through the input gate into the shared drain rail; each input
	// arrives on poly from the bottom edge, one gate-pitch to the left
	// of its leg
	for i := 0; i < 4; i++ {
		x := 6 + 9*i
		c.Wires = append(c.Wires,
			sticks.Wire{Layer: geom.ND, Width: 2, Points: []geom.Point{{X: x, Y: 4}, {X: x, Y: 12}}},
			sticks.Wire{Layer: geom.NP, Width: 2, Points: []geom.Point{{X: x - 4, Y: 0}, {X: x - 4, Y: 8}, {X: x, Y: 8}}},
		)
		c.Devices = append(c.Devices,
			sticks.Device{Kind: sticks.Enhancement, At: geom.Pt(x, 8), Vertical: true, W: 2, L: 2})
		c.Contacts = append(c.Contacts,
			sticks.Contact{From: geom.NM, To: geom.ND, At: geom.Pt(x, 4)})
		c.Connectors = append(c.Connectors, sticks.Connector{
			Name: fmt.Sprintf("IN%d", i), At: geom.Pt(x-4, 0), Layer: geom.NP, Width: 2, Side: geom.SideBottom,
		})
	}
	return c
}

// PipeFitting builds one of the pre-defined route-helper cells: an
// L-shaped wire that turns a bus corner (the river router itself
// "cannot turn corners"). The cell enters on the left edge and leaves
// on the top edge.
func PipeFitting(name string, layer geom.Layer, width int) *sticks.Cell {
	if width <= 0 {
		width = rules.MinWidth(layer)
	}
	s := width * 2
	return &sticks.Cell{
		Name:   name,
		Box:    geom.R(0, 0, 2*s, 2*s),
		HasBox: true,
		Wires: []sticks.Wire{
			{Layer: layer, Width: width, Points: []geom.Point{{X: 0, Y: s}, {X: s, Y: s}, {X: s, Y: 2 * s}}},
		},
		Connectors: []sticks.Connector{
			{Name: "A", At: geom.Pt(0, s), Layer: layer, Width: width, Side: geom.SideLeft},
			{Name: "B", At: geom.Pt(s, 2 * s), Layer: layer, Width: width, Side: geom.SideTop},
		},
	}
}

// padSize is the bond-pad cell size in lambda (100x100 lambda pads
// were typical for 2.5-micron processes).
const padSize = 60

// padCIF builds a bond-pad symbol: metal pad, overglass opening, and a
// single connector where the pad meets the chip core. dir selects the
// connector edge (the pad is otherwise symmetric). Input pads add a
// poly series resistor and clamp structure marker; output pads a wider
// metal neck.
func padCIF(id int, name string, input bool) *cif.Symbol {
	s := padSize * l
	sym := &cif.Symbol{ID: id, A: 1, B: 1, Name: name}
	pad := cif.Box{Layer: geom.NM, Length: s - 8*l, Width: s - 8*l,
		Center: geom.Pt(s/2, s/2+4*l), Direction: geom.Pt(1, 0)}
	glass := cif.Box{Layer: geom.NG, Length: s - 16*l, Width: s - 16*l,
		Center: geom.Pt(s/2, s/2+4*l), Direction: geom.Pt(1, 0)}
	sym.Elements = append(sym.Elements, pad, glass)
	// metal stub leaving the pad, then a poly neck to the cell edge:
	// the signal enters and leaves the chip core on poly (input pads
	// carry their protection resistor in this neck; output pads meet
	// the driver gate), so pad connections are layer-compatible with
	// the gate inputs and outputs they route to.
	sym.Elements = append(sym.Elements, cif.Wire{
		Layer: geom.NM, Width: 4 * l,
		Points: []geom.Point{{X: s / 2, Y: 10 * l}, {X: s / 2, Y: 6 * l}},
	})
	sym.Elements = append(sym.Elements, cif.Box{ // metal-poly contact
		Layer: geom.NM, Length: 4 * l, Width: 4 * l,
		Center: geom.Pt(s/2, 5*l), Direction: geom.Pt(1, 0)})
	sym.Elements = append(sym.Elements, cif.Box{
		Layer: geom.NC, Length: 2 * l, Width: 2 * l,
		Center: geom.Pt(s/2, 5*l), Direction: geom.Pt(1, 0)})
	neckW := 2 * l
	if !input {
		neckW = 4 * l
	}
	// the neck stops half a wire width above the cell edge so the
	// wire's end cap lands exactly on the bounding box, where the
	// connector sits
	sym.Elements = append(sym.Elements, cif.Wire{
		Layer: geom.NP, Width: neckW,
		Points: []geom.Point{{X: s / 2, Y: 5 * l}, {X: s / 2, Y: neckW / 2}},
	})
	sym.Elements = append(sym.Elements, cif.Connector{
		Name: "P", At: geom.Pt(s/2, 0), Layer: geom.NP, Width: 2 * l,
	})
	return sym
}

// PadFile builds the figure-8 pad library as one CIF file holding the
// input and output pads.
func PadFile() *cif.File {
	return &cif.File{Symbols: []*cif.Symbol{
		padCIF(1, "PADIN", true),
		padCIF(2, "PADOUT", false),
	}}
}

// Cells builds every library cell as a core cell, ready to register in
// a design.
func Cells() ([]*core.Cell, error) {
	var out []*core.Cell
	for _, sc := range []*sticks.Cell{SRCell(), NAND(), OR4(),
		PipeFitting("PIPEM", geom.NM, 4), PipeFitting("PIPEP", geom.NP, 2)} {
		c, err := core.NewLeafFromSticks(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	pads := PadFile()
	for _, sym := range pads.Symbols {
		c, err := core.NewLeafFromCIF(pads, sym)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Install registers the whole library in a design.
func Install(d *core.Design) error {
	cells, err := Cells()
	if err != nil {
		return err
	}
	for _, c := range cells {
		if err := d.AddCell(c); err != nil {
			return err
		}
	}
	return nil
}

// Files renders the library as interchange files (name -> contents),
// the form "taken from a library of CIF cells" — usable as a shell
// file system.
func Files() (map[string][]byte, error) {
	out := map[string][]byte{}
	out["pads.cif"] = []byte(cif.String(PadFile()))
	for _, sc := range []*sticks.Cell{SRCell(), NAND(), OR4(),
		PipeFitting("PIPEM", geom.NM, 4), PipeFitting("PIPEP", geom.NP, 2)} {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		out[lowerName(sc.Name)+".sticks"] = []byte(sticks.String(sc))
	}
	return out, nil
}

func lowerName(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
