package lib

import (
	"testing"

	"riot/internal/compact"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

func TestAllSticksCellsValidate(t *testing.T) {
	for _, c := range []*sticks.Cell{SRCell(), NAND(), OR4(),
		PipeFitting("PM", geom.NM, 4), PipeFitting("PP", geom.NP, 0)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestAllSticksCellsConvertToCIF(t *testing.T) {
	for _, c := range []*sticks.Cell{SRCell(), NAND(), OR4()} {
		if _, err := sticks.ToCIF(c, 1); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestAllSticksCellsCompact(t *testing.T) {
	// every library cell must survive the stick optimizer on both axes
	// (i.e. be stretchable, as the paper requires of REST cells)
	for _, c := range []*sticks.Cell{SRCell(), NAND(), OR4()} {
		for _, axis := range []sticks.Axis{sticks.AxisX, sticks.AxisY} {
			if _, err := compact.Compact(c, axis); err != nil {
				t.Errorf("%s axis %v: %v", c.Name, axis, err)
			}
		}
	}
}

func TestSRCellAbutsInArray(t *testing.T) {
	// chain connector heights must match across the cell so the array
	// abuts: OUT at the same y as IN, rails aligned left/right
	c := SRCell()
	in, _ := c.ConnectorByName("IN")
	out, _ := c.ConnectorByName("OUT")
	if in.At.Y != out.At.Y {
		t.Errorf("IN y=%d OUT y=%d", in.At.Y, out.At.Y)
	}
	for _, pair := range [][2]string{{"PWRL", "PWRR"}, {"GNDL", "GNDR"}} {
		a, _ := c.ConnectorByName(pair[0])
		b, _ := c.ConnectorByName(pair[1])
		if a.At.Y != b.At.Y {
			t.Errorf("%s/%s misaligned: %d vs %d", pair[0], pair[1], a.At.Y, b.At.Y)
		}
		if a.Layer != b.Layer || a.Width != b.Width {
			t.Errorf("%s/%s rail mismatch", pair[0], pair[1])
		}
	}
	// clock pass-through: top and bottom clock connectors at the same x
	p1, _ := c.ConnectorByName("PHI1")
	p1b, _ := c.ConnectorByName("PHI1B")
	if p1.At.X != p1b.At.X {
		t.Error("PHI1 does not pass through vertically")
	}
}

func TestConnectorPitchRoutable(t *testing.T) {
	// connectors on each edge must be at least a pitch apart per layer
	// so the river router's verifier accepts them
	for _, c := range []*sticks.Cell{SRCell(), NAND(), OR4()} {
		bySide := map[geom.Side][]sticks.Connector{}
		for _, cn := range c.Connectors {
			bySide[cn.Side] = append(bySide[cn.Side], cn)
		}
		for side, conns := range bySide {
			for i, a := range conns {
				for _, b := range conns[i+1:] {
					if a.Layer != b.Layer {
						continue
					}
					var d int
					if side.Vertical() {
						d = abs(a.At.X - b.At.X)
					} else {
						d = abs(a.At.Y - b.At.Y)
					}
					if d < rules.Pitch(a.Layer) {
						t.Errorf("%s: %s and %s only %d apart on %v", c.Name, a.Name, b.Name, d, side)
					}
				}
			}
		}
	}
}

func TestPadFile(t *testing.T) {
	f := PadFile()
	for _, name := range []string{"PADIN", "PADOUT"} {
		sym := f.SymbolByName(name)
		if sym == nil {
			t.Fatalf("%s missing", name)
		}
		cs := sym.Connectors()
		if len(cs) != 1 || cs[0].Name != "P" {
			t.Errorf("%s connectors = %+v", name, cs)
		}
		// connector on the lambda grid
		if cs[0].At.X%rules.Lambda != 0 || cs[0].At.Y%rules.Lambda != 0 {
			t.Errorf("%s connector off grid: %v", name, cs[0].At)
		}
		box, err := f.SymbolBBox(sym.ID)
		if err != nil || box.Empty() {
			t.Errorf("%s bbox: %v %v", name, box, err)
		}
	}
}

func TestCellsAndInstall(t *testing.T) {
	cells, err := Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 7 {
		t.Errorf("cells = %d", len(cells))
	}
	d := core.NewDesign()
	if err := Install(d); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SRCELL", "NAND", "OR4", "PADIN", "PADOUT", "PIPEM", "PIPEP"} {
		if _, ok := d.Cell(name); !ok {
			t.Errorf("library cell %s not installed", name)
		}
	}
}

func TestFilesRoundTrip(t *testing.T) {
	files, err := Files()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pads.cif", "srcell.sticks", "nand.sticks", "or4.sticks"} {
		if len(files[name]) == 0 {
			t.Errorf("%s empty", name)
		}
	}
}

func TestPipeFittingTurnsCorner(t *testing.T) {
	p := PipeFitting("P", geom.NM, 4)
	a, _ := p.ConnectorByName("A")
	b, _ := p.ConnectorByName("B")
	if a.Side != geom.SideLeft || b.Side != geom.SideTop {
		t.Errorf("pipe sides: %v, %v", a.Side, b.Side)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
