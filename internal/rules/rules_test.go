package rules

import (
	"testing"

	"riot/internal/geom"
)

func TestKnownLayerRules(t *testing.T) {
	cases := []struct {
		layer   geom.Layer
		w, s    int
	}{
		{geom.NM, 3, 3},
		{geom.NP, 2, 2},
		{geom.ND, 2, 3},
		{geom.NC, 2, 2},
	}
	for _, c := range cases {
		if MinWidth(c.layer) != c.w || MinSpacing(c.layer) != c.s {
			t.Errorf("%v: %d/%d, want %d/%d", c.layer, MinWidth(c.layer), MinSpacing(c.layer), c.w, c.s)
		}
		if Pitch(c.layer) != c.w+c.s {
			t.Errorf("%v pitch = %d", c.layer, Pitch(c.layer))
		}
	}
}

func TestUnknownLayerConservative(t *testing.T) {
	r := Of(geom.Layer("XX"))
	if r.MinWidth < 3 || r.MinSpacing < 3 {
		t.Errorf("unknown layer rule too permissive: %+v", r)
	}
}

func TestWirePitch(t *testing.T) {
	// two minimum metal wires: (3+3)/2 rounded up + 3 spacing
	if got := WirePitch(geom.NM, 0, 0); got != 6 {
		t.Errorf("min metal pitch = %d", got)
	}
	// a wide and a narrow wire need more separation
	if got := WirePitch(geom.NM, 6, 4); got != (6+4+1)/2+3 {
		t.Errorf("mixed pitch = %d", got)
	}
	if WirePitch(geom.NM, 8, 8) <= WirePitch(geom.NM, 0, 0) {
		t.Error("wider wires should pitch farther apart")
	}
}

func TestConstants(t *testing.T) {
	if Lambda != 250 {
		t.Errorf("lambda = %d centimicrons (Mead & Conway is 2.5 um)", Lambda)
	}
	if ContactSize < TransistorChannelLength {
		t.Error("contact smaller than a channel?")
	}
}
