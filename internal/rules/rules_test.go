package rules

import (
	"testing"

	"riot/internal/geom"
)

func TestKnownLayerRules(t *testing.T) {
	cases := []struct {
		layer   geom.Layer
		w, s    int
	}{
		{geom.NM, 3, 3},
		{geom.NP, 2, 2},
		{geom.ND, 2, 3},
		{geom.NC, 2, 2},
	}
	for _, c := range cases {
		if MinWidth(c.layer) != c.w || MinSpacing(c.layer) != c.s {
			t.Errorf("%v: %d/%d, want %d/%d", c.layer, MinWidth(c.layer), MinSpacing(c.layer), c.w, c.s)
		}
		if Pitch(c.layer) != c.w+c.s {
			t.Errorf("%v pitch = %d", c.layer, Pitch(c.layer))
		}
	}
}

func TestUnknownLayerConservative(t *testing.T) {
	r := Of(geom.Layer("XX"))
	if r.MinWidth < 3 || r.MinSpacing < 3 {
		t.Errorf("unknown layer rule too permissive: %+v", r)
	}
}

func TestWirePitch(t *testing.T) {
	// two minimum metal wires: (3+3)/2 rounded up + 3 spacing
	if got := WirePitch(geom.NM, 0, 0); got != 6 {
		t.Errorf("min metal pitch = %d", got)
	}
	// a wide and a narrow wire need more separation
	if got := WirePitch(geom.NM, 6, 4); got != (6+4+1)/2+3 {
		t.Errorf("mixed pitch = %d", got)
	}
	if WirePitch(geom.NM, 8, 8) <= WirePitch(geom.NM, 0, 0) {
		t.Error("wider wires should pitch farther apart")
	}
}

func TestConstants(t *testing.T) {
	if Lambda != 250 {
		t.Errorf("lambda = %d centimicrons (Mead & Conway is 2.5 um)", Lambda)
	}
	if ContactSize < TransistorChannelLength {
		t.Error("contact smaller than a channel?")
	}
}

// TestOfEdgeCases pins the rule table's fallback behavior: every known
// layer has positive width and spacing, the zero layer and arbitrary
// foreign CIF layer names fall back to the conservative metal-like
// rule, and the fallback is identical however it is reached.
func TestOfEdgeCases(t *testing.T) {
	for _, l := range geom.KnownLayers {
		r := Of(l)
		if r.MinWidth <= 0 || r.MinSpacing <= 0 {
			t.Errorf("%v: non-positive rule %+v", l, r)
		}
	}
	fallback := Of(geom.Layer("XX"))
	for _, l := range []geom.Layer{geom.LayerNone, "Q", "ZZZZ", "nd"} {
		if Of(l) != fallback {
			t.Errorf("unknown layer %q rule %+v differs from fallback %+v", l, Of(l), fallback)
		}
	}
	if MinWidth("XX") != fallback.MinWidth || MinSpacing("XX") != fallback.MinSpacing {
		t.Error("MinWidth/MinSpacing disagree with Of on unknown layers")
	}
	if Pitch("XX") != fallback.MinWidth+fallback.MinSpacing {
		t.Errorf("unknown-layer pitch = %d", Pitch("XX"))
	}
}

// TestWirePitchEdgeCases: zero and negative widths take the layer
// minimum, one-sided zero widths substitute only that side, and the
// function works on unknown layers through the fallback rule.
func TestWirePitchEdgeCases(t *testing.T) {
	// both zero: minimum wires
	if got, want := WirePitch(geom.NP, 0, 0), (2+2+1)/2+2; got != want {
		t.Errorf("zero-width poly pitch = %d, want %d", got, want)
	}
	// negative counts as unset, same as zero
	if WirePitch(geom.NP, -3, -1) != WirePitch(geom.NP, 0, 0) {
		t.Error("negative widths should substitute the layer minimum")
	}
	// one side set: only the other substitutes
	if got, want := WirePitch(geom.NM, 0, 7), (3+7+1)/2+3; got != want {
		t.Errorf("one-sided pitch = %d, want %d", got, want)
	}
	// symmetry: the pitch cannot depend on argument order
	if WirePitch(geom.NM, 4, 8) != WirePitch(geom.NM, 8, 4) {
		t.Error("WirePitch is not symmetric")
	}
	// unknown layer: the conservative fallback rule applies
	fb := Of(geom.Layer("XX"))
	if got, want := WirePitch("XX", 0, 0), (2*fb.MinWidth+1)/2+fb.MinSpacing; got != want {
		t.Errorf("unknown-layer pitch = %d, want %d", got, want)
	}
	// a pitch always clears the two half-widths plus the gap
	for _, w := range []int{1, 2, 5, 9} {
		if got := WirePitch(geom.ND, w, w); got < w+MinSpacing(geom.ND) {
			t.Errorf("width %d: pitch %d leaves wires closer than the rule", w, got)
		}
	}
}
