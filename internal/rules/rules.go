// Package rules holds the lambda-based nMOS design rules shared by the
// stick compactor, the river router and the cell library. The values
// are the Mead & Conway rules the Caltech tools of 1982 targeted; all
// distances are in lambda. The conversion to the centimicron geometry
// that CIF carries is a single multiplication by Lambda.
package rules

import "riot/internal/geom"

// Lambda is the length of one lambda in centimicrons (2.5 micrometres,
// the Mead & Conway textbook process).
const Lambda = 250

// Rule gives the minimum width and the minimum same-layer spacing of a
// layer, in lambda.
type Rule struct {
	MinWidth   int
	MinSpacing int
}

// table is the Mead & Conway nMOS rule set.
var table = map[geom.Layer]Rule{
	geom.ND: {2, 3}, // diffusion: 2 wide, 3 apart
	geom.NP: {2, 2}, // poly: 2 wide, 2 apart
	geom.NM: {3, 3}, // metal: 3 wide, 3 apart
	geom.NC: {2, 2}, // contact cut: 2x2
	geom.NI: {4, 2}, // implant surround is handled by generators
	geom.NB: {2, 2},
	geom.NG: {4, 4},
}

// Of returns the rule for a layer. Unknown layers get conservative
// metal-like values so geometry from foreign files still spaces safely.
func Of(l geom.Layer) Rule {
	if r, ok := table[l]; ok {
		return r
	}
	return Rule{3, 3}
}

// MinWidth returns the minimum wire width of a layer in lambda.
func MinWidth(l geom.Layer) int { return Of(l).MinWidth }

// MinSpacing returns the minimum same-layer spacing of a layer in
// lambda.
func MinSpacing(l geom.Layer) int { return Of(l).MinSpacing }

// Pitch returns the center-to-center pitch of minimum-width wires on a
// layer: width + spacing.
func Pitch(l geom.Layer) int {
	r := Of(l)
	return r.MinWidth + r.MinSpacing
}

// WirePitch returns the center-to-center distance needed between two
// parallel wires of the given widths on the same layer.
func WirePitch(l geom.Layer, w1, w2 int) int {
	r := Of(l)
	if w1 <= 0 {
		w1 = r.MinWidth
	}
	if w2 <= 0 {
		w2 = r.MinWidth
	}
	return (w1+w2+1)/2 + r.MinSpacing
}

// ContactSize is the side of the square metal/poly/diffusion contact
// structure in lambda (cut plus required overlap).
const ContactSize = 4

// TransistorChannelLength is the minimum gate length in lambda.
const TransistorChannelLength = 2
