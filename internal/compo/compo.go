// Package compo implements Riot's Composition Format, "used by Riot to
// save an editing session. It contains a description of composition
// cells including the hierarchy description, locations of instances,
// locations of connectors on the composition cells, and references to
// files which contain the leaf cells used in those compositions."
//
// The format is line oriented:
//
//	RIOT COMPOSITION 1
//	LEAF <name> CIF|STICKS <path>          reference to a leaf-cell file
//	BEGINLEAF <name> CIF|STICKS            leaf cell embedded inline
//	...cif or sticks text...               (cells Riot itself created,
//	ENDLEAF                                 e.g. route cells)
//	COMPOSITION <name>
//	INSTANCE <inst> <cell> <orient> <dx> <dy> <nx> <ny> <sx> <sy>
//	CONNECTOR <name> <x> <y> <layer> <width>
//	END
//
// Compositions appear in dependency order (children first). Comments
// run from '#' to end of line outside embedded leaf blocks.
package compo

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// Save writes every cell of the design to w in composition format.
// Leaf cells with a SourceFile are written as references; leaf cells
// created during the session are embedded inline.
func Save(w io.Writer, d *core.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "RIOT COMPOSITION 1")

	ordered, err := topoOrder(d)
	if err != nil {
		return err
	}
	for _, c := range ordered {
		switch c.Kind {
		case core.LeafCIF:
			if c.SourceFile != "" {
				fmt.Fprintf(bw, "LEAF %s CIF %s\n", c.Name, c.SourceFile)
			} else {
				fmt.Fprintf(bw, "BEGINLEAF %s CIF\n", c.Name)
				f := &cif.File{Symbols: []*cif.Symbol{c.Symbol}}
				if err := cif.Write(bw, f); err != nil {
					return err
				}
				fmt.Fprintln(bw, "ENDLEAF")
			}
		case core.LeafSticks:
			if c.SourceFile != "" {
				fmt.Fprintf(bw, "LEAF %s STICKS %s\n", c.Name, c.SourceFile)
			} else {
				fmt.Fprintf(bw, "BEGINLEAF %s STICKS\n", c.Name)
				if err := sticks.Write(bw, c.Sticks); err != nil {
					return err
				}
				fmt.Fprintln(bw, "ENDLEAF")
			}
		case core.Composition:
			fmt.Fprintf(bw, "COMPOSITION %s\n", c.Name)
			for _, in := range c.Instances {
				fmt.Fprintf(bw, "INSTANCE %s %s %s %d %d %d %d %d %d\n",
					in.Name, in.Cell.Name, in.Tr.O, in.Tr.D.X, in.Tr.D.Y, in.Nx, in.Ny, in.Sx, in.Sy)
			}
			for _, cn := range c.ExtraConnectors {
				fmt.Fprintf(bw, "CONNECTOR %s %d %d %s %d\n", cn.Name, cn.At.X, cn.At.Y, cn.Layer, cn.Width)
			}
			fmt.Fprintln(bw, "END")
		}
	}
	return bw.Flush()
}

// topoOrder returns the design's cells children-first, leaf cells
// before compositions that use them.
func topoOrder(d *core.Design) ([]*core.Cell, error) {
	var out []*core.Cell
	state := map[*core.Cell]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(c *core.Cell) error
	visit = func(c *core.Cell) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("compo: hierarchy cycle at %q", c.Name)
		case 2:
			return nil
		}
		state[c] = 1
		for _, in := range c.Instances {
			if err := visit(in.Cell); err != nil {
				return err
			}
		}
		state[c] = 2
		out = append(out, c)
		return nil
	}
	for _, name := range d.CellNames() {
		c, _ := d.Cell(name)
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Load reads a composition-format stream into a fresh design. Leaf
// references are resolved against fsys; pass nil to reject references
// (inline-only files).
func Load(r io.Reader, fsys fs.FS) (*core.Design, error) {
	d := core.NewDesign()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	lineno := 0
	errf := func(format string, args ...any) error {
		return fmt.Errorf("compo: line %d: %s", lineno, fmt.Sprintf(format, args...))
	}

	var cur *core.Cell // open COMPOSITION block
	sawHeader := false
	for sc.Scan() {
		lineno++
		raw := sc.Text()
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fs0 := strings.Fields(line)
		if len(fs0) == 0 {
			continue
		}
		if !sawHeader {
			if len(fs0) < 3 || fs0[0] != "RIOT" || fs0[1] != "COMPOSITION" {
				return nil, errf("missing RIOT COMPOSITION header")
			}
			sawHeader = true
			continue
		}
		switch fs0[0] {
		case "LEAF":
			if cur != nil {
				return nil, errf("LEAF inside COMPOSITION block")
			}
			if len(fs0) != 4 {
				return nil, errf("LEAF needs name, kind and path")
			}
			if fsys == nil {
				return nil, errf("LEAF reference %q but no file system provided", fs0[3])
			}
			cell, err := loadLeafFile(fsys, fs0[1], fs0[2], fs0[3])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := d.AddCell(cell); err != nil {
				return nil, errf("%v", err)
			}
		case "BEGINLEAF":
			if cur != nil {
				return nil, errf("BEGINLEAF inside COMPOSITION block")
			}
			if len(fs0) != 3 {
				return nil, errf("BEGINLEAF needs name and kind")
			}
			var body strings.Builder
			done := false
			for sc.Scan() {
				lineno++
				if strings.TrimSpace(sc.Text()) == "ENDLEAF" {
					done = true
					break
				}
				body.WriteString(sc.Text())
				body.WriteByte('\n')
			}
			if !done {
				return nil, errf("unterminated BEGINLEAF %s", fs0[1])
			}
			cell, err := parseLeaf(fs0[1], fs0[2], body.String())
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := d.AddCell(cell); err != nil {
				return nil, errf("%v", err)
			}
		case "COMPOSITION":
			if cur != nil {
				return nil, errf("nested COMPOSITION")
			}
			if len(fs0) != 2 {
				return nil, errf("COMPOSITION needs a name")
			}
			cur = core.NewComposition(fs0[1])
		case "INSTANCE":
			if cur == nil {
				return nil, errf("INSTANCE outside COMPOSITION")
			}
			if len(fs0) != 10 {
				return nil, errf("INSTANCE needs 9 fields")
			}
			cellRef, ok := d.Cell(fs0[2])
			if !ok {
				return nil, errf("instance %q references undefined cell %q (compositions must be child-first)", fs0[1], fs0[2])
			}
			o, err := geom.ParseOrient(fs0[3])
			if err != nil {
				return nil, errf("%v", err)
			}
			nums, err := ints(fs0[4:])
			if err != nil {
				return nil, errf("%v", err)
			}
			in := &core.Instance{
				Name: fs0[1], Cell: cellRef,
				Tr: geom.MakeTransform(o, geom.Pt(nums[0], nums[1])),
				Nx: nums[2], Ny: nums[3], Sx: nums[4], Sy: nums[5],
			}
			if err := in.Validate(); err != nil {
				return nil, errf("%v", err)
			}
			cur.Instances = append(cur.Instances, in)
		case "CONNECTOR":
			if cur == nil {
				return nil, errf("CONNECTOR outside COMPOSITION")
			}
			if len(fs0) != 6 {
				return nil, errf("CONNECTOR needs 5 fields")
			}
			nums, err := ints([]string{fs0[2], fs0[3], fs0[5]})
			if err != nil {
				return nil, errf("%v", err)
			}
			cur.ExtraConnectors = append(cur.ExtraConnectors, core.Connector{
				Name: fs0[1], At: geom.Pt(nums[0], nums[1]),
				Layer: geom.Layer(fs0[4]), Width: nums[2],
			})
		case "END":
			if cur == nil {
				return nil, errf("END outside COMPOSITION")
			}
			if err := d.AddCell(cur); err != nil {
				return nil, errf("%v", err)
			}
			cur = nil
		default:
			return nil, errf("unknown keyword %q", fs0[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("compo: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("compo: unterminated COMPOSITION %q", cur.Name)
	}
	return d, nil
}

// loadLeafFile reads a referenced leaf-cell file from fsys.
func loadLeafFile(fsys fs.FS, name, kind, path string) (*core.Cell, error) {
	data, err := fs.ReadFile(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("leaf %s: %w", name, err)
	}
	cell, err := parseLeaf(name, kind, string(data))
	if err != nil {
		return nil, err
	}
	cell.SourceFile = path
	return cell, nil
}

// parseLeaf builds a core leaf cell from CIF or Sticks text.
func parseLeaf(name, kind, text string) (*core.Cell, error) {
	switch strings.ToUpper(kind) {
	case "CIF":
		f, err := cif.ParseString(text)
		if err != nil {
			return nil, err
		}
		sym := f.SymbolByName(name)
		if sym == nil {
			if len(f.Symbols) == 1 {
				sym = f.Symbols[0]
			} else {
				return nil, fmt.Errorf("leaf %s: CIF file does not define a symbol named %q", name, name)
			}
		}
		cell, err := core.NewLeafFromCIF(f, sym)
		if err != nil {
			return nil, err
		}
		cell.Name = name
		return cell, nil
	case "STICKS":
		cells, err := sticks.ParseAll(strings.NewReader(text))
		if err != nil {
			return nil, err
		}
		for _, sc := range cells {
			if sc.Name == name {
				return core.NewLeafFromSticks(sc)
			}
		}
		if len(cells) == 1 {
			cells[0].Name = name
			return core.NewLeafFromSticks(cells[0])
		}
		return nil, fmt.Errorf("leaf %s: sticks file does not define cell %q", name, name)
	default:
		return nil, fmt.Errorf("leaf %s: unknown kind %q", name, kind)
	}
}

func ints(ss []string) ([]int, error) {
	out := make([]int, len(ss))
	for i, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// SortedNames is a helper for deterministic test output: the design's
// cell names in sorted order.
func SortedNames(d *core.Design) []string {
	names := d.CellNames()
	sort.Strings(names)
	return names
}
