package compo

import (
	"strings"
	"testing"
	"testing/fstest"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

const stickSrc = `STICKS GATE
BBOX 0 0 10 10
WIRE NM 2 0 5 10 5
CONNECTOR IN 0 5 NM 2 left
CONNECTOR OUT 10 5 NM 2 right
END
`

const cifSrc = "DS 1; 9 PAD; L NM; B 2500 2500 1250 1250; 94 P 1250 0 NM 500; DF; E\n"

func buildDesign(t *testing.T) *core.Design {
	t.Helper()
	d := core.NewDesign()
	sc, err := sticks.ParseString(stickSrc)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := core.NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	gate.SourceFile = "cells/gate.sticks"
	if err := d.AddCell(gate); err != nil {
		t.Fatal(err)
	}

	// an inline (session-created) sticks cell, like a route cell
	rc, err := sticks.ParseString("STICKS ROUTE1\nBBOX 0 0 8 6\nWIRE NM 3 0 0 0 6\nCONNECTOR A 0 0 NM 3 bottom\nCONNECTOR B 0 6 NM 3 top\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	route, err := core.NewLeafFromSticks(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(route); err != nil {
		t.Fatal(err)
	}

	sub := core.NewComposition("SUB")
	sub.Instances = append(sub.Instances,
		&core.Instance{Name: "g1", Cell: gate, Tr: geom.Identity, Nx: 1, Ny: 1},
		&core.Instance{Name: "g2", Cell: gate, Tr: geom.MakeTransform(geom.R90, geom.Pt(5000, 0)), Nx: 2, Ny: 1, Sx: 2500},
	)
	if err := d.AddCell(sub); err != nil {
		t.Fatal(err)
	}

	top := core.NewComposition("TOP")
	top.Instances = append(top.Instances,
		&core.Instance{Name: "s", Cell: sub, Tr: geom.Identity, Nx: 1, Ny: 1},
		&core.Instance{Name: "r", Cell: route, Tr: geom.MakeTransform(geom.MXR180, geom.Pt(100, 200)), Nx: 1, Ny: 1},
	)
	top.ExtraConnectors = append(top.ExtraConnectors, core.Connector{
		Name: "CLK", At: geom.Pt(0, 500), Layer: geom.NM, Width: 750,
	})
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	return d
}

func testFS() fstest.MapFS {
	return fstest.MapFS{
		"cells/gate.sticks": {Data: []byte(stickSrc)},
		"cells/pad.cif":     {Data: []byte(cifSrc)},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := buildDesign(t)
	var b strings.Builder
	if err := Save(&b, d); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "LEAF GATE STICKS cells/gate.sticks") {
		t.Errorf("missing leaf reference:\n%s", text)
	}
	if !strings.Contains(text, "BEGINLEAF ROUTE1 STICKS") {
		t.Errorf("missing inline leaf:\n%s", text)
	}

	d2, err := Load(strings.NewReader(text), testFS())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(SortedNames(d2), ","), strings.Join(SortedNames(d), ","); got != want {
		t.Errorf("cells = %s, want %s", got, want)
	}
	top2, ok := d2.Cell("TOP")
	if !ok {
		t.Fatal("TOP missing")
	}
	r2, ok := top2.InstanceByName("r")
	if !ok {
		t.Fatal("instance r missing")
	}
	if r2.Tr != geom.MakeTransform(geom.MXR180, geom.Pt(100, 200)) {
		t.Errorf("r transform = %v", r2.Tr)
	}
	sub2, _ := d2.Cell("SUB")
	g2, ok := sub2.InstanceByName("g2")
	if !ok || g2.Nx != 2 || g2.Sx != 2500 {
		t.Errorf("g2 = %+v", g2)
	}
	if len(top2.ExtraConnectors) != 1 || top2.ExtraConnectors[0].Name != "CLK" {
		t.Errorf("extra connectors = %+v", top2.ExtraConnectors)
	}
	// geometry identical
	topOrig, _ := d.Cell("TOP")
	if top2.BBox() != topOrig.BBox() {
		t.Errorf("bbox changed: %v -> %v", topOrig.BBox(), top2.BBox())
	}
}

func TestLoadCIFReference(t *testing.T) {
	src := "RIOT COMPOSITION 1\nLEAF PAD CIF cells/pad.cif\nCOMPOSITION TOP\nINSTANCE p PAD R0 0 0 1 1 0 0\nEND\n"
	d, err := Load(strings.NewReader(src), testFS())
	if err != nil {
		t.Fatal(err)
	}
	pad, ok := d.Cell("PAD")
	if !ok || pad.Kind != core.LeafCIF {
		t.Fatalf("pad = %+v", pad)
	}
	if pad.SourceFile != "cells/pad.cif" {
		t.Errorf("source = %q", pad.SourceFile)
	}
	if _, ok := pad.ConnectorByName("P"); !ok {
		t.Error("pad connector lost")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no header", "COMPOSITION X\nEND\n"},
		{"undefined cell", "RIOT COMPOSITION 1\nCOMPOSITION TOP\nINSTANCE a NOPE R0 0 0 1 1 0 0\nEND\n"},
		{"nested composition", "RIOT COMPOSITION 1\nCOMPOSITION A\nCOMPOSITION B\nEND\nEND\n"},
		{"unterminated", "RIOT COMPOSITION 1\nCOMPOSITION A\n"},
		{"instance outside", "RIOT COMPOSITION 1\nINSTANCE a b R0 0 0 1 1 0 0\n"},
		{"bad orient", "RIOT COMPOSITION 1\nCOMPOSITION A\nEND\nCOMPOSITION B\nINSTANCE x A R45 0 0 1 1 0 0\nEND\n"},
		{"unterminated leaf", "RIOT COMPOSITION 1\nBEGINLEAF X STICKS\nSTICKS X\n"},
		{"unknown keyword", "RIOT COMPOSITION 1\nFROB\n"},
		{"leaf without fs", "RIOT COMPOSITION 1\nLEAF A STICKS nofs.sticks\n"},
	}
	for _, c := range cases {
		fsys := testFS()
		var err error
		if c.name == "leaf without fs" {
			_, err = Load(strings.NewReader(c.src), nil)
		} else {
			_, err = Load(strings.NewReader(c.src), fsys)
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadMissingLeafFile(t *testing.T) {
	src := "RIOT COMPOSITION 1\nLEAF G STICKS cells/missing.sticks\n"
	if _, err := Load(strings.NewReader(src), testFS()); err == nil {
		t.Error("missing leaf file accepted")
	}
}

func TestSaveIsChildFirst(t *testing.T) {
	d := buildDesign(t)
	var b strings.Builder
	if err := Save(&b, d); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if strings.Index(text, "COMPOSITION SUB") > strings.Index(text, "COMPOSITION TOP") {
		t.Error("SUB written after TOP")
	}
	if strings.Index(text, "LEAF GATE") > strings.Index(text, "COMPOSITION SUB") {
		t.Error("GATE written after SUB")
	}
}

func TestLoadRecomputesFinishing(t *testing.T) {
	// connectors of loaded composition cells are recomputed from
	// instance positions, preserving Riot's positional semantics
	d := buildDesign(t)
	var b strings.Builder
	if err := Save(&b, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(strings.NewReader(b.String()), testFS())
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := d.Cell("SUB")
	sub2, _ := d2.Cell("SUB")
	c1 := sub.Connectors()
	c2 := sub2.Connectors()
	if len(c1) != len(c2) {
		t.Fatalf("connector counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("connector %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}
