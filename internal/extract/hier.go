package extract

import (
	"fmt"

	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// CellCert is a per-distinct-cell extraction certificate: the cell's
// fragment list, its local net partition, and everything about the
// cell's connectivity that could NOT be settled locally (joins whose
// resolution depends on surrounding material, device probes landing
// off the cell's own diffusion). The hierarchical engine solves each
// distinct (cell, orientation) once into a certificate and composes
// placements by translating it — translation preserves fragment
// emission order, gate-subtraction piece order and locator tie-breaks
// exactly, which is what makes the composed circuit byte-identical to
// the flat solve. Orientation does NOT commute with those orders, so
// certificates are built per orientation from an oriented flatten
// (flatten.CellAt), never by rotating an identity certificate.
type CellCert struct {
	// Frags is the fragment list in solve order, in the oriented local
	// frame (a placement at translation d shifts every rectangle by d).
	Frags []flatten.Shape
	// FragNet maps each fragment to its dense local net id.
	FragNet []int32
	// NetCount is the number of local nets.
	NetCount int
	// Devices lists the cell's transistors in flatten order with their
	// locally-resolved terminals (-1 where resolution needs context).
	Devices []CertDevice
	// Pend is set when any device terminal failed to resolve locally.
	// The flat solver would either find the terminal on a neighbor's
	// material or error; the engine falls back to the flat path so the
	// verdict (including the error message) stays identical.
	Pend bool
	// Joins lists the contact joins that were NOT baked into FragNet:
	// every join with a LayerNone side (the flat solver picks the
	// lowest GLOBAL fragment across eligible layers, a choice that
	// depends on surrounding material), and every named-layer join with
	// a side that found no local material. The engine resolves these in
	// placement context.
	Joins []CertJoin
	// Box is the cell's declared bounding box in the oriented local
	// frame — the seam-trust frame (drc "trusted" pairs, seam.Depth).
	Box geom.Rect
	// MatBox bounds all raw material (shapes, gates, channels) in the
	// oriented local frame; pair interaction tests use it.
	MatBox geom.Rect

	loc *locator
}

// CertDevice is one transistor of a certificate. Terminal nets are
// local net ids, or -1 when the probe found no local material. Gate is
// kept for the engine's cross-occurrence gate/diffusion poison test.
type CertDevice struct {
	Kind                sticks.DeviceKind
	Gate                geom.Rect
	GateNet, ANet, BNet int32
}

// CertJoin is a contact join the certificate left for the engine:
// local-frame points and the layer constraint of each side (LayerNone
// = "any layer below the cut", the CIF NC rule).
type CertJoin struct {
	At     [2]geom.Point
	Layers [2]geom.Layer
}

// CellSolve builds the extraction certificate for one flattened cell.
// fr must be the flatten of a single leaf occurrence (flatten.CellAt
// of a non-composition cell); the fragment pipeline is the exact
// sequential pipeline of the flat solver, so a placement of this
// certificate contributes the same fragments, in the same order, with
// the same intra-cell unions as the flat solve of the whole design.
func CellSolve(fr *flatten.Result) (*CellCert, error) {
	if len(fr.SrcBoxes) != 1 {
		return nil, fmt.Errorf("extract: cell certificate needs exactly one leaf occurrence, got %d", len(fr.SrcBoxes))
	}
	frags, _ := fragment(fr, false, 1)
	uf := geom.NewUnionFind(len(frags))
	byLayer := map[geom.Layer][]int{}
	for i, s := range frags {
		byLayer[s.Layer] = append(byLayer[s.Layer], i)
	}
	for _, idxs := range byLayer {
		sweepUnion(frags, idxs, uf)
	}
	loc := newLocator(frags, false)

	c := &CellCert{Frags: frags, loc: loc, Box: fr.SrcBoxes[0]}

	// Bake only joins that are fully local AND choice-independent: both
	// sides name a layer and both resolve on local material. Any two
	// same-layer fragments containing one point touch and therefore
	// share a net, so whichever fragment a locator picks — ours now, or
	// the flat solver's global one later — the unioned nets agree. A
	// LayerNone side is different: the flat solver takes the lowest
	// global fragment across eligible layers, and material from another
	// occurrence can win that race on a different layer, so those joins
	// must wait for placement context.
	for _, j := range fr.Joins {
		if j.Layers[0] != geom.LayerNone && j.Layers[1] != geom.LayerNone {
			ia := loc.findAt(j.At[0], j.Layers[0])
			ib := loc.findAt(j.At[1], j.Layers[1])
			if ia >= 0 && ib >= 0 {
				uf.Union(ia, ib)
				continue
			}
		}
		c.Joins = append(c.Joins, CertJoin{At: j.At, Layers: j.Layers})
	}

	// dense local net numbering in fragment order — the engine's
	// (occurrence, local net) lexicographic renumbering reproduces the
	// flat solver's first-fragment dense order from this
	netID := make([]int32, len(frags))
	for i := range netID {
		netID[i] = -1
	}
	nets := 0
	c.FragNet = make([]int32, len(frags))
	for i := range frags {
		root := uf.Find(i)
		if netID[root] < 0 {
			netID[root] = int32(nets)
			nets++
		}
		c.FragNet[i] = netID[root]
	}
	c.NetCount = nets

	netAt := func(at geom.Point, layer geom.Layer) int32 {
		i := loc.findOnLayer(at, layer)
		if i < 0 {
			return -1
		}
		return c.FragNet[i]
	}
	for _, d := range fr.Devices {
		cd := CertDevice{
			Kind:    d.Kind,
			Gate:    d.Gate,
			GateNet: netAt(centerOf(d.Gate), geom.NP),
			ANet:    netAt(d.ProbeA, geom.ND),
			BNet:    netAt(d.ProbeB, geom.ND),
		}
		if cd.GateNet < 0 || cd.ANet < 0 || cd.BNet < 0 {
			c.Pend = true
		}
		c.Devices = append(c.Devices, cd)
	}

	for i, s := range fr.Shapes {
		if i == 0 {
			c.MatBox = s.R.Canon()
		} else {
			c.MatBox = c.MatBox.Union(s.R.Canon())
		}
	}
	if len(fr.Shapes) == 0 {
		c.MatBox = geom.R(c.Box.Min.X, c.Box.Min.Y, c.Box.Min.X, c.Box.Min.Y)
	}
	return c, nil
}

// Seal rebuilds the certificate's internal locator (after a disk
// decode) and validates the invariants the engine relies on.
func (c *CellCert) Seal() error {
	if len(c.FragNet) != len(c.Frags) {
		return fmt.Errorf("extract: certificate fragment/net length mismatch")
	}
	for _, n := range c.FragNet {
		if n < 0 || int(n) >= c.NetCount {
			return fmt.Errorf("extract: certificate net id %d out of range", n)
		}
	}
	for _, d := range c.Devices {
		for _, n := range []int32{d.GateNet, d.ANet, d.BNet} {
			if n >= 0 && int(n) >= c.NetCount {
				return fmt.Errorf("extract: certificate device net %d out of range", n)
			}
		}
	}
	c.loc = newLocator(c.Frags, false)
	return nil
}

// FindOnLayer returns the local net of the lowest fragment on the
// layer containing the (local-frame) point, or -1.
func (c *CellCert) FindOnLayer(at geom.Point, layer geom.Layer) int32 {
	i := c.loc.findOnLayer(at, layer)
	if i < 0 {
		return -1
	}
	return c.FragNet[i]
}

// FindAtNone returns the local net of the lowest eligible fragment
// (any layer but metal and cut) containing the point, or -1 — the
// per-occurrence half of the flat solver's LayerNone join rule: the
// flat fragment list is occurrence-major, so the lowest GLOBAL
// fragment lives in the lowest occurrence with any eligible material
// at the point, and within that occurrence it is exactly this pick.
func (c *CellCert) FindAtNone(at geom.Point) int32 {
	i := c.loc.findAt(at, geom.LayerNone)
	if i < 0 {
		return -1
	}
	return c.FragNet[i]
}

// QueryLayer visits the certificate's fragments on one layer whose
// rectangles touch r (local frame). Return false to stop.
func (c *CellCert) QueryLayer(layer geom.Layer, r geom.Rect, fn func(frag int) bool) {
	ix, ok := c.loc.byLayer[layer]
	if !ok {
		return
	}
	ids := c.loc.fragIDs[layer]
	ix.QueryRect(r, func(id int) bool { return fn(ids[id]) })
}

// FragLayers returns the layers the certificate's fragments occupy, in
// no particular order.
func (c *CellCert) FragLayers() []geom.Layer {
	out := make([]geom.Layer, 0, len(c.loc.byLayer))
	for l := range c.loc.byLayer {
		out = append(out, l)
	}
	return out
}
