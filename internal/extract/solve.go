package extract

import (
	"fmt"
	"sort"

	"riot/internal/geom"
)

// solve fragments diffusion at gates, unions touching material and
// assigns nets. With brute set it runs the quadratic reference
// algorithms instead of the sweep-line and spatial index; both paths
// yield byte-identical circuits (the fragment list, and therefore the
// dense net numbering, is order-identical).
func (b *builder) solve(brute bool) (*Circuit, error) {
	frags := b.fragment(brute)

	uf := newUnionFind(len(frags))
	// same-layer touching material is one net
	if brute {
		for i := range frags {
			for j := i + 1; j < len(frags); j++ {
				if frags[i].layer != frags[j].layer {
					continue
				}
				if frags[i].r.Touches(frags[j].r) {
					uf.union(i, j)
				}
			}
		}
	} else {
		byLayer := map[geom.Layer][]int{}
		for i, s := range frags {
			byLayer[s.layer] = append(byLayer[s.layer], i)
		}
		for _, idxs := range byLayer {
			sweepUnion(frags, idxs, uf)
		}
	}

	// point location over the fragments: the brute path scans the full
	// slice, the indexed path asks a per-layer geom.Index. Both return
	// the LOWEST matching fragment index so downstream choices are
	// identical.
	loc := newLocator(frags, brute)

	// contacts join layers at a point
	for k, j := range b.joins {
		la, lb := b.joinLay[k][0], b.joinLay[k][1]
		ia := loc.findAt(j[0], la)
		ib := loc.findAt(j[1], lb)
		if ia >= 0 && ib >= 0 {
			uf.union(ia, ib)
		}
	}

	// dense net numbering
	netID := map[int]int{}
	nets := 0
	netOfFrag := make([]int, len(frags))
	for i := range frags {
		root := uf.find(i)
		id, ok := netID[root]
		if !ok {
			id = nets
			nets++
			netID[root] = id
		}
		netOfFrag[i] = id
	}

	ckt := &Circuit{NetCount: nets, NetOf: map[string]int{}}
	netAt := func(at geom.Point, layer geom.Layer) (int, bool) {
		i := loc.findOnLayer(at, layer)
		if i < 0 {
			return 0, false
		}
		return netOfFrag[i], true
	}

	for _, d := range b.devices {
		gnet, ok := netAt(centerOf(d.gate), geom.NP)
		if !ok {
			return nil, fmt.Errorf("extract: transistor gate at %v has no poly", d.gate)
		}
		anet, okA := netAt(d.probeA, geom.ND)
		bnet, okB := netAt(d.probeB, geom.ND)
		if !okA || !okB {
			return nil, fmt.Errorf("extract: transistor at %v has a floating channel end", d.gate)
		}
		ckt.Transistors = append(ckt.Transistors, Transistor{Kind: d.kind, Gate: gnet, A: anet, B: bnet})
	}

	for name, lb := range b.labels {
		if n, ok := netAt(lb.at, lb.layer); ok {
			ckt.NetOf[name] = n
		}
	}
	return ckt, nil
}

// fragment splits every ND shape around every gate strip that cuts it.
// The indexed path finds cutting gates through a spatial index over
// the gate strips instead of testing all devices against all diffusion;
// candidates are subtracted in device order (non-intersecting gates
// are no-ops in subtract), so the piece sequence matches the brute
// path exactly.
func (b *builder) fragment(brute bool) []shape {
	var gates *geom.Index
	if !brute && len(b.devices) > 0 {
		gates = geom.NewIndex()
		for _, d := range b.devices {
			gates.Insert(d.gate)
		}
		gates.Build()
	}
	frags := make([]shape, 0, len(b.shapes))
	var cand []int
	for _, s := range b.shapes {
		if s.layer != geom.ND {
			frags = append(frags, s)
			continue
		}
		// candidate gate ids, always in device order: the full device
		// list on the brute path, the index's (sorted) touch set
		// otherwise — one subtraction loop keeps both paths
		// byte-identical by construction
		cand = cand[:0]
		if gates != nil {
			gates.QueryRect(s.r, func(id int) bool { cand = append(cand, id); return true })
			sort.Ints(cand)
		} else {
			for id := range b.devices {
				cand = append(cand, id)
			}
		}
		pieces := []geom.Rect{s.r}
		for _, id := range cand {
			var next []geom.Rect
			for _, p := range pieces {
				next = append(next, subtract(p, b.devices[id].gate)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			frags = append(frags, shape{geom.ND, p})
		}
	}
	return frags
}

// sweepUnion unions every touching pair among the given same-layer
// fragments with one sweep over their x-extents. Events are sorted by
// x with entries before exits, so material that only shares an edge or
// corner (x ranges meeting exactly) still counts as touching — the
// closed-interval rule Rect.Touches implements. The active set is kept
// ordered by Min.Y; an entering rectangle unions with the active
// prefix whose Min.Y does not exceed its Max.Y.
func sweepUnion(frags []shape, idxs []int, uf *unionFind) {
	if len(idxs) < 2 {
		return
	}
	type event struct {
		x    int
		exit bool
		frag int
	}
	events := make([]event, 0, 2*len(idxs))
	for _, i := range idxs {
		events = append(events, event{frags[i].r.Min.X, false, i}, event{frags[i].r.Max.X, true, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].x != events[b].x {
			return events[a].x < events[b].x
		}
		if events[a].exit != events[b].exit {
			return !events[a].exit // entries first: edge contact at shared x still touches
		}
		return events[a].frag < events[b].frag
	})

	// active fragments ordered by (Min.Y, frag)
	var active []int
	less := func(f, g int) bool {
		if frags[f].r.Min.Y != frags[g].r.Min.Y {
			return frags[f].r.Min.Y < frags[g].r.Min.Y
		}
		return f < g
	}
	for _, ev := range events {
		if ev.exit {
			at := sort.Search(len(active), func(k int) bool { return !less(active[k], ev.frag) })
			if at < len(active) && active[at] == ev.frag {
				active = append(active[:at], active[at+1:]...)
			}
			continue
		}
		r := frags[ev.frag].r
		// all active rects with Min.Y <= r.Max.Y are y-candidates
		end := sort.Search(len(active), func(k int) bool { return frags[active[k]].r.Min.Y > r.Max.Y })
		for _, a := range active[:end] {
			if frags[a].r.Max.Y >= r.Min.Y {
				uf.union(a, ev.frag)
			}
		}
		at := sort.Search(len(active), func(k int) bool { return !less(active[k], ev.frag) })
		active = append(active, 0)
		copy(active[at+1:], active[at:])
		active[at] = ev.frag
	}
}

// locator answers "which fragment is at this point?" queries. The
// indexed form holds one geom.Index per layer; the brute form scans
// the fragment slice. Both return the lowest fragment index that
// matches, so net lookups are deterministic and identical across the
// two implementations.
type locator struct {
	frags   []shape
	brute   bool
	byLayer map[geom.Layer]*geom.Index
	fragIDs map[geom.Layer][]int // index id -> fragment index, per layer
}

func newLocator(frags []shape, brute bool) *locator {
	l := &locator{frags: frags, brute: brute}
	if brute {
		return l
	}
	l.byLayer = map[geom.Layer]*geom.Index{}
	l.fragIDs = map[geom.Layer][]int{}
	for i, s := range frags {
		ix, ok := l.byLayer[s.layer]
		if !ok {
			ix = geom.NewIndex()
			l.byLayer[s.layer] = ix
		}
		ix.Insert(s.r)
		l.fragIDs[s.layer] = append(l.fragIDs[s.layer], i)
	}
	return l
}

// findOnLayer returns the lowest fragment index on the given layer
// containing at, or -1.
func (l *locator) findOnLayer(at geom.Point, layer geom.Layer) int {
	if l.brute {
		for i, s := range l.frags {
			if s.layer == layer && s.r.Contains(at) {
				return i
			}
		}
		return -1
	}
	ix, ok := l.byLayer[layer]
	if !ok {
		return -1
	}
	best := -1
	ids := l.fragIDs[layer]
	ix.QueryPoint(at, func(id int) bool {
		if f := ids[id]; best < 0 || f < best {
			best = f
		}
		return true
	})
	return best
}

// findAt resolves a contact join point. A named layer restricts the
// search to that layer; LayerNone means "any layer below the cut"
// (anything but metal and the cut itself), the rule cifLeaf uses for
// NC boxes.
func (l *locator) findAt(at geom.Point, layer geom.Layer) int {
	if layer != geom.LayerNone {
		return l.findOnLayer(at, layer)
	}
	if l.brute {
		for i, s := range l.frags {
			if s.layer == geom.NM || s.layer == geom.NC {
				continue
			}
			if s.r.Contains(at) {
				return i
			}
		}
		return -1
	}
	best := -1
	for layer := range l.byLayer {
		if layer == geom.NM || layer == geom.NC {
			continue
		}
		if f := l.findOnLayer(at, layer); f >= 0 && (best < 0 || f < best) {
			best = f
		}
	}
	return best
}

func centerOf(r geom.Rect) geom.Point { return r.Center() }

// subtract returns r minus s (up to four rectangles).
func subtract(r, s geom.Rect) []geom.Rect {
	i := r.Intersect(s)
	if i.Empty() {
		return []geom.Rect{r}
	}
	var out []geom.Rect
	add := func(x geom.Rect) {
		if !x.Empty() {
			out = append(out, x)
		}
	}
	add(geom.R(r.Min.X, r.Min.Y, r.Max.X, i.Min.Y)) // below
	add(geom.R(r.Min.X, i.Max.Y, r.Max.X, r.Max.Y)) // above
	add(geom.R(r.Min.X, i.Min.Y, i.Min.X, i.Max.Y)) // left
	add(geom.R(i.Max.X, i.Min.Y, r.Max.X, i.Max.Y)) // right
	return out
}

// unionFind is a union-by-rank, path-compressing disjoint-set forest:
// find is effectively O(1) amortized, and union never grafts a taller
// tree under a shorter one, so the chains the old rank-less version
// could build on adversarial union orders cannot form.
type unionFind struct {
	parent []int
	rank   []uint8
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{p, make([]uint8, n)}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	switch {
	case u.rank[ra] < u.rank[rb]:
		u.parent[ra] = rb
	case u.rank[ra] > u.rank[rb]:
		u.parent[rb] = ra
	default:
		u.parent[rb] = ra
		u.rank[ra]++
	}
}
