package extract

import (
	"fmt"
	"sort"

	"riot/internal/flatten"
	"riot/internal/geom"
)

// solve fragments diffusion at gates, unions touching material and
// assigns nets. With brute set it runs the quadratic reference
// algorithms instead of the sweep-line and spatial index; both paths
// yield byte-identical circuits (the fragment list, and therefore the
// dense net numbering, is order-identical).
func solve(fr *flatten.Result, brute bool) (*Circuit, error) {
	frags := fragment(fr, brute)

	uf := geom.NewUnionFind(len(frags))
	// same-layer touching material is one net
	if brute {
		for i := range frags {
			for j := i + 1; j < len(frags); j++ {
				if frags[i].Layer != frags[j].Layer {
					continue
				}
				if frags[i].R.Touches(frags[j].R) {
					uf.Union(i, j)
				}
			}
		}
	} else {
		byLayer := map[geom.Layer][]int{}
		for i, s := range frags {
			byLayer[s.Layer] = append(byLayer[s.Layer], i)
		}
		for _, idxs := range byLayer {
			sweepUnion(frags, idxs, uf)
		}
	}

	// point location over the fragments: the brute path scans the full
	// slice, the indexed path asks a per-layer geom.Index. Both return
	// the LOWEST matching fragment index so downstream choices are
	// identical.
	loc := newLocator(frags, brute)

	// contacts join layers at a point
	for _, j := range fr.Joins {
		ia := loc.findAt(j.At[0], j.Layers[0])
		ib := loc.findAt(j.At[1], j.Layers[1])
		if ia >= 0 && ib >= 0 {
			uf.Union(ia, ib)
		}
	}

	// dense net numbering
	netID := map[int]int{}
	nets := 0
	netOfFrag := make([]int, len(frags))
	for i := range frags {
		root := uf.Find(i)
		id, ok := netID[root]
		if !ok {
			id = nets
			nets++
			netID[root] = id
		}
		netOfFrag[i] = id
	}

	ckt := &Circuit{NetCount: nets, NetOf: map[string]int{}}
	netAt := func(at geom.Point, layer geom.Layer) (int, bool) {
		i := loc.findOnLayer(at, layer)
		if i < 0 {
			return 0, false
		}
		return netOfFrag[i], true
	}

	for _, d := range fr.Devices {
		gnet, ok := netAt(centerOf(d.Gate), geom.NP)
		if !ok {
			return nil, fmt.Errorf("extract: transistor gate at %v has no poly", d.Gate)
		}
		anet, okA := netAt(d.ProbeA, geom.ND)
		bnet, okB := netAt(d.ProbeB, geom.ND)
		if !okA || !okB {
			return nil, fmt.Errorf("extract: transistor at %v has a floating channel end", d.Gate)
		}
		ckt.Transistors = append(ckt.Transistors, Transistor{Kind: d.Kind, Gate: gnet, A: anet, B: bnet})
	}

	for name, lb := range fr.Labels {
		if n, ok := netAt(lb.At, lb.Layer); ok {
			ckt.NetOf[name] = n
		}
	}
	return ckt, nil
}

// fragment splits every ND shape around every gate strip that cuts it.
// The indexed path finds cutting gates through a spatial index over
// the gate strips instead of testing all devices against all diffusion;
// candidates are subtracted in device order (non-intersecting gates
// are no-ops in subtract), so the piece sequence matches the brute
// path exactly.
func fragment(fr *flatten.Result, brute bool) []flatten.Shape {
	var gates *geom.Index
	if !brute && len(fr.Devices) > 0 {
		gates = geom.NewIndex()
		for _, d := range fr.Devices {
			gates.Insert(d.Gate)
		}
		gates.Build()
	}
	frags := make([]flatten.Shape, 0, len(fr.Shapes))
	var cand []int
	for _, s := range fr.Shapes {
		if s.Layer != geom.ND {
			frags = append(frags, s)
			continue
		}
		// candidate gate ids, always in device order: the full device
		// list on the brute path, the index's (sorted) touch set
		// otherwise — one subtraction loop keeps both paths
		// byte-identical by construction
		cand = cand[:0]
		if gates != nil {
			gates.QueryRect(s.R, func(id int) bool { cand = append(cand, id); return true })
			sort.Ints(cand)
		} else {
			for id := range fr.Devices {
				cand = append(cand, id)
			}
		}
		pieces := []geom.Rect{s.R}
		for _, id := range cand {
			var next []geom.Rect
			for _, p := range pieces {
				next = append(next, subtract(p, fr.Devices[id].Gate)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			frags = append(frags, flatten.Shape{Layer: geom.ND, R: p})
		}
	}
	return frags
}

// sweepUnion unions every touching pair among the given same-layer
// fragments with one sweep over their x-extents. Events are sorted by
// x with entries before exits, so material that only shares an edge or
// corner (x ranges meeting exactly) still counts as touching — the
// closed-interval rule Rect.Touches implements. The active set is kept
// ordered by Min.Y; an entering rectangle unions with the active
// prefix whose Min.Y does not exceed its Max.Y.
func sweepUnion(frags []flatten.Shape, idxs []int, uf *geom.UnionFind) {
	if len(idxs) < 2 {
		return
	}
	type event struct {
		x    int
		exit bool
		frag int
	}
	events := make([]event, 0, 2*len(idxs))
	for _, i := range idxs {
		events = append(events, event{frags[i].R.Min.X, false, i}, event{frags[i].R.Max.X, true, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].x != events[b].x {
			return events[a].x < events[b].x
		}
		if events[a].exit != events[b].exit {
			return !events[a].exit // entries first: edge contact at shared x still touches
		}
		return events[a].frag < events[b].frag
	})

	// active fragments ordered by (Min.Y, frag)
	var active []int
	less := func(f, g int) bool {
		if frags[f].R.Min.Y != frags[g].R.Min.Y {
			return frags[f].R.Min.Y < frags[g].R.Min.Y
		}
		return f < g
	}
	for _, ev := range events {
		if ev.exit {
			at := sort.Search(len(active), func(k int) bool { return !less(active[k], ev.frag) })
			if at < len(active) && active[at] == ev.frag {
				active = append(active[:at], active[at+1:]...)
			}
			continue
		}
		r := frags[ev.frag].R
		// all active rects with Min.Y <= r.Max.Y are y-candidates
		end := sort.Search(len(active), func(k int) bool { return frags[active[k]].R.Min.Y > r.Max.Y })
		for _, a := range active[:end] {
			if frags[a].R.Max.Y >= r.Min.Y {
				uf.Union(a, ev.frag)
			}
		}
		at := sort.Search(len(active), func(k int) bool { return !less(active[k], ev.frag) })
		active = append(active, 0)
		copy(active[at+1:], active[at:])
		active[at] = ev.frag
	}
}

// locator answers "which fragment is at this point?" queries. The
// indexed form holds one geom.Index per layer; the brute form scans
// the fragment slice. Both return the lowest fragment index that
// matches, so net lookups are deterministic and identical across the
// two implementations.
type locator struct {
	frags   []flatten.Shape
	brute   bool
	byLayer map[geom.Layer]*geom.Index
	fragIDs map[geom.Layer][]int // index id -> fragment index, per layer
}

func newLocator(frags []flatten.Shape, brute bool) *locator {
	l := &locator{frags: frags, brute: brute}
	if brute {
		return l
	}
	l.byLayer = map[geom.Layer]*geom.Index{}
	l.fragIDs = map[geom.Layer][]int{}
	for i, s := range frags {
		ix, ok := l.byLayer[s.Layer]
		if !ok {
			ix = geom.NewIndex()
			l.byLayer[s.Layer] = ix
		}
		ix.Insert(s.R)
		l.fragIDs[s.Layer] = append(l.fragIDs[s.Layer], i)
	}
	return l
}

// findOnLayer returns the lowest fragment index on the given layer
// containing at, or -1.
func (l *locator) findOnLayer(at geom.Point, layer geom.Layer) int {
	if l.brute {
		for i, s := range l.frags {
			if s.Layer == layer && s.R.Contains(at) {
				return i
			}
		}
		return -1
	}
	ix, ok := l.byLayer[layer]
	if !ok {
		return -1
	}
	best := -1
	ids := l.fragIDs[layer]
	ix.QueryPoint(at, func(id int) bool {
		if f := ids[id]; best < 0 || f < best {
			best = f
		}
		return true
	})
	return best
}

// findAt resolves a contact join point. A named layer restricts the
// search to that layer; LayerNone means "any layer below the cut"
// (anything but metal and the cut itself), the rule flatten uses for
// CIF NC boxes.
func (l *locator) findAt(at geom.Point, layer geom.Layer) int {
	if layer != geom.LayerNone {
		return l.findOnLayer(at, layer)
	}
	if l.brute {
		for i, s := range l.frags {
			if s.Layer == geom.NM || s.Layer == geom.NC {
				continue
			}
			if s.R.Contains(at) {
				return i
			}
		}
		return -1
	}
	best := -1
	for layer := range l.byLayer {
		if layer == geom.NM || layer == geom.NC {
			continue
		}
		if f := l.findOnLayer(at, layer); f >= 0 && (best < 0 || f < best) {
			best = f
		}
	}
	return best
}

func centerOf(r geom.Rect) geom.Point { return r.Center() }

// subtract returns r minus s (up to four rectangles).
func subtract(r, s geom.Rect) []geom.Rect {
	i := r.Intersect(s)
	if i.Empty() {
		return []geom.Rect{r}
	}
	var out []geom.Rect
	add := func(x geom.Rect) {
		if !x.Empty() {
			out = append(out, x)
		}
	}
	add(geom.R(r.Min.X, r.Min.Y, r.Max.X, i.Min.Y)) // below
	add(geom.R(r.Min.X, i.Max.Y, r.Max.X, r.Max.Y)) // above
	add(geom.R(r.Min.X, i.Min.Y, i.Min.X, i.Max.Y)) // left
	add(geom.R(i.Max.X, i.Min.Y, r.Max.X, i.Max.Y)) // right
	return out
}
