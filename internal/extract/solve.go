package extract

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"

	"riot/internal/flatten"
	"riot/internal/geom"
)

// solve fragments diffusion at gates, unions touching material and
// assigns nets. With brute set it runs the quadratic reference
// algorithms instead of the sweep-line and spatial index; both paths
// yield byte-identical circuits (the fragment list, and therefore the
// dense net numbering, is order-identical).
func solve(fr *flatten.Result, brute bool) (*Circuit, error) {
	workers := 1
	if !brute {
		workers = runtime.GOMAXPROCS(0)
	}
	ckt, _, err := solveWorkers(fr, brute, workers)
	return ckt, err
}

// solveState is the connectivity scaffolding one solve run leaves
// behind: everything the incremental re-solver needs to splice the
// next run instead of recomputing it. edges holds every same-layer
// touching fragment pair (packed lo<<32|hi) — after an edit the
// surviving edges replay in O(edges) plain unions, with index queries
// only for the fragments the edit produced.
type solveState struct {
	frags  []flatten.Shape
	counts []int32 // fragments produced per input shape (prefix-summable spans)
	edges  []uint64
	nets   []int32 // dense net of each fragment (SolveNets reads it out)
}

// solveWorkers runs the solver with an explicit concurrency width.
// workers > 1 runs the per-layer sweeps, the locator index builds and
// the gate fragmentation concurrently; the result is byte-identical to
// workers == 1 (differential-tested), because fragment order, union
// structure and point-location tie-breaks are all order-independent or
// merged deterministically.
func solveWorkers(fr *flatten.Result, brute bool, workers int) (*Circuit, *solveState, error) {
	frags, counts := fragment(fr, brute, workers)

	uf := geom.NewUnionFind(len(frags))
	var loc *locator
	st := &solveState{frags: frags, counts: counts}
	if brute {
		// quadratic reference: all-pairs touch test
		for i := range frags {
			for j := i + 1; j < len(frags); j++ {
				if frags[i].Layer != frags[j].Layer {
					continue
				}
				if frags[i].R.Touches(frags[j].R) {
					uf.Union(i, j)
					st.edges = append(st.edges, uint64(i)<<32|uint64(j))
				}
			}
		}
		loc = newLocator(frags, true)
	} else {
		byLayer := map[geom.Layer][]int{}
		for i, s := range frags {
			byLayer[s.Layer] = append(byLayer[s.Layer], i)
		}
		if workers > 1 {
			// Per-layer sweeps touch disjoint UnionFind entries (all
			// unions are intra-layer), so they run concurrently into the
			// shared forest, each recording its own edge slice; the
			// locator's per-layer point-location indexes build in
			// parallel with the sweeps.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				loc = newLocator(frags, false)
				loc.buildAll()
			}()
			layerEdges := make([][]uint64, 0, len(byLayer))
			for _, idxs := range byLayer {
				layerEdges = append(layerEdges, nil)
				ep := &layerEdges[len(layerEdges)-1]
				wg.Add(1)
				go func(idxs []int, ep *[]uint64) {
					defer wg.Done()
					*ep = sweepUnion(frags, idxs, uf)
				}(idxs, ep)
			}
			wg.Wait()
			for _, es := range layerEdges {
				st.edges = append(st.edges, es...)
			}
		} else {
			for _, idxs := range byLayer {
				st.edges = append(st.edges, sweepUnion(frags, idxs, uf)...)
			}
			loc = newLocator(frags, false)
		}
	}

	ckt, nets, err := circuitAndNets(fr, frags, uf, loc)
	if err != nil {
		return nil, nil, err
	}
	st.nets = nets
	return ckt, st, nil
}

// circuitFrom resolves contacts, numbers nets densely and reads out
// devices and labels — the order-sensitive tail every solve path
// (brute, indexed, parallel, incremental) shares, so their circuits
// agree byte for byte.
func circuitFrom(fr *flatten.Result, frags []flatten.Shape, uf *geom.UnionFind, loc *locator) (*Circuit, error) {
	ckt, _, err := circuitAndNets(fr, frags, uf, loc)
	return ckt, err
}

// circuitAndNets is circuitFrom plus the per-fragment net assignment
// the LVS reference derivation consumes.
func circuitAndNets(fr *flatten.Result, frags []flatten.Shape, uf *geom.UnionFind, loc *locator) (*Circuit, []int32, error) {
	// contacts join layers at a point
	for _, j := range fr.Joins {
		ia := loc.findAt(j.At[0], j.Layers[0])
		ib := loc.findAt(j.At[1], j.Layers[1])
		if ia >= 0 && ib >= 0 {
			uf.Union(ia, ib)
		}
	}

	// dense net numbering (roots are fragment indices, so a flat table
	// replaces a map on this hot path)
	netID := make([]int32, len(frags))
	for i := range netID {
		netID[i] = -1
	}
	nets := 0
	netOfFrag := make([]int32, len(frags))
	for i := range frags {
		root := uf.Find(i)
		if netID[root] < 0 {
			netID[root] = int32(nets)
			nets++
		}
		netOfFrag[i] = netID[root]
	}

	ckt := &Circuit{NetCount: nets, NetOf: map[string]int{}}
	netAt := func(at geom.Point, layer geom.Layer) (int, bool) {
		i := loc.findOnLayer(at, layer)
		if i < 0 {
			return 0, false
		}
		return int(netOfFrag[i]), true
	}

	for _, d := range fr.Devices {
		gnet, ok := netAt(centerOf(d.Gate), geom.NP)
		if !ok {
			return nil, nil, fmt.Errorf("extract: transistor gate at %v has no poly", d.Gate)
		}
		anet, okA := netAt(d.ProbeA, geom.ND)
		bnet, okB := netAt(d.ProbeB, geom.ND)
		if !okA || !okB {
			return nil, nil, fmt.Errorf("extract: transistor at %v has a floating channel end", d.Gate)
		}
		ckt.Transistors = append(ckt.Transistors, Transistor{Kind: d.Kind, Gate: gnet, A: anet, B: bnet})
	}

	for _, lb := range fr.Labels {
		if n, ok := netAt(lb.At, lb.Layer); ok {
			ckt.NetOf[lb.Name] = n
		}
	}
	return ckt, netOfFrag, nil
}

// fragment splits every ND shape around every gate strip that cuts it,
// returning the fragments plus the number of fragments each input shape
// produced (non-ND shapes pass through as one fragment). The indexed
// path finds cutting gates through a spatial index over the gate strips
// instead of testing all devices against all diffusion; candidates are
// subtracted in device order (non-intersecting gates are no-ops in
// subtract), so the piece sequence matches the brute path exactly.
// workers > 1 chunks the shape list across goroutines — each worker
// queries its own clone of the gate index — and merges the chunks in
// shape order, keeping the output byte-identical.
func fragment(fr *flatten.Result, brute bool, workers int) ([]flatten.Shape, []int32) {
	var gates *geom.Index
	if !brute && len(fr.Devices) > 0 {
		gates = geom.NewIndex()
		for _, d := range fr.Devices {
			gates.Insert(d.Gate)
		}
		gates.Build()
	}

	const parallelMinShapes = 2048
	if brute || workers < 2 || len(fr.Shapes) < parallelMinShapes {
		frags := make([]flatten.Shape, 0, len(fr.Shapes))
		counts := make([]int32, len(fr.Shapes))
		var cand []int
		for si, s := range fr.Shapes {
			n := len(frags)
			frags = fragmentShape(fr, s, gates, brute, &cand, frags)
			counts[si] = int32(len(frags) - n)
		}
		return frags, counts
	}

	if workers > len(fr.Shapes) {
		workers = len(fr.Shapes)
	}
	type chunk struct {
		frags  []flatten.Shape
		counts []int32
	}
	chunks := make([]chunk, workers)
	// one query handle per worker: clones share the built bins but keep
	// private visit markers (cloning up front, before any worker
	// queries, keeps the source index untouched)
	gateIx := make([]*geom.Index, workers)
	for w := range gateIx {
		if gates == nil {
			break
		}
		if w == 0 {
			gateIx[w] = gates
		} else {
			gateIx[w] = gates.Clone()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(fr.Shapes)/workers, (w+1)*len(fr.Shapes)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := gateIx[w]
			frags := make([]flatten.Shape, 0, hi-lo)
			counts := make([]int32, hi-lo)
			var cand []int
			for si := lo; si < hi; si++ {
				n := len(frags)
				frags = fragmentShape(fr, fr.Shapes[si], g, false, &cand, frags)
				counts[si-lo] = int32(len(frags) - n)
			}
			chunks[w] = chunk{frags, counts}
		}(w, lo, hi)
	}
	wg.Wait()
	frags := make([]flatten.Shape, 0, len(fr.Shapes))
	counts := make([]int32, 0, len(fr.Shapes))
	for _, c := range chunks {
		frags = append(frags, c.frags...)
		counts = append(counts, c.counts...)
	}
	return frags, counts
}

// fragmentShape appends shape s's fragments to out: the shape itself
// for non-diffusion, otherwise the diffusion minus every cutting gate,
// subtracted in device order. cand is scratch for the candidate list.
func fragmentShape(fr *flatten.Result, s flatten.Shape, gates *geom.Index, brute bool, cand *[]int, out []flatten.Shape) []flatten.Shape {
	if s.Layer != geom.ND {
		return append(out, s)
	}
	// candidate gate ids, always in device order: the full device list
	// on the brute path, the index's touch set (sorted) otherwise — one
	// subtraction loop keeps both paths byte-identical by construction
	c := (*cand)[:0]
	if gates != nil {
		gates.QueryRect(s.R, func(id int) bool { c = append(c, id); return true })
		sort.Ints(c)
	} else if brute {
		for id := range fr.Devices {
			c = append(c, id)
		}
	}
	*cand = c
	pieces := []geom.Rect{s.R}
	for _, id := range c {
		var next []geom.Rect
		for _, p := range pieces {
			next = append(next, subtract(p, fr.Devices[id].Gate)...)
		}
		pieces = next
	}
	for _, p := range pieces {
		out = append(out, flatten.Shape{Layer: geom.ND, R: p})
	}
	return out
}

// sweepActiveSliceMax is the measured active-set size above which
// sweepUnion switches its active set from the ordered slice to the
// geom.SweepSet skip list. The slice's contiguous memmove beats the
// skip list's pointer walk decisively at small and medium sizes
// (BenchmarkSweepSetCrossover in internal/geom, and direct layer-sweep
// measurements on 32x32 SRCELL arrays where max active is ~300, both
// show the slice 3-4x faster); what the skip list removes is the
// quadratic worst case — O(active) memmove per insert/delete once
// thousands of long rectangles are alive at once (wide buses, full-die
// rails). The sweep counts the true maximum active size in a cheap
// pre-pass over the sorted events and only then picks the structure,
// so ordinary layers never regress.
const sweepActiveSliceMax = 4096

// sweepUnion unions every touching pair among the given same-layer
// fragments with one sweep over their x-extents, returning the packed
// pair list (the touch-edge graph the incremental solver replays).
// Events are packed into uint64s ordered by x with entries before
// exits, so material that only shares an edge or corner (x ranges
// meeting exactly) still counts as touching — the closed-interval rule
// Rect.Touches implements. The active set is ordered by (Min.Y, frag);
// an entering rectangle unions with the active prefix whose Min.Y does
// not exceed its Max.Y. Large layers keep the active set in a
// geom.SweepSet skip list, small ones in an ordered slice; both orders
// are identical, so the union structure is too.
func sweepUnion(frags []flatten.Shape, idxs []int, uf *geom.UnionFind) []uint64 {
	if len(idxs) < 2 {
		return nil
	}
	events := sweepEvents(frags, idxs)

	// pre-pass: the peak number of simultaneously active rectangles
	// decides the active-set structure
	const exitBit = 1 << 32
	maxActive, cur := 0, 0
	for _, ev := range events {
		if ev&exitBit != 0 {
			cur--
		} else if cur++; cur > maxActive {
			maxActive = cur
		}
	}
	if maxActive > sweepActiveSliceMax {
		return sweepSkip(frags, events, uf)
	}
	return sweepSlice(frags, events, uf)
}

// packFragEdge packs a touching fragment pair, low index first.
func packFragEdge(a, b int) uint64 {
	if b < a {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// sweepEvents builds the sorted event stream for a sweep over the
// given fragments' x-extents. Each event packs x (biased to unsigned,
// 31 bits) in the high bits, then the entry/exit bit (entries first),
// then the fragment id — so a plain integer sort yields the sweep
// order. Design coordinates are centimicrons well inside +-2^30;
// anything outside falls back to the comparator sort.
func sweepEvents(frags []flatten.Shape, idxs []int) []uint64 {
	const exitBit = 1 << 32
	const xBias = 1 << 30
	events := make([]uint64, 0, 2*len(idxs))
	packable := true
	for _, i := range idxs {
		r := frags[i].R
		if r.Min.X <= -xBias || r.Max.X >= xBias || i >= exitBit {
			packable = false
			break
		}
		ux0 := uint64(int64(r.Min.X) + xBias)
		ux1 := uint64(int64(r.Max.X) + xBias)
		events = append(events, ux0<<33|uint64(i), ux1<<33|exitBit|uint64(i))
	}
	if packable {
		slices.Sort(events)
	} else {
		events = events[:0]
		for _, i := range idxs {
			events = append(events, uint64(i), exitBit|uint64(i))
		}
		// sort by the same (x, entries-first, frag) order, reading
		// coordinates through the fragment list
		slices.SortFunc(events, func(a, b uint64) int {
			fa, fb := int(a&(exitBit-1)), int(b&(exitBit-1))
			ea, eb := a&exitBit != 0, b&exitBit != 0
			xa, xb := frags[fa].R.Min.X, frags[fb].R.Min.X
			if ea {
				xa = frags[fa].R.Max.X
			}
			if eb {
				xb = frags[fb].R.Max.X
			}
			switch {
			case xa != xb:
				if xa < xb {
					return -1
				}
				return 1
			case ea != eb:
				if !ea {
					return -1
				}
				return 1
			case fa != fb:
				if fa < fb {
					return -1
				}
				return 1
			}
			return 0
		})
	}
	return events
}

// sweepSlice is sweepUnion's small-layer path: the active set is an
// ordered slice with binary-search insert/delete.
func sweepSlice(frags []flatten.Shape, events []uint64, uf *geom.UnionFind) []uint64 {
	const exitBit = 1 << 32
	var edges []uint64
	var active []int
	less := func(f, g int) bool {
		if frags[f].R.Min.Y != frags[g].R.Min.Y {
			return frags[f].R.Min.Y < frags[g].R.Min.Y
		}
		return f < g
	}
	for _, ev := range events {
		frag := int(ev & (exitBit - 1))
		if ev&exitBit != 0 {
			at := sort.Search(len(active), func(k int) bool { return !less(active[k], frag) })
			if at < len(active) && active[at] == frag {
				active = append(active[:at], active[at+1:]...)
			}
			continue
		}
		r := frags[frag].R
		// all active rects with Min.Y <= r.Max.Y are y-candidates
		end := sort.Search(len(active), func(k int) bool { return frags[active[k]].R.Min.Y > r.Max.Y })
		for _, a := range active[:end] {
			if frags[a].R.Max.Y >= r.Min.Y {
				uf.Union(a, frag)
				edges = append(edges, packFragEdge(a, frag))
			}
		}
		at := sort.Search(len(active), func(k int) bool { return !less(active[k], frag) })
		active = append(active, 0)
		copy(active[at+1:], active[at:])
		active[at] = frag
	}
	return edges
}

// sweepSkip is sweepUnion's large-layer path: the active set is a skip
// list keyed by (Min.Y, frag).
func sweepSkip(frags []flatten.Shape, events []uint64, uf *geom.UnionFind) []uint64 {
	const exitBit = 1 << 32
	var edges []uint64
	active := geom.NewSweepSet()
	for _, ev := range events {
		frag := int(ev & (exitBit - 1))
		minY := frags[frag].R.Min.Y
		if ev&exitBit != 0 {
			active.Delete(minY, frag)
			continue
		}
		r := frags[frag].R
		active.VisitPrefix(r.Max.Y, func(a int) bool {
			if frags[a].R.Max.Y >= r.Min.Y {
				uf.Union(a, frag)
				edges = append(edges, packFragEdge(a, frag))
			}
			return true
		})
		active.Insert(minY, frag)
	}
	return edges
}

// locator answers "which fragment is at this point?" queries. The
// indexed form holds one geom.Index per layer; the brute form scans
// the fragment slice. Both return the lowest fragment index that
// matches, so net lookups are deterministic and identical across the
// two implementations.
type locator struct {
	frags   []flatten.Shape
	brute   bool
	byLayer map[geom.Layer]*geom.Index
	fragIDs map[geom.Layer][]int // index id -> fragment index, per layer
}

func newLocator(frags []flatten.Shape, brute bool) *locator {
	l := &locator{frags: frags, brute: brute}
	if brute {
		return l
	}
	l.byLayer = map[geom.Layer]*geom.Index{}
	l.fragIDs = map[geom.Layer][]int{}
	for i, s := range frags {
		ix, ok := l.byLayer[s.Layer]
		if !ok {
			ix = geom.NewIndex()
			l.byLayer[s.Layer] = ix
		}
		ix.Insert(s.R)
		l.fragIDs[s.Layer] = append(l.fragIDs[s.Layer], i)
	}
	return l
}

// buildAll front-loads every per-layer index build (they are otherwise
// lazy), so a solve can overlap them with the connectivity sweeps.
func (l *locator) buildAll() {
	for _, ix := range l.byLayer {
		ix.Build()
	}
}

// splice refills the locator for a spliced fragment list, rebuilding
// only the per-layer indexes whose rectangle sequence could have
// changed. dirty marks those layers: a layer none of whose fragments
// were added, removed or re-derived has a rectangle sequence identical
// to the previous run's (copied spans preserve both content and
// relative order), so its spatial index — the expensive insert+build —
// carries over untouched and only the cheap id map refills. This is
// the ROADMAP follow-up to the O(n) per-splice locator rebuild: on a
// one-cell edit, typically one or two layers are dirty and the rest of
// the design's indexes are reused.
func (l *locator) splice(frags []flatten.Shape, dirty map[geom.Layer]bool) {
	l.frags, l.brute = frags, false
	if l.byLayer == nil {
		l.byLayer = map[geom.Layer]*geom.Index{}
		l.fragIDs = map[geom.Layer][]int{}
	}
	for lay := range l.fragIDs {
		l.fragIDs[lay] = l.fragIDs[lay][:0]
	}
	for i, s := range frags {
		l.fragIDs[s.Layer] = append(l.fragIDs[s.Layer], i)
	}
	for lay, ids := range l.fragIDs {
		if len(ids) == 0 {
			// the layer vanished; drop it so queries cannot hit stale
			// geometry
			delete(l.byLayer, lay)
			delete(l.fragIDs, lay)
			continue
		}
		ix, ok := l.byLayer[lay]
		if ok && !dirty[lay] && ix.Len() == len(ids) {
			continue // unchanged rectangle sequence: keep the built index
		}
		if !ok {
			ix = geom.NewIndex()
			l.byLayer[lay] = ix
		} else {
			ix.Reset()
		}
		for _, f := range ids {
			ix.Insert(frags[f].R)
		}
		ix.Build()
	}
}

// rebuild refills the locator for a new fragment list, reusing the
// per-layer index arenas — re-verify loops rebuild the locator every
// run, and the allocation churn of fresh indexes is what this avoids.
func (l *locator) rebuild(frags []flatten.Shape) {
	l.frags, l.brute = frags, false
	if l.byLayer == nil {
		l.byLayer = map[geom.Layer]*geom.Index{}
		l.fragIDs = map[geom.Layer][]int{}
	}
	for _, ix := range l.byLayer {
		ix.Reset()
	}
	for lay := range l.fragIDs {
		l.fragIDs[lay] = l.fragIDs[lay][:0]
	}
	for i, s := range frags {
		ix, ok := l.byLayer[s.Layer]
		if !ok {
			ix = geom.NewIndex()
			l.byLayer[s.Layer] = ix
		}
		ix.Insert(s.R)
		l.fragIDs[s.Layer] = append(l.fragIDs[s.Layer], i)
	}
	// drop layers that vanished so queries cannot hit stale geometry
	for lay, ix := range l.byLayer {
		if ix.Len() == 0 {
			delete(l.byLayer, lay)
			delete(l.fragIDs, lay)
		}
	}
	l.buildAll()
}

// findOnLayer returns the lowest fragment index on the given layer
// containing at, or -1.
func (l *locator) findOnLayer(at geom.Point, layer geom.Layer) int {
	if l.brute {
		for i, s := range l.frags {
			if s.Layer == layer && s.R.Contains(at) {
				return i
			}
		}
		return -1
	}
	ix, ok := l.byLayer[layer]
	if !ok {
		return -1
	}
	best := -1
	ids := l.fragIDs[layer]
	ix.QueryPoint(at, func(id int) bool {
		if f := ids[id]; best < 0 || f < best {
			best = f
		}
		return true
	})
	return best
}

// findAt resolves a contact join point. A named layer restricts the
// search to that layer; LayerNone means "any layer below the cut"
// (anything but metal and the cut itself), the rule flatten uses for
// CIF NC boxes.
func (l *locator) findAt(at geom.Point, layer geom.Layer) int {
	if layer != geom.LayerNone {
		return l.findOnLayer(at, layer)
	}
	if l.brute {
		for i, s := range l.frags {
			if s.Layer == geom.NM || s.Layer == geom.NC {
				continue
			}
			if s.R.Contains(at) {
				return i
			}
		}
		return -1
	}
	best := -1
	for layer := range l.byLayer {
		if layer == geom.NM || layer == geom.NC {
			continue
		}
		if f := l.findOnLayer(at, layer); f >= 0 && (best < 0 || f < best) {
			best = f
		}
	}
	return best
}

func centerOf(r geom.Rect) geom.Point { return r.Center() }

// subtract returns r minus s (up to four rectangles).
func subtract(r, s geom.Rect) []geom.Rect {
	i := r.Intersect(s)
	if i.Empty() {
		return []geom.Rect{r}
	}
	var out []geom.Rect
	add := func(x geom.Rect) {
		if !x.Empty() {
			out = append(out, x)
		}
	}
	add(geom.R(r.Min.X, r.Min.Y, r.Max.X, i.Min.Y)) // below
	add(geom.R(r.Min.X, i.Max.Y, r.Max.X, r.Max.Y)) // above
	add(geom.R(r.Min.X, i.Min.Y, i.Min.X, i.Max.Y)) // left
	add(geom.R(i.Max.X, i.Min.Y, r.Max.X, i.Max.Y)) // right
	return out
}
