package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// editorTop builds a composition of n individually placed SRCELLs plus
// a NAND, mixing layers and devices, under an editor.
func editorTop(t testing.TB, n int) *core.Editor {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x, y := i%6, i/6
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestIncrementalSolveMatchesScratch drives a composition through
// random edits; after each edit the incremental extractor's spliced
// circuit must be byte-identical to a from-scratch solve of the same
// flatten result.
func TestIncrementalSolveMatchesScratch(t *testing.T) {
	e := editorTop(t, 10)
	top := e.Cell
	ca := &flatten.Cache{}
	inc := &Incremental{}
	rng := rand.New(rand.NewSource(23))

	check := func(step int, wantSplice bool) {
		t.Helper()
		fr, delta, err := ca.Flatten(top)
		if err != nil {
			t.Fatal(err)
		}
		got, spliced, errI := inc.Solve(fr, delta)
		want, _, errS := solveWorkers(copyResult(fr), false, 1)
		if (errI == nil) != (errS == nil) {
			t.Fatalf("step %d: incremental err=%v scratch err=%v", step, errI, errS)
		}
		if errI != nil {
			return
		}
		if wantSplice && !spliced {
			t.Fatalf("step %d: splice path did not run", step)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: incremental and scratch circuits differ\ninc:     %+v\nscratch: %+v", step, got, want)
		}
	}

	check(-1, false) // first run primes the cache

	created := 0
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0: // move (sometimes overlapping neighbors)
			in := top.Instances[rng.Intn(len(top.Instances))]
			e.MoveInstance(in, geom.Pt(rng.Intn(600)-300, rng.Intn(600)-300))
		case op < 7: // create
			created++
			cell := "NAND"
			if rng.Intn(2) == 0 {
				cell = "SRCELL"
			}
			tr := geom.MakeTransform(geom.R0, geom.Pt(rng.Intn(3000), rng.Intn(3000)))
			if _, err := e.CreateInstance(cell, fmt.Sprintf("x%d", created), tr, 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1: // delete
			if err := e.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		default: // orient in place
			if len(top.Instances) == 0 {
				continue
			}
			e.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R180)
		}
		check(step, true)
	}
}

// TestIncrementalSolveArrayEdit covers the benchmark scenario: a grid
// of abutted SRCELLs (rails connected across seams, so design-spanning
// components exist), one cell moved, incremental vs scratch.
func TestIncrementalSolveArrayEdit(t *testing.T) {
	e := editorTop(t, 24) // 6x4 abutted grid
	top := e.Cell
	ca := &flatten.Cache{}
	inc := &Incremental{}

	fr, delta, err := ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Solve(fr, delta); err != nil {
		t.Fatal(err)
	}

	// pull one mid-array cell out of its row, then put it back
	in := top.Instances[8]
	for step, d := range []geom.Point{geom.Pt(3*rules.Lambda, 0), geom.Pt(-3*rules.Lambda, 0)} {
		e.MoveInstance(in, d)
		fr, delta, err := ca.Flatten(top)
		if err != nil {
			t.Fatal(err)
		}
		got, spliced, err := inc.Solve(fr, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !spliced {
			t.Fatalf("step %d: splice path did not run", step)
		}
		want, _, err := solveWorkers(copyResult(fr), false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: array edit: incremental and scratch circuits differ", step)
		}
	}
}
