// Package extract recovers a transistor-level circuit from an
// assembled Riot cell: same-layer material that touches is one net,
// contacts join layers, and poly crossing a transistor channel splits
// the diffusion into source and drain.
//
// The original Riot had nothing like this — which is exactly why its
// users "must verify connections with extensive checking". The
// extractor is this reproduction's checking tool: tests use it to
// prove that abutment, routing and stretching really do produce
// electrically connected nets, and the switch-level simulator
// (internal/sim) runs gate truth tables from extracted circuits.
//
// # Algorithm
//
// Extraction consumes the shared flattening layer (internal/flatten),
// which walks the cell hierarchy and emits every mask rectangle,
// device and contact in top-level coordinates — replicated arrays fan
// out across goroutines with a deterministic shard merge. Solving then
// recovers connectivity:
//
//   - diffusion is fragmented at transistor gates, finding the gates
//     that actually cut each diffusion shape through a spatial index
//     (geom.Index) over the gate strips;
//   - same-layer touching material is unioned into nets by a per-layer
//     sweep-line over rectangle x-extents with a union-by-rank,
//     path-compressing union-find — O(n log n + k) instead of the
//     all-pairs O(n^2) touch test;
//   - contacts, device probes and connector labels resolve points to
//     fragments through per-layer geom.Index point location.
//
// A brute-force solver (all-pairs touch, linear point scans,
// sequential flatten) is retained for differential testing; both paths
// produce byte-identical circuits.
package extract

import (
	"runtime"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// Transistor is one extracted device: its kind, the net driving its
// gate, and the nets on either end of its channel.
type Transistor struct {
	Kind sticks.DeviceKind
	Gate int
	A, B int // source/drain (interchangeable in MOS)
}

// Circuit is the extracted netlist. Nets are dense integers; NetOf
// maps connector labels ("OUT" on the cell itself, "inst.CONN" for
// instance connectors) to nets.
type Circuit struct {
	NetCount    int
	Transistors []Transistor
	NetOf       map[string]int
}

// SameNet reports whether two labelled connectors are electrically
// connected.
func (c *Circuit) SameNet(a, b string) bool {
	na, okA := c.NetOf[a]
	nb, okB := c.NetOf[b]
	return okA && okB && na == nb
}

// Net returns the net of a label and whether the label resolved to any
// material.
func (c *Circuit) Net(label string) (int, bool) {
	n, ok := c.NetOf[label]
	return n, ok
}

// FromCell extracts the circuit of a cell. Labels cover the cell's own
// connectors and, for composition cells, every instance connector
// ("inst.CONN").
func FromCell(c *core.Cell) (*Circuit, error) {
	return fromCell(c, false)
}

// fromCell runs either the production extractor (indexed solve,
// parallel flatten) or the brute-force reference (linear scans,
// sequential flatten). Both produce identical circuits; the reference
// exists for differential tests and the scaling benchmark.
func fromCell(c *core.Cell, brute bool) (*Circuit, error) {
	fr, err := flatten.Cell(c, flatten.Options{Sequential: brute})
	if err != nil {
		return nil, err
	}
	return solve(fr, brute)
}

// NetShape is one solved fragment of mask material with the net it
// landed on: the geometry-to-net map behind a Circuit. Src is the
// flatten occurrence id of the leaf that produced the material.
type NetShape struct {
	Layer geom.Layer
	R     geom.Rect
	Src   int
	Net   int32
}

// SolveNets extracts a flattened design's circuit together with its
// per-fragment net map. The LVS reference derivation (internal/lvs)
// uses the fragments to stitch leaf-cell netlists across abutment
// seams: a net is reachable from every rectangle that carries it.
func SolveNets(fr *flatten.Result) (*Circuit, []NetShape, error) {
	ckt, st, err := solveWorkers(fr, false, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, nil, err
	}
	out := make([]NetShape, len(st.frags))
	for i, f := range st.frags {
		out[i] = NetShape{Layer: f.Layer, R: f.R, Src: f.Src, Net: st.nets[i]}
	}
	return ckt, out, nil
}
