// Package extract recovers a transistor-level circuit from an
// assembled Riot cell, flattening the hierarchy into mask shapes and
// computing electrical connectivity: same-layer material that touches
// is one net, contacts join layers, and poly crossing a transistor
// channel splits the diffusion into source and drain.
//
// The original Riot had nothing like this — which is exactly why its
// users "must verify connections with extensive checking". The
// extractor is this reproduction's checking tool: tests use it to
// prove that abutment, routing and stretching really do produce
// electrically connected nets, and the switch-level simulator
// (internal/sim) runs gate truth tables from extracted circuits.
package extract

import (
	"fmt"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// Transistor is one extracted device: its kind, the net driving its
// gate, and the nets on either end of its channel.
type Transistor struct {
	Kind sticks.DeviceKind
	Gate int
	A, B int // source/drain (interchangeable in MOS)
}

// Circuit is the extracted netlist. Nets are dense integers; NetOf
// maps connector labels ("OUT" on the cell itself, "inst.CONN" for
// instance connectors) to nets.
type Circuit struct {
	NetCount    int
	Transistors []Transistor
	NetOf       map[string]int
}

// SameNet reports whether two labelled connectors are electrically
// connected.
func (c *Circuit) SameNet(a, b string) bool {
	na, okA := c.NetOf[a]
	nb, okB := c.NetOf[b]
	return okA && okB && na == nb
}

// Net returns the net of a label and whether the label resolved to any
// material.
func (c *Circuit) Net(label string) (int, bool) {
	n, ok := c.NetOf[label]
	return n, ok
}

// shape is one rectangle of mask material.
type shape struct {
	layer geom.Layer
	r     geom.Rect
}

// device is a transistor's geometry in flattened (centimicron) space.
type device struct {
	kind    sticks.DeviceKind
	gate    geom.Rect // gate poly strip
	channel geom.Rect // diffusion channel extent
	probeA  geom.Point
	probeB  geom.Point
	probeG  geom.Point
}

type builder struct {
	shapes  []shape
	devices []device
	joins   [][2]geom.Point // contact join points (same point, two layers)
	joinLay [][2]geom.Layer
	labels  map[string]struct {
		at    geom.Point
		layer geom.Layer
	}
}

// FromCell extracts the circuit of a cell. Labels cover the cell's own
// connectors and, for composition cells, every instance connector
// ("inst.CONN").
func FromCell(c *core.Cell) (*Circuit, error) {
	b := &builder{labels: map[string]struct {
		at    geom.Point
		layer geom.Layer
	}{}}
	if err := b.cell(c, geom.Identity); err != nil {
		return nil, err
	}
	for _, cn := range c.Connectors() {
		b.labels[cn.Name] = struct {
			at    geom.Point
			layer geom.Layer
		}{cn.At, cn.Layer}
	}
	if c.Kind == core.Composition {
		for _, in := range c.Instances {
			for _, ic := range in.Connectors() {
				b.labels[in.Name+"."+ic.Name] = struct {
					at    geom.Point
					layer geom.Layer
				}{ic.At, ic.Layer}
			}
		}
	}
	return b.solve()
}

func (b *builder) cell(c *core.Cell, tr geom.Transform) error {
	switch c.Kind {
	case core.Composition:
		for _, in := range c.Instances {
			for i := 0; i < in.Nx; i++ {
				for j := 0; j < in.Ny; j++ {
					if err := b.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	case core.LeafSticks:
		return b.sticksLeaf(c.Sticks, tr)
	default:
		return b.cifLeaf(c.CIFFile, c.Symbol, tr)
	}
}

// sticksLeaf flattens a symbolic cell's material.
func (b *builder) sticksLeaf(sc *sticks.Cell, tr geom.Transform) error {
	u := sc.EffUnits()
	sr := func(r geom.Rect) geom.Rect {
		return tr.ApplyRect(geom.R(r.Min.X*u, r.Min.Y*u, r.Max.X*u, r.Max.Y*u))
	}
	sp := func(p geom.Point) geom.Point { return tr.Apply(geom.Pt(p.X*u, p.Y*u)) }

	for _, w := range sc.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		h1, h2 := width/2, width-width/2
		for i := 1; i < len(w.Points); i++ {
			seg := geom.RectFromPoints(w.Points[i-1], w.Points[i])
			seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
			b.shapes = append(b.shapes, shape{w.Layer, sr(seg)})
		}
	}
	for _, ct := range sc.Contacts {
		h := rules.ContactSize / 2
		pad := geom.R(ct.At.X-h, ct.At.Y-h, ct.At.X+h, ct.At.Y+h)
		b.shapes = append(b.shapes,
			shape{ct.From, sr(pad)}, shape{ct.To, sr(pad)})
		b.joins = append(b.joins, [2]geom.Point{sp(ct.At), sp(ct.At)})
		b.joinLay = append(b.joinLay, [2]geom.Layer{ct.From, ct.To})
	}
	for _, d := range sc.Devices {
		gate, channel, _, err := sticks.DeviceBoxes(d)
		if err != nil {
			return err
		}
		// probes just beyond the gate along the channel axis
		var pa, pb geom.Point
		if d.Vertical {
			pa = geom.Pt(d.At.X, gate.Min.Y-1)
			pb = geom.Pt(d.At.X, gate.Max.Y+1)
		} else {
			pa = geom.Pt(gate.Min.X-1, d.At.Y)
			pb = geom.Pt(gate.Max.X+1, d.At.Y)
		}
		dev := device{
			kind:    d.Kind,
			gate:    sr(gate),
			channel: sr(channel),
			probeA:  sp(pa),
			probeB:  sp(pb),
			probeG:  sp(d.At),
		}
		b.devices = append(b.devices, dev)
		// the gate strip is poly material connected to whatever poly
		// feeds it; the channel is diffusion (split at the gate later)
		b.shapes = append(b.shapes, shape{geom.NP, dev.gate})
		b.shapes = append(b.shapes, shape{geom.ND, dev.channel})
	}
	return nil
}

// cifLeaf flattens CIF geometry (pads); CIF leaves carry no extracted
// devices, only material.
func (b *builder) cifLeaf(f *cif.File, sym *cif.Symbol, tr geom.Transform) error {
	for _, e := range sym.ResolveScale() {
		switch el := e.(type) {
		case cif.Box:
			b.shapes = append(b.shapes, shape{el.Layer, tr.ApplyRect(el.Rect())})
		case cif.Wire:
			h1, h2 := el.Width/2, el.Width-el.Width/2
			for i := 1; i < len(el.Points); i++ {
				seg := geom.RectFromPoints(el.Points[i-1], el.Points[i])
				seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
				b.shapes = append(b.shapes, shape{el.Layer, tr.ApplyRect(seg)})
			}
		case cif.Call:
			child := f.SymbolByID(el.SymbolID)
			if child == nil {
				return fmt.Errorf("extract: call of undefined symbol %d", el.SymbolID)
			}
			if err := b.cifLeaf(f, child, el.Transform.Then(tr)); err != nil {
				return err
			}
		case cif.Polygon, cif.RoundFlash, cif.Connector, cif.UserExt:
			// polygons/flashes are rare decorations in this library;
			// connectivity ignores them
		}
	}
	// contacts inside CIF cells: an NC cut joins NM with NP/ND below;
	// model each NC box as a join between NM and whichever other layer
	// is present at its center
	for _, e := range sym.ResolveScale() {
		if el, ok := e.(cif.Box); ok && el.Layer == geom.NC {
			at := tr.Apply(el.Center)
			b.joins = append(b.joins, [2]geom.Point{at, at})
			b.joinLay = append(b.joinLay, [2]geom.Layer{geom.NM, geom.LayerNone})
		}
	}
	return nil
}

// solve fragments diffusion at gates, unions touching material and
// assigns nets.
func (b *builder) solve() (*Circuit, error) {
	// split ND shapes around every gate strip
	var frags []shape
	for _, s := range b.shapes {
		if s.layer != geom.ND {
			frags = append(frags, s)
			continue
		}
		pieces := []geom.Rect{s.r}
		for _, d := range b.devices {
			var next []geom.Rect
			for _, p := range pieces {
				next = append(next, subtract(p, d.gate)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			frags = append(frags, shape{geom.ND, p})
		}
	}

	uf := newUnionFind(len(frags))
	// same-layer touching material is one net
	for i := range frags {
		for j := i + 1; j < len(frags); j++ {
			if frags[i].layer != frags[j].layer {
				continue
			}
			if frags[i].r.Touches(frags[j].r) {
				uf.union(i, j)
			}
		}
	}
	// contacts join layers at a point
	findAt := func(at geom.Point, layer geom.Layer) int {
		for i, s := range frags {
			if layer != geom.LayerNone && s.layer != layer {
				continue
			}
			if layer == geom.LayerNone && (s.layer == geom.NM || s.layer == geom.NC) {
				continue
			}
			if s.r.Contains(at) {
				return i
			}
		}
		return -1
	}
	for k, j := range b.joins {
		la, lb := b.joinLay[k][0], b.joinLay[k][1]
		ia := findAt(j[0], la)
		ib := findAt(j[1], lb)
		if ia >= 0 && ib >= 0 {
			uf.union(ia, ib)
		}
	}

	// dense net numbering
	netID := map[int]int{}
	nets := 0
	netOfFrag := make([]int, len(frags))
	for i := range frags {
		root := uf.find(i)
		id, ok := netID[root]
		if !ok {
			id = nets
			nets++
			netID[root] = id
		}
		netOfFrag[i] = id
	}

	ckt := &Circuit{NetCount: nets, NetOf: map[string]int{}}
	netAt := func(at geom.Point, layer geom.Layer) (int, bool) {
		best := -1
		for i, s := range frags {
			if s.layer != layer {
				continue
			}
			if s.r.Contains(at) {
				best = i
				break
			}
		}
		if best < 0 {
			return 0, false
		}
		return netOfFrag[best], true
	}

	for _, d := range b.devices {
		gnet, ok := netAt(centerOf(d.gate), geom.NP)
		if !ok {
			return nil, fmt.Errorf("extract: transistor gate at %v has no poly", d.gate)
		}
		anet, okA := netAt(d.probeA, geom.ND)
		bnet, okB := netAt(d.probeB, geom.ND)
		if !okA || !okB {
			return nil, fmt.Errorf("extract: transistor at %v has a floating channel end", d.gate)
		}
		ckt.Transistors = append(ckt.Transistors, Transistor{Kind: d.kind, Gate: gnet, A: anet, B: bnet})
	}

	for name, lb := range b.labels {
		if n, ok := netAt(lb.at, lb.layer); ok {
			ckt.NetOf[name] = n
		}
	}
	return ckt, nil
}

func centerOf(r geom.Rect) geom.Point { return r.Center() }

// subtract returns r minus s (up to four rectangles).
func subtract(r, s geom.Rect) []geom.Rect {
	i := r.Intersect(s)
	if i.Empty() {
		return []geom.Rect{r}
	}
	var out []geom.Rect
	add := func(x geom.Rect) {
		if !x.Empty() {
			out = append(out, x)
		}
	}
	add(geom.R(r.Min.X, r.Min.Y, r.Max.X, i.Min.Y)) // below
	add(geom.R(r.Min.X, i.Max.Y, r.Max.X, r.Max.Y)) // above
	add(geom.R(r.Min.X, i.Min.Y, i.Min.X, i.Max.Y)) // left
	add(geom.R(i.Max.X, i.Min.Y, r.Max.X, i.Max.Y)) // right
	return out
}

type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	u.parent[u.find(a)] = u.find(b)
}
