// Package extract recovers a transistor-level circuit from an
// assembled Riot cell, flattening the hierarchy into mask shapes and
// computing electrical connectivity: same-layer material that touches
// is one net, contacts join layers, and poly crossing a transistor
// channel splits the diffusion into source and drain.
//
// The original Riot had nothing like this — which is exactly why its
// users "must verify connections with extensive checking". The
// extractor is this reproduction's checking tool: tests use it to
// prove that abutment, routing and stretching really do produce
// electrically connected nets, and the switch-level simulator
// (internal/sim) runs gate truth tables from extracted circuits.
//
// # Algorithm
//
// Extraction has two phases. Flattening walks the cell hierarchy and
// emits every mask rectangle, device and contact in top-level
// coordinates; replicated arrays (Nx x Ny instances) fan out across
// goroutines, each filling a private shard that is merged back in grid
// order so the flattened shape list is deterministic. Solving then
// recovers connectivity:
//
//   - diffusion is fragmented at transistor gates, finding the gates
//     that actually cut each diffusion shape through a spatial index
//     (geom.Index) over the gate strips;
//   - same-layer touching material is unioned into nets by a per-layer
//     sweep-line over rectangle x-extents with a union-by-rank,
//     path-compressing union-find — O(n log n + k) instead of the
//     all-pairs O(n^2) touch test;
//   - contacts, device probes and connector labels resolve points to
//     fragments through per-layer geom.Index point location.
//
// A brute-force solver (all-pairs touch, linear point scans,
// sequential flatten) is retained for differential testing; both paths
// produce byte-identical circuits.
package extract

import (
	"fmt"
	"runtime"
	"sync"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// Transistor is one extracted device: its kind, the net driving its
// gate, and the nets on either end of its channel.
type Transistor struct {
	Kind sticks.DeviceKind
	Gate int
	A, B int // source/drain (interchangeable in MOS)
}

// Circuit is the extracted netlist. Nets are dense integers; NetOf
// maps connector labels ("OUT" on the cell itself, "inst.CONN" for
// instance connectors) to nets.
type Circuit struct {
	NetCount    int
	Transistors []Transistor
	NetOf       map[string]int
}

// SameNet reports whether two labelled connectors are electrically
// connected.
func (c *Circuit) SameNet(a, b string) bool {
	na, okA := c.NetOf[a]
	nb, okB := c.NetOf[b]
	return okA && okB && na == nb
}

// Net returns the net of a label and whether the label resolved to any
// material.
func (c *Circuit) Net(label string) (int, bool) {
	n, ok := c.NetOf[label]
	return n, ok
}

// shape is one rectangle of mask material.
type shape struct {
	layer geom.Layer
	r     geom.Rect
}

// device is a transistor's geometry in flattened (centimicron) space.
type device struct {
	kind    sticks.DeviceKind
	gate    geom.Rect // gate poly strip
	channel geom.Rect // diffusion channel extent
	probeA  geom.Point
	probeB  geom.Point
	probeG  geom.Point
}

type builder struct {
	shapes  []shape
	devices []device
	joins   [][2]geom.Point // contact join points (same point, two layers)
	joinLay [][2]geom.Layer
	labels  map[string]struct {
		at    geom.Point
		layer geom.Layer
	}
	// sequential disables the parallel array flatten (set on shard
	// builders and on the brute-force reference path).
	sequential bool
}

// FromCell extracts the circuit of a cell. Labels cover the cell's own
// connectors and, for composition cells, every instance connector
// ("inst.CONN").
func FromCell(c *core.Cell) (*Circuit, error) {
	return fromCell(c, false)
}

// fromCell runs either the production extractor (indexed solve,
// parallel flatten) or the brute-force reference (linear scans,
// sequential flatten). Both produce identical circuits; the reference
// exists for differential tests and the scaling benchmark.
func fromCell(c *core.Cell, brute bool) (*Circuit, error) {
	b := &builder{labels: map[string]struct {
		at    geom.Point
		layer geom.Layer
	}{}, sequential: brute}
	if err := b.cell(c, geom.Identity); err != nil {
		return nil, err
	}
	for _, cn := range c.Connectors() {
		b.labels[cn.Name] = struct {
			at    geom.Point
			layer geom.Layer
		}{cn.At, cn.Layer}
	}
	if c.Kind == core.Composition {
		for _, in := range c.Instances {
			for _, ic := range in.Connectors() {
				b.labels[in.Name+"."+ic.Name] = struct {
					at    geom.Point
					layer geom.Layer
				}{ic.At, ic.Layer}
			}
		}
	}
	return b.solve(brute)
}

func (b *builder) cell(c *core.Cell, tr geom.Transform) error {
	switch c.Kind {
	case core.Composition:
		for _, in := range c.Instances {
			if err := b.instance(in, tr); err != nil {
				return err
			}
		}
		return nil
	case core.LeafSticks:
		return b.sticksLeaf(c.Sticks, tr)
	default:
		return b.cifLeaf(c.CIFFile, c.Symbol, tr)
	}
}

// parallelFlattenMin is the replication count below which an array is
// flattened inline; tiny arrays are not worth the goroutine handoff.
const parallelFlattenMin = 8

// instance flattens every array copy of an instance. Large replication
// grids — the paper's Nx x Ny composition primitive — fan out across
// goroutines: the copy list is chunked, each chunk flattens into a
// private shard builder, and shards merge back in chunk order so the
// result is byte-identical to the sequential loop.
func (b *builder) instance(in *core.Instance, tr geom.Transform) error {
	n := in.Nx * in.Ny
	workers := runtime.GOMAXPROCS(0)
	if b.sequential || n < parallelFlattenMin || workers < 2 {
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				if err := b.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	shards := make([]*builder, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		sb := &builder{sequential: true}
		shards[w] = sb
		wg.Add(1)
		go func(sb *builder, lo, hi int, err *error) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				// copy k in the sequential loop's (i outer, j inner)
				// order
				i, j := k/in.Ny, k%in.Ny
				if e := sb.cell(in.Cell, in.CopyTransform(i, j).Then(tr)); e != nil {
					*err = e
					return
				}
			}
		}(sb, lo, hi, &errs[w])
	}
	wg.Wait()
	for w, sb := range shards {
		if errs[w] != nil {
			return errs[w]
		}
		b.shapes = append(b.shapes, sb.shapes...)
		b.devices = append(b.devices, sb.devices...)
		b.joins = append(b.joins, sb.joins...)
		b.joinLay = append(b.joinLay, sb.joinLay...)
	}
	return nil
}

// sticksLeaf flattens a symbolic cell's material.
func (b *builder) sticksLeaf(sc *sticks.Cell, tr geom.Transform) error {
	u := sc.EffUnits()
	sr := func(r geom.Rect) geom.Rect {
		return tr.ApplyRect(geom.R(r.Min.X*u, r.Min.Y*u, r.Max.X*u, r.Max.Y*u))
	}
	sp := func(p geom.Point) geom.Point { return tr.Apply(geom.Pt(p.X*u, p.Y*u)) }

	for _, w := range sc.Wires {
		width := w.Width
		if width <= 0 {
			width = rules.MinWidth(w.Layer)
		}
		h1, h2 := width/2, width-width/2
		for i := 1; i < len(w.Points); i++ {
			seg := geom.RectFromPoints(w.Points[i-1], w.Points[i])
			seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
			b.shapes = append(b.shapes, shape{w.Layer, sr(seg)})
		}
	}
	for _, ct := range sc.Contacts {
		h := rules.ContactSize / 2
		pad := geom.R(ct.At.X-h, ct.At.Y-h, ct.At.X+h, ct.At.Y+h)
		b.shapes = append(b.shapes,
			shape{ct.From, sr(pad)}, shape{ct.To, sr(pad)})
		b.joins = append(b.joins, [2]geom.Point{sp(ct.At), sp(ct.At)})
		b.joinLay = append(b.joinLay, [2]geom.Layer{ct.From, ct.To})
	}
	for _, d := range sc.Devices {
		gate, channel, _, err := sticks.DeviceBoxes(d)
		if err != nil {
			return err
		}
		// probes just beyond the gate along the channel axis
		var pa, pb geom.Point
		if d.Vertical {
			pa = geom.Pt(d.At.X, gate.Min.Y-1)
			pb = geom.Pt(d.At.X, gate.Max.Y+1)
		} else {
			pa = geom.Pt(gate.Min.X-1, d.At.Y)
			pb = geom.Pt(gate.Max.X+1, d.At.Y)
		}
		dev := device{
			kind:    d.Kind,
			gate:    sr(gate),
			channel: sr(channel),
			probeA:  sp(pa),
			probeB:  sp(pb),
			probeG:  sp(d.At),
		}
		b.devices = append(b.devices, dev)
		// the gate strip is poly material connected to whatever poly
		// feeds it; the channel is diffusion (split at the gate later)
		b.shapes = append(b.shapes, shape{geom.NP, dev.gate})
		b.shapes = append(b.shapes, shape{geom.ND, dev.channel})
	}
	return nil
}

// cifLeaf flattens CIF geometry (pads); CIF leaves carry no extracted
// devices, only material.
func (b *builder) cifLeaf(f *cif.File, sym *cif.Symbol, tr geom.Transform) error {
	for _, e := range sym.ResolveScale() {
		switch el := e.(type) {
		case cif.Box:
			b.shapes = append(b.shapes, shape{el.Layer, tr.ApplyRect(el.Rect())})
		case cif.Wire:
			h1, h2 := el.Width/2, el.Width-el.Width/2
			for i := 1; i < len(el.Points); i++ {
				seg := geom.RectFromPoints(el.Points[i-1], el.Points[i])
				seg = geom.R(seg.Min.X-h1, seg.Min.Y-h1, seg.Max.X+h2, seg.Max.Y+h2)
				b.shapes = append(b.shapes, shape{el.Layer, tr.ApplyRect(seg)})
			}
		case cif.Call:
			child := f.SymbolByID(el.SymbolID)
			if child == nil {
				return fmt.Errorf("extract: call of undefined symbol %d", el.SymbolID)
			}
			if err := b.cifLeaf(f, child, el.Transform.Then(tr)); err != nil {
				return err
			}
		case cif.Polygon, cif.RoundFlash, cif.Connector, cif.UserExt:
			// polygons/flashes are rare decorations in this library;
			// connectivity ignores them
		}
	}
	// contacts inside CIF cells: an NC cut joins NM with NP/ND below;
	// model each NC box as a join between NM and whichever other layer
	// is present at its center
	for _, e := range sym.ResolveScale() {
		if el, ok := e.(cif.Box); ok && el.Layer == geom.NC {
			at := tr.Apply(el.Center)
			b.joins = append(b.joins, [2]geom.Point{at, at})
			b.joinLay = append(b.joinLay, [2]geom.Layer{geom.NM, geom.LayerNone})
		}
	}
	return nil
}
