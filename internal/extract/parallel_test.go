package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/flatten"
	"riot/internal/geom"
)

// soupResult builds a random flatten.Result: shapes with degenerate
// slivers, random layers, devices with gates cutting diffusion, joins
// and labels — the same distribution the brute-differential fuzz uses,
// plus devices so the parallel fragment path is exercised.
func soupResult(rng *rand.Rand, n int) *flatten.Result {
	layers := []geom.Layer{geom.ND, geom.NP, geom.NM}
	span := 200 + rng.Intn(2000)
	fr := &flatten.Result{}
	for i := 0; i < n; i++ {
		x, y := rng.Intn(span), rng.Intn(span)
		w, h := rng.Intn(span/4), rng.Intn(span/4)
		lay := layers[rng.Intn(len(layers))]
		r := geom.R(x, y, x+w, y+h)
		fr.Shapes = append(fr.Shapes, flatten.Shape{Layer: lay, R: r})
		fr.Labels = append(fr.Labels, flatten.NamedLabel{Name: fmt.Sprintf("s%d", i), Label: flatten.Label{At: r.Center(), Layer: lay}})
		if rng.Intn(4) == 0 {
			to := geom.LayerNone
			if rng.Intn(2) == 0 {
				to = layers[rng.Intn(len(layers))]
			}
			fr.Joins = append(fr.Joins, flatten.Join{
				At:     [2]geom.Point{r.Center(), r.Center()},
				Layers: [2]geom.Layer{lay, to},
			})
		}
	}
	return fr
}

// copyResult clones the splice-relevant parts so a second solve never
// sees per-layer caches built by the first.
func copyResult(fr *flatten.Result) *flatten.Result {
	return &flatten.Result{Shapes: fr.Shapes, Devices: fr.Devices,
		Joins: fr.Joins, Labels: fr.Labels, SrcBoxes: fr.SrcBoxes}
}

// TestParallelSolveMatchesSequential forces the concurrent solver
// (per-layer sweep goroutines, overlapped locator builds, chunked
// fragmentation) against the sequential one on random soups and SRCELL
// arrays, requiring byte-identical circuits. Run under -race this also
// proves the layer-disjoint UnionFind sharing and the gate-index
// clones are sound.
func TestParallelSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		fr := soupResult(rng, 50+rng.Intn(3000))
		seq, _, errS := solveWorkers(copyResult(fr), false, 1)
		par, _, errP := solveWorkers(copyResult(fr), false, 4)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trial %d: sequential err=%v parallel err=%v", trial, errS, errP)
		}
		if errS != nil {
			continue
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: parallel and sequential circuits differ\npar: %+v\nseq: %+v", trial, par, seq)
		}
	}

	for _, nx := range []int{2, 6} {
		top := srArray(t, nx, 3)
		fr, err := flatten.Cell(top, flatten.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, _, errS := solveWorkers(copyResult(fr), false, 1)
		par, _, errP := solveWorkers(copyResult(fr), false, 4)
		if errS != nil || errP != nil {
			t.Fatalf("array %dx3: errs %v / %v", nx, errS, errP)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("array %dx3: parallel and sequential circuits differ", nx)
		}
	}
}

// TestSweepSkipMatchesSlice runs both active-set structures over the
// same event streams (random soups big and overlapping enough to make
// the sweep work) and requires the identical union structure, pinning
// the skip-list path that only engages above the active-set crossover.
func TestSweepSkipMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(800)
		span := 100 + rng.Intn(600)
		frags := make([]flatten.Shape, n)
		idxs := make([]int, n)
		for i := range frags {
			x, y := rng.Intn(span), rng.Intn(span)
			frags[i] = flatten.Shape{Layer: geom.ND,
				R: geom.R(x, y, x+rng.Intn(span/2), y+rng.Intn(span/2))}
			idxs[i] = i
		}
		ufSlice := geom.NewUnionFind(n)
		ufSkip := geom.NewUnionFind(n)
		events := sweepEvents(frags, idxs)
		sweepSlice(frags, events, ufSlice)
		sweepSkip(frags, events, ufSkip)
		// same partition: equal root equivalence on every pair against
		// a canonical relabeling
		canon := func(uf *geom.UnionFind) []int {
			label := map[int]int{}
			out := make([]int, n)
			for i := 0; i < n; i++ {
				r := uf.Find(i)
				id, ok := label[r]
				if !ok {
					id = len(label)
					label[r] = id
				}
				out[i] = id
			}
			return out
		}
		a, b := canon(ufSlice), canon(ufSkip)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: partitions differ at %d", trial, i)
			}
		}
	}
}
