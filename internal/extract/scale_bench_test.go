package extract

import (
	"fmt"
	"testing"
)

// BenchmarkExtractScale times full extraction of N x N SRCELL arrays —
// the replicated-composition workload the paper's Nx/Ny primitive
// creates — for both the production extractor (spatial index,
// sweep-line connectivity, parallel flatten) and the brute-force
// reference it replaced. BENCH_extract.json records the trajectory;
// the 16x16 case is the ISSUE's >=10x target.
func BenchmarkExtractScale(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		top := srArray(b, n, n)
		b.Run(fmt.Sprintf("%dx%d/indexed", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FromCell(top); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%dx%d/brute", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fromCell(top, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
