package extract

import (
	"fmt"
	"testing"

	"riot/internal/flatten"
)

// BenchmarkExtractScale times full extraction of N x N SRCELL arrays —
// the replicated-composition workload the paper's Nx/Ny primitive
// creates. The production extractor (spatial index, sweep-line
// connectivity, parallel flatten) is timed up to 64x64; the brute-force
// reference it replaced is timed only up to 16x16, beyond which the
// quadratic algorithms are too slow to benchmark honestly (the 16x16
// brute case already runs ~300ms per op). BENCH_extract.json records
// the trajectory.
func BenchmarkExtractScale(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		top := srArray(b, n, n)
		b.Run(fmt.Sprintf("%dx%d/indexed", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FromCell(top); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n > 16 {
			continue
		}
		b.Run(fmt.Sprintf("%dx%d/brute", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fromCell(top, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtractSolveWorkers isolates the solver (one shared
// flatten) and pins the concurrency width, so single-threaded and
// concurrent solves compare directly: per-layer sweeps, locator index
// builds and gate fragmentation all fan out at w4. On a single
// hardware thread the goroutines interleave rather than overlap — the
// numbers then measure the parallel path's overhead, not a speedup;
// BENCH_extract.json records which applies to the machine that
// produced it.
func BenchmarkExtractSolveWorkers(b *testing.B) {
	for _, n := range []int{32, 64} {
		top := srArray(b, n, n)
		fr, err := flatten.Cell(top, flatten.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%dx%d/w%d", n, n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := solveWorkers(copyResult(fr), false, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
