package extract

import (
	"fmt"

	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// GroupCert is the flat-solved connectivity of a GROUP of leaf
// occurrences — the hierarchical engine's quarantine residue. Where a
// CellCert covers one distinct cell in its local frame, a GroupCert
// covers an explicit occurrence list (flatten.Leaves) in global
// coordinates: the group's material is fragmented and swept exactly
// like the flat solver would fragment those occurrences inside a
// whole-design run.
//
// Why the group's fragments are byte-identical to the matching spans
// of a full flat solve: fragmentation subtracts cutting gates from
// diffusion in device order, and a gate that does not intersect a
// shape is a subtract no-op — so as long as every gate that cuts group
// material belongs to the group (the engine guarantees this: a foreign
// gate over group diffusion, or a group gate over foreign diffusion,
// is exactly the poison condition that put both placements in the
// group), restricting the device list to the group's changes nothing.
// Cross-boundary connectivity (group fragments touching composed
// certificate fragments) is NOT local to the group; the engine splices
// it with explicit unions.
type GroupCert struct {
	// Frags is the group fragment list in solve order (occurrence-major,
	// global coordinates).
	Frags []flatten.Shape
	// FragNet maps each fragment to its dense group-local net id
	// (first-fragment order, the same convention as CellCert.FragNet).
	FragNet []int32
	// FragOcc maps each fragment to the group occurrence that produced
	// it (indices into the Leaves list).
	FragOcc []int32
	// NetCount is the number of group-local nets.
	NetCount int
	// Devices lists the group's transistors in occurrence-major flatten
	// order with UNRESOLVED probe points: terminal resolution needs the
	// whole placed design (a probe can land on composed material), so
	// the engine resolves them with global context.
	Devices []GroupDevice
	// Joins lists every contact join of the group, all deferred: the
	// engine resolves both sides against group and composed material
	// under the flat locator's lowest-global-fragment rule.
	Joins []flatten.Join
	// OccFragSpan and OccDevSpan give each group occurrence's
	// half-open [start, end) span in Frags and Devices.
	OccFragSpan [][2]int32
	OccDevSpan  [][2]int32

	loc *locator
}

// GroupDevice is one transistor of a quarantine group, in global
// coordinates, terminals unresolved.
type GroupDevice struct {
	Kind           sticks.DeviceKind
	Gate           geom.Rect
	ProbeA, ProbeB geom.Point
	Occ            int32
}

// GroupSolve fragments and sweeps a group flatten (flatten.Leaves)
// with the flat solver's exact sequential pipeline. It performs no
// join baking and no device resolution — everything that could depend
// on material outside the group is left to the engine.
func GroupSolve(fr *flatten.Result) (*GroupCert, error) {
	frags, counts := fragment(fr, false, 1)
	uf := geom.NewUnionFind(len(frags))
	byLayer := map[geom.Layer][]int{}
	for i, s := range frags {
		byLayer[s.Layer] = append(byLayer[s.Layer], i)
	}
	for _, idxs := range byLayer {
		sweepUnion(frags, idxs, uf)
	}

	g := &GroupCert{Frags: frags, Joins: fr.Joins, loc: newLocator(frags, false)}

	// fragment -> occurrence, via the per-shape fragment counts
	g.FragOcc = make([]int32, 0, len(frags))
	for si, s := range fr.Shapes {
		for k := int32(0); k < counts[si]; k++ {
			g.FragOcc = append(g.FragOcc, int32(s.Src))
		}
	}
	if len(g.FragOcc) != len(frags) {
		return nil, fmt.Errorf("extract: group fragment accounting mismatch (%d vs %d)", len(g.FragOcc), len(frags))
	}

	// dense group-local nets in first-fragment order
	netID := make([]int32, len(frags))
	for i := range netID {
		netID[i] = -1
	}
	nets := 0
	g.FragNet = make([]int32, len(frags))
	for i := range frags {
		root := uf.Find(i)
		if netID[root] < 0 {
			netID[root] = int32(nets)
			nets++
		}
		g.FragNet[i] = netID[root]
	}
	g.NetCount = nets

	for _, d := range fr.Devices {
		g.Devices = append(g.Devices, GroupDevice{
			Kind:   d.Kind,
			Gate:   d.Gate,
			ProbeA: d.ProbeA,
			ProbeB: d.ProbeB,
			Occ:    int32(d.Src),
		})
	}

	// occurrence spans over the occurrence-major fragment and device
	// lists
	n := len(fr.SrcBoxes)
	g.OccFragSpan = occSpans(n, len(g.Frags), func(i int) int32 { return g.FragOcc[i] })
	g.OccDevSpan = occSpans(n, len(g.Devices), func(i int) int32 { return g.Devices[i].Occ })
	return g, nil
}

// occSpans turns an occurrence-major id sequence into per-occurrence
// half-open spans; occurrences that produced nothing get degenerate
// spans at their predecessor's end so iteration stays well-defined.
func occSpans(occs, n int, occOf func(int) int32) [][2]int32 {
	spans := make([][2]int32, occs)
	for o := range spans {
		spans[o][0] = -1
	}
	for i := 0; i < n; i++ {
		o := occOf(i)
		if spans[o][0] < 0 {
			spans[o][0] = int32(i)
		}
		spans[o][1] = int32(i + 1)
	}
	end := int32(0)
	for o := range spans {
		if spans[o][0] < 0 {
			spans[o] = [2]int32{end, end}
		} else {
			end = spans[o][1]
		}
	}
	return spans
}

// FindOnLayer returns the group occurrence and group-local net of the
// lowest group fragment on the layer containing the (global) point, or
// (-1, -1).
func (g *GroupCert) FindOnLayer(at geom.Point, layer geom.Layer) (int32, int32) {
	i := g.loc.findOnLayer(at, layer)
	if i < 0 {
		return -1, -1
	}
	return g.FragOcc[i], g.FragNet[i]
}

// FindAtNone returns the group occurrence and group-local net of the
// lowest eligible fragment (any layer but metal and cut) containing
// the point, or (-1, -1) — the group half of the flat solver's
// LayerNone join rule.
func (g *GroupCert) FindAtNone(at geom.Point) (int32, int32) {
	i := g.loc.findAt(at, geom.LayerNone)
	if i < 0 {
		return -1, -1
	}
	return g.FragOcc[i], g.FragNet[i]
}
