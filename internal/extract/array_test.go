package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// srArray builds a composition holding one SRCELL instance replicated
// nx x ny with abutting spacing (the cell is 20x24 lambda), the
// paper's shift-register-chain composition.
func srArray(t testing.TB, nx, ny int) *core.Cell {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition(fmt.Sprintf("TOP%dX%d", nx, ny))
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	sr, _ := d.Cell("SRCELL")
	in := core.NewInstance("a", sr, geom.Identity)
	in.Nx, in.Ny = nx, ny
	in.Sx, in.Sy = 20*rules.Lambda, 24*rules.Lambda
	top.Instances = append(top.Instances, in)
	return top
}

// TestExtractArraySeams extracts a 3x2 SRCELL array and checks the
// connectivity the replication grid creates: rails run unbroken across
// every column seam, abutting rows short row N's power rail into row
// N+1's ground rail (the cells abut at y=24 lambda where both rails'
// edges meet), and every copy contributes its transistors.
func TestExtractArraySeams(t *testing.T) {
	ckt, err := FromCell(srArray(t, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// 4 devices per SRCELL, 6 copies
	if got := len(ckt.Transistors); got != 24 {
		t.Errorf("transistors = %d, want 24", got)
	}
	// rail continuity across the two column seams, both rows
	for _, pair := range [][2]string{
		{"a.PWRL[0,0]", "a.PWRR[2,0]"},
		{"a.PWRL[0,1]", "a.PWRR[2,1]"},
		{"a.GNDL[0,0]", "a.GNDR[2,0]"},
		{"a.GNDL[0,1]", "a.GNDR[2,1]"},
		// the poly data/clock comb is continuous across columns
		{"a.IN[0,0]", "a.OUT[2,0]"},
		{"a.IN[0,1]", "a.OUT[2,1]"},
		// vertical abutment: row 0's power rail (top edge y=24) meets
		// row 1's ground rail (bottom edge y=24)
		{"a.PWRL[0,0]", "a.GNDL[0,1]"},
	} {
		if !ckt.SameNet(pair[0], pair[1]) {
			t.Errorf("%s and %s should be one net across the array seam", pair[0], pair[1])
		}
	}
	// row 1's power rail tops the array and touches nothing above
	if ckt.SameNet("a.PWRL[0,1]", "a.PWRL[0,0]") {
		t.Error("top row's power rail should not short into the row below")
	}
	for _, lbl := range []string{"a.PWRL[0,0]", "a.GNDR[2,1]", "a.IN[0,0]", "a.TAP[1,0]"} {
		if _, ok := ckt.Net(lbl); !ok {
			t.Errorf("label %s did not resolve to material", lbl)
		}
	}
}

// TestExtractArrayRow checks a one-axis array: single-index connector
// names and the shift-register chain the paper describes ("the array
// elements abut, making the shift register chain connections as well
// as power and ground connections").
func TestExtractArrayRow(t *testing.T) {
	ckt, err := FromCell(srArray(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ckt.Transistors); got != 16 {
		t.Errorf("transistors = %d, want 16", got)
	}
	for _, pair := range [][2]string{
		{"a.PWRL[0]", "a.PWRR[3]"},
		{"a.GNDL[0]", "a.GNDR[3]"},
		{"a.IN[0]", "a.OUT[3]"},
	} {
		if !ckt.SameNet(pair[0], pair[1]) {
			t.Errorf("%s and %s should be one net", pair[0], pair[1])
		}
	}
	if ckt.SameNet("a.PWRL[0]", "a.GNDL[0]") {
		t.Error("rails shorted")
	}
}

// TestExtractIndexedMatchesBrute runs the production extractor and the
// brute-force reference over every library cell and several replicated
// arrays, requiring byte-identical circuits (same dense net numbering,
// same transistor list, same label map).
func TestExtractIndexedMatchesBrute(t *testing.T) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	var cells []*core.Cell
	for _, name := range []string{"SRCELL", "NAND", "OR4", "PIPEM", "PIPEP", "PADIN", "PADOUT"} {
		c, ok := d.Cell(name)
		if !ok {
			t.Fatalf("library cell %s missing", name)
		}
		cells = append(cells, c)
	}
	cells = append(cells, srArray(t, 2, 2), srArray(t, 5, 1), srArray(t, 4, 3))
	for _, c := range cells {
		fast, errF := FromCell(c)
		slow, errB := fromCell(c, true)
		if (errF == nil) != (errB == nil) {
			t.Fatalf("%s: indexed err=%v, brute err=%v", c.Name, errF, errB)
		}
		if errF != nil {
			continue
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%s: indexed and brute circuits differ:\nindexed: %+v\nbrute:   %+v", c.Name, fast, slow)
		}
	}
}

// TestExtractConnectivityFuzz cross-checks the sweep-line/indexed
// solver against the all-pairs reference on random rectangle soups:
// random sizes (including degenerate slivers), random layers, random
// cross-layer contact joins, and a label probing every rectangle's
// center. Any divergence in fragmentation, connectivity or point
// location shows up as a circuit mismatch.
func TestExtractConnectivityFuzz(t *testing.T) {
	layers := []geom.Layer{geom.ND, geom.NP, geom.NM}
	rng := rand.New(rand.NewSource(1982))
	for trial := 0; trial < 40; trial++ {
		span := 200 + rng.Intn(2000)
		n := 5 + rng.Intn(120)
		mk := func() *flatten.Result {
			fr := &flatten.Result{}
			for i := 0; i < n; i++ {
				x, y := rng.Intn(span), rng.Intn(span)
				w, h := rng.Intn(span/4), rng.Intn(span/4)
				lay := layers[rng.Intn(len(layers))]
				r := geom.R(x, y, x+w, y+h)
				fr.Shapes = append(fr.Shapes, flatten.Shape{Layer: lay, R: r})
				fr.Labels = append(fr.Labels, flatten.NamedLabel{Name: fmt.Sprintf("s%d", i), Label: flatten.Label{At: r.Center(), Layer: lay}})
				if rng.Intn(4) == 0 {
					// contact join at this rect's center to a random layer
					// (or the LayerNone wildcard)
					to := geom.Layer(geom.LayerNone)
					if rng.Intn(2) == 0 {
						to = layers[rng.Intn(len(layers))]
					}
					fr.Joins = append(fr.Joins, flatten.Join{
						At:     [2]geom.Point{r.Center(), r.Center()},
						Layers: [2]geom.Layer{lay, to},
					})
				}
			}
			return fr
		}
		// identical inputs: mk consumes rng, so build once and copy
		fr1 := mk()
		fr2 := &flatten.Result{Shapes: fr1.Shapes, Devices: fr1.Devices,
			Joins: fr1.Joins, Labels: fr1.Labels}
		fast, errF := solve(fr1, false)
		slow, errB := solve(fr2, true)
		if errF != nil || errB != nil {
			t.Fatalf("trial %d: solve errors %v / %v", trial, errF, errB)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d (n=%d): indexed and brute circuits differ\nindexed: %+v\nbrute:   %+v",
				trial, n, fast, slow)
		}
	}
}
