package extract

import (
	"runtime"

	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/obs"
)

// Incremental is a circuit extractor that caches its connectivity
// scaffolding between runs: the fragment list (with its per-shape
// spans) and the same-layer touch-edge graph. Given a flatten.Delta
// describing an edit, Solve splices the cached state instead of
// recomputing it:
//
//   - only shapes that are new, or whose gate environment changed
//     (a device was added or removed nearby), are re-fragmented; every
//     other shape's fragment span is copied;
//   - connectivity replays the surviving touch edges in O(edges) plain
//     unions — every touching pair of surviving fragments is a cached
//     edge — and only the fragments the edit produced re-derive their
//     adjacency through queries on the rebuilt per-layer locator;
//   - contacts, net numbering, devices and labels then run exactly the
//     shared circuitFrom tail.
//
// The spliced circuit is byte-identical to a from-scratch solve
// (differential-tested): the fragment list is reproduced span by span,
// the union partition is provably the same closure, and the numbering
// tail is the same code.
type Incremental struct {
	// Trace, when enabled, records an "extract" span per Solve call,
	// noting whether the splice or the full path ran; nil records
	// nothing and costs nothing.
	Trace *obs.Trace

	fr     *flatten.Result
	frags  []flatten.Shape
	counts []int32 // fragments per shape, aligned with fr.Shapes
	edges  []uint64
	loc    *locator // arena-reused across splices

	// spare buffers: the run-before-last's slices, safe to overwrite
	// once no delta references them
	spareFrags  []flatten.Shape
	spareCounts []int32
	spareEdges  []uint64
}

// Solve extracts fr's circuit. delta, when non-nil and based on the
// previous Result this Incremental solved, enables the splice path;
// otherwise a full parallel solve runs and primes the cache. The
// second return reports whether the splice path ran.
func (inc *Incremental) Solve(fr *flatten.Result, delta *flatten.Delta) (*Circuit, bool, error) {
	sp := inc.Trace.Begin("extract")
	defer sp.End()
	if delta == nil || inc.fr == nil || delta.Old != inc.fr {
		sp.Note("path", "full")
		ckt, st, err := solveWorkers(fr, false, runtime.GOMAXPROCS(0))
		if err != nil {
			inc.fr = nil
			return nil, false, err
		}
		inc.fr, inc.frags, inc.counts, inc.edges = fr, st.frags, st.counts, st.edges
		return ckt, false, nil
	}
	sp.Note("path", "splice")
	ckt, err := inc.splice(fr, delta)
	if err != nil {
		return nil, true, err
	}
	return ckt, true, nil
}

// splice runs the incremental solve against the cached previous state.
func (inc *Incremental) splice(fr *flatten.Result, delta *flatten.Delta) (*Circuit, error) {
	old := inc.fr

	// gates that appeared or disappeared: diffusion they touch (in
	// either the old or new position) must re-fragment
	var dirtyGates []geom.Rect
	for j, gone := range delta.OldDeviceGone {
		if gone {
			dirtyGates = append(dirtyGates, old.Devices[j].Gate)
		}
	}
	for i, oi := range delta.DeviceMap {
		if oi < 0 {
			dirtyGates = append(dirtyGates, fr.Devices[i].Gate)
		}
	}

	// edits touch a handful of gates, where the linear scan wins; big
	// deltas get an index so the dirtiness test stays near-constant
	touchesDirtyGate := func(r geom.Rect) bool {
		for _, g := range dirtyGates {
			if g.Touches(r) {
				return true
			}
		}
		return false
	}
	if len(dirtyGates) > 64 {
		dg := geom.NewIndexFrom(dirtyGates)
		dg.Build()
		touchesDirtyGate = func(r geom.Rect) bool {
			hit := false
			dg.QueryRect(r, func(int) bool { hit = true; return false })
			return hit
		}
	}

	// rebuild the gate index over the new device list for the shapes
	// that do re-fragment
	var gates *geom.Index
	if len(fr.Devices) > 0 {
		gates = geom.NewIndex()
		for _, d := range fr.Devices {
			gates.Insert(d.Gate)
		}
		gates.Build()
	}

	// old fragment spans by shape
	oldStarts := make([]int32, len(old.Shapes)+1)
	for j, c := range inc.counts {
		oldStarts[j+1] = oldStarts[j] + c
	}

	// splice the fragment list: copy unchanged spans, re-fragment the
	// rest; track the old->new fragment mapping for the replay. The
	// buffers ping-pong: the run-before-last's slices are reused, the
	// previous run's stay live (they back the current splice).
	frags := inc.spareFrags[:0]
	if cap(frags) < len(inc.frags)+64 {
		frags = make([]flatten.Shape, 0, len(inc.frags)+64)
	}
	counts := inc.spareCounts[:0]
	if cap(counts) < len(fr.Shapes) {
		counts = make([]int32, 0, len(fr.Shapes)+64)
	}
	counts = counts[:len(fr.Shapes)]
	oldFragToNew := make([]int32, len(inc.frags))
	for j := range oldFragToNew {
		oldFragToNew[j] = -1
	}
	resweep := make([]int32, 0, 64) // new fragment ids needing re-derived adjacency
	// layers whose fragment sequence changed; the locator splice below
	// rebuilds only these layers' point-location indexes
	dirtyLayers := map[geom.Layer]bool{}
	var cand []int
	for i, s := range fr.Shapes {
		oi := delta.ShapeMap[i]
		lo := len(frags)
		if oi >= 0 && !(s.Layer == geom.ND && touchesDirtyGate(s.R)) {
			// unchanged shape, unchanged gate environment: copy its span
			oLo, oHi := oldStarts[oi], oldStarts[oi+1]
			frags = append(frags, inc.frags[oLo:oHi]...)
			for k := oLo; k < oHi; k++ {
				oldFragToNew[k] = int32(lo) + k - oLo
			}
		} else {
			frags = fragmentShape(fr, s, gates, false, &cand, frags)
			for k := lo; k < len(frags); k++ {
				resweep = append(resweep, int32(k))
			}
			dirtyLayers[s.Layer] = true
		}
		counts[i] = int32(len(frags) - lo)
	}
	// old fragments with no counterpart (removed shapes, replaced spans)
	// also perturb their layer's sequence
	for k, n := range oldFragToNew {
		if n < 0 {
			dirtyLayers[inc.frags[k].Layer] = true
		}
	}

	// the locator splice doubles as the adjacency oracle for the edit's
	// new fragments; clean layers keep their built indexes, and the
	// per-layer arenas carry across splices either way
	if inc.loc == nil {
		inc.loc = &locator{}
	}
	loc := inc.loc
	loc.splice(frags, dirtyLayers)

	uf := geom.NewUnionFind(len(frags))

	// replay the surviving touch edges: every touching pair of
	// surviving fragments was recorded by the previous run's sweep (or
	// splice), so plain unions reconstruct their partition exactly
	edges := inc.spareEdges[:0]
	if cap(edges) < len(inc.edges)+64 {
		edges = make([]uint64, 0, len(inc.edges)+64)
	}
	for _, e := range inc.edges {
		i, j := oldFragToNew[e>>32], oldFragToNew[e&0xffffffff]
		if i < 0 || j < 0 {
			continue
		}
		uf.Union(int(i), int(j))
		edges = append(edges, packFragEdge(int(i), int(j)))
	}

	// re-derive adjacency for the fragments the edit produced: an
	// index query finds all same-layer touching fragments, closing the
	// union relation exactly as a full sweep would. isNew dedupes the
	// new-new edge recordings (each such pair is seen from both sides).
	isNew := make([]bool, len(frags))
	for _, f := range resweep {
		isNew[f] = true
	}
	for _, f := range resweep {
		s := frags[f]
		ix := loc.byLayer[s.Layer]
		if ix == nil {
			continue
		}
		ids := loc.fragIDs[s.Layer]
		ix.QueryRect(s.R, func(id int) bool {
			if g := ids[id]; g != int(f) {
				uf.Union(g, int(f))
				if !isNew[g] || g < int(f) {
					edges = append(edges, packFragEdge(g, int(f)))
				}
			}
			return true
		})
	}

	// rotate: the previous run's buffers become next splice's spares
	inc.spareFrags, inc.spareCounts, inc.spareEdges = inc.frags, inc.counts, inc.edges
	inc.fr, inc.frags, inc.counts, inc.edges = fr, frags, counts, edges

	return circuitFrom(fr, frags, uf, loc)
}
