package extract

import (
	"testing"

	"riot/internal/core"
	"riot/internal/filter"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const L = rules.Lambda

func libDesign(t *testing.T) *core.Design {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExtractNANDStructure(t *testing.T) {
	d := libDesign(t)
	nand, _ := d.Cell("NAND")
	ckt, err := FromCell(nand)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckt.Transistors) != 3 {
		t.Fatalf("transistors = %d", len(ckt.Transistors))
	}
	enh, dep := 0, 0
	for _, tr := range ckt.Transistors {
		if tr.Kind == sticks.Depletion {
			dep++
			// the depletion pullup's gate is tied to one of its
			// channel ends (the output)
			if tr.Gate != tr.A && tr.Gate != tr.B {
				t.Error("depletion gate not tied to its source")
			}
		} else {
			enh++
		}
	}
	if enh != 2 || dep != 1 {
		t.Errorf("enh/dep = %d/%d", enh, dep)
	}
	// distinct nets for the six interesting labels
	for _, pair := range [][2]string{
		{"A", "B"}, {"A", "OUT"}, {"B", "OUT"},
		{"PWRL", "GNDL"}, {"OUT", "PWRL"}, {"OUT", "GNDL"},
	} {
		if ckt.SameNet(pair[0], pair[1]) {
			t.Errorf("%s and %s shorted", pair[0], pair[1])
		}
	}
}

func TestExtractSeriesChain(t *testing.T) {
	// the NAND pulldowns are in series: B's drain is A's source
	d := libDesign(t)
	nand, _ := d.Cell("NAND")
	ckt, err := FromCell(nand)
	if err != nil {
		t.Fatal(err)
	}
	gnd, _ := ckt.Net("GNDL")
	out, _ := ckt.Net("OUT")
	var mid []int
	for _, tr := range ckt.Transistors {
		if tr.Kind != sticks.Enhancement {
			continue
		}
		for _, n := range []int{tr.A, tr.B} {
			if n != gnd && n != out {
				mid = append(mid, n)
			}
		}
	}
	if len(mid) != 2 || mid[0] != mid[1] {
		t.Errorf("series midpoint nets = %v (want one shared net twice)", mid)
	}
}

// TestAbutmentConnectsElectrically: the paper's guarantee, checked at
// the mask level — after ABUT, the joined connectors are one net.
func TestAbutmentConnectsElectrically(t *testing.T) {
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	a, _ := e.CreateInstance("SRCELL", "a", geom.Identity, 1, 1, 0, 0)
	b, _ := e.CreateInstance("SRCELL", "b", geom.MakeTransform(geom.R0, geom.Pt(60*L, 7*L)), 1, 1, 0, 0)
	if err := e.AddConnection(b, "IN", a, "OUT"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(b, "PWRL", a, "PWRR"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Abut(false); err != nil {
		t.Fatal(err)
	}
	ckt, err := FromCell(top)
	if err != nil {
		t.Fatal(err)
	}
	if !ckt.SameNet("a.OUT", "b.IN") {
		t.Error("abutted data connectors are not one net")
	}
	if !ckt.SameNet("a.PWRL", "b.PWRR") {
		t.Error("abutted power rails are not one net")
	}
	if ckt.SameNet("a.PWRL", "a.GNDL") {
		t.Error("rails shorted")
	}
}

// TestRouteConnectsElectrically: a river route carries the net across
// the channel.
func TestRouteConnectsElectrically(t *testing.T) {
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	sr, _ := e.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 60*L)), 1, 1, 0, 0)
	g, _ := e.CreateInstance("NAND", "g", geom.MakeTransform(geom.MXR180, geom.Pt(3*L, 20*L)), 1, 1, 0, 0)
	if err := e.AddConnection(g, "A", sr, "TAP"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteConnect(core.RouteOptions{}); err != nil {
		t.Fatal(err)
	}
	ckt, err := FromCell(top)
	if err != nil {
		t.Fatal(err)
	}
	if !ckt.SameNet("g.A", "sr.TAP") {
		t.Error("routed connectors are not one net")
	}
}

// TestStretchConnectsElectrically: a stretched cell still extracts
// correctly and the abutment makes the net.
func TestStretchConnectsElectrically(t *testing.T) {
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	sr, _ := e.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 60*L)), 1, 1, 0, 0)
	g, _ := e.CreateInstance("NAND", "g", geom.MakeTransform(geom.MXR180, geom.Pt(0, 20*L)), 1, 1, 0, 0)
	if err := e.AddConnection(g, "A", sr, "TAP"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StretchConnect(); err != nil {
		t.Fatal(err)
	}
	ckt, err := FromCell(top)
	if err != nil {
		t.Fatal(err)
	}
	if !ckt.SameNet("g.A", "sr.TAP") {
		t.Error("stretch-connected connectors are not one net")
	}
	// the stretched gate is still a working NAND: 3 transistors with
	// the series structure intact
	if len(ckt.Transistors) < 3 {
		t.Errorf("transistors = %d", len(ckt.Transistors))
	}
}

// TestFilterLogicConnectivity extracts the whole figure-9 logic block
// in both variants and checks the intended netlist: every NAND input A
// on its register tap, every NAND output on its OR input.
func TestFilterLogicConnectivity(t *testing.T) {
	for _, variant := range []filter.Variant{filter.Routed, filter.Stretched} {
		_, logic, _, err := filter.BuildLogic(variant)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		ckt, err := FromCell(logic)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		type pair struct{ a, b string }
		var pairs []pair
		if variant == filter.Routed {
			for i := 0; i < 4; i++ {
				pairs = append(pairs,
					pair{named("nr.n%d.A", i), named("sr.TAP[%d]", i)},
					pair{named("orr.IN%d", i), named("nr.n%d.OUT", i)},
				)
			}
		} else {
			for i := 0; i < 4; i++ {
				pairs = append(pairs,
					pair{named("n%d.A", i), named("sr.TAP[%d]", i)},
					pair{named("orr.IN%d", i), named("n%d.OUT", i)},
				)
			}
		}
		for _, p := range pairs {
			if !ckt.SameNet(p.a, p.b) {
				t.Errorf("%v: %s and %s are not one net", variant, p.a, p.b)
			}
		}
		// no cross-talk between the gate outputs (the register data
		// track is a positional stand-in and deliberately continuous,
		// so taps are not asserted distinct — see DESIGN.md)
		var out0, out1 string
		if variant == filter.Routed {
			out0, out1 = "nr.n0.OUT", "nr.n1.OUT"
		} else {
			out0, out1 = "n0.OUT", "n1.OUT"
		}
		if ckt.SameNet(out0, out1) {
			t.Errorf("%v: adjacent NAND outputs shorted", variant)
		}
	}
}

func named(f string, i int) string {
	return fmt_(f, i)
}

func fmt_(f string, i int) string {
	out := make([]byte, 0, len(f))
	for j := 0; j < len(f); j++ {
		if f[j] == '%' && j+1 < len(f) && f[j+1] == 'd' {
			out = append(out, byte('0'+i))
			j++
			continue
		}
		out = append(out, f[j])
	}
	return string(out)
}

func TestExtractPad(t *testing.T) {
	d := libDesign(t)
	pad, _ := d.Cell("PADIN")
	ckt, err := FromCell(pad)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ckt.Net("P"); !ok {
		t.Error("pad connector has no material")
	}
	if len(ckt.Transistors) != 0 {
		t.Error("pad extracted transistors")
	}
}

func TestSubtract(t *testing.T) {
	r := geom.R(0, 0, 10, 10)
	// no overlap
	if got := subtract(r, geom.R(20, 20, 30, 30)); len(got) != 1 || got[0] != r {
		t.Errorf("disjoint subtract = %v", got)
	}
	// horizontal strip through the middle
	got := subtract(r, geom.R(-5, 4, 15, 6))
	if len(got) != 2 {
		t.Fatalf("strip subtract = %v", got)
	}
	area := 0
	for _, p := range got {
		area += p.Area()
	}
	if area != 10*10-10*2 {
		t.Errorf("area = %d", area)
	}
	// corner bite: three pieces
	got = subtract(r, geom.R(6, 6, 14, 14))
	area = 0
	for _, p := range got {
		area += p.Area()
		if !r.ContainsRect(p) {
			t.Errorf("piece %v escapes", p)
		}
		if p.Overlaps(geom.R(6, 6, 14, 14)) {
			t.Errorf("piece %v overlaps the hole", p)
		}
	}
	if area != 100-16 {
		t.Errorf("corner area = %d", area)
	}
}

func TestExtractRotatedGate(t *testing.T) {
	// a rotated NAND still extracts three transistors with A/B/OUT on
	// distinct nets — device geometry follows the instance transform
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	if _, err := e.CreateInstance("NAND", "g", geom.MakeTransform(geom.R90, geom.Pt(40*L, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	ckt, err := FromCell(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckt.Transistors) != 3 {
		t.Errorf("transistors = %d", len(ckt.Transistors))
	}
	if ckt.SameNet("g.A", "g.OUT") || ckt.SameNet("g.A", "g.B") {
		t.Error("rotated gate shorted")
	}
}
