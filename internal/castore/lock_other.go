//go:build !unix

package castore

import "os"

// Non-unix platforms get no advisory locking: entry writes are still
// individually atomic (tmp + rename), which is the property the
// verdict-safety guarantees rest on; the flock only serializes
// manifest recovery between concurrent processes.
func flock(f *os.File, lock bool) error { return nil }

func flockShared(f *os.File) error { return nil }
