package castore

import (
	"bytes"
	"sync"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

func memLeaf(t *testing.T, width int) *core.Cell {
	t.Helper()
	sc := &sticks.Cell{
		Name:  "M",
		Wires: []sticks.Wire{{Layer: geom.NM, Width: width, Points: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}}},
		Connectors: []sticks.Connector{
			{Name: "A", At: geom.Pt(0, 0), Layer: geom.NM},
			{Name: "B", At: geom.Pt(10, 0), Layer: geom.NM},
		},
	}
	c, err := core.NewLeafFromSticks(sc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSignerMutateThenSign is the staleness regression: a leaf mutated
// in place (payload change + MarkMutated, the Invalidate path) must
// never be served its pre-mutation signature from the memo. A
// long-lived server Signer depends on this.
func TestSignerMutateThenSign(t *testing.T) {
	var sg Signer
	c := memLeaf(t, 4)
	k1, err := sg.Cell(c)
	if err != nil {
		t.Fatal(err)
	}
	// memo hit for the unchanged cell
	again, err := sg.Cell(c)
	if err != nil {
		t.Fatal(err)
	}
	if again != k1 {
		t.Fatal("memo returned a different signature for unchanged content")
	}

	c.Sticks.Wires[0].Width = 6
	c.MarkMutated()
	k2, err := sg.Cell(c)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k1 {
		t.Fatal("memo served the stale pre-mutation signature")
	}
	var fresh Signer
	want, err := fresh.Cell(c)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != want {
		t.Fatal("post-mutation signature disagrees with a fresh signer")
	}
}

// TestSignerConcurrent hammers one Signer from many goroutines, then
// alternates exclusive mutation phases (the guard-held Invalidate
// discipline: nobody signs while a leaf payload changes in place) with
// concurrent signing phases, checking the memo settles on the true
// signature every round. Run under -race in CI.
func TestSignerConcurrent(t *testing.T) {
	var sg Signer
	shared := memLeaf(t, 4) // signed concurrently, never mutated
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := sg.Cell(shared); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mut := memLeaf(t, 4)
	for round := 0; round < 5; round++ {
		// exclusive phase: mutate the payload in place and stamp the
		// revision, as an editor's Invalidate does under the design guard
		mut.Sticks.Wires[0].Width = 5 + round
		mut.MarkMutated()
		// concurrent phase: everyone signs the settled cell
		var rw sync.WaitGroup
		for g := 0; g < 8; g++ {
			rw.Add(1)
			go func() {
				defer rw.Done()
				for i := 0; i < 50; i++ {
					if _, err := sg.Cell(mut); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		rw.Wait()
		got, err := sg.Cell(mut)
		if err != nil {
			t.Fatal(err)
		}
		var fresh Signer
		want, err := fresh.Cell(mut)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: memo served a stale signature after mutation", round)
		}
	}
}

// TestMemStore exercises the shared in-memory tier: round trips,
// fingerprint isolation, discards, private copies and counters.
func TestMemStore(t *testing.T) {
	m := NewMem()
	k := testKey(7)
	payload := []byte("shard")
	if _, ok := m.Get("ns", k, 1); ok {
		t.Fatal("hit on empty store")
	}
	m.Put("ns", k, 1, payload)
	got, ok := m.Get("ns", k, 1)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// the stored copy is private: mutating the caller's slice must not
	// reach the store
	payload[0] = 'X'
	got, _ = m.Get("ns", k, 1)
	if !bytes.Equal(got, []byte("shard")) {
		t.Fatal("store shared the caller's backing array")
	}
	if _, ok := m.Get("ns", k, 2); ok {
		t.Fatal("fingerprint skew must miss")
	}
	if _, ok := m.Get("other", k, 1); ok {
		t.Fatal("namespace must separate entries")
	}
	m.Discard("ns", k, "test")
	if _, ok := m.Get("ns", k, 1); ok {
		t.Fatal("hit after discard")
	}
	st := m.Stats()
	if st.Hits != 2 || st.Puts != 1 || st.Discards != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// nil receiver is the permanently-cold store
	var nilMem *Mem
	if _, ok := nilMem.Get("ns", k, 1); ok {
		t.Fatal("nil Mem hit")
	}
	nilMem.Put("ns", k, 1, payload)
	nilMem.Discard("ns", k, "test")
}

// TestMemConcurrent drives concurrent puts/gets/discards over the
// sharded map; the assertions are minimal — the point is the -race run.
func TestMemConcurrent(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := testKey(byte(i % 32))
				switch i % 3 {
				case 0:
					m.Put("ns", k, uint64(g), []byte{byte(i)})
				case 1:
					m.Get("ns", k, uint64(g))
				default:
					m.Discard("ns", k, "churn")
				}
			}
		}(g)
	}
	wg.Wait()
	m.Stats()
}

// TestTieredPromote checks the read-through contract: a disk hit
// promotes into memory so the next reader pays no disk read, and
// writes land in both tiers.
func TestTieredPromote(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk.Log = func(string, ...any) {}
	k := testKey(3)
	disk.Put("ns", k, 9, []byte("cold"))

	ti := &Tiered{Mem: NewMem(), Disk: disk}
	got, ok := ti.Get("ns", k, 9)
	if !ok || !bytes.Equal(got, []byte("cold")) {
		t.Fatalf("tiered Get through disk = %q, %v", got, ok)
	}
	if ti.Mem.Stats().Puts != 1 {
		t.Fatal("disk hit did not promote into memory")
	}
	diskHitsBefore := disk.Stats().Hits
	if _, ok := ti.Get("ns", k, 9); !ok {
		t.Fatal("promoted entry missed")
	}
	if disk.Stats().Hits != diskHitsBefore {
		t.Fatal("second read went to disk despite promotion")
	}

	ti.Put("ns", testKey(4), 9, []byte("warm"))
	if _, ok := disk.Get("ns", testKey(4), 9); !ok {
		t.Fatal("tiered Put did not write through to disk")
	}
	ti.Discard("ns", k, "test")
	if _, ok := ti.Get("ns", k, 9); ok {
		t.Fatal("hit after tiered discard")
	}
}
