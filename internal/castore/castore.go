// Package castore is Riot's crash-safe, corruption-tolerant on-disk
// content-addressed store: the persistence layer under the verification
// caches (the LVS certificate store, the reference-netlist leaf memos,
// and the flatten shard cache). Invalidation is already solved one
// level up — every client keys its entries by a content signature of
// the cell geometry the entry was derived from (see sig.go) — so the
// store's whole job is robustness: a truncated, bit-flipped,
// version-skewed, or concurrently-written entry must degrade to a cache
// miss (a cold recompute), never to a wrong payload.
//
// # On-disk layout
//
//	<dir>/MANIFEST                    store format marker (flock target)
//	<dir>/<ns>/<kk>/<keyhex>          one entry per (namespace, key)
//	<dir>/tmp/...                     in-flight writes (crash debris is
//	                                  harmless and swept on Open)
//	<dir>/quarantine/...              entries that failed validation
//
// <ns> is the client namespace ("lvscert", "lvsref", "flatshard"),
// <keyhex> the hex SHA-256 content key, <kk> its first two hex digits
// (fan-out). Every entry file is self-validating:
//
//	offset  size  field
//	0       4     magic "RCAS"
//	4       4     store format version (little-endian uint32)
//	8       8     schema fingerprint (little-endian uint64) — a hash of
//	              the client's payload encoding version, so a payload
//	              whose Go-side struct layout changed reads as skew,
//	              not as garbage
//	16      8     payload length (little-endian uint64)
//	24      4     CRC-32C (Castagnoli) of the payload
//	28      n     payload
//
// A load that hits a short file, wrong magic, version or fingerprint
// skew, a length mismatch, or a checksum failure logs the reason,
// moves the entry to quarantine/ (best-effort; deleted if the move
// fails), counts it in Stats, and reports a miss. The checksum is an
// integrity check against accidental corruption, not an authenticity
// check: payload decoders must still validate what they read.
//
// # Crash safety and concurrency
//
// Writes are atomic: the entry is written to <dir>/tmp, fsynced, and
// renamed into place, so a crash mid-write leaves the previous entry
// (or no entry) intact and at worst some tmp debris. Concurrent
// processes sharing one directory are safe the same way — rename is
// atomic within the filesystem, and the last writer of a key wins with
// a whole file. The MANIFEST file is the store's advisory-lock target:
// Open takes a shared flock to validate it and trades up to an
// exclusive flock only to create or recover it (a manifest with a
// different format version quarantines the entry tree and
// re-initializes). No lock outlives Open — holding one for the store's
// lifetime would make every later Open on the directory block behind a
// long-running process, which is exactly the concurrent-invocation
// shape the store exists to support.
package castore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"riot/internal/faultinject"
	"riot/internal/obs"
)

// Version is the store format version written to entry headers and the
// manifest. Bump it when the container format itself changes; clients
// version their payload encodings through schema fingerprints instead.
const Version = 1

const (
	magic      = "RCAS"
	headerSize = 28
	manifest   = "MANIFEST"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is the store's cumulative accounting.
type Stats struct {
	Hits        int // Get calls served from a valid entry
	Misses      int // Get calls with no entry on disk
	Puts        int // entries written
	PutErrors   int // writes that failed (logged, not fatal)
	Corrupt     int // entries rejected by validation (any reason)
	Quarantined int // rejected entries moved aside (vs deleted)
}

// Store is one process's handle on a cache directory. The zero value
// and the nil pointer are valid, permanently-cold stores: every Get
// misses and every Put is a no-op, so clients can hold an optional
// *Store without guarding call sites.
type Store struct {
	// Log receives one line per noteworthy event (quarantines, write
	// failures); nil means the default obs.Stderr. Set obs.Discard to
	// silence, or a capture func to test. Set it before sharing the
	// store.
	Log obs.Logger
	// Trace, when enabled, receives one typed EventCorrupt per
	// rejected entry. Set it before sharing the store.
	Trace *obs.Trace
	// Faults is the optional fault-injection set (faultinject.Set); a
	// nil set never fires. The StoreCorrupt point flips a payload byte
	// after the disk read, driving the validate→quarantine→recompute
	// path on demand. Set it before sharing the store.
	Faults *faultinject.Set

	dir string

	mu    sync.Mutex
	stats Stats
}

// Open opens (creating if needed) the store rooted at dir. A manifest
// written by an incompatible store version is treated as total skew:
// under an exclusive lock the existing entry tree is quarantined and
// the store re-initialized empty — a cold start, never a misread.
// Crash debris under tmp/ is swept.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	mf, err := os.OpenFile(filepath.Join(dir, manifest), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.ensureManifest(mf); err != nil {
		mf.Close()
		return nil, err
	}
	mf.Close()
	s.sweepTmp()
	return s, nil
}

// Close marks the store unused. No resource outlives Open (locks are
// transient and entry I/O is per-call), so Close exists for call-site
// symmetry; entries already written stay valid.
func (s *Store) Close() error { return nil }

// Dir returns the store's root directory ("" for a nil/zero store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
		return
	}
	obs.Stderr(format, args...)
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// ensureManifest validates the manifest under a shared flock and, only
// when it is missing or skewed, trades up to the exclusive flock to
// create or recover it. The upgrade releases the shared lock before
// taking the exclusive one — an in-place upgrade between two openers
// deadlocks — so the state is re-read after the exclusive lock lands:
// another process may have initialized the store while we waited.
func (s *Store) ensureManifest(mf *os.File) error {
	want := fmt.Sprintf("riot-castore %d\n", Version)
	if err := flockShared(mf); err != nil {
		return fmt.Errorf("castore: lock %s: %w", mf.Name(), err)
	}
	data, err := readManifest(mf)
	if err == nil && string(data) == want {
		flock(mf, false)
		return nil
	}
	flock(mf, false)
	if err := flock(mf, true); err != nil {
		return fmt.Errorf("castore: lock %s: %w", mf.Name(), err)
	}
	defer flock(mf, false)
	if data, err = readManifest(mf); err != nil {
		return fmt.Errorf("castore: manifest: %w", err)
	}
	switch {
	case string(data) == want:
		return nil
	case len(data) == 0:
		// fresh store
	default:
		// version skew or torn manifest: quarantine the whole entry
		// tree and start cold
		s.logf("castore: %s: manifest skew (%q), starting cold", s.dir, strings.TrimSpace(string(data)))
		s.quarantineTree()
	}
	if err := mf.Truncate(0); err != nil {
		return fmt.Errorf("castore: manifest: %w", err)
	}
	if _, err := mf.WriteAt([]byte(want), 0); err != nil {
		return fmt.Errorf("castore: manifest: %w", err)
	}
	return mf.Sync()
}

func readManifest(mf *os.File) ([]byte, error) {
	return io.ReadAll(io.NewSectionReader(mf, 0, 256))
}

// quarantineTree moves every namespace directory aside (best-effort:
// removed when the move fails). tmp and quarantine itself stay.
func (s *Store) quarantineTree() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	qdir := filepath.Join(s.dir, "quarantine")
	os.MkdirAll(qdir, 0o755)
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "quarantine" || e.Name() == "tmp" {
			continue
		}
		src := filepath.Join(s.dir, e.Name())
		dst := filepath.Join(qdir, "skew-"+e.Name())
		for n := 0; ; n++ {
			if n > 0 {
				dst = filepath.Join(qdir, fmt.Sprintf("skew-%s.%d", e.Name(), n))
			}
			if _, err := os.Stat(dst); os.IsNotExist(err) {
				break
			}
			if n > 100 {
				dst = ""
				break
			}
		}
		if dst == "" || os.Rename(src, dst) != nil {
			os.RemoveAll(src)
		}
	}
}

// sweepTmp removes in-flight write debris left by crashed processes.
// Entries under tmp were never renamed into place, so removing them
// cannot lose committed data.
func (s *Store) sweepTmp() {
	tmp := filepath.Join(s.dir, "tmp")
	entries, err := os.ReadDir(tmp)
	if err != nil {
		return
	}
	for _, e := range entries {
		os.Remove(filepath.Join(tmp, e.Name()))
	}
}

// entryPath returns the entry file path for (ns, key).
func (s *Store) entryPath(ns string, key Key) string {
	hex := key.String()
	return filepath.Join(s.dir, ns, hex[:2], hex)
}

// Get loads the payload stored under (ns, key). fingerprint is the
// client's payload schema fingerprint; an entry written under a
// different fingerprint is version skew and misses. Any malformed
// entry — short, truncated, bit-flipped, skewed — is logged,
// quarantined and reported as a miss.
func (s *Store) Get(ns string, key Key, fingerprint uint64) ([]byte, bool) {
	if s == nil || s.dir == "" {
		return nil, false
	}
	path := s.entryPath(ns, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	if s.Faults.Hit(faultinject.StoreCorrupt, ns) && len(data) > 0 {
		data = append([]byte(nil), data...)
		data[len(data)-1] ^= 0x01
	}
	payload, reason := validate(data, fingerprint)
	if reason != "" {
		s.reject(ns, key, path, reason)
		return nil, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	return payload, true
}

// validate checks an entry image and returns its payload, or the
// rejection reason.
func validate(data []byte, fingerprint uint64) ([]byte, string) {
	if len(data) < headerSize {
		return nil, fmt.Sprintf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, "bad magic"
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Sprintf("store version skew (%d, want %d)", v, Version)
	}
	if fp := binary.LittleEndian.Uint64(data[8:16]); fp != fingerprint {
		return nil, fmt.Sprintf("schema fingerprint skew (%#x, want %#x)", fp, fingerprint)
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Sprintf("length mismatch (header %d, file %d)", n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// reject logs, counts and quarantines a bad entry.
func (s *Store) reject(ns string, key Key, path, reason string) {
	s.logf("castore: %s/%s: %s; entry quarantined, recomputing cold", ns, key.Short(), reason)
	if s.Trace.Enabled() {
		s.Trace.Event(obs.EventCorrupt, fmt.Sprintf("%s/%s: %s", ns, key.Short(), reason))
	}
	qdir := filepath.Join(s.dir, "quarantine")
	dst := filepath.Join(qdir, ns+"-"+key.String())
	moved := os.MkdirAll(qdir, 0o755) == nil && os.Rename(path, dst) == nil
	if !moved {
		os.Remove(path)
	}
	s.count(func(st *Stats) {
		st.Corrupt++
		st.Misses++
		if moved {
			st.Quarantined++
		}
	})
}

// Discard removes the entry stored under (ns, key), quarantining it
// with the given reason. Clients call it when a payload passed the
// store's integrity checks but failed their own decoding — schema
// drift the fingerprint did not capture — so the next run recomputes
// instead of tripping again.
func (s *Store) Discard(ns string, key Key, reason string) {
	if s == nil || s.dir == "" {
		return
	}
	path := s.entryPath(ns, key)
	if _, err := os.Stat(path); err != nil {
		return
	}
	s.reject(ns, key, path, reason)
	// reject counts a miss; Discard is not a lookup
	s.count(func(st *Stats) { st.Misses-- })
}

// Put stores payload under (ns, key) with the client's schema
// fingerprint. The write is atomic (tmp file + fsync + rename): a
// crash at any point leaves either the previous entry or the new one,
// never a torn file. Failures are logged and counted, not returned —
// a cache that cannot write is merely cold.
func (s *Store) Put(ns string, key Key, fingerprint uint64, payload []byte) {
	if s == nil || s.dir == "" {
		return
	}
	if err := s.put(ns, key, fingerprint, payload); err != nil {
		s.logf("castore: put %s/%s: %v", ns, key.Short(), err)
		s.count(func(st *Stats) { st.PutErrors++ })
		return
	}
	s.count(func(st *Stats) { st.Puts++ })
}

func (s *Store) put(ns string, key Key, fingerprint uint64, payload []byte) error {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(payload, castagnoli))

	tmpDir := filepath.Join(s.dir, "tmp")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(tmpDir, "put-*")
	if err != nil {
		return err
	}
	tmpName := f.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := s.entryPath(ns, key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	return os.Rename(tmpName, final)
}

// Fingerprint hashes a client's schema identity strings into the
// fingerprint written to entry headers. Clients include their payload
// encoding version and any process-wide constant the payload depends
// on (rules.Lambda, contract reaches), so changing either reads old
// entries as skew instead of misdecoding them.
func Fingerprint(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	return h
}
