package castore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

const testFP = 0xfeedface

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := []byte("hello, persistent world")
	s.Put("ns", testKey(1), testFP, payload)
	got, ok := s.Get("ns", testKey(1), testFP)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get("ns", testKey(2), testFP); ok {
		t.Fatal("Get of unwritten key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilAndZeroStoreAreCold(t *testing.T) {
	var nilStore *Store
	if _, ok := nilStore.Get("ns", testKey(1), testFP); ok {
		t.Fatal("nil store hit")
	}
	nilStore.Put("ns", testKey(1), testFP, []byte("x")) // must not panic
	nilStore.Discard("ns", testKey(1), "because")
	if nilStore.Stats() != (Stats{}) {
		t.Fatal("nil store stats")
	}
	var zero Store
	if _, ok := zero.Get("ns", testKey(1), testFP); ok {
		t.Fatal("zero store hit")
	}
	zero.Put("ns", testKey(1), testFP, []byte("x"))
}

// TestTamperMatrix drives every corruption mode over a populated store
// and asserts each one degrades to a logged, quarantined miss — never
// a payload.
func TestTamperMatrix(t *testing.T) {
	for _, mode := range []Tamper{TamperBitFlip, TamperTruncate, TamperVersionBump, TamperZero, TamperGarbage} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var logged strings.Builder
			s.Log = func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }
			s.Put("ns", testKey(7), testFP, []byte("precious cached derivation"))

			n, err := TamperEntries(dir, mode)
			if err != nil || n != 1 {
				t.Fatalf("TamperEntries = %d, %v", n, err)
			}
			if _, ok := s.Get("ns", testKey(7), testFP); ok {
				t.Fatalf("%s: corrupted entry still served", mode)
			}
			st := s.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("%s: Corrupt = %d, want 1", mode, st.Corrupt)
			}
			if logged.Len() == 0 {
				t.Fatalf("%s: rejection not logged", mode)
			}
			// the entry is gone from the hot path (a second Get is a
			// plain miss, not another corruption)
			if _, ok := s.Get("ns", testKey(7), testFP); ok {
				t.Fatalf("%s: entry resurrected", mode)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("%s: quarantined entry rejected twice: %+v", mode, st)
			}
			// and a recompute can re-populate it
			s.Put("ns", testKey(7), testFP, []byte("recomputed"))
			if got, ok := s.Get("ns", testKey(7), testFP); !ok || string(got) != "recomputed" {
				t.Fatalf("%s: re-put failed: %q %v", mode, got, ok)
			}
		})
	}
}

func TestSchemaFingerprintSkew(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("ns", testKey(3), testFP, []byte("v1 payload"))
	if _, ok := s.Get("ns", testKey(3), testFP+1); ok {
		t.Fatal("fingerprint skew served a payload")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("skew not counted corrupt: %+v", st)
	}
}

func TestManifestVersionSkewStartsCold(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("ns", testKey(4), testFP, []byte("old world"))
	s.Close()

	if err := os.WriteFile(filepath.Join(dir, manifest), []byte("riot-castore 999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("ns", testKey(4), testFP); ok {
		t.Fatal("entry survived a manifest version skew")
	}
	// the store works after recovery
	s2.Put("ns", testKey(4), testFP, []byte("new world"))
	if got, ok := s2.Get("ns", testKey(4), testFP); !ok || string(got) != "new world" {
		t.Fatalf("post-recovery store broken: %q %v", got, ok)
	}
}

// TestKillMidWrite simulates the two crash shapes a non-atomic writer
// would leave: debris in tmp/ (our writer, killed before rename) and a
// torn file at the final path (a hostile or pre-atomic writer).
func TestKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("ns", testKey(5), testFP, []byte("committed"))

	// crash shape 1: tmp debris; swept on next Open, never visible
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp", "put-crashed"), []byte("half a h"), 0o644); err != nil {
		t.Fatal(err)
	}
	// crash shape 2: torn file at a final entry path
	torn := s.entryPath("ns", testKey(6))
	if err := os.MkdirAll(filepath.Dir(torn), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, []byte("RCAS\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(filepath.Join(dir, "tmp", "put-crashed")); !os.IsNotExist(err) {
		t.Fatal("tmp debris survived Open")
	}
	if got, ok := s2.Get("ns", testKey(5), testFP); !ok || string(got) != "committed" {
		t.Fatalf("committed entry lost: %q %v", got, ok)
	}
	if _, ok := s2.Get("ns", testKey(6), testFP); ok {
		t.Fatal("torn entry served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("torn entry not rejected: %+v", st)
	}
}

// TestConcurrentStores runs two handles on one directory, hammering
// overlapping keys from writer and reader goroutines. Rename atomicity
// must keep every observed payload whole — one of the written variants,
// never a splice.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	variant := func(worker, round int) []byte {
		return bytes.Repeat([]byte{byte(worker), byte(round)}, 64+worker*17+round)
	}
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w, s := range []*Store{a, b} {
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s.Put("ns", testKey(9), testFP, variant(w, r))
				if got, ok := s.Get("ns", testKey(9), testFP); ok {
					valid := false
					for ww := 0; ww < 2 && !valid; ww++ {
						for rr := 0; rr < rounds && !valid; rr++ {
							valid = bytes.Equal(got, variant(ww, rr))
						}
					}
					if !valid {
						errs <- fmt.Sprintf("worker %d round %d: torn payload (%d bytes)", w, r, len(got))
						return
					}
				}
			}
		}(w, s)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if st := a.Stats(); st.Corrupt > 0 {
		t.Errorf("concurrent same-process writers corrupted entries: %+v", st)
	}
}

func TestDecoderBounds(t *testing.T) {
	// a forged count must not drive a huge allocation: encode a count
	// of 2^40 "elements" into a tiny payload and decode
	var e Enc
	e.U64(1 << 40)
	d := NewDec(e.Bytes())
	if n := d.Len(8); n != 0 || d.Err() == nil {
		t.Fatalf("Len accepted forged count: n=%d err=%v", n, d.Err())
	}
	var e2 Enc
	e2.U64(1 << 50)
	d2 := NewDec(e2.Bytes())
	if s := d2.Str(); s != "" || d2.Err() == nil {
		t.Fatalf("Str accepted forged length: %q err=%v", s, d2.Err())
	}
	// trailing bytes are an error
	var e3 Enc
	e3.U64(1)
	e3.U8(0)
	d3 := NewDec(e3.Bytes())
	d3.U64()
	if d3.Done() == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(42)
	e.Int(-17)
	e.Bool(true)
	e.Str("näme")
	e.U8(250)
	d := NewDec(e.Bytes())
	if v := d.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.Int(); v != -17 {
		t.Fatalf("Int = %d", v)
	}
	if !d.Bool() {
		t.Fatal("Bool = false")
	}
	if v := d.Str(); v != "näme" {
		t.Fatalf("Str = %q", v)
	}
	if v := d.U8(); v != 250 {
		t.Fatalf("U8 = %d", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestSignerContentIdentity pins the signature contract: equal content
// under different pointers signs equal; any content difference signs
// different.
func TestSignerContentIdentity(t *testing.T) {
	mk := func(wireWidth int) *core.Cell {
		sc := &sticks.Cell{
			Name:  "T",
			Wires: []sticks.Wire{{Layer: geom.NM, Width: wireWidth, Points: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}}},
			Connectors: []sticks.Connector{
				{Name: "A", At: geom.Pt(0, 0), Layer: geom.NM},
				{Name: "B", At: geom.Pt(10, 0), Layer: geom.NM},
			},
		}
		c, err := core.NewLeafFromSticks(sc)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	var sg Signer
	k1, err := sg.Cell(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := sg.Cell(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical content signed differently")
	}
	k3, err := sg.Cell(mk(6))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different content signed equal")
	}

	// composition signatures track placement
	comp := core.NewComposition("C")
	in := core.NewInstance("a", mk(4), geom.Translate(geom.Pt(100, 0)))
	comp.Instances = append(comp.Instances, in)
	c1, err := sg.Cell(comp)
	if err != nil {
		t.Fatal(err)
	}
	in.Tr = geom.Translate(geom.Pt(200, 0))
	c2, err := sg.Cell(comp)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("moved instance did not change the composition signature")
	}
	// instance signature tracks replication
	i1, err := sg.Instance(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Nx, in.Sx = 4, 400
	i2, err := sg.Instance(in)
	if err != nil {
		t.Fatal(err)
	}
	if i1 == i2 {
		t.Fatal("replication did not change the instance signature")
	}
}

func TestFingerprintSeparatesParts(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint field boundaries alias")
	}
	if Fingerprint("x") == Fingerprint("x", "") {
		t.Fatal("fingerprint ignores empty parts")
	}
}
