//go:build unix

package castore

import (
	"os"
	"syscall"
)

// flock takes (lock=true) or releases (lock=false) the exclusive
// advisory lock on f. Advisory flocks coordinate concurrent riot
// processes sharing one cache directory; they cost nothing when only
// one process is running.
func flock(f *os.File, lock bool) error {
	op := syscall.LOCK_UN
	if lock {
		op = syscall.LOCK_EX
	}
	return syscall.Flock(int(f.Fd()), op)
}

// flockShared downgrades to (or takes) a shared advisory lock.
func flockShared(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_SH)
}
