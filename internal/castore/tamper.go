package castore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Tamper is a corruption mode for TamperEntries. The robustness test
// suites (here and in the cache clients) drive every mode over a
// populated store and assert that verification verdicts stay identical
// to cache-free runs with the bad entries quarantined — the "hostile
// bytes in, graceful behavior out" contract.
type Tamper int

// The corruption modes.
const (
	// TamperBitFlip flips one bit in the entry payload.
	TamperBitFlip Tamper = iota
	// TamperTruncate cuts the entry file in half (mid-payload or
	// mid-header for small entries).
	TamperTruncate
	// TamperVersionBump rewrites the header's store version field.
	TamperVersionBump
	// TamperZero truncates the entry to zero length.
	TamperZero
	// TamperGarbage overwrites the whole entry with a fixed byte.
	TamperGarbage
)

// String names the mode.
func (t Tamper) String() string {
	switch t {
	case TamperBitFlip:
		return "bit-flip"
	case TamperTruncate:
		return "truncate"
	case TamperVersionBump:
		return "version-bump"
	case TamperZero:
		return "zero-length"
	default:
		return "garbage"
	}
}

// TamperEntries applies the corruption mode to every entry file under
// the store directory (the manifest, tmp and quarantine areas are left
// alone) and returns how many entries it damaged. It is test and
// fault-injection support: the recovery path it exercises — load,
// reject, quarantine, recompute — is the production path.
func TamperEntries(dir string, mode Tamper) (int, error) {
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "tmp", "quarantine":
				if path != dir {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if d.Name() == manifest {
			return nil
		}
		if err := tamperFile(path, mode); err != nil {
			return fmt.Errorf("castore: tamper %s: %w", path, err)
		}
		n++
		return nil
	})
	return n, err
}

func tamperFile(path string, mode Tamper) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch mode {
	case TamperBitFlip:
		if len(data) == 0 {
			return nil
		}
		// flip a payload bit when there is one, else a header bit
		i := len(data) - 1
		data[i] ^= 0x10
	case TamperTruncate:
		data = data[:len(data)/2]
	case TamperVersionBump:
		if len(data) >= 8 {
			data[4]++
		} else {
			data = data[:0]
		}
	case TamperZero:
		data = data[:0]
	case TamperGarbage:
		for i := range data {
			data[i] = 0xA5
		}
	}
	return os.WriteFile(path, data, 0o644)
}
