package castore

import (
	"encoding/binary"
	"fmt"
)

// A minimal deterministic binary codec for cache payloads. The store's
// checksum guards entries against accidental corruption, but it is not
// cryptographic, so the decoder never trusts embedded lengths: every
// count is bounded by the bytes actually remaining before anything is
// allocated, and all errors surface through Dec.Err instead of panics.
// Integers are fixed-width little-endian — payloads are caches, not
// wire formats, and simplicity beats density here.

// Enc accumulates an encoded payload. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U64 appends an unsigned 64-bit value.
func (e *Enc) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int appends a signed integer (64-bit two's complement).
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(b bool) {
	if b {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec decodes a payload produced by Enc. The first malformed read
// poisons the decoder: every later read returns the zero value and
// Err reports the failure, so clients can decode straight-line and
// check once at the end.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("castore: decode: "+format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads an unsigned 64-bit value.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a signed integer.
func (d *Dec) Int() int { return int(int64(d.U64())) }

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// Str reads a length-prefixed string, bounded by the remaining bytes.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err == nil && n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds remaining %d", n, len(d.buf)-d.off)
	}
	b := d.take(int(n))
	return string(b)
}

// Len reads an element count whose elements occupy at least elemMin
// bytes each, rejecting counts the remaining payload cannot hold — the
// guard that keeps a forged length from driving a huge allocation.
func (d *Dec) Len(elemMin int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64((len(d.buf)-d.off)/elemMin) {
		d.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// Done reports an error when decoded bytes remain — a payload longer
// than its schema is skew, not padding.
func (d *Dec) Done() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing bytes", len(d.buf)-d.off)
	}
	return d.err
}
