package castore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"

	"riot/internal/cif"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// Content signatures. Store keys must be stable across processes —
// the whole point is that tomorrow's riot invocation recognizes
// today's cells — so they cannot come from pointer identity or
// per-session counters the way the in-memory caches' keys do. A Key is
// the SHA-256 of a canonical serialization of everything the cached
// derivation can depend on: for a leaf, its full geometry, connectors
// and bounding box; for a composition, its instances' signatures and
// placements, recursively. Collisions are cryptographically
// negligible, which is what lets clients treat "key present" as "same
// content" without re-deriving anything.

// Key is a content-address: the SHA-256 of the keyed content.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (the on-disk entry name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an abbreviated form for logs.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// Signer computes cell content signatures, memoizing leaf cells by
// pointer. Each memo entry records the cell's revision
// (core.Cell.Revision) at signing time and is ignored once the cell's
// revision moves on, so a long-lived Signer — a design server shares
// one across every session, for the lifetime of the process — can
// never serve a stale signature for a cell that was mutated in place.
// Composition signatures are recomputed per call — compositions mutate
// in place under edit — but each call costs only a walk over memoized
// leaf signatures. A Signer is safe for concurrent use.
type Signer struct {
	mu   sync.Mutex
	leaf map[*core.Cell]leafSig
}

// leafSig pairs a memoized signature with the cell revision it was
// computed at.
type leafSig struct {
	key Key
	rev uint64
}

// Reset drops the leaf memo. Revision checking makes this unnecessary
// for correctness; it remains for callers that want to release the
// memory of a memo full of dead cells.
func (sg *Signer) Reset() {
	sg.mu.Lock()
	sg.leaf = nil
	sg.mu.Unlock()
}

// Cell returns the cell's content signature.
func (sg *Signer) Cell(c *core.Cell) (Key, error) {
	if c == nil {
		return Key{}, fmt.Errorf("castore: sig of nil cell")
	}
	var rev uint64
	if c.Kind != core.Composition {
		// capture the revision before hashing: a mutation racing the hash
		// bumps the revision past rev, so the entry stored below can never
		// pass a later revision check with a garbled signature
		rev = c.Revision()
		sg.mu.Lock()
		ent, ok := sg.leaf[c]
		sg.mu.Unlock()
		if ok && ent.rev == rev {
			return ent.key, nil
		}
	}
	h := newHasher()
	if err := sg.writeCell(h, c, 0); err != nil {
		return Key{}, err
	}
	k := h.sum()
	if c.Kind != core.Composition {
		sg.mu.Lock()
		if sg.leaf == nil {
			sg.leaf = map[*core.Cell]leafSig{}
		}
		sg.leaf[c] = leafSig{key: k, rev: rev}
		sg.mu.Unlock()
	}
	return k, nil
}

// Instance returns the content signature of one placed instance: the
// defining cell's signature plus the full placement and replication
// state (and the instance name, which the flattened connector labels
// embed). Two instances with equal signatures flatten to byte-equal
// shards.
func (sg *Signer) Instance(in *core.Instance) (Key, error) {
	ck, err := sg.Cell(in.Cell)
	if err != nil {
		return Key{}, err
	}
	h := newHasher()
	h.str("inst")
	h.str(in.Name)
	h.key(ck)
	h.transform(in.Tr)
	h.ints(in.Nx, in.Ny, in.Sx, in.Sy)
	return h.sum(), nil
}

// maxCIFDepth bounds symbol-call recursion while hashing; the CIF
// loader already rejects recursive structures, but the signer must not
// trust that.
const maxCIFDepth = 64

func (sg *Signer) writeCell(h *hasher, c *core.Cell, depth int) error {
	h.str("cell")
	h.str(c.Name)
	h.ints(int(c.Kind))
	switch c.Kind {
	case core.LeafCIF:
		if c.Symbol == nil {
			return fmt.Errorf("castore: %s: CIF leaf with nil symbol", c.Name)
		}
		h.rect(c.CIFBox)
		if err := writeSymbol(h, c.CIFFile, c.Symbol, map[int]bool{}, depth); err != nil {
			return fmt.Errorf("castore: %s: %w", c.Name, err)
		}
	case core.LeafSticks:
		if c.Sticks == nil {
			return fmt.Errorf("castore: %s: sticks leaf with nil payload", c.Name)
		}
		writeSticks(h, c.Sticks)
	default:
		for _, cn := range c.ExtraConnectors {
			h.str("xconn")
			writeConnector(h, cn.Name, cn.At, string(cn.Layer), cn.Width, int(cn.Side))
		}
		for _, in := range c.Instances {
			sub, err := sg.Cell(in.Cell)
			if err != nil {
				return err
			}
			h.str("i")
			h.str(in.Name)
			h.key(sub)
			h.transform(in.Tr)
			h.ints(in.Nx, in.Ny, in.Sx, in.Sy)
		}
	}
	return nil
}

func writeSymbol(h *hasher, f *cif.File, sym *cif.Symbol, seen map[int]bool, depth int) error {
	if depth > maxCIFDepth {
		return fmt.Errorf("symbol nesting deeper than %d", maxCIFDepth)
	}
	h.str("sym")
	h.ints(sym.A, sym.B)
	for _, e := range sym.Elements {
		switch el := e.(type) {
		case cif.Box:
			h.str("B")
			h.str(string(el.Layer))
			h.ints(el.Length, el.Width)
			h.point(el.Center)
			h.point(el.Direction)
		case cif.Wire:
			h.str("W")
			h.str(string(el.Layer))
			h.ints(el.Width)
			h.points(el.Points)
		case cif.Polygon:
			h.str("P")
			h.str(string(el.Layer))
			h.points(el.Points)
		case cif.RoundFlash:
			h.str("R")
			h.str(string(el.Layer))
			h.ints(el.Diameter)
			h.point(el.Center)
		case cif.Connector:
			h.str("94")
			writeConnector(h, el.Name, el.At, string(el.Layer), el.Width, 0)
		case cif.Call:
			h.str("C")
			h.transform(el.Transform)
			if f == nil {
				return fmt.Errorf("call of symbol %d with no file context", el.SymbolID)
			}
			child := f.SymbolByID(el.SymbolID)
			if child == nil {
				return fmt.Errorf("call of undefined symbol %d", el.SymbolID)
			}
			if seen[el.SymbolID] {
				return fmt.Errorf("recursive call of symbol %d", el.SymbolID)
			}
			seen[el.SymbolID] = true
			if err := writeSymbol(h, f, child, seen, depth+1); err != nil {
				return err
			}
			delete(seen, el.SymbolID)
		case cif.UserExt:
			h.str("U")
			h.ints(el.Digit)
			h.str(el.Text)
		}
	}
	return nil
}

func writeSticks(h *hasher, sc *sticks.Cell) {
	h.str("sticks")
	h.str(sc.Name)
	h.ints(sc.EffUnits())
	for _, w := range sc.Wires {
		h.str("w")
		h.str(string(w.Layer))
		h.ints(w.Width)
		h.points(w.Points)
	}
	for _, d := range sc.Devices {
		h.str("d")
		h.ints(int(d.Kind), boolInt(d.Vertical), d.W, d.L)
		h.point(d.At)
	}
	for _, ct := range sc.Contacts {
		h.str("c")
		h.str(string(ct.From))
		h.str(string(ct.To))
		h.point(ct.At)
	}
	for _, cn := range sc.Connectors {
		h.str("n")
		writeConnector(h, cn.Name, cn.At, string(cn.Layer), cn.Width, int(cn.Side))
	}
	for _, cs := range sc.Constraints {
		h.str("k")
		h.ints(int(cs.Axis), cs.Min)
		h.str(cs.A)
		h.str(cs.B)
	}
	h.ints(boolInt(sc.HasBox))
	h.rect(sc.Box)
}

func writeConnector(h *hasher, name string, at geom.Point, layer string, width, side int) {
	h.str(name)
	h.point(at)
	h.str(layer)
	h.ints(width, side)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// hasher streams tagged fields into SHA-256. Strings are
// length-prefixed so field boundaries cannot alias.
type hasher struct {
	st  hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{st: sha256.New()} }

func (h *hasher) sum() Key {
	var k Key
	h.st.Sum(k[:0])
	return k
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.st.Write(h.buf[:])
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.st.Write([]byte(s))
}

func (h *hasher) ints(vs ...int) {
	for _, v := range vs {
		h.u64(uint64(int64(v)))
	}
}

func (h *hasher) point(p geom.Point) { h.ints(p.X, p.Y) }

func (h *hasher) points(ps []geom.Point) {
	h.ints(len(ps))
	for _, p := range ps {
		h.point(p)
	}
}

func (h *hasher) rect(r geom.Rect) { h.ints(r.Min.X, r.Min.Y, r.Max.X, r.Max.Y) }

func (h *hasher) transform(t geom.Transform) {
	h.ints(int(t.O))
	h.point(t.D)
}

func (h *hasher) key(k Key) { h.st.Write(k[:]) }
