package castore

import (
	"sync"
	"sync/atomic"
)

// Blob is the minimal content-addressed surface the verification
// caches (flatten shards, LVS leaf references and certificates,
// hierarchical certificates) load and store through. Three
// implementations exist: the on-disk Store (durable across processes),
// the in-process Mem store (shared across a server's sessions), and
// Tiered, which stacks one over the other. All three tolerate
// concurrent callers.
type Blob interface {
	// Get returns the payload stored under (ns, key) when its format
	// fingerprint matches, with ok reporting the hit. The returned bytes
	// are read-only: implementations may hand the same backing array to
	// every caller.
	Get(ns string, key Key, fingerprint uint64) (payload []byte, ok bool)
	// Put stores payload under (ns, key, fingerprint), overwriting any
	// previous entry.
	Put(ns string, key Key, fingerprint uint64, payload []byte)
	// Discard removes the entry, recording why (a decode failure, a
	// semantic mismatch) so a poisoned entry is not served twice.
	Discard(ns string, key Key, reason string)
}

var (
	_ Blob = (*Store)(nil)
	_ Blob = (*Mem)(nil)
	_ Blob = (*Tiered)(nil)
)

// memShardCount shards the map so concurrent sessions verifying
// disjoint cells rarely contend; a power of two keyed off the first
// signature byte spreads SHA-256 keys uniformly.
const memShardCount = 16

// Mem is a process-wide in-memory content-addressed store: the shared
// tier a design server attaches under every session's caches, so any
// session deriving a verification artifact (a flattened shard, a leaf
// netlist, a certificate) warms every other session. Entries live
// until discarded; content addressing makes eviction a pure
// space/speed trade-off, never a correctness concern. The zero value
// is not usable; call NewMem. Safe for concurrent use.
type Mem struct {
	shards [memShardCount]memShard

	hits, misses, puts, discards atomic.Int64
}

type memShard struct {
	mu sync.Mutex
	m  map[memKey]memEntry
}

type memKey struct {
	ns  string
	key Key
}

type memEntry struct {
	fp      uint64
	payload []byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	m := &Mem{}
	for i := range m.shards {
		m.shards[i].m = map[memKey]memEntry{}
	}
	return m
}

func (m *Mem) shard(key Key) *memShard { return &m.shards[key[0]%memShardCount] }

// Get returns the stored payload. The bytes are shared — callers must
// not modify them (the codec layer above never does; it decodes).
func (m *Mem) Get(ns string, key Key, fingerprint uint64) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	sh := m.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[memKey{ns, key}]
	sh.mu.Unlock()
	if !ok || e.fp != fingerprint {
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return e.payload, true
}

// Put stores a private copy of payload under (ns, key, fingerprint).
func (m *Mem) Put(ns string, key Key, fingerprint uint64, payload []byte) {
	if m == nil {
		return
	}
	p := append([]byte(nil), payload...)
	sh := m.shard(key)
	sh.mu.Lock()
	sh.m[memKey{ns, key}] = memEntry{fp: fingerprint, payload: p}
	sh.mu.Unlock()
	m.puts.Add(1)
}

// Discard removes the entry. The reason is accepted for interface
// compatibility; in-memory entries carry no provenance worth logging.
func (m *Mem) Discard(ns string, key Key, reason string) {
	if m == nil {
		return
	}
	sh := m.shard(key)
	sh.mu.Lock()
	_, ok := sh.m[memKey{ns, key}]
	delete(sh.m, memKey{ns, key})
	sh.mu.Unlock()
	if ok {
		m.discards.Add(1)
	}
}

// MemStats is a point-in-time account of an in-memory store.
type MemStats struct {
	Hits, Misses, Puts, Discards int
	Entries                      int
	Bytes                        int
}

// Stats reports the store's counters and current size.
func (m *Mem) Stats() MemStats {
	if m == nil {
		return MemStats{}
	}
	st := MemStats{
		Hits:     int(m.hits.Load()),
		Misses:   int(m.misses.Load()),
		Puts:     int(m.puts.Load()),
		Discards: int(m.discards.Load()),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.m)
		for _, e := range sh.m {
			st.Bytes += len(e.payload)
		}
		sh.mu.Unlock()
	}
	return st
}

// Tiered stacks the in-memory store over the on-disk store: reads try
// memory first and promote disk hits, writes and discards go to both.
// Either tier may be nil (nil *Store is the documented permanently-cold
// store). Safe for concurrent use.
type Tiered struct {
	Mem  *Mem
	Disk *Store
}

// Get reads through the tiers, promoting a disk hit into memory so the
// next session pays no disk read.
func (t *Tiered) Get(ns string, key Key, fingerprint uint64) ([]byte, bool) {
	if p, ok := t.Mem.Get(ns, key, fingerprint); ok {
		return p, true
	}
	p, ok := t.Disk.Get(ns, key, fingerprint)
	if ok {
		t.Mem.Put(ns, key, fingerprint, p)
	}
	return p, ok
}

// Put writes through to both tiers.
func (t *Tiered) Put(ns string, key Key, fingerprint uint64, payload []byte) {
	t.Mem.Put(ns, key, fingerprint, payload)
	t.Disk.Put(ns, key, fingerprint, payload)
}

// Discard removes the entry from both tiers.
func (t *Tiered) Discard(ns string, key Key, reason string) {
	t.Mem.Discard(ns, key, reason)
	t.Disk.Discard(ns, key, reason)
}
