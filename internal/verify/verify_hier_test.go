package verify

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/hier"
	"riot/internal/lib"
	"riot/internal/rules"
)

// TestHierVerifierMatchesScratchUnderEdits is the hierarchical
// end-to-end differential: with Hier on, random editor operations must
// produce reports identical to the cache-free flat pipeline whether
// the certificate engine served the run or declined into the flat
// path — the fallback must be observable only through Stats.
func TestHierVerifierMatchesScratchUnderEdits(t *testing.T) {
	e := gridEditor(t, 10)
	v := &Verifier{Hier: true}
	rng := rand.New(rand.NewSource(1982))

	compare := func(step int) {
		t.Helper()
		rep, err := v.Verify(e)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		wantCkt, wantCktErr, wantVs := scratch(t, e.Cell)
		if (rep.CircuitErr == nil) != (wantCktErr == nil) {
			t.Fatalf("step %d: circuit err %v vs scratch %v", step, rep.CircuitErr, wantCktErr)
		}
		if rep.CircuitErr == nil && !reflect.DeepEqual(rep.Circuit, wantCkt) {
			t.Fatalf("step %d: verified circuit differs from scratch", step)
		}
		if !reflect.DeepEqual(rep.Violations, wantVs) {
			t.Fatalf("step %d: verified violations differ from scratch\ngot:  %v\nwant: %v", step, rep.Violations, wantVs)
		}
		if rep.Gen != e.Generation() {
			t.Fatalf("step %d: report generation %d, editor %d", step, rep.Gen, e.Generation())
		}
	}

	compare(-1)

	created := 0
	for step := 0; step < 25; step++ {
		top := e.Cell
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0:
			in := top.Instances[rng.Intn(len(top.Instances))]
			e.MoveInstance(in, geom.Pt(rng.Intn(40*rules.Lambda)-20*rules.Lambda, rng.Intn(40*rules.Lambda)-20*rules.Lambda))
		case op < 7:
			created++
			if _, err := e.CreateInstance("NAND", fmt.Sprintf("x%d", created),
				geom.MakeTransform(geom.R0, geom.Pt(rng.Intn(3000), rng.Intn(3000))), 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1:
			if err := e.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		default:
			if len(top.Instances) == 0 {
				continue
			}
			e.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R90)
		}
		compare(step)
	}

	// the sequence must exercise the hierarchical path at least once
	// (the clean starting grid qualifies); deep-overlap states decline
	// into the flat path along the way, which the comparisons above
	// prove transparent
	if st := v.Stats(); st.Hier == 0 {
		t.Errorf("hierarchical path never served a run: stats = %+v", st)
	}
}

// TestHierVerifierEnsureFlat pins the lazy-flatten contract: a
// hierarchically served report carries no flattened geometry until
// EnsureFlat fills it in, and a superseded report refuses.
func TestHierVerifierEnsureFlat(t *testing.T) {
	e := gridEditor(t, 6)
	v := &Verifier{Hier: true}
	rep, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats().Hier != 1 {
		t.Fatalf("clean grid must be served hierarchically: stats = %+v", v.Stats())
	}
	if rep.Flat != nil {
		t.Fatal("hier report must not carry flattened geometry")
	}
	if err := v.EnsureFlat(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Flat == nil {
		t.Fatal("EnsureFlat left Flat nil")
	}
	// the populated geometry describes the current design
	if got, want := len(rep.Flat.Shapes), 0; got == want {
		t.Fatal("EnsureFlat produced empty geometry")
	}

	e.MoveInstance(e.Cell.Instances[0], geom.Pt(rules.Lambda, 0))
	rep2, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == rep {
		t.Fatal("edit must produce a new report")
	}
	stale := &Report{}
	if err := v.EnsureFlat(stale); err == nil {
		t.Fatal("EnsureFlat on a stale report must refuse")
	}
}

// TestHierVerifierLeafFallsBack checks a non-composition target runs
// the flat pipeline (the engine declines) and still reports exactly.
func TestHierVerifierLeafFallsBack(t *testing.T) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	cell, ok := d.Cell("NAND")
	if !ok {
		t.Fatal("no NAND in the library")
	}
	v := &Verifier{Hier: true}
	rep, err := v.VerifyCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Hier != 0 || st.Full != 1 {
		t.Fatalf("leaf cell must fall back to one full flat run: stats = %+v", st)
	}
	wantCkt, wantErr, wantVs := scratch(t, cell)
	if (rep.CircuitErr == nil) != (wantErr == nil) {
		t.Fatalf("circuit err %v vs scratch %v", rep.CircuitErr, wantErr)
	}
	if rep.CircuitErr == nil && !reflect.DeepEqual(rep.Circuit, wantCkt) {
		t.Error("leaf fallback circuit differs from scratch")
	}
	if !reflect.DeepEqual(rep.Violations, wantVs) {
		t.Error("leaf fallback violations differ from scratch")
	}
}

// TestHierVerifierWarmRestart pins the persistence contract at the
// verifier level: a second process (fresh verifier, fresh store
// handle on the same directory) re-extracts ZERO certified cells —
// every certificate loads from disk — and reports the same verdict.
func TestHierVerifierWarmRestart(t *testing.T) {
	dir := t.TempDir()

	run := func() (*Report, Stats, hier.Stats, error) {
		st, err := castore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		e := gridEditor(t, 12)
		v := &Verifier{Hier: true}
		v.AttachDisk(st, &castore.Signer{})
		rep, err := v.Verify(e)
		return rep, v.Stats(), v.HierStats(), err
	}

	rep1, st1, h1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hier != 1 {
		t.Fatalf("cold run not served hierarchically: %+v", st1)
	}
	if h1.CertBuilt == 0 || h1.CertStored == 0 {
		t.Fatalf("cold run built/stored no certificates: %+v", h1)
	}

	rep2, st2, h2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Hier != 1 {
		t.Fatalf("warm run not served hierarchically: %+v", st2)
	}
	if h2.CertBuilt != 0 {
		t.Fatalf("warm restart re-extracted %d certified cell(s): %+v", h2.CertBuilt, h2)
	}
	if h2.CertDiskHits == 0 {
		t.Fatalf("warm restart loaded no certificates from disk: %+v", h2)
	}
	if !reflect.DeepEqual(rep1.Violations, rep2.Violations) ||
		!reflect.DeepEqual(rep1.Circuit, rep2.Circuit) {
		t.Fatal("warm-restart verdict differs from the cold run")
	}
}
