package verify

import (
	"fmt"
	"testing"

	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// benchGrid builds an n x n grid of individually placed, abutting
// SRCELL instances under an editor — the editable form of the
// replicated-array workload the extract and DRC scale benchmarks use.
func benchGrid(b *testing.B, n int) *core.Editor {
	b.Helper()
	e := gridEditorN(b, n)
	return e
}

func gridEditorN(tb testing.TB, n int) *core.Editor {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		tb.Fatal(err)
	}
	top := core.NewComposition(fmt.Sprintf("TOP%d", n))
	if err := d.AddCell(top); err != nil {
		tb.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n*n; i++ {
		x, y := i%n, i/n
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

// BenchmarkIncrementalVerify measures the edit-verify loop on a 32x32
// grid: per iteration, one cell moves and the whole design re-verifies
// (extract + DRC).
//
//   - incremental: the session Verifier splices its caches off the
//     editor's generation;
//   - full: a from-scratch extract.FromCell + drc.CheckCell, the cost
//     every re-verify paid before this cache existed.
//
// The edit alternates a one-lambda displacement of a mid-array cell,
// so every iteration really dirties geometry (rails detach and
// reattach) rather than hitting the unchanged-generation fast path.
func BenchmarkIncrementalVerify(b *testing.B) {
	const n = 32
	for _, mode := range []string{"incremental", "full"} {
		b.Run(fmt.Sprintf("%dx%d/%s", n, n, mode), func(b *testing.B) {
			e := benchGrid(b, n)
			in := e.Cell.Instances[n*n/2+n/2]
			v := &Verifier{}
			if _, err := v.Verify(e); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := rules.Lambda
				if i%2 == 1 {
					d = -rules.Lambda
				}
				e.MoveInstance(in, geom.Pt(d, 0))
				if mode == "incremental" {
					rep, err := v.Verify(e)
					if err != nil {
						b.Fatal(err)
					}
					if i > 0 && !rep.Incremental {
						b.Fatal("incremental mode fell back to a full run")
					}
					continue
				}
				if _, err := extract.FromCell(e.Cell); err != nil {
					b.Fatal(err)
				}
				if _, err := drc.CheckCell(e.Cell); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalVerifyPipeEdit measures the same loop when the
// edit moves a metal-only pipe fitting beside the grid. An SRCELL move
// dirties every layer the design has, so the extractor's spliced
// point-location indexes all rebuild; a single-layer edit leaves the
// other layers' indexes untouched — the case the locator splice
// (ROADMAP follow-up) accelerates.
func BenchmarkIncrementalVerifyPipeEdit(b *testing.B) {
	const n = 32
	e := benchGrid(b, n)
	pipe, err := e.CreateInstance("PIPEM", "pipe",
		geom.MakeTransform(geom.R0, geom.Pt(-40*rules.Lambda, 0)), 1, 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	v := &Verifier{}
	if _, err := v.Verify(e); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := rules.Lambda
		if i%2 == 1 {
			d = -rules.Lambda
		}
		e.MoveInstance(pipe, geom.Pt(d, 0))
		rep, err := v.Verify(e)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 && !rep.Incremental {
			b.Fatal("fell back to a full run")
		}
	}
}
