package verify

import (
	"reflect"
	"testing"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/faultinject"
	"riot/internal/geom"
	"riot/internal/hier"
	"riot/internal/rules"
)

// faultCheck runs Verify and requires the report to equal the
// cache-free flat reference — the contract every injected fault must
// preserve: degradation may change HOW the verdict is computed, never
// WHAT it is.
func faultCheck(t *testing.T, v *Verifier, ed *core.Editor) *Report {
	t.Helper()
	rep, err := v.Verify(ed)
	if err != nil {
		t.Fatal(err)
	}
	wantCkt, wantErr, wantVs := scratch(t, ed.Cell)
	if (rep.CircuitErr == nil) != (wantErr == nil) {
		t.Fatalf("circuit err %v vs scratch %v", rep.CircuitErr, wantErr)
	}
	if rep.CircuitErr == nil && !reflect.DeepEqual(rep.Circuit, wantCkt) {
		t.Fatal("faulted circuit differs from scratch")
	}
	if !reflect.DeepEqual(rep.Violations, wantVs) {
		t.Fatalf("faulted violations differ from scratch\ngot:  %v\nwant: %v", rep.Violations, wantVs)
	}
	return rep
}

// TestVerifierFaultMatrix drives every fault-injection point through
// the full verifier and differential-tests each one against the flat
// reference. Every subtest additionally asserts the fault actually
// fired (a fault that never reaches its code path proves nothing) and
// that the degradation is visible in the stats counters the -stats
// reports read. CI runs this matrix under -race.
func TestVerifierFaultMatrix(t *testing.T) {
	t.Run("cert-pend", func(t *testing.T) {
		ed := gridEditor(t, 9)
		if _, err := ed.CreateInstance("NAND", "n0",
			geom.MakeTransform(geom.R0, geom.Pt(128*rules.Lambda, 0)), 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
		v := &Verifier{Hier: true}
		f := faultinject.New()
		f.Enable(faultinject.CertPend, "NAND")
		v.InjectFaults(f)
		rep := faultCheck(t, v, ed)
		if f.Hits(faultinject.CertPend) == 0 {
			t.Fatal("cert-pend fault armed but never fired")
		}
		if rep.Quarantined == 0 || v.Stats().HierPartial == 0 {
			t.Fatalf("pend placement not served partially: rep.Quarantined=%d stats=%+v",
				rep.Quarantined, v.Stats())
		}
	})

	t.Run("template-poison", func(t *testing.T) {
		ed := gridEditor(t, 9)
		v := &Verifier{Hier: true}
		f := faultinject.New()
		f.Enable(faultinject.TemplatePoison, "0")
		v.InjectFaults(f)
		// the corner placement's abutting partners pull into the group;
		// give the run headroom so the subtest exercises splicing
		v.engine().QuarantineBudget = len(ed.Cell.Instances)
		rep := faultCheck(t, v, ed)
		if f.Hits(faultinject.TemplatePoison) == 0 {
			t.Fatal("template-poison fault armed but never fired")
		}
		if rep.Quarantined < 2 || v.Stats().HierPartial == 0 {
			t.Fatalf("poisoned pair not served partially: rep.Quarantined=%d stats=%+v",
				rep.Quarantined, v.Stats())
		}
	})

	t.Run("cert-decode", func(t *testing.T) {
		dir := t.TempDir()
		st1, err := castore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		v1 := &Verifier{Hier: true}
		v1.AttachDisk(st1, &castore.Signer{})
		if _, err := v1.Verify(gridEditor(t, 9)); err != nil {
			t.Fatal(err)
		}
		if v1.HierStats().CertStored == 0 {
			t.Fatalf("cold run stored no certificates: %+v", v1.HierStats())
		}
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}

		st2, err := castore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		v2 := &Verifier{Hier: true}
		f := faultinject.New()
		f.Enable(faultinject.CertDecode, "")
		v2.InjectFaults(f)
		v2.AttachDisk(st2, &castore.Signer{})
		faultCheck(t, v2, gridEditor(t, 9))
		if f.Hits(faultinject.CertDecode) == 0 {
			t.Fatal("cert-decode fault armed but never fired")
		}
		// the corrupted payload must be rejected and the certificate
		// rebuilt cold, not trusted
		if hs := v2.HierStats(); hs.CertBuilt == 0 {
			t.Fatalf("warm run with corrupt payloads rebuilt nothing: %+v", hs)
		}
	})

	t.Run("store-corrupt", func(t *testing.T) {
		dir := t.TempDir()
		st1, err := castore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		v1 := &Verifier{Hier: true}
		v1.AttachDisk(st1, &castore.Signer{})
		if _, err := v1.Verify(gridEditor(t, 9)); err != nil {
			t.Fatal(err)
		}
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}

		st2, err := castore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		f := faultinject.New()
		f.Enable(faultinject.StoreCorrupt, "")
		st2.Faults = f
		v2 := &Verifier{Hier: true}
		v2.AttachDisk(st2, &castore.Signer{})
		faultCheck(t, v2, gridEditor(t, 9))
		if f.Hits(faultinject.StoreCorrupt) == 0 {
			t.Fatal("store-corrupt fault armed but never fired")
		}
		if cs := st2.Stats(); cs.Corrupt == 0 {
			t.Fatalf("corrupted reads not counted by the store: %+v", cs)
		}
	})

	t.Run("compose-budget", func(t *testing.T) {
		ed := gridEditor(t, 9)
		v := &Verifier{Hier: true}
		f := faultinject.New()
		f.Enable(faultinject.ComposeBudget, "")
		v.InjectFaults(f)
		faultCheck(t, v, ed)
		if f.Hits(faultinject.ComposeBudget) == 0 {
			t.Fatal("compose-budget fault armed but never fired")
		}
		// budget exhaustion declines whole: the flat pipeline serves
		if st := v.Stats(); st.Hier != 0 || st.Full == 0 {
			t.Fatalf("exhausted compose budget should fall back flat: %+v", st)
		}
		if d := v.HierDeclineInfo(); d == nil || d.Cond != hier.CondComposeBudget {
			t.Fatalf("decline = %+v, want condition %s", d, hier.CondComposeBudget)
		}
	})
}

// TestVerifierFaultMatrixUnderEdits runs a short editing trace with
// pend and poison faults both armed — repeated partial runs across
// splice generations must stay verdict-identical to scratch.
func TestVerifierFaultMatrixUnderEdits(t *testing.T) {
	ed := gridEditor(t, 9)
	if _, err := ed.CreateInstance("NAND", "n0",
		geom.MakeTransform(geom.R0, geom.Pt(128*rules.Lambda, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Hier: true}
	f := faultinject.New()
	f.Enable(faultinject.CertPend, "NAND")
	f.Enable(faultinject.TemplatePoison, "4")
	v.InjectFaults(f)
	v.engine().QuarantineBudget = len(ed.Cell.Instances)
	for step := 0; step < 4; step++ {
		faultCheck(t, v, ed)
		ed.MoveInstance(ed.Cell.Instances[step], geom.Pt(rules.Lambda, 0))
	}
	if v.Stats().HierPartial == 0 {
		t.Fatalf("no partial runs across the trace: %+v", v.Stats())
	}
	if f.Hits(faultinject.CertPend) == 0 || f.Hits(faultinject.TemplatePoison) == 0 {
		t.Fatalf("faults armed but idle: %s", f)
	}
}
