package verify

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// gridEditor builds a composition of n individually placed SRCELLs
// (abutting grid) under an editor.
func gridEditor(t testing.TB, n int) *core.Editor {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x, y := i%6, i/6
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// scratch runs the plain, cache-free pipeline.
func scratch(t *testing.T, cell *core.Cell) (*extract.Circuit, error, []drc.Violation) {
	t.Helper()
	ckt, cktErr := extract.FromCell(cell)
	vs, err := drc.CheckCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	return ckt, cktErr, vs
}

// TestVerifierMatchesScratchUnderEdits is the end-to-end differential:
// random editor operations, Verify after each, compared against
// cache-free extraction and DRC of the same cell.
func TestVerifierMatchesScratchUnderEdits(t *testing.T) {
	e := gridEditor(t, 10)
	v := &Verifier{}
	rng := rand.New(rand.NewSource(1982))

	compare := func(step int) {
		t.Helper()
		rep, err := v.Verify(e)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		wantCkt, wantCktErr, wantVs := scratch(t, e.Cell)
		if (rep.CircuitErr == nil) != (wantCktErr == nil) {
			t.Fatalf("step %d: circuit err %v vs scratch %v", step, rep.CircuitErr, wantCktErr)
		}
		if rep.CircuitErr == nil && !reflect.DeepEqual(rep.Circuit, wantCkt) {
			t.Fatalf("step %d: verified circuit differs from scratch", step)
		}
		if !reflect.DeepEqual(rep.Violations, wantVs) {
			t.Fatalf("step %d: verified violations differ from scratch\ngot:  %v\nwant: %v", step, rep.Violations, wantVs)
		}
		if rep.Gen != e.Generation() {
			t.Fatalf("step %d: report generation %d, editor %d", step, rep.Gen, e.Generation())
		}
	}

	compare(-1)

	created := 0
	for step := 0; step < 25; step++ {
		top := e.Cell
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0:
			in := top.Instances[rng.Intn(len(top.Instances))]
			e.MoveInstance(in, geom.Pt(rng.Intn(40*rules.Lambda)-20*rules.Lambda, rng.Intn(40*rules.Lambda)-20*rules.Lambda))
		case op < 7:
			created++
			if _, err := e.CreateInstance("NAND", fmt.Sprintf("x%d", created),
				geom.MakeTransform(geom.R0, geom.Pt(rng.Intn(3000), rng.Intn(3000))), 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1:
			if err := e.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		default:
			if len(top.Instances) == 0 {
				continue
			}
			e.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R90)
		}
		compare(step)
	}
}

// TestVerifierCachesByGeneration checks the generation fast path (same
// report pointer back) and that edits invalidate it via the splice
// path.
func TestVerifierCachesByGeneration(t *testing.T) {
	e := gridEditor(t, 6)
	v := &Verifier{}
	r1, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Incremental {
		t.Error("first run must not be incremental")
	}
	r2, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged generation must return the cached report")
	}
	e.MoveInstance(e.Cell.Instances[0], geom.Pt(rules.Lambda, 0))
	r3, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Error("edit did not invalidate the cached report")
	}
	if !r3.Incremental {
		t.Error("post-edit verify must splice")
	}
}

// TestVerifierInvalidateRebuilds checks Invalidate forces a full,
// correct rebuild.
func TestVerifierInvalidateRebuilds(t *testing.T) {
	e := gridEditor(t, 6)
	v := &Verifier{}
	if _, err := v.Verify(e); err != nil {
		t.Fatal(err)
	}
	// mutate behind the editor's back, then announce it
	in := e.Cell.Instances[2]
	in.Tr = in.Tr.Translated(geom.Pt(50*rules.Lambda, 0))
	e.Invalidate()
	rep, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incremental {
		t.Error("post-Invalidate verify must rebuild from scratch")
	}
	wantCkt, wantErr, wantVs := scratch(t, e.Cell)
	if (rep.CircuitErr == nil) != (wantErr == nil) {
		t.Fatalf("circuit err mismatch: %v vs %v", rep.CircuitErr, wantErr)
	}
	if rep.CircuitErr == nil && !reflect.DeepEqual(rep.Circuit, wantCkt) {
		t.Error("post-Invalidate circuit differs from scratch")
	}
	if !reflect.DeepEqual(rep.Violations, wantVs) {
		t.Error("post-Invalidate violations differ from scratch")
	}
}

// TestVerifierBatchesEditsIntoOneSplice pins the coalesced-delta
// contract: any number of edits between two Verify calls cost exactly
// one splice, and only the instances the edits touched re-flatten.
func TestVerifierBatchesEditsIntoOneSplice(t *testing.T) {
	e := gridEditor(t, 12)
	v := &Verifier{}
	if _, err := v.Verify(e); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Full != 1 || st.Spliced != 0 {
		t.Fatalf("after priming: stats = %+v", st)
	}

	// a burst of edits on two instances: four moves, only two distinct
	// instances touched (a's moves leave a net displacement, so its
	// shard really must re-flatten)
	a, b := e.Cell.Instances[3], e.Cell.Instances[7]
	e.MoveInstance(a, geom.Pt(rules.Lambda, 0))
	e.MoveInstance(a, geom.Pt(-rules.Lambda, 0))
	e.MoveInstance(a, geom.Pt(rules.Lambda, 0))
	e.MoveInstance(b, geom.Pt(0, rules.Lambda))

	rep, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incremental {
		t.Fatal("batched verify fell back to a full run")
	}
	if st := v.Stats(); st.Spliced != 1 || st.Full != 1 {
		t.Fatalf("five edits did not coalesce into one splice: stats = %+v", st)
	}
	if reused, reflat := v.FlattenStats(); reflat != 2 || reused != 10 {
		t.Fatalf("re-flattened %d instances (reused %d), want exactly the 2 touched", reflat, reused)
	}

	// the spliced report equals scratch
	ckt, cktErr, vs := scratch(t, e.Cell)
	if (cktErr == nil) != (rep.CircuitErr == nil) {
		t.Fatalf("extraction error mismatch: %v vs %v", rep.CircuitErr, cktErr)
	}
	if cktErr == nil && !reflect.DeepEqual(ckt, rep.Circuit) {
		t.Error("spliced circuit differs from scratch after batched edits")
	}
	if !reflect.DeepEqual(vs, rep.Violations) {
		t.Error("spliced violations differ from scratch after batched edits")
	}
}

// TestVerifierChangeLogFloodRebuilds pins the change-log truncation
// contract end to end: a burst of edits deep enough to trim the
// editor's bounded change log must make ChangesSince report ok=false
// for the verifier's old generation — never a silently partial dirty
// set — and the verifier must respond with a full rebuild whose report
// still matches the cache-free pipeline exactly.
func TestVerifierChangeLogFloodRebuilds(t *testing.T) {
	e := gridEditor(t, 9)
	v := &Verifier{}
	if _, err := v.Verify(e); err != nil {
		t.Fatal(err)
	}
	oldGen := e.Generation()
	full0 := v.Stats().Full

	// flood: well past the log bound, jogging one instance back and
	// forth (net displacement zero, so the final geometry equals a
	// single-edit state only by accident of the jog count — the verify
	// must not depend on that)
	in := e.Cell.Instances[4]
	const flood = 300
	for i := 0; i < flood; i++ {
		d := rules.Lambda
		if i%2 == 1 {
			d = -rules.Lambda
		}
		e.MoveInstance(in, geom.Pt(d, rules.Lambda))
		e.MoveInstance(in, geom.Pt(0, -rules.Lambda))
	}
	if dirty, ok := e.ChangesSince(oldGen); ok {
		t.Fatalf("ChangesSince across a trimmed log returned ok=true with %d rects; must refuse", len(dirty))
	}
	// a generation the log still covers keeps answering exactly
	midGen := e.Generation()
	e.MoveInstance(in, geom.Pt(rules.Lambda, 0))
	if dirty, ok := e.ChangesSince(midGen); !ok || len(dirty) != 1 {
		t.Fatalf("ChangesSince inside the log = %v, %v; want one rect, ok", dirty, ok)
	}

	rep, err := v.Verify(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incremental {
		t.Error("flooded verify claimed an incremental splice; must rebuild from scratch")
	}
	if got := v.Stats().Full; got != full0+1 {
		t.Errorf("full rebuilds = %d, want %d", got, full0+1)
	}
	wantCkt, wantErr, wantVs := scratch(t, e.Cell)
	if (rep.CircuitErr == nil) != (wantErr == nil) {
		t.Fatalf("circuit error mismatch: %v vs %v", rep.CircuitErr, wantErr)
	}
	if !reflect.DeepEqual(rep.Circuit, wantCkt) {
		t.Error("flooded rebuild circuit differs from scratch")
	}
	if !reflect.DeepEqual(rep.Violations, wantVs) {
		t.Error("flooded rebuild violations differ from scratch")
	}
}
