// Package verify is the incremental whole-design verification
// pipeline: one Verifier bundles the three splicing caches — flattened
// geometry (internal/flatten.Cache), extracted connectivity
// (internal/extract.Incremental) and design-rule state
// (internal/drc.Incremental) — and keys them on a core.Editor's edit
// generation.
//
// The paper's workflow is edit, verify, edit: the designer abuts or
// routes a cell, re-checks the whole composition, and moves on. A
// from-scratch run repeats all the work for every keystroke even
// though one edit disturbs a few rectangles. Verify instead asks the
// editor what changed since the last run: unchanged instances keep
// their flattened shards, untouched components replay their
// connectivity and design-rule results, and only geometry near the
// edit is re-derived. The spliced results are identical to
// from-scratch runs — every splice layer is differential-tested — so
// callers cannot observe the cache except as speed.
//
// A Verifier serves one session at a time and is not safe for
// concurrent use — but it consumes frozen snapshots
// (core.Editor.Snapshot), so the editor it watches may keep mutating
// while a run proceeds, and a server can run many sessions' verifiers
// in parallel against one shared design. Edits made outside the
// editor's methods must be announced with Editor.Invalidate, which
// drops every cache.
package verify

import (
	"errors"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/drc"
	"riot/internal/extract"
	"riot/internal/faultinject"
	"riot/internal/flatten"
	"riot/internal/hier"
	"riot/internal/obs"
)

// Report is the outcome of one whole-design verification.
type Report struct {
	// Circuit is the extracted netlist, nil when extraction failed
	// (CircuitErr says why — e.g. a transistor with a floating channel
	// mid-edit). DRC runs either way.
	Circuit    *extract.Circuit
	CircuitErr error
	// Violations is the design-rule report, empty when clean.
	Violations []drc.Violation
	// Incremental reports whether any splice path ran (false on the
	// first run, after Invalidate, or when the change log was
	// exhausted).
	Incremental bool
	// Quarantined counts placements the hierarchical engine served by
	// partial degradation (flat residue spliced into the composed
	// remainder) rather than certificate composition; 0 for flat-path
	// reports and clean hierarchical runs.
	Quarantined int
	// Gen is the editor generation the report describes.
	Gen uint64
	// Flat is the flattened geometry the report was derived from. The
	// LVS hierarchical-certificate path reads occurrence identity
	// (per-device Src ids, SrcCells) from it to align the extracted
	// circuit's transistors with the cells the composition declares.
	// Reports from the hierarchical path leave it nil — no flattening
	// happened — and Verifier.EnsureFlat populates it on demand.
	Flat *flatten.Result
}

// Clean reports whether the design extracted successfully and checked
// rule-clean.
func (r *Report) Clean() bool {
	return r.CircuitErr == nil && len(r.Violations) == 0
}

// Stats counts how a Verifier satisfied its runs: Cached (unchanged
// generation, the report returned outright), Spliced (an incremental
// splice ran) and Full (a from-scratch rebuild). Any number of edits
// between two Verify calls coalesce into one delta, so a burst of N
// edits costs one splice, not N — the batched-edit test pins that.
type Stats struct {
	Cached  int
	Spliced int
	Full    int
	// Hier counts runs answered by the hierarchical certificate engine
	// (per-distinct-cell work, no flattening at all); HierPartial those
	// among them that quarantined placements and spliced a flat residue.
	Hier        int
	HierPartial int
}

// Verifier caches verification state across edits of one composition
// cell. The zero Verifier is ready to use.
type Verifier struct {
	cache flatten.Cache
	ext   extract.Incremental
	chk   drc.Incremental

	// Hier routes runs through the hierarchical certificate engine
	// first: each distinct (cell, orientation) extracts and DRC-checks
	// once, placements compose, and the flat pipeline below never runs
	// unless the engine declines. Off by default — the flat pipeline is
	// the reference semantics; the shell turns it on.
	Hier bool
	eng  *hier.Engine

	// trace, when enabled, records the pipeline's span tree per run:
	// one "verify" root with the flatten/extract/drc or hier children.
	// SetTrace propagates it to every stage.
	trace *obs.Trace

	cell   *core.Cell
	gen    uint64
	have   bool
	report *Report
	stats  Stats
}

// Stats reports the verifier's run accounting.
func (v *Verifier) Stats() Stats { return v.stats }

// SetTrace wires a span recorder through the whole pipeline: the
// verifier itself, the flatten cache, the extractor, the checker and
// the hierarchical engine all record into t. nil detaches tracing
// everywhere (the default, which costs nothing).
func (v *Verifier) SetTrace(t *obs.Trace) {
	v.trace = t
	v.cache.Trace = t
	v.ext.Trace = t
	v.chk.Trace = t
	v.engine().Trace = t
}

// Trace reports the recorder SetTrace installed, or nil.
func (v *Verifier) Trace() *obs.Trace { return v.trace }

// SetLog routes the hierarchical engine's degradation lines (declines,
// partial quarantines) through l. nil restores the default, stderr;
// obs.Discard silences them.
func (v *Verifier) SetLog(l obs.Logger) { v.engine().Log = l }

// AttachDisk connects the verifier's flatten cache and the
// hierarchical engine to a content-addressed store — the on-disk
// castore.Store, a server's shared in-memory tier, or both
// (castore.Tiered): instance shards and per-cell certificates missing
// in memory (always, in a fresh process) are loaded by content
// signature instead of re-derived. A nil store detaches the flatten
// cache.
func (v *Verifier) AttachDisk(st castore.Blob, sg *castore.Signer) {
	v.cache.AttachDisk(st, sg)
	v.engine().AttachDisk(st, sg)
}

// engine returns the hierarchical engine, creating it on first use.
func (v *Verifier) engine() *hier.Engine {
	if v.eng == nil {
		v.eng = hier.New()
	}
	return v.eng
}

// HierStats reports the hierarchical engine's work counters.
func (v *Verifier) HierStats() hier.Stats { return v.engine().Stats() }

// HierDecline reports why the most recent hierarchical attempt fell
// back to the flat pipeline, or nil.
func (v *Verifier) HierDecline() error { return v.engine().LastDecline() }

// HierDeclineInfo reports the structured decline record of the most
// recent hierarchical attempt, or nil.
func (v *Verifier) HierDeclineInfo() *hier.Decline { return v.engine().LastDeclineInfo() }

// InjectFaults arms the hierarchical engine with a fault-injection
// set (nil disarms). The castore faults are wired separately on the
// store itself; see shell.InjectFaults for the full-pipeline hookup.
func (v *Verifier) InjectFaults(f *faultinject.Set) { v.engine().Faults = f }

// FlattenDiskStats reports, for the most recent run, how many instance
// shards loaded from the persistent store.
func (v *Verifier) FlattenDiskStats() (loaded int) { return v.cache.DiskStats() }

// FlattenStats reports, for the most recent run, how many instance
// shards the flatten cache reused vs re-flattened.
func (v *Verifier) FlattenStats() (reused, reflattened int) { return v.cache.Stats() }

// Verify extracts and design-rule checks the editor's cell, through a
// frozen snapshot of the editor's current generation (the editor may
// keep mutating while the run proceeds). An unchanged generation
// returns the cached report outright; a generation the editor's change
// log still covers splices the caches; anything else (first run, log
// exhausted, Invalidate) rebuilds from scratch and re-primes them.
func (v *Verifier) Verify(ed *core.Editor) (*Report, error) {
	return v.VerifySnapshot(ed.Snapshot())
}

// VerifySnapshot is Verify against an explicit frozen generation.
// Snapshot clones of one design cell share lineage (core.Cell.Origin),
// so successive generations splice exactly as a live editor would:
// unchanged instances keep their clone pointers and therefore their
// shards.
func (v *Verifier) VerifySnapshot(snap *core.Snapshot) (*Report, error) {
	cell, gen := snap.Cell, snap.Gen
	if v.have && v.cell == cell && v.gen == gen {
		v.stats.Cached++
		return v.report, nil
	}
	if v.have {
		if _, ok := snap.ChangesSince(v.gen); !ok || v.cell.Origin() != cell.Origin() {
			// tracking lost: unbounded change, trimmed log, or a cell
			// switch — drop the flatten cache so no stale shard splices
			// (the downstream caches reset themselves off the nil delta)
			v.cache.Reset()
			if !ok && v.eng != nil {
				// an Invalidate can mean leaf cells mutated in place;
				// the engine's pointer-keyed certificate memo would not
				// notice, so drop it (store entries are content-signed
				// and re-key correctly — the signer's memo entries are
				// revision-checked, so they recompute on their own)
				v.eng.ResetMemo()
			}
		}
	}
	return v.run(cell, gen)
}

// VerifyCell verifies a cell outside any editor: a full, cache-priming
// run. Subsequent Verify calls on an editor of the same cell splice
// from it. Snapshot clones compare by lineage, so verifying successive
// frozen generations of one design cell keeps the cache warm.
func (v *Verifier) VerifyCell(cell *core.Cell) (*Report, error) {
	if v.cell == nil || v.cell.Origin() != cell.Origin() {
		v.cache.Reset()
	}
	return v.run(cell, 0)
}

func (v *Verifier) run(cell *core.Cell, gen uint64) (*Report, error) {
	sp := v.trace.Begin("verify")
	defer sp.End()
	if sp != nil {
		sp.Note("cell", cell.Name)
	}
	if v.Hier {
		if rep, ok := v.runHier(cell, gen); ok {
			return rep, nil
		}
	}
	fr, delta, err := v.cache.Flatten(cell)
	if err != nil {
		v.have = false
		return nil, err
	}
	ckt, splicedCkt, cktErr := v.ext.Solve(fr, delta)
	vs, splicedDRC := v.chk.Check(fr, delta)
	if splicedCkt || splicedDRC {
		v.stats.Spliced++
	} else {
		v.stats.Full++
	}
	v.cell, v.gen, v.have = cell, gen, true
	v.report = &Report{
		Circuit:     ckt,
		CircuitErr:  cktErr,
		Violations:  vs,
		Incremental: splicedCkt || splicedDRC,
		Gen:         gen,
		Flat:        fr,
	}
	return v.report, nil
}

// runHier attempts the hierarchical path: per-distinct-cell
// certificates composed over placements, verdict-identical to the flat
// pipeline or declined. On success the circuit materializes eagerly so
// the report is complete; Flat stays nil until EnsureFlat. Any decline
// (engine-level or during materialization) reports ok=false and the
// caller runs the flat pipeline, which reproduces whatever verdict or
// error the design deserves.
func (v *Verifier) runHier(cell *core.Cell, gen uint64) (*Report, bool) {
	res, ok := v.engine().Verify(cell)
	if !ok {
		return nil, false
	}
	msp := v.trace.Begin("materialize")
	ckt, err := res.Circuit()
	msp.End()
	if err != nil {
		return nil, false
	}
	v.stats.Hier++
	if res.Quarantined > 0 {
		v.stats.HierPartial++
	}
	v.cell, v.gen, v.have = cell, gen, true
	v.report = &Report{
		Circuit:     ckt,
		Violations:  res.Violations,
		Quarantined: res.Quarantined,
		Gen:         gen,
	}
	return v.report, true
}

// EnsureFlat populates rep.Flat for reports the hierarchical path
// produced without flattening. Only the verifier's current report can
// be completed — the flatten cache tracks one design state. The
// cache's own snapshot diffing keeps this safe to call at any time;
// downstream splice caches guard on Result pointer identity, so a
// flatten the solver never saw costs at most one full re-solve later.
func (v *Verifier) EnsureFlat(rep *Report) error {
	if rep.Flat != nil {
		return nil
	}
	if rep != v.report {
		return errors.New("verify: EnsureFlat on a stale report")
	}
	fr, _, err := v.cache.Flatten(v.cell)
	if err != nil {
		return err
	}
	rep.Flat = fr
	return nil
}
