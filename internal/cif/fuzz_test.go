package cif

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParseCIF drives the streaming parser over arbitrary bytes. The
// properties: never panic, never hang, never allocate past the Limits,
// always return either a File or a positioned *ParseError — and
// anything the parser accepts, the writer must serialize without
// panicking.
func FuzzParseCIF(f *testing.F) {
	seeds := []string{
		// well-formed
		"DS 1; L NM; B 20 10 5 5; DF; E",
		"DS 1 2 1; 9 PAD; L ND; P 0 0 10 0 10 10; W 4 0 0 8 8; 94 VDD 0 4 NM 4; DF; C 1 T 5 5 M X R 0 1; E",
		"(header (nested)) DS 1; L NM; R 6 3 3; DF; DD 1; E",
		"ds 1; l nm; b 4, 4 xy: -10 - 20; df; e",
		// malformed: structure
		"DS 1; L NM; B 2 2 0 0; DF",
		"DS 1; DS 2; DF; DF; E",
		"DF; E",
		"DS 1; E",
		"E inside nothing",
		"(unterminated",
		"DS 1; L NM; Q; DF; E",
		// malformed: numbers and names
		"DS 1; L NM; B 99999999999999999999999 1 0 0; DF; E",
		"999999999999999999999999999 ext; E",
		"DS 1; L TOOLONGNAME; DF; E",
		"DS 1; L NM; B - - 0 0; DF; E",
		"C -; E",
		// resource abuse shapes
		"DS 1; L NM; W 1 " + strings.Repeat("0 0 ", 64) + "; DF; E",
		strings.Repeat("(", 80),
		"42 " + strings.Repeat("x", 256) + "; E",
		"DS 1; 94 " + strings.Repeat("N", 64) + " 1 2; DF; E",
		"\x00\xff\xfe;;;E",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// tight limits so the fuzzer explores limit handling too
		lim := Limits{MaxElements: 1 << 12, MaxPathPoints: 1 << 10, MaxUserExtBytes: 1 << 10, MaxCommentDepth: 16}
		parsed, err := ParseLimits(bytes.NewReader(data), lim)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *ParseError: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("error line %d < 1: %v", pe.Line, err)
			}
			if parsed != nil {
				t.Fatal("both file and error returned")
			}
			return
		}
		if parsed == nil {
			t.Fatal("nil file without error")
		}
		_ = String(parsed)
	})
}
