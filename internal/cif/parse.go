package cif

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"riot/internal/geom"
)

// Limits bounds what one Parse call will accept, so a hostile or
// corrupt stream fails with a positioned error instead of exhausting
// memory. The zero value of any field means that field's Default.
type Limits struct {
	// MaxElements caps the total number of parsed elements (geometry,
	// calls, connectors, user extensions) plus symbol definitions.
	MaxElements int
	// MaxPathPoints caps the points in one polygon or wire path.
	MaxPathPoints int
	// MaxUserExtBytes caps the body of one user-extension command.
	MaxUserExtBytes int
	// MaxCommentDepth caps comment nesting.
	MaxCommentDepth int
}

// DefaultLimits is generous for real designs: a file at these limits
// holds millions of elements.
var DefaultLimits = Limits{
	MaxElements:     1 << 22,
	MaxPathPoints:   1 << 20,
	MaxUserExtBytes: 1 << 16,
	MaxCommentDepth: 64,
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits
	if l.MaxElements > 0 {
		d.MaxElements = l.MaxElements
	}
	if l.MaxPathPoints > 0 {
		d.MaxPathPoints = l.MaxPathPoints
	}
	if l.MaxUserExtBytes > 0 {
		d.MaxUserExtBytes = l.MaxUserExtBytes
	}
	if l.MaxCommentDepth > 0 {
		d.MaxCommentDepth = l.MaxCommentDepth
	}
	return d
}

// ParseError is the positioned error every failed Parse returns.
type ParseError struct {
	Line int    // 1-based source line of the failure
	Msg  string // what went wrong there
}

func (e *ParseError) Error() string { return fmt.Sprintf("cif: line %d: %s", e.Line, e.Msg) }

// Parse reads a CIF 2.0 file under DefaultLimits. Parsing is strict
// about structure (semicolon-terminated commands, balanced comments,
// DF matching DS) but, like the published grammar, lenient about
// separators: any character that cannot start a token serves as blank
// space. The stream is consumed incrementally — the file is never held
// in memory whole — and every failure is a *ParseError carrying the
// source line.
func Parse(r io.Reader) (*File, error) {
	return ParseLimits(r, DefaultLimits)
}

// ParseLimits is Parse under explicit Limits.
func ParseLimits(r io.Reader, lim Limits) (*File, error) {
	p := &parser{r: bufio.NewReader(r), line: 1, lim: lim.withDefaults()}
	f, err := p.file()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ParseString parses CIF source held in a string.
func ParseString(s string) (*File, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	r       *bufio.Reader
	line    int
	lim     Limits
	readErr error // first non-EOF reader failure, reported over parse errors
	elems   int   // elements + symbols parsed, against MaxElements
}

func (p *parser) errf(format string, args ...any) error {
	if p.readErr != nil {
		return &ParseError{Line: p.line, Msg: fmt.Sprintf("read error: %v", p.readErr)}
	}
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool {
	if p.readErr != nil {
		return true
	}
	_, err := p.r.Peek(1)
	if err != nil {
		if err != io.EOF {
			p.readErr = err
		}
		return true
	}
	return false
}

func (p *parser) peek() byte {
	b, err := p.r.Peek(1)
	if err != nil {
		return 0
	}
	return b[0]
}

func (p *parser) advance() byte {
	c, err := p.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			p.readErr = err
		}
		return 0
	}
	if c == '\n' {
		p.line++
	}
	return c
}

// skipComment consumes a balanced (possibly nested) comment; the caller
// has seen '(' at the current position.
func (p *parser) skipComment() error {
	depth := 0
	for !p.eof() {
		switch p.advance() {
		case '(':
			depth++
			if depth > p.lim.MaxCommentDepth {
				return p.errf("comments nested deeper than %d", p.lim.MaxCommentDepth)
			}
		case ')':
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated comment")
}

// isTokenStart reports whether c can begin a meaningful token: a digit,
// a minus sign, an upper-case letter, a semicolon, a comment, or the
// lower-case letters some tools emit for commands.
func isTokenStart(c byte) bool {
	switch {
	case c >= '0' && c <= '9', c == '-', c == ';', c == '(':
		return true
	case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z':
		return true
	}
	return false
}

// skipBlanks consumes separator characters and comments.
func (p *parser) skipBlanks() error {
	for !p.eof() {
		c := p.peek()
		if c == '(' {
			if err := p.skipComment(); err != nil {
				return err
			}
			continue
		}
		if isTokenStart(c) {
			return nil
		}
		p.advance()
	}
	return nil
}

// skipIntSep consumes separators allowed between integers (anything
// that is not a digit, '-', ';' or '('; comments also allowed).
func (p *parser) skipIntSep() error {
	_, err := p.skipIntSepJunk()
	return err
}

// skipIntSepJunk is skipIntSep, also reporting whether any consumed
// separator could have started a token (letters): legal between two
// integers, junk if no integer follows.
func (p *parser) skipIntSepJunk() (junk bool, err error) {
	for !p.eof() {
		c := p.peek()
		if c == '(' {
			if err := p.skipComment(); err != nil {
				return junk, err
			}
			continue
		}
		if (c >= '0' && c <= '9') || c == '-' || c == ';' {
			return junk, nil
		}
		if isTokenStart(c) {
			junk = true
		}
		p.advance()
	}
	return junk, nil
}

// integer reads one (possibly negative) integer.
func (p *parser) integer() (int, error) {
	if err := p.skipIntSep(); err != nil {
		return 0, err
	}
	neg := false
	if p.peek() == '-' {
		neg = true
		p.advance()
		// blanks may separate '-' from its digits
		if err := p.skipIntSep(); err != nil {
			return 0, err
		}
	}
	if p.eof() || p.peek() < '0' || p.peek() > '9' {
		return 0, p.errf("expected integer")
	}
	n := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		if n > (math.MaxInt-9)/10 {
			return 0, p.errf("integer overflow")
		}
		n = n*10 + int(p.advance()-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// point reads an x,y coordinate pair.
func (p *parser) point() (geom.Point, error) {
	x, err := p.integer()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := p.integer()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}

// peekInt consumes inter-integer separators, then reports whether the
// next character starts an integer. The separators are gone either
// way — the grammar treats them as blanks, so every continuation
// (another integer, or the command's ';') tolerates their absence.
// Letters consumed as separators are only legal when an integer does
// follow; otherwise they were junk before the terminator and the
// command is malformed.
func (p *parser) peekInt() (bool, error) {
	junk, err := p.skipIntSepJunk()
	if err != nil {
		return false, err
	}
	c := p.peek()
	if (c >= '0' && c <= '9') || c == '-' {
		return true, nil
	}
	if junk {
		return false, p.errf("expected ';'")
	}
	return false, nil
}

// path reads one or more points up to the terminating semicolon.
func (p *parser) path() ([]geom.Point, error) {
	var pts []geom.Point
	for {
		more, err := p.peekInt()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if len(pts) >= p.lim.MaxPathPoints {
			return nil, p.errf("path longer than %d points", p.lim.MaxPathPoints)
		}
		pt, err := p.point()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	if len(pts) == 0 {
		return nil, p.errf("expected at least one point")
	}
	return pts, nil
}

// shortname reads a CIF short name: one to four letters or digits,
// beginning with a letter, upper-cased.
func (p *parser) shortname() (string, error) {
	if err := p.skipBlanks(); err != nil {
		return "", err
	}
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') {
			if b.Len() >= 4 {
				return "", p.errf("short name %s%c... exceeds four characters", b.String(), c)
			}
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			b.WriteByte(c)
			p.advance()
			continue
		}
		break
	}
	if b.Len() == 0 {
		return "", p.errf("expected a short name")
	}
	if c := b.String()[0]; c >= '0' && c <= '9' {
		return "", p.errf("short name %q must begin with a letter", b.String())
	}
	return b.String(), nil
}

// semicolon consumes the command terminator.
func (p *parser) semicolon() error {
	if err := p.skipBlanks(); err != nil {
		return err
	}
	if p.eof() || p.peek() != ';' {
		return p.errf("expected ';'")
	}
	p.advance()
	return nil
}

// restOfCommand reads raw user-extension text up to the terminating
// semicolon (which is consumed).
func (p *parser) restOfCommand() (string, error) {
	var b strings.Builder
	for !p.eof() {
		if p.peek() == ';' {
			p.advance()
			return strings.TrimSpace(b.String()), nil
		}
		if b.Len() >= p.lim.MaxUserExtBytes {
			return "", p.errf("user extension longer than %d bytes", p.lim.MaxUserExtBytes)
		}
		b.WriteByte(p.advance())
	}
	return "", p.errf("unterminated user extension")
}

// transformation reads the C command's transformation list and folds it
// into a single geom.Transform. Operations apply in the order written.
func (p *parser) transformation() (geom.Transform, error) {
	t := geom.Identity
	for {
		if err := p.skipBlanks(); err != nil {
			return t, err
		}
		switch c := p.peek(); c {
		case 'T', 't':
			p.advance()
			d, err := p.point()
			if err != nil {
				return t, err
			}
			t = t.Then(geom.Translate(d))
		case 'M', 'm':
			p.advance()
			if err := p.skipBlanks(); err != nil {
				return t, err
			}
			switch axis := p.peek(); axis {
			case 'X', 'x':
				p.advance()
				t = t.Then(geom.MakeTransform(geom.MX, geom.Point{}))
			case 'Y', 'y':
				p.advance()
				t = t.Then(geom.MakeTransform(geom.MXR180, geom.Point{}))
			default:
				return t, p.errf("expected X or Y after M")
			}
		case 'R', 'r':
			p.advance()
			d, err := p.point()
			if err != nil {
				return t, err
			}
			o, err := rotationFor(d)
			if err != nil {
				return t, p.errf("%v", err)
			}
			t = t.Then(geom.MakeTransform(o, geom.Point{}))
		default:
			return t, nil
		}
	}
}

// rotationFor maps a CIF rotation direction vector (the new direction
// of the positive x axis) to an orientation. Only the four Manhattan
// directions are representable in Riot.
func rotationFor(d geom.Point) (geom.Orient, error) {
	switch {
	case d.X > 0 && d.Y == 0:
		return geom.R0, nil
	case d.X == 0 && d.Y > 0:
		return geom.R90, nil
	case d.X < 0 && d.Y == 0:
		return geom.R180, nil
	case d.X == 0 && d.Y < 0:
		return geom.R270, nil
	}
	return geom.R0, fmt.Errorf("non-Manhattan rotation direction %v", d)
}

// countElement charges one element or symbol against MaxElements.
func (p *parser) countElement() error {
	p.elems++
	if p.elems > p.lim.MaxElements {
		return p.errf("more than %d elements", p.lim.MaxElements)
	}
	return nil
}

// file parses the whole CIF file.
func (p *parser) file() (*File, error) {
	f := &File{}
	var cur *Symbol // non-nil while inside DS..DF
	layer := geom.LayerNone

	addElement := func(e Element) error {
		if err := p.countElement(); err != nil {
			return err
		}
		if cur != nil {
			cur.Elements = append(cur.Elements, e)
		} else {
			f.TopLevel = append(f.TopLevel, e)
		}
		return nil
	}
	needLayer := func() error {
		if layer == geom.LayerNone {
			return p.errf("geometry before any L command")
		}
		return nil
	}

	for {
		if err := p.skipBlanks(); err != nil {
			return nil, err
		}
		if p.eof() {
			return nil, p.errf("missing E (end) command")
		}
		c := p.advance()
		switch {
		case c == ';': // empty command
			continue

		case c == 'P' || c == 'p':
			if err := needLayer(); err != nil {
				return nil, err
			}
			pts, err := p.path()
			if err != nil {
				return nil, err
			}
			if err := addElement(Polygon{Layer: layer, Points: pts}); err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'B' || c == 'b':
			if err := needLayer(); err != nil {
				return nil, err
			}
			length, err := p.integer()
			if err != nil {
				return nil, err
			}
			width, err := p.integer()
			if err != nil {
				return nil, err
			}
			center, err := p.point()
			if err != nil {
				return nil, err
			}
			dir := geom.Pt(1, 0)
			if more, err := p.peekInt(); err != nil {
				return nil, err
			} else if more {
				dir, err = p.point()
				if err != nil {
					return nil, err
				}
				if dir.X != 0 && dir.Y != 0 || dir == (geom.Point{}) {
					return nil, p.errf("non-Manhattan box direction %v", dir)
				}
			}
			if err := addElement(Box{Layer: layer, Length: length, Width: width, Center: center, Direction: dir}); err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'R' || c == 'r':
			if err := needLayer(); err != nil {
				return nil, err
			}
			diam, err := p.integer()
			if err != nil {
				return nil, err
			}
			center, err := p.point()
			if err != nil {
				return nil, err
			}
			if err := addElement(RoundFlash{Layer: layer, Diameter: diam, Center: center}); err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'W' || c == 'w':
			if err := needLayer(); err != nil {
				return nil, err
			}
			width, err := p.integer()
			if err != nil {
				return nil, err
			}
			pts, err := p.path()
			if err != nil {
				return nil, err
			}
			if err := addElement(Wire{Layer: layer, Width: width, Points: pts}); err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'L' || c == 'l':
			name, err := p.shortname()
			if err != nil {
				return nil, err
			}
			layer = geom.Layer(name)
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'D' || c == 'd':
			if err := p.skipBlanks(); err != nil {
				return nil, err
			}
			sub := p.advance()
			switch sub {
			case 'S', 's':
				if cur != nil {
					return nil, p.errf("nested DS (symbol %d still open)", cur.ID)
				}
				id, err := p.integer()
				if err != nil {
					return nil, err
				}
				a, b := 1, 1
				if more, err := p.peekInt(); err != nil {
					return nil, err
				} else if more {
					a, err = p.integer()
					if err != nil {
						return nil, err
					}
					b, err = p.integer()
					if err != nil {
						return nil, err
					}
					if b == 0 {
						return nil, p.errf("DS %d: zero scale denominator", id)
					}
				}
				if f.SymbolByID(id) != nil {
					return nil, p.errf("symbol %d redefined", id)
				}
				if err := p.countElement(); err != nil {
					return nil, err
				}
				cur = &Symbol{ID: id, A: a, B: b}
			case 'F', 'f':
				if cur == nil {
					return nil, p.errf("DF without matching DS")
				}
				f.Symbols = append(f.Symbols, cur)
				cur = nil
			case 'D', 'd':
				n, err := p.integer()
				if err != nil {
					return nil, err
				}
				kept := f.Symbols[:0]
				for _, s := range f.Symbols {
					if s.ID < n {
						kept = append(kept, s)
					}
				}
				f.Symbols = kept
			default:
				return nil, p.errf("unknown definition command D%c", sub)
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'C' || c == 'c':
			id, err := p.integer()
			if err != nil {
				return nil, err
			}
			tr, err := p.transformation()
			if err != nil {
				return nil, err
			}
			if err := addElement(Call{SymbolID: id, Transform: tr}); err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}

		case c == 'E' || c == 'e':
			if cur != nil {
				return nil, p.errf("E inside symbol %d (missing DF)", cur.ID)
			}
			return f, nil

		case c >= '0' && c <= '9':
			// user extension: collect full digit string
			digit := int(c - '0')
			for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
				if digit > (math.MaxInt-9)/10 {
					return nil, p.errf("user extension number overflow")
				}
				digit = digit*10 + int(p.advance()-'0')
			}
			text, err := p.restOfCommand()
			if err != nil {
				return nil, err
			}
			switch digit {
			case 9: // symbol name
				if cur == nil {
					if err := addElement(UserExt{Digit: 9, Text: text}); err != nil {
						return nil, err
					}
					continue
				}
				cur.Name = firstField(text)
			case 94: // Riot connector extension
				conn, err := parseConnectorExt(text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				if err := addElement(conn); err != nil {
					return nil, err
				}
			default:
				if err := addElement(UserExt{Digit: digit, Text: text}); err != nil {
					return nil, err
				}
			}

		default:
			return nil, p.errf("unknown command %q", string(c))
		}
	}
}

func firstField(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// parseConnectorExt parses "name x y [layer [width]]", the body of the
// 94 extension. Layer defaults to metal and width to zero (meaning "use
// the routing default") when omitted, matching old label-only files.
func parseConnectorExt(text string) (Connector, error) {
	fs := strings.Fields(text)
	if len(fs) < 3 {
		return Connector{}, fmt.Errorf("94 extension needs name x y, got %q", text)
	}
	var x, y int
	if _, err := fmt.Sscanf(fs[1], "%d", &x); err != nil {
		return Connector{}, fmt.Errorf("94 extension: bad x %q", fs[1])
	}
	if _, err := fmt.Sscanf(fs[2], "%d", &y); err != nil {
		return Connector{}, fmt.Errorf("94 extension: bad y %q", fs[2])
	}
	c := Connector{Name: fs[0], At: geom.Pt(x, y), Layer: geom.NM}
	if len(fs) >= 4 {
		c.Layer = geom.Layer(strings.ToUpper(fs[3]))
		if !c.Layer.Valid() {
			return Connector{}, fmt.Errorf("94 extension: bad layer %q", fs[3])
		}
	}
	if len(fs) >= 5 {
		if _, err := fmt.Sscanf(fs[4], "%d", &c.Width); err != nil || c.Width < 0 {
			return Connector{}, fmt.Errorf("94 extension: bad width %q", fs[4])
		}
	}
	return c, nil
}
