package cif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"riot/internal/geom"
)

// WriteTo emits f as CIF 2.0 text, streaming symbol by symbol —
// nothing buffers more than one bufio block, so a full-chip mask file
// never materializes in memory. Symbols are written in definition
// order, followed by any top-level elements and the E command. The
// output round-trips through Parse: parse(write(f)) yields a file with
// the same symbols, names, connectors and geometry. WriteTo implements
// io.WriterTo.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	ew := &errWriter{w: bw}
	ew.printf("(CIF 2.0 written by riot);\n")
	for _, s := range f.Symbols {
		writeSymbol(ew, s)
	}
	var layer geom.Layer
	for _, e := range f.TopLevel {
		writeElement(ew, e, &layer)
	}
	ew.printf("E\n")
	if ew.err != nil {
		return ew.n, ew.err
	}
	return ew.n, bw.Flush()
}

// Write emits f as CIF 2.0 text to w (see File.WriteTo).
func Write(w io.Writer, f *File) error {
	_, err := f.WriteTo(w)
	return err
}

// String renders the file as CIF text (a buffered WriteTo).
func String(f *File) string {
	var b strings.Builder
	_, _ = f.WriteTo(&b)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	var n int
	n, e.err = fmt.Fprintf(e.w, format, args...)
	e.n += int64(n)
}

func writeSymbol(w *errWriter, s *Symbol) {
	a, b := s.A, s.B
	if a == 0 || b == 0 {
		a, b = 1, 1
	}
	if a == 1 && b == 1 {
		w.printf("DS %d;\n", s.ID)
	} else {
		w.printf("DS %d %d %d;\n", s.ID, a, b)
	}
	if s.Name != "" {
		w.printf("9 %s;\n", s.Name)
	}
	var layer geom.Layer
	for _, e := range s.Elements {
		writeElement(w, e, &layer)
	}
	w.printf("DF;\n")
}

// writeElement emits one element, inserting an L command whenever the
// element's layer differs from the current one.
func writeElement(w *errWriter, e Element, layer *geom.Layer) {
	setLayer := func(l geom.Layer) {
		if l != *layer && l != geom.LayerNone {
			w.printf("L %s;\n", l)
			*layer = l
		}
	}
	switch v := e.(type) {
	case Box:
		setLayer(v.Layer)
		if v.Direction == geom.Pt(1, 0) || v.Direction == (geom.Point{}) {
			w.printf("B %d %d %d %d;\n", v.Length, v.Width, v.Center.X, v.Center.Y)
		} else {
			w.printf("B %d %d %d %d %d %d;\n", v.Length, v.Width, v.Center.X, v.Center.Y, v.Direction.X, v.Direction.Y)
		}
	case Polygon:
		setLayer(v.Layer)
		w.printf("P%s;\n", pathString(v.Points))
	case Wire:
		setLayer(v.Layer)
		w.printf("W %d%s;\n", v.Width, pathString(v.Points))
	case RoundFlash:
		setLayer(v.Layer)
		w.printf("R %d %d %d;\n", v.Diameter, v.Center.X, v.Center.Y)
	case Call:
		w.printf("C %d%s;\n", v.SymbolID, transformString(v.Transform))
	case Connector:
		w.printf("94 %s %d %d %s %d;\n", v.Name, v.At.X, v.At.Y, v.Layer, v.Width)
	case UserExt:
		if v.Text == "" {
			w.printf("%d;\n", v.Digit)
		} else {
			w.printf("%d %s;\n", v.Digit, v.Text)
		}
	}
}

func pathString(pts []geom.Point) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, " %d %d", p.X, p.Y)
	}
	return b.String()
}

// transformString renders a geom.Transform as a CIF transformation
// list: the orientation (as mirror + rotation primitives) followed by
// the translation.
func transformString(t geom.Transform) string {
	var b strings.Builder
	switch t.O {
	case geom.R0:
	case geom.R90:
		b.WriteString(" R 0 1")
	case geom.R180:
		b.WriteString(" R -1 0")
	case geom.R270:
		b.WriteString(" R 0 -1")
	case geom.MX:
		b.WriteString(" M X")
	case geom.MXR90:
		b.WriteString(" M X R 0 1")
	case geom.MXR180:
		b.WriteString(" M X R -1 0")
	case geom.MXR270:
		b.WriteString(" M X R 0 -1")
	}
	if t.D != (geom.Point{}) || b.Len() == 0 {
		fmt.Fprintf(&b, " T %d %d", t.D.X, t.D.Y)
	}
	return b.String()
}
