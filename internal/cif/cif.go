// Package cif reads and writes the Caltech Intermediate Form (CIF 2.0),
// the geometrical interchange format described by Sproull & Lyon in
// Mead & Conway, "Introduction to VLSI Systems" (1980). CIF is how Riot
// receives leaf cells from Bristle Blocks, LAP, the PLA generators and
// the cell libraries, and how finished chips are handed to mask
// generation.
//
// The package implements the full command set — polygons (P), boxes (B),
// round flashes (R), wires (W), layer selection (L), symbol definition
// (DS/DF), symbol deletion (DD), calls with transformations (C), user
// extensions (digit commands) and nested comments — plus the user
// extension Riot added "to indicate connector locations so that Riot's
// logical connection operations could be performed on CIF cells":
//
//	94 name x y layer width;
//
// names a connector point inside the enclosing symbol. The conventional
// extension "9 name;" names the enclosing symbol itself.
//
// Distances in CIF are integers in centimicrons (0.01 um); symbol
// coordinates are multiplied by a/b from the DS command when the symbol
// is instantiated. This package resolves a/b scaling when converting a
// symbol's contents, so clients always see centimicrons.
package cif

import (
	"fmt"
	"sort"

	"riot/internal/geom"
)

// Element is one geometric or annotation item inside a symbol (or at
// the top level of a file).
type Element interface {
	// BBox returns the element's bounding box in local coordinates.
	// Calls are resolved against the file the element came from; an
	// element with no spatial extent returns the zero Rect.
	isElement()
}

// Box is the CIF B command: a rectangle given by length (x extent),
// width (y extent), center, and an optional direction for rotated
// boxes. Riot only deals in Manhattan geometry, so Direction is
// restricted to the four axis directions.
type Box struct {
	Layer     geom.Layer
	Length    int        // extent along Direction
	Width     int        // extent perpendicular to Direction
	Center    geom.Point // center of the box
	Direction geom.Point // (1,0) if omitted in the file
}

func (Box) isElement() {}

// Rect returns the box as an axis-aligned rectangle. Boxes whose
// direction is vertical have length and width exchanged.
func (b Box) Rect() geom.Rect {
	l, w := b.Length, b.Width
	if b.Direction.X == 0 && b.Direction.Y != 0 {
		l, w = w, l
	}
	return geom.R(b.Center.X-l/2, b.Center.Y-w/2, b.Center.X+l-l/2, b.Center.Y+w-w/2)
}

// Polygon is the CIF P command: a filled polygon given by its vertex
// path.
type Polygon struct {
	Layer  geom.Layer
	Points []geom.Point
}

func (Polygon) isElement() {}

// Wire is the CIF W command: a path of the given width with
// semicircular (conceptually) end caps. Riot treats wires as the
// fundamental connection geometry.
type Wire struct {
	Layer  geom.Layer
	Width  int
	Points []geom.Point
}

func (Wire) isElement() {}

// RoundFlash is the CIF R command: a circle of the given diameter.
type RoundFlash struct {
	Layer    geom.Layer
	Diameter int
	Center   geom.Point
}

func (RoundFlash) isElement() {}

// Call is the CIF C command: an instance of a symbol under a
// transformation. The CIF transformation list (T/M X/M Y/R) is resolved
// into a single geom.Transform at parse time; only Manhattan rotations
// are accepted.
type Call struct {
	SymbolID  int
	Transform geom.Transform
}

func (Call) isElement() {}

// UserExt is any digit-command the parser does not interpret itself
// (everything except extensions 9 and 94). The text excludes the
// leading digit and the trailing semicolon.
type UserExt struct {
	Digit int
	Text  string
}

func (UserExt) isElement() {}

// Connector is Riot's CIF user extension 94: a named connection point
// with a layer and the width of the wire that makes the connection
// inside the cell.
type Connector struct {
	Name  string
	At    geom.Point
	Layer geom.Layer
	Width int
}

func (Connector) isElement() {}

// Symbol is a CIF symbol definition (DS ... DF). A and B are the
// numerator and denominator applied to all distances inside the symbol.
type Symbol struct {
	ID       int
	A, B     int    // distance scale factors (default 1/1)
	Name     string // from the "9 name;" extension, may be empty
	Elements []Element
}

// Connectors returns the symbol's connector extensions in file order.
func (s *Symbol) Connectors() []Connector {
	var cs []Connector
	for _, e := range s.Elements {
		if c, ok := e.(Connector); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

// File is a parsed CIF file: a set of symbol definitions plus any
// top-level (unsymboled) elements appearing before the End command.
type File struct {
	Symbols  []*Symbol
	TopLevel []Element
}

// SymbolByID returns the symbol with the given definition number, or
// nil if the file does not define it.
func (f *File) SymbolByID(id int) *Symbol {
	for _, s := range f.Symbols {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// SymbolByName returns the symbol carrying the "9 name;" extension with
// the given name, or nil.
func (f *File) SymbolByName(name string) *Symbol {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SortedSymbolIDs returns the defined symbol numbers in increasing
// order (useful for deterministic output and tests).
func (f *File) SortedSymbolIDs() []int {
	ids := make([]int, 0, len(f.Symbols))
	for _, s := range f.Symbols {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	return ids
}

// scaleElement returns e with all distances multiplied by a/b, the DS
// scale resolution. Scaling happens element-by-element so the rest of
// the system never sees unresolved scale factors.
func scaleElement(e Element, a, b int) Element {
	if a == b {
		return e
	}
	sp := func(p geom.Point) geom.Point {
		return geom.Pt(p.X*a/b, p.Y*a/b)
	}
	si := func(v int) int { return v * a / b }
	switch v := e.(type) {
	case Box:
		v.Length, v.Width, v.Center = si(v.Length), si(v.Width), sp(v.Center)
		return v
	case Polygon:
		pts := make([]geom.Point, len(v.Points))
		for i, p := range v.Points {
			pts[i] = sp(p)
		}
		v.Points = pts
		return v
	case Wire:
		pts := make([]geom.Point, len(v.Points))
		for i, p := range v.Points {
			pts[i] = sp(p)
		}
		v.Width, v.Points = si(v.Width), pts
		return v
	case RoundFlash:
		v.Diameter, v.Center = si(v.Diameter), sp(v.Center)
		return v
	case Call:
		v.Transform.D = sp(v.Transform.D)
		return v
	case Connector:
		v.At, v.Width = sp(v.At), si(v.Width)
		return v
	default:
		return e
	}
}

// ResolveScale returns the symbol's elements with the a/b distance
// scale applied, so all coordinates are in centimicrons.
func (s *Symbol) ResolveScale() []Element {
	if s.A == s.B || s.A == 0 || s.B == 0 {
		return s.Elements
	}
	out := make([]Element, len(s.Elements))
	for i, e := range s.Elements {
		out[i] = scaleElement(e, s.A, s.B)
	}
	return out
}

// elementBBox computes a single element's bounding box; calls recurse
// through the file. seen guards against call cycles.
func elementBBox(f *File, e Element, seen map[int]bool) (geom.Rect, error) {
	switch v := e.(type) {
	case Box:
		return v.Rect(), nil
	case Polygon:
		var r geom.Rect
		for i, p := range v.Points {
			if i == 0 {
				r = geom.Rect{Min: p, Max: p}
			} else {
				r = r.UnionPoint(p)
			}
		}
		return r, nil
	case Wire:
		var r geom.Rect
		h := v.Width / 2
		for i, p := range v.Points {
			pr := geom.R(p.X-h, p.Y-h, p.X+v.Width-h, p.Y+v.Width-h)
			if i == 0 {
				r = pr
			} else {
				r = r.Union(pr)
			}
		}
		return r, nil
	case RoundFlash:
		h := v.Diameter / 2
		return geom.R(v.Center.X-h, v.Center.Y-h, v.Center.X+v.Diameter-h, v.Center.Y+v.Diameter-h), nil
	case Call:
		sym := f.SymbolByID(v.SymbolID)
		if sym == nil {
			return geom.Rect{}, fmt.Errorf("cif: call of undefined symbol %d", v.SymbolID)
		}
		if seen[v.SymbolID] {
			return geom.Rect{}, fmt.Errorf("cif: recursive call of symbol %d", v.SymbolID)
		}
		seen[v.SymbolID] = true
		inner, err := symbolBBox(f, sym, seen)
		delete(seen, v.SymbolID)
		if err != nil {
			return geom.Rect{}, err
		}
		return v.Transform.ApplyRect(inner), nil
	case Connector:
		return geom.Rect{Min: v.At, Max: v.At}, nil
	default: // UserExt
		return geom.Rect{}, nil
	}
}

func symbolBBox(f *File, s *Symbol, seen map[int]bool) (geom.Rect, error) {
	var r geom.Rect
	first := true
	for _, e := range s.ResolveScale() {
		if _, isExt := e.(UserExt); isExt {
			continue
		}
		eb, err := elementBBox(f, e, seen)
		if err != nil {
			return geom.Rect{}, err
		}
		if first {
			r = eb
			first = false
		} else {
			r = r.Union(eb)
		}
	}
	return r, nil
}

// SymbolBBox computes the bounding box of a symbol, recursing through
// calls. It returns an error for calls of undefined symbols or
// recursive symbol structures.
func (f *File) SymbolBBox(id int) (geom.Rect, error) {
	s := f.SymbolByID(id)
	if s == nil {
		return geom.Rect{}, fmt.Errorf("cif: undefined symbol %d", id)
	}
	return symbolBBox(f, s, map[int]bool{id: true})
}
