package cif

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"riot/internal/geom"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseBox(t *testing.T) {
	f := mustParse(t, "DS 1; L NM; B 20 10 5 5; DF; E")
	s := f.SymbolByID(1)
	if s == nil {
		t.Fatal("symbol 1 missing")
	}
	if len(s.Elements) != 1 {
		t.Fatalf("elements = %d", len(s.Elements))
	}
	b, ok := s.Elements[0].(Box)
	if !ok {
		t.Fatalf("element is %T", s.Elements[0])
	}
	if b.Layer != geom.NM || b.Length != 20 || b.Width != 10 || b.Center != geom.Pt(5, 5) {
		t.Errorf("box = %+v", b)
	}
	if b.Rect() != geom.R(-5, 0, 15, 10) {
		t.Errorf("Rect = %v", b.Rect())
	}
}

func TestParseBoxVerticalDirection(t *testing.T) {
	f := mustParse(t, "DS 1; L NP; B 20 10 0 0 0 1; DF; E")
	b := f.SymbolByID(1).Elements[0].(Box)
	// direction (0,1): length runs vertically
	if b.Rect() != geom.R(-5, -10, 5, 10) {
		t.Errorf("Rect = %v", b.Rect())
	}
}

func TestParseWirePolygonFlash(t *testing.T) {
	f := mustParse(t, `
DS 2;
L ND; P 0 0 10 0 10 10;
L NM; W 4 0 0 0 20 15 20;
L NC; R 6 3 3;
DF; E`)
	s := f.SymbolByID(2)
	if len(s.Elements) != 3 {
		t.Fatalf("elements = %d", len(s.Elements))
	}
	poly := s.Elements[0].(Polygon)
	if poly.Layer != geom.ND || len(poly.Points) != 3 {
		t.Errorf("polygon = %+v", poly)
	}
	wire := s.Elements[1].(Wire)
	if wire.Width != 4 || len(wire.Points) != 3 || wire.Points[2] != geom.Pt(15, 20) {
		t.Errorf("wire = %+v", wire)
	}
	rf := s.Elements[2].(RoundFlash)
	if rf.Diameter != 6 || rf.Center != geom.Pt(3, 3) {
		t.Errorf("flash = %+v", rf)
	}
}

func TestParseNegativeAndSeparators(t *testing.T) {
	// CIF allows weird separators; commas, letters and newlines between
	// integers are all blanks.
	f := mustParse(t, "DS 1; L NM; B 4, 4 xy: -10 - 20; DF; E")
	b := f.SymbolByID(1).Elements[0].(Box)
	if b.Center != geom.Pt(-10, -20) {
		t.Errorf("center = %v", b.Center)
	}
}

func TestParseComments(t *testing.T) {
	f := mustParse(t, "(file header (nested));DS 1; L NM; (mid) B 2 2 0 0; DF; E")
	if len(f.SymbolByID(1).Elements) != 1 {
		t.Error("comment disturbed parsing")
	}
}

func TestParseCallTransforms(t *testing.T) {
	cases := []struct {
		src  string
		want geom.Transform
	}{
		{"C 1;", geom.Identity},
		{"C 1 T 10 20;", geom.MakeTransform(geom.R0, geom.Pt(10, 20))},
		{"C 1 M X;", geom.MakeTransform(geom.MX, geom.Pt(0, 0))},
		{"C 1 M Y;", geom.MakeTransform(geom.MXR180, geom.Pt(0, 0))},
		{"C 1 R 0 1;", geom.MakeTransform(geom.R90, geom.Pt(0, 0))},
		{"C 1 R 0 -5;", geom.MakeTransform(geom.R270, geom.Pt(0, 0))},
		// order matters: translate then rotate vs rotate then translate
		{"C 1 T 10 0 R 0 1;", geom.MakeTransform(geom.R90, geom.Pt(0, 10))},
		{"C 1 R 0 1 T 10 0;", geom.MakeTransform(geom.R90, geom.Pt(10, 0))},
	}
	for _, c := range cases {
		f := mustParse(t, "DS 1; L NM; B 2 2 0 0; DF; DS 2; "+c.src+" DF; E")
		call := f.SymbolByID(2).Elements[0].(Call)
		if call.Transform != c.want {
			t.Errorf("%s => %v, want %v", c.src, call.Transform, c.want)
		}
	}
}

func TestParseRejectsNonManhattanRotation(t *testing.T) {
	if _, err := ParseString("DS 2; C 1 R 1 1; DF; E"); err == nil {
		t.Error("accepted 45-degree rotation")
	}
}

func TestParseSymbolName(t *testing.T) {
	f := mustParse(t, "DS 5; 9 INVPAD; L NM; B 2 2 0 0; DF; E")
	if got := f.SymbolByID(5).Name; got != "INVPAD" {
		t.Errorf("name = %q", got)
	}
	if f.SymbolByName("INVPAD") == nil {
		t.Error("SymbolByName failed")
	}
	if f.SymbolByName("NOPE") != nil {
		t.Error("SymbolByName found ghost")
	}
}

func TestParseConnectorExtension(t *testing.T) {
	f := mustParse(t, "DS 1; L NM; B 8 8 4 4; 94 VDD 0 4 NM 4; 94 OUT 8 4 NP 2; 94 LBL 4 8; DF; E")
	cs := f.SymbolByID(1).Connectors()
	if len(cs) != 3 {
		t.Fatalf("connectors = %d", len(cs))
	}
	if cs[0] != (Connector{Name: "VDD", At: geom.Pt(0, 4), Layer: geom.NM, Width: 4}) {
		t.Errorf("VDD = %+v", cs[0])
	}
	if cs[1].Layer != geom.NP || cs[1].Width != 2 {
		t.Errorf("OUT = %+v", cs[1])
	}
	// label-form extension defaults to metal, width 0
	if cs[2].Layer != geom.NM || cs[2].Width != 0 {
		t.Errorf("LBL = %+v", cs[2])
	}
}

func TestParseConnectorErrors(t *testing.T) {
	for _, src := range []string{
		"DS 1; 94 X; DF; E",           // too few fields
		"DS 1; 94 X 1 z; DF; E",       // bad y
		"DS 1; 94 X 1 2 TOOLONG; DF; E", // bad layer
		"DS 1; 94 X 1 2 NM -3; DF; E", // bad width
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseUserExtension(t *testing.T) {
	f := mustParse(t, "DS 1; 42 anything at all here; DF; E")
	e := f.SymbolByID(1).Elements[0].(UserExt)
	if e.Digit != 42 || e.Text != "anything at all here" {
		t.Errorf("ext = %+v", e)
	}
}

func TestParseScaledSymbol(t *testing.T) {
	// DS with a/b = 25/1: lambda units scaled to centimicrons... here 2x/1.
	f := mustParse(t, "DS 1 2 1; L NM; B 4 4 10 10; W 2 0 0 0 8; 94 P 10 12 NM 2; DF; E")
	s := f.SymbolByID(1)
	els := s.ResolveScale()
	b := els[0].(Box)
	if b.Length != 8 || b.Center != geom.Pt(20, 20) {
		t.Errorf("scaled box = %+v", b)
	}
	w := els[1].(Wire)
	if w.Width != 4 || w.Points[1] != geom.Pt(0, 16) {
		t.Errorf("scaled wire = %+v", w)
	}
	c := els[2].(Connector)
	if c.At != geom.Pt(20, 24) || c.Width != 4 {
		t.Errorf("scaled connector = %+v", c)
	}
	// Elements themselves are unmodified.
	if s.Elements[0].(Box).Length != 4 {
		t.Error("ResolveScale mutated the symbol")
	}
}

func TestParseDD(t *testing.T) {
	f := mustParse(t, "DS 1; L NM; B 2 2 0 0; DF; DS 5; L NM; B 2 2 0 0; DF; DD 5; E")
	if f.SymbolByID(5) != nil {
		t.Error("DD 5 did not delete symbol 5")
	}
	if f.SymbolByID(1) == nil {
		t.Error("DD 5 deleted symbol 1")
	}
}

func TestParseStructuralErrors(t *testing.T) {
	cases := []string{
		"DS 1; L NM; B 2 2 0 0; DF",        // missing E
		"DS 1; DS 2; DF; DF; E",            // nested DS
		"DF; E",                            // DF without DS
		"DS 1; E",                          // E inside symbol
		"DS 1; L NM; B 2 2 0; DF; E",       // short box
		"DS 1; B 2 2 0 0; DF; E",           // geometry before L
		"DS 1; L NM; B 2 2 0 0 1 1; DF; E", // diagonal box
		"DS 1; L NM; Q; DF; E",             // unknown command
		"DS 1; L NM; B 2 2 0 0; DF; DS 1; DF; E", // redefinition
		"(unterminated comment",
		"DS 1 1 0; DF; E", // zero denominator
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseLowercase(t *testing.T) {
	f := mustParse(t, "ds 1; l nm; b 4 4 2 2; df; e")
	if f.SymbolByID(1) == nil {
		t.Fatal("lowercase commands rejected")
	}
	if f.SymbolByID(1).Elements[0].(Box).Layer != geom.NM {
		t.Error("lowercase layer not upper-cased")
	}
}

func TestSymbolBBox(t *testing.T) {
	f := mustParse(t, `
DS 1; L NM; B 10 10 5 5; DF;
DS 2; C 1 T 100 0; C 1 R 0 1 T -10 0; DF;
E`)
	r, err := f.SymbolBBox(1)
	if err != nil || r != geom.R(0, 0, 10, 10) {
		t.Errorf("bbox(1) = %v, %v", r, err)
	}
	r, err = f.SymbolBBox(2)
	if err != nil {
		t.Fatal(err)
	}
	// call 1: (100..110, 0..10); call 2: rotate90 of (0,0,10,10) = (-10,0,0,10) then T-10: (-20..-10, 0..10)
	if r != geom.R(-20, 0, 110, 10) {
		t.Errorf("bbox(2) = %v", r)
	}
}

func TestSymbolBBoxErrors(t *testing.T) {
	f := mustParse(t, "DS 1; C 2; DF; DS 2; C 1; DF; E")
	if _, err := f.SymbolBBox(1); err == nil {
		t.Error("recursive bbox accepted")
	}
	f2 := mustParse(t, "DS 1; C 99; DF; E")
	if _, err := f2.SymbolBBox(1); err == nil {
		t.Error("undefined call accepted")
	}
	if _, err := f2.SymbolBBox(42); err == nil {
		t.Error("bbox of undefined symbol accepted")
	}
}

func TestWireBBoxIncludesWidth(t *testing.T) {
	f := mustParse(t, "DS 1; L NM; W 4 0 0 10 0; DF; E")
	r, err := f.SymbolBBox(1)
	if err != nil {
		t.Fatal(err)
	}
	if r != geom.R(-2, -2, 12, 2) {
		t.Errorf("wire bbox = %v", r)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := `
DS 1; 9 GATE;
L NM; B 20 10 5 5;
L NP; W 2 0 0 0 10 8 10;
P 0 0 4 0 4 4;
L NC; R 4 2 2;
94 IN 0 5 NP 2;
94 OUT 20 5 NM 4;
42 custom data;
DF;
DS 2; 9 TOP;
C 1 T 100 50;
C 1 M X R 0 1 T -3 -4;
DF;
E`
	f1 := mustParse(t, src)
	text := String(f1)
	f2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Errorf("round trip mismatch:\nfirst:  %#v\nsecond: %#v\ntext:\n%s", f1, f2, text)
	}
}

func TestWriteRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layers := []geom.Layer{geom.NM, geom.NP, geom.ND, geom.NC}
	for trial := 0; trial < 50; trial++ {
		f := &File{}
		nsym := 1 + rng.Intn(4)
		for i := 0; i < nsym; i++ {
			s := &Symbol{ID: i + 1, A: 1, B: 1}
			nel := 1 + rng.Intn(6)
			for j := 0; j < nel; j++ {
				l := layers[rng.Intn(len(layers))]
				switch rng.Intn(5) {
				case 0:
					s.Elements = append(s.Elements, Box{Layer: l, Length: 1 + rng.Intn(40), Width: 1 + rng.Intn(40), Center: geom.Pt(rng.Intn(200)-100, rng.Intn(200)-100), Direction: geom.Pt(1, 0)})
				case 1:
					pts := make([]geom.Point, 3+rng.Intn(3))
					for k := range pts {
						pts[k] = geom.Pt(rng.Intn(100), rng.Intn(100))
					}
					s.Elements = append(s.Elements, Polygon{Layer: l, Points: pts})
				case 2:
					pts := make([]geom.Point, 2+rng.Intn(3))
					for k := range pts {
						pts[k] = geom.Pt(rng.Intn(100), rng.Intn(100))
					}
					s.Elements = append(s.Elements, Wire{Layer: l, Width: 1 + rng.Intn(8), Points: pts})
				case 3:
					s.Elements = append(s.Elements, Connector{Name: "P" + string(rune('A'+j)), At: geom.Pt(rng.Intn(100), rng.Intn(100)), Layer: geom.NM, Width: rng.Intn(6)})
				case 4:
					if i > 0 {
						s.Elements = append(s.Elements, Call{SymbolID: 1 + rng.Intn(i), Transform: geom.MakeTransform(geom.Orient(rng.Intn(8)), geom.Pt(rng.Intn(100)-50, rng.Intn(100)-50))})
					} else {
						s.Elements = append(s.Elements, UserExt{Digit: 50, Text: "x"})
					}
				}
			}
			f.Symbols = append(f.Symbols, s)
		}
		text := String(f)
		f2, err := ParseString(text)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, text)
		}
		if !reflect.DeepEqual(f, f2) {
			t.Fatalf("trial %d: round trip mismatch\n%s", trial, text)
		}
	}
}

func TestWriteTopLevel(t *testing.T) {
	f := &File{
		Symbols:  []*Symbol{{ID: 1, A: 1, B: 1, Elements: []Element{Box{Layer: geom.NM, Length: 2, Width: 2, Center: geom.Pt(1, 1), Direction: geom.Pt(1, 0)}}}},
		TopLevel: []Element{Call{SymbolID: 1, Transform: geom.Translate(geom.Pt(5, 5))}},
	}
	text := String(f)
	if !strings.Contains(text, "C 1 T 5 5;") {
		t.Errorf("missing top-level call:\n%s", text)
	}
	f2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.TopLevel) != 1 {
		t.Errorf("top level lost: %+v", f2.TopLevel)
	}
}
