package cif

import (
	"errors"
	"strings"
	"testing"
)

// TestParseLimits pins each Limits bound: input just inside parses,
// input just past fails with a positioned error naming the bound.
func TestParseLimits(t *testing.T) {
	lim := Limits{MaxElements: 4, MaxPathPoints: 3, MaxUserExtBytes: 8, MaxCommentDepth: 3}
	cases := []struct {
		name string
		src  string
		ok   bool
		want string // substring of the error when !ok
	}{
		{name: "elements at cap", src: "DS 1; L NM; B 2 2 0 0; B 2 2 9 9; R 2 4 4; DF; E", ok: true},
		{name: "elements past cap", src: "DS 1; L NM; B 2 2 0 0; B 2 2 9 9; R 2 4 4; R 2 8 8; DF; E",
			want: "more than 4 elements"},
		{name: "path at cap", src: "DS 1; L NM; P 0 0 4 0 4 4; DF; E", ok: true},
		{name: "path past cap", src: "DS 1; L NM; P 0 0 4 0 4 4 0 4; DF; E",
			want: "longer than 3 points"},
		// the extension body includes the separator after the number
		{name: "user ext at cap", src: "DS 1; 42 1234567; DF; E", ok: true},
		{name: "user ext past cap", src: "DS 1; 42 12345678; DF; E",
			want: "longer than 8 bytes"},
		{name: "comments at cap", src: "(((ok))) DS 1; L NM; B 2 2 0 0; DF; E", ok: true},
		{name: "comments past cap", src: "((((deep)))) E", want: "nested deeper than 3"},
		{name: "giant integer", src: "DS 99999999999999999999; DF; E", want: "integer overflow"},
		{name: "giant ext number", src: strings.Repeat("9", 40) + " x; E", want: "overflow"},
		{name: "long short name", src: "DS 1; L ABCDE; DF; E", want: "exceeds four characters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLimits(strings.NewReader(tc.src), lim)
			if tc.ok {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseErrorShape pins the structured error: *ParseError with the
// 1-based line of the failure, formatted in the historical style.
func TestParseErrorShape(t *testing.T) {
	_, err := ParseString("DS 1;\nL NM;\nB 2 2 0 0\nQ; DF; E")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("line = %d, want 4 (the Q after the unterminated box)", pe.Line)
	}
	if !strings.HasPrefix(err.Error(), "cif: line 4: ") {
		t.Errorf("error format = %q", err.Error())
	}
}

// TestParseStreams pins that Parse consumes a reader incrementally:
// an erroring reader surfaces as a read error, not a verdict.
func TestParseStreams(t *testing.T) {
	_, err := Parse(failingReader{})
	if err == nil || !strings.Contains(err.Error(), "read error") {
		t.Fatalf("reader failure reported as %v", err)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("disk on fire") }
