package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanNesting pins the Begin/End stack discipline: Begin nests
// under the innermost open span, End pops, Child attaches without
// touching the stack.
func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("verify")
	a := tr.Begin("flatten")
	sh := a.Child("shard x")
	sh.End()
	a.End()
	b := tr.Begin("extract")
	b.End()
	tr.Event(EventDecline, "poison")
	root.End()
	after := tr.Begin("second")
	after.End()

	roots := tr.Roots()
	if len(roots) != 2 || roots[0].Name() != "verify" || roots[1].Name() != "second" {
		t.Fatalf("roots = %v", names(roots))
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "flatten" || kids[1].Name() != "extract" {
		t.Fatalf("children of verify = %v", names(kids))
	}
	if got := kids[0].Children(); len(got) != 1 || got[0].Name() != "shard x" {
		t.Fatalf("children of flatten = %v", names(got))
	}
	// the decline event fired while only "verify" was open
	evs := roots[0].Events()
	if len(evs) != 1 || evs[0].Kind != EventDecline || evs[0].Detail != "poison" {
		t.Fatalf("verify events = %v", evs)
	}
	if roots[0].Find("shard x") == nil {
		t.Fatal("Find failed to locate the shard span")
	}
}

// TestEndPopsDanglingChildren pins the robustness rule: ending a span
// whose descendants missed their End still unwinds the stack to it.
func TestEndPopsDanglingChildren(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("verify")
	tr.Begin("inner") // never ended
	root.End()
	next := tr.Begin("next")
	next.End()
	roots := tr.Roots()
	if len(roots) != 2 || roots[1].Name() != "next" {
		t.Fatalf("roots = %v (dangling inner span kept the stack dirty)", names(roots))
	}
}

// TestDisabledTraceAllocates pins the disabled trace's hot-path cost:
// every call on a nil trace/span must allocate nothing.
func TestDisabledTraceAllocates(t *testing.T) {
	var tr *Trace
	n := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("verify")
		c := sp.Child("shard")
		c.Note("k", "v")
		c.End()
		sp.Event(EventQuarantine, "q")
		tr.Event(EventDecline, "d")
		sp.End()
		if tr.Enabled() {
			t.Fatal("nil trace claims enabled")
		}
	})
	if n != 0 {
		t.Fatalf("disabled trace allocates %.1f objects per op, want 0", n)
	}
}

// TestChildConcurrent exercises the concurrent fan-out attachment
// under the race detector.
func TestChildConcurrent(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("flatten")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.Child("shard")
				sp.Event(EventLog, "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Roots()[0].Children()); got != 400 {
		t.Fatalf("got %d children, want 400", got)
	}
}

// TestWriteChrome pins that the export is valid JSON with the expected
// top span and that overlapping children get distinct lanes.
func TestWriteChrome(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("verify")
	root.Note("cell", "CHIP")
	a := root.Child("shard a")
	b := root.Child("shard b") // overlaps a: same parent, a still open
	a.End()
	b.End()
	tr.Event(EventCorrupt, "bad entry")
	root.End()

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	byName := map[string]int{}
	lanes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		lanes[ev.Name] = ev.Tid
	}
	if byName["verify"] != 1 || byName["shard a"] != 1 || byName["shard b"] != 1 || byName[EventCorrupt] != 1 {
		t.Fatalf("unexpected event set: %v", byName)
	}
	if lanes["shard a"] == lanes["shard b"] {
		t.Fatalf("overlapping siblings share lane %d", lanes["shard a"])
	}
	if doc.TraceEvents[0].Args["cell"] != "CHIP" {
		t.Fatalf("root span lost its note: %v", doc.TraceEvents[0].Args)
	}
}

// TestRegistrySnapshot pins section ordering, idempotent registration,
// nil-provider omission, and the two renderings.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	runs := 0
	r.Register("verify", func() []Item { return []Item{N("full", runs), N("cached", 0)} })
	r.Register("hier", func() []Item { return []Item{N("runs", 2), S("last_decline", "none")} })
	r.Register("castore", func() []Item { return nil }) // not attached
	r.Register("verify", func() []Item { return []Item{N("full", runs)} })

	runs = 3
	snap := r.Snapshot()
	if len(snap.Sections) != 2 || snap.Sections[0].Name != "verify" || snap.Sections[1].Name != "hier" {
		t.Fatalf("sections = %+v", snap.Sections)
	}
	if v, ok := snap.Get("verify", "full"); !ok || v != 3 {
		t.Fatalf("verify.full = %d,%v (provider not live)", v, ok)
	}
	wantText := "verify: full=3\nhier: runs=2 last_decline=none\n"
	if got := snap.Text(); got != wantText {
		t.Fatalf("Text:\n got %q\nwant %q", got, wantText)
	}
	wantJSON := `{"verify":{"full":3},"hier":{"runs":2,"last_decline":"none"}}`
	if got := string(snap.JSON()); got != wantJSON {
		t.Fatalf("JSON:\n got %s\nwant %s", got, wantJSON)
	}
	if !json.Valid(snap.JSON()) {
		t.Fatal("JSON output invalid")
	}
}

// TestTraceLogger pins that a trace-bound logger both records and
// forwards.
func TestTraceLogger(t *testing.T) {
	tr := NewTrace()
	var lines []string
	lg := tr.Logger(func(format string, args ...any) { lines = append(lines, format) })
	sp := tr.Begin("verify")
	lg("castore: %s corrupt", "x")
	sp.End()
	if len(lines) != 1 {
		t.Fatalf("forwarded %d lines, want 1", len(lines))
	}
	evs := tr.Roots()[0].Events()
	if len(evs) != 1 || evs[0].Kind != EventLog || evs[0].Detail != "castore: x corrupt" {
		t.Fatalf("events = %v", evs)
	}
}

func names(sps []*Span) []string {
	var out []string
	for _, sp := range sps {
		out = append(out, sp.Name())
	}
	return out
}
