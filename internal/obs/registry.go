package obs

import (
	"bytes"
	"strconv"
	"sync"
)

// Item is one counter (or string annotation) in a registry section.
// Str, when non-empty conventions aside, marks the item as a string
// value; Val is used otherwise.
type Item struct {
	Key string
	Val int64
	// Str, when set (IsStr), renders instead of Val — for the few
	// non-numeric facts a section reports (e.g. the last decline
	// condition).
	Str   string
	IsStr bool
}

// N is shorthand for a numeric item.
func N(key string, val int) Item { return Item{Key: key, Val: int64(val)} }

// S is shorthand for a string item.
func S(key, val string) Item { return Item{Key: key, Str: val, IsStr: true} }

// Registry holds named sections of live counter providers. Sections
// render in registration order; re-registering a name replaces its
// provider in place, so wiring is idempotent. A provider returning nil
// drops its section from snapshots (the convention for "not attached
// yet" — e.g. the persistent store before AttachCache).
type Registry struct {
	mu    sync.Mutex
	order []string
	provs map[string]func() []Item
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{provs: map[string]func() []Item{}} }

// Register adds (or replaces) a section's provider. The provider is
// called at Snapshot time, so it should read the live Stats struct it
// wraps.
func (r *Registry) Register(section string, fn func() []Item) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.provs[section]; !ok {
		r.order = append(r.order, section)
	}
	r.provs[section] = fn
}

// Snapshot pulls every section's current items. Sections whose
// provider returns nil are omitted; the rest keep registration order,
// so two snapshots of identically-wired registries are structurally
// identical.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}
	for _, name := range r.order {
		items := r.provs[name]()
		if items == nil {
			continue
		}
		snap.Sections = append(snap.Sections, Section{Name: name, Items: items})
	}
	return snap
}

// Section is one named group of items in a snapshot.
type Section struct {
	Name  string
	Items []Item
}

// Snapshot is one point-in-time pull of a registry: the same ordered
// numbers every stats surface renders.
type Snapshot struct {
	Sections []Section
}

// Section returns the named section, or nil.
func (s *Snapshot) Section(name string) *Section {
	for i := range s.Sections {
		if s.Sections[i].Name == name {
			return &s.Sections[i]
		}
	}
	return nil
}

// Get returns the named counter from the named section (0, false when
// absent or a string item).
func (s *Snapshot) Get(section, key string) (int64, bool) {
	sec := s.Section(section)
	if sec == nil {
		return 0, false
	}
	for _, it := range sec.Items {
		if it.Key == key && !it.IsStr {
			return it.Val, true
		}
	}
	return 0, false
}

// Text renders the snapshot as human-readable lines, one section per
// line: "section: key=value key=value ...". String values quote only
// when they contain spaces.
func (s *Snapshot) Text() string {
	var b bytes.Buffer
	for _, sec := range s.Sections {
		b.WriteString(sec.Name)
		b.WriteByte(':')
		for _, it := range sec.Items {
			b.WriteByte(' ')
			b.WriteString(it.Key)
			b.WriteByte('=')
			if it.IsStr {
				if needsQuote(it.Str) {
					b.WriteString(strconv.Quote(it.Str))
				} else {
					b.WriteString(it.Str)
				}
			} else {
				b.WriteString(strconv.FormatInt(it.Val, 10))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '"' || s[i] < 0x20 {
			return true
		}
	}
	return false
}

// JSON renders the snapshot as a single machine-readable object with
// deterministic field ordering (sections in registration order, keys
// in provider order): {"section":{"key":0,...},...}. The bytes end
// without a newline.
func (s *Snapshot) JSON() []byte {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, sec := range s.Sections {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(sec.Name))
		b.WriteString(":{")
		for j, it := range sec.Items {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(it.Key))
			b.WriteByte(':')
			if it.IsStr {
				b.WriteString(strconv.Quote(it.Str))
			} else {
				b.WriteString(strconv.FormatInt(it.Val, 10))
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.Bytes()
}
