package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// WriteChrome writes the trace in the Chrome trace-event JSON format
// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
// Spans become complete ("X") events; instant events become "i"
// events; span notes become event args. All events share pid 1; the
// tid is a display lane assigned so that overlapping sibling spans
// (concurrent shard fan-outs) land on separate rows while sequential
// nesting stays on its parent's row.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	var emit func(sp *Span, lane int, nextLane *int)
	emitEvent := func(ev Event, lane int) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(ev.Kind))
		bw.WriteString(`,"ph":"i","s":"t","ts":`)
		bw.WriteString(strconv.FormatInt(us(ev.At), 10))
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(lane))
		bw.WriteString(`,"args":{"detail":`)
		bw.WriteString(strconv.Quote(ev.Detail))
		bw.WriteString(`}}`)
	}
	emit = func(sp *Span, lane int, nextLane *int) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(sp.Name()))
		bw.WriteString(`,"ph":"X","ts":`)
		bw.WriteString(strconv.FormatInt(us(sp.Start()), 10))
		bw.WriteString(`,"dur":`)
		bw.WriteString(strconv.FormatInt(us(sp.Dur()), 10))
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(lane))
		bw.WriteString(`,"args":{`)
		for i, n := range sp.Notes() {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(n.Key))
			bw.WriteByte(':')
			bw.WriteString(strconv.Quote(n.Value))
		}
		bw.WriteString(`}}`)
		for _, ev := range sp.Events() {
			emitEvent(ev, lane)
		}
		// children that overlap an already-placed sibling move to a
		// fresh lane; sequential children stay on the parent's lane
		laneEnd := map[int]time.Duration{}
		for _, c := range sp.Children() {
			cl := lane
			if end, ok := laneEnd[cl]; ok && c.Start() < end {
				*nextLane++
				cl = *nextLane
			}
			if e := c.Start() + c.Dur(); e > laneEnd[cl] {
				laneEnd[cl] = e
			}
			emit(c, cl, nextLane)
		}
	}
	nextLane := 0
	for _, sp := range t.Roots() {
		emit(sp, 0, &nextLane)
	}
	for _, ev := range t.RootEvents() {
		emitEvent(ev, 0)
	}
	bw.WriteString(`]}`)
	return bw.Flush()
}

func us(d time.Duration) int64 { return int64(d / time.Microsecond) }
