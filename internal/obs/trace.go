// Package obs is the verification pipeline's observability substrate:
// a span/metrics layer every engine threads its accounting through so
// each run can be traced, every surface (shell STATS, riot -stats,
// Session.Snapshot) reports the same numbers, and library consumers
// can capture or silence the pipeline's diagnostics.
//
// The package has three pieces:
//
//   - Trace/Span: a nested timing tree of one or more verification
//     runs, plus typed instant Events (declines, quarantines, cache
//     corruption). A nil *Trace is the disabled state and costs
//     near-zero on the hot path: every method is nil-safe, and call
//     sites with dynamic names or formatted details guard on
//     Enabled() so the disabled path neither formats nor allocates
//     (pinned by TestDisabledTraceAllocates and the hier scale
//     benchmark).
//   - Registry/Snapshot: named sections of ordered counters pulled
//     from the engines' live Stats structs on demand. One Registry
//     per session; every stats surface renders the same Snapshot, in
//     the same order, as human text or machine JSON.
//   - Logger: the injectable destination for the pipeline's
//     noteworthy-event lines (castore quarantines, hier declines).
//     The default is stderr; consumers set Discard to silence or a
//     capture func to test.
//
// Concurrency: Begin/End maintain a current-span stack and assume the
// pipeline's single-threaded call discipline (one Verify at a time);
// parallel sub-work (flatten's array fan-out, per-layer DRC) must
// attach through Span.Child, which is mutex-protected and
// stack-independent.
package obs

import (
	"sync"
	"time"
)

// Event kinds recorded by the pipeline. Kind is an open string — these
// are the ones the engines emit today.
const (
	EventDecline    = "decline"    // hierarchical engine declined (whole or to flat)
	EventQuarantine = "quarantine" // placements served by partial degradation
	EventCorrupt    = "corrupt"    // persistent-store entry failed validation
	EventLog        = "log"        // a logger line captured into the trace
)

// Event is one instant (zero-duration) occurrence inside a span.
type Event struct {
	Kind   string
	Detail string
	At     time.Duration // offset from the trace start
}

// Note is one key/value annotation on a span.
type Note struct{ Key, Value string }

// Trace records one session's span tree. The nil *Trace is the
// disabled trace: every method no-ops, so engines hold an optional
// *Trace without guarding call sites (sites that would format a
// dynamic name guard on Enabled instead).
type Trace struct {
	mu         sync.Mutex
	start      time.Time
	roots      []*Span
	rootEvents []Event // events recorded with no span open
	stack      []*Span // innermost open Begin-span last
}

// NewTrace returns an enabled, empty trace. The zero time base is set
// here; span offsets are monotonic durations from it.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Enabled reports whether the trace records anything. Call sites that
// build dynamic span names or event details must guard on it so the
// disabled path stays allocation-free.
func (t *Trace) Enabled() bool { return t != nil }

// Begin opens a span nested under the innermost span still open from a
// previous Begin (or at the top level). It assumes the pipeline's
// single-threaded call discipline; concurrent sub-work must use
// Span.Child instead. Begin on a nil trace returns a nil span, whose
// methods all no-op.
func (t *Trace) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{t: t, name: name, start: time.Since(t.start), end: -1}
	if n := len(t.stack); n > 0 {
		p := t.stack[n-1]
		p.mu.Lock()
		p.children = append(p.children, sp)
		p.mu.Unlock()
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// Event records an instant event on the innermost open span (or at the
// top level when none is open).
func (t *Trace) Event(kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Kind: kind, Detail: detail, At: time.Since(t.start)}
	if n := len(t.stack); n > 0 {
		sp := t.stack[n-1]
		sp.events = append(sp.events, ev)
		return
	}
	t.rootEvents = append(t.rootEvents, ev)
}

// Roots returns the top-level spans recorded so far.
func (t *Trace) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// RootEvents returns events recorded with no span open.
func (t *Trace) RootEvents() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.rootEvents...)
}

// Logger returns a Logger that records each line as an EventLog trace
// event and forwards to next (which may be nil to only trace).
func (t *Trace) Logger(next Logger) Logger {
	return func(format string, args ...any) {
		if t != nil {
			t.Event(EventLog, sprintf(format, args...))
		}
		if next != nil {
			next(format, args...)
		}
	}
}

// Span is one timed region of a trace. The nil *Span no-ops every
// method, so disabled traces propagate without guards.
type Span struct {
	t          *Trace
	name       string
	start, end time.Duration // offsets from the trace start; end<0 while open

	mu       sync.Mutex
	children []*Span
	events   []Event
	notes    []Note
}

// Child opens a sub-span under sp without touching the trace's span
// stack — the attachment point for concurrent fan-out work (flatten
// shards), safe to call from multiple goroutines.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{t: sp.t, name: name, start: time.Since(sp.t.start), end: -1}
	sp.mu.Lock()
	sp.children = append(sp.children, c)
	sp.mu.Unlock()
	return c
}

// End closes the span. A span opened with Begin also pops itself (and
// any dangling descendants a missed End left behind) off the trace's
// stack; a Child span just records its end time.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.t
	t.mu.Lock()
	if sp.end < 0 {
		sp.end = time.Since(t.start)
	}
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == sp {
			t.stack = t.stack[:i]
			break
		}
	}
	t.mu.Unlock()
}

// Note annotates the span with a key/value pair.
func (sp *Span) Note(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.notes = append(sp.notes, Note{key, value})
	sp.mu.Unlock()
}

// Event records an instant event on this span specifically.
func (sp *Span) Event(kind, detail string) {
	if sp == nil {
		return
	}
	ev := Event{Kind: kind, Detail: detail, At: time.Since(sp.t.start)}
	sp.mu.Lock()
	sp.events = append(sp.events, ev)
	sp.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// Start returns the span's start offset from the trace start.
func (sp *Span) Start() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.start
}

// Dur returns the span's duration (0 while still open or for nil).
func (sp *Span) Dur() time.Duration {
	if sp == nil {
		return 0
	}
	sp.t.mu.Lock()
	end := sp.end
	sp.t.mu.Unlock()
	if end < 0 {
		return 0
	}
	return end - sp.start
}

// Children returns the span's sub-spans.
func (sp *Span) Children() []*Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]*Span(nil), sp.children...)
}

// Events returns the span's instant events.
func (sp *Span) Events() []Event {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]Event(nil), sp.events...)
}

// Notes returns the span's annotations.
func (sp *Span) Notes() []Note {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]Note(nil), sp.notes...)
}

// Find returns the first span named name in a depth-first search of
// the subtree rooted at sp (including sp itself), or nil.
func (sp *Span) Find(name string) *Span {
	if sp == nil {
		return nil
	}
	if sp.name == name {
		return sp
	}
	for _, c := range sp.Children() {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}
