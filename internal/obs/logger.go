package obs

import (
	"fmt"
	"os"
)

// Logger receives one formatted line per noteworthy pipeline event
// (persistent-store quarantines, hierarchical declines). Implementations
// must not assume a trailing newline in format.
type Logger func(format string, args ...any)

// Stderr is the default Logger: one line per event to standard error.
func Stderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Discard silences a logging site.
func Discard(format string, args ...any) {}

// sprintf is fmt.Sprintf under a local name so trace.go need not
// import fmt for one call.
func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
