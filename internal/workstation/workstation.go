// Package workstation simulates the two hardware configurations Riot
// ran on (the paper's figure 1):
//
//	1a. the Caltech graphic workstation — a "Charles" color terminal
//	    (high-resolution color raster display), a CRT text terminal, a
//	    Xerox mouse and an HP 7221A pen plotter, all driven by a DEC
//	    LSI-11 connected to the DEC-20;
//	1b. the low-cost GIGI workstation — a DEC GIGI color terminal with
//	    a Summagraphics BitPad.
//
// Go has no native 1982 hardware, so the devices are simulated: each
// device is a descriptor plus, for pointing devices, a posted event
// queue, and for displays, a raster frame buffer. The ui package runs
// identically on either configuration — exactly the portability
// property the original had.
package workstation

import (
	"fmt"
	"strings"

	"riot/internal/geom"
	"riot/internal/raster"
)

// DeviceKind classifies a workstation device.
type DeviceKind uint8

// The device kinds of figure 1.
const (
	ColorDisplay DeviceKind = iota
	TextTerminal
	PointingDevice
	PenPlotter
	Host
)

func (k DeviceKind) String() string {
	switch k {
	case ColorDisplay:
		return "color display"
	case TextTerminal:
		return "text terminal"
	case PointingDevice:
		return "pointing device"
	case PenPlotter:
		return "pen plotter"
	default:
		return "host"
	}
}

// Device describes one piece of workstation hardware.
type Device struct {
	Kind DeviceKind
	Name string
	W, H int // resolution, for displays
}

// EventKind classifies input events.
type EventKind uint8

// The input event kinds.
const (
	MouseMove EventKind = iota
	ButtonDown
	ButtonUp
	KeyPress
)

// Event is one input occurrence from the pointing device or keyboard.
type Event struct {
	Kind   EventKind
	At     geom.Point // device coordinates for pointer events
	Button int        // 1..3 for button events
	Key    byte       // for KeyPress
}

// Workstation is a simulated configuration: its device list, a frame
// buffer for the color display, and an input event queue.
type Workstation struct {
	Name    string
	Devices []Device
	Screen  *raster.Image

	queue []Event
	pos   geom.Point // current pointer position
}

// Charles builds the figure-1a configuration: the full Caltech color
// workstation. The Charles terminal is given a 768x512 frame buffer
// ("a high resolution color raster display device" by 1982 standards).
func Charles() *Workstation {
	w := &Workstation{
		Name: "Caltech graphic workstation (Charles)",
		Devices: []Device{
			{Host, "DEC-20", 0, 0},
			{Host, "DEC LSI-11", 0, 0},
			{ColorDisplay, "Charles color terminal", 768, 512},
			{TextTerminal, "CRT text terminal", 80, 24},
			{PointingDevice, "Xerox mouse", 0, 0},
			{PenPlotter, "HP 7221A four-color pen plotter", 0, 0},
		},
	}
	w.Screen = raster.New(768, 512)
	return w
}

// GIGI builds the figure-1b configuration: the low-cost workstation.
// The GIGI's native resolution was 768x240; the BitPad replaces the
// mouse.
func GIGI() *Workstation {
	w := &Workstation{
		Name: "GIGI terminal workstation",
		Devices: []Device{
			{Host, "DEC-20", 0, 0},
			{ColorDisplay, "DEC GIGI color terminal", 768, 240},
			{PointingDevice, "Summagraphics BitPad", 0, 0},
		},
	}
	w.Screen = raster.New(768, 240)
	return w
}

// Display returns the workstation's color display descriptor.
func (w *Workstation) Display() Device {
	for _, d := range w.Devices {
		if d.Kind == ColorDisplay {
			return d
		}
	}
	return Device{}
}

// HasPlotter reports whether the configuration includes hardcopy.
func (w *Workstation) HasPlotter() bool {
	for _, d := range w.Devices {
		if d.Kind == PenPlotter {
			return true
		}
	}
	return false
}

// Post queues an input event, tracking the pointer position.
func (w *Workstation) Post(ev Event) {
	if ev.Kind == MouseMove || ev.Kind == ButtonDown || ev.Kind == ButtonUp {
		w.pos = ev.At
	}
	w.queue = append(w.queue, ev)
}

// Click posts a press-and-release pair at a position — the basic
// pointing gesture.
func (w *Workstation) Click(at geom.Point) {
	w.Post(Event{Kind: ButtonDown, At: at, Button: 1})
	w.Post(Event{Kind: ButtonUp, At: at, Button: 1})
}

// Poll removes and returns the next queued event.
func (w *Workstation) Poll() (Event, bool) {
	if len(w.queue) == 0 {
		return Event{}, false
	}
	ev := w.queue[0]
	w.queue = w.queue[1:]
	return ev, true
}

// Pending returns the number of queued events.
func (w *Workstation) Pending() int { return len(w.queue) }

// Pointer returns the current pointer position.
func (w *Workstation) Pointer() geom.Point { return w.pos }

// Describe renders the configuration as the figure-1 style block
// diagram text.
func (w *Workstation) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", w.Name)
	for _, d := range w.Devices {
		if d.W > 0 {
			fmt.Fprintf(&b, "  %-16s %s (%dx%d)\n", d.Kind, d.Name, d.W, d.H)
		} else {
			fmt.Fprintf(&b, "  %-16s %s\n", d.Kind, d.Name)
		}
	}
	return b.String()
}
