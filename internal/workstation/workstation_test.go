package workstation

import (
	"strings"
	"testing"

	"riot/internal/geom"
)

func TestCharlesConfiguration(t *testing.T) {
	w := Charles()
	if w.Screen == nil || w.Screen.W != 768 || w.Screen.H != 512 {
		t.Errorf("screen = %+v", w.Screen)
	}
	if !w.HasPlotter() {
		t.Error("Charles workstation lost its plotter")
	}
	d := w.Display()
	if d.Name == "" || d.Kind != ColorDisplay {
		t.Errorf("display = %+v", d)
	}
	desc := w.Describe()
	for _, want := range []string{"Charles", "LSI-11", "mouse", "7221A", "text terminal"} {
		if !strings.Contains(desc, want) {
			t.Errorf("description missing %q:\n%s", want, desc)
		}
	}
}

func TestGIGIConfiguration(t *testing.T) {
	w := GIGI()
	if w.HasPlotter() {
		t.Error("GIGI workstation has no plotter in figure 1b")
	}
	desc := w.Describe()
	for _, want := range []string{"GIGI", "BitPad"} {
		if !strings.Contains(desc, want) {
			t.Errorf("description missing %q:\n%s", want, desc)
		}
	}
	if w.Screen.H != 240 {
		t.Errorf("GIGI height = %d", w.Screen.H)
	}
}

func TestEventQueue(t *testing.T) {
	w := GIGI()
	if _, ok := w.Poll(); ok {
		t.Error("empty queue returned an event")
	}
	w.Post(Event{Kind: MouseMove, At: geom.Pt(10, 20)})
	w.Click(geom.Pt(30, 40))
	if w.Pending() != 3 {
		t.Errorf("pending = %d", w.Pending())
	}
	if w.Pointer() != geom.Pt(30, 40) {
		t.Errorf("pointer = %v", w.Pointer())
	}
	ev, ok := w.Poll()
	if !ok || ev.Kind != MouseMove || ev.At != geom.Pt(10, 20) {
		t.Errorf("first event = %+v", ev)
	}
	ev, _ = w.Poll()
	if ev.Kind != ButtonDown {
		t.Errorf("second event = %+v", ev)
	}
	ev, _ = w.Poll()
	if ev.Kind != ButtonUp || ev.Button != 1 {
		t.Errorf("third event = %+v", ev)
	}
	if w.Pending() != 0 {
		t.Error("queue not drained")
	}
}

func TestDeviceKindStrings(t *testing.T) {
	for k := ColorDisplay; k <= Host; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
