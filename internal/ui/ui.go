// Package ui implements Riot's graphical command interface on the
// simulated workstation. The screen follows the paper's figure 2: "a
// large editing area next to two small menu areas along the right edge
// of the screen. The editing area shows the contents of the cell under
// edit. The upper menu area contains the names of the cells which are
// currently defined and which may be instantiated. The lower menu
// contains graphical editing commands which are invoked by pointing at
// them."
//
// Every graphical gesture resolves to a textual shell command, so the
// pointer-driven session is journaled exactly like a keyboard session —
// which is what makes REPLAY work for graphical editing too.
package ui

import (
	"fmt"
	"strings"

	"riot/internal/core"
	"riot/internal/display"
	"riot/internal/geom"
	"riot/internal/raster"
	"riot/internal/rules"
	"riot/internal/shell"
	"riot/internal/workstation"
)

// Tool is the currently armed graphical command.
type Tool uint8

// The pointer tools. Immediate commands (ABUT, ROUTE, STRETCH, zoom
// and pan) execute on menu click and do not arm a tool.
const (
	ToolNone Tool = iota
	ToolCreate
	ToolMove
	ToolOrient
	ToolDelete
	ToolConnect
)

func (t Tool) String() string {
	switch t {
	case ToolCreate:
		return "CREATE"
	case ToolMove:
		return "MOVE"
	case ToolOrient:
		return "ORIENT"
	case ToolDelete:
		return "DELETE"
	case ToolConnect:
		return "CONNECT"
	default:
		return "-"
	}
}

// menu entries, in display order
var commandMenu = []string{
	"CREATE", "MOVE", "ORIENT", "DELETE", "CONNECT",
	"ABUT", "OVERLAP", "ROUTE", "STRETCH",
	"ZOOM IN", "ZOOM OUT", "PAN L", "PAN R", "PAN U", "PAN D",
	"FIT", "NAMES",
}

// UI is one graphical editing session bound to a workstation and a
// shell.
type UI struct {
	WS   *workstation.Workstation
	Sh   *shell.Shell
	View display.View

	Selected  string // cell selected in the cell menu
	ShowNames bool
	Status    string

	tool      Tool
	moveInst  string // instance picked up by MOVE, awaiting destination
	connFrom  string // "inst.conn" picked as connection source
	fitNeeded bool

	// draw carries cull indexes and derived geometry across frames,
	// keyed on the editor's edit generation: pan and zoom of a static
	// cell redraw without re-binning any array.
	draw *display.Cache
}

// New opens the graphical editor on a workstation. The shell must
// already be editing a cell (EDIT <name>).
func New(ws *workstation.Workstation, sh *shell.Shell) (*UI, error) {
	if sh.Editor == nil {
		return nil, fmt.Errorf("ui: no cell under edit")
	}
	u := &UI{WS: ws, Sh: sh, fitNeeded: true, draw: display.NewCache()}
	u.Fit()
	return u, nil
}

// Layout returns the three screen regions of figure 2: the editing
// area and the two menus on the right edge.
func (u *UI) Layout() (edit, cellMenu, cmdMenu geom.Rect) {
	w, h := u.WS.Screen.W, u.WS.Screen.H
	menuW := w / 4
	if menuW < 120 {
		menuW = 120
	}
	edit = geom.R(0, 0, w-menuW-1, h-1)
	cellMenu = geom.R(w-menuW, 0, w-1, h/2-1)
	cmdMenu = geom.R(w-menuW, h/2, w-1, h-1)
	return edit, cellMenu, cmdMenu
}

// Fit zooms the view to show the whole cell under edit.
func (u *UI) Fit() {
	edit, _, _ := u.Layout()
	box := u.Sh.Editor.Cell.BBox()
	if box.Empty() {
		box = geom.R(0, 0, 100*rules.Lambda, 100*rules.Lambda)
	}
	u.View = display.FitView(box, edit.Inset(4), true)
}

// Render paints the whole screen: editing area, menus, pending
// connection list and status line.
func (u *UI) Render() {
	im := u.WS.Screen
	im.Clear(geom.ColorBlack)
	edit, cellMenu, cmdMenu := u.Layout()

	// editing area
	display.DrawCellCached(display.RasterCanvas{Im: im}, u.View, u.Sh.Editor.Cell,
		display.Options{ShowNames: u.ShowNames}, u.draw, u.Sh.Editor.Generation())
	im.Rect(edit, geom.ColorWhite)

	// cell menu
	im.Rect(cellMenu, geom.ColorWhite)
	y := cellMenu.Min.Y + 3
	im.Text(cellMenu.Min.X+3, y, "CELLS", geom.ColorYellow)
	y += raster.GlyphHeight + 3
	for _, name := range u.Sh.Design.CellNames() {
		c := geom.ColorWhite
		if name == u.Selected {
			c = geom.ColorGreen
		}
		im.Text(cellMenu.Min.X+3, y, name, c)
		y += raster.GlyphHeight + 2
		if y > cellMenu.Max.Y-raster.GlyphHeight {
			break
		}
	}

	// command menu
	im.Rect(cmdMenu, geom.ColorWhite)
	y = cmdMenu.Min.Y + 3
	im.Text(cmdMenu.Min.X+3, y, "COMMANDS", geom.ColorYellow)
	y += raster.GlyphHeight + 3
	for _, name := range commandMenu {
		c := geom.ColorWhite
		if name == u.tool.String() {
			c = geom.ColorGreen
		}
		im.Text(cmdMenu.Min.X+3, y, name, c)
		y += raster.GlyphHeight + 2
		if y > cmdMenu.Max.Y-raster.GlyphHeight {
			break
		}
	}

	// the pending connection list "is shown on the screen constantly"
	y = edit.Min.Y + 3
	for i, cn := range u.Sh.Editor.Pending {
		im.Text(edit.Min.X+3, y, fmt.Sprintf("%d: %s", i, cn), geom.ColorCyan)
		y += raster.GlyphHeight + 1
	}

	// status line
	im.Text(edit.Min.X+3, edit.Max.Y-raster.GlyphHeight-2, u.Status, geom.ColorYellow)
}

// cellMenuHit returns the cell name at a menu position, if any.
func (u *UI) cellMenuHit(at geom.Point) (string, bool) {
	_, cellMenu, _ := u.Layout()
	if !cellMenu.Contains(at) {
		return "", false
	}
	row := (at.Y - cellMenu.Min.Y - 3 - raster.GlyphHeight - 3) / (raster.GlyphHeight + 2)
	names := u.Sh.Design.CellNames()
	if row < 0 || row >= len(names) {
		return "", false
	}
	return names[row], true
}

// cmdMenuHit returns the command name at a menu position, if any.
func (u *UI) cmdMenuHit(at geom.Point) (string, bool) {
	_, _, cmdMenu := u.Layout()
	if !cmdMenu.Contains(at) {
		return "", false
	}
	row := (at.Y - cmdMenu.Min.Y - 3 - raster.GlyphHeight - 3) / (raster.GlyphHeight + 2)
	if row < 0 || row >= len(commandMenu) {
		return "", false
	}
	return commandMenu[row], true
}

// HandleEvent processes one input event; button releases trigger
// actions. It returns an error only for internal failures — user-level
// problems land in the status line, like the original's message area.
func (u *UI) HandleEvent(ev workstation.Event) error {
	if ev.Kind != workstation.ButtonUp {
		return nil
	}
	if name, ok := u.cellMenuHit(ev.At); ok {
		u.Selected = name
		u.Status = "selected " + name
		return nil
	}
	if cmd, ok := u.cmdMenuHit(ev.At); ok {
		return u.menuCommand(cmd)
	}
	edit, _, _ := u.Layout()
	if edit.Contains(ev.At) {
		return u.editClick(ev.At)
	}
	return nil
}

// RunPending drains the workstation queue through HandleEvent and
// re-renders.
func (u *UI) RunPending() error {
	for {
		ev, ok := u.WS.Poll()
		if !ok {
			break
		}
		if err := u.HandleEvent(ev); err != nil {
			return err
		}
	}
	u.Render()
	return nil
}

func (u *UI) menuCommand(cmd string) error {
	switch cmd {
	case "CREATE":
		u.tool = ToolCreate
	case "MOVE":
		u.tool = ToolMove
		u.moveInst = ""
	case "ORIENT":
		u.tool = ToolOrient
	case "DELETE":
		u.tool = ToolDelete
	case "CONNECT":
		u.tool = ToolConnect
		u.connFrom = ""
	case "ABUT":
		u.exec("ABUT")
	case "OVERLAP":
		u.exec("ABUT OVERLAP")
	case "ROUTE":
		u.exec("ROUTE")
	case "STRETCH":
		u.exec("STRETCH")
	case "ZOOM IN":
		u.View.Zoom(2, 3)
	case "ZOOM OUT":
		u.View.Zoom(3, 2)
	case "PAN L":
		u.View.Pan(-1, 0, 4)
	case "PAN R":
		u.View.Pan(1, 0, 4)
	case "PAN U":
		u.View.Pan(0, 1, 4)
	case "PAN D":
		u.View.Pan(0, -1, 4)
	case "FIT":
		u.Fit()
	case "NAMES":
		u.ShowNames = !u.ShowNames
	}
	if u.tool != ToolNone {
		u.Status = u.tool.String()
	}
	return nil
}

// exec runs a shell command, reporting failures in the status line.
func (u *UI) exec(cmd string) error {
	if err := u.Sh.Exec(cmd); err != nil {
		u.Status = err.Error()
		return nil
	}
	u.Status = cmd
	return nil
}

// editClick handles a pointer click in the editing area according to
// the armed tool.
func (u *UI) editClick(at geom.Point) error {
	design := u.View.ToDesign(at)
	lx, ly := roundLambda(design.X), roundLambda(design.Y)

	switch u.tool {
	case ToolCreate:
		if u.Selected == "" {
			u.Status = "select a cell first"
			return nil
		}
		return u.exec(fmt.Sprintf("CREATE %s AT %d %d", u.Selected, lx, ly))

	case ToolMove:
		if u.moveInst == "" {
			in := u.hitInstance(design)
			if in == nil {
				u.Status = "no instance there"
				return nil
			}
			u.moveInst = in.Name
			u.Status = "moving " + in.Name
			return nil
		}
		inst, _ := u.Sh.Editor.Cell.InstanceByName(u.moveInst)
		if inst == nil {
			u.moveInst = ""
			return nil
		}
		cur := inst.BBox().Min
		name := u.moveInst
		u.moveInst = ""
		return u.exec(fmt.Sprintf("MOVE %s %d %d", name,
			lx-roundLambda(cur.X), ly-roundLambda(cur.Y)))

	case ToolOrient:
		if in := u.hitInstance(design); in != nil {
			return u.exec(fmt.Sprintf("ORIENT %s R90", in.Name))
		}
		u.Status = "no instance there"

	case ToolDelete:
		if in := u.hitInstance(design); in != nil {
			return u.exec("DELETE " + in.Name)
		}
		u.Status = "no instance there"

	case ToolConnect:
		ref, ok := u.nearestConnector(design)
		if !ok {
			u.Status = "no connector there"
			return nil
		}
		if u.connFrom == "" {
			u.connFrom = ref
			u.Status = "from " + ref
			return nil
		}
		from := u.connFrom
		u.connFrom = ""
		return u.exec(fmt.Sprintf("CONNECT %s %s", from, ref))

	default:
		// pointing with no tool identifies what is under the cursor
		if in := u.hitInstance(design); in != nil {
			u.Status = in.Name + ":" + in.Cell.Name
		} else {
			u.Status = ""
		}
	}
	return nil
}

// hitInstance finds the topmost (last-drawn) instance whose bounding
// box contains the design point, through the editor's generation-keyed
// spatial index — pointing around a static cell never rescans the
// instance list.
func (u *UI) hitInstance(p geom.Point) *core.Instance {
	return u.Sh.Editor.HitInstance(p)
}

// nearestConnector finds the closest instance connector within a
// 4-lambda pointing radius and returns its "inst.conn" reference.
func (u *UI) nearestConnector(p geom.Point) (string, bool) {
	best := 4 * rules.Lambda
	ref := ""
	for _, in := range u.Sh.Editor.Cell.Instances {
		for _, ic := range in.Connectors() {
			if d := ic.At.ManhattanDist(p); d < best {
				best = d
				ref = in.Name + "." + ic.Name
			}
		}
	}
	return ref, ref != ""
}

// roundLambda converts centimicrons to the nearest lambda.
func roundLambda(cm int) int {
	if cm >= 0 {
		return (cm + rules.Lambda/2) / rules.Lambda
	}
	return -((-cm + rules.Lambda/2) / rules.Lambda)
}

// Screenshot writes the current screen as a PPM image via the shell's
// file writer.
func (u *UI) Screenshot(name string) error {
	if u.Sh.WriteFile == nil {
		return fmt.Errorf("ui: no file writer attached")
	}
	var b strings.Builder
	u.Render()
	if err := u.WS.Screen.WritePPM(&b); err != nil {
		return err
	}
	return u.Sh.WriteFile(name, []byte(b.String()))
}
