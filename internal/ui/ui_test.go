package ui

import (
	"strings"
	"testing"
	"testing/fstest"

	"riot/internal/geom"
	"riot/internal/raster"
	"riot/internal/rules"
	"riot/internal/shell"
	"riot/internal/workstation"
)

const gateSticks = `STICKS GATE
BBOX 0 0 20 10
WIRE NM 2 0 5 20 5
CONNECTOR IN 0 5 NM 2 left
CONNECTOR OUT 20 5 NM 2 right
END
`

func newUI(t *testing.T) (*UI, *shell.Shell, *workstation.Workstation) {
	t.Helper()
	sh := shell.New(nil)
	sh.FS = fstest.MapFS{"gate.sticks": {Data: []byte(gateSticks)}}
	files := map[string][]byte{}
	sh.WriteFile = func(name string, data []byte) error {
		files[name] = data
		return nil
	}
	if err := sh.ExecAll("READ gate.sticks", "EDIT TOP"); err != nil {
		t.Fatal(err)
	}
	ws := workstation.Charles()
	u, err := New(ws, sh)
	if err != nil {
		t.Fatal(err)
	}
	return u, sh, ws
}

func TestNewRequiresEditor(t *testing.T) {
	sh := shell.New(nil)
	if _, err := New(workstation.Charles(), sh); err == nil {
		t.Error("UI opened with no cell under edit")
	}
}

func TestLayoutRegions(t *testing.T) {
	u, _, ws := newUI(t)
	edit, cellMenu, cmdMenu := u.Layout()
	// figure 2: editing area left, menus stacked on the right edge
	if edit.Max.X >= cellMenu.Min.X {
		t.Errorf("editing area overlaps menus: %v vs %v", edit, cellMenu)
	}
	if cellMenu.Max.Y >= cmdMenu.Min.Y {
		t.Errorf("menus overlap: %v vs %v", cellMenu, cmdMenu)
	}
	full := geom.R(0, 0, ws.Screen.W-1, ws.Screen.H-1)
	for _, r := range []geom.Rect{edit, cellMenu, cmdMenu} {
		if !full.ContainsRect(r) {
			t.Errorf("region %v escapes the screen", r)
		}
	}
	// the editing area dominates ("a large editing area")
	if edit.Area() < 2*(cellMenu.Area()+cmdMenu.Area()) {
		t.Error("editing area is not the large region")
	}
}

func TestMenuSelectionAndCreate(t *testing.T) {
	u, sh, ws := newUI(t)
	_, cellMenu, cmdMenu := u.Layout()
	// click the first cell-menu row (GATE)
	ws.Click(geom.Pt(cellMenu.Min.X+5, cellMenu.Min.Y+3+raster.GlyphHeight+3+2))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	if u.Selected != "GATE" {
		t.Fatalf("selected = %q", u.Selected)
	}
	// click CREATE in the command menu (row 0)
	ws.Click(geom.Pt(cmdMenu.Min.X+5, cmdMenu.Min.Y+3+raster.GlyphHeight+3+2))
	// then click in the editing area
	ws.Click(geom.Pt(100, 300))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	top, _ := sh.Design.Cell("TOP")
	if len(top.Instances) != 1 {
		t.Fatalf("instances = %d (status %q)", len(top.Instances), u.Status)
	}
	// the gesture was journaled as a CREATE command
	found := false
	for _, l := range sh.Journal.Lines() {
		if strings.HasPrefix(l, "CREATE GATE AT") {
			found = true
		}
	}
	if !found {
		t.Errorf("journal: %v", sh.Journal.Lines())
	}
}

func menuRowPoint(menu geom.Rect, row int) geom.Point {
	return geom.Pt(menu.Min.X+5, menu.Min.Y+3+raster.GlyphHeight+3+row*(raster.GlyphHeight+2)+2)
}

func TestConnectGesture(t *testing.T) {
	u, sh, ws := newUI(t)
	if err := sh.ExecAll(
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 40 0",
	); err != nil {
		t.Fatal(err)
	}
	u.Fit()
	_, _, cmdMenu := u.Layout()
	// arm CONNECT (row 4 of the command menu)
	ws.Click(menuRowPoint(cmdMenu, 4))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	// click near b.IN, then near a.OUT
	top, _ := sh.Design.Cell("TOP")
	b, _ := top.InstanceByName("b")
	a, _ := top.InstanceByName("a")
	bin, _ := b.Connector("IN")
	aout, _ := a.Connector("OUT")
	ws.Click(u.View.ToScreen(bin.At))
	ws.Click(u.View.ToScreen(aout.At))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	if len(sh.Editor.Pending) != 1 {
		t.Fatalf("pending = %d (status %q)", len(sh.Editor.Pending), u.Status)
	}
	// ABUT via menu (row 5)
	ws.Click(menuRowPoint(cmdMenu, 5))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	bin, _ = b.Connector("IN")
	aout, _ = a.Connector("OUT")
	if bin.At != aout.At {
		t.Errorf("gesture-driven abut failed: %v vs %v (status %q)", bin.At, aout.At, u.Status)
	}
}

func TestMoveGesture(t *testing.T) {
	u, sh, ws := newUI(t)
	if err := sh.Exec("CREATE GATE a AT 0 0"); err != nil {
		t.Fatal(err)
	}
	u.Fit()
	_, _, cmdMenu := u.Layout()
	ws.Click(menuRowPoint(cmdMenu, 1)) // MOVE
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	top, _ := sh.Design.Cell("TOP")
	a, _ := top.InstanceByName("a")
	before := a.BBox().Min
	// pick up a, drop it somewhere else in the editing area
	ws.Click(u.View.ToScreen(a.BBox().Center()))
	ws.Click(geom.Pt(300, 100))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	if a.BBox().Min == before {
		t.Errorf("move gesture did nothing (status %q)", u.Status)
	}
}

func TestDeleteGesture(t *testing.T) {
	u, sh, ws := newUI(t)
	if err := sh.Exec("CREATE GATE a AT 0 0"); err != nil {
		t.Fatal(err)
	}
	u.Fit()
	_, _, cmdMenu := u.Layout()
	ws.Click(menuRowPoint(cmdMenu, 3)) // DELETE
	top, _ := sh.Design.Cell("TOP")
	a, _ := top.InstanceByName("a")
	ws.Click(u.View.ToScreen(a.BBox().Center()))
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	if len(top.Instances) != 0 {
		t.Errorf("delete gesture failed (status %q)", u.Status)
	}
}

func TestZoomMenu(t *testing.T) {
	u, _, ws := newUI(t)
	_, _, cmdMenu := u.Layout()
	w0 := u.View.Window.W()
	ws.Click(menuRowPoint(cmdMenu, 9)) // ZOOM IN
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
	if u.View.Window.W() >= w0 {
		t.Error("zoom in did not shrink the window")
	}
	ws.Click(menuRowPoint(cmdMenu, 10)) // ZOOM OUT
	if err := u.RunPending(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderScreens(t *testing.T) {
	u, sh, ws := newUI(t)
	if err := sh.ExecAll("CREATE GATE a AT 0 0", "CREATE GATE b AT 40 0", "CONNECT b.IN a.OUT"); err != nil {
		t.Fatal(err)
	}
	u.Fit()
	u.Render()
	im := ws.Screen
	if im.CountColor(geom.ColorWhite) == 0 {
		t.Error("nothing rendered")
	}
	// pending connection list is on screen (cyan text)
	if im.CountColor(geom.ColorCyan) == 0 {
		t.Error("pending connection list not shown")
	}
	// menus are labelled (yellow headers)
	if im.CountColor(geom.ColorYellow) == 0 {
		t.Error("menu headers missing")
	}
}

func TestScreenshot(t *testing.T) {
	u, sh, _ := newUI(t)
	files := map[string][]byte{}
	sh.WriteFile = func(name string, data []byte) error {
		files[name] = data
		return nil
	}
	if err := u.Screenshot("screen.ppm"); err != nil {
		t.Fatal(err)
	}
	if len(files["screen.ppm"]) == 0 {
		t.Fatal("screenshot empty")
	}
	if !strings.HasPrefix(string(files["screen.ppm"]), "P6\n") {
		t.Error("not a PPM")
	}
}

func TestRoundLambda(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {rules.Lambda, 1}, {rules.Lambda/2 + 1, 1},
		{rules.Lambda / 3, 0}, {-rules.Lambda, -1}, {-rules.Lambda / 3, 0},
	}
	for _, c := range cases {
		if got := roundLambda(c.in); got != c.want {
			t.Errorf("roundLambda(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestGIGIWorkstationRunsUIToo(t *testing.T) {
	sh := shell.New(nil)
	sh.FS = fstest.MapFS{"gate.sticks": {Data: []byte(gateSticks)}}
	if err := sh.ExecAll("READ gate.sticks", "EDIT TOP"); err != nil {
		t.Fatal(err)
	}
	ws := workstation.GIGI()
	u, err := New(ws, sh)
	if err != nil {
		t.Fatal(err)
	}
	u.Render()
	if ws.Screen.CountColor(geom.ColorWhite) == 0 {
		t.Error("GIGI render empty")
	}
}
