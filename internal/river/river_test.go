package river

import (
	"math/rand"
	"strings"
	"testing"

	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

func term(name string, x int, l geom.Layer, w int) Terminal {
	return Terminal{Name: name, X: x, Layer: l, Width: w}
}

func metalRow(xs ...int) []Terminal {
	ts := make([]Terminal, len(xs))
	for i, x := range xs {
		ts[i] = term("", x, geom.NM, 0)
	}
	return ts
}

func TestRouteStraight(t *testing.T) {
	res, err := Route(metalRow(0, 10, 20), metalRow(0, 10, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracks != 0 {
		t.Errorf("straight route used %d tracks", res.Tracks)
	}
	if res.Channels != 1 {
		t.Errorf("channels = %d", res.Channels)
	}
	for _, w := range res.Cell.Wires {
		if len(w.Points) != 2 {
			t.Errorf("straight wire has %d points", len(w.Points))
		}
	}
	if res.Length != 3*res.Height {
		t.Errorf("length = %d, want %d", res.Length, 3*res.Height)
	}
}

func TestRouteRightShift(t *testing.T) {
	res, err := Route(metalRow(0, 10, 20), metalRow(5, 15, 25), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracks == 0 {
		t.Error("shifted route needs jogs")
	}
	// every wire starts at its bottom terminal and ends at its top one
	for i, w := range res.Cell.Wires {
		first, last := w.Points[0], w.Points[len(w.Points)-1]
		if first.Y != 0 || last.Y != res.Height {
			t.Errorf("wire %d does not span channel: %v", i, w.Points)
		}
		if first.X != []int{0, 10, 20}[i] || last.X != []int{5, 15, 25}[i] {
			t.Errorf("wire %d endpoints %v, %v", i, first, last)
		}
	}
	if err := res.Cell.Validate(); err != nil {
		t.Errorf("route cell invalid: %v", err)
	}
}

func TestRouteConnectorsMatchTerminals(t *testing.T) {
	b := []Terminal{term("A", 0, geom.NM, 4), term("B", 12, geom.NP, 2)}
	tp := []Terminal{term("X", 6, geom.NM, 4), term("Y", 20, geom.NP, 2)}
	res, err := Route(b, tp, Options{CellName: "R1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell.Name != "R1" {
		t.Errorf("cell name = %q", res.Cell.Name)
	}
	ab, ok := res.Cell.ConnectorByName("A.b")
	if !ok || ab.At != geom.Pt(0, 0) || ab.Layer != geom.NM || ab.Width != 4 || ab.Side != geom.SideBottom {
		t.Errorf("A.b = %+v ok=%v", ab, ok)
	}
	yt, ok := res.Cell.ConnectorByName("Y.t")
	if !ok || yt.At != geom.Pt(20, res.Height) || yt.Side != geom.SideTop {
		t.Errorf("Y.t = %+v ok=%v", yt, ok)
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(metalRow(0), metalRow(0, 5), Options{}); err == nil {
		t.Error("accepted mismatched terminal counts")
	}
	if _, err := Route(nil, nil, Options{}); err == nil {
		t.Error("accepted empty route")
	}
	if _, err := Route([]Terminal{term("A", 0, geom.NM, 0)}, []Terminal{term("A", 0, geom.NP, 0)}, Options{}); err == nil {
		t.Error("accepted layer change")
	}
	if _, err := Route([]Terminal{term("A", 0, geom.NC, 0)}, []Terminal{term("A", 0, geom.NC, 0)}, Options{}); err == nil {
		t.Error("accepted contact-layer route")
	}
	// crossing: same layer, order reversed
	if _, err := Route(metalRow(0, 10), metalRow(10, 0), Options{}); err == nil {
		t.Error("accepted crossing same-layer routes")
	}
	// duplicate bottom position
	if _, err := Route(metalRow(5, 5), metalRow(0, 10), Options{}); err == nil {
		t.Error("accepted duplicate bottom positions")
	}
}

func TestRouteCrossingDifferentLayersAllowed(t *testing.T) {
	b := []Terminal{term("A", 0, geom.NM, 0), term("B", 10, geom.NP, 0)}
	tp := []Terminal{term("A", 10, geom.NM, 0), term("B", 0, geom.NP, 0)}
	res, err := Route(b, tp, Options{})
	if err != nil {
		t.Fatalf("different-layer crossing rejected: %v", err)
	}
	if len(res.Cell.Wires) != 2 {
		t.Errorf("wires = %d", len(res.Cell.Wires))
	}
}

func TestRouteLeftAndRightMovers(t *testing.T) {
	// two rights then two lefts, interval-disjoint under order
	// preservation
	b := metalRow(0, 10, 40, 50)
	tp := metalRow(6, 16, 44, 52)
	tp[2].X = 34 // third net moves left
	tp[3].X = 46 // fourth net moves left
	res, err := Route(b, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cell.Validate(); err != nil {
		t.Errorf("cell invalid: %v", err)
	}
}

func TestRouteMultiChannel(t *testing.T) {
	// many overlapping same-layer shifts force many tracks; a small
	// channel capacity then forces several channels
	n := 9
	var b, tp []Terminal
	for i := 0; i < n; i++ {
		b = append(b, term("", i*8, geom.NM, 0))
		tp = append(tp, term("", i*8+4, geom.NM, 0))
	}
	small, err := Route(b, tp, Options{TracksPerChannel: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Route(b, tp, Options{TracksPerChannel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if small.Tracks != big.Tracks {
		t.Errorf("track count depends on capacity: %d vs %d", small.Tracks, big.Tracks)
	}
	if small.Channels <= big.Channels {
		t.Errorf("small capacity gave %d channels, huge capacity %d", small.Channels, big.Channels)
	}
	if big.Channels != 1 {
		t.Errorf("unlimited capacity used %d channels", big.Channels)
	}
}

func TestRouteWidthsFollowConnectors(t *testing.T) {
	b := []Terminal{term("P", 0, geom.NM, 6)}
	tp := []Terminal{term("P", 20, geom.NM, 4)}
	res, err := Route(b, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// route wire takes the wider of the two ends
	if res.Cell.Wires[0].Width != 6 {
		t.Errorf("wire width = %d, want 6", res.Cell.Wires[0].Width)
	}
}

func TestRouteHeightGrowsWithTracks(t *testing.T) {
	straight, err := Route(metalRow(0, 10), metalRow(0, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	jogged, err := Route(metalRow(0, 10), metalRow(4, 14), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jogged.Height <= straight.Height {
		t.Errorf("jogged height %d <= straight height %d", jogged.Height, straight.Height)
	}
}

func TestEffWidthDefault(t *testing.T) {
	tm := term("", 0, geom.NM, 0)
	if tm.EffWidth() != rules.MinWidth(geom.NM) {
		t.Errorf("EffWidth = %d", tm.EffWidth())
	}
}

// Property: random order-preserving terminal vectors always route, the
// route cell validates, the spacing verifier passes (it runs inside
// Route), and every wire lands on its terminals.
func TestRouteRandomPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	layers := []geom.Layer{geom.NM, geom.NP, geom.ND}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(8)
		var b, tp []Terminal
		xb, xt := 0, 0
		for i := 0; i < n; i++ {
			l := layers[rng.Intn(3)]
			xb += rules.Pitch(geom.NM) + rng.Intn(10)
			xt += rules.Pitch(geom.NM) + rng.Intn(10)
			b = append(b, term("", xb, l, 0))
			tp = append(tp, term("", xt, l, 0))
		}
		res, err := Route(b, tp, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, w := range res.Cell.Wires {
			if w.Points[0].X != b[i].X || w.Points[len(w.Points)-1].X != tp[i].X {
				t.Fatalf("trial %d wire %d misrouted", trial, i)
			}
		}
	}
}

// Property: wire length is at least the Manhattan lower bound
// (|dx| + channel height per net) and total length is reported
// accurately.
func TestRouteLengthAccounting(t *testing.T) {
	b := metalRow(0, 20)
	tp := metalRow(8, 36)
	res, err := Route(b, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, w := range res.Cell.Wires {
		for i := 1; i < len(w.Points); i++ {
			want += w.Points[i-1].ManhattanDist(w.Points[i])
		}
	}
	if res.Length != want {
		t.Errorf("Length = %d, want %d", res.Length, want)
	}
	lower := (8 - 0) + (36 - 20) + 2*res.Height
	if res.Length < lower {
		t.Errorf("Length %d below Manhattan bound %d", res.Length, lower)
	}
}

func TestRouteCellConvertsToCIF(t *testing.T) {
	res, err := Route(metalRow(0, 10, 20), metalRow(4, 14, 30), Options{CellName: "RC"})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := sticks.ToCIF(res.Cell, 3)
	if err != nil {
		t.Fatalf("route cell does not convert to CIF: %v", err)
	}
	if len(sym.Connectors()) != 6 {
		t.Errorf("CIF connectors = %d, want 6", len(sym.Connectors()))
	}
}

// TestTerminalCongestionPrecheck: same-edge terminals whose wire stubs
// crowd under the spacing rule fail up front with a user-level error
// naming the terminals, before any track assignment.
func TestTerminalCongestionPrecheck(t *testing.T) {
	// metal stubs 3 wide at 4 apart: edge gap 1 < the 3-lambda rule
	_, err := Route(
		[]Terminal{term("A", 0, geom.NM, 0), term("B", 4, geom.NM, 0)},
		[]Terminal{term("A", 0, geom.NM, 0), term("B", 4, geom.NM, 0)},
		Options{})
	if err == nil {
		t.Fatal("crowded terminals routed")
	}
	// at the rule exactly (3 wide + 3 gap = 6 pitch): legal
	if _, err := Route(metalRow(0, 6, 12), metalRow(0, 6, 12), Options{}); err != nil {
		t.Fatalf("rule-pitch terminals rejected: %v", err)
	}
	// different layers at the same positions do not interact
	_, err = Route(
		[]Terminal{term("A", 0, geom.NM, 0), term("B", 4, geom.NP, 0)},
		[]Terminal{term("A", 0, geom.NM, 0), term("B", 4, geom.NP, 0)},
		Options{})
	if err != nil {
		t.Fatalf("cross-layer terminals rejected: %v", err)
	}
	// the stub takes the net's resolved width: a wide far-end terminal
	// crowds this edge even though the near ends alone are legal
	_, err = Route(
		[]Terminal{term("A", 0, geom.NM, 0), term("B", 8, geom.NM, 0)},
		[]Terminal{term("A", 0, geom.NM, 9), term("B", 8, geom.NM, 3)},
		Options{})
	if err == nil {
		t.Fatal("wide far-end terminals routed through a crowded edge")
	}
	if !strings.Contains(err.Error(), "terminals") {
		t.Errorf("crowding reported as %v, want a terminal-naming error", err)
	}
}

// TestExactHeightOverflowFails pins the fixed-gap overflow contract:
// when the jogged route's natural height (its track stack, however
// many channels the unconstrained router would use) exceeds a forced
// ExactHeight, routing must fail with a diagnostic naming required vs
// available tracks — never emit a cell taller than the gap.
func TestExactHeightOverflowFails(t *testing.T) {
	// every net jogs left by 100, so the jog intervals all overlap and
	// each needs its own track: with TracksPerChannel 2 this is a
	// multi-channel route (5 tracks, 3 channels) whose natural stack
	// cannot fit a small fixed gap
	var bottom, top []Terminal
	for i := 0; i < 5; i++ {
		bottom = append(bottom, term("", 100+i*8, geom.NM, 0))
		top = append(top, term("", i*8, geom.NM, 0))
	}
	nat, err := Route(bottom, top, Options{TracksPerChannel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Tracks != 5 || nat.Channels != 3 {
		t.Fatalf("natural route = %d tracks, %d channels; want 5, 3", nat.Tracks, nat.Channels)
	}

	forced := nat.Height / 2
	res, err := Route(bottom, top, Options{TracksPerChannel: 2, ExactHeight: forced})
	if err == nil {
		t.Fatalf("overflowing fixed-height route succeeded with height %d (> forced %d)", res.Height, forced)
	}
	msg := err.Error()
	if !strings.Contains(msg, "5 jog track(s)") || !strings.Contains(msg, "track") {
		t.Errorf("diagnostic does not name required tracks: %q", msg)
	}

	// the natural height itself must still be accepted exactly
	fit, err := Route(bottom, top, Options{TracksPerChannel: 2, ExactHeight: nat.Height})
	if err != nil {
		t.Fatalf("exact-fit fixed height rejected: %v", err)
	}
	if fit.Height != nat.Height {
		t.Errorf("exact-fit height = %d, want %d", fit.Height, nat.Height)
	}
}

// TestExactHeightNegativeRejected: a negative forced gap (overlapping
// instances) must fail outright, not silently route unconstrained.
func TestExactHeightNegativeRejected(t *testing.T) {
	res, err := Route(metalRow(0, 10), metalRow(0, 10), Options{ExactHeight: -4})
	if err == nil {
		t.Fatalf("negative forced height routed a %d-lambda-tall cell", res.Height)
	}
}
