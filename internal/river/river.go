// Package river implements Riot's multi-layer river router: "a routed
// connection between parallel sets of points where no routes change
// layers and no two routes on the same layer cross. The Riot river
// router cannot turn corners, and it ignores objects in the path of the
// route."
//
// The router connects a vector of bottom terminals to a vector of top
// terminals, pairing them by index. Each net is realized as at most one
// horizontal jog between two vertical runs, on the net's own layer.
// Jogs are assigned to horizontal tracks inside the routing channel;
// when a channel's track capacity is exhausted, "another channel is
// added and the route is continued in the new channel" — the route cell
// simply grows taller by one channel.
//
// The output is a Sticks cell (the paper: "Riot then makes a new Sticks
// cell containing the river route wires") whose bottom-edge and
// top-edge connectors reproduce the two terminal vectors, so the cell
// abuts cleanly against both instances being connected.
package river

import (
	"fmt"
	"sort"

	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
)

// Terminal is one connection point on an edge of the routing channel:
// its position along the edge, its layer, and the width of the wire
// that must reach it (zero means layer minimum).
type Terminal struct {
	Name  string
	X     int
	Layer geom.Layer
	Width int
}

// EffWidth returns the terminal's wire width with the layer minimum
// substituted for zero.
func (t Terminal) EffWidth() int {
	if t.Width > 0 {
		return t.Width
	}
	return rules.MinWidth(t.Layer)
}

// Options tunes the router.
type Options struct {
	// TracksPerChannel caps how many jog tracks fit in one routing
	// channel before the router opens another. Zero means the default
	// of 8. A very large value reproduces single-channel behaviour.
	TracksPerChannel int
	// CellName names the generated route cell; empty means "ROUTE".
	CellName string
	// ExactHeight, when positive, forces the channel to exactly this
	// height (in lambda). Riot uses it for routes "made without moving
	// the from instance": the channel must fill the existing gap
	// between two fixed instances. Routing fails — with a diagnostic
	// naming the required versus available jog tracks — if the natural
	// height does not fit: a fixed gap has no room for the overflow
	// channels the unconstrained router would otherwise stack, so the
	// route must never come out taller than the gap. Negative values
	// are rejected outright (a caller measuring a gap between already
	// overlapping instances must not silently fall back to an
	// unconstrained route).
	ExactHeight int
}

// Result describes a finished route.
type Result struct {
	Cell     *sticks.Cell // the generated route cell, lambda units
	Height   int          // channel height in lambda (cell bbox height)
	Tracks   int          // jog tracks used
	Channels int          // routing channels used (>= 1)
	Length   int          // total wire length in lambda
}

// net is one bottom-to-top connection being routed.
type net struct {
	idx    int
	a, b   int // bottom and top positions
	layer  geom.Layer
	width  int
	track  int // 0 = straight, else 1-based track number from channel top
	bottom Terminal
	top    Terminal
}

// Route river-routes bottom[i] to top[i] for every i. It fails when the
// vectors disagree in length, a pair changes layer, a terminal is on a
// non-routable layer, or two same-layer connections cross (a river
// route cannot cross; the paper's designers abut or re-order instead).
func Route(bottom, top []Terminal, opt Options) (*Result, error) {
	if len(bottom) != len(top) {
		return nil, fmt.Errorf("river: %d bottom terminals vs %d top", len(bottom), len(top))
	}
	if len(bottom) == 0 {
		return nil, fmt.Errorf("river: nothing to route")
	}
	if opt.ExactHeight < 0 {
		return nil, fmt.Errorf("river: forced channel height %d is negative (the instances already overlap; no route can fill that gap)",
			opt.ExactHeight)
	}
	cap := opt.TracksPerChannel
	if cap <= 0 {
		cap = 8
	}
	name := opt.CellName
	if name == "" {
		name = "ROUTE"
	}

	nets := make([]*net, len(bottom))
	for i := range bottom {
		if bottom[i].Layer != top[i].Layer {
			return nil, fmt.Errorf("river: connection %d changes layer %v -> %v (river routes cannot change layers)",
				i, bottom[i].Layer, top[i].Layer)
		}
		if !bottom[i].Layer.Routable() {
			return nil, fmt.Errorf("river: connection %d on non-routable layer %v", i, bottom[i].Layer)
		}
		w := bottom[i].EffWidth()
		if tw := top[i].EffWidth(); tw > w {
			w = tw
		}
		nets[i] = &net{idx: i, a: bottom[i].X, b: top[i].X, layer: bottom[i].Layer,
			width: w, bottom: bottom[i], top: top[i]}
	}

	// congestion pre-check: terminal wire stubs that would overlap or
	// crowd under the spacing rule fail before any tracks are assigned.
	// Stubs take the net's resolved width — the wire is widened to the
	// fatter of its two terminals, so a wide far end crowds this edge
	// too.
	if err := checkTerminals(nets, true); err != nil {
		return nil, err
	}
	if err := checkTerminals(nets, false); err != nil {
		return nil, err
	}

	// group by layer and check planarity (order preservation)
	byLayer := map[geom.Layer][]*net{}
	for _, n := range nets {
		byLayer[n.layer] = append(byLayer[n.layer], n)
	}
	for layer, group := range byLayer {
		sorted := append([]*net(nil), group...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].a < sorted[j].a })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].a == sorted[i-1].a {
				return nil, fmt.Errorf("river: two %v connections share bottom position %d", layer, sorted[i].a)
			}
			if sorted[i].b <= sorted[i-1].b {
				return nil, fmt.Errorf("river: %v connections %q and %q cross (no two routes on the same layer may cross)",
					layer, sorted[i-1].bottom.Name, sorted[i].bottom.Name)
			}
		}
		byLayer[layer] = sorted
	}

	// Track assignment. Within a layer, rightward-moving nets take
	// monotonically non-increasing tracks (left to right) and
	// leftward-moving nets monotonically non-decreasing ones; the two
	// groups' jog intervals are provably disjoint under order
	// preservation, and different layers never interact, but distinct
	// layers share the global track numbering so the channel height is
	// a single number.
	tracks := 0
	pitch := 0
	for _, n := range nets {
		if p := rules.WirePitch(n.layer, n.width, n.width); p > pitch {
			pitch = p
		}
	}
	for _, group := range byLayer {
		var rights, lefts []*net
		for _, n := range group {
			switch {
			case n.b > n.a:
				rights = append(rights, n)
			case n.b < n.a:
				lefts = append(lefts, n)
			}
		}
		// rights: first net highest track; reuse a track while jog
		// intervals stay clear of each other.
		prevEnd := 0
		cur := 0
		for i, n := range rights {
			sp := rules.MinSpacing(n.layer) + n.width
			if i == 0 || n.a-prevEnd < sp {
				tracks++
				cur = tracks
			}
			n.track = cur
			prevEnd = n.b
		}
		// lefts: first net lowest track of its run, later nets higher;
		// allocate a block of tracks and hand them out bottom-up.
		prevEnd = 0
		nblock := 0
		for i, n := range lefts {
			sp := rules.MinSpacing(n.layer) + n.width
			if i == 0 || n.b-prevEnd < sp {
				tracks++
				nblock++
			}
			n.track = -nblock // placeholder: 1-based index into the block
			prevEnd = n.a
		}
		// resolve left tracks: block entry k takes the k-th lowest of
		// the newly allocated tracks, so earlier lefts sit lower.
		for _, n := range lefts {
			bi := -n.track
			n.track = tracks + 1 - bi
		}
	}

	channels := 1
	if tracks > 0 {
		channels = (tracks + cap - 1) / cap
	}

	clear := pitch
	if clear == 0 {
		clear = rules.Pitch(geom.NM)
	}
	height := 2*clear + tracks*pitch
	if tracks == 0 {
		height = 2 * clear
	}
	if opt.ExactHeight > 0 {
		// an all-straight route can squeeze into any positive gap;
		// jogged routes need their full track stack plus clearance. A
		// fixed gap cannot grow by "adding another channel" the way an
		// unconstrained route does, so overflow past the gap's track
		// capacity is a hard failure, reported in tracks: the designer's
		// fix is fewer jogs (or moving the instances), not a taller cell.
		minHeight := height
		if tracks == 0 {
			minHeight = 1
		}
		if opt.ExactHeight < minHeight {
			avail := (opt.ExactHeight - 2*clear) / pitch
			if avail < 0 {
				avail = 0
			}
			return nil, fmt.Errorf("river: route needs %d jog track(s) but the fixed %d-lambda gap fits %d (height %d needed; the instances are too close together)",
				tracks, opt.ExactHeight, avail, minHeight)
		}
		height = opt.ExactHeight
	}
	trackY := func(tr int) int { // track 1 is the highest
		return height - clear - (tr-1)*pitch
	}

	// emit the route cell
	cell := &sticks.Cell{Name: name, HasBox: true}
	minX, maxX := nets[0].a, nets[0].a
	for _, n := range nets {
		for _, x := range []int{n.a, n.b} {
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	cell.Box = geom.R(minX, 0, maxX, height)

	length := 0
	for _, n := range nets {
		var pts []geom.Point
		if n.a == n.b {
			pts = []geom.Point{{X: n.a, Y: 0}, {X: n.a, Y: height}}
		} else {
			y := trackY(n.track)
			pts = []geom.Point{{X: n.a, Y: 0}, {X: n.a, Y: y}, {X: n.b, Y: y}, {X: n.b, Y: height}}
		}
		for i := 1; i < len(pts); i++ {
			length += pts[i-1].ManhattanDist(pts[i])
		}
		cell.Wires = append(cell.Wires, sticks.Wire{Layer: n.layer, Width: n.width, Points: pts})
		cell.Connectors = append(cell.Connectors,
			sticks.Connector{Name: botName(n.bottom, n.idx), At: geom.Pt(n.a, 0), Layer: n.layer, Width: n.bottom.EffWidth(), Side: geom.SideBottom},
			sticks.Connector{Name: topName(n.top, n.idx), At: geom.Pt(n.b, height), Layer: n.layer, Width: n.top.EffWidth(), Side: geom.SideTop},
		)
	}

	if err := verify(cell); err != nil {
		return nil, fmt.Errorf("river: internal: %w", err)
	}
	if err := cell.Validate(); err != nil {
		return nil, fmt.Errorf("river: internal: %w", err)
	}
	return &Result{Cell: cell, Height: height, Tracks: tracks, Channels: channels, Length: length}, nil
}

func botName(t Terminal, i int) string {
	if t.Name != "" {
		return t.Name + ".b"
	}
	return fmt.Sprintf("N%d.b", i)
}

func topName(t Terminal, i int) string {
	if t.Name != "" {
		return t.Name + ".t"
	}
	return fmt.Sprintf("N%d.t", i)
}

// checkTerminals rejects one edge of the channel when two same-layer
// wire stubs would overlap or run closer than the layer's spacing rule
// — channel congestion the router cannot fix by adding tracks, caught
// before any assignment work and reported against the terminals
// instead of as an internal wire-spacing failure. Each stub takes its
// net's resolved wire width (the wider of the two ends). Candidate
// neighbors come from a geom.Index over the stub extents, the same
// indexed obstacle query the extractor and the design-rule checker
// use.
func checkTerminals(nets []*net, bottomEdge bool) error {
	if len(nets) < 2 {
		return nil
	}
	edge := "top"
	stubs := make([]geom.Rect, len(nets))
	for i, n := range nets {
		x := n.b
		if bottomEdge {
			x = n.a
			edge = "bottom"
		}
		stubs[i] = geom.R(x-n.width/2, 0, x-n.width/2+n.width, 1)
	}
	ix := geom.NewIndexFrom(stubs)
	for i, n := range nets {
		gap := rules.MinSpacing(n.layer)
		var err error
		ix.QueryRect(stubs[i].Inset(-gap), func(j int) bool {
			if j <= i || nets[j].layer != n.layer {
				return true
			}
			sep := 0 // edge-to-edge separation; 0 when the stubs overlap
			switch {
			case stubs[j].Min.X > stubs[i].Max.X:
				sep = stubs[j].Min.X - stubs[i].Max.X
			case stubs[i].Min.X > stubs[j].Max.X:
				sep = stubs[i].Min.X - stubs[j].Max.X
			}
			if sep >= gap {
				return true
			}
			err = fmt.Errorf("river: %s terminals %q and %q are closer than the %v spacing rule (%d lambda)",
				edge, termName(n, bottomEdge), termName(nets[j], bottomEdge), n.layer, gap)
			return false
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func termName(n *net, bottomEdge bool) string {
	t := n.top
	if bottomEdge {
		t = n.bottom
	}
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("N%d", n.idx)
}

// verify checks that no two same-layer wires of different nets violate
// minimum spacing — the router's construction guarantees this, and the
// check enforces the guarantee ("guaranteeing that connections are made
// correctly"). Candidate pairs come from a geom.Index over the wire
// segments instead of the all-pairs scan the first version used.
func verify(cell *sticks.Cell) error {
	type seg struct {
		r     geom.Rect
		layer geom.Layer
		wire  int
	}
	var segs []seg
	rects := make([]geom.Rect, 0, len(cell.Wires))
	for wi, w := range cell.Wires {
		h1 := w.Width / 2
		h2 := w.Width - h1
		for i := 1; i < len(w.Points); i++ {
			a, b := w.Points[i-1], w.Points[i]
			r := geom.RectFromPoints(a, b)
			r = geom.R(r.Min.X-h1, r.Min.Y-h1, r.Max.X+h2, r.Max.Y+h2)
			segs = append(segs, seg{r, w.Layer, wi})
			rects = append(rects, r)
		}
	}
	ix := geom.NewIndexFrom(rects)
	for i, a := range segs {
		gap := rules.MinSpacing(a.layer)
		grown := geom.R(a.r.Min.X-gap, a.r.Min.Y-gap, a.r.Max.X+gap, a.r.Max.Y+gap)
		var err error
		ix.QueryRect(grown, func(j int) bool {
			b := segs[j]
			if j <= i || a.wire == b.wire || a.layer != b.layer {
				return true
			}
			if grown.Overlaps(b.r) {
				err = fmt.Errorf("wires %d and %d closer than %d on %v (%v vs %v)",
					a.wire, b.wire, gap, a.layer, a.r, b.r)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
