package geom

import "math"

// Index is a uniform-grid spatial index over integer rectangles. It
// answers the two queries every hot geometry path in Riot needs —
// "which rectangles touch this rectangle?" and "which rectangles
// contain this point?" — in expected O(1 + answer) time instead of a
// linear scan over the whole shape set.
//
// The index is built over a batch of rectangles: Insert rectangles
// (each gets a dense integer id in insertion order), then query.
// Building is lazy — the first query after an Insert rebins everything
// — so the typical collect-then-query usage pays one O(n) build.
//
// Geometry follows the package's closed-interval convention: a query
// reports every rectangle that Touches the query rectangle (shared
// edges and corners included), matching the electrical-connectivity
// rule that edge-adjacent material on one mask layer is connected.
//
// The grid is sized so the expected occupancy is a few rectangles per
// bin; degenerate distributions (everything in one bin) degrade to the
// linear scan the index replaces, never worse. An Index is not safe
// for concurrent use.
type Index struct {
	rects []Rect

	built  bool
	bounds Rect
	nx, ny int // grid dimensions
	cw, ch int // bin size in design units
	// bins in compressed-sparse-row layout: bin b's ids are
	// binIDs[binStart[b]:binStart[b+1]]. One backing array instead of
	// one slice per bin keeps the build allocation-free past the two
	// arrays and the scan cache-local.
	binStart []int32
	binIDs   []int32
	fill     []int32  // build scratch, reused across rebuilds
	stamp    []uint32 // per-id visit marker, keyed by epoch
	epoch    uint32
}

// Reset empties the index for reuse: the rectangle list clears while
// every backing array (rects, bins, visit markers) is retained for the
// next Insert/Build cycle. Hot re-verify paths rebuild indexes every
// run; reusing the arenas keeps that off the allocator.
func (ix *Index) Reset() {
	ix.rects = ix.rects[:0]
	ix.built = false
}

// grownI32 returns s resized to n, reusing its backing array when
// large enough; contents are zeroed.
func grownI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// NewIndex returns an empty index.
func NewIndex() *Index { return &Index{} }

// NewIndexFrom returns an index over a copy of the given rectangles;
// ids are the slice indices. Rectangles are normalized on the way in,
// exactly as Insert does.
func NewIndexFrom(rects []Rect) *Index {
	ix := &Index{rects: make([]Rect, len(rects))}
	for i, r := range rects {
		ix.rects[i] = r.Canon()
	}
	return ix
}

// Clone returns an independent query handle over the same built index:
// the rectangle list, grid and bins are shared (they are immutable once
// built), while the per-query visit markers are private. Concurrent
// queries on one Index race on those markers, so parallel workers each
// take a Clone. The clone must not Insert or Build; the source index
// must not be modified while clones are live.
func (ix *Index) Clone() *Index {
	if !ix.built {
		ix.Build()
	}
	cp := *ix
	cp.stamp = make([]uint32, len(ix.rects))
	cp.epoch = 0
	return &cp
}

// Insert adds a rectangle and returns its id (dense, in insertion
// order). Inserting invalidates the built grid; the next query
// rebuilds it.
func (ix *Index) Insert(r Rect) int {
	ix.rects = append(ix.rects, r.Canon())
	ix.built = false
	return len(ix.rects) - 1
}

// Len returns the number of indexed rectangles.
func (ix *Index) Len() int { return len(ix.rects) }

// RectOf returns the rectangle stored under id.
func (ix *Index) RectOf(id int) Rect { return ix.rects[id] }

// Build bins every rectangle into the uniform grid. Calling Build is
// optional — queries build on demand — but lets callers front-load the
// cost.
func (ix *Index) Build() {
	n := len(ix.rects)
	ix.built = true
	ix.epoch = 0
	if n == 0 {
		ix.nx, ix.ny = 0, 0
		ix.binStart, ix.binIDs = nil, nil
		ix.stamp = nil
		return
	}
	b := ix.rects[0]
	for _, r := range ix.rects[1:] {
		b = Rect{
			Point{min(b.Min.X, r.Min.X), min(b.Min.Y, r.Min.Y)},
			Point{max(b.Max.X, r.Max.X), max(b.Max.Y, r.Max.Y)},
		}
	}
	ix.bounds = b
	// Aim for about one rectangle per bin on a square-ish grid, capped
	// so pathological counts cannot allocate an absurd grid.
	side := int(math.Sqrt(float64(n))) + 1
	if side > 2048 {
		side = 2048
	}
	ix.nx, ix.ny = side, side
	ix.cw = (b.W() / side) + 1
	ix.ch = (b.H() / side) + 1
	if cap(ix.stamp) >= n {
		ix.stamp = ix.stamp[:n]
		for i := range ix.stamp {
			ix.stamp[i] = 0
		}
	} else {
		ix.stamp = make([]uint32, n)
	}
	// counting pass, then a prefix-sum fill: two O(n + bins) sweeps
	// build the CSR layout without per-bin reallocation; the arrays
	// are reused across rebuilds
	start := grownI32(ix.binStart, ix.nx*ix.ny+1)
	for _, r := range ix.rects {
		x0, y0 := ix.col(r.Min.X), ix.row(r.Min.Y)
		x1, y1 := ix.col(r.Max.X), ix.row(r.Max.Y)
		for y := y0; y <= y1; y++ {
			row := y * ix.nx
			for x := x0; x <= x1; x++ {
				start[row+x+1]++
			}
		}
	}
	for i := 1; i < len(start); i++ {
		start[i] += start[i-1]
	}
	total := int(start[len(start)-1])
	var ids []int32
	if cap(ix.binIDs) >= total {
		ids = ix.binIDs[:total]
	} else {
		ids = make([]int32, total)
	}
	fill := grownI32(ix.fill, ix.nx*ix.ny)
	for id, r := range ix.rects {
		x0, y0 := ix.col(r.Min.X), ix.row(r.Min.Y)
		x1, y1 := ix.col(r.Max.X), ix.row(r.Max.Y)
		for y := y0; y <= y1; y++ {
			row := y * ix.nx
			for x := x0; x <= x1; x++ {
				bin := row + x
				ids[start[bin]+fill[bin]] = int32(id)
				fill[bin]++
			}
		}
	}
	ix.binStart, ix.binIDs, ix.fill = start, ids, fill
}

// col maps an x coordinate to a grid column, clamped to the grid.
func (ix *Index) col(x int) int {
	c := (x - ix.bounds.Min.X) / ix.cw
	if c < 0 {
		return 0
	}
	if c >= ix.nx {
		return ix.nx - 1
	}
	return c
}

// row maps a y coordinate to a grid row, clamped to the grid.
func (ix *Index) row(y int) int {
	r := (y - ix.bounds.Min.Y) / ix.ch
	if r < 0 {
		return 0
	}
	if r >= ix.ny {
		return ix.ny - 1
	}
	return r
}

// nextEpoch advances the per-query visit marker, resetting the stamps
// on the (practically unreachable) wraparound.
func (ix *Index) nextEpoch() uint32 {
	ix.epoch++
	if ix.epoch == 0 {
		for i := range ix.stamp {
			ix.stamp[i] = 0
		}
		ix.epoch = 1
	}
	return ix.epoch
}

// QueryRect calls fn once for each rectangle that touches q (shared
// edges and corners count). fn returning false stops the query. Ids
// arrive in grid-scan order, not sorted; callers that need the lowest
// id must track the minimum themselves.
func (ix *Index) QueryRect(q Rect, fn func(id int) bool) {
	if !ix.built {
		ix.Build()
	}
	if len(ix.rects) == 0 {
		return
	}
	q = q.Canon()
	if !ix.bounds.Touches(q) {
		return
	}
	epoch := ix.nextEpoch()
	x0, y0 := ix.col(q.Min.X), ix.row(q.Min.Y)
	x1, y1 := ix.col(q.Max.X), ix.row(q.Max.Y)
	for y := y0; y <= y1; y++ {
		row := y * ix.nx
		for x := x0; x <= x1; x++ {
			bin := row + x
			for _, id := range ix.binIDs[ix.binStart[bin]:ix.binStart[bin+1]] {
				if ix.stamp[id] == epoch {
					continue
				}
				ix.stamp[id] = epoch
				if ix.rects[id].Touches(q) && !fn(int(id)) {
					return
				}
			}
		}
	}
}

// QueryPoint calls fn once for each rectangle containing p (boundary
// included). fn returning false stops the query.
func (ix *Index) QueryPoint(p Point, fn func(id int) bool) {
	if !ix.built {
		ix.Build()
	}
	if len(ix.rects) == 0 || !ix.bounds.Contains(p) {
		return
	}
	bin := ix.row(p.Y)*ix.nx + ix.col(p.X)
	for _, id := range ix.binIDs[ix.binStart[bin]:ix.binStart[bin+1]] {
		if ix.rects[id].Contains(p) && !fn(int(id)) {
			return
		}
	}
}
