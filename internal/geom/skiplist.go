package geom

// SweepSet is an ordered set of (key, id) pairs built for sweep-line
// active sets: rectangles enter when the sweep reaches their left edge,
// leave at their right edge, and every entering rectangle scans the
// prefix of active entries whose key does not exceed a bound. The
// ordered-slice implementation this replaces paid O(n) memmove per
// insert and delete; SweepSet is a skip list, so both are O(log n)
// expected while the prefix scan stays a linear walk of the bottom
// level.
//
// Entries order by (key, id); the pair must be unique while inserted.
// The zero SweepSet is not ready for use — call NewSweepSet.
type SweepSet struct {
	head  *sweepNode
	level int
	rng   uint64
	free  *sweepNode // recycled nodes (sweeps churn entries heavily)
	n     int
}

const sweepMaxLevel = 24

type sweepNode struct {
	key, id int
	next    []*sweepNode
}

// NewSweepSet returns an empty set. The level-assignment PRNG is seeded
// deterministically: runs are reproducible, and determinism here only
// shapes the skip-list towers, never visit order.
func NewSweepSet() *SweepSet {
	return &SweepSet{
		head:  &sweepNode{next: make([]*sweepNode, sweepMaxLevel)},
		level: 1,
		rng:   0x9e3779b97f4a7c15,
	}
}

// Len returns the number of entries.
func (s *SweepSet) Len() int { return s.n }

// less orders entries by (key, id).
func sweepLess(aKey, aID, bKey, bID int) bool {
	if aKey != bKey {
		return aKey < bKey
	}
	return aID < bID
}

// randLevel draws a tower height with P(level >= k) = 2^-(k-1)
// (xorshift64*; one draw per insert).
func (s *SweepSet) randLevel() int {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	lvl := 1
	for v := s.rng; v&1 == 1 && lvl < sweepMaxLevel; v >>= 1 {
		lvl++
	}
	return lvl
}

// Insert adds the entry. Inserting a duplicate (key, id) pair is
// undefined; sweeps never do (ids are unique per pass).
func (s *SweepSet) Insert(key, id int) {
	var update [sweepMaxLevel]*sweepNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && sweepLess(x.next[i].key, x.next[i].id, key, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	lvl := s.randLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	nd := s.free
	if nd != nil && cap(nd.next) >= lvl {
		s.free = nd.next[0]
		nd.next = nd.next[:lvl]
		for i := range nd.next {
			nd.next[i] = nil
		}
		nd.key, nd.id = key, id
	} else {
		nd = &sweepNode{key: key, id: id, next: make([]*sweepNode, lvl)}
	}
	for i := 0; i < lvl; i++ {
		nd.next[i] = update[i].next[i]
		update[i].next[i] = nd
	}
	s.n++
}

// Delete removes the entry; removing an absent entry is a no-op.
func (s *SweepSet) Delete(key, id int) {
	var update [sweepMaxLevel]*sweepNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && sweepLess(x.next[i].key, x.next[i].id, key, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	nd := x.next[0]
	if nd == nil || nd.key != key || nd.id != id {
		return
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] != nd {
			break
		}
		update[i].next[i] = nd.next[i]
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	// recycle through the freelist, chained on next[0]
	nd.next = nd.next[:cap(nd.next)]
	nd.next[0] = s.free
	s.free = nd
	s.n--
}

// VisitPrefix calls fn(id) for every entry with key <= maxKey, in
// ascending (key, id) order. fn returning false stops the walk.
func (s *SweepSet) VisitPrefix(maxKey int, fn func(id int) bool) {
	for x := s.head.next[0]; x != nil && x.key <= maxKey; x = x.next[0] {
		if !fn(x.id) {
			return
		}
	}
}
