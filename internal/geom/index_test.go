package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func collectRect(ix *Index, q Rect) []int {
	var got []int
	ix.QueryRect(q, func(id int) bool { got = append(got, id); return true })
	sort.Ints(got)
	return got
}

func collectPoint(ix *Index, p Point) []int {
	var got []int
	ix.QueryPoint(p, func(id int) bool { got = append(got, id); return true })
	sort.Ints(got)
	return got
}

func bruteRect(rects []Rect, q Rect) []int {
	var got []int
	for i, r := range rects {
		if r.Touches(q) {
			got = append(got, i)
		}
	}
	return got
}

func brutePoint(rects []Rect, p Point) []int {
	var got []int
	for i, r := range rects {
		if r.Contains(p) {
			got = append(got, i)
		}
	}
	return got
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex()
	if got := collectRect(ix, R(0, 0, 10, 10)); got != nil {
		t.Errorf("empty QueryRect = %v", got)
	}
	if got := collectPoint(ix, Pt(3, 3)); got != nil {
		t.Errorf("empty QueryPoint = %v", got)
	}
}

func TestIndexEdgeTouch(t *testing.T) {
	// Two rects sharing only an edge, one sharing only a corner: the
	// electrical rule counts both as touching.
	ix := NewIndexFrom([]Rect{
		R(0, 0, 10, 10),   // 0
		R(10, 0, 20, 10),  // 1: shares the x=10 edge with 0
		R(10, 10, 20, 20), // 2: shares only the corner (10,10) with 0
		R(30, 30, 40, 40), // 3: far away
	})
	if got := collectRect(ix, R(0, 0, 10, 10)); !sameInts(got, []int{0, 1, 2}) {
		t.Errorf("QueryRect = %v, want [0 1 2]", got)
	}
	if got := collectPoint(ix, Pt(10, 10)); !sameInts(got, []int{0, 1, 2}) {
		t.Errorf("QueryPoint corner = %v, want [0 1 2]", got)
	}
	if got := collectPoint(ix, Pt(35, 35)); !sameInts(got, []int{3}) {
		t.Errorf("QueryPoint = %v, want [3]", got)
	}
}

func TestIndexInsertInvalidates(t *testing.T) {
	ix := NewIndex()
	ix.Insert(R(0, 0, 5, 5))
	if got := collectPoint(ix, Pt(2, 2)); !sameInts(got, []int{0}) {
		t.Fatalf("first query = %v", got)
	}
	// Insert after a build: the grid must rebuild and see the new rect
	// even though it falls outside the first build's bounds.
	id := ix.Insert(R(100, 100, 110, 110))
	if id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if got := collectPoint(ix, Pt(105, 105)); !sameInts(got, []int{1}) {
		t.Errorf("post-insert query = %v, want [1]", got)
	}
}

func TestIndexEarlyStop(t *testing.T) {
	ix := NewIndexFrom([]Rect{R(0, 0, 10, 10), R(0, 0, 10, 10), R(0, 0, 10, 10)})
	calls := 0
	ix.QueryRect(R(0, 0, 10, 10), func(id int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early-stop QueryRect made %d calls", calls)
	}
	calls = 0
	ix.QueryPoint(Pt(5, 5), func(id int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early-stop QueryPoint made %d calls", calls)
	}
}

// TestIndexRandomized cross-checks the grid against the brute-force
// scan it replaces, on rect soups with heavy overlap, degenerate
// (zero-area) rects, and negative coordinates.
func TestIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := rng.Intn(400)-200, rng.Intn(400)-200
			w, h := rng.Intn(60), rng.Intn(60)
			rects[i] = R(x, y, x+w, y+h)
		}
		ix := NewIndexFrom(rects)
		for q := 0; q < 50; q++ {
			x, y := rng.Intn(500)-250, rng.Intn(500)-250
			qr := R(x, y, x+rng.Intn(100), y+rng.Intn(100))
			if got, want := collectRect(ix, qr), bruteRect(rects, qr); !sameInts(got, want) {
				t.Fatalf("trial %d: QueryRect(%v) = %v, want %v", trial, qr, got, want)
			}
			p := Pt(x, y)
			if got, want := collectPoint(ix, p), brutePoint(rects, p); !sameInts(got, want) {
				t.Fatalf("trial %d: QueryPoint(%v) = %v, want %v", trial, p, got, want)
			}
		}
	}
}

func BenchmarkIndexQueryRect(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rects := make([]Rect, 10000)
	for i := range rects {
		x, y := rng.Intn(100000), rng.Intn(100000)
		rects[i] = R(x, y, x+rng.Intn(500), y+rng.Intn(500))
	}
	ix := NewIndexFrom(rects)
	ix.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rects[i%len(rects)]
		ix.QueryRect(q, func(int) bool { return true })
	}
}
