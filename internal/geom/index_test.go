package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func collectRect(ix *Index, q Rect) []int {
	var got []int
	ix.QueryRect(q, func(id int) bool { got = append(got, id); return true })
	sort.Ints(got)
	return got
}

func collectPoint(ix *Index, p Point) []int {
	var got []int
	ix.QueryPoint(p, func(id int) bool { got = append(got, id); return true })
	sort.Ints(got)
	return got
}

func bruteRect(rects []Rect, q Rect) []int {
	var got []int
	for i, r := range rects {
		if r.Touches(q) {
			got = append(got, i)
		}
	}
	return got
}

func brutePoint(rects []Rect, p Point) []int {
	var got []int
	for i, r := range rects {
		if r.Contains(p) {
			got = append(got, i)
		}
	}
	return got
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex()
	if got := collectRect(ix, R(0, 0, 10, 10)); got != nil {
		t.Errorf("empty QueryRect = %v", got)
	}
	if got := collectPoint(ix, Pt(3, 3)); got != nil {
		t.Errorf("empty QueryPoint = %v", got)
	}
}

func TestIndexEdgeTouch(t *testing.T) {
	// Two rects sharing only an edge, one sharing only a corner: the
	// electrical rule counts both as touching.
	ix := NewIndexFrom([]Rect{
		R(0, 0, 10, 10),   // 0
		R(10, 0, 20, 10),  // 1: shares the x=10 edge with 0
		R(10, 10, 20, 20), // 2: shares only the corner (10,10) with 0
		R(30, 30, 40, 40), // 3: far away
	})
	if got := collectRect(ix, R(0, 0, 10, 10)); !sameInts(got, []int{0, 1, 2}) {
		t.Errorf("QueryRect = %v, want [0 1 2]", got)
	}
	if got := collectPoint(ix, Pt(10, 10)); !sameInts(got, []int{0, 1, 2}) {
		t.Errorf("QueryPoint corner = %v, want [0 1 2]", got)
	}
	if got := collectPoint(ix, Pt(35, 35)); !sameInts(got, []int{3}) {
		t.Errorf("QueryPoint = %v, want [3]", got)
	}
}

func TestIndexInsertInvalidates(t *testing.T) {
	ix := NewIndex()
	ix.Insert(R(0, 0, 5, 5))
	if got := collectPoint(ix, Pt(2, 2)); !sameInts(got, []int{0}) {
		t.Fatalf("first query = %v", got)
	}
	// Insert after a build: the grid must rebuild and see the new rect
	// even though it falls outside the first build's bounds.
	id := ix.Insert(R(100, 100, 110, 110))
	if id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if got := collectPoint(ix, Pt(105, 105)); !sameInts(got, []int{1}) {
		t.Errorf("post-insert query = %v, want [1]", got)
	}
}

func TestIndexEarlyStop(t *testing.T) {
	ix := NewIndexFrom([]Rect{R(0, 0, 10, 10), R(0, 0, 10, 10), R(0, 0, 10, 10)})
	calls := 0
	ix.QueryRect(R(0, 0, 10, 10), func(id int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early-stop QueryRect made %d calls", calls)
	}
	calls = 0
	ix.QueryPoint(Pt(5, 5), func(id int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early-stop QueryPoint made %d calls", calls)
	}
}

// TestIndexRandomized cross-checks the grid against the brute-force
// scan it replaces, on rect soups with heavy overlap, degenerate
// (zero-area) rects, and negative coordinates.
func TestIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := rng.Intn(400)-200, rng.Intn(400)-200
			w, h := rng.Intn(60), rng.Intn(60)
			rects[i] = R(x, y, x+w, y+h)
		}
		ix := NewIndexFrom(rects)
		for q := 0; q < 50; q++ {
			x, y := rng.Intn(500)-250, rng.Intn(500)-250
			qr := R(x, y, x+rng.Intn(100), y+rng.Intn(100))
			if got, want := collectRect(ix, qr), bruteRect(rects, qr); !sameInts(got, want) {
				t.Fatalf("trial %d: QueryRect(%v) = %v, want %v", trial, qr, got, want)
			}
			p := Pt(x, y)
			if got, want := collectPoint(ix, p), brutePoint(rects, p); !sameInts(got, want) {
				t.Fatalf("trial %d: QueryPoint(%v) = %v, want %v", trial, p, got, want)
			}
		}
	}
}

func BenchmarkIndexQueryRect(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rects := make([]Rect, 10000)
	for i := range rects {
		x, y := rng.Intn(100000), rng.Intn(100000)
		rects[i] = R(x, y, x+rng.Intn(500), y+rng.Intn(500))
	}
	ix := NewIndexFrom(rects)
	ix.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rects[i%len(rects)]
		ix.QueryRect(q, func(int) bool { return true })
	}
}

// TestIndexDegenerateRects: zero-area rectangles (points and lines)
// are legal index entries — they must be found by touching queries and
// by point location on their boundary, and they must not corrupt the
// grid build.
func TestIndexDegenerateRects(t *testing.T) {
	ix := NewIndexFrom([]Rect{
		{Min: Pt(5, 5), Max: Pt(5, 5)},    // a point
		{Min: Pt(0, 10), Max: Pt(20, 10)}, // a horizontal line
		{Min: Pt(3, 0), Max: Pt(3, 30)},   // a vertical line
		R(8, 8, 12, 12),                   // a real rect
	})
	if got := collectPoint(ix, Pt(5, 5)); !sameInts(got, []int{0}) {
		t.Errorf("point rect not located: %v", got)
	}
	if got := collectPoint(ix, Pt(10, 10)); !sameInts(got, []int{1, 3}) {
		t.Errorf("line/rect point location = %v, want [1 3]", got)
	}
	if got := collectRect(ix, R(0, 0, 6, 6)); !sameInts(got, []int{0, 2}) {
		t.Errorf("query touching degenerates = %v, want [0 2]", got)
	}
	// a degenerate QUERY rect works too
	if got := collectRect(ix, Rect{Min: Pt(3, 3), Max: Pt(3, 3)}); !sameInts(got, []int{2}) {
		t.Errorf("degenerate query = %v, want [2]", got)
	}
}

// TestIndexNegativeExtentInput: rectangles built with swapped corners
// (Min > Max) are normalized on insertion, both through Insert and
// NewIndexFrom, so queries see the real extent.
func TestIndexNegativeExtentInput(t *testing.T) {
	swapped := Rect{Min: Pt(10, 20), Max: Pt(0, 0)}
	ix := NewIndex()
	id := ix.Insert(swapped)
	if got := ix.RectOf(id); got != R(0, 0, 10, 20) {
		t.Fatalf("Insert stored %v, want normalized", got)
	}
	if got := collectPoint(ix, Pt(5, 5)); !sameInts(got, []int{0}) {
		t.Errorf("point inside swapped rect = %v", got)
	}
	ix2 := NewIndexFrom([]Rect{swapped, {Min: Pt(-5, -5), Max: Pt(-15, -25)}})
	if got := collectPoint(ix2, Pt(-10, -10)); !sameInts(got, []int{1}) {
		t.Errorf("negative-coordinate swapped rect = %v", got)
	}
	if got := collectRect(ix2, R(-20, -20, 20, 20)); !sameInts(got, []int{0, 1}) {
		t.Errorf("touch query over both = %v", got)
	}
}

// TestIndexAllDegenerate: an index holding only a single point rect
// (zero-extent bounds) still builds and answers.
func TestIndexAllDegenerate(t *testing.T) {
	ix := NewIndexFrom([]Rect{{Min: Pt(7, 7), Max: Pt(7, 7)}})
	ix.Build()
	if got := collectPoint(ix, Pt(7, 7)); !sameInts(got, []int{0}) {
		t.Errorf("lone point rect = %v", got)
	}
	if got := collectPoint(ix, Pt(8, 7)); got != nil {
		t.Errorf("miss reported %v", got)
	}
}

// TestUnionTouching: the shared touch-connectivity helper merges
// exactly the transitively touching groups, matching a brute
// all-pairs union.
func TestUnionTouching(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := rng.Intn(100), rng.Intn(100)
			rects[i] = R(x, y, x+rng.Intn(20), y+rng.Intn(20))
		}
		ix := NewIndexFrom(rects)
		uf := NewUnionFind(n)
		ix.UnionTouching(uf)
		brute := NewUnionFind(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rects[i].Touches(rects[j]) {
					brute.Union(i, j)
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uf.Find(i) == uf.Find(j)) != (brute.Find(i) == brute.Find(j)) {
					t.Fatalf("trial %d: components disagree for %d,%d", trial, i, j)
				}
			}
		}
	}
}
