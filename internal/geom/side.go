package geom

import "fmt"

// Side identifies which edge of a cell's bounding box a connector lies
// on. Riot's connection checking requires joined connectors to be
// "opposed: that is, that they connect top to bottom or left to right",
// so sides are first-class values that transform with instances.
type Side uint8

// The five side values. SideNone marks a connector that lies in the
// interior of its cell (legal for composition cells before their
// connectors are "brought out" to the edge).
const (
	SideNone Side = iota
	SideLeft
	SideRight
	SideBottom
	SideTop
)

var sideNames = [...]string{"none", "left", "right", "bottom", "top"}

// String returns the side's name.
func (s Side) String() string {
	if int(s) < len(sideNames) {
		return sideNames[s]
	}
	return fmt.Sprintf("Side(%d)", uint8(s))
}

// ParseSide converts a name produced by String back to a Side.
func ParseSide(str string) (Side, error) {
	for i, n := range sideNames {
		if n == str {
			return Side(i), nil
		}
	}
	return SideNone, fmt.Errorf("geom: unknown side %q", str)
}

// sideVec gives the outward normal of each side.
var sideVec = [...]Point{
	SideNone:   {0, 0},
	SideLeft:   {-1, 0},
	SideRight:  {1, 0},
	SideBottom: {0, -1},
	SideTop:    {0, 1},
}

// Normal returns the outward unit normal of the side (zero for
// SideNone).
func (s Side) Normal() Point { return sideVec[s] }

// sideFromVec inverts Normal.
func sideFromVec(v Point) Side {
	for i, w := range sideVec {
		if v == w {
			return Side(i)
		}
	}
	return SideNone
}

// Opposite returns the side facing s across a cell: left<->right,
// bottom<->top.
func (s Side) Opposite() Side {
	switch s {
	case SideLeft:
		return SideRight
	case SideRight:
		return SideLeft
	case SideBottom:
		return SideTop
	case SideTop:
		return SideBottom
	}
	return SideNone
}

// Opposed reports whether connectors on sides s and t can legally be
// joined: they must face each other (top to bottom or left to right).
func Opposed(s, t Side) bool {
	return s != SideNone && t == s.Opposite()
}

// Horizontal reports whether the side is left or right.
func (s Side) Horizontal() bool { return s == SideLeft || s == SideRight }

// Vertical reports whether the side is bottom or top.
func (s Side) Vertical() bool { return s == SideBottom || s == SideTop }

// Transform returns the side that s becomes when its cell is placed
// with orientation o. For example a top-side connector on a cell
// rotated 90 degrees counterclockwise faces left.
func (s Side) Transform(o Orient) Side {
	return sideFromVec(o.Apply(s.Normal()))
}

// SideOf classifies where p lies on the boundary of r. Corners resolve
// to the vertical sides (left/right) first. Points not on the boundary
// return SideNone.
func SideOf(r Rect, p Point) Side {
	if !r.Contains(p) {
		return SideNone
	}
	switch {
	case p.X == r.Min.X:
		return SideLeft
	case p.X == r.Max.X:
		return SideRight
	case p.Y == r.Min.Y:
		return SideBottom
	case p.Y == r.Max.Y:
		return SideTop
	}
	return SideNone
}
