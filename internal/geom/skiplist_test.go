package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet mirrors SweepSet with the ordered slice the skip list
// replaced.
type refSet struct{ entries [][2]int }

func (r *refSet) insert(key, id int) {
	at := sort.Search(len(r.entries), func(k int) bool {
		e := r.entries[k]
		return !sweepLess(e[0], e[1], key, id)
	})
	r.entries = append(r.entries, [2]int{})
	copy(r.entries[at+1:], r.entries[at:])
	r.entries[at] = [2]int{key, id}
}

func (r *refSet) delete(key, id int) {
	at := sort.Search(len(r.entries), func(k int) bool {
		e := r.entries[k]
		return !sweepLess(e[0], e[1], key, id)
	})
	if at < len(r.entries) && r.entries[at] == [2]int{key, id} {
		r.entries = append(r.entries[:at], r.entries[at+1:]...)
	}
}

func (r *refSet) prefix(maxKey int) []int {
	var out []int
	for _, e := range r.entries {
		if e[0] > maxKey {
			break
		}
		out = append(out, e[1])
	}
	return out
}

// TestSweepSetMatchesOrderedSlice drives the skip list and the ordered
// slice through the same random insert/delete/visit churn and demands
// identical prefix walks throughout.
func TestSweepSetMatchesOrderedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSweepSet()
	ref := &refSet{}
	type entry struct{ key, id int }
	var live []entry
	nextID := 0
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // insert
			e := entry{rng.Intn(50), nextID}
			nextID++
			s.Insert(e.key, e.id)
			ref.insert(e.key, e.id)
			live = append(live, e)
		case op < 8: // delete a live entry
			k := rng.Intn(len(live))
			e := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			s.Delete(e.key, e.id)
			ref.delete(e.key, e.id)
		default: // delete an absent entry (no-op both sides)
			s.Delete(rng.Intn(50), -1)
			ref.delete(rng.Intn(50), -1)
		}
		if s.Len() != len(ref.entries) {
			t.Fatalf("step %d: Len=%d want %d", step, s.Len(), len(ref.entries))
		}
		if step%17 == 0 {
			maxKey := rng.Intn(60) - 5
			var got []int
			s.VisitPrefix(maxKey, func(id int) bool { got = append(got, id); return true })
			want := ref.prefix(maxKey)
			if len(got) != len(want) {
				t.Fatalf("step %d: prefix(%d) len %d want %d", step, maxKey, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: prefix(%d)[%d] = %d want %d", step, maxKey, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSweepSetVisitStop checks early termination.
func TestSweepSetVisitStop(t *testing.T) {
	s := NewSweepSet()
	for i := 0; i < 10; i++ {
		s.Insert(i, i)
	}
	var got []int
	s.VisitPrefix(100, func(id int) bool {
		got = append(got, id)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("stop walk got %v", got)
	}
}

// BenchmarkSweepSetCrossover compares the skip list against the
// ordered-slice active set across set sizes: the slice wins on tiny
// sets (no allocation, pure memmove), the skip list on large ones —
// the crossover sweepUnion's activeSliceMax guards.
func BenchmarkSweepSetCrossover(b *testing.B) {
	for _, n := range []int{8, 64, 512, 4096} {
		keys := make([]int, n)
		rng := rand.New(rand.NewSource(3))
		for i := range keys {
			keys[i] = rng.Intn(1 << 20)
		}
		b.Run(fmtInt("skiplist", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSweepSet()
				for id, k := range keys {
					s.Insert(k, id)
				}
				for id, k := range keys {
					s.Delete(k, id)
				}
			}
		})
		b.Run(fmtInt("slice", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &refSet{}
				for id, k := range keys {
					r.insert(k, id)
				}
				for id, k := range keys {
					r.delete(k, id)
				}
			}
		})
	}
}

func fmtInt(name string, n int) string {
	return name + "/" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
