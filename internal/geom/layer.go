package geom

import "fmt"

// Layer identifies a mask layer. Layers carry the CIF layer name used
// for interchange; the standard nMOS set from Mead & Conway (the process
// every Caltech tool of the era targeted) is predeclared, but arbitrary
// layers read from CIF files are representable too.
type Layer string

// The standard nMOS CIF layers.
const (
	LayerNone Layer = ""   // no layer / unknown
	ND        Layer = "ND" // diffusion
	NP        Layer = "NP" // polysilicon
	NC        Layer = "NC" // contact cut
	NM        Layer = "NM" // metal
	NI        Layer = "NI" // depletion-mode implant
	NB        Layer = "NB" // buried contact
	NG        Layer = "NG" // overglass opening
)

// KnownLayers lists the predeclared nMOS layers in drawing order
// (bottom of the wafer first): diffusion, implant, buried, poly,
// contact, metal, glass.
var KnownLayers = []Layer{ND, NI, NB, NP, NC, NM, NG}

// Valid reports whether the layer is non-empty and consists of at most
// four characters, the CIF limit for layer names.
func (l Layer) Valid() bool { return l != "" && len(l) <= 4 }

// Routable reports whether wires may be drawn on the layer. Only
// diffusion, poly and metal carry signals between cells in this system;
// the river router refuses other layers.
func (l Layer) Routable() bool { return l == ND || l == NP || l == NM }

// String returns the CIF name of the layer.
func (l Layer) String() string {
	if l == LayerNone {
		return "(none)"
	}
	return string(l)
}

// Color is a display color index. The palette mirrors the four-pen
// HP 7221A plotter and the "Charles" color terminal conventions: each
// mask layer has a fixed color so "the size and color of the connector
// crosses indicates width and layer".
type Color uint8

// The display palette. Indices 1-4 correspond to the plotter's four
// pens.
const (
	ColorBlack  Color = iota // background / text
	ColorRed                 // pen 1: polysilicon
	ColorGreen               // pen 2: diffusion
	ColorBlue                // pen 3: metal
	ColorYellow              // pen 4: implant, highlights
	ColorCyan                // buried contact
	ColorMagenta             // glass
	ColorWhite               // contacts, outlines, menu text
	NumColors
)

var colorNames = [NumColors]string{
	"black", "red", "green", "blue", "yellow", "cyan", "magenta", "white",
}

// String returns the color's conventional name.
func (c Color) String() string {
	if int(c) < len(colorNames) {
		return colorNames[c]
	}
	return fmt.Sprintf("Color(%d)", uint8(c))
}

// RGB returns an 8-bit-per-channel rendering of the palette entry, used
// when the framebuffer is written out as a PPM image.
func (c Color) RGB() (r, g, b uint8) {
	switch c {
	case ColorRed:
		return 0xE0, 0x20, 0x20
	case ColorGreen:
		return 0x20, 0xC0, 0x20
	case ColorBlue:
		return 0x40, 0x60, 0xFF
	case ColorYellow:
		return 0xE0, 0xD0, 0x20
	case ColorCyan:
		return 0x20, 0xC0, 0xC0
	case ColorMagenta:
		return 0xC0, 0x40, 0xC0
	case ColorWhite:
		return 0xF0, 0xF0, 0xF0
	default:
		return 0x00, 0x00, 0x00
	}
}

// layerColors maps each predeclared layer to its display color.
var layerColors = map[Layer]Color{
	ND: ColorGreen,
	NP: ColorRed,
	NC: ColorWhite,
	NM: ColorBlue,
	NI: ColorYellow,
	NB: ColorCyan,
	NG: ColorMagenta,
}

// LayerColor returns the display color for a layer; unknown layers draw
// in white so they remain visible.
func LayerColor(l Layer) Color {
	if c, ok := layerColors[l]; ok {
		return c
	}
	return ColorWhite
}

// PlotterPen returns the HP 7221A pen number (1-4) used to plot the
// layer. The four-color plotter folds the palette: poly and glass share
// the red pen, diffusion and buried share green, metal shares blue with
// nothing, and everything else uses the yellow pen slot which is loaded
// with a black pen for outlines in practice.
func PlotterPen(l Layer) int {
	switch LayerColor(l) {
	case ColorRed, ColorMagenta:
		return 1
	case ColorGreen, ColorCyan:
		return 2
	case ColorBlue:
		return 3
	default:
		return 4
	}
}
