package geom

// UnionFind is a union-by-rank, path-compressing disjoint-set forest —
// the companion to Index for connectivity workloads: once a spatial
// query has found the rectangles that touch, UnionFind merges them
// into components (electrical nets, merged mask regions). Find is
// effectively O(1) amortized, and union by rank keeps the forest
// shallow on adversarial union orders. The circuit extractor and the
// design-rule checker both build on it.
type UnionFind struct {
	parent []int
	rank   []uint8
}

// NewUnionFind returns a forest of n singleton sets, labelled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &UnionFind{p, make([]uint8, n)}
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// UnionTouching merges, into uf, the sets of every pair of indexed
// rectangles that touch (shared edges and corners included) — the
// "edge-adjacent material on one layer is connected" rule stated once
// for every consumer. uf must hold at least Len elements; each pair is
// discovered once, from its lower id.
func (ix *Index) UnionTouching(uf *UnionFind) {
	for i, r := range ix.rects {
		ix.QueryRect(r, func(j int) bool {
			if j > i {
				uf.Union(i, j)
			}
			return true
		})
	}
}

// Union merges the sets holding a and b.
func (u *UnionFind) Union(a, b int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	switch {
	case u.rank[ra] < u.rank[rb]:
		u.parent[ra] = rb
	case u.rank[ra] > u.rank[rb]:
		u.parent[rb] = ra
	default:
		u.parent[rb] = ra
		u.rank[ra]++
	}
}
