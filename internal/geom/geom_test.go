package geom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, -4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, -6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Neg(); got != Pt(-3, 4) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Scale(3); got != Pt(9, -12) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(8, 6).Div(2); got != Pt(4, 3) {
		t.Errorf("Div = %v", got)
	}
	if d := p.ManhattanDist(q); d != 10 {
		t.Errorf("ManhattanDist = %d, want 10", d)
	}
	if s := p.String(); s != "(3,-4)" {
		t.Errorf("String = %q", s)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if r != RectFromPoints(Pt(5, 7), Pt(1, 2)) {
		t.Error("RectFromPoints disagrees with R")
	}
	if r != r.Canon() {
		t.Error("Canon changed an already-normalized rect")
	}
}

func TestRectMetrics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if r.W() != 10 || r.H() != 4 || r.Area() != 40 {
		t.Errorf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if r.Center() != Pt(5, 2) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported Empty")
	}
	if !R(3, 3, 3, 9).Empty() {
		t.Error("zero-width rect not Empty")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 8, 3)
	u := a.Union(b)
	if u != R(0, 0, 8, 4) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if i != R(2, 2, 4, 3) {
		t.Errorf("Intersect = %v", i)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false for overlapping rects")
	}
	disjoint := R(100, 100, 101, 101)
	if !a.Intersect(disjoint).Empty() {
		t.Error("Intersect of disjoint rects not empty")
	}
	if a.Overlaps(disjoint) {
		t.Error("Overlaps = true for disjoint rects")
	}
	// union with the zero rect is identity
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("zero.Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union(zero) = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 0}, {0, 5}, {5, 5}} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Point{{-1, 0}, {11, 5}, {5, -1}, {5, 11}} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
	if !r.ContainsRect(R(1, 1, 9, 9)) {
		t.Error("ContainsRect inner = false")
	}
	if r.ContainsRect(R(1, 1, 11, 9)) {
		t.Error("ContainsRect overflowing = true")
	}
}

func TestRectInsetTranslate(t *testing.T) {
	r := R(0, 0, 10, 10)
	if got := r.Inset(2); got != R(2, 2, 8, 8) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Translate(Pt(3, -1)); got != R(3, -1, 13, 9) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.UnionPoint(Pt(20, 5)); got != R(0, 0, 20, 10) {
		t.Errorf("UnionPoint = %v", got)
	}
}

func TestOrientMatrixRoundTrip(t *testing.T) {
	for o := Orient(0); o < NumOrients; o++ {
		a, b, c, d := o.Matrix()
		if det := a*d - b*c; det != 1 && det != -1 {
			t.Errorf("%v determinant = %d", o, det)
		}
		if got := orientFromMatrix(a, b, c, d); got != o {
			t.Errorf("round trip %v -> %v", o, got)
		}
	}
}

func TestOrientApply(t *testing.T) {
	p := Pt(2, 1)
	cases := []struct {
		o    Orient
		want Point
	}{
		{R0, Pt(2, 1)},
		{R90, Pt(-1, 2)},
		{R180, Pt(-2, -1)},
		{R270, Pt(1, -2)},
		{MX, Pt(-2, 1)},
		{MXR180, Pt(2, -1)},
	}
	for _, c := range cases {
		if got := c.o.Apply(p); got != c.want {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.o, p, got, c.want)
		}
	}
}

func TestOrientGroupLaws(t *testing.T) {
	for o := Orient(0); o < NumOrients; o++ {
		if got := o.Then(o.Inverse()); got != R0 {
			t.Errorf("%v.Then(inv) = %v", o, got)
		}
		if got := o.Inverse().Then(o); got != R0 {
			t.Errorf("inv.Then(%v) = %v", o, got)
		}
		if got := o.Then(R0); got != o {
			t.Errorf("%v.Then(R0) = %v", o, got)
		}
		for q := Orient(0); q < NumOrients; q++ {
			// composition law: (o then q)(p) == q(o(p))
			p := Pt(7, 3)
			if got, want := o.Then(q).Apply(p), q.Apply(o.Apply(p)); got != want {
				t.Errorf("(%v then %v)(%v) = %v, want %v", o, q, p, got, want)
			}
		}
	}
}

func TestOrientGroupClosureAssociativity(t *testing.T) {
	for a := Orient(0); a < NumOrients; a++ {
		for b := Orient(0); b < NumOrients; b++ {
			for c := Orient(0); c < NumOrients; c++ {
				if a.Then(b).Then(c) != a.Then(b.Then(c)) {
					t.Fatalf("associativity fails at %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestOrientMirrored(t *testing.T) {
	for o := Orient(0); o < NumOrients; o++ {
		want := o >= MX
		if o.Mirrored() != want {
			t.Errorf("%v.Mirrored = %v", o, o.Mirrored())
		}
	}
}

func TestParseOrient(t *testing.T) {
	for o := Orient(0); o < NumOrients; o++ {
		got, err := ParseOrient(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOrient(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseOrient("R45"); err == nil {
		t.Error("ParseOrient accepted R45")
	}
}

func TestTransformApply(t *testing.T) {
	tr := MakeTransform(R90, Pt(10, 0))
	if got := tr.Apply(Pt(2, 1)); got != Pt(9, 2) {
		t.Errorf("Apply = %v", got)
	}
	r := tr.ApplyRect(R(0, 0, 4, 2))
	if r != R(8, 0, 10, 4) {
		t.Errorf("ApplyRect = %v", r)
	}
}

func TestTransformComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		t1 := Transform{Orient(rng.Intn(8)), Pt(rng.Intn(100)-50, rng.Intn(100)-50)}
		t2 := Transform{Orient(rng.Intn(8)), Pt(rng.Intn(100)-50, rng.Intn(100)-50)}
		p := Pt(rng.Intn(100)-50, rng.Intn(100)-50)
		if got, want := t1.Then(t2).Apply(p), t2.Apply(t1.Apply(p)); got != want {
			t.Fatalf("compose mismatch: %v vs %v", got, want)
		}
		if got := t1.Then(t1.Inverse()).Apply(p); got != p {
			t.Fatalf("inverse mismatch: %v vs %v", got, p)
		}
		if got := t1.Inverse().Apply(t1.Apply(p)); got != p {
			t.Fatalf("inverse apply mismatch: %v vs %v", got, p)
		}
	}
}

func TestTransformTranslated(t *testing.T) {
	tr := MakeTransform(R180, Pt(5, 5)).Translated(Pt(1, 2))
	if tr.D != Pt(6, 7) || tr.O != R180 {
		t.Errorf("Translated = %v", tr)
	}
	if Translate(Pt(3, 4)).Apply(Pt(1, 1)) != Pt(4, 5) {
		t.Error("Translate misapplied")
	}
}

// Property: transforms preserve Manhattan distance (they are rigid up to
// the axis swap, which preserves L1 length for axis-aligned moves).
func TestTransformPreservesManhattan(t *testing.T) {
	f := func(ox uint8, dx, dy, px, py, qx, qy int16) bool {
		tr := Transform{Orient(ox % 8), Pt(int(dx), int(dy))}
		p, q := Pt(int(px), int(py)), Pt(int(qx), int(qy))
		return tr.Apply(p).ManhattanDist(tr.Apply(q)) == p.ManhattanDist(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ApplyRect preserves area.
func TestTransformPreservesArea(t *testing.T) {
	f := func(ox uint8, dx, dy, x0, y0, x1, y1 int16) bool {
		tr := Transform{Orient(ox % 8), Pt(int(dx), int(dy))}
		r := R(int(x0), int(y0), int(x1), int(y1))
		return tr.ApplyRect(r).Area() == r.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative, associative and idempotent on
// non-degenerate rects.
func TestRectUnionProperties(t *testing.T) {
	gen := func(vals []reflect.Value, rng *rand.Rand) {
		for i := range vals {
			r := R(rng.Intn(50), rng.Intn(50), 51+rng.Intn(50), 51+rng.Intn(50))
			vals[i] = reflect.ValueOf(r)
		}
	}
	f := func(a, b, c Rect) bool {
		return a.Union(b) == b.Union(a) &&
			a.Union(b).Union(c) == a.Union(b.Union(c)) &&
			a.Union(a) == a &&
			a.Union(b).ContainsRect(a) && a.Union(b).ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{Values: gen}); err != nil {
		t.Error(err)
	}
}

func TestSideBasics(t *testing.T) {
	if SideLeft.Opposite() != SideRight || SideTop.Opposite() != SideBottom {
		t.Error("Opposite wrong")
	}
	if !Opposed(SideLeft, SideRight) || !Opposed(SideTop, SideBottom) {
		t.Error("Opposed = false for opposed sides")
	}
	if Opposed(SideLeft, SideTop) || Opposed(SideNone, SideNone) {
		t.Error("Opposed = true for non-opposed sides")
	}
	if !SideLeft.Horizontal() || SideLeft.Vertical() {
		t.Error("left classification wrong")
	}
	if !SideTop.Vertical() || SideTop.Horizontal() {
		t.Error("top classification wrong")
	}
}

func TestSideTransform(t *testing.T) {
	cases := []struct {
		s    Side
		o    Orient
		want Side
	}{
		{SideTop, R0, SideTop},
		{SideTop, R90, SideLeft},
		{SideTop, R180, SideBottom},
		{SideTop, R270, SideRight},
		{SideLeft, MX, SideRight},
		{SideTop, MX, SideTop},
		{SideTop, MXR180, SideBottom},
		{SideNone, R90, SideNone},
	}
	for _, c := range cases {
		if got := c.s.Transform(c.o); got != c.want {
			t.Errorf("%v.Transform(%v) = %v, want %v", c.s, c.o, got, c.want)
		}
	}
}

// Property: transforming a side by o and then by o.Inverse() is the
// identity for all sides and orientations.
func TestSideTransformInverse(t *testing.T) {
	for s := SideNone; s <= SideTop; s++ {
		for o := Orient(0); o < NumOrients; o++ {
			if got := s.Transform(o).Transform(o.Inverse()); got != s {
				t.Errorf("%v.Transform(%v) round trip = %v", s, o, got)
			}
		}
	}
}

func TestSideOf(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want Side
	}{
		{Pt(0, 5), SideLeft},
		{Pt(10, 5), SideRight},
		{Pt(5, 0), SideBottom},
		{Pt(5, 10), SideTop},
		{Pt(5, 5), SideNone},
		{Pt(-3, 5), SideNone},
		{Pt(0, 0), SideLeft}, // corner resolves to vertical side
	}
	for _, c := range cases {
		if got := SideOf(r, c.p); got != c.want {
			t.Errorf("SideOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestParseSide(t *testing.T) {
	for s := SideNone; s <= SideTop; s++ {
		got, err := ParseSide(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSide(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSide("diagonal"); err == nil {
		t.Error("ParseSide accepted garbage")
	}
}

func TestLayerBasics(t *testing.T) {
	if !NM.Valid() || LayerNone.Valid() {
		t.Error("Valid wrong")
	}
	if !NM.Routable() || !NP.Routable() || !ND.Routable() {
		t.Error("signal layers not routable")
	}
	if NC.Routable() || NI.Routable() {
		t.Error("non-signal layer routable")
	}
	if Layer("TOOLONG").Valid() {
		t.Error("over-long layer valid")
	}
}

func TestLayerColors(t *testing.T) {
	if LayerColor(NP) != ColorRed || LayerColor(ND) != ColorGreen || LayerColor(NM) != ColorBlue {
		t.Error("canonical layer colors wrong")
	}
	if LayerColor(Layer("XX")) != ColorWhite {
		t.Error("unknown layer should draw white")
	}
	for _, l := range KnownLayers {
		pen := PlotterPen(l)
		if pen < 1 || pen > 4 {
			t.Errorf("PlotterPen(%v) = %d out of range", l, pen)
		}
	}
}

func TestColorRGBDistinct(t *testing.T) {
	seen := map[[3]uint8]Color{}
	for c := Color(0); c < NumColors; c++ {
		r, g, b := c.RGB()
		key := [3]uint8{r, g, b}
		if prev, dup := seen[key]; dup {
			t.Errorf("colors %v and %v share RGB %v", prev, c, key)
		}
		seen[key] = c
		if c.String() == "" {
			t.Errorf("color %d has empty name", c)
		}
	}
}
