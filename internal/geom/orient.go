package geom

import "fmt"

// Orient is one of the eight orientations an instance may take: the four
// rotations by multiples of 90 degrees, each optionally preceded by a
// mirror about the Y axis (x -> -x, CIF's "M X"). The eight values form
// the dihedral group D4, which is exactly the set of placements Riot's
// CREATE command offers ("rotation by multiples of 90 degrees, and
// mirroring of the instance").
type Orient uint8

// The eight orientations. MX..MXR270 apply the mirror first, then the
// rotation.
const (
	R0     Orient = iota // identity
	R90                  // rotate 90 degrees counterclockwise
	R180                 // rotate 180 degrees
	R270                 // rotate 270 degrees counterclockwise
	MX                   // mirror x -> -x
	MXR90                // mirror, then rotate 90
	MXR180               // mirror, then rotate 180 (equals mirror y -> -y)
	MXR270               // mirror, then rotate 270
)

// NumOrients is the size of the orientation group.
const NumOrients = 8

var orientNames = [NumOrients]string{
	"R0", "R90", "R180", "R270", "MX", "MXR90", "MXR180", "MXR270",
}

// String returns the conventional name of the orientation.
func (o Orient) String() string {
	if int(o) < len(orientNames) {
		return orientNames[o]
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// ParseOrient converts a name produced by String back to an Orient.
func ParseOrient(s string) (Orient, error) {
	for i, n := range orientNames {
		if n == s {
			return Orient(i), nil
		}
	}
	return R0, fmt.Errorf("geom: unknown orientation %q", s)
}

// orientMat holds the 2x2 integer matrix (a b / c d) for each
// orientation: x' = a*x + b*y, y' = c*x + d*y.
var orientMat = [NumOrients][4]int{
	R0:     {1, 0, 0, 1},
	R90:    {0, -1, 1, 0},
	R180:   {-1, 0, 0, -1},
	R270:   {0, 1, -1, 0},
	MX:     {-1, 0, 0, 1},
	MXR90:  {0, -1, -1, 0},
	MXR180: {1, 0, 0, -1},
	MXR270: {0, 1, 1, 0},
}

// Matrix returns the 2x2 integer matrix entries (a, b, c, d) of o, where
// the transformed coordinates are x' = a*x + b*y and y' = c*x + d*y.
func (o Orient) Matrix() (a, b, c, d int) {
	m := orientMat[o%NumOrients]
	return m[0], m[1], m[2], m[3]
}

// orientFromMatrix inverts Matrix; it panics on a matrix that is not one
// of the eight group elements (cannot happen for products of group
// elements).
func orientFromMatrix(a, b, c, d int) Orient {
	for i, m := range orientMat {
		if m[0] == a && m[1] == b && m[2] == c && m[3] == d {
			return Orient(i)
		}
	}
	panic(fmt.Sprintf("geom: matrix (%d %d / %d %d) is not an orientation", a, b, c, d))
}

// Apply transforms p by the orientation.
func (o Orient) Apply(p Point) Point {
	a, b, c, d := o.Matrix()
	return Point{a*p.X + b*p.Y, c*p.X + d*p.Y}
}

// ApplyRect transforms r by the orientation; the result is normalized.
func (o Orient) ApplyRect(r Rect) Rect {
	return RectFromPoints(o.Apply(r.Min), o.Apply(r.Max))
}

// Then returns the orientation equivalent to applying o first and then
// q: (q.Then-composed).Apply(p) == q.Apply(o.Apply(p)).
func (o Orient) Then(q Orient) Orient {
	oa, ob, oc, od := o.Matrix()
	qa, qb, qc, qd := q.Matrix()
	// matrix product Q * O
	return orientFromMatrix(
		qa*oa+qb*oc, qa*ob+qb*od,
		qc*oa+qd*oc, qc*ob+qd*od,
	)
}

// Inverse returns the orientation that undoes o.
func (o Orient) Inverse() Orient {
	a, b, c, d := o.Matrix()
	det := a*d - b*c // +1 or -1 for group elements
	return orientFromMatrix(d*det, -b*det, -c*det, a*det)
}

// Mirrored reports whether o includes a reflection (determinant -1).
func (o Orient) Mirrored() bool {
	a, b, c, d := o.Matrix()
	return a*d-b*c < 0
}

// Transform is a rigid placement: an orientation about the origin
// followed by a translation. It is the "instance transform" the paper
// describes ("an instance represents the contents of a cell placed at a
// given location with a specified orientation").
type Transform struct {
	O Orient
	D Point // translation applied after the orientation
}

// Identity is the do-nothing transform.
var Identity = Transform{}

// Translate returns a pure-translation transform.
func Translate(d Point) Transform { return Transform{R0, d} }

// MakeTransform returns the transform that orients by o and then
// translates by d.
func MakeTransform(o Orient, d Point) Transform { return Transform{o, d} }

// Apply maps p through the transform.
func (t Transform) Apply(p Point) Point { return t.O.Apply(p).Add(t.D) }

// ApplyRect maps r through the transform; the result is normalized.
func (t Transform) ApplyRect(r Rect) Rect {
	return t.O.ApplyRect(r).Translate(t.D)
}

// Then returns the transform equivalent to applying t first, then u.
func (t Transform) Then(u Transform) Transform {
	return Transform{
		O: t.O.Then(u.O),
		D: u.O.Apply(t.D).Add(u.D),
	}
}

// Inverse returns the transform that undoes t.
func (t Transform) Inverse() Transform {
	inv := t.O.Inverse()
	return Transform{inv, inv.Apply(t.D).Neg()}
}

// Translated returns t with an additional translation by d applied
// afterwards.
func (t Transform) Translated(d Point) Transform {
	return Transform{t.O, t.D.Add(d)}
}

// String renders the transform as "O+(x,y)".
func (t Transform) String() string {
	return fmt.Sprintf("%s+%s", t.O, t.D)
}
