// Package geom provides the integer geometry kernel used throughout the
// Riot chip-assembly system: points, rectangles, the eight-element
// orientation group (rotations by multiples of 90 degrees combined with
// mirroring), affine placement transforms, mask layers and cell-edge
// sides.
//
// All coordinates are integers. By convention the design unit is the
// centimicron (0.01 micrometre), matching the Caltech Intermediate Form;
// cells authored in lambda-based symbolic form are scaled to centimicrons
// when they are converted to geometry. Integer arithmetic keeps every
// placement, abutment and routing operation exact, which is what lets
// Riot "guarantee that connections are made correctly".
//
// Beyond the primitives, the package provides Index, a uniform-grid
// spatial index over rectangle sets that turns the system's hot
// geometric queries — rectangle-touch enumeration and point location —
// from linear scans into expected constant-time bin lookups. The
// circuit extractor and the display's viewport culling both build on
// it.
package geom

import "fmt"

// Point is a location or displacement in the integer design plane.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k int) Point { return Point{p.X * k, p.Y * k} }

// Div returns p with both coordinates divided by k (integer division).
func (p Point) Div(k int) Point { return Point{p.X / k, p.Y / k} }

// Eq reports whether p and q are the same point.
func (p Point) Eq(q Point) bool { return p == q }

// ManhattanDist returns |p.X-q.X| + |p.Y-q.Y|, the wire-length metric
// used by the river router.
func (p Point) ManhattanDist(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. A Rect is normalized when
// Min.X <= Max.X and Min.Y <= Max.Y; the constructors always return
// normalized rectangles. The zero Rect is the empty rectangle at the
// origin.
type Rect struct {
	Min, Max Point
}

// R returns the normalized rectangle with the given corner coordinates.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectFromPoints returns the normalized rectangle spanned by two corner
// points.
func RectFromPoints(a, b Point) Rect { return R(a.X, a.Y, b.X, b.Y) }

// Canon returns the normalized form of r.
func (r Rect) Canon() Rect { return R(r.Min.X, r.Min.Y, r.Max.X, r.Max.Y) }

// W returns the width of r.
func (r Rect) W() int { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() int { return r.Max.Y - r.Min.Y }

// Area returns the area of r. Degenerate (zero width or height)
// rectangles have zero area.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether r encloses no points (zero or negative extent in
// either axis).
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Center returns the center of r, rounded toward Min.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Min.Add(d), r.Max.Add(d)}
}

// Union returns the smallest rectangle containing both r and s. Empty
// rectangles are treated as identity elements.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() && r == (Rect{}) {
		return s
	}
	if s.Empty() && s == (Rect{}) {
		return r
	}
	return Rect{
		Point{min(r.Min.X, s.Min.X), min(r.Min.Y, s.Min.Y)},
		Point{max(r.Max.X, s.Max.X), max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(Rect{p, p})
}

// Intersect returns the intersection of r and s; the result is Empty if
// they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	t := Rect{
		Point{max(r.Min.X, s.Min.X), max(r.Min.Y, s.Min.Y)},
		Point{min(r.Max.X, s.Max.X), min(r.Max.Y, s.Max.Y)},
	}
	if t.Min.X > t.Max.X || t.Min.Y > t.Max.Y {
		return Rect{}
	}
	return t
}

// Overlaps reports whether r and s share any interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Touches reports whether r and s share any point, including mere
// edge or corner contact. On a single mask layer, touching material is
// electrically connected.
func (r Rect) Touches(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Contains reports whether p lies inside r or on its boundary.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r (boundaries may
// touch).
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Inset returns r shrunk by d on every side (grown if d is negative).
func (r Rect) Inset(d int) Rect {
	return R(r.Min.X+d, r.Min.Y+d, r.Max.X-d, r.Max.Y-d)
}

// String renders the rectangle as "[x0,y0 x1,y1]".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
