package geom

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestIndexCloneConcurrentQueries runs many goroutines querying clones
// of one built index and checks every clone sees the full answer set
// (run under -race to prove the visit markers are private).
func TestIndexCloneConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex()
	var rects []Rect
	for i := 0; i < 500; i++ {
		x, y := rng.Intn(1000), rng.Intn(1000)
		r := R(x, y, x+1+rng.Intn(40), y+1+rng.Intn(40))
		rects = append(rects, r)
		ix.Insert(r)
	}
	ix.Build()
	q := R(200, 200, 700, 700)
	var want []int
	for id, r := range rects {
		if r.Touches(q) {
			want = append(want, id)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := ix.Clone()
			for rep := 0; rep < 50; rep++ {
				var got []int
				cl.QueryRect(q, func(id int) bool { got = append(got, id); return true })
				sort.Ints(got)
				if len(got) != len(want) {
					errs <- "wrong answer size"
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- "wrong answer"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
