package raster

import (
	"bytes"
	"strings"
	"testing"

	"riot/internal/geom"
)

func TestSetAtClip(t *testing.T) {
	im := New(10, 10)
	im.Set(3, 4, geom.ColorRed)
	if im.At(3, 4) != geom.ColorRed {
		t.Error("Set/At failed")
	}
	// out-of-range access must not panic or write
	im.Set(-1, 0, geom.ColorRed)
	im.Set(10, 10, geom.ColorRed)
	if im.At(-1, 0) != geom.ColorBlack || im.At(100, 100) != geom.ColorBlack {
		t.Error("out-of-range reads not black")
	}
}

func TestClearAndCount(t *testing.T) {
	im := New(4, 4)
	im.Clear(geom.ColorBlue)
	if im.CountColor(geom.ColorBlue) != 16 {
		t.Errorf("count = %d", im.CountColor(geom.ColorBlue))
	}
}

func TestLines(t *testing.T) {
	im := New(20, 20)
	im.HLine(2, 8, 5, geom.ColorGreen)
	for x := 2; x <= 8; x++ {
		if im.At(x, 5) != geom.ColorGreen {
			t.Errorf("HLine missing at %d", x)
		}
	}
	im.VLine(3, 9, 2, geom.ColorRed) // reversed order
	for y := 2; y <= 9; y++ {
		if im.At(3, y) != geom.ColorRed {
			t.Errorf("VLine missing at %d", y)
		}
	}
	// diagonal Bresenham hits both endpoints
	im.Line(geom.Pt(0, 0), geom.Pt(10, 7), geom.ColorWhite)
	if im.At(0, 0) != geom.ColorWhite || im.At(10, 7) != geom.ColorWhite {
		t.Error("Line endpoints missing")
	}
}

func TestRectAndFill(t *testing.T) {
	im := New(20, 20)
	r := geom.R(2, 3, 10, 8)
	im.Rect(r, geom.ColorWhite)
	if im.At(2, 3) != geom.ColorWhite || im.At(10, 8) != geom.ColorWhite {
		t.Error("Rect corners missing")
	}
	if im.At(5, 5) != geom.ColorBlack {
		t.Error("Rect filled interior")
	}
	im.FillRect(geom.R(12, 12, 15, 15), geom.ColorRed)
	if im.CountColor(geom.ColorRed) != 16 {
		t.Errorf("FillRect painted %d pixels", im.CountColor(geom.ColorRed))
	}
}

func TestCross(t *testing.T) {
	im := New(21, 21)
	im.Cross(geom.Pt(10, 10), 3, geom.ColorYellow)
	if im.At(10, 10) != geom.ColorYellow {
		t.Error("cross center missing")
	}
	if im.At(7, 7) != geom.ColorYellow || im.At(13, 7) != geom.ColorYellow {
		t.Error("cross arms missing")
	}
}

func TestTextRenders(t *testing.T) {
	im := New(120, 12)
	end := im.Text(1, 1, "RIOT 1982", geom.ColorWhite)
	if end != 1+TextWidth("RIOT 1982") {
		t.Errorf("advance = %d", end)
	}
	if im.CountColor(geom.ColorWhite) == 0 {
		t.Fatal("no pixels rendered")
	}
	// distinct glyphs are distinct pixel patterns
	a, b := New(8, 8), New(8, 8)
	a.Text(0, 0, "A", geom.ColorWhite)
	b.Text(0, 0, "B", geom.ColorWhite)
	if bytes.Equal(colorsOf(a), colorsOf(b)) {
		t.Error("A and B render identically")
	}
	// lowercase folds to uppercase
	lower := New(8, 8)
	lower.Text(0, 0, "a", geom.ColorWhite)
	if !bytes.Equal(colorsOf(a), colorsOf(lower)) {
		t.Error("lowercase not folded")
	}
	// unknown glyphs render as a block, not nothing
	u := New(8, 8)
	u.Text(0, 0, "\x01", geom.ColorWhite)
	if u.CountColor(geom.ColorWhite) != 35 {
		t.Errorf("unknown glyph = %d pixels, want full 5x7 block", u.CountColor(geom.ColorWhite))
	}
}

func colorsOf(im *Image) []byte {
	out := make([]byte, len(im.Pix))
	for i, p := range im.Pix {
		out[i] = byte(p)
	}
	return out
}

func TestAllGlyphsHavePixels(t *testing.T) {
	for r := range font {
		if r == ' ' {
			continue
		}
		im := New(8, 8)
		im.Text(0, 0, string(r), geom.ColorWhite)
		if im.CountColor(geom.ColorWhite) == 0 {
			t.Errorf("glyph %q renders empty", r)
		}
	}
}

func TestWritePPM(t *testing.T) {
	im := New(3, 2)
	im.Set(0, 0, geom.ColorRed)
	var b bytes.Buffer
	if err := im.WritePPM(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.HasPrefix(s, "P6\n3 2\n255\n") {
		t.Errorf("header wrong: %q", s[:20])
	}
	if b.Len() != len("P6\n3 2\n255\n")+3*2*3 {
		t.Errorf("size = %d", b.Len())
	}
	// first pixel is red
	body := b.Bytes()[len("P6\n3 2\n255\n"):]
	r, g, bl := geom.ColorRed.RGB()
	if body[0] != r || body[1] != g || body[2] != bl {
		t.Errorf("pixel = %v", body[:3])
	}
}

func TestNewClampsSize(t *testing.T) {
	im := New(0, -5)
	if im.W < 1 || im.H < 1 {
		t.Error("degenerate image allocated")
	}
}
