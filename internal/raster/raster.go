// Package raster is the frame buffer behind the simulated "Charles"
// color terminal: an indexed-color image with the line, box, cross and
// text primitives the Riot graphics package needs, and a PPM writer
// for screenshots. The original graphics package was 4,000 of Riot's
// 9,000 lines; this one is rather smaller because Go's standard
// library carries more of the weight.
package raster

import (
	"bufio"
	"fmt"
	"io"

	"riot/internal/geom"
)

// Image is an indexed-color frame buffer. Pixel (0,0) is the top-left
// corner; x grows right, y grows down (screen convention — the display
// package flips design-space y).
type Image struct {
	W, H int
	Pix  []geom.Color
}

// New allocates a cleared (black) frame buffer.
func New(w, h int) *Image {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return &Image{W: w, H: h, Pix: make([]geom.Color, w*h)}
}

// In reports whether (x,y) is inside the image.
func (im *Image) In(x, y int) bool {
	return x >= 0 && x < im.W && y >= 0 && y < im.H
}

// Set paints one pixel, clipping silently.
func (im *Image) Set(x, y int, c geom.Color) {
	if im.In(x, y) {
		im.Pix[y*im.W+x] = c
	}
}

// At returns the pixel color at (x,y); out-of-range reads return
// black.
func (im *Image) At(x, y int) geom.Color {
	if !im.In(x, y) {
		return geom.ColorBlack
	}
	return im.Pix[y*im.W+x]
}

// Clear fills the whole image with one color.
func (im *Image) Clear(c geom.Color) {
	for i := range im.Pix {
		im.Pix[i] = c
	}
}

// HLine draws a horizontal run [x0,x1] at y.
func (im *Image) HLine(x0, x1, y int, c geom.Color) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		im.Set(x, y, c)
	}
}

// VLine draws a vertical run [y0,y1] at x.
func (im *Image) VLine(x, y0, y1 int, c geom.Color) {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		im.Set(x, y, c)
	}
}

// Line draws a Bresenham line from a to b.
func (im *Image) Line(a, b geom.Point, c geom.Color) {
	if a.Y == b.Y {
		im.HLine(a.X, b.X, a.Y, c)
		return
	}
	if a.X == b.X {
		im.VLine(a.X, a.Y, b.Y, c)
		return
	}
	dx, dy := abs(b.X-a.X), -abs(b.Y-a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	x, y := a.X, a.Y
	for {
		im.Set(x, y, c)
		if x == b.X && y == b.Y {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

// Rect outlines a rectangle (inclusive corners).
func (im *Image) Rect(r geom.Rect, c geom.Color) {
	im.HLine(r.Min.X, r.Max.X, r.Min.Y, c)
	im.HLine(r.Min.X, r.Max.X, r.Max.Y, c)
	im.VLine(r.Min.X, r.Min.Y, r.Max.Y, c)
	im.VLine(r.Max.X, r.Min.Y, r.Max.Y, c)
}

// FillRect paints a solid rectangle (inclusive corners).
func (im *Image) FillRect(r geom.Rect, c geom.Color) {
	for y := r.Min.Y; y <= r.Max.Y; y++ {
		im.HLine(r.Min.X, r.Max.X, y, c)
	}
}

// Cross draws the x-shaped connector marker of the Riot display: "the
// size and color of the connector crosses indicates width and layer".
func (im *Image) Cross(at geom.Point, size int, c geom.Color) {
	if size < 1 {
		size = 1
	}
	im.Line(geom.Pt(at.X-size, at.Y-size), geom.Pt(at.X+size, at.Y+size), c)
	im.Line(geom.Pt(at.X-size, at.Y+size), geom.Pt(at.X+size, at.Y-size), c)
}

// Text renders a string in the built-in 5x7 font with its top-left
// corner at (x,y). Lowercase letters print as uppercase, like the
// terminals of the era. Returns the x coordinate after the last glyph.
func (im *Image) Text(x, y int, s string, c geom.Color) int {
	for _, r := range s {
		g := glyph(r)
		for col := 0; col < 5; col++ {
			bits := g[col]
			for row := 0; row < 7; row++ {
				if bits&(1<<uint(row)) != 0 {
					im.Set(x+col, y+row, c)
				}
			}
		}
		x += 6
	}
	return x
}

// TextWidth returns the pixel width of a string in the built-in font.
func TextWidth(s string) int { return 6 * len(s) }

// GlyphHeight is the pixel height of the built-in font.
const GlyphHeight = 7

// WritePPM writes the image as a binary PPM (P6) using the standard
// palette.
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, 0, im.W*3)
	for y := 0; y < im.H; y++ {
		buf = buf[:0]
		for x := 0; x < im.W; x++ {
			r, g, b := im.Pix[y*im.W+x].RGB()
			buf = append(buf, r, g, b)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CountColor returns how many pixels carry the given color — used by
// tests and the display self-checks.
func (im *Image) CountColor(c geom.Color) int {
	n := 0
	for _, p := range im.Pix {
		if p == c {
			n++
		}
	}
	return n
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
