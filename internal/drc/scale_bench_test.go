package drc

import (
	"fmt"
	"testing"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

func benchArray(b *testing.B, n int) *core.Cell {
	b.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		b.Fatal(err)
	}
	top := core.NewComposition(fmt.Sprintf("TOP%d", n))
	if err := d.AddCell(top); err != nil {
		b.Fatal(err)
	}
	sr, _ := d.Cell("SRCELL")
	in := core.NewInstance("a", sr, geom.Identity)
	in.Nx, in.Ny = n, n
	in.Sx, in.Sy = 20*rules.Lambda, 24*rules.Lambda
	top.Instances = append(top.Instances, in)
	return top
}

// BenchmarkDRCScale times the full design-rule check (flatten + width
// opening + indexed spacing over every layer) of N x N SRCELL arrays —
// the same replicated workload BenchmarkExtractScale uses, so the two
// verification passes over one indexed geometry core can be compared
// directly.
func BenchmarkDRCScale(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		top := benchArray(b, n)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vs, err := CheckCell(top)
				if err != nil {
					b.Fatal(err)
				}
				if len(vs) != 0 {
					b.Fatalf("array not clean: %v", vs)
				}
			}
		})
	}
}

// BenchmarkDRCCheckOnly isolates the rule evaluation from flattening:
// one flatten.Result is reused across iterations (per-layer indexes
// build once, lazily).
func BenchmarkDRCCheckOnly(b *testing.B) {
	top := benchArray(b, 16)
	fr, err := flatten.Cell(top, flatten.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := Check(fr); len(vs) != 0 {
			b.Fatalf("array not clean: %v", vs)
		}
	}
}

// BenchmarkDRCCheckWorkers pins the per-layer fan-out width so
// single-threaded and concurrent checks compare directly (see
// BenchmarkExtractSolveWorkers on the single-hardware-thread caveat).
func BenchmarkDRCCheckWorkers(b *testing.B) {
	for _, n := range []int{32, 64} {
		top := benchArray(b, n)
		fr, err := flatten.Cell(top, flatten.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range checkedLayers(fr) {
			fr.LayerIndex(l) // front-load the shared lazy builds
		}
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%dx%d/w%d", n, n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if vs := checkWorkers(fr, w); len(vs) != 0 {
						b.Fatalf("array not clean: %v", vs)
					}
				}
			})
		}
	}
}
