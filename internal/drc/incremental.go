package drc

import (
	"runtime"

	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/obs"
	"riot/internal/rules"
)

// Incremental is a design-rule checker that caches each layer's full
// evaluation between runs. Given a flatten.Delta describing an edit,
// Check splices instead of recomputing:
//
//   - connectivity: the cached touch-edge graph replays over the
//     surviving rectangles in O(edges) plain unions; only added
//     rectangles run index queries. Every touching pair is either
//     between survivors (cached edge) or involves an added rectangle
//     (queried), so the closure is the exact partition;
//   - width: the morphological opening has bounded locality — a
//     residue point depends only on material within the opening
//     square's reach — so new residues are computed inside a window
//     around the changed material (over clipped local geometry) and
//     spliced with the cached residues outside it. The slab
//     decomposition is a canonical function of the residue point set,
//     so the spliced slabs equal a from-scratch run's;
//   - spacing: cached violations remap by surviving pair (dropping
//     pairs that lost an endpoint or whose components merged);
//     re-measured pairs are exactly those an edit can change — pairs
//     with an added endpoint, and pairs straddling a component split
//     (previously exempt as one net). A split's crossing pairs always
//     have an endpoint outside the largest surviving piece, so only
//     the smaller pieces re-scan.
//
// The spliced report is identical to a from-scratch Check
// (differential-tested).
type Incremental struct {
	// Trace, when enabled, records a "drc" span per Check call, noting
	// whether the splice or the full path ran; nil records nothing and
	// costs nothing.
	Trace *obs.Trace

	fr    *flatten.Result
	evals map[geom.Layer]*layerEval
}

// Check reports fr's violations. delta, when non-nil and based on the
// previous Result this Incremental checked, enables the splice path;
// the second return reports whether it ran.
func (inc *Incremental) Check(fr *flatten.Result, delta *flatten.Delta) ([]Violation, bool) {
	sp := inc.Trace.Begin("drc")
	defer sp.End()
	usable := delta != nil && inc.fr != nil && delta.Old == inc.fr
	layers := checkedLayers(fr)

	if !usable {
		sp.Note("path", "full")
		// full rebuild: the same per-layer parallel fan-out as Check
		evals := evalAll(fr, layers, runtime.GOMAXPROCS(0))
		inc.fr = fr
		inc.evals = make(map[geom.Layer]*layerEval, len(layers))
		var out []Violation
		for k, l := range layers {
			inc.evals[l] = evals[k]
			out = evals[k].appendViolations(out)
		}
		out = append(out, checkContactSurround(fr)...)
		sortViolations(out)
		return dedupe(out), false
	}

	sp.Note("path", "splice")
	maps := layerMaps(fr, delta)
	spliced := false
	evals := make(map[geom.Layer]*layerEval, len(layers))
	var out []Violation
	for _, l := range layers {
		rects := fr.LayerRects(l)
		boxes := resolveBoxes(fr, l)
		ix := fr.LayerIndex(l)
		rule := rules.Of(l)
		var ev *layerEval
		if old := inc.evals[l]; old != nil && maps[l] != nil {
			ev = evalLayerSpliced(old, maps[l], l, rects, boxes, ix, rule)
			spliced = true
		} else {
			ev = evalLayer(l, rects, boxes, ix, rule)
		}
		evals[l] = ev
		out = ev.appendViolations(out)
	}

	// contact surround re-runs in full on every splice: the cost is per
	// cut (pads only in the shipped library), far below splice overhead
	out = append(out, checkContactSurround(fr)...)

	inc.fr, inc.evals = fr, evals
	sortViolations(out)
	return dedupe(out), spliced
}

// layerMaps turns the delta's shape mapping into per-layer position
// maps: for every new layer-local rectangle position, the old
// layer-local position of the identical rectangle, or -1 if the
// rectangle is new. Positions follow walk order, exactly how
// Result.LayerRects lists rectangles.
func layerMaps(fr *flatten.Result, delta *flatten.Delta) map[geom.Layer][]int32 {
	oldPos := make([]int32, len(delta.Old.Shapes))
	oldCount := map[geom.Layer]int32{}
	for j, s := range delta.Old.Shapes {
		oldPos[j] = oldCount[s.Layer]
		oldCount[s.Layer]++
	}
	maps := map[geom.Layer][]int32{}
	for i, s := range fr.Shapes {
		m := maps[s.Layer]
		if oi := delta.ShapeMap[i]; oi >= 0 {
			m = append(m, oldPos[oi])
		} else {
			m = append(m, -1)
		}
		maps[s.Layer] = m
	}
	return maps
}

// evalLayerSpliced re-evaluates one layer against its previous eval.
// newFromOld maps new layer-local positions to old ones (-1 = new
// rectangle).
func evalLayerSpliced(old *layerEval, newFromOld []int32, l geom.Layer, rects, boxes []geom.Rect, ix *geom.Index, rule rules.Rule) *layerEval {
	le := &layerEval{layer: l, rule: rule, rects: rects, boxes: boxes,
		edges:   make([]uint64, 0, len(old.edges)+64),
		spacing: make([]spacingEntry, 0, len(old.spacing)+8),
	}

	// inversion and the added set
	oldToNew := make([]int32, len(old.rects))
	for j := range oldToNew {
		oldToNew[j] = -1
	}
	var added []int32
	for n, o := range newFromOld {
		if o >= 0 {
			oldToNew[o] = int32(n)
		} else {
			added = append(added, int32(n))
		}
	}
	isAdded := make([]bool, len(rects))
	for _, f := range added {
		isAdded[f] = true
	}

	// connectivity: replay surviving edges, query only the added rects
	uf := geom.NewUnionFind(len(rects))
	for _, e := range old.edges {
		i, j := oldToNew[e>>32], oldToNew[e&0xffffffff]
		if i < 0 || j < 0 {
			continue
		}
		uf.Union(int(i), int(j))
		le.edges = append(le.edges, packEdge(int(i), int(j)))
	}
	for _, f := range added {
		ix.QueryRect(rects[f].Canon(), func(j int) bool {
			if j == int(f) {
				return true
			}
			uf.Union(j, int(f))
			// record once: survivor partners always, added partners
			// from the lower index
			if !isAdded[j] || j < int(f) {
				le.edges = append(le.edges, packEdge(j, int(f)))
			}
			return true
		})
	}
	le.comp = compLabels(uf, len(rects))

	// the changed material, in new coordinates (added rects) and old
	// coordinates (removed rects) — identical frames, since surviving
	// rectangles are identical
	var changed []geom.Rect
	for _, f := range added {
		changed = append(changed, rects[f].Canon())
	}
	for j, n := range oldToNew {
		if n < 0 {
			changed = append(changed, old.rects[j].Canon())
		}
	}

	le.widthResid = spliceWidth(old.widthResid, rects, changed, ix, rule.MinWidth*rules.Lambda)
	le.spliceSpacing(old, oldToNew, added, isAdded, ix)
	return le
}

// spliceWidth re-derives the width residues inside a window around the
// changed material and keeps the cached residues outside it. Residues
// within the window depend only on material within the opening
// square's reach of it, all of which the (wider) clip window includes;
// clipping artifacts live within reach of the clip boundary, outside
// the splice window, and are discarded. regionMerge canonicalizes, so
// the spliced slabs equal a from-scratch decomposition of the same
// point set.
func spliceWidth(oldResid []geom.Rect, rects, changed []geom.Rect, ix *geom.Index, minW int) []geom.Rect {
	if minW <= 0 {
		return nil
	}
	if len(changed) == 0 {
		return oldResid
	}
	// windows in real coordinates: reach is the opening side, minW
	reach := 2 * minW // margin over the strict locality bound
	wBox := changed[0]
	for _, r := range changed[1:] {
		wBox = wBox.Union(r)
	}
	win := wBox.Inset(-reach)     // residues re-derived inside here
	clip := win.Inset(-2 * reach) // material participating

	var local []geom.Rect
	ix.QueryRect(clip, func(j int) bool {
		if c := rects[j].Canon().Intersect(clip); !c.Empty() {
			local = append(local, c)
		}
		return true
	})
	inner := widthResidues(local, minW)

	// doubled-coordinate window for the residue splice
	dwin := geom.R(2*win.Min.X, 2*win.Min.Y, 2*win.Max.X, 2*win.Max.Y)
	keep := regionSubtract(oldResid, []geom.Rect{dwin})
	var merged []geom.Rect
	merged = append(merged, keep...)
	for _, r := range inner {
		if c := r.Intersect(dwin); !c.Empty() {
			merged = append(merged, c)
		}
	}
	return regionMerge(merged)
}

// spliceSpacing rebuilds the spacing entries: survivors remap (pairs
// that lost an endpoint or merged into one component drop), added
// rects re-scan, and components that split re-scan their smaller
// pieces for the pairs the split un-exempted.
func (le *layerEval) spliceSpacing(old *layerEval, oldToNew []int32, added []int32, isAdded []bool, ix *geom.Index) {
	minS := le.rule.MinSpacing * rules.Lambda
	if minS <= 0 || len(le.rects) < 2 {
		return
	}

	// newToOld, for the split filter below
	newToOld := make([]int32, len(le.rects))
	for i := range newToOld {
		newToOld[i] = -1
	}
	for j, n := range oldToNew {
		if n >= 0 {
			newToOld[n] = int32(j)
		}
	}

	// keep surviving, still-disconnected pairs
	for _, e := range old.spacing {
		ni, nj := oldToNew[e.i], oldToNew[e.j]
		if ni < 0 || nj < 0 || le.comp[ni] == le.comp[nj] {
			continue
		}
		le.spacing = append(le.spacing, spacingEntry{ni, nj, e.v})
	}

	// pairs with an added endpoint
	for _, f := range added {
		le.scanSpacing(ix, int(f), minS, func(j int) bool {
			return !isAdded[j] || j > int(f)
		})
	}

	// component splits: pairs inside one old component that now lies in
	// several pieces were exempt and must be measured. Every crossing
	// pair has an endpoint outside the largest piece, so scan those.
	splitScan := splitScanSet(old, le, oldToNew)
	for _, f := range splitScan {
		oldF := newToOld[f]
		le.scanSpacing(ix, int(f), minS, func(j int) bool {
			oj := newToOld[j]
			if oj < 0 {
				return false // added partners were handled above
			}
			if old.comp[oldF] != old.comp[oj] {
				return false // previously disconnected: cached if violating
			}
			// both in the scan set: measure from the lower index
			return !inSet(splitScan, int32(j)) || j > int(f)
		})
	}
}

// splitScanSet finds the survivors to re-scan after component splits:
// for every old component whose survivors land in more than one new
// component, all members outside the largest new piece.
func splitScanSet(old, le *layerEval, oldToNew []int32) []int32 {
	// old root -> new root -> member count
	pieces := map[int32]map[int32]int32{}
	for j, n := range oldToNew {
		if n < 0 {
			continue
		}
		oroot := old.comp[j]
		m := pieces[oroot]
		if m == nil {
			m = map[int32]int32{}
			pieces[oroot] = m
		}
		m[le.comp[n]]++
	}
	split := map[int32]int32{} // old root -> largest new piece
	for oroot, m := range pieces {
		if len(m) < 2 {
			continue
		}
		var best int32
		bestN := int32(-1)
		for nroot, cnt := range m {
			if cnt > bestN {
				best, bestN = nroot, cnt
			}
		}
		split[oroot] = best
	}
	if len(split) == 0 {
		return nil
	}
	var out []int32
	for j, n := range oldToNew {
		if n < 0 {
			continue
		}
		if largest, ok := split[old.comp[j]]; ok && le.comp[n] != largest {
			out = append(out, n)
		}
	}
	return out
}

// inSet reports membership in a small sorted-ascending id slice built
// from ascending walks.
func inSet(set []int32, v int32) bool {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == v
}
