package drc

import (
	"sort"

	"riot/internal/geom"
)

// Rectilinear region calculus: union, complement, dilation and
// difference over sets of axis-aligned rectangles, all represented as
// disjoint "slabs" (maximal-per-band rectangles). Every operation is a
// sweep over y-bands — the elementary horizontal strips between
// consecutive distinct y coordinates — with interval arithmetic on the
// x-extents inside each band. Slabs spanning vertically adjacent bands
// with identical x-extents are coalesced, so grid-regular designs stay
// compact.
//
// The width checker runs this calculus in doubled coordinates (see
// drc.go), which keeps every intermediate region non-degenerate; the
// helpers here therefore drop empty rectangles freely.

// span is a closed x-interval [lo, hi].
type span struct{ lo, hi int }

// mergeSpans sorts spans and merges overlapping or touching ones
// (closed intervals: [a,b] and [b,c] join).
func mergeSpans(sp []span) []span {
	if len(sp) < 2 {
		return sp
	}
	sort.Slice(sp, func(i, j int) bool { return sp[i].lo < sp[j].lo })
	out := sp[:1]
	for _, s := range sp[1:] {
		if s.lo <= out[len(out)-1].hi {
			if s.hi > out[len(out)-1].hi {
				out[len(out)-1].hi = s.hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// subtractSpans returns a minus b; both inputs must be merged and
// sorted. The result keeps closed-interval boundaries (subtracting
// [0,3] from [0,10] leaves [3,10]).
func subtractSpans(a, b []span) []span {
	var out []span
	bi := 0
	for _, s := range a {
		lo := s.lo
		for bi < len(b) && b[bi].hi <= lo {
			bi++
		}
		// walk b intervals overlapping s; bi may be shared across later
		// a-spans, so probe forward without consuming
		for k := bi; k < len(b) && b[k].lo < s.hi; k++ {
			if b[k].hi <= lo {
				continue
			}
			if b[k].lo > lo {
				out = append(out, span{lo, b[k].lo})
			}
			if b[k].hi > lo {
				lo = b[k].hi
			}
			if lo >= s.hi {
				break
			}
		}
		if lo < s.hi {
			out = append(out, span{lo, s.hi})
		}
	}
	return out
}

// bandRegion assembles a slab region from a band decomposition: ys is
// the sorted, de-duplicated list of band boundaries, and intervalsOf
// returns the merged x-intervals covering band [y0, y1). Slabs in
// consecutive bands with identical x-extents coalesce vertically.
func bandRegion(ys []int, intervalsOf func(y0, y1 int) []span) []geom.Rect {
	var out []geom.Rect
	// open[span] = index in out of the slab still growing downward
	open := map[span]int{}
	prevY := 0
	havePrev := false
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		sp := intervalsOf(y0, y1)
		next := make(map[span]int, len(sp))
		for _, s := range sp {
			if s.lo >= s.hi {
				continue
			}
			if havePrev && prevY == y0 {
				if idx, ok := open[s]; ok {
					out[idx].Max.Y = y1
					next[s] = idx
					continue
				}
			}
			out = append(out, geom.R(s.lo, y0, s.hi, y1))
			next[s] = len(out) - 1
		}
		open = next
		prevY = y1
		havePrev = true
	}
	return out
}

// yBands collects the sorted unique y coordinates of a rect set.
func yBands(rects []geom.Rect, extra ...int) []int {
	ys := make([]int, 0, 2*len(rects)+len(extra))
	for _, r := range rects {
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	ys = append(ys, extra...)
	sort.Ints(ys)
	out := ys[:0]
	for i, y := range ys {
		if i == 0 || y != out[len(out)-1] {
			out = append(out, y)
		}
	}
	return out
}

// bandScanner yields each ascending band's merged x-spans through a
// y-sweep: rectangles enter the active set when the sweep reaches
// their Min.Y and leave when it passes their Max.Y, so a region
// operation costs O(bands x active) instead of rescanning the whole
// rectangle list for every band. Bands must be requested in ascending
// order — exactly how bandRegion iterates.
type bandScanner struct {
	rects  []geom.Rect
	order  []int // rect indices sorted by Min.Y
	next   int
	active []int
	buf    []span
}

func newBandScanner(rects []geom.Rect) *bandScanner {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rects[order[a]].Min.Y < rects[order[b]].Min.Y })
	return &bandScanner{rects: rects, order: order}
}

// spans returns the merged x-intervals of the rects spanning band
// [y0, y1]. The result is valid until the next call.
func (s *bandScanner) spans(y0, y1 int) []span {
	for s.next < len(s.order) && s.rects[s.order[s.next]].Min.Y <= y0 {
		s.active = append(s.active, s.order[s.next])
		s.next++
	}
	// expire rects the sweep has passed; keep the rest in place
	kept := s.active[:0]
	s.buf = s.buf[:0]
	for _, id := range s.active {
		r := s.rects[id]
		if r.Max.Y <= y0 {
			continue
		}
		kept = append(kept, id)
		if r.Max.Y >= y1 && r.Min.X < r.Max.X {
			s.buf = append(s.buf, span{r.Min.X, r.Max.X})
		}
	}
	s.active = kept
	return mergeSpans(s.buf)
}

// regionMerge returns the union of rects as disjoint slabs.
func regionMerge(rects []geom.Rect) []geom.Rect {
	rects = dropEmpty(rects)
	if len(rects) == 0 {
		return nil
	}
	sc := newBandScanner(rects)
	return bandRegion(yBands(rects), sc.spans)
}

// regionComplement returns frame minus the union of rects (clipped to
// the frame), as disjoint slabs.
func regionComplement(rects []geom.Rect, frame geom.Rect) []geom.Rect {
	var clipped []geom.Rect
	for _, r := range rects {
		if c := r.Intersect(frame); !c.Empty() {
			clipped = append(clipped, c)
		}
	}
	ys := yBands(clipped, frame.Min.Y, frame.Max.Y)
	// trim bands outside the frame
	lo := sort.SearchInts(ys, frame.Min.Y)
	hi := sort.SearchInts(ys, frame.Max.Y)
	ys = ys[lo : hi+1]
	whole := []span{{frame.Min.X, frame.Max.X}}
	sc := newBandScanner(clipped)
	return bandRegion(ys, func(y0, y1 int) []span {
		return subtractSpans(whole, sc.spans(y0, y1))
	})
}

// regionSubtract returns the union of a minus the union of b, as
// disjoint slabs.
func regionSubtract(a, b []geom.Rect) []geom.Rect {
	a = dropEmpty(a)
	if len(a) == 0 {
		return nil
	}
	ys := yBands(append(append([]geom.Rect(nil), a...), b...))
	sa, sb := newBandScanner(a), newBandScanner(b)
	return bandRegion(ys, func(y0, y1 int) []span {
		return subtractSpans(sa.spans(y0, y1), sb.spans(y0, y1))
	})
}

// regionDilate inflates every rect by lo on the min sides and hi on
// the max sides (Minkowski sum with the box [-lo, hi] x [-lo, hi]).
// The result may overlap; callers normalize through the band sweep.
func regionDilate(rects []geom.Rect, lo, hi int) []geom.Rect {
	out := make([]geom.Rect, 0, len(rects))
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		out = append(out, geom.Rect{
			Min: geom.Pt(r.Min.X-lo, r.Min.Y-lo),
			Max: geom.Pt(r.Max.X+hi, r.Max.Y+hi),
		})
	}
	return out
}

func dropEmpty(rects []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, 0, len(rects))
	for _, r := range rects {
		if !r.Canon().Empty() {
			out = append(out, r.Canon())
		}
	}
	return out
}
