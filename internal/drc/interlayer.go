package drc

import (
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/rules"
)

// This file holds the inter-layer rules — checks that relate geometry
// on two different mask layers, on top of the per-layer width and
// spacing passes. The first of the ROADMAP's inter-layer set is
// implemented here:
//
//   - Contact surround: every contact cut (NC) must be covered by
//     metal (NM) with at least ContactSurround lambda of overlap on
//     every side. A cut the metal does not reach around lets the etch
//     undercut the connection. The layer below the cut is not checked:
//     the library's contact structures land poly or diffusion exactly
//     flush with the cut, which is legal in the Mead & Conway rules
//     (the 4x4-lambda contact structure carries its surround in the
//     metal plate).
//
// Like the width rule — and unlike spacing — the check applies to all
// material regardless of leaf-occurrence provenance: covering metal
// may legitimately come from a neighboring cell, and a cut that lacks
// surround is broken no matter who drew it. Each cut is one indexed
// query pass over the flattened design's per-layer views, so the cost
// is proportional to the number of cuts, not the design.

// ContactSurround is the required metal overlap around a contact cut,
// in lambda: (ContactSize - cut side) / 2 with the standard 2x2 cut.
const ContactSurround = (rules.ContactSize - 2) / 2

// checkContactSurround reports every NC cut whose required metal
// surround is not fully covered by NM material.
func checkContactSurround(fr *flatten.Result) []Violation {
	cuts := fr.LayerRects(geom.NC)
	if len(cuts) == 0 {
		return nil
	}
	metal := fr.LayerRects(geom.NM)
	ix := fr.LayerIndex(geom.NM)
	surround := ContactSurround * rules.Lambda
	var out []Violation
	for _, cut := range cuts {
		cut = cut.Canon()
		if cut.Empty() {
			continue
		}
		need := cut.Inset(-surround)
		// union of the metal overlapping the required frame
		var cover []geom.Rect
		ix.QueryRect(need, func(id int) bool {
			if c := metal[id].Canon().Intersect(need); !c.Empty() {
				cover = append(cover, c)
			}
			return true
		})
		for _, r := range regionSubtract([]geom.Rect{need}, regionMerge(cover)) {
			out = append(out, Violation{
				Layer: geom.NC,
				Rect:  r,
				Rule:  RuleContactSurround,
				Got:   coveredSurround(cut, cover),
				Want:  surround,
			})
		}
	}
	return out
}

// coveredSurround measures the largest symmetric metal surround the
// cut actually has, in centimicrons at whole-lambda resolution (0 when
// even the cut itself is exposed). Violations carry centimicrons, like
// every other rule's Got/Want.
func coveredSurround(cut geom.Rect, cover []geom.Rect) int {
	for m := ContactSurround - 1; m >= 0; m-- {
		need := cut.Inset(-m * rules.Lambda)
		if len(regionSubtract([]geom.Rect{need}, regionMerge(cover))) == 0 {
			return m * rules.Lambda
		}
	}
	return 0
}
