// Package drc is a design-rule checker for flattened Riot designs: it
// verifies the lambda-based Mead & Conway width and spacing rules
// (internal/rules) over the mask geometry that internal/flatten
// produces. Riot's paper workflow assembles cells from composition
// primitives and only then checks the result — the checker is the
// "extensive checking" step, run over the same indexed geometry core
// (geom.Index) as the circuit extractor.
//
// Two rules are checked per layer:
//
//   - Minimum width. The layer's rectangles are merged into a
//     rectilinear region (a sweep-line band decomposition into
//     disjoint slabs) and opened morphologically with a square of the
//     minimum width: material that disappears under the opening —
//     slivers narrower than the rule, and notched necks where a wide
//     region pinches down — is reported. The computation runs in
//     doubled coordinates so features at exactly the minimum width
//     survive the erode/dilate round trip without degenerate
//     rectangles.
//
//   - Minimum spacing. Disconnected same-layer components closer than
//     the rule are reported; candidate neighbors come from geom.Index
//     halo queries (the rule distance, minus one unit, around each
//     rectangle), and connected components are built by unioning
//     touching rectangles — touching material is one electrical net
//     and spacing rules do not apply inside it. Edge-to-edge
//     separations are measured along the axis; corner-to-corner
//     separations are Euclidean, the standard mask-rule convention.
//
// Spacing follows the paper's division of responsibility: Riot
// "assembles pre-designed cells", so geometry inside one leaf-cell
// occurrence is the cell author's problem and is trusted, and so is
// the seam between two occurrences whose placed bounding boxes touch —
// abutment (including ABUT OVERLAP) is one of the paper's guaranteed
// connection primitives, and how a cell's edge meets its abutted
// neighbor is part of the cell designer's composition contract. What
// the checker measures is the separations Riot's own decisions
// created: material from occurrences that were placed or routed near
// each other without abutting. Width is checked on all merged material
// regardless of origin, since abutment and stretching can pinch a
// merged region even when each contributor is legal.
//
// Known approximation: a same-component notch whose arms connect
// around a too-narrow gap (a U-bend against itself) is only flagged
// when the gap pinches the material below minimum width; pure
// same-net spacing notches are not reported.
//
// Violations carry the layer, the offending region, the measured and
// required distances (centimicrons), and sort deterministically, so
// reports are stable across runs and platforms.
package drc

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/rules"
)

// Rule names the design rule a violation breaks.
type Rule string

// The checked rules.
const (
	RuleWidth           Rule = "width"
	RuleSpacing         Rule = "spacing"
	RuleContactSurround Rule = "contact-surround"
)

// Violation is one design-rule failure: the layer, the offending
// region (the too-narrow material for width, the too-small gap for
// spacing), and the measured vs required distance in centimicrons.
type Violation struct {
	Layer geom.Layer
	Rect  geom.Rect
	Rule  Rule
	Got   int
	Want  int
}

// String renders the violation with distances in lambda.
func (v Violation) String() string {
	return fmt.Sprintf("%s %s %s: %s < %s lambda",
		v.Layer, v.Rule, v.Rect, lambdaStr(v.Got), lambdaStr(v.Want))
}

// lambdaStr renders a centimicron distance in lambda with up to two
// decimals.
func lambdaStr(cm int) string {
	l := float64(cm) / float64(rules.Lambda)
	if l == math.Trunc(l) {
		return fmt.Sprintf("%d", int(l))
	}
	return fmt.Sprintf("%.2f", l)
}

// CheckCell flattens a cell hierarchy (in parallel, like the
// extractor) and checks every layer present in the result.
func CheckCell(c *core.Cell) ([]Violation, error) {
	fr, err := flatten.Cell(c, flatten.Options{})
	if err != nil {
		return nil, err
	}
	return Check(fr), nil
}

// Check checks every layer of a flattened design, reusing the result's
// per-layer spatial indexes, and returns the violations in
// deterministic order. Layers are independent, so with more than one
// CPU each layer's width and spacing pass runs in its own goroutine;
// the merged report is identical to the sequential one (the final
// sort-and-dedupe canonicalizes it).
func Check(fr *flatten.Result) []Violation {
	return checkWorkers(fr, runtime.GOMAXPROCS(0))
}

// checkWorkers runs the full check with an explicit concurrency width.
func checkWorkers(fr *flatten.Result, workers int) []Violation {
	layers := checkedLayers(fr)
	var out []Violation
	for _, ev := range evalAll(fr, layers, workers) {
		out = ev.appendViolations(out)
	}
	out = append(out, checkContactSurround(fr)...)
	sortViolations(out)
	return dedupe(out)
}

// evalAll evaluates every layer, one goroutine per layer when more
// than one worker is available (the shared Incremental full-rebuild
// path and checkWorkers both use it).
func evalAll(fr *flatten.Result, layers []geom.Layer, workers int) []*layerEval {
	evals := make([]*layerEval, len(layers))
	if workers < 2 || len(layers) < 2 {
		for k, l := range layers {
			evals[k] = evalLayer(l, fr.LayerRects(l), resolveBoxes(fr, l), fr.LayerIndex(l), rules.Of(l))
		}
		return evals
	}
	// force the shared lazy per-layer views and indexes before the
	// fan-out; afterwards each goroutine touches only its own layer
	for _, l := range layers {
		fr.LayerIndex(l)
		fr.LayerSrcs(l)
	}
	var wg sync.WaitGroup
	for k, l := range layers {
		wg.Add(1)
		go func(k int, l geom.Layer) {
			defer wg.Done()
			evals[k] = evalLayer(l, fr.LayerRects(l), resolveBoxes(fr, l), fr.LayerIndex(l), rules.Of(l))
		}(k, l)
	}
	wg.Wait()
	return evals
}

// checkedLayers returns the layers a flattened design gets checked on.
func checkedLayers(fr *flatten.Result) []geom.Layer {
	var out []geom.Layer
	for _, l := range fr.Layers() {
		if l != geom.LayerNone {
			out = append(out, l)
		}
	}
	return out
}

// resolveBoxes maps each of the layer's rectangles to its occurrence's
// placed bounding box — the value the trust rule compares.
func resolveBoxes(fr *flatten.Result, l geom.Layer) []geom.Rect {
	srcs := fr.LayerSrcs(l)
	boxes := make([]geom.Rect, len(srcs))
	for i, s := range srcs {
		boxes[i] = fr.SrcBoxes[s]
	}
	return boxes
}

// CheckLayer checks one layer's rectangles against a rule (lambda
// units, like rules.Of returns). Without occurrence provenance, every
// rectangle counts as its own origin, so all disconnected-component
// separations are measured. Used directly by tests and by callers
// holding geometry outside a flatten.Result.
func CheckLayer(l geom.Layer, rects []geom.Rect, r rules.Rule) []Violation {
	ix := geom.NewIndexFrom(rects)
	ev := evalLayer(l, rects, nil, ix, r)
	out := ev.appendViolations(nil)
	sortViolations(out)
	return dedupe(out)
}

// widthViolations reports material narrower than minW (centimicrons):
// the residue of the merged layer region under a morphological opening
// with a minW square.
func widthViolations(l geom.Layer, rects []geom.Rect, minW int) []Violation {
	var out []Violation
	for _, r := range widthResidues(rects, minW) {
		out = append(out, widthViolationFrom(l, r, minW))
	}
	return out
}

// widthResidues computes the too-narrow material of a layer: the
// merged region minus its morphological opening, as canonical slabs.
// All region arithmetic runs in doubled coordinates with an opening
// square of side 2*minW - 1 — strictly between the widest illegal
// feature (2*minW - 2) and the narrowest legal one (2*minW), so
// exact-minimum features survive and every intermediate region stays
// non-degenerate. The result is a pure, canonical function of the
// material point set: the incremental checker relies on that to splice
// residues computed in a window around an edit with cached ones
// outside it.
func widthResidues(rects []geom.Rect, minW int) []geom.Rect {
	if minW <= 0 {
		return nil
	}
	doubled := make([]geom.Rect, 0, len(rects))
	for _, r := range rects {
		r = r.Canon()
		if r.Empty() {
			continue // zero-area material carries no width
		}
		doubled = append(doubled, geom.R(2*r.Min.X, 2*r.Min.Y, 2*r.Max.X, 2*r.Max.Y))
	}
	region := regionMerge(doubled)
	if len(region) == 0 {
		return nil
	}
	// opening square B spans [-d1, d2] in each axis
	side := 2*minW - 1
	d1, d2 := minW-1, minW
	frame := bbox(region).Inset(-2 * side)
	comp := regionComplement(region, frame)
	compDilated := regionDilate(comp, d2, d1) // Minkowski sum with reflected B
	eroded := regionComplement(compDilated, frame)
	opened := regionDilate(eroded, d1, d2)
	return regionSubtract(region, opened)
}

// widthViolationFrom renders one doubled-coordinate residue slab as a
// width violation.
func widthViolationFrom(l geom.Layer, r geom.Rect, minW int) Violation {
	narrow := r.W()
	if r.H() < narrow {
		narrow = r.H()
	}
	return Violation{
		Layer: l,
		// halve back, rounding outward
		Rect: geom.R(floorHalf(r.Min.X), floorHalf(r.Min.Y),
			ceilHalf(r.Max.X), ceilHalf(r.Max.Y)),
		Rule: RuleWidth,
		Got:  (narrow + 1) / 2,
		Want: minW,
	}
}

// spacingPair measures one pair of rectangles against the spacing
// rule, returning the violation and whether the pair breaks it. The
// measurement is symmetric in i and j.
func spacingPair(l geom.Layer, ri, rj geom.Rect, minS int) (Violation, bool) {
	ri, rj = ri.Canon(), rj.Canon()
	dx := gap(ri.Min.X, ri.Max.X, rj.Min.X, rj.Max.X)
	dy := gap(ri.Min.Y, ri.Max.Y, rj.Min.Y, rj.Max.Y)
	got := 0
	switch {
	case dx > 0 && dy > 0:
		// diagonal: corner-to-corner Euclidean separation
		if dx*dx+dy*dy >= minS*minS {
			return Violation{}, false
		}
		got = isqrt(dx*dx + dy*dy)
	default:
		got = dx + dy
		if got >= minS {
			return Violation{}, false
		}
	}
	gx0, gx1 := gapSpan(ri.Min.X, ri.Max.X, rj.Min.X, rj.Max.X)
	gy0, gy1 := gapSpan(ri.Min.Y, ri.Max.Y, rj.Min.Y, rj.Max.Y)
	return Violation{
		Layer: l,
		Rect:  geom.R(gx0, gy0, gx1, gy1),
		Rule:  RuleSpacing,
		Got:   got,
		Want:  minS,
	}, true
}

// gap returns the separation of two closed intervals (0 when they
// overlap or touch).
func gap(aLo, aHi, bLo, bHi int) int {
	switch {
	case aHi < bLo:
		return bLo - aHi
	case bHi < aLo:
		return aLo - bHi
	}
	return 0
}

// gapSpan returns the extent of the gap between two intervals: the
// open space when they are disjoint, the overlap otherwise.
func gapSpan(aLo, aHi, bLo, bHi int) (int, int) {
	switch {
	case aHi < bLo:
		return aHi, bLo
	case bHi < aLo:
		return bHi, aLo
	}
	return max(aLo, bLo), min(aHi, bHi)
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Rect.Min.Y != b.Rect.Min.Y {
			return a.Rect.Min.Y < b.Rect.Min.Y
		}
		if a.Rect.Min.X != b.Rect.Min.X {
			return a.Rect.Min.X < b.Rect.Min.X
		}
		if a.Rect.Max.Y != b.Rect.Max.Y {
			return a.Rect.Max.Y < b.Rect.Max.Y
		}
		if a.Rect.Max.X != b.Rect.Max.X {
			return a.Rect.Max.X < b.Rect.Max.X
		}
		return a.Got < b.Got
	})
}

func dedupe(vs []Violation) []Violation {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func bbox(rects []geom.Rect) geom.Rect {
	b := rects[0]
	for _, r := range rects[1:] {
		b = b.Union(r)
	}
	return b
}

func floorHalf(v int) int {
	if v >= 0 {
		return v / 2
	}
	return -((-v + 1) / 2)
}

func ceilHalf(v int) int { return -floorHalf(-v) }

// isqrt returns the floor integer square root.
func isqrt(v int) int {
	r := int(math.Sqrt(float64(v)))
	for r*r > v {
		r--
	}
	for (r+1)*(r+1) <= v {
		r++
	}
	return r
}
