package drc

import (
	"riot/internal/geom"
	"riot/internal/rules"
)

// This file is the per-layer evaluation core behind Check, CheckLayer
// and Incremental. One layerEval holds everything a layer's check
// derives — and everything the incremental checker needs to splice the
// next run instead of recomputing it:
//
//   - the touch-edge graph (every pair of touching rectangles) and the
//     connected-component partition its closure induces. Touching
//     material is one electrical net, so spacing rules do not apply
//     inside a component; the edge graph is cached because after an
//     edit the surviving edges replay in O(E) plain unions, with index
//     queries only for the added rectangles;
//   - the width residues: the merged layer region minus its
//     morphological opening, kept as canonical slabs in doubled
//     coordinates. The opening has bounded locality (a residue point
//     depends only on material within the opening square's reach), so
//     an edit re-derives residues inside a window around the changed
//     material and splices the rest;
//   - the spacing violations, tagged with the rectangle pair that
//     produced them, so survivors remap across an edit and only pairs
//     an edit could have changed re-measure.
type layerEval struct {
	layer geom.Layer
	rule  rules.Rule
	rects []geom.Rect
	boxes []geom.Rect // per-rect occurrence boxes; nil = no trust, measure all
	comp  []int32     // component root per rect
	edges []uint64    // touching pairs, packed lo<<32|hi

	widthResid []geom.Rect // canonical residue slabs, doubled coordinates
	spacing    []spacingEntry
}

// spacingEntry is one spacing violation with the rectangle pair that
// measured it.
type spacingEntry struct {
	i, j int32
	v    Violation
}

// packEdge normalizes and packs a touching pair.
func packEdge(i, j int) uint64 {
	if j < i {
		i, j = j, i
	}
	return uint64(i)<<32 | uint64(j)
}

// appendViolations flattens the eval's width residues and spacing
// entries into the caller's report.
func (le *layerEval) appendViolations(out []Violation) []Violation {
	minW := le.rule.MinWidth * rules.Lambda
	for _, r := range le.widthResid {
		out = append(out, widthViolationFrom(le.layer, r, minW))
	}
	for _, e := range le.spacing {
		out = append(out, e.v)
	}
	return out
}

// evalLayer runs the full check over one layer: touch edges and
// components from per-rect index queries, whole-layer width residues,
// and the all-pairs spacing scan.
func evalLayer(l geom.Layer, rects, boxes []geom.Rect, ix *geom.Index, rule rules.Rule) *layerEval {
	le := &layerEval{layer: l, rule: rule, rects: rects, boxes: boxes}

	uf := geom.NewUnionFind(len(rects))
	for i, r := range rects {
		ix.QueryRect(r, func(j int) bool {
			if j > i {
				uf.Union(i, j)
				le.edges = append(le.edges, packEdge(i, j))
			}
			return true
		})
	}
	le.comp = compLabels(uf, len(rects))

	le.widthResid = widthResidues(rects, rule.MinWidth*rules.Lambda)

	minS := rule.MinSpacing * rules.Lambda
	if minS > 0 && len(rects) >= 2 {
		for i := range rects {
			le.scanSpacing(ix, i, minS, func(j int) bool { return j > i })
		}
	}
	return le
}

func compLabels(uf *geom.UnionFind, n int) []int32 {
	comp := make([]int32, n)
	for i := 0; i < n; i++ {
		comp[i] = int32(uf.Find(i))
	}
	return comp
}

// scanSpacing discovers spacing violations seen from rect i: halo
// query, same-component and trust exemptions, then the symmetric pair
// measurement. accept filters the partner (the full pass accepts j > i
// so each pair is measured once; the incremental pass accepts exactly
// the partners its iteration set would otherwise double- or
// never-visit).
func (le *layerEval) scanSpacing(ix *geom.Index, i, minS int, accept func(j int) bool) {
	halo := minS - 1 // gap <= minS-1 <=> gap < minS on the integer grid
	grown := le.rects[i].Canon().Inset(-halo)
	ix.QueryRect(grown, func(j int) bool {
		if j == i || le.comp[j] == le.comp[i] || !accept(j) {
			return true
		}
		if le.trusted(i, j) {
			return true
		}
		if v, bad := spacingPair(le.layer, le.rects[i], le.rects[j], minS); bad {
			le.spacing = append(le.spacing, spacingEntry{int32(i), int32(j), v})
		}
		return true
	})
}

// trusted reports whether the pair is covered by the
// pre-designed-cell contract: material of one occurrence, or of two
// occurrences whose placement boxes touch (deliberate abutment or
// overlap). Without provenance nothing is trusted.
func (le *layerEval) trusted(i, j int) bool {
	if le.boxes == nil {
		return false
	}
	bi, bj := le.boxes[i], le.boxes[j]
	return bi == bj || bi.Touches(bj)
}
