package drc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// gridEditor builds a composition of n individually placed SRCELLs
// under an editor (abutting grid: rails merge across seams).
func gridEditor(t testing.TB, n int) *core.Editor {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x, y := i%6, i/6
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// freshResult re-flattens without any cache, so scratch checks never
// share lazily built per-layer state with the incremental run.
func freshResult(t *testing.T, c *core.Cell) *flatten.Result {
	t.Helper()
	fr, err := flatten.Cell(c, flatten.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestParallelCheckMatchesSequential forces the per-layer-goroutine
// checker against the sequential one over library arrays and random
// soups; reports must be identical. Under -race this also proves the
// layer fan-out shares no mutable state.
func TestParallelCheckMatchesSequential(t *testing.T) {
	e := gridEditor(t, 12)
	fr := freshResult(t, e.Cell)
	seq := checkWorkers(fr, 1)
	par := checkWorkers(freshResult(t, e.Cell), 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel and sequential reports differ:\nseq: %v\npar: %v", seq, par)
	}

	// random soups with real violations
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		fr1 := soupFlat(rng, 40+rng.Intn(200))
		fr2 := &flatten.Result{Shapes: fr1.Shapes, SrcBoxes: fr1.SrcBoxes}
		seq := checkWorkers(fr1, 1)
		par := checkWorkers(fr2, 4)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: parallel and sequential soup reports differ", trial)
		}
	}
}

// soupFlat builds a random flattened result with several occurrences
// (trust boxes) and rect soup on three layers.
func soupFlat(rng *rand.Rand, n int) *flatten.Result {
	layers := []geom.Layer{geom.ND, geom.NP, geom.NM}
	span := 400 + rng.Intn(1200)
	fr := &flatten.Result{}
	nsrc := 1 + rng.Intn(6)
	for s := 0; s < nsrc; s++ {
		x, y := rng.Intn(span), rng.Intn(span)
		fr.SrcBoxes = append(fr.SrcBoxes, geom.R(x, y, x+span/3, y+span/3))
	}
	for i := 0; i < n; i++ {
		x, y := rng.Intn(span), rng.Intn(span)
		w, h := rng.Intn(span/6), rng.Intn(span/6)
		fr.Shapes = append(fr.Shapes, flatten.Shape{
			Layer: layers[rng.Intn(len(layers))],
			R:     geom.R(x, y, x+w, y+h),
			Src:   rng.Intn(nsrc),
		})
	}
	return fr
}

// TestIncrementalCheckMatchesScratch drives a composition through
// random edits; after each edit the spliced report must equal a
// from-scratch Check of the same geometry.
func TestIncrementalCheckMatchesScratch(t *testing.T) {
	e := gridEditor(t, 10)
	top := e.Cell
	ca := &flatten.Cache{}
	inc := &Incremental{}
	rng := rand.New(rand.NewSource(29))

	verify := func(step int, wantSplice bool) {
		t.Helper()
		fr, delta, err := ca.Flatten(top)
		if err != nil {
			t.Fatal(err)
		}
		got, spliced := inc.Check(fr, delta)
		if wantSplice && !spliced {
			t.Fatalf("step %d: splice path did not run", step)
		}
		want := checkWorkers(freshResult(t, top), 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: incremental and scratch reports differ\ninc:     %v\nscratch: %v", step, got, want)
		}
	}

	verify(-1, false)

	created := 0
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && len(top.Instances) > 0:
			// move, biased to small offsets so spacing violations and
			// near-abutments appear
			in := top.Instances[rng.Intn(len(top.Instances))]
			e.MoveInstance(in, geom.Pt(rng.Intn(8*rules.Lambda)-4*rules.Lambda, rng.Intn(8*rules.Lambda)-4*rules.Lambda))
		case op < 7:
			created++
			cell := "NAND"
			if rng.Intn(2) == 0 {
				cell = "SRCELL"
			}
			tr := geom.MakeTransform(geom.R0, geom.Pt(rng.Intn(3000), rng.Intn(3000)))
			if _, err := e.CreateInstance(cell, fmt.Sprintf("x%d", created), tr, 1, 1, 0, 0); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(top.Instances) > 1:
			if err := e.DeleteInstance(top.Instances[rng.Intn(len(top.Instances))]); err != nil {
				t.Fatal(err)
			}
		default:
			if len(top.Instances) == 0 {
				continue
			}
			e.OrientInstance(top.Instances[rng.Intn(len(top.Instances))], geom.R180)
		}
		verify(step, true)
	}
}

// TestIncrementalCheckArrayEdit covers the benchmark scenario: pull
// one cell out of an abutted grid (creating real spacing violations
// against its former neighbors), verify, put it back, verify clean.
func TestIncrementalCheckArrayEdit(t *testing.T) {
	e := gridEditor(t, 24)
	top := e.Cell
	ca := &flatten.Cache{}
	inc := &Incremental{}

	fr, delta, err := ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := inc.Check(fr, delta)
	if len(base) != 0 {
		t.Fatalf("abutted grid not clean: %v", base)
	}

	// park the cell 1 lambda above the grid: disconnected from the
	// array's merged rails but within spacing range of the top row
	in := top.Instances[7]
	d := geom.Pt(0, (4*24-24+1)*rules.Lambda)
	e.MoveInstance(in, d)
	fr, delta, err = ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	got, spliced := inc.Check(fr, delta)
	if !spliced {
		t.Fatal("splice path did not run")
	}
	want := checkWorkers(freshResult(t, top), 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parked cell: incremental and scratch differ\ninc:     %v\nscratch: %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("parking a cell 1 lambda from the grid produced no violations")
	}

	e.MoveInstance(in, geom.Pt(-d.X, -d.Y))
	fr, delta, err = ca.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	got, spliced = inc.Check(fr, delta)
	if !spliced {
		t.Fatal("splice path did not run on the revert")
	}
	if len(got) != 0 {
		t.Fatalf("reverted grid not clean: %v", got)
	}
}
