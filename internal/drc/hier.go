package drc

import (
	"fmt"

	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/rules"
)

// CellDRC is a per-distinct-cell design-rule certificate: the cell's
// raw per-layer geometry, its local touch components, its local width
// residues, and the contact cuts whose metal surround is not already
// satisfied by the cell's own metal. The hierarchical engine composes
// placements of these certificates into the exact flat verdict:
//
//   - width residues are a pure canonical function of the material
//     point set with bounded locality, so the flat residues equal the
//     translated local residues outside every cross-occurrence
//     interaction window, plus residues recomputed inside the windows
//     from all occupants' material;
//   - spacing inside one occurrence is trusted (one box), so only
//     cross-occurrence pairs from untrusted placements measure, with
//     the component exemption checked against a composed global touch
//     partition (local components plus cross-occurrence touch edges);
//   - a cut whose surround is locally satisfied stays satisfied under
//     composition (foreign metal only adds cover), so only DirtyCuts
//     need their surround re-derived from global metal.
type CellDRC struct {
	// Layers lists the checked layers, in the flatten's deterministic
	// (CIF-name-sorted) order.
	Layers []geom.Layer
	// Rects holds each layer's raw rectangles in walk order, in the
	// certificate's oriented local frame.
	Rects map[geom.Layer][]geom.Rect
	// Comp is the local touch-component root of each rectangle.
	Comp map[geom.Layer][]int32
	// Resid holds the layer's width residues as canonical slabs in
	// DOUBLED local coordinates (widthResidues form).
	Resid map[geom.Layer][]geom.Rect
	// DirtyCuts lists the NC cuts (canonical, normal coordinates) whose
	// metal surround the cell's own metal does not fully cover; their
	// verdict depends on surrounding material.
	DirtyCuts []geom.Rect

	ix map[geom.Layer]*geom.Index
}

// CellCheck builds the design-rule certificate for one flattened cell
// (a single leaf occurrence, flattened with the engine's orientation).
func CellCheck(fr *flatten.Result) *CellDRC {
	c := &CellDRC{
		Rects: map[geom.Layer][]geom.Rect{},
		Comp:  map[geom.Layer][]int32{},
		Resid: map[geom.Layer][]geom.Rect{},
	}
	for _, l := range checkedLayers(fr) {
		rects := fr.LayerRects(l)
		ix := fr.LayerIndex(l)
		uf := geom.NewUnionFind(len(rects))
		for i, r := range rects {
			ix.QueryRect(r, func(j int) bool {
				if j > i {
					uf.Union(i, j)
				}
				return true
			})
		}
		c.Layers = append(c.Layers, l)
		c.Rects[l] = rects
		c.Comp[l] = compLabels(uf, len(rects))
		c.Resid[l] = widthResidues(rects, rules.Of(l).MinWidth*rules.Lambda)
	}

	metal := fr.LayerRects(geom.NM)
	mix := fr.LayerIndex(geom.NM)
	surround := ContactSurround * rules.Lambda
	for _, cut := range fr.LayerRects(geom.NC) {
		cut = cut.Canon()
		if cut.Empty() {
			continue
		}
		need := cut.Inset(-surround)
		var cover []geom.Rect
		mix.QueryRect(need, func(id int) bool {
			if cv := metal[id].Canon().Intersect(need); !cv.Empty() {
				cover = append(cover, cv)
			}
			return true
		})
		if len(regionSubtract([]geom.Rect{need}, regionMerge(cover))) > 0 {
			c.DirtyCuts = append(c.DirtyCuts, cut)
		}
	}
	return c
}

// Seal validates a certificate's invariants (after a disk decode).
func (c *CellDRC) Seal() error {
	for _, l := range c.Layers {
		rects, ok := c.Rects[l]
		if !ok {
			return fmt.Errorf("drc: certificate layer %s has no rectangles", l)
		}
		comp := c.Comp[l]
		if len(comp) != len(rects) {
			return fmt.Errorf("drc: certificate layer %s component length mismatch", l)
		}
		for _, r := range comp {
			if r < 0 || int(r) >= len(rects) {
				return fmt.Errorf("drc: certificate component root %d out of range", r)
			}
		}
	}
	return nil
}

// Index returns a lazily-built spatial index over one layer's
// rectangles (ids are Rects positions). Not concurrency-safe, like the
// flatten.Result accessors it mirrors.
func (c *CellDRC) Index(l geom.Layer) *geom.Index {
	if c.ix == nil {
		c.ix = map[geom.Layer]*geom.Index{}
	}
	ix, ok := c.ix[l]
	if !ok {
		ix = geom.NewIndexFrom(c.Rects[l])
		c.ix[l] = ix
	}
	return ix
}

// The hierarchical engine recombines certificate pieces with the exact
// primitives the flat checker uses; these exports are those primitives.

// WidthResidues exposes the width-opening residue computation: the
// merged region of rects minus its morphological opening at minW
// centimicrons, as canonical slabs in doubled coordinates.
func WidthResidues(rects []geom.Rect, minW int) []geom.Rect {
	return widthResidues(rects, minW)
}

// WidthViolationFrom renders one doubled-coordinate residue slab as a
// width violation, exactly as the flat checker would.
func WidthViolationFrom(l geom.Layer, r geom.Rect, minW int) Violation {
	return widthViolationFrom(l, r, minW)
}

// SpacingPair measures one rectangle pair against the spacing rule.
func SpacingPair(l geom.Layer, ri, rj geom.Rect, minS int) (Violation, bool) {
	return spacingPair(l, ri, rj, minS)
}

// CutSurround checks one contact cut's metal surround against the
// given metal rectangles, exactly as the flat checker would.
func CutSurround(cut geom.Rect, metal []geom.Rect) []Violation {
	cut = cut.Canon()
	if cut.Empty() {
		return nil
	}
	surround := ContactSurround * rules.Lambda
	need := cut.Inset(-surround)
	var cover []geom.Rect
	for _, m := range metal {
		if cv := m.Canon().Intersect(need); !cv.Empty() {
			cover = append(cover, cv)
		}
	}
	var out []Violation
	for _, r := range regionSubtract([]geom.Rect{need}, regionMerge(cover)) {
		out = append(out, Violation{
			Layer: geom.NC,
			Rect:  r,
			Rule:  RuleContactSurround,
			Got:   coveredSurround(cut, cover),
			Want:  surround,
		})
	}
	return out
}

// MergeRegion canonicalizes rectangles into disjoint maximal slabs.
func MergeRegion(rects []geom.Rect) []geom.Rect { return regionMerge(rects) }

// SubtractRegion returns region a minus region b (canonical slabs in,
// canonical slabs out; both operands in the same coordinate scale).
func SubtractRegion(a, b []geom.Rect) []geom.Rect { return regionSubtract(a, b) }

// FinishViolations canonicalizes a violation multiset the way every
// flat check path does: deterministic sort, then adjacent dedupe.
func FinishViolations(vs []Violation) []Violation {
	sortViolations(vs)
	return dedupe(vs)
}
